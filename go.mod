module swatop

go 1.22
