package swatop

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"swatop/internal/obsrv"
)

// runObserved tunes a fixed small GEMM with the given worker count, with
// or without an attached observer (plus a live subscriber draining
// events, to exercise the fan-out path), and returns the selected
// strategy, the simulated seconds and the deterministic part of the
// metrics snapshot as JSON.
func runObserved(t *testing.T, workers int, withObserver bool) (string, float64, []byte) {
	t.Helper()
	tn, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	tn.SetWorkers(workers)
	reg := NewMetricsRegistry()
	tn.SetMetrics(reg)
	if withObserver {
		obs := NewObserver()
		done := make(chan struct{})
		events, cancel := obs.Subscribe(64)
		go func() {
			defer close(done)
			for range events {
			}
		}()
		defer func() { cancel(); <-done }()
		tn.SetObserver(obs)
	}
	tuned, err := tn.TuneGemm(GemmParams{M: 256, N: 256, K: 256})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// Host wall clocks and retry backoff are the only legitimately
	// nondeterministic metrics; everything else must match bit for bit.
	for name := range snap.Gauges {
		if strings.Contains(name, "wall_seconds") || strings.Contains(name, "backoff_seconds") {
			delete(snap.Gauges, name)
		}
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return tuned.Strategy(), tuned.Seconds(), buf.Bytes()
}

// TestObserverChangesNoResult is the subsystem's cardinal invariant:
// attaching an observer (with a live subscriber) changes neither the
// selected schedule nor any deterministic metric, at any worker count.
func TestObserverChangesNoResult(t *testing.T) {
	baseStrategy, baseSeconds, baseSnap := runObserved(t, 1, false)
	for _, tc := range []struct {
		workers      int
		withObserver bool
	}{{1, true}, {4, false}, {4, true}} {
		strategy, seconds, snap := runObserved(t, tc.workers, tc.withObserver)
		if strategy != baseStrategy {
			t.Fatalf("workers=%d observer=%v changed the schedule:\n  %s\nvs\n  %s",
				tc.workers, tc.withObserver, strategy, baseStrategy)
		}
		if seconds != baseSeconds {
			t.Fatalf("workers=%d observer=%v changed simulated seconds: %v vs %v",
				tc.workers, tc.withObserver, seconds, baseSeconds)
		}
		if !bytes.Equal(snap, baseSnap) {
			t.Fatalf("workers=%d observer=%v changed the metrics snapshot:\n%s\nvs\n%s",
				tc.workers, tc.withObserver, snap, baseSnap)
		}
	}
}

// TestFlightDumpOnFallback: when every measurement fails and the tuner
// degrades to the baseline, the flight recorder is dumped automatically
// and the dump names the failing candidates — their strategies and the
// injected error.
func TestFlightDumpOnFallback(t *testing.T) {
	tn, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	in := NewFaultInjector(7)
	in.FailEveryNth(FaultMeasure, 1, TransientError(errors.New("injected measurement fault")))
	tn.SetFaults(in)
	tn.SetFallback(FallbackBaseline)

	obs := NewObserver()
	var sink bytes.Buffer
	obs.SetFlightSink(&sink)
	tn.SetObserver(obs)

	tuned, err := tn.TuneGemm(GemmParams{M: 256, N: 256, K: 256})
	if err != nil {
		t.Fatalf("fallback should have absorbed the failure: %v", err)
	}
	if !tuned.Degraded() {
		t.Fatal("result should be degraded")
	}
	if obs.Dumps() != 1 {
		t.Fatalf("expected exactly one automatic dump, got %d", obs.Dumps())
	}

	var doc struct {
		Reason string `json:"reason"`
		Events []struct {
			Kind   string            `json:"kind"`
			Fields map[string]string `json:"fields"`
		} `json:"events"`
	}
	if err := json.Unmarshal(sink.Bytes(), &doc); err != nil {
		t.Fatalf("dump is not JSON: %v", err)
	}
	if !strings.HasPrefix(doc.Reason, "baseline fallback: ") {
		t.Fatalf("dump reason %q", doc.Reason)
	}
	failed := 0
	for _, e := range doc.Events {
		if e.Kind != "candidate.failed" {
			continue
		}
		failed++
		if e.Fields["strategy"] == "" {
			t.Fatalf("candidate.failed without strategy: %+v", e)
		}
		if !strings.Contains(e.Fields["error"], "injected measurement fault") {
			t.Fatalf("candidate.failed without the injected error: %+v", e)
		}
	}
	if failed == 0 {
		t.Fatalf("dump holds no candidate.failed events; reason=%q, %d events",
			doc.Reason, len(doc.Events))
	}
	// The job table must show the tune as failed, not running.
	if !strings.Contains(sink.String(), `"state":"failed"`) {
		t.Fatalf("dumped job table lacks the failed tune job: %s", sink.String())
	}
}

// TestEngineObserverEvents: the inference engine reports per-layer
// resolution into the observer's job tracker and event stream.
func TestEngineObserverEvents(t *testing.T) {
	eng, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	eng.SetWorkers(4)
	// A full vgg16 resolve emits tens of thousands of candidate events;
	// size the flight recorder to keep the whole run so the early
	// net.start survives for the assertion below.
	obs := obsrv.NewWithCapacity(1 << 17)
	eng.SetObserver(obs)
	if _, err := eng.Infer("vgg16", 1); err != nil {
		t.Fatal(err)
	}
	// Every layer tune registers its own job next to the one infer job.
	var infer *JobStatus
	tunes := 0
	for _, j := range obs.Jobs().Snapshot() {
		j := j
		switch j.Kind {
		case "infer":
			infer = &j
		case "tune":
			tunes++
		}
	}
	if infer == nil || infer.State != "done" {
		t.Fatalf("infer job not tracked: %+v", infer)
	}
	if infer.Done == 0 || infer.Total == 0 {
		t.Fatalf("infer job has no layer progress: %+v", infer)
	}
	if tunes == 0 {
		t.Fatal("no per-layer tune jobs tracked")
	}
	kinds := map[string]bool{}
	for _, e := range obs.Flight().Snapshot() {
		kinds[e.Kind] = true
	}
	for _, want := range []string{"net.start", "layer.resolved", "net.finish", "tune.start", "tune.finish"} {
		if !kinds[want] {
			t.Fatalf("missing %s event; saw %v", want, kinds)
		}
	}
}
