// Package swatop is an end-to-end reproduction of "swATOP: Automatically
// Optimizing Deep Learning Operators on SW26010 Many-Core Processor"
// (ICPP 2019): an auto-tuning framework that schedules deep-learning
// operators (GEMM and three convolution algorithms) over tensorized
// primitives, searches the schedule space with a static performance model,
// and generates SW26010 C code — all evaluated against a functional, timed
// simulator of one SW26010 core group.
//
// This top-level package is the stable facade: construct a Tuner, tune an
// operator, inspect the chosen schedule, simulated performance and
// generated C. The examples/ directory shows complete programs; cmd/swbench
// regenerates every table and figure of the paper.
package swatop

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"swatop/internal/autotune"
	"swatop/internal/baseline"
	"swatop/internal/cache"
	"swatop/internal/codegen"
	"swatop/internal/conv"
	"swatop/internal/costmodel"
	"swatop/internal/exec"
	"swatop/internal/faults"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/obsrv"
	"swatop/internal/search"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
	"swatop/internal/trace"
)

// Library is a persistent schedule cache: tune each operator shape once,
// reuse the schedule afterwards (the paper's offline-compiler / online-
// autotuning deployment modes). Attach one to a Tuner with UseLibrary.
type Library = cache.Library

// NewLibrary creates an empty schedule cache; use Load/Save for
// persistence.
func NewLibrary() *Library { return cache.NewLibrary() }

// FaultInjector is the deterministic fault injector of internal/faults:
// arm rules on the named injection points and attach it with
// Tuner.SetFaults (or Library.SetFaults) to exercise the tuner's recovery
// paths without real hardware faults.
type FaultInjector = faults.Injector

// NewFaultInjector creates an injector with no armed rules; seed fixes the
// random stream of probability-triggered rules.
func NewFaultInjector(seed uint64) *FaultInjector { return faults.New(seed) }

// Fault-injection point names, re-exported so facade users can arm rules
// without importing internal packages.
const (
	// FaultDMATransfer fails simulated DMA transfers (sw26010.Machine).
	FaultDMATransfer = faults.DMATransfer
	// FaultComputeStall stretches simulated compute phases.
	FaultComputeStall = faults.ComputeStall
	// FaultMeasure fails candidate measurements (exec.Run).
	FaultMeasure = faults.Measure
	// FaultCacheCommit crashes a Library.Save between temp-write and
	// rename.
	FaultCacheCommit = faults.CacheCommit
)

// TransientError marks err as retryable: the tuner's retry policy (see
// SetRetry) retries transient measurement failures instead of failing the
// candidate outright. Unmarked errors stay fatal.
func TransientError(err error) error { return faults.Transient(err) }

// FallbackPolicy selects what a Tuner does when tuning cannot complete —
// every candidate failing, or the context's deadline budget expiring.
type FallbackPolicy int

const (
	// FallbackNone returns tuning failures as errors (the default).
	FallbackNone FallbackPolicy = iota
	// FallbackBaseline degrades gracefully: the tuner returns the manual
	// baseline schedule (xMath / swDNN / manual conv from
	// internal/baseline) flagged Degraded instead of an error. An online
	// framework keeps serving at manual-library speed while the
	// environment misbehaves. Explicit context cancellation still returns
	// the error: the caller asked the work to stop, not to degrade.
	FallbackBaseline
)

// ConvShape is the convolution geometry (stride 1, pre-padded input):
// batch B, channels Ni→No, output Ro×Co, kernel Kr×Kc.
type ConvShape = tensor.ConvShape

// GemmParams is a matrix-multiplication problem size.
type GemmParams = gemm.Params

// Conv methods.
const (
	// Implicit is the implicit-GEMM direct convolution (Alg. 2).
	Implicit = "implicit"
	// Explicit is the im2col + GEMM convolution.
	Explicit = "explicit"
	// Winograd is the F(2×2,3×3) fast convolution.
	Winograd = "winograd"
)

// Searcher is a sample-efficient search strategy: instead of estimating
// every schedule in the space, it proposes candidates, predicts them with
// an online-learned cost model and measures only the most promising. Build
// one with NewEvoSearcher/NewAnnealSearcher (or SearcherByName) and attach
// it with Tuner.SetSearcher.
type Searcher = search.Searcher

// NewEvoSearcher returns the evolutionary searcher (mutation + crossover
// over the schedule space's stable indices, learned-model ranking,
// ε-greedy measurement batches) with default parameters.
func NewEvoSearcher() Searcher { return &search.Evolutionary{} }

// NewAnnealSearcher returns the simulated-annealing searcher (parallel
// Metropolis chains over predicted seconds) with default parameters.
func NewAnnealSearcher() Searcher { return &search.Annealing{} }

// SearcherByName maps the CLI names to searchers: "evo", "anneal", or ""
// (nil — the exhaustive walk). Unknown names are an error.
func SearcherByName(name string) (Searcher, error) {
	switch name {
	case "":
		return nil, nil
	case "evo":
		return NewEvoSearcher(), nil
	case "anneal":
		return NewAnnealSearcher(), nil
	}
	return nil, fmt.Errorf("swatop: unknown searcher %q (want evo, anneal or empty)", name)
}

// Tuner is swATOP's performance-model-based autotuner with its fitted
// Eq. (2) cost model (calibrated once against the simulated machine).
type Tuner struct {
	model        *costmodel.GemmModel
	lib          *Library
	workers      int
	progress     func(done, valid int, best float64)
	fallback     FallbackPolicy
	faults       *faults.Injector
	retry        autotune.Retry
	maxFailures  int
	metrics      *MetricsRegistry
	observer     *Observer
	searcher     Searcher
	searchBudget float64
	searchSeed   uint64
}

// UseLibrary attaches a schedule cache: tuning consults it first and
// records new results into it.
func (t *Tuner) UseLibrary(l *Library) {
	t.lib = l
	if l != nil && t.metrics != nil {
		l.SetMetrics(t.metrics)
	}
	if l != nil && t.observer != nil {
		l.SetObserver(t.observer)
	}
}

// SetObserver attaches a structured-event observer: every tuning run emits
// its event log (tune/candidate/finalist events) into it and registers as
// a live job in the observer's tracker, and the attached Library, if any,
// reports its cache activity to the same observer. When tuning fails or
// degrades to the baseline, the observer's flight recorder is dumped to
// its configured sink. Passing nil detaches. Purely observational:
// attaching an observer changes neither the selected schedule nor any
// metric.
func (t *Tuner) SetObserver(o *Observer) {
	t.observer = o
	if t.lib != nil {
		t.lib.SetObserver(o)
	}
}

// SetMetrics attaches a metrics registry: every tuning run records its
// candidate counts, retry activity, best-score trajectory, stage wall
// clocks and machine-time ledger into it (see internal/metrics). The
// attached Library, if any, reports its hit/miss/commit activity to the
// same registry. Passing nil detaches.
func (t *Tuner) SetMetrics(reg *MetricsRegistry) {
	t.metrics = reg
	if t.lib != nil {
		t.lib.SetMetrics(reg)
	}
}

// SetWorkers sets the number of concurrent compile+estimate goroutines the
// tuner uses (values below 2 run sequentially). The selected schedule, its
// simulated performance and the tuning ledger's MachineSeconds are
// identical for every worker count — candidates are merged by
// (prediction, enumeration index) — so parallelism only shrinks host wall
// time.
func (t *Tuner) SetWorkers(n int) { t.workers = n }

// SetProgress installs a tuning progress callback, invoked from a single
// goroutine after each candidate with the processed and valid counts. It is
// the compatibility form of SetProgressBest; the best-score argument is
// dropped.
func (t *Tuner) SetProgress(fn func(done, valid int)) {
	if fn == nil {
		t.progress = nil
		return
	}
	t.progress = func(done, valid int, _ float64) { fn(done, valid) }
}

// SetProgressBest installs a tuning progress callback that also receives
// the best score seen so far (predicted seconds during the search, 0 while
// no valid candidate exists), for live best-score progress lines.
func (t *Tuner) SetProgressBest(fn func(done, valid int, best float64)) { t.progress = fn }

// SetFallback selects the degradation policy for failed or deadline-
// expired tuning runs.
func (t *Tuner) SetFallback(p FallbackPolicy) { t.fallback = p }

// SetFaults attaches a fault injector to every measurement this tuner
// performs (nil detaches). Production tuners never need this; it exists so
// integrations can rehearse their failure handling deterministically.
func (t *Tuner) SetFaults(in *FaultInjector) { t.faults = in }

// SetRetry configures capped exponential backoff with jitter for
// transient measurement errors: attempts is the total number of tries per
// candidate measurement (values <= 1 disable retrying), base the first
// delay, max the cap. Retries never change the selected schedule or the
// simulated-time ledger — only host wall time.
func (t *Tuner) SetRetry(attempts int, base, max time.Duration) {
	t.retry = autotune.Retry{Attempts: attempts, BaseDelay: base, MaxDelay: max}
}

// SetMaxCandidateFailures aborts a tuning run once more than n candidates
// have failed (panicked or exhausted retries) — a circuit breaker against
// a systematically broken environment. 0 (the default) means unlimited.
func (t *Tuner) SetMaxCandidateFailures(n int) { t.maxFailures = n }

// SetSearcher switches tuning from the exhaustive estimate-everything walk
// to sample-efficient search (nil switches back — the default, which stays
// bit-identical to the classic walk). With a searcher attached, tuning
// measures at most the budget fraction of each space (SetSearchBudget) and,
// when a Library is attached, seeds the search from the nearest
// already-tuned shapes of the same operator family.
func (t *Tuner) SetSearcher(s Searcher) { t.searcher = s }

// SetSearchBudget caps the fraction of the candidate space a searcher may
// measure (0 restores the 0.10 default). No effect without a searcher.
func (t *Tuner) SetSearchBudget(frac float64) { t.searchBudget = frac }

// SetSearchSeed pins the searcher's RNG seed. 0 (the default) derives a
// stable per-operator seed, so repeated runs already reproduce; set an
// explicit seed to decorrelate or correlate runs on purpose.
func (t *Tuner) SetSearchSeed(seed uint64) { t.searchSeed = seed }

// NewTuner fits the cost model (the per-machine offline calibration).
func NewTuner() (*Tuner, error) {
	m, err := costmodel.FitGemmModel()
	if err != nil {
		return nil, err
	}
	return &Tuner{model: m}, nil
}

// Tuned is a tuned operator: the selected schedule, its compiled program,
// and its measured (simulated) performance.
type Tuned struct {
	program     *ir.Program
	strategy    string
	seconds     float64
	spaceSize   int
	spacePoints int
	measured    int
	flops       int64
	degraded    bool
	failed      int
}

// TuneGemm searches the GEMM schedule space for a problem size.
func (t *Tuner) TuneGemm(p GemmParams) (*Tuned, error) {
	return t.TuneGemmCtx(context.Background(), p)
}

// TuneGemmCtx is TuneGemm with cancellation: the candidate search stops
// promptly when ctx is canceled and returns ctx's error — unless the
// baseline fallback is enabled, in which case a deadline expiry or tuning
// failure degrades to the manual baseline schedule instead.
func (t *Tuner) TuneGemmCtx(ctx context.Context, p GemmParams) (*Tuned, error) {
	op, err := gemm.NewOp(p)
	if err != nil {
		return nil, err
	}
	return t.tune(ctx, op, p.FLOPs(), func() (*ir.Program, error) {
		return baseline.FallbackGemm(p)
	})
}

// TuneConv searches the schedule space of one convolution method.
func (t *Tuner) TuneConv(method string, s ConvShape) (*Tuned, error) {
	return t.TuneConvCtx(context.Background(), method, s)
}

// TuneConvCtx is TuneConv with cancellation: the candidate search stops
// promptly when ctx is canceled and returns ctx's error.
func (t *Tuner) TuneConvCtx(ctx context.Context, method string, s ConvShape) (*Tuned, error) {
	var op autotune.Operator
	var err error
	switch method {
	case Implicit:
		op, err = conv.NewImplicitOp(s)
	case Explicit:
		op, err = conv.NewExplicitOp(s)
	case Winograd:
		op, err = conv.NewWinogradOp(s)
	default:
		return nil, fmt.Errorf("swatop: unknown conv method %q", method)
	}
	if err != nil {
		return nil, err
	}
	return t.tune(ctx, op, s.FLOPs(), func() (*ir.Program, error) {
		return baseline.FallbackConv(method, s)
	})
}

func (t *Tuner) tune(ctx context.Context, op autotune.Operator, flops int64,
	fallback func() (*ir.Program, error)) (*Tuned, error) {
	if t.lib != nil {
		if e, ok := t.lib.Get(op.Name()); ok {
			prog, err := op.Compile(e.Strategy())
			if err == nil {
				t.metrics.Counter("tuner_cache_hits_total").Inc()
				return &Tuned{
					program:   prog,
					strategy:  e.Strategy().String(),
					seconds:   e.SimulatedSeconds,
					spaceSize: e.SpaceSize,
					flops:     flops,
				}, nil
			}
			// The entry no longer compiles (stale schema, changed menus):
			// drop it so it cannot shadow the fresh result below, then
			// fall through to a full tuning.
			t.lib.Delete(op.Name())
		}
	}
	if t.lib != nil {
		t.metrics.Counter("tuner_cache_misses_total").Inc()
	}
	res, err := autotune.ModelBasedCtx(ctx, op, t.model, autotune.Options{
		Workers:              t.workers,
		Progress:             t.progress,
		Faults:               t.faults,
		Retry:                t.retry,
		MaxCandidateFailures: t.maxFailures,
		Metrics:              t.metrics,
		Observer:             t.observer,
		Searcher:             t.searcher,
		SearchBudget:         t.searchBudget,
		SearchSeed:           t.searchSeed,
		Transfer:             t.lib,
	})
	if err != nil {
		if t.fallback == FallbackBaseline && !errors.Is(err, context.Canceled) {
			t.metrics.Counter("tuner_degraded_total").Inc()
			t.observer.AutoDump("baseline fallback: " + op.Name())
			return t.degrade(op.Name(), fallback, flops, err)
		}
		t.observer.AutoDump("tune failed: " + op.Name())
		return nil, err
	}
	if t.lib != nil {
		t.lib.Put(cache.FromStrategy(op.Name(), res.Best.Strategy, res.Best.Measured, res.Valid))
	}
	return &Tuned{
		program:     res.Best.Program,
		strategy:    res.Best.Strategy.String(),
		seconds:     res.Best.Measured,
		spaceSize:   res.Valid,
		spacePoints: res.SpaceSize,
		measured:    res.Measured,
		flops:       flops,
		failed:      res.FailedCandidates,
	}, nil
}

// degrade serves the manual baseline schedule in place of a failed tuning
// run. The baseline is measured without fault injection — degradation is
// the recovery path, and it must stay available while the injector is
// sabotaging tuning measurements. Degraded results are never cached: the
// next tuning attempt should search again, not be shadowed by the
// emergency answer.
func (t *Tuner) degrade(name string, fallback func() (*ir.Program, error),
	flops int64, cause error) (*Tuned, error) {
	t.observer.Emit(obsrv.LevelWarn, "tuner.degraded",
		obsrv.F("op", name), obsrv.F("cause", cause))
	prog, err := fallback()
	if err != nil {
		return nil, fmt.Errorf("swatop: tuning %s failed (%v); baseline fallback also failed: %w", name, cause, err)
	}
	secs, err := runTimed(prog)
	if err != nil {
		return nil, fmt.Errorf("swatop: tuning %s failed (%v); baseline fallback failed to run: %w", name, cause, err)
	}
	return &Tuned{
		program:  prog,
		strategy: fmt.Sprintf("baseline fallback (tuning failed: %v)", cause),
		seconds:  secs,
		flops:    flops,
		degraded: true,
	}, nil
}

// Seconds returns the simulated execution time of the tuned operator on
// one SW26010 core group.
func (t *Tuned) Seconds() float64 { return t.seconds }

// GFLOPS returns the simulated core-group throughput.
func (t *Tuned) GFLOPS() float64 { return float64(t.flops) / t.seconds / 1e9 }

// Strategy describes the selected schedule.
func (t *Tuned) Strategy() string { return t.strategy }

// SpaceSize is the number of valid schedules that were considered.
func (t *Tuned) SpaceSize() int { return t.spaceSize }

// SpacePoints is the number of raw points in the schedule space — the
// coverage denominator for budgeted searches. 0 for cache hits (the space
// was never re-enumerated).
func (t *Tuned) SpacePoints() int { return t.spacePoints }

// MeasuredCandidates is how many candidates were actually run on the
// simulated machine. 0 when tuning used the exhaustive walk (which
// estimates everything but measures only the finalists) or hit the cache.
func (t *Tuned) MeasuredCandidates() int { return t.measured }

// Degraded reports whether this result is the baseline fallback served in
// place of a failed or deadline-expired tuning run (FallbackBaseline).
func (t *Tuned) Degraded() bool { return t.degraded }

// FailedCandidates is the number of candidates whose evaluation panicked
// or exhausted its retries during the search; they were skipped, never
// selected.
func (t *Tuned) FailedCandidates() int { return t.failed }

// EmitC generates the SW26010 C code of the tuned operator.
func (t *Tuned) EmitC() (string, error) { return codegen.EmitC(t.program) }

// Trace re-runs the tuned operator with timeline recording and returns a
// textual summary, a coarse Gantt chart and a roofline block — showing, in
// particular, how much DMA time double buffering hides behind compute and
// how close the schedule came to the machine's peaks.
func (t *Tuned) Trace() (string, error) {
	log, res, err := t.timeline()
	if err != nil {
		return "", err
	}
	roof := log.Roofline(t.flops, res.Counters.DMABytesTouched,
		sw26010.PeakGFlops, sw26010.DMAEffBandwidth)
	return log.Summary() + log.Gantt(72) + roof.String(), nil
}

// WriteChromeTrace re-runs the tuned operator with timeline recording and
// writes the timeline in the Chrome trace-event JSON format — the file
// opens directly in ui.perfetto.dev. Every span carries the selected
// strategy in its Args.
func (t *Tuned) WriteChromeTrace(w io.Writer) error {
	log, _, err := t.timeline()
	if err != nil {
		return err
	}
	log.Annotate("op", t.program.Name)
	log.Annotate("strategy", t.strategy)
	return log.WriteChromeTrace(w)
}

func (t *Tuned) timeline() (*trace.Log, exec.Result, error) {
	binds, err := exec.BindVirtual(t.program)
	if err != nil {
		return nil, exec.Result{}, err
	}
	var log trace.Log
	res, err := exec.Run(t.program, binds, exec.Options{Trace: &log})
	if err != nil {
		return nil, exec.Result{}, err
	}
	return &log, res, nil
}

// PrintIR renders the optimized intermediate representation.
func (t *Tuned) PrintIR() string { return ir.Print(t.program) }

// VerifyGemm executes the tuned GEMM functionally on the simulator and
// checks the result against a reference implementation, returning the
// maximum absolute error.
func (t *Tuned) VerifyGemm() (float64, error) {
	binds, err := gemm.Bind(t.program)
	if err != nil {
		return 0, err
	}
	if _, err := exec.Run(t.program, binds, exec.Options{Functional: true}); err != nil {
		return 0, err
	}
	want, err := tensor.ReferenceGemm(binds["A"], binds["B"], 1, 0)
	if err != nil {
		return 0, err
	}
	return tensor.MaxAbsDiff(want, binds["C"])
}

// BaselineGemmSeconds measures the xMath manual GEMM on the same problem —
// the paper's comparison target.
func BaselineGemmSeconds(p GemmParams) (float64, error) {
	prog, err := baseline.XMathGemm(p)
	if err != nil {
		return 0, err
	}
	return runTimed(prog)
}

// BaselineConvSeconds measures the best manual convolution (swDNN for
// implicit, xMath-based manual code otherwise). An error for Implicit at
// unsupported batch sizes mirrors swDNN's real limitation.
func BaselineConvSeconds(method string, s ConvShape) (float64, error) {
	var prog *ir.Program
	var err error
	switch method {
	case Implicit:
		prog, err = baseline.SwDNNImplicit(s)
	case Explicit:
		prog, err = baseline.ManualExplicit(s)
	case Winograd:
		prog, err = baseline.ManualWinograd(s)
	default:
		return 0, fmt.Errorf("swatop: unknown conv method %q", method)
	}
	if err != nil {
		return 0, err
	}
	return runTimed(prog)
}

func runTimed(prog *ir.Program) (float64, error) {
	binds, err := exec.BindVirtual(prog)
	if err != nil {
		return 0, err
	}
	res, err := exec.Run(prog, binds, exec.Options{FastLoops: true})
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}
