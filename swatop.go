// Package swatop is an end-to-end reproduction of "swATOP: Automatically
// Optimizing Deep Learning Operators on SW26010 Many-Core Processor"
// (ICPP 2019): an auto-tuning framework that schedules deep-learning
// operators (GEMM and three convolution algorithms) over tensorized
// primitives, searches the schedule space with a static performance model,
// and generates SW26010 C code — all evaluated against a functional, timed
// simulator of one SW26010 core group.
//
// This top-level package is the stable facade: construct a Tuner, tune an
// operator, inspect the chosen schedule, simulated performance and
// generated C. The examples/ directory shows complete programs; cmd/swbench
// regenerates every table and figure of the paper.
package swatop

import (
	"context"
	"fmt"

	"swatop/internal/autotune"
	"swatop/internal/baseline"
	"swatop/internal/cache"
	"swatop/internal/codegen"
	"swatop/internal/conv"
	"swatop/internal/costmodel"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/tensor"
	"swatop/internal/trace"
)

// Library is a persistent schedule cache: tune each operator shape once,
// reuse the schedule afterwards (the paper's offline-compiler / online-
// autotuning deployment modes). Attach one to a Tuner with UseLibrary.
type Library = cache.Library

// NewLibrary creates an empty schedule cache; use Load/Save for
// persistence.
func NewLibrary() *Library { return cache.NewLibrary() }

// ConvShape is the convolution geometry (stride 1, pre-padded input):
// batch B, channels Ni→No, output Ro×Co, kernel Kr×Kc.
type ConvShape = tensor.ConvShape

// GemmParams is a matrix-multiplication problem size.
type GemmParams = gemm.Params

// Conv methods.
const (
	// Implicit is the implicit-GEMM direct convolution (Alg. 2).
	Implicit = "implicit"
	// Explicit is the im2col + GEMM convolution.
	Explicit = "explicit"
	// Winograd is the F(2×2,3×3) fast convolution.
	Winograd = "winograd"
)

// Tuner is swATOP's performance-model-based autotuner with its fitted
// Eq. (2) cost model (calibrated once against the simulated machine).
type Tuner struct {
	model    *costmodel.GemmModel
	lib      *Library
	workers  int
	progress func(done, valid int)
}

// UseLibrary attaches a schedule cache: tuning consults it first and
// records new results into it.
func (t *Tuner) UseLibrary(l *Library) { t.lib = l }

// SetWorkers sets the number of concurrent compile+estimate goroutines the
// tuner uses (values below 2 run sequentially). The selected schedule, its
// simulated performance and the tuning ledger's MachineSeconds are
// identical for every worker count — candidates are merged by
// (prediction, enumeration index) — so parallelism only shrinks host wall
// time.
func (t *Tuner) SetWorkers(n int) { t.workers = n }

// SetProgress installs a tuning progress callback, invoked from a single
// goroutine after each candidate with the processed and valid counts.
func (t *Tuner) SetProgress(fn func(done, valid int)) { t.progress = fn }

// NewTuner fits the cost model (the per-machine offline calibration).
func NewTuner() (*Tuner, error) {
	m, err := costmodel.FitGemmModel()
	if err != nil {
		return nil, err
	}
	return &Tuner{model: m}, nil
}

// Tuned is a tuned operator: the selected schedule, its compiled program,
// and its measured (simulated) performance.
type Tuned struct {
	program   *ir.Program
	strategy  string
	seconds   float64
	spaceSize int
	flops     int64
}

// TuneGemm searches the GEMM schedule space for a problem size.
func (t *Tuner) TuneGemm(p GemmParams) (*Tuned, error) {
	return t.TuneGemmCtx(context.Background(), p)
}

// TuneGemmCtx is TuneGemm with cancellation: the candidate search stops
// promptly when ctx is canceled and returns ctx's error.
func (t *Tuner) TuneGemmCtx(ctx context.Context, p GemmParams) (*Tuned, error) {
	op, err := gemm.NewOp(p)
	if err != nil {
		return nil, err
	}
	return t.tune(ctx, op, p.FLOPs())
}

// TuneConv searches the schedule space of one convolution method.
func (t *Tuner) TuneConv(method string, s ConvShape) (*Tuned, error) {
	return t.TuneConvCtx(context.Background(), method, s)
}

// TuneConvCtx is TuneConv with cancellation: the candidate search stops
// promptly when ctx is canceled and returns ctx's error.
func (t *Tuner) TuneConvCtx(ctx context.Context, method string, s ConvShape) (*Tuned, error) {
	var op autotune.Operator
	var err error
	switch method {
	case Implicit:
		op, err = conv.NewImplicitOp(s)
	case Explicit:
		op, err = conv.NewExplicitOp(s)
	case Winograd:
		op, err = conv.NewWinogradOp(s)
	default:
		return nil, fmt.Errorf("swatop: unknown conv method %q", method)
	}
	if err != nil {
		return nil, err
	}
	return t.tune(ctx, op, s.FLOPs())
}

func (t *Tuner) tune(ctx context.Context, op autotune.Operator, flops int64) (*Tuned, error) {
	if t.lib != nil {
		if e, ok := t.lib.Get(op.Name()); ok {
			prog, err := op.Compile(e.Strategy())
			if err == nil {
				return &Tuned{
					program:   prog,
					strategy:  e.Strategy().String(),
					seconds:   e.SimulatedSeconds,
					spaceSize: e.SpaceSize,
					flops:     flops,
				}, nil
			}
			// The entry no longer compiles (stale schema, changed menus):
			// drop it so it cannot shadow the fresh result below, then
			// fall through to a full tuning.
			t.lib.Delete(op.Name())
		}
	}
	res, err := autotune.ModelBasedCtx(ctx, op, t.model,
		autotune.Options{Workers: t.workers, Progress: t.progress})
	if err != nil {
		return nil, err
	}
	if t.lib != nil {
		t.lib.Put(cache.FromStrategy(op.Name(), res.Best.Strategy, res.Best.Measured, res.Valid))
	}
	return &Tuned{
		program:   res.Best.Program,
		strategy:  res.Best.Strategy.String(),
		seconds:   res.Best.Measured,
		spaceSize: res.Valid,
		flops:     flops,
	}, nil
}

// Seconds returns the simulated execution time of the tuned operator on
// one SW26010 core group.
func (t *Tuned) Seconds() float64 { return t.seconds }

// GFLOPS returns the simulated core-group throughput.
func (t *Tuned) GFLOPS() float64 { return float64(t.flops) / t.seconds / 1e9 }

// Strategy describes the selected schedule.
func (t *Tuned) Strategy() string { return t.strategy }

// SpaceSize is the number of valid schedules that were considered.
func (t *Tuned) SpaceSize() int { return t.spaceSize }

// EmitC generates the SW26010 C code of the tuned operator.
func (t *Tuned) EmitC() (string, error) { return codegen.EmitC(t.program) }

// Trace re-runs the tuned operator with timeline recording and returns a
// textual summary plus a coarse Gantt chart — showing, in particular, how
// much DMA time double buffering hides behind compute.
func (t *Tuned) Trace() (string, error) {
	binds, err := exec.BindVirtual(t.program)
	if err != nil {
		return "", err
	}
	var log trace.Log
	if _, err := exec.Run(t.program, binds, exec.Options{Trace: &log}); err != nil {
		return "", err
	}
	return log.Summary() + log.Gantt(72), nil
}

// PrintIR renders the optimized intermediate representation.
func (t *Tuned) PrintIR() string { return ir.Print(t.program) }

// VerifyGemm executes the tuned GEMM functionally on the simulator and
// checks the result against a reference implementation, returning the
// maximum absolute error.
func (t *Tuned) VerifyGemm() (float64, error) {
	binds, err := gemm.Bind(t.program)
	if err != nil {
		return 0, err
	}
	if _, err := exec.Run(t.program, binds, exec.Options{Functional: true}); err != nil {
		return 0, err
	}
	want, err := tensor.ReferenceGemm(binds["A"], binds["B"], 1, 0)
	if err != nil {
		return 0, err
	}
	return tensor.MaxAbsDiff(want, binds["C"])
}

// BaselineGemmSeconds measures the xMath manual GEMM on the same problem —
// the paper's comparison target.
func BaselineGemmSeconds(p GemmParams) (float64, error) {
	prog, err := baseline.XMathGemm(p)
	if err != nil {
		return 0, err
	}
	return runTimed(prog)
}

// BaselineConvSeconds measures the best manual convolution (swDNN for
// implicit, xMath-based manual code otherwise). An error for Implicit at
// unsupported batch sizes mirrors swDNN's real limitation.
func BaselineConvSeconds(method string, s ConvShape) (float64, error) {
	var prog *ir.Program
	var err error
	switch method {
	case Implicit:
		prog, err = baseline.SwDNNImplicit(s)
	case Explicit:
		prog, err = baseline.ManualExplicit(s)
	case Winograd:
		prog, err = baseline.ManualWinograd(s)
	default:
		return 0, fmt.Errorf("swatop: unknown conv method %q", method)
	}
	if err != nil {
		return 0, err
	}
	return runTimed(prog)
}

func runTimed(prog *ir.Program) (float64, error) {
	binds, err := exec.BindVirtual(prog)
	if err != nil {
		return 0, err
	}
	res, err := exec.Run(prog, binds, exec.Options{FastLoops: true})
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}
