// Custom operator: describe a new arithmetic-intensive operator in swATOP's
// DSL and tune it — here, the attention-style contraction
//
//	S[h][q][k] = sum_d Q[h][q][d] · Kt[h][d][k]
//
// (a batched GEMM over heads, the score computation of multi-head
// attention). Everything the framework did for convolutions — schedule
// enumeration, DMA inference, auto-prefetching, boundary padding, the
// performance-model autotuner, C generation — applies to the new operator
// without any framework changes.
package main

import (
	"fmt"
	"log"

	"swatop/internal/autotune"
	"swatop/internal/core"
	"swatop/internal/costmodel"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/ir"
	"swatop/internal/tensor"
)

// attentionScores is the tunable operator definition.
type attentionScores struct {
	heads, seq, dim int
	seed            *dsl.Seed
	space           *dsl.Space
}

func newAttentionScores(heads, seq, dim int) *attentionScores {
	// Schedule seed: axes with GEMM roles and the three operands. The head
	// axis is a spatial (batch) loop; queries form M, keys form N, the
	// head dimension is the reduction.
	seed := dsl.NewSeed(fmt.Sprintf("attention_scores_h%d_s%d_d%d", heads, seq, dim))
	seed.AddAxis("h", heads, dsl.RoleSpatial)
	seed.AddAxis("q", seq, dsl.RoleM)
	seed.AddAxis("k", seq, dsl.RoleN)
	seed.AddAxis("d", dim, dsl.RoleK)
	seed.AddTensor("Q", []int{heads, seq, dim}, dsl.OperandA,
		dsl.Dim("h"), dsl.Dim("q"), dsl.Dim("d"))
	seed.AddTensor("Kt", []int{heads, dim, seq}, dsl.OperandB,
		dsl.Dim("h"), dsl.Dim("d"), dsl.Dim("k"))
	seed.AddTensor("S", []int{heads, seq, seq}, dsl.OperandC,
		dsl.Dim("h"), dsl.Dim("q"), dsl.Dim("k"))

	// Schedule space: tile factors, loop orders, layouts, vectorization.
	sp := dsl.NewSpace()
	sp.FactorVar("q", 32, 64, 128, 256)
	sp.FactorVar("k", 32, 64, 128, 256)
	sp.FactorVar("d", 16, 64, 128)
	sp.Reorder("h", "q", "k", "d")
	sp.Reorder("h", "k", "q", "d")
	sp.Layout("Q", 0, 1, 2)
	sp.Layout("Q", 0, 2, 1)
	sp.Layout("Kt", 0, 1, 2)
	sp.Layout("S", 0, 1, 2) // row-major scores: transposed-C formulation
	sp.Layout("S", 0, 2, 1)
	return &attentionScores{heads: heads, seq: seq, dim: dim, seed: seed, space: sp}
}

func (a *attentionScores) Name() string      { return a.seed.Name }
func (a *attentionScores) Seed() *dsl.Seed   { return a.seed }
func (a *attentionScores) Space() *dsl.Space { return a.space }
func (a *attentionScores) Compile(st dsl.Strategy) (*ir.Program, error) {
	return core.Compile(a.seed, st)
}

func main() {
	op := newAttentionScores(16, 512, 128)

	model, err := costmodel.FitGemmModel()
	if err != nil {
		log.Fatal(err)
	}
	res, err := autotune.ModelBased(op, model)
	if err != nil {
		log.Fatal(err)
	}
	flops := 2.0 * 16 * 512 * 512 * 128
	fmt.Printf("operator         : %s\n", op.Name())
	fmt.Printf("schedule space   : %d raw, %d valid\n", res.SpaceSize, res.Valid)
	fmt.Printf("selected schedule: %s\n", res.Best.Strategy)
	fmt.Printf("simulated time   : %.4g ms (%.0f GFLOPS per core group)\n",
		res.Best.Measured*1e3, flops/res.Best.Measured/1e9)

	// Run it functionally on a scaled-down instance and spot-check one
	// element against the direct contraction.
	small := newAttentionScores(2, 32, 16)
	sres, err := autotune.ModelBased(small, model)
	if err != nil {
		log.Fatal(err)
	}
	binds := bindPattern(sres.Best.Program)
	if _, err := exec.Run(sres.Best.Program, binds, exec.Options{Functional: true}); err != nil {
		log.Fatal(err)
	}
	var want float32
	h, q, k := 1, 3, 5
	for d := 0; d < 16; d++ {
		want += binds["Q"].At(h, q, d) * binds["Kt"].At(h, d, k)
	}
	got := binds["S"].At(h, q, k)
	fmt.Printf("verification     : S[%d][%d][%d] = %.4f (direct: %.4f)\n", h, q, k, got, want)
}

// bindPattern allocates operands in the layouts the tuned program chose,
// inputs filled with a deterministic pattern.
func bindPattern(prog *ir.Program) map[string]*tensor.Tensor {
	binds := map[string]*tensor.Tensor{}
	for _, decl := range prog.Tensors {
		if decl.Scratch {
			continue
		}
		layout := decl.Layout
		if layout == nil {
			layout = []int{0, 1, 2}
		}
		t, err := tensor.NewWithLayout(decl.Name, decl.Dims, layout)
		if err != nil {
			log.Fatal(err)
		}
		if !decl.Output {
			t.FillPattern()
		}
		binds[decl.Name] = t
	}
	return binds
}
