// ResNet inference and training: tune the implicit-GEMM convolution for the
// distinct layer shapes of a ResNet bottleneck stage, at batch 1 (where the
// manual swDNN library has no implementation at all) and batch 32 (where it
// does), reproducing the Fig. 5 comparison on a concrete network.
package main

import (
	"fmt"
	"log"

	"swatop"
	"swatop/internal/workloads"
)

func main() {
	tuner, err := swatop.NewTuner()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ResNet convolution layers — swATOP implicit conv vs swDNN")
	fmt.Printf("%-16s %6s %12s %12s %10s\n", "layer", "batch", "swATOP", "swDNN", "speedup")
	for _, l := range workloads.ResNet() {
		for _, batch := range []int{1, 32} {
			s := l.Shape(batch)
			if s.Ni < 16 {
				continue // first layer: implicit conv not applicable
			}
			tuned, err := tuner.TuneConv(swatop.Implicit, s)
			if err != nil {
				log.Fatalf("%s: %v", l.Name, err)
			}
			manual, merr := swatop.BaselineConvSeconds(swatop.Implicit, s)
			manualStr, speedStr := "n/a (batch)", "∞"
			if merr == nil {
				manualStr = fmt.Sprintf("%.3f ms", manual*1e3)
				speedStr = fmt.Sprintf("%.2fx", manual/tuned.Seconds())
			}
			fmt.Printf("%-16s %6d %9.3f ms %12s %10s\n",
				l.Name, batch, tuned.Seconds()*1e3, manualStr, speedStr)
		}
	}
	fmt.Println("\nbatch 1 columns show the gap swATOP closes: the manual library")
	fmt.Println("simply has no small-batch implementation (Fig. 5 of the paper).")
}
