// Quickstart: tune one matrix multiplication with swATOP, inspect the
// chosen schedule, verify it numerically against a reference, compare with
// the manual xMath routine, and generate the SW26010 C code.
package main

import (
	"fmt"
	"log"

	"swatop"
)

func main() {
	// 1. Fit the performance model (the once-per-machine calibration).
	tuner, err := swatop.NewTuner()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Tune an awkward, unaligned GEMM — the kind of shape hand-written
	// libraries handle poorly.
	p := swatop.GemmParams{M: 1000, N: 500, K: 2000}
	tuned, err := tuner.TuneGemm(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem          : %v\n", p)
	fmt.Printf("schedule space   : %d valid candidates considered\n", tuned.SpaceSize())
	fmt.Printf("selected schedule: %s\n", tuned.Strategy())
	fmt.Printf("simulated time   : %.4g ms (%.0f GFLOPS per core group)\n",
		tuned.Seconds()*1e3, tuned.GFLOPS())

	// 3. Verify the tuned program computes the right answer (functional
	// simulation against a reference GEMM).
	maxErr, err := tuned.VerifyGemm()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification     : max |error| = %.3g\n", maxErr)

	// 4. Compare with the hand-optimized xMath routine on the same
	// simulated machine.
	base, err := swatop.BaselineGemmSeconds(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("xMath baseline   : %.4g ms → swATOP speedup %.2fx\n",
		base*1e3, base/tuned.Seconds())

	// 5. Inspect the execution timeline: how much of the DMA traffic does
	// the auto-prefetching actually hide behind compute?
	tl, err := tuned.Trace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- execution timeline ---\n%s", tl)

	// 6. Generate the SW26010 C code for the tuned schedule.
	src, err := tuned.EmitC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n--- generated C (first lines of %d bytes) ---\n", len(src))
	for i, line := range splitLines(src, 14) {
		fmt.Printf("%2d  %s\n", i+1, line)
	}
}

func splitLines(s string, n int) []string {
	var out []string
	start := 0
	for i := 0; i < len(s) && len(out) < n; i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return out
}
