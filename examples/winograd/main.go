// Winograd convolution: tune the F(2×2,3×3) method on a VGG16 layer,
// verify it against the direct convolution numerically, and show why its
// "efficiency" can exceed 100% when counted in direct-convolution FLOPs
// (the accounting the paper's Fig. 8 uses).
package main

import (
	"fmt"
	"log"

	"swatop"
	"swatop/internal/conv"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/ir"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
)

func main() {
	tuner, err := swatop.NewTuner()
	if err != nil {
		log.Fatal(err)
	}

	// VGG16 conv4-class layer at batch 32.
	s := swatop.ConvShape{B: 32, Ni: 256, No: 256, Ro: 28, Co: 28, Kr: 3, Kc: 3}
	tuned, err := tuner.TuneConv(swatop.Winograd, s)
	if err != nil {
		log.Fatal(err)
	}
	directGF := float64(s.FLOPs()) / tuned.Seconds() / 1e9
	fmt.Printf("layer            : %v\n", s)
	fmt.Printf("selected schedule: %s\n", tuned.Strategy())
	fmt.Printf("simulated time   : %.4g ms\n", tuned.Seconds()*1e3)
	fmt.Printf("direct-conv rate : %.0f GFLOPS = %.0f%% of core-group peak\n",
		directGF, directGF/sw26010.PeakGFlops*100)
	fmt.Println("(Winograd performs ~2.25× fewer multiplies than direct conv, so")
	fmt.Println(" this accounting can exceed 100% — exactly as in the paper's Fig. 8)")

	manual, err := swatop.BaselineConvSeconds(swatop.Winograd, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manual (xMath)   : %.4g ms → speedup %.2fx\n", manual*1e3, manual/tuned.Seconds())

	// Functional verification on a small shape (the full layer would take
	// a while in functional simulation).
	small := conv.Shape{B: 2, Ni: 8, No: 8, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	op, err := conv.NewWinogradOp(small)
	if err != nil {
		log.Fatal(err)
	}
	st := dsl.Strategy{
		Factors:      map[string]int{"no": 8, "ni": 8, "p": 32},
		Order:        []string{"xi", "no", "p", "ni"},
		Layouts:      map[string][]int{"U": {0, 1, 2}, "V": {0, 1, 2}, "M": {0, 1, 2}},
		Vec:          ir.VecM,
		DoubleBuffer: true,
	}
	prog, err := op.Compile(st)
	if err != nil {
		log.Fatal(err)
	}
	binds, err := conv.Bind(prog)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := exec.Run(prog, binds, exec.Options{Functional: true}); err != nil {
		log.Fatal(err)
	}
	want, err := tensor.ReferenceConv(binds["in"], binds["weight"], small)
	if err != nil {
		log.Fatal(err)
	}
	diff, err := tensor.MaxAbsDiff(want, binds["out"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verification     : max |error| vs direct conv = %.3g (shape %v)\n", diff, small)
}
