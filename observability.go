package swatop

import (
	"swatop/internal/metrics"
	"swatop/internal/obsrv"
)

// MetricsRegistry is the concurrency-safe metrics registry of
// internal/metrics: named counters, gauges and fixed-bucket histograms with
// JSON and Prometheus-style exposition. Attach one to a Tuner or Engine
// with SetMetrics, or use the process-wide default from Metrics().
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry's values; see
// MetricsSnapshot.WriteJSON, WritePrometheus and Table.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Metrics returns the process-wide default registry — the one facade
// components record into when no explicit registry was attached.
func Metrics() *MetricsRegistry { return metrics.Default() }

// Observer is the structured event hub of internal/obsrv: every
// instrumented layer (tuning, execution, cache, inference) emits leveled
// events into it, and it fans them out to a fixed-capacity flight
// recorder, to live subscribers (the introspection server's /events
// stream) and optionally to a log/slog logger. Attach one with
// Tuner.SetObserver or Engine.SetObserver. Attaching an observer never
// changes a tuning result: events are observational only, and the metrics
// snapshots of an observed run are bit-identical to an unobserved one.
type Observer = obsrv.Observer

// ObserverEvent is one structured event (sequence number, time, level,
// kind, fields).
type ObserverEvent = obsrv.Event

// JobStatus is the frozen view of one tracked tuning or inference job, as
// served on the introspection server's /statusz endpoint.
type JobStatus = obsrv.JobStatus

// NewObserver creates an observer with the default flight-recorder
// capacity.
func NewObserver() *Observer { return obsrv.New() }

// IntrospectionServer is the embedded HTTP server of internal/obsrv: it
// serves /metrics (Prometheus text), /metrics.json, /healthz, /statusz,
// /events (server-sent events), /flightz and /debug/pprof/ from an
// observer and a metrics registry. Start it with Start(addr); addr ":0"
// picks an ephemeral port and Start returns the bound address.
type IntrospectionServer = obsrv.Server

// NewIntrospectionServer builds an introspection server. component names
// the process in /statusz; obs and reg may each be nil (endpoints degrade
// to empty documents).
func NewIntrospectionServer(component string, obs *Observer, reg *MetricsRegistry) *IntrospectionServer {
	return obsrv.NewServer(component, obs, reg)
}
