package swatop

import "swatop/internal/metrics"

// MetricsRegistry is the concurrency-safe metrics registry of
// internal/metrics: named counters, gauges and fixed-bucket histograms with
// JSON and Prometheus-style exposition. Attach one to a Tuner or Engine
// with SetMetrics, or use the process-wide default from Metrics().
type MetricsRegistry = metrics.Registry

// MetricsSnapshot is a point-in-time copy of a registry's values; see
// MetricsSnapshot.WriteJSON, WritePrometheus and Table.
type MetricsSnapshot = metrics.Snapshot

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Metrics returns the process-wide default registry — the one facade
// components record into when no explicit registry was attached.
func Metrics() *MetricsRegistry { return metrics.Default() }
