package swatop

import (
	"context"
	"io"
	"time"

	"swatop/internal/autotune"
	"swatop/internal/graph"
	"swatop/internal/infer"
	"swatop/internal/sw26010"
	"swatop/internal/trace"
)

// Engine is the network inference runtime: it executes one of the paper's
// evaluation networks (VGG16, ResNet, YOLO) end to end on the simulated
// core group, resolving every layer's schedule through the autotuner (or a
// schedule Library) and reporting the serialized network timeline — the
// facade over internal/graph + internal/infer, playing the role swCaffe
// integration plays in the paper.
type Engine struct {
	eng         *infer.Engine
	lib         *Library
	workers     int
	fallback    FallbackPolicy
	faults      *FaultInjector
	retry       autotune.Retry
	maxFailures int
	verify      bool
	tolerance   float64
	progress    func(node string, done, total int)
	metrics     *MetricsRegistry
	observer    *Observer
	groups      int
	pipeline    bool
	searcher    Searcher
	budget      float64
	searchSeed  uint64
}

// NewEngine fits the cost model (the per-machine offline calibration) and
// returns a ready inference engine.
func NewEngine() (*Engine, error) {
	e, err := infer.NewEngine()
	if err != nil {
		return nil, err
	}
	return &Engine{eng: e}, nil
}

// UseLibrary attaches a schedule cache: layer tuning consults it first and
// records fresh results, so a network tunes once and replays afterwards.
func (e *Engine) UseLibrary(l *Library) { e.lib = l }

// SetWorkers sets the tuning concurrency. The resolved schedules — and the
// network's machine seconds — are identical for every worker count.
func (e *Engine) SetWorkers(n int) { e.workers = n }

// SetFallback selects the degradation policy when a layer's tuning fails.
func (e *Engine) SetFallback(p FallbackPolicy) { e.fallback = p }

// SetFaults attaches a fault injector to tuning measurements (nil
// detaches); the network's own execution stays clean.
func (e *Engine) SetFaults(in *FaultInjector) { e.faults = in }

// SetRetry configures retrying of transient tuning-measurement errors,
// exactly as Tuner.SetRetry does.
func (e *Engine) SetRetry(attempts int, base, max time.Duration) {
	e.retry = autotune.Retry{Attempts: attempts, BaseDelay: base, MaxDelay: max}
}

// SetMaxCandidateFailures aborts a layer's tuning once more than n
// candidates have failed (0 = unlimited).
func (e *Engine) SetMaxCandidateFailures(n int) { e.maxFailures = n }

// SetSearcher switches layer tuning to sample-efficient search, exactly as
// Tuner.SetSearcher does (nil restores the exhaustive walk). The attached
// Library doubles as the transfer source: later layers seed their search
// from earlier layers' cached winners.
func (e *Engine) SetSearcher(s Searcher) { e.searcher = s }

// SetSearchBudget caps the fraction of each layer's candidate space a
// searcher may measure (0 restores the 0.10 default).
func (e *Engine) SetSearchBudget(frac float64) { e.budget = frac }

// SetSearchSeed pins the searcher's RNG seed (0 derives a stable
// per-operator seed).
func (e *Engine) SetSearchSeed(seed uint64) { e.searchSeed = seed }

// SetVerify enables functional execution: every tuned layer's output is
// checked against the single-operator reference oracle with the given
// max-abs-error tolerance (<= 0 selects the default 1e-3). Functional runs
// compute real data and are far slower; machine seconds remain
// deterministic but differ slightly from timed-only runs, which
// fast-forward long loops (a near-exact extrapolation).
func (e *Engine) SetVerify(tolerance float64) {
	e.verify = true
	e.tolerance = tolerance
}

// SetProgress installs a per-layer schedule-resolution callback.
func (e *Engine) SetProgress(fn func(node string, done, total int)) { e.progress = fn }

// SetGroups scales inference out across a fleet of n simulated core groups
// (1..4 — one SW26010 node, the swCaffe scale-out unit). 0 or 1 keeps the
// single-machine path. The default fleet mode is data parallelism: the
// batch shards across the groups and the fleet time is the slowest group
// plus the modeled collectives. Nets ending in a fully-connected tail take
// the hybrid split (batch-sharded convolutions, column-sharded fc layers
// so each group loads only 1/n of the weight-DMA-bound fc weights);
// everything else runs the whole net on every group's shard.
// Schedules still resolve sequentially up front; per-group and aggregate
// machine seconds stay bit-identical across worker counts and goroutine
// interleavings. Fleet runs skip the per-layer baseline comparison.
func (e *Engine) SetGroups(n int) { e.groups = n }

// SetPipeline switches a fleet run (SetGroups >= 2) to layer pipelining:
// the net is partitioned into balanced stages by per-layer tuned cost and
// micro-batches of size 1 stream through them. The report carries the
// stage partition and the pipeline's bubble fraction. Timed-only —
// incompatible with SetVerify.
func (e *Engine) SetPipeline(on bool) { e.pipeline = on }

// SetMetrics attaches a metrics registry: every run records machine
// counters (DMA traffic, transactions, alignment waste, SPM peak, the
// compute/stall clock split), per-layer schedule-resolution outcomes and
// tuning activity into it, and each NetReport carries a snapshot. Passing
// nil detaches. During a fully cached replay every recorded value is a
// simulated-machine quantity, so snapshots are bit-identical across worker
// counts.
func (e *Engine) SetMetrics(reg *MetricsRegistry) { e.metrics = reg }

// SetObserver attaches a structured-event observer: every run emits its
// event log (net/layer/tuning events) into it and registers as a live
// "infer" job in the observer's tracker. When a run fails or any layer
// degrades to the baseline, the observer's flight recorder is dumped to
// its configured sink. Passing nil detaches. Purely observational: the
// resolved schedules and every metric are identical with and without an
// observer.
func (e *Engine) SetObserver(o *Observer) { e.observer = o }

// LayerReport is one executed layer of a network run.
type LayerReport struct {
	Name            string  `json:"name"`
	Kind            string  `json:"kind"`
	StartSeconds    float64 `json:"start_seconds"`
	Seconds         float64 `json:"seconds"`
	BaselineSeconds float64 `json:"baseline_seconds,omitempty"`
	FLOPs           int64   `json:"flops,omitempty"`
	GFLOPS          float64 `json:"gflops,omitempty"`
	Cached          bool    `json:"cached,omitempty"`
	Degraded        bool    `json:"degraded,omitempty"`
	Strategy        string  `json:"strategy,omitempty"`
	MaxAbsErr       float64 `json:"max_abs_err,omitempty"`
	Checked         bool    `json:"checked,omitempty"`
}

// GroupReport is one core group's share of a fleet run.
type GroupReport struct {
	Group   int     `json:"group"`
	Batch   int     `json:"batch"`
	Seconds float64 `json:"seconds"`
}

// StageReport is one pipeline stage of a pipelined fleet run.
type StageReport struct {
	Group           int      `json:"group"`
	Layers          []string `json:"layers"`
	Seconds         float64  `json:"seconds"`
	TransferSeconds float64  `json:"transfer_seconds,omitempty"`
}

// PipelineReport is the stage partition and schedule of a pipelined run.
type PipelineReport struct {
	MicroBatches   int           `json:"micro_batches"`
	Stages         []StageReport `json:"stages"`
	BubbleFraction float64       `json:"bubble_fraction"`
}

// NetReport is a completed network inference run.
type NetReport struct {
	Net             string        `json:"net"`
	Batch           int           `json:"batch"`
	Layers          []LayerReport `json:"layers"`
	Seconds         float64       `json:"machine_seconds"`
	BaselineSeconds float64       `json:"baseline_seconds,omitempty"`
	Speedup         float64       `json:"speedup,omitempty"`
	FLOPs           int64         `json:"flops"`
	GFLOPS          float64       `json:"gflops"`
	TunedLayers     int           `json:"tuned_layers"`
	CachedLayers    int           `json:"cached_layers"`
	DegradedLayers  int           `json:"degraded_layers"`
	// Mode reports the execution path: "single", "data-parallel" or
	// "pipeline". InferencesPerSec is the batch over the aggregate machine
	// seconds — the throughput the scale-out modes exist to raise.
	Mode             string  `json:"mode"`
	InferencesPerSec float64 `json:"inferences_per_sec,omitempty"`
	// CommSeconds and Groups describe a fleet run: the modeled cross-group
	// communication time and the per-group breakdown. Pipeline carries the
	// stage partition and bubble fraction of a pipelined run.
	CommSeconds float64         `json:"comm_seconds,omitempty"`
	Groups      []GroupReport   `json:"groups,omitempty"`
	Pipeline    *PipelineReport `json:"pipeline,omitempty"`
	// Activation memory: the engine's ping-pong buffer-reuse plan vs
	// dedicating every feature map.
	PeakActivationBytes  int64 `json:"peak_activation_bytes"`
	NaiveActivationBytes int64 `json:"naive_activation_bytes"`
	// Metrics is the snapshot of the engine's metrics registry taken right
	// after the run (empty when no registry was attached via SetMetrics).
	Metrics MetricsSnapshot `json:"metrics,omitempty"`

	timeline   *trace.Log
	flops      int64
	dmaBytes   int64
	groupCount int
}

// Timeline renders the merged network timeline: busy-time summary, a
// coarse Gantt chart (one row per timeline channel, or one row per core
// group on a fleet run), and the network roofline (achieved GFLOPS vs the
// peak — scaled by the group count on a fleet run — and achieved DMA
// bandwidth vs the paper's 22.6 GB/s stream bandwidth per group).
func (r *NetReport) Timeline() string {
	if r.timeline == nil {
		return ""
	}
	scale := float64(1)
	if r.groupCount > 1 {
		scale = float64(r.groupCount)
	}
	roof := r.timeline.Roofline(r.flops, r.dmaBytes,
		sw26010.PeakGFlops*scale, sw26010.DMAEffBandwidth*scale)
	return r.timeline.Summary() + r.timeline.Gantt(72) + roof.String()
}

// TraceLog exposes the merged network timeline (nil when unavailable):
// every event carries its operator name, layer index and selected strategy
// as span metadata.
func (r *NetReport) TraceLog() *trace.Log { return r.timeline }

// WriteChromeTrace writes the merged network timeline in the Chrome
// trace-event JSON format; the output opens directly in ui.perfetto.dev.
func (r *NetReport) WriteChromeTrace(w io.Writer) error {
	if r.timeline == nil {
		return (&trace.Log{}).WriteChromeTrace(w)
	}
	return r.timeline.WriteChromeTrace(w)
}

// Infer runs a network ("vgg16", "resnet", "yolo") at one batch size.
func (e *Engine) Infer(net string, batch int) (*NetReport, error) {
	return e.InferCtx(context.Background(), net, batch)
}

// InferCtx is Infer with cancellation: both schedule resolution and the
// layer-by-layer execution stop promptly when ctx is canceled.
func (e *Engine) InferCtx(ctx context.Context, net string, batch int) (*NetReport, error) {
	g, err := graph.ByName(net, batch)
	if err != nil {
		return nil, err
	}
	res, err := e.eng.Run(ctx, g, infer.Options{
		Workers:              e.workers,
		Library:              e.lib,
		Fallback:             e.fallback == FallbackBaseline,
		Faults:               e.faults,
		Retry:                e.retry,
		MaxCandidateFailures: e.maxFailures,
		Functional:           e.verify,
		Tolerance:            e.tolerance,
		Progress:             e.progress,
		Metrics:              e.metrics,
		Observer:             e.observer,
		Searcher:             e.searcher,
		SearchBudget:         e.budget,
		SearchSeed:           e.searchSeed,
		Groups:               e.groups,
		Pipeline:             e.pipeline,
		Builder:              func(b int) (*graph.Graph, error) { return graph.ByName(net, b) },
	})
	if err != nil {
		e.observer.AutoDump("infer failed: " + net)
		return nil, err
	}
	if res.DegradedOps > 0 {
		e.observer.AutoDump("infer degraded: " + net)
	}
	rep := &NetReport{
		Net:                  res.Net,
		Batch:                res.Batch,
		Seconds:              res.Seconds,
		BaselineSeconds:      res.BaselineSeconds,
		Speedup:              res.Speedup,
		FLOPs:                res.FLOPs,
		GFLOPS:               res.GFLOPS(),
		TunedLayers:          res.TunedOps,
		CachedLayers:         res.CachedOps,
		DegradedLayers:       res.DegradedOps,
		Mode:                 res.Mode,
		CommSeconds:          res.CommSeconds,
		PeakActivationBytes:  res.Plan.PeakActivationBytes() + res.Plan.IOBytes,
		NaiveActivationBytes: res.Plan.NaiveBytes + res.Plan.IOBytes,
		timeline:             res.Timeline,
		flops:                res.FLOPs,
		dmaBytes:             res.Counters.DMABytesTouched,
		groupCount:           len(res.Groups),
	}
	if res.Seconds > 0 {
		rep.InferencesPerSec = float64(res.Batch) / res.Seconds
	}
	for _, gr := range res.Groups {
		rep.Groups = append(rep.Groups, GroupReport{
			Group: gr.Group, Batch: gr.Batch, Seconds: gr.Seconds,
		})
	}
	if res.Pipeline != nil {
		p := &PipelineReport{
			MicroBatches:   res.Pipeline.MicroBatches,
			BubbleFraction: res.Pipeline.BubbleFraction,
		}
		for _, st := range res.Pipeline.Stages {
			p.Stages = append(p.Stages, StageReport{
				Group:           st.Group,
				Layers:          st.Nodes,
				Seconds:         st.Seconds,
				TransferSeconds: st.TransferSeconds,
			})
		}
		rep.Pipeline = p
	}
	rep.Metrics = e.metrics.Snapshot()
	for _, l := range res.Layers {
		rep.Layers = append(rep.Layers, LayerReport{
			Name:            l.Name,
			Kind:            string(l.Kind),
			StartSeconds:    l.Start,
			Seconds:         l.Seconds,
			BaselineSeconds: l.BaselineSeconds,
			FLOPs:           l.FLOPs,
			GFLOPS:          l.GFLOPS(),
			Cached:          l.Cached,
			Degraded:        l.Degraded,
			Strategy:        l.Strategy,
			MaxAbsErr:       l.MaxAbsErr,
			Checked:         l.Checked,
		})
	}
	return rep, nil
}
