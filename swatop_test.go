package swatop

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

var (
	tunerOnce sync.Once
	tuner     *Tuner
	tunerErr  error
)

func sharedTuner(t *testing.T) *Tuner {
	t.Helper()
	tunerOnce.Do(func() { tuner, tunerErr = NewTuner() })
	if tunerErr != nil {
		t.Fatal(tunerErr)
	}
	return tuner
}

func TestFacadeTuneGemm(t *testing.T) {
	tuned, err := sharedTuner(t).TuneGemm(GemmParams{M: 256, N: 256, K: 256})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Seconds() <= 0 || tuned.GFLOPS() <= 0 || tuned.SpaceSize() == 0 {
		t.Fatalf("degenerate result: %+v", tuned)
	}
	if tuned.Strategy() == "" {
		t.Fatal("missing strategy description")
	}
	maxErr, err := tuned.VerifyGemm()
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 2e-2 {
		t.Fatalf("verification error %g", maxErr)
	}
	src, err := tuned.EmitC()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "spm_gemm_") {
		t.Fatal("generated C missing primitive call")
	}
	if !strings.Contains(tuned.PrintIR(), "program") {
		t.Fatal("IR printing broken")
	}
}

func TestFacadeTuneConvAllMethods(t *testing.T) {
	s := ConvShape{B: 32, Ni: 64, No: 64, Ro: 16, Co: 16, Kr: 3, Kc: 3}
	for _, method := range []string{Implicit, Explicit, Winograd} {
		tuned, err := sharedTuner(t).TuneConv(method, s)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if tuned.Seconds() <= 0 {
			t.Fatalf("%s: non-positive time", method)
		}
		base, err := BaselineConvSeconds(method, s)
		if err != nil {
			t.Fatalf("%s baseline: %v", method, err)
		}
		t.Logf("%s: swATOP %.3gms vs manual %.3gms (%.2fx)",
			method, tuned.Seconds()*1e3, base*1e3, base/tuned.Seconds())
	}
}

func TestFacadeRejectsUnknownMethod(t *testing.T) {
	if _, err := sharedTuner(t).TuneConv("fft", ConvShape{B: 1, Ni: 16, No: 16, Ro: 8, Co: 8, Kr: 3, Kc: 3}); err == nil {
		t.Fatal("unknown method must be rejected")
	}
	if _, err := BaselineConvSeconds("fft", ConvShape{}); err == nil {
		t.Fatal("unknown baseline method must be rejected")
	}
}

func TestFacadeBatchOneStory(t *testing.T) {
	// The paper's headline inference story: swATOP handles batch 1, the
	// manual library does not.
	s := ConvShape{B: 1, Ni: 64, No: 64, Ro: 16, Co: 16, Kr: 3, Kc: 3}
	if _, err := sharedTuner(t).TuneConv(Implicit, s); err != nil {
		t.Fatalf("swATOP must handle batch 1: %v", err)
	}
	if _, err := BaselineConvSeconds(Implicit, s); err == nil {
		t.Fatal("swDNN baseline must reject batch 1")
	}
}

func TestFacadeLibraryCache(t *testing.T) {
	tn := sharedTuner(t)
	lib := NewLibrary()
	tn.UseLibrary(lib)
	defer tn.UseLibrary(nil)

	p := GemmParams{M: 128, N: 128, K: 128}
	first, err := tn.TuneGemm(p)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 1 {
		t.Fatalf("library has %d entries after tuning", lib.Len())
	}
	second, err := tn.TuneGemm(p) // cache hit: same schedule, no search
	if err != nil {
		t.Fatal(err)
	}
	if second.Strategy() != first.Strategy() || second.Seconds() != first.Seconds() {
		t.Fatal("cache hit returned a different schedule")
	}
	// Persistence round-trip.
	path := t.TempDir() + "/schedules.json"
	if err := lib.Save(path); err != nil {
		t.Fatal(err)
	}
	lib2 := NewLibrary()
	if err := lib2.Load(path); err != nil {
		t.Fatal(err)
	}
	tn.UseLibrary(lib2)
	third, err := tn.TuneGemm(p)
	if err != nil {
		t.Fatal(err)
	}
	if third.Strategy() != first.Strategy() {
		t.Fatal("persisted schedule differs")
	}
}

func TestFacadeStaleLibraryEntryRetunes(t *testing.T) {
	tn := sharedTuner(t)
	lib := NewLibrary()
	tn.UseLibrary(lib)
	defer tn.UseLibrary(nil)

	p := GemmParams{M: 192, N: 192, K: 192}
	first, err := tn.TuneGemm(p)
	if err != nil {
		t.Fatal(err)
	}
	sig := lib.Signatures()[0]
	// Poison the entry: a tile factor far beyond the SPM makes the cached
	// strategy uncompilable, and the tiny recorded time means the
	// keep-the-faster policy would shield it from Put forever — only an
	// explicit Delete can clear it.
	e, _ := lib.Get(sig)
	e.Factors = map[string]int{"m": 1 << 20, "n": 1 << 20, "k": 1 << 20}
	e.SimulatedSeconds = 1e-12
	lib.Delete(sig)
	lib.Put(e)

	second, err := tn.TuneGemm(p)
	if err != nil {
		t.Fatalf("stale entry must fall back to a fresh tuning: %v", err)
	}
	if second.Strategy() != first.Strategy() || second.Seconds() != first.Seconds() {
		t.Fatal("retune after stale entry picked a different schedule")
	}
	got, ok := lib.Get(sig)
	if !ok {
		t.Fatal("retune must restore the library entry")
	}
	if got.Factors["m"] == 1<<20 {
		t.Fatal("stale entry still cached after retuning")
	}
}

func TestFacadeParallelMatchesSequential(t *testing.T) {
	tn := sharedTuner(t)
	p := GemmParams{M: 256, N: 192, K: 128}
	seq, err := tn.TuneGemm(p)
	if err != nil {
		t.Fatal(err)
	}
	tn.SetWorkers(8)
	lastDone := 0
	tn.SetProgress(func(done, valid int) { lastDone = done })
	defer func() {
		tn.SetWorkers(0)
		tn.SetProgress(nil)
	}()
	par, err := tn.TuneGemm(p)
	if err != nil {
		t.Fatal(err)
	}
	if par.Strategy() != seq.Strategy() || par.Seconds() != seq.Seconds() ||
		par.SpaceSize() != seq.SpaceSize() {
		t.Fatalf("parallel tuning differs from sequential:\nseq %s %.6g %d\npar %s %.6g %d",
			seq.Strategy(), seq.Seconds(), seq.SpaceSize(),
			par.Strategy(), par.Seconds(), par.SpaceSize())
	}
	if lastDone == 0 {
		t.Fatal("progress callback never fired")
	}
}

func TestFacadeCancellation(t *testing.T) {
	tn := sharedTuner(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tn.TuneGemmCtx(ctx, GemmParams{M: 256, N: 256, K: 256}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	s := ConvShape{B: 4, Ni: 32, No: 32, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	if _, err := tn.TuneConvCtx(ctx, Implicit, s); !errors.Is(err, context.Canceled) {
		t.Fatalf("conv: want context.Canceled, got %v", err)
	}
}

func TestFacadeBaselineGemm(t *testing.T) {
	secs, err := BaselineGemmSeconds(GemmParams{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Fatal("non-positive baseline time")
	}
}
