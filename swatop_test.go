package swatop

import (
	"strings"
	"sync"
	"testing"
)

var (
	tunerOnce sync.Once
	tuner     *Tuner
	tunerErr  error
)

func sharedTuner(t *testing.T) *Tuner {
	t.Helper()
	tunerOnce.Do(func() { tuner, tunerErr = NewTuner() })
	if tunerErr != nil {
		t.Fatal(tunerErr)
	}
	return tuner
}

func TestFacadeTuneGemm(t *testing.T) {
	tuned, err := sharedTuner(t).TuneGemm(GemmParams{M: 256, N: 256, K: 256})
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Seconds() <= 0 || tuned.GFLOPS() <= 0 || tuned.SpaceSize() == 0 {
		t.Fatalf("degenerate result: %+v", tuned)
	}
	if tuned.Strategy() == "" {
		t.Fatal("missing strategy description")
	}
	maxErr, err := tuned.VerifyGemm()
	if err != nil {
		t.Fatal(err)
	}
	if maxErr > 2e-2 {
		t.Fatalf("verification error %g", maxErr)
	}
	src, err := tuned.EmitC()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(src, "spm_gemm_") {
		t.Fatal("generated C missing primitive call")
	}
	if !strings.Contains(tuned.PrintIR(), "program") {
		t.Fatal("IR printing broken")
	}
}

func TestFacadeTuneConvAllMethods(t *testing.T) {
	s := ConvShape{B: 32, Ni: 64, No: 64, Ro: 16, Co: 16, Kr: 3, Kc: 3}
	for _, method := range []string{Implicit, Explicit, Winograd} {
		tuned, err := sharedTuner(t).TuneConv(method, s)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if tuned.Seconds() <= 0 {
			t.Fatalf("%s: non-positive time", method)
		}
		base, err := BaselineConvSeconds(method, s)
		if err != nil {
			t.Fatalf("%s baseline: %v", method, err)
		}
		t.Logf("%s: swATOP %.3gms vs manual %.3gms (%.2fx)",
			method, tuned.Seconds()*1e3, base*1e3, base/tuned.Seconds())
	}
}

func TestFacadeRejectsUnknownMethod(t *testing.T) {
	if _, err := sharedTuner(t).TuneConv("fft", ConvShape{B: 1, Ni: 16, No: 16, Ro: 8, Co: 8, Kr: 3, Kc: 3}); err == nil {
		t.Fatal("unknown method must be rejected")
	}
	if _, err := BaselineConvSeconds("fft", ConvShape{}); err == nil {
		t.Fatal("unknown baseline method must be rejected")
	}
}

func TestFacadeBatchOneStory(t *testing.T) {
	// The paper's headline inference story: swATOP handles batch 1, the
	// manual library does not.
	s := ConvShape{B: 1, Ni: 64, No: 64, Ro: 16, Co: 16, Kr: 3, Kc: 3}
	if _, err := sharedTuner(t).TuneConv(Implicit, s); err != nil {
		t.Fatalf("swATOP must handle batch 1: %v", err)
	}
	if _, err := BaselineConvSeconds(Implicit, s); err == nil {
		t.Fatal("swDNN baseline must reject batch 1")
	}
}

func TestFacadeLibraryCache(t *testing.T) {
	tn := sharedTuner(t)
	lib := NewLibrary()
	tn.UseLibrary(lib)
	defer tn.UseLibrary(nil)

	p := GemmParams{M: 128, N: 128, K: 128}
	first, err := tn.TuneGemm(p)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 1 {
		t.Fatalf("library has %d entries after tuning", lib.Len())
	}
	second, err := tn.TuneGemm(p) // cache hit: same schedule, no search
	if err != nil {
		t.Fatal(err)
	}
	if second.Strategy() != first.Strategy() || second.Seconds() != first.Seconds() {
		t.Fatal("cache hit returned a different schedule")
	}
	// Persistence round-trip.
	path := t.TempDir() + "/schedules.json"
	if err := lib.Save(path); err != nil {
		t.Fatal(err)
	}
	lib2 := NewLibrary()
	if err := lib2.Load(path); err != nil {
		t.Fatal(err)
	}
	tn.UseLibrary(lib2)
	third, err := tn.TuneGemm(p)
	if err != nil {
		t.Fatal(err)
	}
	if third.Strategy() != first.Strategy() {
		t.Fatal("persisted schedule differs")
	}
}

func TestFacadeBaselineGemm(t *testing.T) {
	secs, err := BaselineGemmSeconds(GemmParams{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Fatal("non-positive baseline time")
	}
}
