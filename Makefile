GO ?= go

.PHONY: all build vet fmt test race ci bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fails when any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The tier-1 loop: what every change must keep green.
ci: build vet fmt test race

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
