GO ?= go

.PHONY: all build vet unreachable fmt test race fuzz ci bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Dedicated unreachable-code pass: recover()-based panic isolation makes it
# easy to leave dead branches behind.
unreachable:
	$(GO) vet -unreachable ./...

# Fails when any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz smoke: the schedule-library loader must quarantine arbitrary corrupt
# input, never crash on it.
fuzz:
	$(GO) test ./internal/cache -run '^$$' -fuzz FuzzLibraryLoad -fuzztime 10s

# The tier-1 loop: what every change must keep green.
ci: build vet unreachable fmt test race fuzz

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
