GO ?= go

.PHONY: all build vet unreachable fmt test race fuzz shuffle ci bench

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Dedicated unreachable-code pass: recover()-based panic isolation makes it
# easy to leave dead branches behind.
unreachable:
	$(GO) vet -unreachable ./...

# Fails when any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz smoke: the schedule-library loader must quarantine arbitrary corrupt
# input, never crash on it.
fuzz:
	$(GO) test ./internal/cache -run '^$$' -fuzz FuzzLibraryLoad -fuzztime 10s

# Order-independence: tests must pass in any execution order (catches
# hidden coupling through shared caches, libraries or package state).
shuffle:
	$(GO) test -shuffle=on -count=1 ./...

# The tier-1 loop: what every change must keep green.
ci: build vet unreachable fmt test race fuzz shuffle

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .
