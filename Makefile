GO ?= go

# Minimum total statement coverage `make cover` accepts. Measured 71.5%
# after the observability subsystem landed; the baseline sits a few
# points below so honest refactors don't trip it while real coverage
# regressions do.
COVER_BASELINE ?= 69.0

.PHONY: all build vet unreachable fmt test race fuzz shuffle cover chaos ci \
	search-check trace-check obs-check bench bench-snapshot bench-check \
	bench-diff

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Dedicated unreachable-code pass: recover()-based panic isolation makes it
# easy to leave dead branches behind.
unreachable:
	$(GO) vet -unreachable ./...

# Fails when any file needs gofmt.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz smoke: the schedule-library loader must quarantine arbitrary corrupt
# input, the event encoder must emit valid JSON/SSE frames for any input,
# and the search feature extractor must return a fixed-length finite vector
# for any candidate — none may ever crash.
fuzz:
	$(GO) test ./internal/cache -run '^$$' -fuzz FuzzLibraryLoad -fuzztime 10s
	$(GO) test ./internal/obsrv -run '^$$' -fuzz FuzzEventEncoder -fuzztime 10s
	$(GO) test ./internal/search -run '^$$' -fuzz FuzzFeatureVector -fuzztime 10s

# Order-independence: tests must pass in any execution order (catches
# hidden coupling through shared caches, libraries or package state).
shuffle:
	$(GO) test -shuffle=on -count=1 ./...

# Chaos smoke: the serving path under fault injection (half of all tuning
# measurements fail, compute periodically stalls, then DMA transfers fail)
# with the race detector on. Measurement faults must yield only 200/429/408
# — degraded, shed or expired, never crashed; DMA faults during execution
# may fail batches with 500 but the daemon must answer every request,
# recover once the faults clear, and still drain cleanly afterwards.
chaos:
	$(GO) test -race -run TestChaos -count=1 ./internal/serve/...

# Coverage gate: total statement coverage must stay at or above
# COVER_BASELINE. Writes cover.out for `go tool cover -html=cover.out`.
cover:
	$(GO) test -covermode=atomic -coverprofile=cover.out ./...
	@total="$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "total coverage: $$total% (baseline $(COVER_BASELINE)%)"; \
	awk -v t="$$total" -v b="$(COVER_BASELINE)" 'BEGIN { exit (t+0 >= b+0) ? 0 : 1 }' || \
		{ echo "coverage $$total% fell below baseline $(COVER_BASELINE)%"; exit 1; }

# Sample-efficient-search quality gate: the evolutionary searcher at a 10%
# measurement budget must stay within 5% of the exhaustive walk's schedule
# on every unique VGG16 conv shape (and within 10% aggregate coverage).
search-check:
	$(GO) run ./cmd/swbench -search-check

# Tracing acceptance: the 2000-request load run with tracing and SLO
# guardrails attached (phase sums match latency, /tracez serves complete
# span trees, a forced breach captures flight dump + CPU profile), plus
# the invariant that tracing leaves simulated machine seconds
# bit-identical to a tracing-disabled server.
trace-check:
	$(GO) test -run 'TestTraceMachineSecondsInvariant|TestTraceAcceptanceLoad' -count=1 -v ./internal/serve/...

# Telemetry acceptance: the history scraper storming the registry leaves
# selected schedules and every deterministic metric bit-identical to a
# history-disabled run, scrape-while-write is race-clean, and bench-diff
# on identical snapshots attributes to zero everywhere.
obs-check:
	$(GO) test -race -run 'TestHistoryMachineSecondsInvariant|TestConcurrentScrapeWhileWrite|TestConcurrentRegistrySnapshot' -count=1 -v ./internal/tshist/
	$(GO) test -run 'TestAttributeIdenticalZero' -count=1 -v ./internal/bench/
	$(GO) run ./cmd/swbench -bench-diff BENCH_baseline.json BENCH_baseline.json

# The tier-1 loop: what every change must keep green.
ci: build vet unreachable fmt test race fuzz shuffle cover chaos search-check trace-check obs-check

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

# Performance trajectory: BENCH_baseline.json records the canonical
# workloads' machine seconds at the last accepted baseline.
# bench-snapshot refreshes it (commit the diff deliberately);
# bench-check fails when the current tree tunes worse than the baseline.
bench-snapshot:
	$(GO) run ./cmd/swbench -bench-out BENCH_baseline.json

bench-check:
	$(GO) run ./cmd/swbench -bench-against BENCH_baseline.json

# Differential attribution between two snapshot files:
#   make bench-diff OLD=old.json NEW=new.json
# explains each machine-seconds delta per workload -> phase (exec/comm) ->
# layer, naming schedule changes. Defaults compare the committed baseline
# against itself (zero everywhere).
OLD ?= BENCH_baseline.json
NEW ?= BENCH_baseline.json
bench-diff:
	$(GO) run ./cmd/swbench -bench-diff $(OLD) $(NEW)
