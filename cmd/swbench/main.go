// Command swbench regenerates the paper's tables and figures against the
// simulated SW26010.
//
// Usage:
//
//	swbench [-full] [-csv] [-json] [-workers N] [-searcher evo|anneal]
//	        [-budget F] [-metrics -|file] [-trace-out trace.json]
//	        [-listen addr] [experiment ...]
//	swbench -bench-out BENCH.json
//	swbench -bench-against BENCH.json [-bench-tolerance pct]
//	swbench -bench-diff OLD.json NEW.json
//	swbench -search-check
//
// Experiments: substrate fig5 fig6 fig7 table1 fig8 table2 table3 fig9
// fig10 fig11 (default: all). -full runs the complete parameter grids
// instead of the quick stratified subsets. -workers tunes sweep entries
// in parallel; every reported number is identical for any worker count.
// -metrics reports the session's cumulative tuning metrics; -trace-out
// writes a host-side timeline (one span per experiment, wall time) in
// Chrome trace-event JSON; -listen serves live introspection while the
// sweeps run.
//
// -bench-out / -bench-against skip the experiment tables and instead run
// the canonical performance workloads (the 2048^3 GEMM point, VGG16
// batch-1 inference, and VGG16 batch-8 throughput on 1 and 4 core
// groups), writing or gating on a machine-seconds snapshot — the repo's
// performance trajectory record. -bench-diff runs nothing: it compares
// two snapshot files and attributes every delta per workload, per phase
// (exec vs comm machine seconds, serving p99 phases), and per layer —
// naming the conv and the phase a regression lives in, and any schedule
// change on that layer.
//
// -searcher replaces the exhaustive schedule walk with a sample-efficient
// search (evolutionary or simulated annealing) that measures at most
// -budget of each space; -search-check is the quality gate that holds the
// evolutionary searcher to within 5% of the exhaustive result on the VGG16
// conv set.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"swatop"
	"swatop/internal/autotune"
	"swatop/internal/bench"
	"swatop/internal/cliobs"
	"swatop/internal/experiments"
	"swatop/internal/metrics"
	"swatop/internal/trace"
)

func main() {
	full := flag.Bool("full", false, "run complete parameter grids (slow)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit JSON instead of aligned tables")
	workers := flag.Int("workers", runtime.NumCPU(),
		"concurrent tuning workers (results are worker-count independent)")
	retries := flag.Int("retries", 1,
		"total attempts per candidate measurement for transient errors (reported numbers are retry-independent)")
	benchOut := flag.String("bench-out", "",
		"run the canonical performance workloads and write the snapshot JSON to this file")
	benchAgainst := flag.String("bench-against", "",
		"run the canonical performance workloads and compare against this snapshot file (exit 1 on regression)")
	benchTolerance := flag.Float64("bench-tolerance", bench.DefaultTolerancePct,
		"allowed machine-seconds regression in percent for -bench-against")
	benchDiff := flag.Bool("bench-diff", false,
		"attribute the machine-seconds difference between two snapshot files (swbench -bench-diff old.json new.json); runs nothing, exit 1 on regression")
	searcherName := flag.String("searcher", "",
		"search strategy: evo or anneal; empty = exhaustive walk (results stay worker-count independent)")
	budget := flag.Float64("budget", 0,
		"fraction of each schedule space a -searcher may measure (0 = default 0.10)")
	searchCheck := flag.Bool("search-check", false,
		"quality gate: tune the VGG16 conv set exhaustively and with '-searcher evo -budget 0.10'; exit 1 if any layer's chosen schedule is >5% slower")
	obsFlags := cliobs.Register(flag.CommandLine,
		"write a host-side experiment timeline (wall time) as Chrome trace-event JSON")
	flag.Parse()

	if *benchDiff {
		// Pure file comparison: no tuner, no session, no workloads run.
		os.Exit(benchDiffCmd(flag.Args()))
	}

	searcher, err := swatop.SearcherByName(*searcherName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		os.Exit(2)
	}

	runner, err := experiments.NewRunner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		os.Exit(1)
	}
	runner.Quick = !*full
	runner.Workers = *workers
	runner.Searcher = searcher
	runner.SearchBudget = *budget
	if *retries > 1 {
		runner.Retry = autotune.Retry{Attempts: *retries}
	}
	reg := metrics.NewRegistry()
	runner.Metrics = reg
	sess, err := obsFlags.Start("swbench", reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		os.Exit(1)
	}
	defer sess.Close()
	runner.Observer = sess.Observer

	if *searchCheck {
		code := searchCheckCmd(sess, *workers)
		if err := sess.WriteMetrics(true); err != nil {
			fmt.Fprintln(os.Stderr, "swbench:", err)
			code = 1
		}
		if code != 0 {
			sess.Close()
			os.Exit(code)
		}
		return
	}

	if *benchOut != "" || *benchAgainst != "" {
		code := benchCmd(sess, *benchOut, *benchAgainst, *benchTolerance, *workers)
		if err := sess.WriteMetrics(true); err != nil {
			fmt.Fprintln(os.Stderr, "swbench:", err)
			code = 1
		}
		if code != 0 {
			sess.Close()
			os.Exit(code)
		}
		return
	}

	progress := false
	runner.Progress = func(done, total int) {
		progress = true
		// Counts come from the live registry: cumulative over the whole
		// session, not just the current sweep entry. Space points are
		// recorded by every tuning run, so the coverage ratio shows how
		// much of the candidate space was actually measured — 100% for the
		// exhaustive walk, the budget fraction under -searcher.
		cands := reg.Counter("autotune_candidates_total").Value()
		space := reg.Counter("autotune_space_points_total").Value()
		if space > 0 {
			fmt.Fprintf(os.Stderr, "\r%d/%d tuned (%d of %d candidates measured, %.1f%% of space)",
				done, total, cands, space, 100*float64(cands)/float64(space))
			return
		}
		fmt.Fprintf(os.Stderr, "\r%d/%d tuned (%d candidates searched)", done, total, cands)
	}

	hostLog := &trace.Log{}
	sessionStart := time.Now()

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		if sess.Context().Err() != nil {
			// SIGTERM/SIGINT drain: finish the experiment that was running,
			// skip the rest, still flush traces and metrics below.
			fmt.Fprintln(os.Stderr, "swbench: draining, skipping remaining experiments")
			break
		}
		e, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swbench:", err)
			os.Exit(1)
		}
		start := time.Now()
		table, err := e.Run(runner)
		if progress {
			fmt.Fprintln(os.Stderr)
			progress = false
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "swbench %s: %v\n", id, err)
			os.Exit(1)
		}
		hostLog.Add(trace.Kind("experiment"), e.ID,
			start.Sub(sessionStart).Seconds(), time.Since(start).Seconds())
		reg.Counter("swbench_experiments_total").Inc()
		switch {
		case *jsonOut:
			doc, err := table.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "swbench %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(doc)
		case *csv:
			fmt.Printf("# %s\n%s\n", e.Title, table.CSV())
		default:
			fmt.Println(table.String())
		}
		out := os.Stdout
		if *jsonOut {
			// Keep stdout machine-parseable when emitting JSON.
			out = os.Stderr
		}
		fmt.Fprintf(out, "(%s finished in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if err := cliobs.WriteTrace(obsFlags.TraceOut, hostLog.WriteChromeTrace); err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		os.Exit(1)
	}
	if err := sess.WriteMetrics(*jsonOut || *csv); err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		os.Exit(1)
	}
}
