// Command swbench regenerates the paper's tables and figures against the
// simulated SW26010.
//
// Usage:
//
//	swbench [-full] [-csv] [-json] [-workers N] [experiment ...]
//
// Experiments: substrate fig5 fig6 fig7 table1 fig8 table2 table3 fig9
// fig10 fig11 (default: all). -full runs the complete parameter grids
// instead of the quick stratified subsets. -workers tunes sweep entries
// in parallel; every reported number is identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"swatop/internal/autotune"
	"swatop/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run complete parameter grids (slow)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit JSON instead of aligned tables")
	workers := flag.Int("workers", runtime.NumCPU(),
		"concurrent tuning workers (results are worker-count independent)")
	retries := flag.Int("retries", 1,
		"total attempts per candidate measurement for transient errors (reported numbers are retry-independent)")
	flag.Parse()

	runner, err := experiments.NewRunner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		os.Exit(1)
	}
	runner.Quick = !*full
	runner.Workers = *workers
	if *retries > 1 {
		runner.Retry = autotune.Retry{Attempts: *retries}
	}
	progress := false
	runner.Progress = func(done, total int) {
		progress = true
		fmt.Fprintf(os.Stderr, "\r%d/%d tuned", done, total)
	}

	ids := flag.Args()
	if len(ids) == 0 {
		for _, e := range experiments.All() {
			ids = append(ids, e.ID)
		}
	}
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swbench:", err)
			os.Exit(1)
		}
		start := time.Now()
		table, err := e.Run(runner)
		if progress {
			fmt.Fprintln(os.Stderr)
			progress = false
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "swbench %s: %v\n", id, err)
			os.Exit(1)
		}
		switch {
		case *jsonOut:
			doc, err := table.JSON()
			if err != nil {
				fmt.Fprintf(os.Stderr, "swbench %s: %v\n", id, err)
				os.Exit(1)
			}
			fmt.Println(doc)
		case *csv:
			fmt.Printf("# %s\n%s\n", e.Title, table.CSV())
		default:
			fmt.Println(table.String())
		}
		out := os.Stdout
		if *jsonOut {
			// Keep stdout machine-parseable when emitting JSON.
			out = os.Stderr
		}
		fmt.Fprintf(out, "(%s finished in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
