package main

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"swatop"
	"swatop/internal/bench"
	"swatop/internal/cliobs"
)

// benchCmd implements -bench-out / -bench-against: it runs the canonical
// performance workloads, optionally writes the snapshot, optionally
// compares against a baseline file, and returns the process exit code.
func benchCmd(sess *cliobs.Session, out, against string, tolerancePct float64, workers int) int {
	snap, err := collectSnapshot(sess, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		return 1
	}
	if out != "" {
		if err := snap.WriteFile(out); err != nil {
			fmt.Fprintln(os.Stderr, "swbench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench snapshot: %s\n", out)
	}
	if against != "" {
		base, err := bench.Load(against)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swbench:", err)
			return 1
		}
		diff := bench.Compare(snap, base, tolerancePct)
		fmt.Print(diff.String())
		if !diff.OK() {
			fmt.Fprintf(os.Stderr, "swbench: machine-seconds regression beyond %.2f%% tolerance: %v\n",
				tolerancePct, diff.Regressions())
			return 1
		}
		fmt.Printf("bench: no regression beyond %.2f%% tolerance\n", tolerancePct)
	}
	return 0
}

// collectSnapshot tunes the canonical workloads: the paper's headline
// 2048^3 GEMM point, VGG16 batch-1 end-to-end inference, and the VGG16
// batch-8 throughput points at one core group and at the full 4-group
// fleet. Machine seconds are worker-count independent, so `workers` only
// affects the recorded wall seconds.
func collectSnapshot(sess *cliobs.Session, workers int) (*bench.Snapshot, error) {
	snap := &bench.Snapshot{
		Schema:    bench.SchemaVersion,
		Name:      "swatop-canonical",
		GoVersion: runtime.Version(),
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}

	stop := sess.StartProgress(os.Stderr)
	defer stop()

	reg := swatop.NewMetricsRegistry()
	tuner, err := swatop.NewTuner()
	if err != nil {
		return nil, err
	}
	tuner.SetWorkers(workers)
	tuner.SetMetrics(reg)
	tuner.SetObserver(sess.Observer)
	start := time.Now()
	tuned, err := tuner.TuneGemm(swatop.GemmParams{M: 2048, N: 2048, K: 2048})
	if err != nil {
		return nil, fmt.Errorf("bench gemm-2048: %w", err)
	}
	snap.Workloads = append(snap.Workloads, bench.Workload{
		Name:           "gemm-2048",
		MachineSeconds: tuned.Seconds(),
		WallSeconds:    time.Since(start).Seconds(),
		Candidates:     reg.Counter("autotune_candidates_total").Value(),
		GFLOPS:         tuned.GFLOPS(),
	})

	reg = swatop.NewMetricsRegistry()
	eng, err := swatop.NewEngine()
	if err != nil {
		return nil, err
	}
	eng.SetWorkers(workers)
	eng.SetMetrics(reg)
	eng.SetObserver(sess.Observer)
	start = time.Now()
	rep, err := eng.Infer("vgg16", 1)
	if err != nil {
		return nil, fmt.Errorf("bench vgg16-b1: %w", err)
	}
	snap.Workloads = append(snap.Workloads, bench.Workload{
		Name:           "vgg16-b1",
		MachineSeconds: rep.Seconds,
		WallSeconds:    time.Since(start).Seconds(),
		Candidates:     reg.Counter("autotune_candidates_total").Value(),
		GFLOPS:         rep.GFLOPS,
	})

	// The scale-out throughput rows: VGG16 batch 8 on one core group and
	// on the full 4-group fleet (hybrid data parallelism). Gating their
	// machine seconds gates the fleet speedup.
	for _, w := range []struct {
		name   string
		groups int
	}{
		{"vgg16-b8-g1", 1},
		{"vgg16-b8-g4", 4},
	} {
		reg = swatop.NewMetricsRegistry()
		eng, err = swatop.NewEngine()
		if err != nil {
			return nil, err
		}
		eng.SetWorkers(workers)
		eng.SetGroups(w.groups)
		eng.SetMetrics(reg)
		eng.SetObserver(sess.Observer)
		start = time.Now()
		rep, err = eng.Infer("vgg16", 8)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", w.name, err)
		}
		snap.Workloads = append(snap.Workloads, bench.Workload{
			Name:             w.name,
			MachineSeconds:   rep.Seconds,
			WallSeconds:      time.Since(start).Seconds(),
			Candidates:       reg.Counter("autotune_candidates_total").Value(),
			GFLOPS:           rep.GFLOPS,
			InferencesPerSec: rep.InferencesPerSec,
		})
	}
	return snap, nil
}
