package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"swatop"
	"swatop/internal/bench"
	"swatop/internal/cache"
	"swatop/internal/cliobs"
	"swatop/internal/graph"
	"swatop/internal/metrics"
	"swatop/internal/serve"
	"swatop/internal/serve/loadtest"
)

// benchCmd implements -bench-out / -bench-against: it runs the canonical
// performance workloads, optionally writes the snapshot, optionally
// compares against a baseline file, and returns the process exit code.
func benchCmd(sess *cliobs.Session, out, against string, tolerancePct float64, workers int) int {
	snap, err := collectSnapshot(sess, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		return 1
	}
	if out != "" {
		if err := snap.WriteFile(out); err != nil {
			fmt.Fprintln(os.Stderr, "swbench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "bench snapshot: %s\n", out)
	}
	if against != "" {
		base, err := bench.Load(against)
		if err != nil {
			fmt.Fprintln(os.Stderr, "swbench:", err)
			return 1
		}
		diff := bench.Compare(snap, base, tolerancePct)
		fmt.Print(diff.String())
		if !diff.OK() {
			// Attribute the failure before exiting: the gate's job is not
			// just "something regressed" but naming the layer and phase.
			fmt.Print(bench.Attribute(base, snap).String())
			fmt.Fprintf(os.Stderr, "swbench: machine-seconds regression beyond %.2f%% tolerance: %v\n",
				tolerancePct, diff.Regressions())
			return 1
		}
		fmt.Printf("bench: no regression beyond %.2f%% tolerance\n", tolerancePct)
	}
	return 0
}

// benchDiffCmd implements -bench-diff OLD.json NEW.json: no workloads are
// run; the two snapshot files are compared and every machine-seconds delta
// is attributed per workload, per phase (exec vs comm), and per layer,
// naming schedule changes. Exit 1 when the new snapshot regresses any
// workload, 0 otherwise (identical snapshots attribute to zero — the
// obs-check gate relies on that).
func benchDiffCmd(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "swbench: -bench-diff needs exactly two snapshot files: old.json new.json")
		return 2
	}
	old, err := bench.Load(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		return 1
	}
	cur, err := bench.Load(args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		return 1
	}
	a := bench.Attribute(old, cur)
	fmt.Print(a.String())
	if top := a.Top(); top != nil {
		phase, layer := top.TopPhase(), ""
		if l := top.TopLayer(); l != nil {
			layer = l.Name
		}
		fmt.Fprintf(os.Stderr, "swbench: %s regressed %+.2f%% (phase %s, layer %s)\n",
			top.Name, top.DeltaPct, orDash(phase), orDash(layer))
		return 1
	}
	return 0
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// layerCosts converts a network report's per-layer breakdown into the
// snapshot's attribution records.
func layerCosts(rep *swatop.NetReport) []bench.LayerCost {
	out := make([]bench.LayerCost, 0, len(rep.Layers))
	for _, l := range rep.Layers {
		out = append(out, bench.LayerCost{
			Name: l.Name, Kind: l.Kind, Seconds: l.Seconds, Strategy: l.Strategy,
		})
	}
	return out
}

// collectSnapshot tunes the canonical workloads: the paper's headline
// 2048^3 GEMM point, VGG16 batch-1 end-to-end inference, and the VGG16
// batch-8 throughput points at one core group and at the full 4-group
// fleet. Machine seconds are worker-count independent, so `workers` only
// affects the recorded wall seconds.
func collectSnapshot(sess *cliobs.Session, workers int) (*bench.Snapshot, error) {
	snap := &bench.Snapshot{
		Schema:    bench.SchemaVersion,
		Name:      "swatop-canonical",
		GoVersion: runtime.Version(),
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}

	stop := sess.StartProgress(os.Stderr)
	defer stop()

	reg := swatop.NewMetricsRegistry()
	tuner, err := swatop.NewTuner()
	if err != nil {
		return nil, err
	}
	tuner.SetWorkers(workers)
	tuner.SetMetrics(reg)
	tuner.SetObserver(sess.Observer)
	start := time.Now()
	tuned, err := tuner.TuneGemm(swatop.GemmParams{M: 2048, N: 2048, K: 2048})
	if err != nil {
		return nil, fmt.Errorf("bench gemm-2048: %w", err)
	}
	snap.Workloads = append(snap.Workloads, bench.Workload{
		Name:           "gemm-2048",
		MachineSeconds: tuned.Seconds(),
		WallSeconds:    time.Since(start).Seconds(),
		Candidates:     reg.Counter("autotune_candidates_total").Value(),
		GFLOPS:         tuned.GFLOPS(),
		ExecSeconds:    tuned.Seconds(),
		Layers: []bench.LayerCost{{
			Name: "gemm-2048", Kind: "gemm",
			Seconds: tuned.Seconds(), Strategy: tuned.Strategy(),
		}},
	})

	reg = swatop.NewMetricsRegistry()
	eng, err := swatop.NewEngine()
	if err != nil {
		return nil, err
	}
	eng.SetWorkers(workers)
	eng.SetMetrics(reg)
	eng.SetObserver(sess.Observer)
	start = time.Now()
	rep, err := eng.Infer("vgg16", 1)
	if err != nil {
		return nil, fmt.Errorf("bench vgg16-b1: %w", err)
	}
	snap.Workloads = append(snap.Workloads, bench.Workload{
		Name:           "vgg16-b1",
		MachineSeconds: rep.Seconds,
		WallSeconds:    time.Since(start).Seconds(),
		Candidates:     reg.Counter("autotune_candidates_total").Value(),
		GFLOPS:         rep.GFLOPS,
		ExecSeconds:    rep.Seconds - rep.CommSeconds,
		CommSeconds:    rep.CommSeconds,
		Layers:         layerCosts(rep),
	})

	// The sample-efficient-search row: the same batch-1 inference tuned by
	// the evolutionary searcher at the default 10% measurement budget.
	// Informational but deterministic — it records how close budgeted
	// search stays to the exhaustive row above, and at what coverage.
	reg = swatop.NewMetricsRegistry()
	eng, err = swatop.NewEngine()
	if err != nil {
		return nil, err
	}
	eng.SetWorkers(workers)
	eng.SetMetrics(reg)
	eng.SetObserver(sess.Observer)
	eng.SetSearcher(swatop.NewEvoSearcher())
	start = time.Now()
	rep, err = eng.Infer("vgg16", 1)
	if err != nil {
		return nil, fmt.Errorf("bench vgg16-b1-evo: %w", err)
	}
	cands := reg.Counter("autotune_candidates_total").Value()
	space := reg.Counter("autotune_space_points_total").Value()
	evoRow := bench.Workload{
		Name:           "vgg16-b1-evo",
		MachineSeconds: rep.Seconds,
		WallSeconds:    time.Since(start).Seconds(),
		Candidates:     cands,
		GFLOPS:         rep.GFLOPS,
		SpacePoints:    space,
		ExecSeconds:    rep.Seconds - rep.CommSeconds,
		CommSeconds:    rep.CommSeconds,
		Layers:         layerCosts(rep),
	}
	if space > 0 {
		evoRow.CoveragePct = 100 * float64(cands) / float64(space)
	}
	snap.Workloads = append(snap.Workloads, evoRow)

	// The scale-out throughput rows: VGG16 batch 8 on one core group and
	// on the full 4-group fleet (hybrid data parallelism). Gating their
	// machine seconds gates the fleet speedup.
	for _, w := range []struct {
		name   string
		groups int
	}{
		{"vgg16-b8-g1", 1},
		{"vgg16-b8-g4", 4},
	} {
		reg = swatop.NewMetricsRegistry()
		eng, err = swatop.NewEngine()
		if err != nil {
			return nil, err
		}
		eng.SetWorkers(workers)
		eng.SetGroups(w.groups)
		eng.SetMetrics(reg)
		eng.SetObserver(sess.Observer)
		start = time.Now()
		rep, err = eng.Infer("vgg16", 8)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", w.name, err)
		}
		snap.Workloads = append(snap.Workloads, bench.Workload{
			Name:             w.name,
			MachineSeconds:   rep.Seconds,
			WallSeconds:      time.Since(start).Seconds(),
			Candidates:       reg.Counter("autotune_candidates_total").Value(),
			GFLOPS:           rep.GFLOPS,
			InferencesPerSec: rep.InferencesPerSec,
			ExecSeconds:      rep.Seconds - rep.CommSeconds,
			CommSeconds:      rep.CommSeconds,
			Layers:           layerCosts(rep),
		})
	}

	w, err := collectServeWorkload(sess, workers)
	if err != nil {
		return nil, err
	}
	snap.Workloads = append(snap.Workloads, *w)
	return snap, nil
}

// collectServeWorkload runs the serving-path row, vgg16-serve-b8: warm the
// daemon's batch-8 bucket (its deterministic machine seconds gate the row,
// exactly like the offline vgg16-b8-g1 point — same network, same tuner,
// same single group), then drive a sustained closed-loop load-test through
// the real HTTP stack for the informational throughput and p99 numbers.
func collectServeWorkload(sess *cliobs.Session, workers int) (*bench.Workload, error) {
	reg := metrics.NewRegistry()
	lib := cache.NewLibrary()
	lib.SetMetrics(reg)
	srv, err := serve.New(serve.Config{
		Net:         "vgg16",
		Builder:     func(b int) (*graph.Graph, error) { return graph.ByName("vgg16", b) },
		MaxBatch:    8,
		Buckets:     []int{8},
		BatchWindow: time.Millisecond,
		Workers:     workers,
		Library:     lib,
		Metrics:     reg,
		Observer:    sess.Observer,
	})
	if err != nil {
		return nil, fmt.Errorf("bench vgg16-serve-b8: %w", err)
	}
	start := time.Now()
	secs, err := srv.Warmup(context.Background())
	if err != nil {
		return nil, fmt.Errorf("bench vgg16-serve-b8: warmup: %w", err)
	}
	wall := time.Since(start).Seconds()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("bench vgg16-serve-b8: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	rep, err := loadtest.Run("http://"+ln.Addr().String(), loadtest.Options{
		Clients:  16,
		Requests: 256,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	srv.Drain(ctx)
	httpSrv.Close()
	if err != nil {
		return nil, fmt.Errorf("bench vgg16-serve-b8: load: %w", err)
	}
	if rep.OK == 0 {
		return nil, fmt.Errorf("bench vgg16-serve-b8: load-test served nothing: %s", rep)
	}
	sec := secs[8]
	g, err := graph.ByName("vgg16", 8)
	if err != nil {
		return nil, fmt.Errorf("bench vgg16-serve-b8: %w", err)
	}
	return &bench.Workload{
		Name:           "vgg16-serve-b8",
		MachineSeconds: sec,
		WallSeconds:    wall,
		Candidates:     reg.Counter("autotune_candidates_total").Value(),
		GFLOPS:         float64(g.FLOPs()) / sec / 1e9,
		ExecSeconds:    sec,
		// Sustained numbers from the closed-loop HTTP run (wall-clock,
		// host-dependent, never gated).
		InferencesPerSec: rep.ThroughputRPS,
		P99Ms:            rep.P99Ms,
		Phases: &bench.PhaseAttribution{
			QueueP99Ms: rep.Phases.Queue.P99Ms,
			BatchP99Ms: rep.Phases.Batch.P99Ms,
			ExecP99Ms:  rep.Phases.Exec.P99Ms,
			CommP99Ms:  rep.Phases.Comm.P99Ms,
		},
	}, nil
}
