package main

import (
	"fmt"
	"os"
	"time"

	"swatop"
	"swatop/internal/autotune"
	"swatop/internal/cliobs"
	"swatop/internal/conv"
	"swatop/internal/experiments"
	"swatop/internal/workloads"
)

// searchCheckSlowdownPct is the quality gate: the evolutionary searcher's
// chosen schedule may be at most this much slower (simulated machine
// seconds) than the exhaustive walk's, on every layer.
const searchCheckSlowdownPct = 5.0

// searchCheckCoveragePct caps the sample budget the gate certifies: across
// the whole conv set the searcher must measure at most this fraction of
// the candidate space.
const searchCheckCoveragePct = 10.0

// searchCheckCmd implements -search-check: tune the unique VGG16 batch-1
// convolution shapes twice — the exhaustive walk and the evolutionary
// searcher at a 0.10 budget — and fail if the searcher's schedule is >5%
// slower on any layer or its aggregate coverage exceeds 10% of the space.
// This is the CI gate that keeps sample-efficient search honest.
func searchCheckCmd(sess *cliobs.Session, workers int) int {
	exhaustive, err := experiments.NewRunner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		return 1
	}
	exhaustive.Workers = workers
	exhaustive.Observer = sess.Observer

	evo, err := experiments.NewRunner()
	if err != nil {
		fmt.Fprintln(os.Stderr, "swbench:", err)
		return 1
	}
	evo.Workers = workers
	evo.Observer = sess.Observer
	evo.Searcher = swatop.NewEvoSearcher()
	evo.SearchBudget = autotune.DefaultSearchBudget

	// Unique shapes only: VGG16 repeats conv3_2/3_3 etc.; tuning a
	// duplicate shape proves nothing the first instance didn't.
	var layers []workloads.ConvLayer
	seen := map[string]bool{}
	for _, l := range workloads.VGG16() {
		key := fmt.Sprintf("%dx%dx%dx%d", l.Ni, l.No, l.R, l.K)
		if seen[key] {
			continue
		}
		seen[key] = true
		layers = append(layers, l)
	}

	fmt.Printf("search-check: %d unique VGG16 conv shapes, evo budget %.0f%%, gate %.0f%% slowdown\n",
		len(layers), autotune.DefaultSearchBudget*100, searchCheckSlowdownPct)
	start := time.Now()
	var failures int
	var spaceTotal, measuredTotal int
	for _, l := range layers {
		shape := l.Shape(1)
		// conv1_1's Ni=3 is below the implicit method's channel minimum;
		// tune it the way the inference path lowers it, via explicit im2col.
		method := "implicit"
		if shape.Ni < conv.MinNiImplicit {
			method = "explicit"
		}
		if sess.Context().Err() != nil {
			fmt.Fprintln(os.Stderr, "swbench: draining, search-check aborted")
			return 1
		}
		base, err := exhaustive.TuneConv(method, shape)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swbench: %s exhaustive: %v\n", l, err)
			return 1
		}
		got, err := evo.TuneConv(method, shape)
		if err != nil {
			fmt.Fprintf(os.Stderr, "swbench: %s evo: %v\n", l, err)
			return 1
		}
		spaceTotal += got.SpaceSize
		measuredTotal += got.Measured
		slowdown := 100 * (got.Best.Measured - base.Best.Measured) / base.Best.Measured
		status := "ok"
		if slowdown > searchCheckSlowdownPct {
			status = "FAIL"
			failures++
		}
		fmt.Printf("  %-16s exhaustive %.4gms  evo %.4gms (%+.2f%%)  %d/%d measured  %s\n",
			l.Name, base.Best.Measured*1e3, got.Best.Measured*1e3, slowdown,
			got.Measured, got.SpaceSize, status)
	}
	coverage := 100 * float64(measuredTotal) / float64(spaceTotal)
	fmt.Printf("search-check: coverage %.1f%% of %d candidates, %d/%d layers within %.0f%% (%s)\n",
		coverage, spaceTotal, len(layers)-failures, len(layers),
		searchCheckSlowdownPct, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "swbench: search-check FAILED: %d layer(s) beyond the %.0f%% gate\n",
			failures, searchCheckSlowdownPct)
		return 1
	}
	if coverage > searchCheckCoveragePct {
		fmt.Fprintf(os.Stderr, "swbench: search-check FAILED: coverage %.1f%% exceeds %.0f%%\n",
			coverage, searchCheckCoveragePct)
		return 1
	}
	fmt.Println("search-check: PASS")
	return 0
}
