// Command swatop tunes one operator and emits its schedule report and
// generated SW26010 C code.
//
// Usage:
//
//	swatop gemm -m 2048 -n 2048 -k 2048 [-workers N] [-c out.c] [-ir]
//	swatop conv -method implicit -b 32 -ni 256 -no 256 -r 28 [-kernel 3] [-workers N] [-c out.c] [-ir]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"swatop"
	"swatop/internal/cliobs"
)

// metricsReg is the registry every tuning run records into; -metrics
// decides whether (and where) it is reported.
var metricsReg = swatop.NewMetricsRegistry()

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gemm":
		gemmCmd(os.Args[2:])
	case "conv":
		convCmd(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  swatop gemm -m M -n N -k K [-searcher evo|anneal] [-budget F] [-fallback] [-retries N] [-deadline D] [-c out.c] [-ir] [-metrics -|file] [-trace-out t.json] [-listen addr]
  swatop conv -method implicit|explicit|winograd -b B -ni Ni -no No -r R [-kernel K] [-searcher evo|anneal] [-budget F] [-fallback] [-retries N] [-deadline D] [-c out.c] [-ir] [-metrics -|file] [-trace-out t.json] [-listen addr]`)
	os.Exit(2)
}

func gemmCmd(args []string) {
	fs := flag.NewFlagSet("gemm", flag.ExitOnError)
	m := fs.Int("m", 1024, "rows of A/C")
	n := fs.Int("n", 1024, "columns of B/C")
	k := fs.Int("k", 1024, "reduction extent")
	cOut := fs.String("c", "", "write generated C to file")
	showIR := fs.Bool("ir", false, "print the optimized IR")
	showTrace := fs.Bool("trace", false, "print the execution timeline")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent tuning workers (result is worker-count independent)")
	obsFlags := cliobs.Register(fs,
		"write the tuned schedule's execution timeline as Chrome trace-event JSON (opens in ui.perfetto.dev)")
	fallback, retries, deadline := resilienceFlags(fs)
	sName, sBudget, sSeed := searchFlags(fs)
	_ = fs.Parse(args)

	sess, err := obsFlags.Start("swatop", metricsReg)
	check(err)
	defer sess.Close()
	tuner := mustTuner(sess, *workers, *fallback, *retries)
	applySearch(tuner, *sName, *sBudget, *sSeed)
	ctx, cancel := deadlineCtx(sess.Context(), *deadline)
	defer cancel()
	stop := sess.StartProgress(os.Stderr)
	tuned, err := tuner.TuneGemmCtx(ctx, swatop.GemmParams{M: *m, N: *n, K: *k})
	stop()
	check(err)
	base, err := swatop.BaselineGemmSeconds(swatop.GemmParams{M: *m, N: *n, K: *k})
	check(err)
	reportTuned(tuned, base, "xMath")
	emit(tuned, *cOut, *showIR)
	if *showTrace {
		tr, err := tuned.Trace()
		check(err)
		fmt.Println("\n--- execution timeline ---")
		fmt.Print(tr)
	}
	check(cliobs.WriteTrace(obsFlags.TraceOut, tuned.WriteChromeTrace))
	check(sess.WriteMetrics(false))
}

func convCmd(args []string) {
	fs := flag.NewFlagSet("conv", flag.ExitOnError)
	method := fs.String("method", swatop.Implicit, "implicit|explicit|winograd")
	b := fs.Int("b", 32, "batch size")
	ni := fs.Int("ni", 256, "input channels")
	no := fs.Int("no", 256, "output channels")
	r := fs.Int("r", 28, "output rows = columns")
	kk := fs.Int("kernel", 3, "kernel rows = columns")
	cOut := fs.String("c", "", "write generated C to file")
	showIR := fs.Bool("ir", false, "print the optimized IR")
	showTrace := fs.Bool("trace", false, "print the execution timeline")
	workers := fs.Int("workers", runtime.NumCPU(), "concurrent tuning workers (result is worker-count independent)")
	obsFlags := cliobs.Register(fs,
		"write the tuned schedule's execution timeline as Chrome trace-event JSON (opens in ui.perfetto.dev)")
	fallback, retries, deadline := resilienceFlags(fs)
	sName, sBudget, sSeed := searchFlags(fs)
	_ = fs.Parse(args)

	s := swatop.ConvShape{B: *b, Ni: *ni, No: *no, Ro: *r, Co: *r, Kr: *kk, Kc: *kk}
	sess, err := obsFlags.Start("swatop", metricsReg)
	check(err)
	defer sess.Close()
	tuner := mustTuner(sess, *workers, *fallback, *retries)
	applySearch(tuner, *sName, *sBudget, *sSeed)
	ctx, cancel := deadlineCtx(sess.Context(), *deadline)
	defer cancel()
	stop := sess.StartProgress(os.Stderr)
	tuned, err := tuner.TuneConvCtx(ctx, *method, s)
	stop()
	check(err)
	base, berr := swatop.BaselineConvSeconds(*method, s)
	if berr != nil {
		fmt.Printf("manual baseline: n/a (%v)\n", berr)
		base = 0
	}
	reportTuned(tuned, base, "manual")
	emit(tuned, *cOut, *showIR)
	if *showTrace {
		tr, err := tuned.Trace()
		check(err)
		fmt.Println("\n--- execution timeline ---")
		fmt.Print(tr)
	}
	check(cliobs.WriteTrace(obsFlags.TraceOut, tuned.WriteChromeTrace))
	check(sess.WriteMetrics(false))
}

// searchFlags registers the sample-efficient-search flags shared by both
// subcommands. An empty -searcher keeps the exhaustive walk, bit-identical
// to earlier releases.
func searchFlags(fs *flag.FlagSet) (name *string, budget *float64, seed *uint64) {
	name = fs.String("searcher", "",
		"search strategy: evo (evolutionary) or anneal (simulated annealing); empty = exhaustive walk")
	budget = fs.Float64("budget", 0,
		"fraction of the schedule space a -searcher may measure (0 = default 0.10)")
	seed = fs.Uint64("search-seed", 0,
		"search RNG seed (0 = derived from the operator name; results are deterministic either way)")
	return
}

// applySearch configures the tuner from the -searcher/-budget/-search-seed
// flags.
func applySearch(t *swatop.Tuner, name string, budget float64, seed uint64) {
	s, err := swatop.SearcherByName(name)
	check(err)
	if s == nil {
		return
	}
	t.SetSearcher(s)
	if budget > 0 {
		t.SetSearchBudget(budget)
	}
	if seed != 0 {
		t.SetSearchSeed(seed)
	}
}

// resilienceFlags registers the failure-policy flags shared by both
// subcommands.
func resilienceFlags(fs *flag.FlagSet) (fallback *bool, retries *int, deadline *time.Duration) {
	fallback = fs.Bool("fallback", false,
		"serve the manual baseline schedule (flagged degraded) when tuning fails or the deadline expires")
	retries = fs.Int("retries", 1,
		"total attempts per candidate measurement for transient errors (capped exponential backoff)")
	deadline = fs.Duration("deadline", 0,
		"tuning time budget (0 = none); with -fallback an expired budget degrades instead of failing")
	return
}

// deadlineCtx bounds the run by -deadline on top of the session context,
// so both an expired budget and a SIGTERM/SIGINT drain stop the tuner.
func deadlineCtx(parent context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, d)
}

func mustTuner(sess *cliobs.Session, workers int, fallback bool, retries int) *swatop.Tuner {
	t, err := swatop.NewTuner()
	check(err)
	t.SetWorkers(workers)
	if fallback {
		t.SetFallback(swatop.FallbackBaseline)
	}
	if retries > 1 {
		t.SetRetry(retries, 0, 0) // library defaults for base/max delay
	}
	t.SetMetrics(metricsReg)
	t.SetObserver(sess.Observer)
	return t
}

func reportTuned(tuned *swatop.Tuned, baseline float64, baseName string) {
	if tuned.Degraded() {
		fmt.Printf("DEGRADED       : tuning did not complete; serving the manual baseline schedule\n")
	}
	if n := tuned.FailedCandidates(); n > 0 {
		fmt.Printf("failed cands   : %d (panicked or exhausted retries; skipped)\n", n)
	}
	fmt.Printf("schedule space : %d valid candidates\n", tuned.SpaceSize())
	if m, sp := tuned.MeasuredCandidates(), tuned.SpacePoints(); m > 0 && sp > 0 {
		fmt.Printf("searched       : %d of %d points (%.1f%% coverage)\n",
			m, sp, 100*float64(m)/float64(sp))
	}
	fmt.Printf("selected       : %s\n", tuned.Strategy())
	fmt.Printf("simulated time : %.4g ms  (%.0f GFLOPS per core group)\n",
		tuned.Seconds()*1e3, tuned.GFLOPS())
	if baseline > 0 {
		fmt.Printf("%-15s: %.4g ms  (swATOP speedup %.2fx)\n",
			baseName, baseline*1e3, baseline/tuned.Seconds())
	}
}

func emit(tuned *swatop.Tuned, cOut string, showIR bool) {
	if showIR {
		fmt.Println("\n--- optimized IR ---")
		fmt.Println(tuned.PrintIR())
	}
	if cOut != "" {
		src, err := tuned.EmitC()
		check(err)
		check(os.WriteFile(cOut, []byte(src), 0o644))
		fmt.Printf("generated C    : %s (%d bytes)\n", cOut, len(src))
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "swatop:", err)
		os.Exit(1)
	}
}
