// Command swserve is the always-on inference daemon: it serves single
// HTTP/JSON inference requests, coalescing them into dynamic batches that
// execute on the simulated SW26010 through the tuned-schedule cache — and
// it is built to stay up: bounded admission with load shedding (429),
// per-request deadlines (408), a circuit breaker that degrades to the
// baseline-fallback mode instead of failing, and graceful drain on
// SIGTERM/SIGINT.
//
// Usage:
//
//	swserve [-net vgg16] [-addr 127.0.0.1:8100]
//	        [-max-batch 8] [-batch-window 2ms] [-queue N] [-buckets 1,2,4,8]
//	        [-deadline D] [-groups N] [-pipeline] [-workers N]
//	        [-lib schedules.json] [-warm] [-breaker-threshold 3] [-breaker-cooldown 8]
//	        [-trace] [-trace-sample 0.1] [-trace-slow 100]
//	        [-slo-p99 MS] [-slo-availability 0.999] [-slo-profile-dir DIR]
//	        [-metrics -|file] [-listen addr] [-flight-out f.json]
//
// Endpoints (on -addr):
//
//	POST /infer    {"id": "...", "deadline_ms": 50}  → per-request report;
//	               send a W3C traceparent header to join the caller's trace
//	GET  /serverz  queue / breaker / shed / degraded / SLO counters
//	GET  /tracez   tail-sampled request traces (with -trace);
//	               /tracez/<id> one trace, ?format=chrome for Perfetto
//	GET  /healthz, /metrics, /statusz, /events, /flightz, /debug/pprof/
//
// Example:
//
//	swserve -net vgg16 -max-batch 8 -lib vgg16.json -trace &
//	curl -s -X POST localhost:8100/infer -d '{"id":"r1","deadline_ms":5000}'
//
// On SIGTERM/SIGINT the daemon stops admitting (new requests get 503),
// finishes every in-flight batch, flushes metrics and the schedule
// library, then exits; a second signal force-quits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"swatop/internal/cache"
	"swatop/internal/cliobs"
	"swatop/internal/graph"
	"swatop/internal/metrics"
	"swatop/internal/reqtrace"
	"swatop/internal/serve"
)

func main() {
	netName := flag.String("net", "vgg16", "network: vgg16, resnet or yolo")
	addr := flag.String("addr", "127.0.0.1:8100", "serving address (':0' picks a port)")
	maxBatch := flag.Int("max-batch", 8, "max requests coalesced into one batch")
	window := flag.Duration("batch-window", 2*time.Millisecond,
		"how long a forming batch waits to fill after its first request")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4*max-batch); overflow is shed with 429")
	bucketsFlag := flag.String("buckets", "",
		"comma-separated executed batch sizes (default: powers of two up to max-batch)")
	deadline := flag.Duration("deadline", 0,
		"default per-request deadline when the request carries none (0 = none)")
	groups := flag.Int("groups", 1, "simulated core groups: >1 scales batch execution across a fleet")
	pipeline := flag.Bool("pipeline", false, "with -groups N: pipeline layers across N stages instead of sharding the batch")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent tuning workers for cache misses")
	libPath := flag.String("lib", "", "schedule library file: loaded if present, saved on drain")
	warm := flag.Bool("warm", true, "tune every bucket size before accepting traffic")
	breakerThreshold := flag.Int("breaker-threshold", 3,
		"consecutive bad batches that trip the circuit breaker into degraded mode")
	breakerCooldown := flag.Int("breaker-cooldown", 8,
		"degraded batches served before a tuned probe batch")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second,
		"how long a SIGTERM drain waits for in-flight work before giving up")
	traceOn := flag.Bool("trace", false,
		"record tail-sampled request traces, served on /tracez")
	traceSample := flag.Float64("trace-sample", 0.1,
		"with -trace: fraction of unremarkable requests kept (slow/shed/expired/degraded always kept)")
	traceSlow := flag.Float64("trace-slow", 100,
		"with -trace: latency ms at which a request always counts as slow and is kept")
	sloP99 := flag.Float64("slo-p99", 0,
		"latency SLO: at most 1%% of responses may exceed this many ms (0 = no latency SLO)")
	sloAvail := flag.Float64("slo-availability", 0,
		"availability SLO, e.g. 0.999 (0 = no availability SLO)")
	sloProfileDir := flag.String("slo-profile-dir", "",
		"where SLO-breach CPU profiles are written (empty = skip profiles)")
	obsFlags := cliobs.Register(flag.CommandLine,
		"(swserve exports no trace timeline; use /events and /flightz instead)")
	flag.Parse()

	if *groups < 2 && *pipeline {
		fail(fmt.Errorf("-pipeline needs -groups N with N >= 2"))
	}
	buckets, err := parseBuckets(*bucketsFlag)
	if err != nil {
		fail(err)
	}

	reg := metrics.NewRegistry()
	sess, err := obsFlags.Start("swserve", reg)
	if err != nil {
		fail(err)
	}
	defer sess.Close()

	lib := cache.NewLibrary()
	lib.SetMetrics(reg)
	lib.SetObserver(sess.Observer)
	if *libPath != "" {
		if _, err := os.Stat(*libPath); err == nil {
			if err := lib.Load(*libPath); err != nil {
				fail(fmt.Errorf("load %s: %w", *libPath, err))
			}
			fmt.Fprintf(os.Stderr, "library: %s (%d schedules)\n", *libPath, lib.Len())
		}
	}

	var store *reqtrace.Store
	if *traceOn {
		store = reqtrace.NewStore(reqtrace.StoreOptions{
			SampleRate: *traceSample,
			SlowMs:     *traceSlow,
		})
	}
	var slo *serve.SLO
	if *sloP99 > 0 || *sloAvail > 0 {
		slo = &serve.SLO{
			P99TargetMs:  *sloP99,
			Availability: *sloAvail,
			ProfileDir:   *sloProfileDir,
		}
	}

	srv, err := serve.New(serve.Config{
		Net:              *netName,
		Builder:          func(b int) (*graph.Graph, error) { return graph.ByName(*netName, b) },
		MaxBatch:         *maxBatch,
		BatchWindow:      *window,
		QueueDepth:       *queue,
		Buckets:          buckets,
		DefaultDeadline:  *deadline,
		Workers:          *workers,
		Groups:           *groups,
		Pipeline:         *pipeline,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		Library:          lib,
		Metrics:          reg,
		Observer:         sess.Observer,
		Trace:            store,
		History:          sess.History,
		SLO:              slo,
	})
	if err != nil {
		fail(err)
	}

	if *warm {
		fmt.Fprintf(os.Stderr, "warming %s buckets %v...\n", *netName, srv.Buckets())
		stop := sess.StartProgress(os.Stderr)
		secs, err := srv.Warmup(sess.Context())
		stop()
		if err != nil {
			fail(err)
		}
		var bs []int
		for b := range secs {
			bs = append(bs, b)
		}
		sort.Ints(bs)
		for _, b := range bs {
			fmt.Fprintf(os.Stderr, "  bucket %2d: %8.3f machine ms  (%.3f ms/inference, %.1f inferences/s)\n",
				b, secs[b]*1e3, secs[b]*1e3/float64(b), float64(b)/secs[b])
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(os.Stderr, "serving: http://%s/ (POST /infer, GET /serverz)\n", ln.Addr())

	// SIGTERM/SIGINT (via the shared cliobs handler): stop admitting, finish
	// every in-flight batch, then close the HTTP listener so Serve returns
	// and the flush path below runs.
	sess.OnDrain(func() {
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "swserve:", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "swserve: shutdown:", err)
		}
	})

	if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fail(err)
	}
	// Drained: flush everything the session owns, then report the totals.
	if *libPath != "" {
		if err := lib.Save(*libPath); err != nil {
			fail(fmt.Errorf("save %s: %w", *libPath, err))
		}
		fmt.Fprintf(os.Stderr, "library: saved %s (%d schedules)\n", *libPath, lib.Len())
	}
	st := srv.Status()
	fmt.Fprintf(os.Stderr,
		"drained: %d served (%d degraded), %d shed, %d expired, %d batches, breaker %s (%d trips)\n",
		st.Responses, st.Degraded, st.Shed, st.Expired, st.Batches, st.Breaker, st.BreakerTrips)
	if err := sess.WriteMetrics(false); err != nil {
		fail(err)
	}
}

func parseBuckets(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("swserve: bad bucket %q (want positive integers)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "swserve:", err)
	os.Exit(1)
}
