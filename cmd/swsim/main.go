// Command swsim runs the substrate microbenchmarks of the simulated
// SW26010 core group and compares them with the published measurements the
// simulator is calibrated against (Xu, Lin, Matsuoka, IPDPSW'17 — the
// paper's reference [24]).
//
// Usage:
//
//	swsim [-metrics -|file] [-trace-out trace.json] [-listen addr]
//
// -metrics publishes every characterization number as a gauge; -trace-out
// writes the microbenchmarks as one synthetic machine timeline in Chrome
// trace-event JSON (each benchmark is a span of its simulated duration).
// Both outputs are fully deterministic: the substrate model is analytic.
package main

import (
	"flag"
	"fmt"
	"os"

	"swatop/internal/cliobs"
	"swatop/internal/metrics"
	"swatop/internal/primitives"
	"swatop/internal/sw26010"
	"swatop/internal/trace"
)

func main() {
	obsFlags := cliobs.Register(flag.CommandLine,
		"write the microbenchmark timeline as Chrome trace-event JSON (opens in ui.perfetto.dev)")
	flag.Parse()

	reg := metrics.NewRegistry()
	sess, err := obsFlags.Start("swsim", reg)
	if err != nil {
		fail(err)
	}
	defer sess.Close()
	log := &trace.Log{}
	cursor := 0.0 // synthetic timeline position: benchmarks run back to back
	span := func(kind trace.Kind, label string, seconds float64) {
		log.Add(kind, label, cursor, seconds)
		cursor += seconds
	}

	fmt.Println("SW26010 core-group simulator — substrate characterization")
	fmt.Printf("clock %.2f GHz · %d CPEs · %d KB SPM/CPE · peak %.0f GFLOPS/CG (%.2f TFLOPS chip)\n\n",
		sw26010.ClockHz/1e9, sw26010.NumCPE, sw26010.SPMBytes/1024,
		sw26010.PeakGFlops, sw26010.PeakGFlops*sw26010.NumCG/1e3)
	reg.Gauge("swsim_peak_gflops_per_cg").Set(sw26010.PeakGFlops)
	reg.Gauge("swsim_spm_bytes_per_cpe").Set(sw26010.SPMBytes)

	triad := sw26010.StreamTriadDMA(8192)
	fmt.Printf("%-28s %8.2f GB/s   (published: 22.6 GB/s)\n", "DMA stream triad", triad.GBperSecond)
	reg.Gauge("swsim_dma_triad_gbps").Set(triad.GBperSecond)
	span(trace.KindDMA, "stream triad", triad.Seconds)
	gl := sw26010.StreamGLDGST(1 << 26)
	fmt.Printf("%-28s %8.2f GB/s   (published: 1.48 GB/s)\n", "gld/gst", gl.GBperSecond)
	reg.Gauge("swsim_gld_gst_gbps").Set(gl.GBperSecond)
	span(trace.KindDMA, "gld/gst", gl.Seconds)
	rc := sw26010.RegCommBroadcast(1 << 16)
	fmt.Printf("%-28s %8.2f GB/s   (published: 647.25 GB/s)\n\n", "register communication", rc.GBperSecond)
	reg.Gauge("swsim_reg_comm_gbps").Set(rc.GBperSecond)
	span(trace.KindTransform, "register broadcast", rc.Seconds)

	fmt.Println("strided DMA efficiency (the curve layout transformation optimizes against):")
	for _, block := range []int{64, 128, 256, 512, 1024, 4096, 16384} {
		r := sw26010.DMAStridedEfficiency(block, 1<<20/block)
		fmt.Printf("  block %6d B: %6.2f GB/s (%.0f%% of stream)\n",
			block, r.GBperSecond, r.GBperSecond/triad.GBperSecond*100)
		reg.Gauge(fmt.Sprintf("swsim_dma_strided_%db_gbps", block)).Set(r.GBperSecond)
		span(trace.KindDMA, fmt.Sprintf("strided %d B", block), r.Seconds)
	}

	fmt.Println("\nspm_gemm micro-kernel roofline (column-major, vecM):")
	for _, sz := range []int{32, 64, 128, 256, 512} {
		spec := primitives.GemmSpec{M: sz, N: sz, K: sz, LDA: sz, LDB: sz, LDC: sz}
		t, err := primitives.GemmTime(spec)
		if err != nil {
			panic(err)
		}
		gf := float64(spec.FLOPs()) / t / 1e9
		fmt.Printf("  %4d³: %8.2f µs  %7.1f GFLOPS (%.0f%% of CG peak)\n",
			sz, t*1e6, gf, gf/sw26010.PeakGFlops*100)
		reg.Gauge(fmt.Sprintf("swsim_gemm_%d_gflops", sz)).Set(gf)
		span(trace.KindGemm, fmt.Sprintf("%dx%dx%d", sz, sz, sz), t)
	}

	if err := cliobs.WriteTrace(obsFlags.TraceOut, log.WriteChromeTrace); err != nil {
		fail(err)
	}
	if err := sess.WriteMetrics(false); err != nil {
		fail(err)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "swsim:", err)
	os.Exit(1)
}
