// Command swsim runs the substrate microbenchmarks of the simulated
// SW26010 core group and compares them with the published measurements the
// simulator is calibrated against (Xu, Lin, Matsuoka, IPDPSW'17 — the
// paper's reference [24]).
package main

import (
	"fmt"

	"swatop/internal/primitives"
	"swatop/internal/sw26010"
)

func main() {
	fmt.Println("SW26010 core-group simulator — substrate characterization")
	fmt.Printf("clock %.2f GHz · %d CPEs · %d KB SPM/CPE · peak %.0f GFLOPS/CG (%.2f TFLOPS chip)\n\n",
		sw26010.ClockHz/1e9, sw26010.NumCPE, sw26010.SPMBytes/1024,
		sw26010.PeakGFlops, sw26010.PeakGFlops*sw26010.NumCG/1e3)

	triad := sw26010.StreamTriadDMA(8192)
	fmt.Printf("%-28s %8.2f GB/s   (published: 22.6 GB/s)\n", "DMA stream triad", triad.GBperSecond)
	gl := sw26010.StreamGLDGST(1 << 26)
	fmt.Printf("%-28s %8.2f GB/s   (published: 1.48 GB/s)\n", "gld/gst", gl.GBperSecond)
	rc := sw26010.RegCommBroadcast(1 << 16)
	fmt.Printf("%-28s %8.2f GB/s   (published: 647.25 GB/s)\n\n", "register communication", rc.GBperSecond)

	fmt.Println("strided DMA efficiency (the curve layout transformation optimizes against):")
	for _, block := range []int{64, 128, 256, 512, 1024, 4096, 16384} {
		r := sw26010.DMAStridedEfficiency(block, 1<<20/block)
		fmt.Printf("  block %6d B: %6.2f GB/s (%.0f%% of stream)\n",
			block, r.GBperSecond, r.GBperSecond/triad.GBperSecond*100)
	}

	fmt.Println("\nspm_gemm micro-kernel roofline (column-major, vecM):")
	for _, sz := range []int{32, 64, 128, 256, 512} {
		spec := primitives.GemmSpec{M: sz, N: sz, K: sz, LDA: sz, LDB: sz, LDC: sz}
		t, err := primitives.GemmTime(spec)
		if err != nil {
			panic(err)
		}
		gf := float64(spec.FLOPs()) / t / 1e9
		fmt.Printf("  %4d³: %8.2f µs  %7.1f GFLOPS (%.0f%% of CG peak)\n",
			sz, t*1e6, gf, gf/sw26010.PeakGFlops*100)
	}
}
