// Command swinfer runs end-to-end network inference on the simulated
// SW26010 core group: it builds the network graph (VGG16, ResNet or YOLO),
// resolves a tuned schedule for every convolution and fully-connected
// layer (through a schedule library when -lib is given), executes all
// layers as one serialized machine timeline and reports per-layer and
// total simulated seconds against the manual-library baseline.
//
// Usage:
//
//	swinfer [-net vgg16] [-batch 1,32,128] [-workers N] [-json]
//	        [-lib schedules.json] [-fallback] [-verify] [-timeline]
//	        [-metrics -|file] [-trace-out trace.json] [-listen addr]
//
// The reported machine seconds are deterministic: identical for every
// -workers value and identical between cached and freshly-tuned runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"swatop"
	"swatop/internal/cliobs"
	"swatop/internal/report"
)

func main() {
	net := flag.String("net", "vgg16", "network: vgg16, resnet or yolo")
	batches := flag.String("batch", "1", "comma-separated batch sizes")
	workers := flag.Int("workers", runtime.NumCPU(),
		"concurrent tuning workers (machine seconds are worker-count independent)")
	jsonOut := flag.Bool("json", false, "emit one JSON document instead of tables")
	libPath := flag.String("lib", "", "schedule library file: loaded if present, saved after tuning")
	fallback := flag.Bool("fallback", false, "degrade failed layer tuning to the manual baseline schedule")
	verify := flag.Bool("verify", false, "functional execution: check every tuned layer against the reference oracle (slow)")
	timeline := flag.Bool("timeline", false, "print the merged network timeline per batch size")
	retries := flag.Int("retries", 1, "total attempts per candidate measurement for transient errors")
	obsFlags := cliobs.Register(flag.CommandLine,
		"write the network timeline as Chrome trace-event JSON (opens in ui.perfetto.dev); with several batch sizes each gets a -b<N> suffix")
	flag.Parse()

	sizes, err := parseBatches(*batches)
	if err != nil {
		fail(err)
	}

	eng, err := swatop.NewEngine()
	if err != nil {
		fail(err)
	}
	eng.SetWorkers(*workers)
	if *fallback {
		eng.SetFallback(swatop.FallbackBaseline)
	}
	if *verify {
		eng.SetVerify(0)
	}
	if *retries > 1 {
		eng.SetRetry(*retries, 0, 0)
	}

	var lib *swatop.Library
	if *libPath != "" {
		lib = swatop.NewLibrary()
		if _, err := os.Stat(*libPath); err == nil {
			if err := lib.Load(*libPath); err != nil {
				fail(fmt.Errorf("load %s: %w", *libPath, err))
			}
		}
		eng.UseLibrary(lib)
	}
	reg := swatop.NewMetricsRegistry()
	eng.SetMetrics(reg)
	sess, err := obsFlags.Start("swinfer", reg)
	if err != nil {
		fail(err)
	}
	defer sess.Close()
	eng.SetObserver(sess.Observer)

	var reports []*swatop.NetReport
	for _, b := range sizes {
		stop := sess.StartProgress(os.Stderr)
		rep, err := eng.Infer(*net, b)
		stop()
		if err != nil {
			fail(err)
		}
		reports = append(reports, rep)
		if obsFlags.TraceOut != "" {
			path := obsFlags.TraceOut
			if len(sizes) > 1 {
				path = batchSuffixed(path, b)
			}
			if err := cliobs.WriteTrace(path, func(w io.Writer) error {
				return rep.WriteChromeTrace(w)
			}); err != nil {
				fail(err)
			}
		}
	}
	if lib != nil {
		if err := lib.Save(*libPath); err != nil {
			fail(fmt.Errorf("save %s: %w", *libPath, err))
		}
	}
	if *jsonOut {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
	} else {
		for _, rep := range reports {
			fmt.Println(layerTable(rep).String())
			fmt.Println(summaryLine(rep))
			fmt.Println()
		}
	}
	if *timeline {
		for _, rep := range reports {
			fmt.Printf("--- %s batch %d timeline ---\n%s\n", rep.Net, rep.Batch, rep.Timeline())
		}
	}
	if err := sess.WriteMetrics(*jsonOut); err != nil {
		fail(err)
	}
}

func layerTable(rep *swatop.NetReport) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("%s inference, batch %d", rep.Net, rep.Batch),
		Headers: []string{"layer", "kind", "ms", "baseline ms", "GFLOPS", "schedule"},
	}
	for _, l := range rep.Layers {
		sched := l.Strategy
		switch {
		case l.Degraded:
			sched = "baseline fallback"
		case l.Cached:
			sched = "cached: " + sched
		}
		if len(sched) > 48 {
			sched = sched[:45] + "..."
		}
		gflops := ""
		if l.GFLOPS > 0 {
			gflops = fmt.Sprintf("%.1f", l.GFLOPS)
		}
		t.Rows = append(t.Rows, []string{
			l.Name,
			l.Kind,
			fmt.Sprintf("%.4f", l.Seconds*1e3),
			fmt.Sprintf("%.4f", l.BaselineSeconds*1e3),
			gflops,
			sched,
		})
	}
	return t
}

func summaryLine(rep *swatop.NetReport) string {
	s := fmt.Sprintf("total %.3f ms, %.1f GFLOPS, speedup %.2fx vs manual library; activations %.1f MB (naive %.1f MB)",
		rep.Seconds*1e3, rep.GFLOPS, rep.Speedup,
		float64(rep.PeakActivationBytes)/1e6, float64(rep.NaiveActivationBytes)/1e6)
	if rep.CachedLayers > 0 || rep.DegradedLayers > 0 {
		s += fmt.Sprintf(" [%d tuned, %d cached, %d degraded]",
			rep.TunedLayers, rep.CachedLayers, rep.DegradedLayers)
	}
	return s
}

// batchSuffixed inserts "-b<batch>" before the extension, so
// trace.json with batches 1,32 yields trace-b1.json and trace-b32.json.
func batchSuffixed(path string, batch int) string {
	ext := ""
	if i := strings.LastIndex(path, "."); i > strings.LastIndex(path, "/") {
		path, ext = path[:i], path[i:]
	}
	return fmt.Sprintf("%s-b%d%s", path, batch, ext)
}

func parseBatches(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("swinfer: bad batch size %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("swinfer: no batch sizes in %q", s)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "swinfer:", err)
	os.Exit(1)
}
