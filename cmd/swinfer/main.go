// Command swinfer runs end-to-end network inference on the simulated
// SW26010 core group: it builds the network graph (VGG16, ResNet or YOLO),
// resolves a tuned schedule for every convolution and fully-connected
// layer (through a schedule library when -lib is given), executes all
// layers as one serialized machine timeline and reports per-layer and
// total simulated seconds against the manual-library baseline.
//
// Usage:
//
//	swinfer [-net vgg16] [-batch 1,32,128] [-workers N] [-json]
//	        [-groups N] [-pipeline]
//	        [-lib schedules.json] [-fallback] [-verify] [-timeline]
//	        [-metrics -|file] [-trace-out trace.json] [-listen addr]
//
// -groups N scales the run out across a fleet of N simulated core groups
// (the SW26010 ships 4 per node): by default the batch is sharded across
// the groups and weight-bound fully-connected tails are column-sharded;
// with -pipeline the layers are partitioned into N balanced stages and the
// batch streams through as micro-batches. The report then carries the
// per-group breakdown (and the stage partition with its bubble fraction).
//
// The reported machine seconds are deterministic: identical for every
// -workers value, every -groups goroutine interleaving, and identical
// between cached and freshly-tuned runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"swatop"
	"swatop/internal/cliobs"
	"swatop/internal/report"
)

func main() {
	net := flag.String("net", "vgg16", "network: vgg16, resnet or yolo")
	batches := flag.String("batch", "1", "comma-separated batch sizes")
	workers := flag.Int("workers", runtime.NumCPU(),
		"concurrent tuning workers (machine seconds are worker-count independent)")
	jsonOut := flag.Bool("json", false, "emit one JSON document instead of tables")
	libPath := flag.String("lib", "", "schedule library file: loaded if present, saved after tuning")
	fallback := flag.Bool("fallback", false, "degrade failed layer tuning to the manual baseline schedule")
	verify := flag.Bool("verify", false, "functional execution: check every tuned layer against the reference oracle (slow)")
	timeline := flag.Bool("timeline", false, "print the merged network timeline per batch size")
	groups := flag.Int("groups", 1, "simulated core groups: >1 scales inference out across a fleet")
	pipeline := flag.Bool("pipeline", false, "with -groups N: pipeline the layers across N stages instead of sharding the batch")
	retries := flag.Int("retries", 1, "total attempts per candidate measurement for transient errors")
	obsFlags := cliobs.Register(flag.CommandLine,
		"write the network timeline as Chrome trace-event JSON (opens in ui.perfetto.dev); with several batch sizes each gets a -b<N> suffix")
	flag.Parse()

	sizes, err := parseBatches(*batches)
	if err != nil {
		fail(err)
	}

	eng, err := swatop.NewEngine()
	if err != nil {
		fail(err)
	}
	eng.SetWorkers(*workers)
	if *groups > 1 {
		eng.SetGroups(*groups)
		eng.SetPipeline(*pipeline)
	} else if *pipeline {
		fail(fmt.Errorf("-pipeline needs -groups N with N >= 2"))
	}
	if *fallback {
		eng.SetFallback(swatop.FallbackBaseline)
	}
	if *verify {
		eng.SetVerify(0)
	}
	if *retries > 1 {
		eng.SetRetry(*retries, 0, 0)
	}

	var lib *swatop.Library
	if *libPath != "" {
		lib = swatop.NewLibrary()
		if _, err := os.Stat(*libPath); err == nil {
			if err := lib.Load(*libPath); err != nil {
				fail(fmt.Errorf("load %s: %w", *libPath, err))
			}
		}
		eng.UseLibrary(lib)
	}
	reg := swatop.NewMetricsRegistry()
	eng.SetMetrics(reg)
	sess, err := obsFlags.Start("swinfer", reg)
	if err != nil {
		fail(err)
	}
	defer sess.Close()
	eng.SetObserver(sess.Observer)

	var reports []*swatop.NetReport
	for _, b := range sizes {
		stop := sess.StartProgress(os.Stderr)
		// The session context makes SIGTERM/SIGINT drain the run: the
		// current batch stops at its next cancellation point.
		rep, err := eng.InferCtx(sess.Context(), *net, b)
		stop()
		if err != nil {
			fail(err)
		}
		reports = append(reports, rep)
		if obsFlags.TraceOut != "" {
			path := obsFlags.TraceOut
			if len(sizes) > 1 {
				path = batchSuffixed(path, b)
			}
			if err := cliobs.WriteTrace(path, func(w io.Writer) error {
				return rep.WriteChromeTrace(w)
			}); err != nil {
				fail(err)
			}
		}
	}
	if lib != nil {
		if err := lib.Save(*libPath); err != nil {
			fail(fmt.Errorf("save %s: %w", *libPath, err))
		}
	}
	if *jsonOut {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			fail(err)
		}
		fmt.Println(string(data))
	} else {
		for _, rep := range reports {
			fmt.Println(layerTable(rep).String())
			fmt.Println(summaryLine(rep))
			if len(rep.Groups) > 0 {
				fmt.Println(fleetSummary(rep))
			}
			fmt.Println()
		}
	}
	if *timeline {
		for _, rep := range reports {
			fmt.Printf("--- %s batch %d timeline ---\n%s\n", rep.Net, rep.Batch, rep.Timeline())
		}
	}
	if err := sess.WriteMetrics(*jsonOut); err != nil {
		fail(err)
	}
}

func layerTable(rep *swatop.NetReport) *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("%s inference, batch %d", rep.Net, rep.Batch),
		Headers: []string{"layer", "kind", "ms", "baseline ms", "GFLOPS", "schedule"},
	}
	for _, l := range rep.Layers {
		sched := l.Strategy
		switch {
		case l.Degraded:
			sched = "baseline fallback"
		case l.Cached:
			sched = "cached: " + sched
		}
		if len(sched) > 48 {
			sched = sched[:45] + "..."
		}
		gflops := ""
		if l.GFLOPS > 0 {
			gflops = fmt.Sprintf("%.1f", l.GFLOPS)
		}
		t.Rows = append(t.Rows, []string{
			l.Name,
			l.Kind,
			fmt.Sprintf("%.4f", l.Seconds*1e3),
			fmt.Sprintf("%.4f", l.BaselineSeconds*1e3),
			gflops,
			sched,
		})
	}
	return t
}

func summaryLine(rep *swatop.NetReport) string {
	s := fmt.Sprintf("total %.3f ms, %.1f GFLOPS", rep.Seconds*1e3, rep.GFLOPS)
	if rep.Speedup > 0 {
		s += fmt.Sprintf(", speedup %.2fx vs manual library", rep.Speedup)
	}
	s += fmt.Sprintf("; activations %.1f MB (naive %.1f MB)",
		float64(rep.PeakActivationBytes)/1e6, float64(rep.NaiveActivationBytes)/1e6)
	if rep.CachedLayers > 0 || rep.DegradedLayers > 0 {
		s += fmt.Sprintf(" [%d tuned, %d cached, %d degraded]",
			rep.TunedLayers, rep.CachedLayers, rep.DegradedLayers)
	}
	if rep.InferencesPerSec > 0 {
		s += fmt.Sprintf("; %.1f inferences/s", rep.InferencesPerSec)
	}
	return s
}

// fleetSummary renders the per-group breakdown of a fleet run and, for a
// pipelined one, the stage partition with its bubble fraction.
func fleetSummary(rep *swatop.NetReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet: mode %s, %d groups, comm %.4f ms\n",
		rep.Mode, len(rep.Groups), rep.CommSeconds*1e3)
	for _, g := range rep.Groups {
		fmt.Fprintf(&b, "  group%d: batch %d, %.3f ms\n", g.Group, g.Batch, g.Seconds*1e3)
	}
	if p := rep.Pipeline; p != nil {
		fmt.Fprintf(&b, "  pipeline: %d micro-batches, bubble fraction %.3f\n",
			p.MicroBatches, p.BubbleFraction)
		for _, st := range p.Stages {
			span := ""
			if n := len(st.Layers); n == 1 {
				span = st.Layers[0]
			} else if n > 1 {
				span = st.Layers[0] + ".." + st.Layers[n-1]
			}
			fmt.Fprintf(&b, "  stage %d (group%d): %d layers [%s], %.3f ms/micro-batch\n",
				st.Group, st.Group, len(st.Layers), span, st.Seconds*1e3)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// batchSuffixed inserts "-b<batch>" before the extension, so
// trace.json with batches 1,32 yields trace-b1.json and trace-b32.json.
func batchSuffixed(path string, batch int) string {
	ext := ""
	if i := strings.LastIndex(path, "."); i > strings.LastIndex(path, "/") {
		path, ext = path[:i], path[i:]
	}
	return fmt.Sprintf("%s-b%d%s", path, batch, ext)
}

func parseBatches(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad batch size %q (batch must be a positive integer; -groups shards it, so batch 0 cannot be sharded)", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("swinfer: no batch sizes in %q", s)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "swinfer:", err)
	os.Exit(1)
}
