package swatop

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (§5), each regenerating the result on the simulated SW26010 and
// reporting the headline metric. Quick stratified subsets keep
// `go test -bench=.` tractable; `go run ./cmd/swbench -full` runs complete
// grids.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"swatop/internal/autotune"
	"swatop/internal/conv"
	"swatop/internal/experiments"
	"swatop/internal/ir"
	"swatop/internal/report"
	"swatop/internal/workloads"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
	benchErr    error
)

func runner(b *testing.B) *experiments.Runner {
	b.Helper()
	benchOnce.Do(func() {
		benchRunner, benchErr = experiments.NewRunner()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRunner
}

func runExperiment(b *testing.B, id string) *report.Table {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var table *report.Table
	for i := 0; i < b.N; i++ {
		table, err = e.Run(runner(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	return table
}

func BenchmarkSubstrate(b *testing.B) {
	t := runExperiment(b, "substrate")
	b.Log("\n" + t.String())
}

func BenchmarkFig5ImplicitVsSwDNN(b *testing.B) {
	r := runner(b)
	rows, err := r.Fig5(workloads.Batches())
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range []int{32, 128} {
		if avg, n := experiments.AvgSpeedup(rows, batch); n > 0 {
			b.Logf("batch %d: avg speedup %.2fx over %d layers (paper: 1.44x/1.32x)", batch, avg, n)
			b.ReportMetric(avg, "speedup@b"+itoa(batch))
		}
	}
}

func BenchmarkFig6WinogradVsManual(b *testing.B) {
	r := runner(b)
	rows, err := r.Fig6(workloads.Batches())
	if err != nil {
		b.Fatal(err)
	}
	for _, batch := range workloads.Batches() {
		if avg, n := experiments.AvgSpeedup(rows, batch); n > 0 {
			b.Logf("batch %d: avg speedup %.2fx over %d layers (paper: 2.20-2.35x)", batch, avg, n)
			b.ReportMetric(avg, "speedup@b"+itoa(batch))
		}
	}
}

func BenchmarkFig7ExplicitVsManual(b *testing.B) {
	r := runner(b)
	rows, err := r.Fig7(workloads.Batches())
	if err != nil {
		b.Fatal(err)
	}
	faster, total := 0, 0
	best := 1.0
	for _, row := range rows {
		if row.ManualNA {
			continue
		}
		total++
		if row.Speedup >= 1 {
			faster++
		}
		if row.Speedup > best {
			best = row.Speedup
		}
	}
	b.Logf("faster in %d/%d layer cases, best speedup %.1fx (paper: majority faster, best 15.2x)",
		faster, total, best)
	b.ReportMetric(best, "best-speedup")
}

func BenchmarkTable1Sweep(b *testing.B) {
	t := runExperiment(b, "table1")
	b.Log("\n" + t.String())
}

func BenchmarkFig8Efficiency(b *testing.B) {
	t := runExperiment(b, "fig8")
	b.Log("\n" + t.String())
}

func BenchmarkTable2GemmVsXMath(b *testing.B) {
	t := runExperiment(b, "table2")
	b.Log("\n" + t.String())
}

func BenchmarkTable3TuningTime(b *testing.B) {
	r := runner(b)
	rows, err := r.Table3()
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		b.Logf("%s: space avg %.0f, black-box %s vs swATOP %s → %.0fx (paper: 353-454x)",
			row.Net, row.SpaceAvg, report.Duration(row.BlackBoxSec),
			report.Duration(row.SwATOPSec), row.SpeedupX)
		b.ReportMetric(row.SpeedupX, row.Net+"-speedup")
	}
}

func BenchmarkFig9ModelQuality(b *testing.B) {
	r := runner(b)
	rows, err := r.Fig9()
	if err != nil {
		b.Fatal(err)
	}
	avg, worst := experiments.Fig9Summary(rows)
	b.Logf("model-picked/best ratio: avg %.3f, worst %.3f over %d configs (paper: avg >0.98, worst >0.92)",
		avg, worst, len(rows))
	b.ReportMetric(worst, "worst-ratio")
	if worst < 0.92 {
		b.Errorf("worst-case model loss %.1f%% exceeds the paper's 8%% bound", (1-worst)*100)
	}
}

func BenchmarkFig10Prefetching(b *testing.B) {
	t := runExperiment(b, "fig10")
	b.Log("\n" + t.String())
}

// Ablations of the scheduler's three transformation families (§4.3) beyond
// the paper's own prefetching (Fig. 10) and padding (Fig. 11) studies:
// restrict one family to its trivial choice and measure what the search
// loses on a representative layer.

func ablate(b *testing.B, label string, restrict func(op *conv.ImplicitOp)) {
	b.Helper()
	r := runner(b)
	s := conv.Shape{B: 32, Ni: 256, No: 256, Ro: 28, Co: 28, Kr: 3, Kc: 3}
	full, err := conv.NewImplicitOp(s)
	if err != nil {
		b.Fatal(err)
	}
	fres, err := autotune.ModelBased(full, r.Model)
	if err != nil {
		b.Fatal(err)
	}
	cut, err := conv.NewImplicitOp(s)
	if err != nil {
		b.Fatal(err)
	}
	restrict(cut)
	cres, err := autotune.ModelBased(cut, r.Model)
	if err != nil {
		b.Fatal(err)
	}
	loss := cres.Best.Measured/fres.Best.Measured - 1
	b.Logf("%s: full space %.4gms vs ablated %.4gms (+%.1f%% loss without it)",
		label, fres.Best.Measured*1e3, cres.Best.Measured*1e3, loss*100)
	b.ReportMetric(loss*100, "loss-pct")
}

func BenchmarkAblationLoopFusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablate(b, "co fusion (merging columns into the GEMM N)", func(op *conv.ImplicitOp) {
			op.Space().Factors["co"] = []int{1}
		})
	}
}

func BenchmarkAblationLayoutChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablate(b, "weight layout transformation", func(op *conv.ImplicitOp) {
			// Only the naive (No,Ni,Kr,Kc) layout: single-float DMA gathers.
			op.Space().Layouts["weight"] = [][]int{{0, 1, 2, 3}}
		})
	}
}

func BenchmarkAblationVectorization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ablate(b, "vectorized-dimension choice", func(op *conv.ImplicitOp) {
			op.Space().Vecs = []ir.VecDim{ir.VecM}
		})
	}
}

// BenchmarkTuningWallClock measures what the candidate worker pool buys on
// the host: the same VGG16 layer tuned sequentially and with one worker per
// CPU. The selected schedule and the simulated machine-time ledger are
// asserted identical — parallelism only shrinks wall clock.
func BenchmarkTuningWallClock(b *testing.B) {
	r := runner(b)
	var s conv.Shape
	for _, l := range workloads.Networks()["vgg16"] {
		if sh := l.Shape(32); sh.Ni >= conv.MinNiImplicit {
			s = sh
			break
		}
	}
	tune := func(w int) autotune.Result {
		op, err := conv.NewImplicitOp(s)
		if err != nil {
			b.Fatal(err)
		}
		res, err := autotune.ModelBasedCtx(context.Background(), op, r.Model,
			autotune.Options{Workers: w})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	// On single-CPU hosts still run a real pool, so the benchmark always
	// compares the two code paths (there it measures pool overhead rather
	// than speedup).
	par := runtime.NumCPU()
	if par < 2 {
		par = 4
	}
	seq := tune(1)
	pll := tune(par)
	if seq.Best.Strategy.String() != pll.Best.Strategy.String() ||
		seq.MachineSeconds != pll.MachineSeconds {
		b.Fatal("parallel tuning diverged from the sequential reference")
	}
	b.Logf("%d candidates: %.2fs sequential vs %.2fs with %d workers (%.1fx wall clock)",
		seq.SpaceSize, seq.WallSeconds, pll.WallSeconds, par,
		seq.WallSeconds/pll.WallSeconds)
	b.Run("workers-1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tune(1)
		}
	})
	b.Run(fmt.Sprintf("workers-%d", par), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tune(par)
		}
	})
}

func BenchmarkFig11Padding(b *testing.B) {
	t := runExperiment(b, "fig11")
	b.Log("\n" + t.String())
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkInferVGG16 measures the end-to-end network runtime on the
// cached-library path: the first inference tunes every layer and fills the
// library outside the timer, then each iteration replays the whole network
// from cached schedules — the steady-state inference cost the paper's
// swCaffe integration pays per forward pass.
func BenchmarkInferVGG16(b *testing.B) {
	e, err := NewEngine()
	if err != nil {
		b.Fatal(err)
	}
	lib := NewLibrary()
	e.UseLibrary(lib)
	e.SetWorkers(runtime.NumCPU())
	warm, err := e.Infer("vgg16", 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rep *NetReport
	for i := 0; i < b.N; i++ {
		rep, err = e.Infer("vgg16", 1)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Seconds != warm.Seconds {
			b.Fatalf("cached replay %g s differs from tuning run %g s", rep.Seconds, warm.Seconds)
		}
	}
	b.ReportMetric(rep.Seconds*1e3, "machine-ms")
	b.ReportMetric(rep.GFLOPS, "machine-GFLOPS")
}
