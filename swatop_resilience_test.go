package swatop

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// brokenTuner returns a fresh tuner whose every measurement panics — the
// worst case: no candidate survives, so tuning as a whole fails.
func brokenTuner(t *testing.T) *Tuner {
	t.Helper()
	tn, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	in := NewFaultInjector(1)
	in.PanicEveryNth(FaultMeasure, 1, "sabotaged measurement")
	tn.SetFaults(in)
	return tn
}

func TestFacadeFallbackServesBaselineWhenAllCandidatesFail(t *testing.T) {
	tn := brokenTuner(t)
	tn.SetFallback(FallbackBaseline)
	tuned, err := tn.TuneGemmCtx(context.Background(), GemmParams{M: 256, N: 256, K: 256})
	if err != nil {
		t.Fatalf("fallback should have absorbed the failure: %v", err)
	}
	if !tuned.Degraded() {
		t.Fatal("baseline result must be flagged degraded")
	}
	if tuned.Seconds() <= 0 || tuned.GFLOPS() <= 0 {
		t.Fatalf("degenerate degraded result: %+v", tuned)
	}
	if !strings.Contains(tuned.Strategy(), "baseline fallback") {
		t.Fatalf("strategy should say where the schedule came from: %q", tuned.Strategy())
	}
	if _, err := tuned.EmitC(); err != nil {
		t.Fatalf("degraded result must still emit code: %v", err)
	}
}

func TestFacadeFallbackConv(t *testing.T) {
	tn := brokenTuner(t)
	tn.SetFallback(FallbackBaseline)
	s := ConvShape{B: 4, Ni: 32, No: 32, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	tuned, err := tn.TuneConvCtx(context.Background(), Implicit, s)
	if err != nil {
		t.Fatalf("fallback should have absorbed the failure: %v", err)
	}
	if !tuned.Degraded() || tuned.Seconds() <= 0 {
		t.Fatalf("expected a usable degraded conv result, got %+v", tuned)
	}
}

func TestFacadeNoFallbackStillFails(t *testing.T) {
	tn := brokenTuner(t)
	_, err := tn.TuneGemmCtx(context.Background(), GemmParams{M: 256, N: 256, K: 256})
	if err == nil {
		t.Fatal("without FallbackBaseline a dead search must be an error")
	}
}

func TestFacadeFallbackOnExpiredDeadline(t *testing.T) {
	tn := sharedTuner(t)
	tn.SetFallback(FallbackBaseline)
	defer tn.SetFallback(FallbackNone)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	tuned, err := tn.TuneGemmCtx(ctx, GemmParams{M: 256, N: 256, K: 256})
	if err != nil {
		t.Fatalf("expired deadline should degrade, not fail: %v", err)
	}
	if !tuned.Degraded() {
		t.Fatal("deadline-expired result must be flagged degraded")
	}
}

func TestFacadeExplicitCancelBeatsFallback(t *testing.T) {
	tn := sharedTuner(t)
	tn.SetFallback(FallbackBaseline)
	defer tn.SetFallback(FallbackNone)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := tn.TuneGemmCtx(ctx, GemmParams{M: 256, N: 256, K: 256})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("explicit cancellation must surface, not degrade: %v", err)
	}
}

func TestFacadeDegradedResultIsNeverCached(t *testing.T) {
	tn := brokenTuner(t)
	tn.SetFallback(FallbackBaseline)
	lib := NewLibrary()
	tn.UseLibrary(lib)
	tuned, err := tn.TuneGemmCtx(context.Background(), GemmParams{M: 256, N: 256, K: 256})
	if err != nil || !tuned.Degraded() {
		t.Fatalf("expected degraded result, got %+v, %v", tuned, err)
	}
	if lib.Len() != 0 {
		t.Fatalf("degraded schedule leaked into the library (%d entries)", lib.Len())
	}
}

func TestFacadeRetryAbsorbsTransients(t *testing.T) {
	p := GemmParams{M: 256, N: 256, K: 256}
	clean, err := sharedTuner(t).TuneGemm(p)
	if err != nil {
		t.Fatal(err)
	}
	tn, err := NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	in := NewFaultInjector(3)
	in.FailEveryNth(FaultMeasure, 3, TransientError(errors.New("flaky timer")))
	tn.SetFaults(in)
	tn.SetRetry(3, time.Microsecond, time.Microsecond)
	faulty, err := tn.TuneGemm(p)
	if err != nil {
		t.Fatalf("retries should have absorbed every transient: %v", err)
	}
	if faulty.Degraded() || faulty.FailedCandidates() != 0 {
		t.Fatalf("no candidate should have failed: degraded=%v failed=%d",
			faulty.Degraded(), faulty.FailedCandidates())
	}
	if faulty.Strategy() != clean.Strategy() || faulty.Seconds() != clean.Seconds() {
		t.Fatalf("retry changed the result:\nclean  %s (%v)\nfaulty %s (%v)",
			clean.Strategy(), clean.Seconds(), faulty.Strategy(), faulty.Seconds())
	}
}
