package swatop

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

// TestEngineVGG16EndToEnd is the acceptance test of the network runtime:
// all 13 VGG16 convolutions plus the fully-connected tail execute on one
// simulated machine, and the total machine seconds are identical across
// tuning worker counts and across cached vs freshly-tuned runs.
func TestEngineVGG16EndToEnd(t *testing.T) {
	e, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary()
	e.UseLibrary(lib)
	e.SetWorkers(4)

	rep, err := e.Infer("vgg16", 1)
	if err != nil {
		t.Fatal(err)
	}
	conv, gemmN := 0, 0
	for _, l := range rep.Layers {
		if l.Kind == "conv" {
			conv++
		}
		if l.Kind == "gemm" {
			gemmN++
		}
	}
	if conv != 13 || gemmN != 3 {
		t.Fatalf("%d conv + %d gemm layers, want 13 + 3", conv, gemmN)
	}
	if rep.Seconds <= 0 {
		t.Fatal("non-positive machine seconds")
	}
	if rep.Speedup <= 0 {
		t.Fatalf("speedup %g, want positive", rep.Speedup)
	}
	if rep.PeakActivationBytes >= rep.NaiveActivationBytes {
		t.Fatalf("buffer plan does not reuse: peak %d >= naive %d",
			rep.PeakActivationBytes, rep.NaiveActivationBytes)
	}
	if tl := rep.Timeline(); !strings.Contains(tl, "gemm") || !strings.Contains(tl, "dma") {
		t.Fatalf("timeline missing channels:\n%s", tl)
	}

	// Cached replay with a different worker count: same machine seconds,
	// every operator resolved from the library.
	e.SetWorkers(1)
	cached, err := e.Infer("vgg16", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cached.CachedLayers != 16 || cached.TunedLayers != 0 {
		t.Fatalf("cached run: %d cached / %d tuned, want 16 / 0", cached.CachedLayers, cached.TunedLayers)
	}
	if cached.Seconds != rep.Seconds {
		t.Fatalf("cached run %g s differs from fresh run %g s", cached.Seconds, rep.Seconds)
	}

	// A fresh library at yet another worker count must land on the same
	// total (schedule selection is worker-independent).
	e2, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	e2.SetWorkers(2)
	again, err := e2.Infer("vgg16", 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Seconds != rep.Seconds {
		t.Fatalf("worker count changed the network: %g vs %g", again.Seconds, rep.Seconds)
	}

	// The report is the CLI's JSON document; it must round-trip.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back NetReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Net != "vgg16" || back.Batch != 1 || len(back.Layers) != len(rep.Layers) {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

func TestEngineUnknownNetAndCancellation(t *testing.T) {
	e, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Infer("alexnet", 1); err == nil {
		t.Fatal("unknown network must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.InferCtx(ctx, "vgg16", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
