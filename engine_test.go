package swatop

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"strings"
	"testing"

	"swatop/internal/trace"
)

// TestEngineVGG16EndToEnd is the acceptance test of the network runtime:
// all 13 VGG16 convolutions plus the fully-connected tail execute on one
// simulated machine, and the total machine seconds are identical across
// tuning worker counts and across cached vs freshly-tuned runs.
func TestEngineVGG16EndToEnd(t *testing.T) {
	e, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary()
	e.UseLibrary(lib)
	e.SetWorkers(4)

	rep, err := e.Infer("vgg16", 1)
	if err != nil {
		t.Fatal(err)
	}
	conv, gemmN := 0, 0
	for _, l := range rep.Layers {
		if l.Kind == "conv" {
			conv++
		}
		if l.Kind == "gemm" {
			gemmN++
		}
	}
	if conv != 13 || gemmN != 3 {
		t.Fatalf("%d conv + %d gemm layers, want 13 + 3", conv, gemmN)
	}
	if rep.Seconds <= 0 {
		t.Fatal("non-positive machine seconds")
	}
	if rep.Speedup <= 0 {
		t.Fatalf("speedup %g, want positive", rep.Speedup)
	}
	if rep.PeakActivationBytes >= rep.NaiveActivationBytes {
		t.Fatalf("buffer plan does not reuse: peak %d >= naive %d",
			rep.PeakActivationBytes, rep.NaiveActivationBytes)
	}
	if tl := rep.Timeline(); !strings.Contains(tl, "gemm") || !strings.Contains(tl, "dma") {
		t.Fatalf("timeline missing channels:\n%s", tl)
	}

	// Cached replay with a different worker count: same machine seconds,
	// every operator resolved from the library. A fresh metrics registry
	// observes the replay.
	e.SetWorkers(1)
	reg1 := NewMetricsRegistry()
	e.SetMetrics(reg1)
	cached, err := e.Infer("vgg16", 1)
	if err != nil {
		t.Fatal(err)
	}
	if cached.CachedLayers != 16 || cached.TunedLayers != 0 {
		t.Fatalf("cached run: %d cached / %d tuned, want 16 / 0", cached.CachedLayers, cached.TunedLayers)
	}
	if cached.Seconds != rep.Seconds {
		t.Fatalf("cached run %g s differs from fresh run %g s", cached.Seconds, rep.Seconds)
	}
	checkReplayMetrics(t, cached)

	// The replay metrics are pure simulated-machine quantities, so a second
	// cached replay at another worker count must produce a bit-identical
	// snapshot — the observability layer inherits the engine's determinism
	// guarantee.
	e.SetWorkers(3)
	reg2 := NewMetricsRegistry()
	e.SetMetrics(reg2)
	cached2, err := e.Infer("vgg16", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snapshotJSON(t, cached2.Metrics), snapshotJSON(t, cached.Metrics); got != want {
		t.Fatalf("cached-replay metrics differ across worker counts:\n--- workers=1 ---\n%s\n--- workers=3 ---\n%s", want, got)
	}
	e.SetMetrics(nil)

	// A fresh library at yet another worker count must land on the same
	// total (schedule selection is worker-independent).
	e2, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	e2.SetWorkers(2)
	again, err := e2.Infer("vgg16", 1)
	if err != nil {
		t.Fatal(err)
	}
	if again.Seconds != rep.Seconds {
		t.Fatalf("worker count changed the network: %g vs %g", again.Seconds, rep.Seconds)
	}

	// The report is the CLI's JSON document; it must round-trip.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back NetReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Net != "vgg16" || back.Batch != 1 || len(back.Layers) != len(rep.Layers) {
		t.Fatalf("JSON round trip lost data: %+v", back)
	}
}

// checkReplayMetrics verifies the cached replay's snapshot against the
// run's own report and timeline: all 13 convolutions came from the cache,
// real DMA traffic was recorded, and the DMA-hidden ratio agrees with the
// timeline the report carries.
func checkReplayMetrics(t *testing.T, rep *NetReport) {
	t.Helper()
	snap := rep.Metrics
	if got := snap.Counters["infer_conv_cached_total"]; got != 13 {
		t.Fatalf("infer_conv_cached_total = %d, want 13", got)
	}
	if got := snap.Gauges["machine_dma_bytes_touched_total"]; !(got > 0) {
		t.Fatalf("machine_dma_bytes_touched_total = %g, want > 0", got)
	}
	log := rep.TraceLog()
	if log == nil {
		t.Fatal("cached replay has no timeline")
	}
	dma := log.BusyTime(trace.KindDMA)
	if !(dma > 0) {
		t.Fatalf("timeline DMA busy time = %g, want > 0", dma)
	}
	want := log.Overlap(trace.KindGemm, trace.KindDMA) / dma
	got := snap.Gauges["infer_dma_hidden_ratio"]
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("infer_dma_hidden_ratio = %.17g, timeline says %.17g", got, want)
	}

	// The Perfetto export of the same timeline must be valid, non-empty
	// Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := rep.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	spans := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		t.Fatalf("chrome trace has no duration events (%d events total)", len(doc.TraceEvents))
	}
}

// snapshotJSON renders a snapshot for byte-level comparison.
func snapshotJSON(t *testing.T, s MetricsSnapshot) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestEngineFleetVGG16 is the scale-out acceptance test: VGG16 batch 8 on
// a core-group fleet. groups=1 reproduces the single-machine seconds
// exactly; data parallelism on 4 groups delivers at least 3x the
// throughput; per-group and aggregate seconds are bit-identical across
// worker counts; pipeline mode reports its stage partition and bubble
// fraction.
func TestEngineFleetVGG16(t *testing.T) {
	e, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	lib := NewLibrary()
	e.UseLibrary(lib)
	e.SetWorkers(4)

	base, err := e.Infer("vgg16", 8)
	if err != nil {
		t.Fatal(err)
	}
	if base.Mode != "single" || base.InferencesPerSec <= 0 {
		t.Fatalf("base run: mode %q, %g inf/s", base.Mode, base.InferencesPerSec)
	}

	// groups=1 is the single-machine path, bit for bit.
	e.SetGroups(1)
	g1, err := e.Infer("vgg16", 8)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Seconds != base.Seconds || g1.Mode != "single" {
		t.Fatalf("groups=1 drifted from the single machine: %g vs %g (mode %q)",
			g1.Seconds, base.Seconds, g1.Mode)
	}

	// Data parallelism across the chip's 4 core groups.
	e.SetGroups(4)
	g4, err := e.Infer("vgg16", 8)
	if err != nil {
		t.Fatal(err)
	}
	if g4.Mode != "data-parallel" || len(g4.Groups) != 4 || g4.CommSeconds <= 0 {
		t.Fatalf("fleet run: mode %q, %d groups, comm %g", g4.Mode, len(g4.Groups), g4.CommSeconds)
	}
	if g4.InferencesPerSec < 3*g1.InferencesPerSec {
		t.Fatalf("4 groups deliver %.1f inf/s, single machine %.1f — less than 3x",
			g4.InferencesPerSec, g1.InferencesPerSec)
	}
	if g4.TraceLog().Groups() != 4 {
		t.Fatalf("fleet timeline has %d group rows, want 4", g4.TraceLog().Groups())
	}
	if tl := g4.Timeline(); !strings.Contains(tl, "group0") || !strings.Contains(tl, "group3") {
		t.Fatalf("fleet gantt missing group rows:\n%s", tl)
	}

	// Deterministic scale-out: a replay at another worker count must agree
	// bit for bit, per group and in aggregate.
	e.SetWorkers(1)
	g4b, err := e.Infer("vgg16", 8)
	if err != nil {
		t.Fatal(err)
	}
	if g4b.Seconds != g4.Seconds || g4b.CommSeconds != g4.CommSeconds {
		t.Fatalf("fleet seconds drifted across workers: %g/%g vs %g/%g",
			g4b.Seconds, g4b.CommSeconds, g4.Seconds, g4.CommSeconds)
	}
	for i := range g4.Groups {
		if g4b.Groups[i] != g4.Groups[i] {
			t.Fatalf("group %d drifted: %+v vs %+v", i, g4b.Groups[i], g4.Groups[i])
		}
	}

	// Layer pipelining: balanced stages, every layer covered, a reported
	// bubble fraction, and the same determinism.
	e.SetPipeline(true)
	p, err := e.Infer("vgg16", 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != "pipeline" || p.Pipeline == nil {
		t.Fatalf("pipeline run: mode %q, report %v", p.Mode, p.Pipeline)
	}
	if p.Pipeline.MicroBatches != 8 || len(p.Pipeline.Stages) != 4 {
		t.Fatalf("pipeline: %d micro-batches, %d stages", p.Pipeline.MicroBatches, len(p.Pipeline.Stages))
	}
	covered := 0
	for _, st := range p.Pipeline.Stages {
		covered += len(st.Layers)
	}
	if covered != len(base.Layers) {
		t.Fatalf("stages cover %d layers, net has %d", covered, len(base.Layers))
	}
	if bf := p.Pipeline.BubbleFraction; bf <= 0 || bf >= 1 {
		t.Fatalf("bubble fraction = %g", bf)
	}
	p2, err := e.Infer("vgg16", 8)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Seconds != p.Seconds || p2.Pipeline.BubbleFraction != p.Pipeline.BubbleFraction {
		t.Fatalf("pipeline drifted across runs: %g/%g vs %g/%g",
			p2.Seconds, p2.Pipeline.BubbleFraction, p.Seconds, p.Pipeline.BubbleFraction)
	}
}

func TestEngineUnknownNetAndCancellation(t *testing.T) {
	e, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Infer("alexnet", 1); err == nil {
		t.Fatal("unknown network must error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.InferCtx(ctx, "vgg16", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
