// Package workloads defines the evaluation inputs of the paper: the
// convolution layers of VGG16, ResNet and YOLO (Figs. 5–7, Table 3), the
// Listing-1 sweep of 75 convolution parameter configurations per batch size
// (Table 1, Figs. 8–9) and the Listing-2 sweep of 559 matrix-multiplication
// shapes (Table 2, Fig. 11).
package workloads

import (
	"fmt"

	"swatop/internal/gemm"
	"swatop/internal/tensor"
)

// ConvLayer is one named convolution layer of a network.
type ConvLayer struct {
	Net  string
	Name string
	Ni   int
	No   int
	R    int // output rows = columns
	K    int // kernel rows = columns
}

// Shape instantiates the layer for a batch size (stride 1, pre-padded).
func (l ConvLayer) Shape(batch int) tensor.ConvShape {
	return tensor.ConvShape{B: batch, Ni: l.Ni, No: l.No, Ro: l.R, Co: l.R, Kr: l.K, Kc: l.K}
}

func (l ConvLayer) String() string { return fmt.Sprintf("%s/%s", l.Net, l.Name) }

// FCLayer is one named fully-connected layer of a network. A
// fully-connected layer is a GEMM: output[Out×batch] =
// weight[Out×In] × input[In×batch], so the batch size becomes the GEMM N
// dimension exactly as swCaffe lowers fc layers onto xMath.
type FCLayer struct {
	Net  string
	Name string
	In   int // input features (GEMM K)
	Out  int // output features (GEMM M)
}

// Params instantiates the layer for a batch size.
func (l FCLayer) Params(batch int) gemm.Params {
	return gemm.Params{M: l.Out, N: batch, K: l.In}
}

func (l FCLayer) String() string { return fmt.Sprintf("%s/%s", l.Net, l.Name) }

// VGG16FC returns the three fully-connected layers of VGG16: fc6 takes the
// flattened 512×7×7 feature map left by the fifth pooling stage; fc8
// produces the 1000 ImageNet logits.
func VGG16FC() []FCLayer {
	return []FCLayer{
		{"vgg16", "fc6", 512 * 7 * 7, 4096},
		{"vgg16", "fc7", 4096, 4096},
		{"vgg16", "fc8", 4096, 1000},
	}
}

// VGG16 returns the 13 convolution layers of VGG16 (Simonyan & Zisserman).
func VGG16() []ConvLayer {
	return []ConvLayer{
		{"vgg16", "conv1_1", 3, 64, 224, 3},
		{"vgg16", "conv1_2", 64, 64, 224, 3},
		{"vgg16", "conv2_1", 64, 128, 112, 3},
		{"vgg16", "conv2_2", 128, 128, 112, 3},
		{"vgg16", "conv3_1", 128, 256, 56, 3},
		{"vgg16", "conv3_2", 256, 256, 56, 3},
		{"vgg16", "conv3_3", 256, 256, 56, 3},
		{"vgg16", "conv4_1", 256, 512, 28, 3},
		{"vgg16", "conv4_2", 512, 512, 28, 3},
		{"vgg16", "conv4_3", 512, 512, 28, 3},
		{"vgg16", "conv5_1", 512, 512, 14, 3},
		{"vgg16", "conv5_2", 512, 512, 14, 3},
		{"vgg16", "conv5_3", 512, 512, 14, 3},
	}
}

// ResNet returns the distinct convolution shapes of ResNet-50's bottleneck
// stages (stride-1 equivalents at the stage output resolutions, the form
// swDNN-style libraries benchmark).
func ResNet() []ConvLayer {
	return []ConvLayer{
		{"resnet", "conv1", 3, 64, 112, 7},
		{"resnet", "res2_1x1a", 64, 64, 56, 1},
		{"resnet", "res2_3x3", 64, 64, 56, 3},
		{"resnet", "res2_1x1b", 64, 256, 56, 1},
		{"resnet", "res3_1x1a", 256, 128, 28, 1},
		{"resnet", "res3_3x3", 128, 128, 28, 3},
		{"resnet", "res3_1x1b", 128, 512, 28, 1},
		{"resnet", "res4_1x1a", 512, 256, 14, 1},
		{"resnet", "res4_3x3", 256, 256, 14, 3},
		{"resnet", "res4_1x1b", 256, 1024, 14, 1},
		{"resnet", "res5_1x1a", 1024, 512, 7, 1},
		{"resnet", "res5_3x3", 512, 512, 7, 3},
		{"resnet", "res5_1x1b", 512, 2048, 7, 1},
	}
}

// Yolo returns the backbone convolution layers of YOLOv1 (Redmon et al.),
// one entry per distinct shape.
func Yolo() []ConvLayer {
	return []ConvLayer{
		{"yolo", "conv1", 3, 64, 224, 7},
		{"yolo", "conv2", 64, 192, 112, 3},
		{"yolo", "conv3_1x1", 192, 128, 56, 1},
		{"yolo", "conv3_3x3", 128, 256, 56, 3},
		{"yolo", "conv3b_1x1", 256, 256, 56, 1},
		{"yolo", "conv3b_3x3", 256, 512, 56, 3},
		{"yolo", "conv4_1x1", 512, 256, 28, 1},
		{"yolo", "conv4_3x3", 256, 512, 28, 3},
		{"yolo", "conv4b_1x1", 512, 512, 28, 1},
		{"yolo", "conv4b_3x3", 512, 1024, 28, 3},
		{"yolo", "conv5_1x1", 1024, 512, 14, 1},
		{"yolo", "conv5_3x3", 512, 1024, 14, 3},
		{"yolo", "conv6", 1024, 1024, 7, 3},
	}
}

// Networks returns the three CNNs of the evaluation.
func Networks() map[string][]ConvLayer {
	return map[string][]ConvLayer{
		"vgg16":  VGG16(),
		"resnet": ResNet(),
		"yolo":   Yolo(),
	}
}

// Listing1 reproduces the versatility sweep (§5.1.1): Ni, No over five
// channel counts with Ni ≥ No, crossed with five output resolutions — 75
// configurations per batch size, matching Table 1's per-cell case count.
// (The listing as printed yields 60; the table's 75 cases per batch imply
// a fifth Ro value, which we restore.)
func Listing1(batch int) []tensor.ConvShape {
	channels := []int{64, 128, 256, 384, 512}
	rows := []int{16, 32, 64, 128, 256}
	var out []tensor.ConvShape
	for _, ni := range channels {
		for _, no := range channels {
			if ni < no {
				continue
			}
			for _, r := range rows {
				out = append(out, tensor.ConvShape{
					B: batch, Ni: ni, No: no, Ro: r, Co: r, Kr: 3, Kc: 3,
				})
			}
		}
	}
	return out
}

// Listing2Unaligned returns the 216 boundary-requiring GEMM shapes.
func Listing2Unaligned() []gemm.Params {
	sizes := []int{200, 500, 1000, 2000, 4000, 8000}
	var out []gemm.Params
	for _, m := range sizes {
		for _, n := range sizes {
			for _, k := range sizes {
				out = append(out, gemm.Params{M: m, N: n, K: k})
			}
		}
	}
	return out
}

// Listing2Aligned returns the 343 aligned GEMM shapes.
func Listing2Aligned() []gemm.Params {
	sizes := []int{256, 512, 768, 1024, 2048, 4096, 8192}
	var out []gemm.Params
	for _, m := range sizes {
		for _, n := range sizes {
			for _, k := range sizes {
				out = append(out, gemm.Params{M: m, N: n, K: k})
			}
		}
	}
	return out
}

// Batches are the batch sizes of the paper's evaluation: 1 for inference,
// 32 and 128 for training.
func Batches() []int { return []int{1, 32, 128} }
