package workloads

import (
	"testing"

	"swatop/internal/conv"
)

func TestNetworkTables(t *testing.T) {
	nets := Networks()
	if len(nets) != 3 {
		t.Fatalf("want 3 networks, got %d", len(nets))
	}
	if len(VGG16()) != 13 {
		t.Fatalf("VGG16 has %d conv layers, want 13", len(VGG16()))
	}
	for name, layers := range nets {
		if len(layers) == 0 {
			t.Fatalf("%s has no layers", name)
		}
		for _, l := range layers {
			s := l.Shape(32)
			if err := s.Validate(); err != nil {
				t.Errorf("%s: %v", l, err)
			}
			if l.Net != name {
				t.Errorf("layer %s tagged %q, in table %q", l.Name, l.Net, name)
			}
		}
	}
}

func TestFirstLayersExcludedFromImplicit(t *testing.T) {
	for _, layers := range Networks() {
		if layers[0].Ni >= conv.MinNiImplicit {
			t.Errorf("%s first layer should have tiny Ni (got %d)", layers[0], layers[0].Ni)
		}
	}
}

// TestVGG16FCShapes pins the fully-connected tail of VGG16: fc6 consumes
// the flattened 512-channel 7×7 feature map the fifth pooling stage leaves,
// and the three layers chain feature-count-consistently down to the 1000
// ImageNet logits.
func TestVGG16FCShapes(t *testing.T) {
	fcs := VGG16FC()
	if len(fcs) != 3 {
		t.Fatalf("VGG16 has %d fc layers, want 3", len(fcs))
	}
	convs := VGG16()
	last := convs[len(convs)-1]
	// conv5_3 emits No channels at R×R; pool5 halves R; fc6 flattens that.
	if want := last.No * (last.R / 2) * (last.R / 2); fcs[0].In != want {
		t.Fatalf("fc6.In = %d, want %d (No*R/2*R/2 after pool5)", fcs[0].In, want)
	}
	for i, fc := range fcs {
		if fc.Net != "vgg16" {
			t.Errorf("%s tagged %q", fc.Name, fc.Net)
		}
		if fc.In <= 0 || fc.Out <= 0 {
			t.Errorf("%s has non-positive features: %+v", fc.Name, fc)
		}
		if i > 0 && fc.In != fcs[i-1].Out {
			t.Errorf("%s.In = %d does not chain from %s.Out = %d",
				fc.Name, fc.In, fcs[i-1].Name, fcs[i-1].Out)
		}
		for _, batch := range Batches() {
			p := fc.Params(batch)
			if err := p.Validate(); err != nil {
				t.Errorf("%s batch %d: %v", fc.Name, batch, err)
			}
			if p.M != fc.Out || p.K != fc.In || p.N != batch {
				t.Errorf("%s batch %d: params %v do not encode Out×batch = W[Out×In]×x[In×batch]",
					fc.Name, batch, p)
			}
		}
	}
	if fcs[2].Out != 1000 {
		t.Fatalf("fc8.Out = %d, want the 1000 ImageNet logits", fcs[2].Out)
	}
}

func TestListing1Counts(t *testing.T) {
	for _, b := range Batches() {
		shapes := Listing1(b)
		if len(shapes) != 75 {
			t.Fatalf("Listing1(%d) has %d configs, want 75 (Table 1's per-cell count)", b, len(shapes))
		}
		for _, s := range shapes {
			if s.Ni < s.No {
				t.Fatalf("constraint Ni >= No violated: %v", s)
			}
			if s.Kr != 3 || s.Kc != 3 {
				t.Fatalf("Listing-1 kernels are 3x3: %v", s)
			}
			if s.B != b {
				t.Fatalf("batch mismatch: %v", s)
			}
			if !conv.WinogradApplies(s) {
				t.Fatalf("all Listing-1 configs must admit Winograd (Table 1 shows 75 cases): %v", s)
			}
		}
	}
}

func TestListing2Counts(t *testing.T) {
	un := Listing2Unaligned()
	al := Listing2Aligned()
	if len(un) != 216 {
		t.Fatalf("unaligned count %d, want 216", len(un))
	}
	if len(al) != 343 {
		t.Fatalf("aligned count %d, want 343", len(al))
	}
	if len(un)+len(al) != 559 {
		t.Fatal("total must match the paper's 559 parameters")
	}
	for _, p := range al {
		if p.M%256 != 0 && p.M%512 != 0 && p.M%768 != 0 {
			// every aligned size is a multiple of 256 except 768 which is too
			if p.M%128 != 0 {
				t.Fatalf("aligned shape not 128-aligned: %v", p)
			}
		}
	}
	for _, p := range un {
		if p.M%128 == 0 && p.N%128 == 0 && p.K%128 == 0 {
			t.Fatalf("unaligned shape is fully aligned: %v", p)
		}
	}
}

func TestBatches(t *testing.T) {
	b := Batches()
	if len(b) != 3 || b[0] != 1 || b[1] != 32 || b[2] != 128 {
		t.Fatalf("batches = %v", b)
	}
}
