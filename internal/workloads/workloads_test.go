package workloads

import (
	"testing"

	"swatop/internal/conv"
)

func TestNetworkTables(t *testing.T) {
	nets := Networks()
	if len(nets) != 3 {
		t.Fatalf("want 3 networks, got %d", len(nets))
	}
	if len(VGG16()) != 13 {
		t.Fatalf("VGG16 has %d conv layers, want 13", len(VGG16()))
	}
	for name, layers := range nets {
		if len(layers) == 0 {
			t.Fatalf("%s has no layers", name)
		}
		for _, l := range layers {
			s := l.Shape(32)
			if err := s.Validate(); err != nil {
				t.Errorf("%s: %v", l, err)
			}
			if l.Net != name {
				t.Errorf("layer %s tagged %q, in table %q", l.Name, l.Net, name)
			}
		}
	}
}

func TestFirstLayersExcludedFromImplicit(t *testing.T) {
	for _, layers := range Networks() {
		if layers[0].Ni >= conv.MinNiImplicit {
			t.Errorf("%s first layer should have tiny Ni (got %d)", layers[0], layers[0].Ni)
		}
	}
}

func TestListing1Counts(t *testing.T) {
	for _, b := range Batches() {
		shapes := Listing1(b)
		if len(shapes) != 75 {
			t.Fatalf("Listing1(%d) has %d configs, want 75 (Table 1's per-cell count)", b, len(shapes))
		}
		for _, s := range shapes {
			if s.Ni < s.No {
				t.Fatalf("constraint Ni >= No violated: %v", s)
			}
			if s.Kr != 3 || s.Kc != 3 {
				t.Fatalf("Listing-1 kernels are 3x3: %v", s)
			}
			if s.B != b {
				t.Fatalf("batch mismatch: %v", s)
			}
			if !conv.WinogradApplies(s) {
				t.Fatalf("all Listing-1 configs must admit Winograd (Table 1 shows 75 cases): %v", s)
			}
		}
	}
}

func TestListing2Counts(t *testing.T) {
	un := Listing2Unaligned()
	al := Listing2Aligned()
	if len(un) != 216 {
		t.Fatalf("unaligned count %d, want 216", len(un))
	}
	if len(al) != 343 {
		t.Fatalf("aligned count %d, want 343", len(al))
	}
	if len(un)+len(al) != 559 {
		t.Fatal("total must match the paper's 559 parameters")
	}
	for _, p := range al {
		if p.M%256 != 0 && p.M%512 != 0 && p.M%768 != 0 {
			// every aligned size is a multiple of 256 except 768 which is too
			if p.M%128 != 0 {
				t.Fatalf("aligned shape not 128-aligned: %v", p)
			}
		}
	}
	for _, p := range un {
		if p.M%128 == 0 && p.N%128 == 0 && p.K%128 == 0 {
			t.Fatalf("unaligned shape is fully aligned: %v", p)
		}
	}
}

func TestBatches(t *testing.T) {
	b := Batches()
	if len(b) != 3 || b[0] != 1 || b[1] != 32 || b[2] != 128 {
		t.Fatalf("batches = %v", b)
	}
}
