// neighbors.go implements cross-shape transfer lookup: when the tuner
// starts on a shape the library has never seen, the nearest already-tuned
// shapes of the same operator family donate their winning strategies as
// search seeds. Distance is measured in log space over the shape
// dimensions parsed from the signature, so 512×512×512 is nearer to
// 1024×512×512 than to 64×64×64 regardless of absolute magnitudes.
package cache

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// sigShape is a parsed operator signature: the family tag and the shape
// dimensions in a fixed order.
type sigShape struct {
	family string
	dims   []float64
}

// parseSignature understands the operator naming schemes of this repo:
// gemm_MxNxK and {implicit,explicit,winograd}_conv_b*_ni*_no*_r*x*_k*x*.
// Unknown signatures return ok=false and never participate in transfer.
func parseSignature(sig string) (sigShape, bool) {
	if rest, found := strings.CutPrefix(sig, "gemm_"); found {
		var m, n, k int
		if _, err := fmt.Sscanf(rest, "%dx%dx%d", &m, &n, &k); err != nil {
			return sigShape{}, false
		}
		return sigShape{family: "gemm", dims: []float64{float64(m), float64(n), float64(k)}}, true
	}
	for _, fam := range []string{"implicit_conv", "explicit_conv", "winograd_conv"} {
		rest, found := strings.CutPrefix(sig, fam+"_")
		if !found {
			continue
		}
		var b, ni, no, ro, co, kr, kc int
		if _, err := fmt.Sscanf(rest, "b%d_ni%d_no%d_r%dx%d_k%dx%d", &b, &ni, &no, &ro, &co, &kr, &kc); err != nil {
			return sigShape{}, false
		}
		return sigShape{family: fam, dims: []float64{
			float64(b), float64(ni), float64(no), float64(ro), float64(co), float64(kr), float64(kc),
		}}, true
	}
	return sigShape{}, false
}

// distance is the Euclidean log-space distance between two same-length
// dimension vectors.
func (s sigShape) distance(o sigShape) float64 {
	var d2 float64
	for i := range s.dims {
		d := math.Log2(math.Max(s.dims[i], 1)) - math.Log2(math.Max(o.dims[i], 1))
		d2 += d * d
	}
	return math.Sqrt(d2)
}

// Nearest returns up to k cached entries of the same operator family as
// signature, nearest shape first (log-space distance over the parsed
// dimensions, ties broken by signature). An entry bearing the exact
// signature is excluded — transfer seeds a *new* shape's search.
//
// Entries that are Degraded or fail Validate never qualify: a degraded
// baseline or a hand-corrupted entry must not seed a population (the
// quarantine Load applies protects the map, but entries can also arrive
// via Put). Unparseable signatures — the query's or an entry's — simply
// yield no matches.
func (l *Library) Nearest(signature string, k int) []Entry {
	want, ok := parseSignature(signature)
	if !ok || k <= 0 {
		return nil
	}
	l.mu.RLock()
	type scored struct {
		e Entry
		d float64
	}
	var cands []scored
	for sig, e := range l.entries {
		if sig == signature || e.Degraded || e.Validate() != nil {
			continue
		}
		have, ok := parseSignature(sig)
		if !ok || have.family != want.family {
			continue
		}
		cands = append(cands, scored{e: e, d: want.distance(have)})
	}
	l.mu.RUnlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d < cands[j].d
		}
		return cands[i].e.Signature < cands[j].e.Signature
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Entry, len(cands))
	for i, c := range cands {
		out[i] = c.e
	}
	l.reg().Counter("cache_neighbor_lookups_total").Inc()
	return out
}
