package cache

import (
	"testing"

	"swatop/internal/dsl"
)

func gemmEntry(sig string, seconds float64) Entry {
	return FromStrategy(sig, dsl.Strategy{
		Factors: map[string]int{"m": 64, "n": 64, "k": 128},
		Order:   []string{"m", "n", "k"},
	}, seconds, 100)
}

func convEntry(sig string) Entry {
	return FromStrategy(sig, dsl.Strategy{
		Factors: map[string]int{"no": 32, "b": 1},
	}, 0.002, 50)
}

func TestNearestOrdersByLogDistance(t *testing.T) {
	l := NewLibrary()
	l.Put(gemmEntry("gemm_1024x512x512", 0.001)) // distance 1 from query
	l.Put(gemmEntry("gemm_64x64x64", 0.001))     // distance 9 from query
	l.Put(gemmEntry("gemm_512x512x256", 0.001))  // distance 1 from query, later sig
	got := l.Nearest("gemm_512x512x512", 2)
	if len(got) != 2 {
		t.Fatalf("got %d entries, want 2", len(got))
	}
	// Both at distance 1; tie broken by signature string.
	if got[0].Signature != "gemm_1024x512x512" || got[1].Signature != "gemm_512x512x256" {
		t.Fatalf("order = %s, %s", got[0].Signature, got[1].Signature)
	}
}

func TestNearestExcludesExactSignature(t *testing.T) {
	l := NewLibrary()
	l.Put(gemmEntry("gemm_512x512x512", 0.001))
	l.Put(gemmEntry("gemm_256x256x256", 0.001))
	got := l.Nearest("gemm_512x512x512", 5)
	if len(got) != 1 || got[0].Signature != "gemm_256x256x256" {
		t.Fatalf("exact signature leaked into neighbors: %v", got)
	}
}

// TestNearestSkipsDegraded is the regression test for the transfer-seeding
// path: a Degraded (baseline-fallback) entry is served on exact Get hits
// but must never steer a neighboring shape's search.
func TestNearestSkipsDegraded(t *testing.T) {
	l := NewLibrary()
	e := gemmEntry("gemm_256x256x256", 0.001)
	e.Degraded = true
	l.Put(e)
	l.Put(gemmEntry("gemm_128x128x128", 0.001))
	got := l.Nearest("gemm_512x512x512", 5)
	if len(got) != 1 || got[0].Signature != "gemm_128x128x128" {
		t.Fatalf("degraded entry offered as seed: %v", got)
	}
	// Exact Get still serves the degraded entry.
	if _, ok := l.Get("gemm_256x256x256"); !ok {
		t.Fatal("degraded entry vanished from exact lookup")
	}
}

// TestNearestSkipsInvalid: entries that fail Validate (e.g. hand-edited
// after Put, or injected through tests) never qualify as seeds.
func TestNearestSkipsInvalid(t *testing.T) {
	l := NewLibrary()
	bad := gemmEntry("gemm_256x256x256", 0.001)
	bad.Factors = nil // fails Validate
	l.mu.Lock()
	l.entries[bad.Signature] = bad
	l.mu.Unlock()
	if got := l.Nearest("gemm_512x512x512", 5); len(got) != 0 {
		t.Fatalf("invalid entry offered as seed: %v", got)
	}
}

func TestNearestSameFamilyOnly(t *testing.T) {
	l := NewLibrary()
	l.Put(convEntry("implicit_conv_b1_ni64_no64_r56x56_k3x3"))
	l.Put(convEntry("winograd_conv_b1_ni64_no64_r56x56_k3x3"))
	l.Put(gemmEntry("gemm_256x256x256", 0.001))
	got := l.Nearest("implicit_conv_b1_ni64_no128_r56x56_k3x3", 5)
	if len(got) != 1 || got[0].Signature != "implicit_conv_b1_ni64_no64_r56x56_k3x3" {
		t.Fatalf("cross-family neighbors leaked: %v", got)
	}
}

func TestNearestUnparseableSignatures(t *testing.T) {
	l := NewLibrary()
	l.Put(gemmEntry("gemm_256x256x256", 0.001))
	l.Put(FromStrategy("mystery_op_v2", dsl.Strategy{
		Factors: map[string]int{"x": 4},
	}, 0.001, 10))
	if got := l.Nearest("mystery_op_v2", 5); got != nil {
		t.Fatalf("unparseable query returned %v", got)
	}
	if got := l.Nearest("gemm_bogus", 5); got != nil {
		t.Fatalf("malformed gemm query returned %v", got)
	}
	// The unparseable entry is invisible even to a valid query.
	if got := l.Nearest("gemm_512x512x512", 5); len(got) != 1 {
		t.Fatalf("unparseable entry leaked: %v", got)
	}
}

func TestNearestZeroK(t *testing.T) {
	l := NewLibrary()
	l.Put(gemmEntry("gemm_256x256x256", 0.001))
	if got := l.Nearest("gemm_512x512x512", 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
}

func TestParseSignature(t *testing.T) {
	cases := []struct {
		sig    string
		family string
		ok     bool
	}{
		{"gemm_512x512x512", "gemm", true},
		{"implicit_conv_b1_ni3_no64_r224x224_k3x3", "implicit_conv", true},
		{"explicit_conv_b4_ni64_no64_r56x56_k1x1", "explicit_conv", true},
		{"winograd_conv_b1_ni64_no64_r56x56_k3x3", "winograd_conv", true},
		{"gemm_512x512", "", false},
		{"attention_b8_h12", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, ok := parseSignature(c.sig)
		if ok != c.ok || (ok && got.family != c.family) {
			t.Errorf("parseSignature(%q) = %+v, %v; want family %q ok %v",
				c.sig, got, ok, c.family, c.ok)
		}
	}
}
