package cache

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"encoding/json"

	"swatop/internal/dsl"
	"swatop/internal/faults"
	"swatop/internal/ir"
	"swatop/internal/metrics"
)

func sampleStrategy() dsl.Strategy {
	return dsl.Strategy{
		Factors:      map[string]int{"m": 64, "n": 128, "k": 256},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"C": {1, 0}},
		Vec:          ir.VecN,
		DoubleBuffer: true,
		Padding:      dsl.PadTraditional,
	}
}

func TestEntryRoundTrip(t *testing.T) {
	st := sampleStrategy()
	e := FromStrategy("gemm_1x2x3", st, 0.5, 42)
	back := e.Strategy()
	if back.String() != st.String() {
		t.Fatalf("round trip changed strategy:\n%s\n%s", st, back)
	}
}

func TestLibraryPutGetCollision(t *testing.T) {
	l := NewLibrary()
	if _, ok := l.Get("x"); ok {
		t.Fatal("empty library should miss")
	}
	l.Put(FromStrategy("x", sampleStrategy(), 2.0, 10))
	l.Put(FromStrategy("x", sampleStrategy(), 1.0, 10)) // faster: replaces
	l.Put(FromStrategy("x", sampleStrategy(), 3.0, 10)) // slower: ignored
	e, ok := l.Get("x")
	if !ok || e.SimulatedSeconds != 1.0 {
		t.Fatalf("collision policy wrong: %+v", e)
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestLibraryDelete(t *testing.T) {
	l := NewLibrary()
	if l.Delete("x") {
		t.Fatal("deleting a missing entry must report false")
	}
	l.Put(FromStrategy("x", sampleStrategy(), 1.0, 10))
	if !l.Delete("x") {
		t.Fatal("delete must report the entry existed")
	}
	if _, ok := l.Get("x"); ok || l.Len() != 0 {
		t.Fatal("entry survived deletion")
	}
	// After deletion, a slower entry must be storable again: deletion clears
	// the keep-the-faster collision policy.
	l.Put(FromStrategy("x", sampleStrategy(), 5.0, 10))
	if e, ok := l.Get("x"); !ok || e.SimulatedSeconds != 5.0 {
		t.Fatalf("re-insert after delete failed: %+v", e)
	}
}

func TestLibrarySaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "schedules.json")
	l := NewLibrary()
	l.Put(FromStrategy("a", sampleStrategy(), 1.5, 7))
	l.Put(FromStrategy("b", sampleStrategy(), 2.5, 9))
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}
	l2 := NewLibrary()
	if err := l2.Load(path); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 2 {
		t.Fatalf("loaded %d entries", l2.Len())
	}
	sigs := l2.Signatures()
	if len(sigs) != 2 || sigs[0] != "a" || sigs[1] != "b" {
		t.Fatalf("signatures = %v", sigs)
	}
	e, _ := l2.Get("a")
	if e.Strategy().String() != sampleStrategy().String() {
		t.Fatal("loaded strategy differs")
	}
}

func TestLibraryLoadErrors(t *testing.T) {
	l := NewLibrary()
	if err := l.Load("/nonexistent/schedules.json"); err == nil {
		t.Fatal("missing file must error")
	} else if !strings.Contains(err.Error(), "/nonexistent/schedules.json") {
		t.Fatalf("error lost the file path: %v", err)
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Load(bad); err == nil {
		t.Fatal("corrupt file must error")
	} else if !strings.Contains(err.Error(), bad) {
		t.Fatalf("error lost the file path: %v", err)
	}
	// An entry without a signature is quarantined, not a load failure: one
	// bad entry must not force the caller to discard the whole library.
	noSig := filepath.Join(dir, "nosig.json")
	if err := os.WriteFile(noSig, []byte(`[{"factors":{"m":64},"simulated_seconds":1}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := l.LoadWithReport(noSig)
	if err != nil {
		t.Fatalf("quarantinable entry failed the load: %v", err)
	}
	if rep.Loaded != 0 || len(rep.Quarantined) != 1 {
		t.Fatalf("report = %+v, want 0 loaded / 1 quarantined", rep)
	}
	if l.Len() != 0 {
		t.Fatal("invalid entry admitted")
	}
}

func TestLoadZeroLengthFileIsEmptyLibrary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "schedules.json")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLibrary()
	if err := l.Load(path); err != nil {
		t.Fatalf("zero-length file must load as empty, got %v", err)
	}
	if l.Len() != 0 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestLoadQuarantinesInvalidEntries(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "schedules.json")
	content := `{"version":1,"entries":[
		{"signature":"good","factors":{"m":64},"simulated_seconds":0.5,"space_size":3},
		{"signature":"zero-time","factors":{"m":64},"simulated_seconds":0},
		{"signature":"neg-time","factors":{"m":64},"simulated_seconds":-1},
		{"signature":"no-factors","simulated_seconds":0.5},
		{"signature":"bad-factor","factors":{"m":0},"simulated_seconds":0.5},
		{"signature":"neg-space","factors":{"m":64},"simulated_seconds":0.5,"space_size":-1}
	]}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLibrary()
	rep, err := l.LoadWithReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 1 || len(rep.Quarantined) != 5 {
		t.Fatalf("report = %+v, want 1 loaded / 5 quarantined", rep)
	}
	if _, ok := l.Get("good"); !ok || l.Len() != 1 {
		t.Fatalf("library holds %v, want only 'good'", l.Signatures())
	}
	for _, q := range rep.Quarantined {
		if q.Reason == "" || q.Signature == "" {
			t.Fatalf("quarantine record incomplete: %+v", q)
		}
	}
}

func TestLoadUnknownVersionQuarantinesAll(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "future.json")
	content := `{"version":99,"entries":[{"signature":"x","factors":{"m":64},"simulated_seconds":0.5}]}`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLibrary()
	rep, err := l.LoadWithReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Loaded != 0 || len(rep.Quarantined) != 1 || l.Len() != 0 {
		t.Fatalf("future-version entries admitted: %+v", rep)
	}
	if !strings.Contains(rep.Quarantined[0].Reason, "version 99") {
		t.Fatalf("reason = %q", rep.Quarantined[0].Reason)
	}
}

func TestLoadLegacyBareArray(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.json")
	content := `[{"signature":"old","factors":{"m":64},"simulated_seconds":0.5,"space_size":3}]`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLibrary()
	if err := l.Load(path); err != nil {
		t.Fatal(err)
	}
	if _, ok := l.Get("old"); !ok {
		t.Fatal("legacy bare-array library not readable")
	}
}

func TestSaveCreatesParentDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "deeper", "schedules.json")
	l := NewLibrary()
	l.Put(FromStrategy("a", sampleStrategy(), 1.5, 7))
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}
	l2 := NewLibrary()
	if err := l2.Load(path); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 1 {
		t.Fatalf("loaded %d entries", l2.Len())
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Fatalf("library file mode %o, want 644", perm)
	}
}

// TestSaveCrashLeavesOldLibraryIntact simulates a crash in the window
// between writing the temp file and renaming it over the library: the
// previous file must remain byte-identical and loadable, and no temp
// debris may shadow it.
func TestSaveCrashLeavesOldLibraryIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "schedules.json")
	l := NewLibrary()
	l.Put(FromStrategy("a", sampleStrategy(), 1.5, 7))
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	in := faults.New(1)
	in.FailEveryNth(faults.CacheCommit, 1, errors.New("power loss"))
	l.SetFaults(in)
	l.Put(FromStrategy("b", sampleStrategy(), 2.5, 9))
	if err := l.Save(path); err == nil {
		t.Fatal("crashed save must report an error")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("crashed save modified the existing library")
	}
	l2 := NewLibrary()
	if err := l2.Load(path); err != nil {
		t.Fatalf("library unloadable after crashed save: %v", err)
	}
	if l2.Len() != 1 {
		t.Fatalf("loaded %d entries, want the pre-crash 1", l2.Len())
	}

	// With the fault disarmed the same save completes and both entries
	// round-trip.
	in.Disarm(faults.CacheCommit)
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}
	l3 := NewLibrary()
	if err := l3.Load(path); err != nil {
		t.Fatal(err)
	}
	if l3.Len() != 2 {
		t.Fatalf("post-recovery load got %d entries", l3.Len())
	}
}

func TestEntryValidate(t *testing.T) {
	good := FromStrategy("sig", sampleStrategy(), 0.5, 3)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Entry)
	}{
		{"missing signature", func(e *Entry) { e.Signature = "" }},
		{"nil factors", func(e *Entry) { e.Factors = nil }},
		{"empty factors", func(e *Entry) { e.Factors = map[string]int{} }},
		{"non-positive factor", func(e *Entry) { e.Factors = map[string]int{"m": -1} }},
		{"zero seconds", func(e *Entry) { e.SimulatedSeconds = 0 }},
		{"negative seconds", func(e *Entry) { e.SimulatedSeconds = -0.5 }},
		{"NaN seconds", func(e *Entry) { e.SimulatedSeconds = math.NaN() }},
		{"Inf seconds", func(e *Entry) { e.SimulatedSeconds = math.Inf(1) }},
		{"negative space", func(e *Entry) { e.SpaceSize = -2 }},
	}
	for _, tc := range cases {
		e := FromStrategy("sig", sampleStrategy(), 0.5, 3)
		tc.mutate(&e)
		if err := e.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, e)
		}
	}
}

func TestLibraryMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	l := NewLibrary()
	l.SetMetrics(reg)

	if _, ok := l.Get("missing"); ok {
		t.Fatal("unexpected hit")
	}
	l.Put(FromStrategy("g", sampleStrategy(), 0.5, 10))
	if _, ok := l.Get("g"); !ok {
		t.Fatal("expected hit")
	}
	l.Delete("g")
	l.Delete("g") // second delete of a gone entry must not count

	c := func(name string) int64 { return reg.Counter(name).Value() }
	if c("cache_hits_total") != 1 || c("cache_misses_total") != 1 ||
		c("cache_puts_total") != 1 || c("cache_deletes_total") != 1 {
		t.Fatalf("counters: hits=%d misses=%d puts=%d deletes=%d",
			c("cache_hits_total"), c("cache_misses_total"),
			c("cache_puts_total"), c("cache_deletes_total"))
	}

	// Save commits; a load with one bad entry quarantines it.
	l.Put(FromStrategy("g2", sampleStrategy(), 0.5, 10))
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}
	bad := FromStrategy("broken", sampleStrategy(), -1, 10) // invalid seconds
	l2 := NewLibrary()
	l2.Put(FromStrategy("g2", sampleStrategy(), 0.5, 10))
	l2.Put(bad)
	// Hand-write a file with the invalid entry to exercise quarantine.
	data, _ := json.Marshal(libraryFile{Version: SchemaVersion,
		Entries: []Entry{FromStrategy("ok", sampleStrategy(), 0.5, 10), bad}})
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(badPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := NewLibrary()
	fresh.SetMetrics(reg)
	if _, err := fresh.LoadWithReport(badPath); err != nil {
		t.Fatal(err)
	}
	if c("cache_commits_total") != 1 {
		t.Fatalf("commits = %d, want 1", c("cache_commits_total"))
	}
	if c("cache_loaded_entries_total") != 1 || c("cache_quarantined_total") != 1 {
		t.Fatalf("loaded=%d quarantined=%d, want 1/1",
			c("cache_loaded_entries_total"), c("cache_quarantined_total"))
	}
}
