package cache

import (
	"os"
	"path/filepath"
	"testing"

	"swatop/internal/dsl"
	"swatop/internal/ir"
)

func sampleStrategy() dsl.Strategy {
	return dsl.Strategy{
		Factors:      map[string]int{"m": 64, "n": 128, "k": 256},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"C": {1, 0}},
		Vec:          ir.VecN,
		DoubleBuffer: true,
		Padding:      dsl.PadTraditional,
	}
}

func TestEntryRoundTrip(t *testing.T) {
	st := sampleStrategy()
	e := FromStrategy("gemm_1x2x3", st, 0.5, 42)
	back := e.Strategy()
	if back.String() != st.String() {
		t.Fatalf("round trip changed strategy:\n%s\n%s", st, back)
	}
}

func TestLibraryPutGetCollision(t *testing.T) {
	l := NewLibrary()
	if _, ok := l.Get("x"); ok {
		t.Fatal("empty library should miss")
	}
	l.Put(FromStrategy("x", sampleStrategy(), 2.0, 10))
	l.Put(FromStrategy("x", sampleStrategy(), 1.0, 10)) // faster: replaces
	l.Put(FromStrategy("x", sampleStrategy(), 3.0, 10)) // slower: ignored
	e, ok := l.Get("x")
	if !ok || e.SimulatedSeconds != 1.0 {
		t.Fatalf("collision policy wrong: %+v", e)
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestLibraryDelete(t *testing.T) {
	l := NewLibrary()
	if l.Delete("x") {
		t.Fatal("deleting a missing entry must report false")
	}
	l.Put(FromStrategy("x", sampleStrategy(), 1.0, 10))
	if !l.Delete("x") {
		t.Fatal("delete must report the entry existed")
	}
	if _, ok := l.Get("x"); ok || l.Len() != 0 {
		t.Fatal("entry survived deletion")
	}
	// After deletion, a slower entry must be storable again: deletion clears
	// the keep-the-faster collision policy.
	l.Put(FromStrategy("x", sampleStrategy(), 5.0, 10))
	if e, ok := l.Get("x"); !ok || e.SimulatedSeconds != 5.0 {
		t.Fatalf("re-insert after delete failed: %+v", e)
	}
}

func TestLibrarySaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "schedules.json")
	l := NewLibrary()
	l.Put(FromStrategy("a", sampleStrategy(), 1.5, 7))
	l.Put(FromStrategy("b", sampleStrategy(), 2.5, 9))
	if err := l.Save(path); err != nil {
		t.Fatal(err)
	}
	l2 := NewLibrary()
	if err := l2.Load(path); err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 2 {
		t.Fatalf("loaded %d entries", l2.Len())
	}
	sigs := l2.Signatures()
	if len(sigs) != 2 || sigs[0] != "a" || sigs[1] != "b" {
		t.Fatalf("signatures = %v", sigs)
	}
	e, _ := l2.Get("a")
	if e.Strategy().String() != sampleStrategy().String() {
		t.Fatal("loaded strategy differs")
	}
}

func TestLibraryLoadErrors(t *testing.T) {
	l := NewLibrary()
	if err := l.Load("/nonexistent/schedules.json"); err == nil {
		t.Fatal("missing file must error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Load(bad); err == nil {
		t.Fatal("corrupt file must error")
	}
	noSig := filepath.Join(dir, "nosig.json")
	if err := os.WriteFile(noSig, []byte(`[{"factors":{}}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := l.Load(noSig); err == nil {
		t.Fatal("entry without signature must error")
	}
}
