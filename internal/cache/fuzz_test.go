package cache

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLibraryLoad feeds arbitrary bytes through the full load path. The
// invariants: loading never panics, never admits an entry that fails
// Validate, and the report's accounting matches the library's contents.
// Wired into `make ci` as a short smoke run.
func FuzzLibraryLoad(f *testing.F) {
	f.Add([]byte(``))
	f.Add([]byte(`   `))
	f.Add([]byte(`{not json`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"version":1,"entries":null}`))
	f.Add([]byte(`{"version":1,"entries":[{"signature":"a","factors":{"m":64},"simulated_seconds":0.5,"space_size":3}]}`))
	f.Add([]byte(`{"version":99,"entries":[{"signature":"a","factors":{"m":64},"simulated_seconds":0.5}]}`))
	f.Add([]byte(`[{"signature":"legacy","factors":{"m":64},"simulated_seconds":0.5}]`))
	f.Add([]byte(`{"version":1,"entries":[{"signature":"a","factors":{"m":-1},"simulated_seconds":1e999}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"signature":"","factors":{},"simulated_seconds":0}]}`))
	f.Add([]byte(`{"version":1,"entries":[{"signature":"d","factors":{"m":1},"simulated_seconds":2},{"signature":"d","factors":{"m":1},"simulated_seconds":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		l := NewLibrary()
		rep, err := l.LoadWithReport(path)
		if err != nil {
			if l.Len() != 0 {
				t.Fatalf("failed load still admitted %d entries", l.Len())
			}
			return
		}
		// Loaded counts admissions; duplicate signatures collapse via Put,
		// so the library can only hold fewer, never more.
		if l.Len() > rep.Loaded {
			t.Fatalf("report says %d loaded, library holds %d", rep.Loaded, l.Len())
		}
		for _, sig := range l.Signatures() {
			e, ok := l.Get(sig)
			if !ok {
				t.Fatalf("signature %q listed but missing", sig)
			}
			if verr := e.Validate(); verr != nil {
				t.Fatalf("invalid entry admitted: %+v (%v)", e, verr)
			}
		}
	})
}
