// Package cache implements swATOP's deployment modes (§1: "swATOP can be
// used as an offline compiler by pre-generating near-optimal executable
// code, or be integrated into other frameworks to provide online
// autotuning"): a persistent schedule library that maps operator
// signatures to tuned strategies, so a DL framework tunes each shape once
// and compiles from the cache afterwards.
package cache

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"swatop/internal/dsl"
	"swatop/internal/ir"
)

// Entry is one cached tuning result.
type Entry struct {
	// Signature identifies the operator instance (name encodes shape).
	Signature string `json:"signature"`
	// Strategy fields (Strategy itself carries maps; serialized fully).
	Factors      map[string]int   `json:"factors"`
	Order        []string         `json:"order,omitempty"`
	Layouts      map[string][]int `json:"layouts,omitempty"`
	VecN         bool             `json:"vec_n,omitempty"`
	DoubleBuffer bool             `json:"double_buffer"`
	Traditional  bool             `json:"traditional_padding,omitempty"`
	// SimulatedSeconds records the measured performance at tuning time.
	SimulatedSeconds float64 `json:"simulated_seconds"`
	// SpaceSize records how many candidates the tuner considered.
	SpaceSize int `json:"space_size"`
}

// Strategy reconstructs the dsl.Strategy.
func (e Entry) Strategy() dsl.Strategy {
	vec := ir.VecM
	if e.VecN {
		vec = ir.VecN
	}
	pad := dsl.PadLightweight
	if e.Traditional {
		pad = dsl.PadTraditional
	}
	return dsl.Strategy{
		Factors:      e.Factors,
		Order:        e.Order,
		Layouts:      e.Layouts,
		Vec:          vec,
		DoubleBuffer: e.DoubleBuffer,
		Padding:      pad,
	}
}

// FromStrategy builds an entry.
func FromStrategy(signature string, st dsl.Strategy, seconds float64, spaceSize int) Entry {
	return Entry{
		Signature:        signature,
		Factors:          st.Factors,
		Order:            st.Order,
		Layouts:          st.Layouts,
		VecN:             st.Vec == ir.VecN,
		DoubleBuffer:     st.DoubleBuffer,
		Traditional:      st.Padding == dsl.PadTraditional,
		SimulatedSeconds: seconds,
		SpaceSize:        spaceSize,
	}
}

// Library is a concurrency-safe schedule cache.
type Library struct {
	mu      sync.RWMutex
	entries map[string]Entry
}

// NewLibrary creates an empty library.
func NewLibrary() *Library {
	return &Library{entries: map[string]Entry{}}
}

// Get looks up a tuned schedule.
func (l *Library) Get(signature string) (Entry, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	e, ok := l.entries[signature]
	return e, ok
}

// Put stores a tuned schedule, keeping the faster entry on collision.
func (l *Library) Put(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, ok := l.entries[e.Signature]; ok && old.SimulatedSeconds <= e.SimulatedSeconds {
		return
	}
	l.entries[e.Signature] = e
}

// Delete removes a cached schedule (e.g. a stale entry whose strategy no
// longer compiles), reporting whether it existed.
func (l *Library) Delete(signature string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.entries[signature]
	delete(l.entries, signature)
	return ok
}

// Len reports the number of cached schedules.
func (l *Library) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Signatures lists cached operator signatures, sorted.
func (l *Library) Signatures() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.entries))
	for s := range l.entries {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Save writes the library as JSON.
func (l *Library) Save(path string) error {
	l.mu.RLock()
	list := make([]Entry, 0, len(l.entries))
	for _, e := range l.entries {
		list = append(list, e)
	}
	l.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].Signature < list[j].Signature })
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Load reads a library from JSON, merging into the receiver.
func (l *Library) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var list []Entry
	if err := json.Unmarshal(data, &list); err != nil {
		return fmt.Errorf("cache: %s: %w", path, err)
	}
	for _, e := range list {
		if e.Signature == "" {
			return fmt.Errorf("cache: %s: entry without signature", path)
		}
		l.Put(e)
	}
	return nil
}
