// Package cache implements swATOP's deployment modes (§1: "swATOP can be
// used as an offline compiler by pre-generating near-optimal executable
// code, or be integrated into other frameworks to provide online
// autotuning"): a persistent schedule library that maps operator
// signatures to tuned strategies, so a DL framework tunes each shape once
// and compiles from the cache afterwards.
package cache

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"swatop/internal/dsl"
	"swatop/internal/faults"
	"swatop/internal/ir"
	"swatop/internal/metrics"
	"swatop/internal/obsrv"
)

// SchemaVersion is the on-disk library format version. Files written by
// Save carry it; Load quarantines entries of any other version rather than
// guessing at their meaning. Pre-versioned files (a bare JSON entry array)
// are still read as version 1.
const SchemaVersion = 1

// libraryFile is the persisted representation.
type libraryFile struct {
	Version int     `json:"version"`
	Entries []Entry `json:"entries"`
}

// Entry is one cached tuning result.
type Entry struct {
	// Signature identifies the operator instance (name encodes shape).
	Signature string `json:"signature"`
	// Strategy fields (Strategy itself carries maps; serialized fully).
	Factors      map[string]int   `json:"factors"`
	Order        []string         `json:"order,omitempty"`
	Layouts      map[string][]int `json:"layouts,omitempty"`
	VecN         bool             `json:"vec_n,omitempty"`
	DoubleBuffer bool             `json:"double_buffer"`
	Traditional  bool             `json:"traditional_padding,omitempty"`
	// SimulatedSeconds records the measured performance at tuning time.
	SimulatedSeconds float64 `json:"simulated_seconds"`
	// SpaceSize records how many candidates the tuner considered.
	SpaceSize int `json:"space_size"`
	// Degraded marks a baseline-fallback entry (served when tuning was
	// sabotaged, see the facade's resilience path). Degraded entries are
	// still served on exact Get hits but are never transfer seeds: a
	// fallback schedule must not steer a neighboring shape's search.
	Degraded bool `json:"degraded,omitempty"`
}

// Strategy reconstructs the dsl.Strategy.
func (e Entry) Strategy() dsl.Strategy {
	vec := ir.VecM
	if e.VecN {
		vec = ir.VecN
	}
	pad := dsl.PadLightweight
	if e.Traditional {
		pad = dsl.PadTraditional
	}
	return dsl.Strategy{
		Factors:      e.Factors,
		Order:        e.Order,
		Layouts:      e.Layouts,
		Vec:          vec,
		DoubleBuffer: e.DoubleBuffer,
		Padding:      pad,
	}
}

// FromStrategy builds an entry.
func FromStrategy(signature string, st dsl.Strategy, seconds float64, spaceSize int) Entry {
	return Entry{
		Signature:        signature,
		Factors:          st.Factors,
		Order:            st.Order,
		Layouts:          st.Layouts,
		VecN:             st.Vec == ir.VecN,
		DoubleBuffer:     st.DoubleBuffer,
		Traditional:      st.Padding == dsl.PadTraditional,
		SimulatedSeconds: seconds,
		SpaceSize:        spaceSize,
	}
}

// Validate reports why an entry is unusable. Load refuses to admit
// entries that fail it: a corrupt or hand-edited library must never poison
// the live cache with schedules that cannot compile or with nonsense
// performance numbers that would win every Put collision.
func (e Entry) Validate() error {
	if e.Signature == "" {
		return errors.New("missing signature")
	}
	if len(e.Factors) == 0 {
		return errors.New("nil or empty factors")
	}
	for name, f := range e.Factors {
		if f <= 0 {
			return fmt.Errorf("factor %q is %d, want > 0", name, f)
		}
	}
	if !(e.SimulatedSeconds > 0) || math.IsInf(e.SimulatedSeconds, 0) {
		// The negated comparison also rejects NaN.
		return fmt.Errorf("simulated_seconds %v, want finite > 0", e.SimulatedSeconds)
	}
	if e.SpaceSize < 0 {
		return fmt.Errorf("space_size %d, want >= 0", e.SpaceSize)
	}
	return nil
}

// Library is a concurrency-safe schedule cache.
type Library struct {
	mu       sync.RWMutex
	entries  map[string]Entry
	faults   *faults.Injector
	metrics  *metrics.Registry
	observer *obsrv.Observer
}

// SetFaults attaches a fault injector consulted at the persistence
// injection points (nil detaches). Nil in every production run.
func (l *Library) SetFaults(in *faults.Injector) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.faults = in
}

// SetMetrics attaches a metrics registry: lookups, stores, commits and
// quarantines are counted as cache_* metrics (nil detaches).
func (l *Library) SetMetrics(reg *metrics.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metrics = reg
}

// SetObserver attaches a structured-event observer: hits, misses, stores,
// commits and quarantines become cache.* events (nil detaches). Events are
// observational only and never change admission decisions.
func (l *Library) SetObserver(o *obsrv.Observer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.observer = o
}

// reg returns the attached registry (nil-safe: a nil registry's metrics
// are inert).
func (l *Library) reg() *metrics.Registry {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.metrics
}

// obs returns the attached observer (nil-safe: a nil observer is inert).
func (l *Library) obs() *obsrv.Observer {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.observer
}

// NewLibrary creates an empty library.
func NewLibrary() *Library {
	return &Library{entries: map[string]Entry{}}
}

// Get looks up a tuned schedule.
func (l *Library) Get(signature string) (Entry, bool) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	e, ok := l.entries[signature]
	if ok {
		l.metrics.Counter("cache_hits_total").Inc()
	} else {
		l.metrics.Counter("cache_misses_total").Inc()
	}
	if l.observer.Enabled() {
		kind := "cache.miss"
		if ok {
			kind = "cache.hit"
		}
		l.observer.Emit(obsrv.LevelDebug, kind, obsrv.F("signature", signature))
	}
	return e, ok
}

// Put stores a tuned schedule, keeping the faster entry on collision.
func (l *Library) Put(e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.metrics.Counter("cache_puts_total").Inc()
	if old, ok := l.entries[e.Signature]; ok && old.SimulatedSeconds <= e.SimulatedSeconds {
		return
	}
	l.entries[e.Signature] = e
	if l.observer.Enabled() {
		l.observer.Emit(obsrv.LevelDebug, "cache.put",
			obsrv.F("signature", e.Signature), obsrv.Ms("seconds_ms", e.SimulatedSeconds))
	}
}

// Delete removes a cached schedule (e.g. a stale entry whose strategy no
// longer compiles), reporting whether it existed.
func (l *Library) Delete(signature string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.entries[signature]
	if ok {
		l.metrics.Counter("cache_deletes_total").Inc()
		l.observer.Emit(obsrv.LevelDebug, "cache.delete", obsrv.F("signature", signature))
	}
	delete(l.entries, signature)
	return ok
}

// Len reports the number of cached schedules.
func (l *Library) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.entries)
}

// Signatures lists cached operator signatures, sorted.
func (l *Library) Signatures() []string {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]string, 0, len(l.entries))
	for s := range l.entries {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Save writes the library as versioned JSON, atomically: the data goes to
// a temp file in the destination directory, is fsynced, and is renamed
// over path — so a crash at any instant leaves either the old library or
// the new one, never a torn file. The parent directory is created if
// missing. Files are written 0o644 (world-readable: a schedule library
// holds tuning results, not secrets, and is commonly shared between the
// offline tuner and online framework processes of different users).
func (l *Library) Save(path string) error {
	err := l.save(path)
	if err != nil {
		l.reg().Counter("cache_commit_failures_total").Inc()
		l.obs().Emit(obsrv.LevelError, "cache.commit.fail",
			obsrv.F("path", path), obsrv.F("error", err))
	} else {
		l.reg().Counter("cache_commits_total").Inc()
		l.obs().Emit(obsrv.LevelInfo, "cache.commit",
			obsrv.F("path", path), obsrv.F("entries", l.Len()))
	}
	return err
}

func (l *Library) save(path string) error {
	l.mu.RLock()
	list := make([]Entry, 0, len(l.entries))
	for _, e := range l.entries {
		list = append(list, e)
	}
	inj := l.faults
	l.mu.RUnlock()
	sort.Slice(list, func(i, j int) bool { return list[i].Signature < list[j].Signature })
	data, err := json.MarshalIndent(libraryFile{Version: SchemaVersion, Entries: list}, "", "  ")
	if err != nil {
		return fmt.Errorf("cache: save %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("cache: save %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("cache: save %s: %w", path, err)
	}
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: save %s: %w", path, err)
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	// The crash window atomicity protects: the temp file is complete and
	// durable, the rename has not happened. A fault here simulates the
	// process dying mid-save; the existing library must stay untouched.
	if err := inj.Fire(faults.CacheCommit); err != nil {
		return cleanup(fmt.Errorf("injected crash before commit: %w", err))
	}
	if err := tmp.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		return cleanup(err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: save %s: %w", path, err)
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// some filesystems refuse it, and the data file is already safe.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Quarantined is one entry Load refused to admit, with the reason.
type Quarantined struct {
	// Index is the entry's position in the file.
	Index int
	// Signature is the entry's signature ("" when missing).
	Signature string
	// Reason says why the entry was rejected.
	Reason string
}

// LoadReport summarizes one Load: how many entries were merged and which
// were quarantined. Quarantining never fails the load — a partially
// corrupt library yields its good entries and a report, not an error that
// forces the caller to discard everything.
type LoadReport struct {
	// Path is the file that was read.
	Path string
	// Loaded is the number of entries merged into the library.
	Loaded int
	// Quarantined lists rejected entries, in file order.
	Quarantined []Quarantined
}

// Load reads a library from JSON, merging valid entries into the receiver
// and silently quarantining invalid ones; use LoadWithReport to see what
// was rejected. A zero-length file is an empty library (the state a crash
// between create and first save leaves behind), not an error. All errors
// carry the file path.
func (l *Library) Load(path string) error {
	_, err := l.LoadWithReport(path)
	return err
}

// LoadWithReport is Load returning the per-entry admission report.
func (l *Library) LoadWithReport(path string) (LoadReport, error) {
	rep, err := l.loadWithReport(path)
	reg := l.reg()
	reg.Counter("cache_loaded_entries_total").Add(int64(rep.Loaded))
	reg.Counter("cache_quarantined_total").Add(int64(len(rep.Quarantined)))
	if obs := l.obs(); obs.Enabled() {
		obs.Emit(obsrv.LevelInfo, "cache.load",
			obsrv.F("path", path), obsrv.F("loaded", rep.Loaded),
			obsrv.F("quarantined", len(rep.Quarantined)))
		for _, q := range rep.Quarantined {
			obs.Emit(obsrv.LevelWarn, "cache.quarantine",
				obsrv.F("path", path), obsrv.F("index", q.Index),
				obsrv.F("signature", q.Signature), obsrv.F("reason", q.Reason))
		}
	}
	return rep, err
}

func (l *Library) loadWithReport(path string) (LoadReport, error) {
	rep := LoadReport{Path: path}
	data, err := os.ReadFile(path)
	if err != nil {
		return rep, fmt.Errorf("cache: load %s: %w", path, err)
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return rep, nil
	}
	var f libraryFile
	if err := json.Unmarshal(data, &f); err != nil {
		// Pre-versioned libraries were a bare entry array; read them as
		// version 1 before giving up.
		var list []Entry
		if legacyErr := json.Unmarshal(data, &list); legacyErr != nil {
			return rep, fmt.Errorf("cache: load %s: %w", path, err)
		}
		f = libraryFile{Version: SchemaVersion, Entries: list}
	}
	if f.Version != SchemaVersion {
		// A future (or garbage) schema: the entries may mean anything, so
		// quarantine them all instead of merging misinterpretations.
		for i, e := range f.Entries {
			rep.Quarantined = append(rep.Quarantined, Quarantined{
				Index: i, Signature: e.Signature,
				Reason: fmt.Sprintf("unknown schema version %d (want %d)", f.Version, SchemaVersion),
			})
		}
		return rep, nil
	}
	for i, e := range f.Entries {
		if err := e.Validate(); err != nil {
			rep.Quarantined = append(rep.Quarantined, Quarantined{
				Index: i, Signature: e.Signature, Reason: err.Error(),
			})
			continue
		}
		l.Put(e)
		rep.Loaded++
	}
	return rep, nil
}
