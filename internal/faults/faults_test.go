package faults

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire(Measure); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if s := in.Stall(ComputeStall); s != 0 {
		t.Fatalf("nil injector stalled: %v", s)
	}
	if in.Calls(Measure) != 0 || in.Fired(Measure) != 0 {
		t.Fatal("nil injector counted")
	}
	in.Disarm(Measure) // must not panic
}

func TestFailEveryNth(t *testing.T) {
	in := New(1)
	boom := errors.New("boom")
	in.FailEveryNth(Measure, 3, boom)
	var got []int
	for i := 1; i <= 9; i++ {
		if err := in.Fire(Measure); err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("call %d: wrong error %v", i, err)
			}
			got = append(got, i)
		}
	}
	if len(got) != 3 || got[0] != 3 || got[1] != 6 || got[2] != 9 {
		t.Fatalf("fired on calls %v, want [3 6 9]", got)
	}
	if in.Calls(Measure) != 9 || in.Fired(Measure) != 3 {
		t.Fatalf("counters calls=%d fired=%d", in.Calls(Measure), in.Fired(Measure))
	}
}

func TestFailWithProbabilityDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []int {
		in := New(seed)
		in.FailWithProbability(DMATransfer, 0.25, errors.New("drop"))
		var fired []int
		for i := 0; i < 400; i++ {
			if in.Fire(DMATransfer) != nil {
				fired = append(fired, i)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("same seed produced different fault sequences")
	}
	if n := len(a); n < 50 || n > 150 {
		t.Fatalf("p=0.25 over 400 calls fired %d times — generator broken", n)
	}
	if fmt.Sprint(run(7)) == fmt.Sprint(a) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestTransientMarkSurvivesWrapping(t *testing.T) {
	err := Transient(errors.New("flaky link"))
	wrapped := fmt.Errorf("exec gemm: %w", fmt.Errorf("dma: %w", err))
	if !IsTransient(wrapped) {
		t.Fatal("transient mark lost through wrapping")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("plain error marked transient")
	}
	if wrapped.Error() == "" || !errors.Is(wrapped, ErrTransient) {
		t.Fatal("wrapped transient unusable")
	}
}

func TestPanicRule(t *testing.T) {
	in := New(1)
	in.PanicEveryNth(Measure, 2, "ir: division by zero")
	if err := in.Fire(Measure); err != nil {
		t.Fatalf("call 1 fired: %v", err)
	}
	defer func() {
		if r := recover(); r != "ir: division by zero" {
			t.Fatalf("recovered %v", r)
		}
	}()
	_ = in.Fire(Measure)
	t.Fatal("call 2 did not panic")
}

func TestStallRule(t *testing.T) {
	in := New(1)
	in.StallEveryNth(ComputeStall, 2, 1.5)
	if s := in.Stall(ComputeStall); s != 0 {
		t.Fatalf("call 1 stalled %v", s)
	}
	if s := in.Stall(ComputeStall); s != 1.5 {
		t.Fatalf("call 2 stalled %v, want 1.5", s)
	}
}

func TestDisarmStopsFiring(t *testing.T) {
	in := New(1)
	in.FailEveryNth(Measure, 1, errors.New("x"))
	if in.Fire(Measure) == nil {
		t.Fatal("armed rule did not fire")
	}
	in.Disarm(Measure)
	if err := in.Fire(Measure); err != nil {
		t.Fatalf("disarmed rule fired: %v", err)
	}
	if in.Calls(Measure) != 2 {
		t.Fatalf("calls after disarm = %d, want 2", in.Calls(Measure))
	}
}

// TestConcurrentFire exercises the injector from many goroutines (the
// worker-pool usage pattern); run under -race it proves the locking, and
// the total fire count must still be exact.
func TestConcurrentFire(t *testing.T) {
	in := New(1)
	in.FailEveryNth(Measure, 5, Transient(errors.New("flaky")))
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if in.Fire(Measure) != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if want := goroutines * per / 5; fired != want {
		t.Fatalf("fired %d of %d calls, want %d", fired, goroutines*per, want)
	}
}
