// Package faults is a deterministic, seedable fault injector for the
// tuning stack. Production code calls Fire/Stall at named injection points;
// with no injector armed (the nil receiver) those calls are no-ops, so the
// injector ships in the normal build with zero behavioural footprint and no
// build tags. Tests arm rules — fail every nth call, fail with a
// probability, panic, or stall the simulated clock — to exercise every
// recovery path (retry, panic isolation, crash-safe persistence) without
// real hardware faults.
//
// Determinism: probability rules draw from a splitmix64 stream seeded at
// construction, and nth-call rules count calls under a mutex, so a given
// seed and call sequence always fires the same faults. Under a concurrent
// worker pool the global call order (and therefore which worker observes a
// given fault) is scheduling-dependent, but the recovery layers above are
// required to converge to the same result regardless — that is exactly what
// the injector exists to prove.
package faults

import (
	"errors"
	"fmt"
	"sync"
)

// Injection point names. Each names the call site that consults the
// injector, not the consumer that recovers.
const (
	// DMATransfer fires in sw26010.Machine.IssueDMA: the transfer is
	// rejected with the armed error (a dropped/failed DMA descriptor).
	DMATransfer = "sw26010.dma-transfer"
	// ComputeStall fires in sw26010.Machine.AdvanceCompute: the compute
	// clock silently loses the armed number of seconds (an OS jitter /
	// contention stall perturbing a measurement).
	ComputeStall = "sw26010.compute-stall"
	// Measure fires at the top of exec.Run: the whole measurement is
	// rejected with the armed error before the simulated machine starts.
	Measure = "exec.measure"
	// CacheCommit fires in cache.Library.Save between writing the temp
	// file and renaming it over the library — the crash window atomic
	// persistence must protect.
	CacheCommit = "cache.commit"
)

// ErrTransient marks injected (or real) errors that a retry may cure.
// Recovery layers test with errors.Is(err, ErrTransient); wrapping with
// Transient preserves the mark through fmt.Errorf("...: %w", err) chains.
var ErrTransient = errors.New("transient fault")

type transientError struct{ err error }

func (e transientError) Error() string { return e.err.Error() }
func (e transientError) Unwrap() error { return e.err }
func (e transientError) Is(target error) bool {
	return target == ErrTransient
}

// Transient marks an error as retryable: errors.Is(Transient(err),
// ErrTransient) holds, and Unwrap still reaches err.
func Transient(err error) error { return transientError{err: err} }

// IsTransient reports whether any error in err's chain carries the
// transient mark.
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// rule is the armed behaviour of one injection point. Exactly one trigger
// (nth or prob) and one effect (err, panicMsg or stallSeconds) is set.
type rule struct {
	nth          uint64  // fire when callCount % nth == 0 (1-based)
	prob         float64 // fire when the next random draw < prob
	err          error
	panicMsg     string
	stallSeconds float64
}

// Injector holds armed rules and per-point call/fire counters. The zero
// value is not usable; construct with New. All methods are safe for
// concurrent use and are no-ops on a nil receiver.
type Injector struct {
	mu    sync.Mutex
	rng   uint64
	rules map[string]*rule
	calls map[string]uint64
	fired map[string]uint64
}

// New creates an injector with no armed rules. seed fixes the random
// stream of probability-triggered rules.
func New(seed uint64) *Injector {
	return &Injector{
		rng:   seed,
		rules: map[string]*rule{},
		calls: map[string]uint64{},
		fired: map[string]uint64{},
	}
}

// next is splitmix64: a tiny, deterministic, well-distributed generator —
// math/rand's global state would leak nondeterminism between tests.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FailEveryNth arms point to return err on every nth call (n >= 1; n == 1
// fails every call).
func (in *Injector) FailEveryNth(point string, n uint64, err error) {
	in.arm(point, &rule{nth: n, err: err})
}

// FailWithProbability arms point to return err on each call independently
// with probability p.
func (in *Injector) FailWithProbability(point string, p float64, err error) {
	in.arm(point, &rule{prob: p, err: err})
}

// PanicEveryNth arms point to panic with msg on every nth call — the
// hammer for testing panic isolation in code that cannot return an error.
func (in *Injector) PanicEveryNth(point string, n uint64, msg string) {
	in.arm(point, &rule{nth: n, panicMsg: msg})
}

// StallEveryNth arms point to stall for the given simulated seconds on
// every nth call; consumed by Stall, ignored by Fire.
func (in *Injector) StallEveryNth(point string, n uint64, seconds float64) {
	in.arm(point, &rule{nth: n, stallSeconds: seconds})
}

// Disarm removes the rule at point; calls keep being counted.
func (in *Injector) Disarm(point string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, point)
}

func (in *Injector) arm(point string, r *rule) {
	if in == nil {
		return
	}
	if r.nth == 0 && r.prob == 0 {
		panic(fmt.Sprintf("faults: rule for %q has no trigger", point))
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[point] = r
	in.calls[point] = 0
	in.fired[point] = 0
}

// trigger counts one call at point and reports the armed rule when it
// fires.
func (in *Injector) trigger(point string) *rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls[point]++
	r, ok := in.rules[point]
	if !ok {
		return nil
	}
	hit := false
	switch {
	case r.nth > 0:
		hit = in.calls[point]%r.nth == 0
	case r.prob > 0:
		hit = float64(in.next()%(1<<53))/(1<<53) < r.prob
	}
	if !hit {
		return nil
	}
	in.fired[point]++
	return r
}

// Fire consults the injector at an error-returning injection point: it
// returns the armed error (or panics, for a panic rule) when the rule
// fires, nil otherwise. Safe on a nil receiver.
func (in *Injector) Fire(point string) error {
	if in == nil {
		return nil
	}
	r := in.trigger(point)
	if r == nil {
		return nil
	}
	if r.panicMsg != "" {
		panic(r.panicMsg)
	}
	return r.err
}

// Stall consults the injector at a time-perturbing injection point and
// returns the simulated seconds to lose (0 when the rule does not fire or
// is not a stall rule). Safe on a nil receiver.
func (in *Injector) Stall(point string) float64 {
	if in == nil {
		return 0
	}
	r := in.trigger(point)
	if r == nil {
		return 0
	}
	return r.stallSeconds
}

// Calls returns how many times point has been consulted.
func (in *Injector) Calls(point string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[point]
}

// Fired returns how many times point's rule has fired.
func (in *Injector) Fired(point string) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}
