package graph

import (
	"fmt"

	"swatop/internal/workloads"
)

// Chain builds a sequential network from a convolution backbone plus an
// optional fully-connected tail — the structure of all three evaluation
// networks once their per-layer shapes are read off workloads tables.
// Between consecutive convolutions it infers the glue real networks carry:
// a ReLU after every conv, a 2×2 max-pool whenever the spatial resolution
// halves, and a zero-pad re-materialization before every conv with a
// kernel wider than 1×1 (the operators consume pre-padded inputs). A
// fully-connected tail gets a final pool (when the feature counts imply
// one), a flatten, and ReLUs between — but not after — the GEMM layers.
func Chain(name string, batch int, convs []workloads.ConvLayer, fcs []workloads.FCLayer) (*Graph, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("graph %s: non-positive batch %d", name, batch)
	}
	if len(convs) == 0 {
		return nil, fmt.Errorf("graph %s: no convolution layers", name)
	}
	g := New(name, batch)

	first := convs[0].Shape(batch)
	if _, err := g.AddTensor("input", []int{first.Ni, first.Ri(), first.Ci(), first.B}, false); err != nil {
		return nil, err
	}
	g.Input = "input"

	cur := "input"   // current tensor, already padded for the upcoming conv
	curC := first.Ni // channels of the live (unpadded) feature map
	curR := 0        // spatial extent of the live feature map (0 before conv1)

	for i, l := range convs {
		s := l.Shape(batch)
		if i > 0 {
			if s.Ni != curC {
				return nil, fmt.Errorf("graph %s: %s wants %d input channels, %s provides %d",
					name, l.Name, s.Ni, convs[i-1].Name, curC)
			}
			switch {
			case s.Ro == curR:
				// same resolution: pad below handles the border
			case s.Ro*2 == curR:
				pooled := fmt.Sprintf("%s_pool", l.Name)
				if _, err := g.AddTensor(pooled, []int{curC, s.Ro, s.Ro, batch}, false); err != nil {
					return nil, err
				}
				if err := g.AddNode(&Node{
					Name: "pool_" + l.Name, Kind: MaxPool, In: []string{cur}, Out: pooled,
				}); err != nil {
					return nil, err
				}
				cur, curR = pooled, s.Ro
			default:
				return nil, fmt.Errorf("graph %s: cannot chain %s (R=%d) after R=%d: only same-resolution and 2×2-pool transitions exist",
					name, l.Name, s.Ro, curR)
			}
			if s.Kr > 1 || s.Kc > 1 {
				padded := fmt.Sprintf("%s_in", l.Name)
				if _, err := g.AddTensor(padded, []int{s.Ni, s.Ri(), s.Ci(), batch}, false); err != nil {
					return nil, err
				}
				if err := g.AddNode(&Node{
					Name: "pad_" + l.Name, Kind: Pad, In: []string{cur}, Out: padded,
					KR: (s.Kr - 1) / 2, KC: (s.Kc - 1) / 2,
				}); err != nil {
					return nil, err
				}
				cur = padded
			}
		}
		weight := fmt.Sprintf("w_%s", l.Name)
		if _, err := g.AddTensor(weight, []int{s.No, s.Ni, s.Kr, s.Kc}, true); err != nil {
			return nil, err
		}
		out := fmt.Sprintf("%s_out", l.Name)
		if _, err := g.AddTensor(out, []int{s.No, s.Ro, s.Co, batch}, false); err != nil {
			return nil, err
		}
		if err := g.AddNode(&Node{
			Name: l.Name, Kind: Conv, In: []string{cur, weight}, Out: out, Conv: s,
		}); err != nil {
			return nil, err
		}
		act := fmt.Sprintf("%s_relu", l.Name)
		if _, err := g.AddTensor(act, []int{s.No, s.Ro, s.Co, batch}, false); err != nil {
			return nil, err
		}
		if err := g.AddNode(&Node{
			Name: "relu_" + l.Name, Kind: ReLU, In: []string{out}, Out: act,
		}); err != nil {
			return nil, err
		}
		cur, curC, curR = act, s.No, s.Ro
	}
	g.Output = cur
	if len(fcs) == 0 {
		return g, g.Validate()
	}

	// Fully-connected tail: the first fc layer's feature count tells us
	// whether a final pooling stage sits between the last conv and the
	// flatten (VGG16's pool5 does).
	switch fcs[0].In {
	case curC * curR * curR:
		// flatten directly
	case curC * (curR / 2) * (curR / 2):
		pooled := "pool_final"
		if _, err := g.AddTensor(pooled, []int{curC, curR / 2, curR / 2, batch}, false); err != nil {
			return nil, err
		}
		if err := g.AddNode(&Node{Name: pooled, Kind: MaxPool, In: []string{cur}, Out: pooled}); err != nil {
			return nil, err
		}
		cur, curR = pooled, curR/2
	default:
		return nil, fmt.Errorf("graph %s: %s wants %d features, conv tail leaves %d×%d×%d",
			name, fcs[0].Name, fcs[0].In, curC, curR, curR)
	}
	flat := "flatten"
	if _, err := g.AddTensor(flat, []int{curC * curR * curR, batch}, false); err != nil {
		return nil, err
	}
	if err := g.AddNode(&Node{Name: flat, Kind: Flatten, In: []string{cur}, Out: flat}); err != nil {
		return nil, err
	}
	cur = flat
	for i, fc := range fcs {
		if i > 0 && fc.In != fcs[i-1].Out {
			return nil, fmt.Errorf("graph %s: %s.In = %d does not chain from %s.Out = %d",
				name, fc.Name, fc.In, fcs[i-1].Name, fcs[i-1].Out)
		}
		p := fc.Params(batch)
		weight := fmt.Sprintf("w_%s", fc.Name)
		if _, err := g.AddTensor(weight, []int{p.M, p.K}, true); err != nil {
			return nil, err
		}
		out := fmt.Sprintf("%s_out", fc.Name)
		if _, err := g.AddTensor(out, []int{p.M, p.N}, false); err != nil {
			return nil, err
		}
		if err := g.AddNode(&Node{
			Name: fc.Name, Kind: Gemm, In: []string{cur, weight}, Out: out, Gemm: p,
		}); err != nil {
			return nil, err
		}
		cur = out
		if i < len(fcs)-1 {
			act := fmt.Sprintf("%s_relu", fc.Name)
			if _, err := g.AddTensor(act, []int{p.M, p.N}, false); err != nil {
				return nil, err
			}
			if err := g.AddNode(&Node{Name: "relu_" + fc.Name, Kind: ReLU, In: []string{cur}, Out: act}); err != nil {
				return nil, err
			}
			cur = act
		}
	}
	g.Output = cur
	return g, g.Validate()
}

// VGG16 builds the full VGG16 inference graph: 13 convolutions, 5 pooling
// stages and the 3 fully-connected layers down to the ImageNet logits.
func VGG16(batch int) (*Graph, error) {
	return Chain("vgg16", batch, workloads.VGG16(), workloads.VGG16FC())
}

// ResNet builds the sequential backbone over ResNet-50's distinct
// bottleneck convolution shapes (the stride-1 equivalents the workloads
// table records; the skip connections fold away at equal shapes).
func ResNet(batch int) (*Graph, error) {
	return Chain("resnet", batch, workloads.ResNet(), nil)
}

// Yolo builds the YOLOv1 backbone graph.
func Yolo(batch int) (*Graph, error) {
	return Chain("yolo", batch, workloads.Yolo(), nil)
}

// ByName builds one of the three evaluation networks by name.
func ByName(net string, batch int) (*Graph, error) {
	switch net {
	case "vgg16":
		return VGG16(batch)
	case "resnet":
		return ResNet(batch)
	case "yolo":
		return Yolo(batch)
	default:
		return nil, fmt.Errorf("graph: unknown network %q (want vgg16, resnet or yolo)", net)
	}
}
