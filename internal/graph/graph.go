// Package graph defines the network intermediate representation of the
// inference runtime: a dataflow graph of typed operator nodes (convolution,
// GEMM/fully-connected, and the elementwise/data-movement stubs between
// them) over named tensors. It is deliberately small — just enough to
// compose the repo's tuned operators into the whole networks the paper
// integrates into swCaffe (VGG16, ResNet, YOLO) — but shape-checked and
// deterministically ordered, so the inference engine can plan memory and
// replay timelines reproducibly.
package graph

import (
	"fmt"

	"swatop/internal/gemm"
	"swatop/internal/tensor"
)

// Kind is the operator type of a node.
type Kind string

// Node kinds. Conv and Gemm are the tuned operators; the rest are the thin
// glue layers real networks interleave between them. Pad re-materializes a
// feature map with the zero border the stride-1 pre-padded convolutions
// expect; Flatten reshapes the last feature map into the fully-connected
// input matrix.
const (
	Conv    Kind = "conv"
	Gemm    Kind = "gemm"
	ReLU    Kind = "relu"
	MaxPool Kind = "maxpool" // 2×2, stride 2
	Pad     Kind = "pad"
	Flatten Kind = "flatten"
)

// Tensor is a named main-memory tensor of the network.
type Tensor struct {
	Name string
	Dims []int
	// Param marks model parameters (conv filters, fc weight matrices):
	// they live for the whole network and are never placed into the
	// activation arenas the engine ping-pongs between layers.
	Param bool
}

// Bytes is the float32 storage footprint.
func (t *Tensor) Bytes() int64 {
	n := int64(4)
	for _, d := range t.Dims {
		n *= int64(d)
	}
	return n
}

// Node is one operator instance. In reads tensors in operator-defined
// order (conv: data then filter; gemm: input matrix then weight matrix);
// Out is the single produced tensor.
type Node struct {
	Name string
	Kind Kind
	In   []string
	Out  string

	// Conv is the geometry of a Conv node.
	Conv tensor.ConvShape
	// Gemm is the problem size of a Gemm node.
	Gemm gemm.Params
	// KR/KC are the pad widths of a Pad node per side: (K-1)/2 rows and
	// columns of zeros around the feature map.
	KR, KC int
}

// Graph is a network: nodes over named tensors, one designated input and
// output tensor. Nodes are stored in insertion order, which doubles as the
// deterministic topological order (AddNode enforces that every read tensor
// is already produced, so insertion order is always topological).
type Graph struct {
	Name  string
	Batch int

	nodes   []*Node
	tensors map[string]*Tensor
	// producer maps a tensor to the node that writes it ("" = graph input
	// or parameter).
	producer map[string]string
	// consumers counts readers per tensor, for the engine's reuse planner.
	consumers map[string]int

	Input  string
	Output string
}

// New creates an empty graph for one batch size.
func New(name string, batch int) *Graph {
	return &Graph{
		Name:      name,
		Batch:     batch,
		tensors:   map[string]*Tensor{},
		producer:  map[string]string{},
		consumers: map[string]int{},
	}
}

// AddTensor declares a named tensor; duplicate names and non-positive
// extents are errors.
func (g *Graph) AddTensor(name string, dims []int, param bool) (*Tensor, error) {
	if name == "" {
		return nil, fmt.Errorf("graph %s: tensor with empty name", g.Name)
	}
	if _, dup := g.tensors[name]; dup {
		return nil, fmt.Errorf("graph %s: tensor %q declared twice", g.Name, name)
	}
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("graph %s: tensor %q has non-positive dim in %v", g.Name, name, dims)
		}
	}
	t := &Tensor{Name: name, Dims: append([]int(nil), dims...), Param: param}
	g.tensors[name] = t
	return t, nil
}

// AddNode appends a node. Every input tensor must already exist and —
// unless it is a parameter or the graph input — already have a producer;
// the output tensor must exist and be unproduced. This makes insertion
// order a topological order by construction and rejects cycles outright.
func (g *Graph) AddNode(n *Node) error {
	if n.Name == "" {
		return fmt.Errorf("graph %s: node with empty name", g.Name)
	}
	for _, o := range g.nodes {
		if o.Name == n.Name {
			return fmt.Errorf("graph %s: node %q declared twice", g.Name, n.Name)
		}
	}
	for _, in := range n.In {
		t, ok := g.tensors[in]
		if !ok {
			return fmt.Errorf("graph %s: node %s reads undeclared tensor %q", g.Name, n.Name, in)
		}
		if !t.Param && in != g.Input && g.producer[in] == "" {
			return fmt.Errorf("graph %s: node %s reads %q before any node produces it", g.Name, n.Name, in)
		}
	}
	if _, ok := g.tensors[n.Out]; !ok {
		return fmt.Errorf("graph %s: node %s writes undeclared tensor %q", g.Name, n.Name, n.Out)
	}
	if p := g.producer[n.Out]; p != "" {
		return fmt.Errorf("graph %s: tensor %q produced by both %s and %s", g.Name, n.Out, p, n.Name)
	}
	if n.Out == g.Input {
		return fmt.Errorf("graph %s: node %s writes the graph input %q", g.Name, n.Name, n.Out)
	}
	for _, in := range n.In {
		g.consumers[in]++
	}
	g.producer[n.Out] = n.Name
	g.nodes = append(g.nodes, n)
	return nil
}

// Tensor looks up a declared tensor.
func (g *Graph) Tensor(name string) (*Tensor, bool) {
	t, ok := g.tensors[name]
	return t, ok
}

// Tensors lists all declared tensors in a deterministic order: graph input
// first, then node outputs in node order, then parameters in first-use
// order.
func (g *Graph) Tensors() []*Tensor {
	var out []*Tensor
	seen := map[string]bool{}
	add := func(name string) {
		if t, ok := g.tensors[name]; ok && !seen[name] {
			seen[name] = true
			out = append(out, t)
		}
	}
	add(g.Input)
	for _, n := range g.nodes {
		add(n.Out)
	}
	for _, n := range g.nodes {
		for _, in := range n.In {
			add(in)
		}
	}
	return out
}

// Consumers reports how many nodes read a tensor.
func (g *Graph) Consumers(name string) int { return g.consumers[name] }

// Producer returns the name of the node writing a tensor ("" for the graph
// input and parameters).
func (g *Graph) Producer(name string) string { return g.producer[name] }

// Topo returns the nodes in the deterministic topological order: insertion
// order, which AddNode guarantees is topological. The slice is fresh; the
// nodes are shared.
func (g *Graph) Topo() []*Node {
	return append([]*Node(nil), g.nodes...)
}

// NumNodes reports the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// CountKind reports how many nodes have the given kind.
func (g *Graph) CountKind(k Kind) int {
	n := 0
	for _, node := range g.nodes {
		if node.Kind == k {
			n++
		}
	}
	return n
}

// FLOPs sums the floating-point work of the tuned operators (conv + gemm);
// the glue stubs move data but do no MACs.
func (g *Graph) FLOPs() int64 {
	var total int64
	for _, n := range g.nodes {
		switch n.Kind {
		case Conv:
			total += n.Conv.FLOPs()
		case Gemm:
			total += n.Gemm.FLOPs()
		}
	}
	return total
}

// Validate shape-checks every node against its tensors: conv geometry
// against the pre-padded input layout, gemm against the [K×N] input and
// [M×N] output matrices, and the stubs against their elementwise or
// resampling contracts. It also checks the designated input/output exist
// and the output is produced.
func (g *Graph) Validate() error {
	if g.Input == "" || g.tensors[g.Input] == nil {
		return fmt.Errorf("graph %s: no input tensor", g.Name)
	}
	if g.Output == "" || g.tensors[g.Output] == nil {
		return fmt.Errorf("graph %s: no output tensor", g.Name)
	}
	if g.producer[g.Output] == "" {
		return fmt.Errorf("graph %s: output %q is never produced", g.Name, g.Output)
	}
	for _, n := range g.nodes {
		if err := g.checkNode(n); err != nil {
			return fmt.Errorf("graph %s: node %s: %w", g.Name, n.Name, err)
		}
	}
	return nil
}

func (g *Graph) checkNode(n *Node) error {
	dims := func(name string) []int { return g.tensors[name].Dims }
	eq := func(got []int, want ...int) bool {
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	switch n.Kind {
	case Conv:
		s := n.Conv
		if err := s.Validate(); err != nil {
			return err
		}
		if len(n.In) != 2 {
			return fmt.Errorf("conv wants 2 inputs (data, filter), has %d", len(n.In))
		}
		if got := dims(n.In[0]); !eq(got, s.Ni, s.Ri(), s.Ci(), s.B) {
			return fmt.Errorf("input %s dims %v, want pre-padded (%d,%d,%d,%d)", n.In[0], got, s.Ni, s.Ri(), s.Ci(), s.B)
		}
		if got := dims(n.In[1]); !eq(got, s.No, s.Ni, s.Kr, s.Kc) {
			return fmt.Errorf("filter %s dims %v, want (%d,%d,%d,%d)", n.In[1], got, s.No, s.Ni, s.Kr, s.Kc)
		}
		if got := dims(n.Out); !eq(got, s.No, s.Ro, s.Co, s.B) {
			return fmt.Errorf("output %s dims %v, want (%d,%d,%d,%d)", n.Out, got, s.No, s.Ro, s.Co, s.B)
		}
	case Gemm:
		p := n.Gemm
		if err := p.Validate(); err != nil {
			return err
		}
		if len(n.In) != 2 {
			return fmt.Errorf("gemm wants 2 inputs (matrix, weight), has %d", len(n.In))
		}
		if got := dims(n.In[0]); !eq(got, p.K, p.N) {
			return fmt.Errorf("input %s dims %v, want (%d,%d)", n.In[0], got, p.K, p.N)
		}
		if got := dims(n.In[1]); !eq(got, p.M, p.K) {
			return fmt.Errorf("weight %s dims %v, want (%d,%d)", n.In[1], got, p.M, p.K)
		}
		if got := dims(n.Out); !eq(got, p.M, p.N) {
			return fmt.Errorf("output %s dims %v, want (%d,%d)", n.Out, got, p.M, p.N)
		}
	case ReLU:
		if len(n.In) != 1 {
			return fmt.Errorf("relu wants 1 input, has %d", len(n.In))
		}
		if !eq(dims(n.In[0]), dims(n.Out)...) {
			return fmt.Errorf("relu %v -> %v is not elementwise", dims(n.In[0]), dims(n.Out))
		}
	case MaxPool:
		if len(n.In) != 1 {
			return fmt.Errorf("maxpool wants 1 input, has %d", len(n.In))
		}
		in, out := dims(n.In[0]), dims(n.Out)
		if len(in) != 4 || len(out) != 4 ||
			in[0] != out[0] || in[3] != out[3] ||
			out[1]*2 != in[1] || out[2]*2 != in[2] {
			return fmt.Errorf("maxpool %v -> %v is not a 2×2/2 downsample", in, out)
		}
	case Pad:
		if len(n.In) != 1 {
			return fmt.Errorf("pad wants 1 input, has %d", len(n.In))
		}
		if n.KR < 0 || n.KC < 0 {
			return fmt.Errorf("negative pad (%d,%d)", n.KR, n.KC)
		}
		in, out := dims(n.In[0]), dims(n.Out)
		if len(in) != 4 || len(out) != 4 ||
			in[0] != out[0] || in[3] != out[3] ||
			out[1] != in[1]+2*n.KR || out[2] != in[2]+2*n.KC {
			return fmt.Errorf("pad(%d,%d) %v -> %v inconsistent", n.KR, n.KC, in, out)
		}
	case Flatten:
		if len(n.In) != 1 {
			return fmt.Errorf("flatten wants 1 input, has %d", len(n.In))
		}
		in, out := dims(n.In[0]), dims(n.Out)
		if len(in) != 4 || len(out) != 2 ||
			out[0] != in[0]*in[1]*in[2] || out[1] != in[3] {
			return fmt.Errorf("flatten %v -> %v inconsistent", in, out)
		}
	default:
		return fmt.Errorf("unknown kind %q", n.Kind)
	}
	return nil
}
