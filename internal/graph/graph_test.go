package graph

import (
	"reflect"
	"testing"

	"swatop/internal/workloads"
)

func TestVGG16GraphStructure(t *testing.T) {
	g, err := VGG16(4)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.CountKind(Conv); got != 13 {
		t.Fatalf("%d conv nodes, want 13", got)
	}
	if got := g.CountKind(Gemm); got != 3 {
		t.Fatalf("%d gemm nodes, want 3", got)
	}
	if got := g.CountKind(MaxPool); got != 5 {
		t.Fatalf("%d pool stages, want 5", got)
	}
	// Every conv except conv1_1 consumes a freshly padded tensor.
	if got := g.CountKind(Pad); got != 12 {
		t.Fatalf("%d pad nodes, want 12", got)
	}
	// ReLU after all 13 convs and after fc6/fc7 (not fc8).
	if got := g.CountKind(ReLU); got != 15 {
		t.Fatalf("%d relu nodes, want 15", got)
	}
	if g.CountKind(Flatten) != 1 {
		t.Fatal("want exactly one flatten")
	}
	out, ok := g.Tensor(g.Output)
	if !ok || !reflect.DeepEqual(out.Dims, []int{1000, 4}) {
		t.Fatalf("output tensor %v, want the (1000, batch) logits", out)
	}
	in, _ := g.Tensor(g.Input)
	if !reflect.DeepEqual(in.Dims, []int{3, 226, 226, 4}) {
		t.Fatalf("input tensor %v, want pre-padded (3,226,226,4)", in.Dims)
	}
	// FLOPs must cover conv and fc work.
	var want int64
	for _, l := range workloads.VGG16() {
		want += l.Shape(4).FLOPs()
	}
	for _, fc := range workloads.VGG16FC() {
		want += fc.Params(4).FLOPs()
	}
	if got := g.FLOPs(); got != want {
		t.Fatalf("FLOPs = %d, want %d", got, want)
	}
}

func TestAllNetworksBuildAndValidate(t *testing.T) {
	for _, net := range []string{"vgg16", "resnet", "yolo"} {
		for _, batch := range []int{1, 32} {
			g, err := ByName(net, batch)
			if err != nil {
				t.Fatalf("%s batch %d: %v", net, batch, err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s batch %d: %v", net, batch, err)
			}
			if got := g.CountKind(Conv); got != 13 {
				t.Fatalf("%s: %d conv layers, want 13", net, got)
			}
		}
	}
	if _, err := ByName("alexnet", 1); err == nil {
		t.Fatal("unknown network must error")
	}
	if _, err := ByName("vgg16", 0); err == nil {
		t.Fatal("non-positive batch must error")
	}
}

// TestTopoDeterministic: two builds of the same network must yield the
// identical node order, and every node's inputs must be produced before it
// (the invariant AddNode enforces).
func TestTopoDeterministic(t *testing.T) {
	a, err := VGG16(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := VGG16(1)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := a.Topo(), b.Topo()
	if len(ta) != len(tb) {
		t.Fatalf("node counts differ: %d vs %d", len(ta), len(tb))
	}
	produced := map[string]bool{a.Input: true}
	for i, n := range ta {
		if n.Name != tb[i].Name {
			t.Fatalf("order diverges at %d: %s vs %s", i, n.Name, tb[i].Name)
		}
		for _, in := range n.In {
			tt, _ := a.Tensor(in)
			if !tt.Param && !produced[in] {
				t.Fatalf("node %s reads %q before it is produced", n.Name, in)
			}
		}
		produced[n.Out] = true
	}
}

func TestChainRejectsBrokenBackbones(t *testing.T) {
	mk := func(layers ...workloads.ConvLayer) error {
		_, err := Chain("bad", 1, layers, nil)
		return err
	}
	// Channel mismatch.
	if err := mk(
		workloads.ConvLayer{Net: "bad", Name: "c1", Ni: 3, No: 16, R: 8, K: 3},
		workloads.ConvLayer{Net: "bad", Name: "c2", Ni: 32, No: 16, R: 8, K: 3},
	); err == nil {
		t.Fatal("channel mismatch must not chain")
	}
	// Impossible resolution jump.
	if err := mk(
		workloads.ConvLayer{Net: "bad", Name: "c1", Ni: 3, No: 16, R: 9, K: 3},
		workloads.ConvLayer{Net: "bad", Name: "c2", Ni: 16, No: 16, R: 5, K: 3},
	); err == nil {
		t.Fatal("non-pool resolution change must not chain")
	}
	// FC feature count off.
	if _, err := Chain("bad", 1,
		[]workloads.ConvLayer{{Net: "bad", Name: "c1", Ni: 3, No: 16, R: 8, K: 3}},
		[]workloads.FCLayer{{Net: "bad", Name: "fc", In: 999, Out: 10}},
	); err == nil {
		t.Fatal("fc feature mismatch must not chain")
	}
}

func TestAddNodeRejectsMalformedGraphs(t *testing.T) {
	g := New("t", 1)
	if _, err := g.AddTensor("x", []int{4, 4}, false); err != nil {
		t.Fatal(err)
	}
	g.Input = "x"
	if _, err := g.AddTensor("x", []int{4, 4}, false); err == nil {
		t.Fatal("duplicate tensor must error")
	}
	if _, err := g.AddTensor("neg", []int{0}, false); err == nil {
		t.Fatal("non-positive dim must error")
	}
	if err := g.AddNode(&Node{Name: "r", Kind: ReLU, In: []string{"ghost"}, Out: "x"}); err == nil {
		t.Fatal("undeclared input must error")
	}
	if _, err := g.AddTensor("y", []int{4, 4}, false); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&Node{Name: "r", Kind: ReLU, In: []string{"y"}, Out: "x"}); err == nil {
		t.Fatal("reading an unproduced activation must error (cycle guard)")
	}
	if err := g.AddNode(&Node{Name: "r", Kind: ReLU, In: []string{"x"}, Out: "y"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&Node{Name: "r2", Kind: ReLU, In: []string{"x"}, Out: "y"}); err == nil {
		t.Fatal("double-producing a tensor must error")
	}
	if err := g.AddNode(&Node{Name: "r", Kind: ReLU, In: []string{"y"}, Out: "y"}); err == nil {
		t.Fatal("duplicate node name must error")
	}
	g.Output = "y"
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Consumers("x") != 1 || g.Producer("y") != "r" {
		t.Fatalf("bookkeeping wrong: consumers(x)=%d producer(y)=%q", g.Consumers("x"), g.Producer("y"))
	}
}

func TestValidateCatchesShapeLies(t *testing.T) {
	g := New("t", 2)
	if _, err := g.AddTensor("in", []int{8, 10, 10, 2}, false); err != nil {
		t.Fatal(err)
	}
	g.Input = "in"
	if _, err := g.AddTensor("w", []int{16, 8, 3, 3}, true); err != nil {
		t.Fatal(err)
	}
	// Output dims lie about No.
	if _, err := g.AddTensor("out", []int{99, 8, 8, 2}, false); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode(&Node{
		Name: "c", Kind: Conv, In: []string{"in", "w"}, Out: "out",
		Conv: workloads.ConvLayer{Ni: 8, No: 16, R: 8, K: 3}.Shape(2),
	}); err != nil {
		t.Fatal(err)
	}
	g.Output = "out"
	if err := g.Validate(); err == nil {
		t.Fatal("shape mismatch must fail validation")
	}
}
