// Package bench defines the performance-trajectory snapshot format:
// a small JSON document recording, for a fixed set of canonical
// workloads, the simulated machine seconds, the tuning effort spent
// reaching them, and the achieved GFLOPS. Snapshots written by
// `swbench -bench-out` at one commit are compared by
// `swbench -bench-against` at a later one, turning "did this PR make
// the generated schedules worse?" into an exit code.
//
// Machine seconds are fully deterministic (the simulator is analytic
// and tuning is worker-count independent), so the comparison tolerance
// exists only to absorb intentional search-space changes, not noise.
// Wall seconds and candidate counts are recorded for context and never
// gate the comparison.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// SchemaVersion is bumped when the snapshot layout changes
// incompatibly; Load rejects snapshots from a different schema.
const SchemaVersion = 1

// DefaultTolerancePct is the allowed machine-seconds regression before
// Compare flags a workload. Deterministic numbers would justify 0, but
// a small band keeps intentional heuristic tweaks from tripping the
// gate on rounding-level shifts.
const DefaultTolerancePct = 1.0

// Workload is one canonical benchmark point.
type Workload struct {
	Name string `json:"name"`
	// MachineSeconds is the simulated execution time of the tuned
	// result — the number the comparison gates on.
	MachineSeconds float64 `json:"machine_seconds"`
	// WallSeconds is host time spent producing it (tuning + search);
	// informational only, it varies with the machine running the tool.
	WallSeconds float64 `json:"wall_seconds"`
	// Candidates is the number of schedule candidates measured.
	Candidates int64 `json:"candidates"`
	// GFLOPS is the achieved simulated throughput.
	GFLOPS float64 `json:"gflops"`
	// InferencesPerSec is the end-to-end inference throughput of network
	// workloads (batch over machine seconds) — the scale-out headline
	// number. Zero for kernel workloads. Informational like GFLOPS: the
	// gate compares machine seconds, which for a fixed batch is the same
	// quantity inverted.
	InferencesPerSec float64 `json:"inferences_per_sec,omitempty"`
	// P99Ms is the 99th-percentile request latency of serving workloads
	// (wall milliseconds under the canonical load-test). Informational
	// only: it depends on the host machine, so like WallSeconds it never
	// gates the comparison — the serving row's machine seconds (the
	// warmed bucket's simulated batch time) carry the gate.
	P99Ms float64 `json:"p99_ms,omitempty"`
	// SpacePoints is the total size of the schedule spaces walked, when
	// recorded; with Candidates it makes budgeted-search rows legible
	// (candidates/space = coverage). Zero on rows from exhaustive runs
	// predating the field.
	SpacePoints int64 `json:"space_points,omitempty"`
	// CoveragePct is 100*Candidates/SpacePoints, recorded for budgeted
	// search rows. Informational: machine seconds carry the gate.
	CoveragePct float64 `json:"coverage_pct,omitempty"`
	// Phases attributes the serving row's p99 latency across the request
	// lifecycle (queue wait, batch formation, execution, inter-group
	// communication), in wall milliseconds from the canonical load-test.
	// Informational like P99Ms — host-dependent, never gated.
	Phases *PhaseAttribution `json:"phases,omitempty"`
	// ExecSeconds and CommSeconds split the deterministic machine seconds
	// into layer execution vs cross-group communication; bench-diff uses
	// them to name the phase a regression lives in. Zero on rows from
	// snapshots predating the fields (diff falls back to total - comm).
	ExecSeconds float64 `json:"exec_seconds,omitempty"`
	CommSeconds float64 `json:"comm_seconds,omitempty"`
	// Layers records each layer's machine seconds and chosen schedule so
	// bench-diff can attribute a workload regression to the exact layer
	// and to a schedule change on it. Absent on kernel-only snapshots
	// predating the field.
	Layers []LayerCost `json:"layers,omitempty"`
}

// PhaseAttribution is the per-phase p99 breakdown of a serving workload.
type PhaseAttribution struct {
	QueueP99Ms float64 `json:"queue_p99_ms"`
	BatchP99Ms float64 `json:"batch_p99_ms"`
	ExecP99Ms  float64 `json:"exec_p99_ms"`
	CommP99Ms  float64 `json:"comm_p99_ms"`
}

// Snapshot is the full document written by -bench-out.
type Snapshot struct {
	Schema    int        `json:"schema"`
	Name      string     `json:"name"`
	GoVersion string     `json:"go_version"`
	CreatedAt string     `json:"created_at,omitempty"`
	Workloads []Workload `json:"workloads"`
}

// Lookup returns the named workload, or nil.
func (s *Snapshot) Lookup(name string) *Workload {
	for i := range s.Workloads {
		if s.Workloads[i].Name == name {
			return &s.Workloads[i]
		}
	}
	return nil
}

// WriteFile writes the snapshot as indented JSON.
func (s *Snapshot) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write bench snapshot: %w", err)
	}
	return nil
}

// Load reads and validates a snapshot file.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("load bench snapshot: %w", err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("load bench snapshot %s: %w", path, err)
	}
	if s.Schema != SchemaVersion {
		return nil, fmt.Errorf("load bench snapshot %s: schema %d, want %d", path, s.Schema, SchemaVersion)
	}
	if len(s.Workloads) == 0 {
		return nil, fmt.Errorf("load bench snapshot %s: no workloads", path)
	}
	return &s, nil
}

// Delta is the comparison result for one workload present in the
// baseline.
type Delta struct {
	Name        string
	BaseSeconds float64
	CurSeconds  float64
	// DeltaPct is (cur-base)/base*100: positive means slower.
	DeltaPct float64
	// Missing marks baseline workloads the current run did not produce
	// — treated as a regression (the gate must not silently shrink).
	Missing   bool
	Regressed bool
}

// Diff is the full comparison of a current snapshot against a baseline.
type Diff struct {
	TolerancePct float64
	Deltas       []Delta
}

// Compare checks every baseline workload against the current snapshot.
// Workloads only present in the current snapshot are ignored: adding
// coverage is never a regression.
func Compare(cur, base *Snapshot, tolerancePct float64) *Diff {
	d := &Diff{TolerancePct: tolerancePct}
	for _, bw := range base.Workloads {
		delta := Delta{Name: bw.Name, BaseSeconds: bw.MachineSeconds}
		cw := cur.Lookup(bw.Name)
		switch {
		case cw == nil:
			delta.Missing = true
			delta.Regressed = true
		case bw.MachineSeconds <= 0:
			// Degenerate baseline entry: any positive time regresses it.
			delta.CurSeconds = cw.MachineSeconds
			delta.Regressed = cw.MachineSeconds > 0
		default:
			delta.CurSeconds = cw.MachineSeconds
			delta.DeltaPct = (cw.MachineSeconds - bw.MachineSeconds) / bw.MachineSeconds * 100
			delta.Regressed = delta.DeltaPct > tolerancePct
		}
		d.Deltas = append(d.Deltas, delta)
	}
	sort.Slice(d.Deltas, func(i, j int) bool { return d.Deltas[i].Name < d.Deltas[j].Name })
	return d
}

// OK reports whether no workload regressed.
func (d *Diff) OK() bool {
	for _, delta := range d.Deltas {
		if delta.Regressed {
			return false
		}
	}
	return true
}

// Regressions lists the failing workload names.
func (d *Diff) Regressions() []string {
	var out []string
	for _, delta := range d.Deltas {
		if delta.Regressed {
			out = append(out, delta.Name)
		}
	}
	return out
}

// String renders the comparison as an aligned report, one line per
// baseline workload.
func (d *Diff) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %14s %14s %9s\n", "workload", "baseline ms", "current ms", "delta")
	for _, delta := range d.Deltas {
		mark := ""
		if delta.Regressed {
			mark = "  REGRESSED"
		}
		if delta.Missing {
			fmt.Fprintf(&b, "%-16s %14.4f %14s %9s%s\n",
				delta.Name, delta.BaseSeconds*1e3, "missing", "", mark)
			continue
		}
		fmt.Fprintf(&b, "%-16s %14.4f %14.4f %+8.2f%%%s\n",
			delta.Name, delta.BaseSeconds*1e3, delta.CurSeconds*1e3, delta.DeltaPct, mark)
	}
	return b.String()
}
