package bench

import (
	"strings"
	"testing"
)

func sampleSnapshot() *Snapshot {
	return &Snapshot{
		Schema: SchemaVersion,
		Name:   "base",
		Workloads: []Workload{
			{
				Name:           "gemm-2048",
				MachineSeconds: 0.010,
				ExecSeconds:    0.010,
				Layers: []LayerCost{
					{Name: "gemm-2048", Kind: "gemm", Seconds: 0.010, Strategy: "tile 64x64"},
				},
			},
			{
				Name:           "vgg16-b8-g4",
				MachineSeconds: 0.100,
				ExecSeconds:    0.090,
				CommSeconds:    0.010,
				Layers: []LayerCost{
					{Name: "conv1_1", Kind: "conv", Seconds: 0.020, Strategy: "s1"},
					{Name: "conv2_1", Kind: "conv", Seconds: 0.030, Strategy: "s2"},
					{Name: "fc6", Kind: "fc", Seconds: 0.040, Strategy: "s3"},
				},
			},
			{
				Name:           "vgg16-serve-b8",
				MachineSeconds: 0.050,
				ExecSeconds:    0.050,
				Phases:         &PhaseAttribution{QueueP99Ms: 1, BatchP99Ms: 2, ExecP99Ms: 30, CommP99Ms: 0},
			},
		},
	}
}

// TestAttributeIdenticalZero is the obs-check gate: a snapshot diffed
// against itself attributes to zero everywhere.
func TestAttributeIdenticalZero(t *testing.T) {
	a := Attribute(sampleSnapshot(), sampleSnapshot())
	if !a.Zero() {
		t.Fatalf("identical snapshots not zero:\n%s", a)
	}
	if top := a.Top(); top != nil {
		t.Fatalf("Top on identical snapshots = %+v, want nil", top)
	}
	if !strings.Contains(a.String(), "no differences") {
		t.Fatalf("report should say no differences:\n%s", a)
	}
}

// TestAttributeSlowedConv is the acceptance case: one conv layer slowed
// 3x in the new snapshot; the attribution must rank that workload worst,
// name that conv as the top layer, and name exec as the dominant phase.
func TestAttributeSlowedConv(t *testing.T) {
	old := sampleSnapshot()
	cur := sampleSnapshot()
	cur.Name = "cur"
	w := cur.Lookup("vgg16-b8-g4")
	w.Layers[1].Seconds = 0.090 // conv2_1: 0.030 -> 0.090
	slowdown := 0.060
	w.MachineSeconds += slowdown
	w.ExecSeconds += slowdown

	a := Attribute(old, cur)
	if a.Zero() {
		t.Fatal("slowed snapshot attributed to zero")
	}
	top := a.Top()
	if top == nil || top.Name != "vgg16-b8-g4" {
		t.Fatalf("top workload = %+v, want vgg16-b8-g4", top)
	}
	if got := top.TopPhase(); got != "exec" {
		t.Fatalf("dominant phase = %q, want exec", got)
	}
	layer := top.TopLayer()
	if layer == nil || layer.Name != "conv2_1" {
		t.Fatalf("top layer = %+v, want conv2_1", layer)
	}
	if layer.Kind != "conv" {
		t.Fatalf("top layer kind = %q, want conv", layer.Kind)
	}
	report := a.String()
	for _, want := range []string{"vgg16-b8-g4", "conv2_1", "dominant phase: exec"} {
		if !strings.Contains(report, want) {
			t.Fatalf("report missing %q:\n%s", want, report)
		}
	}
}

// TestAttributeCommPhase: a comm-only slowdown names comm, not exec.
func TestAttributeCommPhase(t *testing.T) {
	old := sampleSnapshot()
	cur := sampleSnapshot()
	w := cur.Lookup("vgg16-b8-g4")
	w.CommSeconds += 0.020
	w.MachineSeconds += 0.020

	a := Attribute(old, cur)
	top := a.Top()
	if top == nil || top.TopPhase() != "comm" {
		t.Fatalf("dominant phase = %v, want comm", top)
	}
}

// TestAttributeScheduleChange: same seconds, different chosen schedule —
// not zero, and the report names both strategies.
func TestAttributeScheduleChange(t *testing.T) {
	old := sampleSnapshot()
	cur := sampleSnapshot()
	cur.Lookup("gemm-2048").Layers[0].Strategy = "tile 128x32"

	a := Attribute(old, cur)
	if a.Zero() {
		t.Fatal("schedule change attributed to zero")
	}
	report := a.String()
	if !strings.Contains(report, "tile 64x64") || !strings.Contains(report, "tile 128x32") {
		t.Fatalf("report missing schedule change:\n%s", report)
	}
}

// TestAttributeMissingWorkload: a workload dropped from the new snapshot
// is surfaced, as is one only the new snapshot has.
func TestAttributeMissingWorkload(t *testing.T) {
	old := sampleSnapshot()
	cur := sampleSnapshot()
	cur.Workloads = cur.Workloads[:2] // drop vgg16-serve-b8
	cur.Workloads = append(cur.Workloads, Workload{Name: "brand-new", MachineSeconds: 0.001})

	a := Attribute(old, cur)
	if a.Zero() {
		t.Fatal("missing workload attributed to zero")
	}
	report := a.String()
	if !strings.Contains(report, "missing from new snapshot") {
		t.Fatalf("report missing dropped-workload line:\n%s", report)
	}
	if !strings.Contains(report, "new workload") {
		t.Fatalf("report missing added-workload line:\n%s", report)
	}
}

// TestAttributeLegacyExecFallback: old snapshots without ExecSeconds
// still attribute — exec falls back to total minus comm.
func TestAttributeLegacyExecFallback(t *testing.T) {
	old := &Snapshot{Schema: SchemaVersion, Workloads: []Workload{
		{Name: "w", MachineSeconds: 0.10, CommSeconds: 0.01},
	}}
	cur := &Snapshot{Schema: SchemaVersion, Workloads: []Workload{
		{Name: "w", MachineSeconds: 0.15, CommSeconds: 0.01},
	}}
	a := Attribute(old, cur)
	top := a.Top()
	if top == nil || top.TopPhase() != "exec" {
		t.Fatalf("legacy fallback phase = %v, want exec", top)
	}
}

// TestAttributeDuplicateLayerNames: nets repeat layer shapes; duplicates
// match positionally, and a removed duplicate is reported.
func TestAttributeDuplicateLayerNames(t *testing.T) {
	old := &Snapshot{Schema: SchemaVersion, Workloads: []Workload{
		{Name: "w", MachineSeconds: 0.03, Layers: []LayerCost{
			{Name: "conv", Seconds: 0.01, Strategy: "a"},
			{Name: "conv", Seconds: 0.02, Strategy: "b"},
		}},
	}}
	cur := &Snapshot{Schema: SchemaVersion, Workloads: []Workload{
		{Name: "w", MachineSeconds: 0.01, Layers: []LayerCost{
			{Name: "conv", Seconds: 0.01, Strategy: "a"},
		}},
	}}
	a := Attribute(old, cur)
	if a.Zero() {
		t.Fatal("removed duplicate layer attributed to zero")
	}
	var removed bool
	for _, l := range a.Workloads[0].Layers {
		if l.Removed && l.OldSeconds == 0.02 {
			removed = true
		}
	}
	if !removed {
		t.Fatalf("removed duplicate not reported: %+v", a.Workloads[0].Layers)
	}
}

// TestWorkloadRoundTrip: the new fields survive the JSON snapshot format
// and old snapshots (without them) still load.
func TestWorkloadRoundTrip(t *testing.T) {
	snap := sampleSnapshot()
	path := t.TempDir() + "/bench.json"
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	w := back.Lookup("vgg16-b8-g4")
	if w == nil || len(w.Layers) != 3 || w.Layers[1].Strategy != "s2" {
		t.Fatalf("layers did not round-trip: %+v", w)
	}
	if w.ExecSeconds != 0.090 || w.CommSeconds != 0.010 {
		t.Fatalf("phase seconds did not round-trip: %+v", w)
	}
	if !Attribute(snap, back).Zero() {
		t.Fatal("round-tripped snapshot not zero against source")
	}
}
