package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// LayerCost is one layer's share of a workload's machine seconds, recorded
// in the snapshot so a later regression can be attributed to the exact
// layer (and to a schedule change on that layer) rather than just to the
// workload total.
type LayerCost struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind,omitempty"`
	Seconds  float64 `json:"seconds"`
	Strategy string  `json:"strategy,omitempty"`
}

// LayerDelta is the per-layer comparison between two snapshots of the
// same workload.
type LayerDelta struct {
	Name       string
	Kind       string
	OldSeconds float64
	NewSeconds float64
	// Delta is new-old in seconds: positive means the layer got slower.
	Delta       float64
	OldStrategy string
	NewStrategy string
	// ScheduleChanged marks a layer whose chosen schedule differs between
	// the snapshots — the first suspect when its seconds moved.
	ScheduleChanged bool
	// Added/Removed mark layers present in only one snapshot.
	Added, Removed bool
}

// PhaseDelta is one lifecycle phase's contribution to a workload delta.
// Machine-second phases (exec, comm) are deterministic and rankable; the
// wall-millisecond serving phases (queue, batch p99) are informational.
type PhaseDelta struct {
	Phase string
	Old   float64
	New   float64
	Delta float64
	// Unit is "s" for deterministic machine seconds, "ms" for wall p99.
	Unit string
}

// WorkloadAttribution explains one workload's delta between snapshots:
// total, then per phase, then per layer, each sorted worst-first.
type WorkloadAttribution struct {
	Name       string
	OldSeconds float64
	NewSeconds float64
	Delta      float64
	DeltaPct   float64
	// Phases is sorted by |Delta| descending within the deterministic
	// ("s") phases first; wall phases follow.
	Phases []PhaseDelta
	// Layers is sorted by |Delta| descending.
	Layers []LayerDelta
	// MissingOld/MissingNew mark workloads present in only one snapshot.
	MissingOld, MissingNew bool
}

// TopPhase returns the deterministic phase with the largest absolute
// delta, or "" when none moved.
func (w *WorkloadAttribution) TopPhase() string {
	for _, p := range w.Phases {
		if p.Unit == "s" && p.Delta != 0 {
			return p.Phase
		}
	}
	return ""
}

// TopLayer returns the layer with the largest absolute delta, or nil.
func (w *WorkloadAttribution) TopLayer() *LayerDelta {
	if len(w.Layers) == 0 || w.Layers[0].Delta == 0 {
		return nil
	}
	return &w.Layers[0]
}

// Attribution is the differential comparison of two snapshots, workload
// by workload, worst regression first.
type Attribution struct {
	OldName string
	NewName string
	// Workloads is sorted by Delta descending (largest regression first).
	Workloads []WorkloadAttribution
}

// Attribute explains where the time went between two snapshots: for every
// workload in either snapshot, the machine-seconds delta, its split across
// lifecycle phases (exec vs comm machine seconds; queue/batch wall p99 on
// serving rows), and its split across layers including schedule changes.
// Identical snapshots attribute to zero everywhere — the obs-check gate.
func Attribute(old, cur *Snapshot) *Attribution {
	a := &Attribution{OldName: old.Name, NewName: cur.Name}
	seen := map[string]bool{}
	for _, ow := range old.Workloads {
		seen[ow.Name] = true
		wa := attributeWorkload(&ow, cur.Lookup(ow.Name))
		a.Workloads = append(a.Workloads, wa)
	}
	for _, cw := range cur.Workloads {
		if !seen[cw.Name] {
			a.Workloads = append(a.Workloads, attributeWorkload(nil, &cw))
		}
	}
	sort.SliceStable(a.Workloads, func(i, j int) bool {
		return a.Workloads[i].Delta > a.Workloads[j].Delta
	})
	return a
}

func attributeWorkload(old, cur *Workload) WorkloadAttribution {
	wa := WorkloadAttribution{}
	o, c := Workload{}, Workload{}
	switch {
	case old == nil:
		wa.Name, wa.MissingOld = cur.Name, true
		c = *cur
	case cur == nil:
		wa.Name, wa.MissingNew = old.Name, true
		o = *old
	default:
		wa.Name = old.Name
		o, c = *old, *cur
	}
	wa.OldSeconds, wa.NewSeconds = o.MachineSeconds, c.MachineSeconds
	wa.Delta = c.MachineSeconds - o.MachineSeconds
	if o.MachineSeconds > 0 {
		wa.DeltaPct = wa.Delta / o.MachineSeconds * 100
	}
	wa.Phases = attributePhases(o, c)
	wa.Layers = attributeLayers(o.Layers, c.Layers)
	return wa
}

// attributePhases splits the delta across the request lifecycle. Exec and
// comm are deterministic machine seconds; when a snapshot predates the
// ExecSeconds field, exec falls back to total minus comm so old baselines
// still attribute.
func attributePhases(o, c Workload) []PhaseDelta {
	execOf := func(w Workload) float64 {
		if w.ExecSeconds > 0 {
			return w.ExecSeconds
		}
		return w.MachineSeconds - w.CommSeconds
	}
	phases := []PhaseDelta{
		{Phase: "exec", Old: execOf(o), New: execOf(c), Unit: "s"},
		{Phase: "comm", Old: o.CommSeconds, New: c.CommSeconds, Unit: "s"},
	}
	if o.Phases != nil || c.Phases != nil {
		op, cp := o.Phases, c.Phases
		if op == nil {
			op = &PhaseAttribution{}
		}
		if cp == nil {
			cp = &PhaseAttribution{}
		}
		phases = append(phases,
			PhaseDelta{Phase: "queue-p99", Old: op.QueueP99Ms, New: cp.QueueP99Ms, Unit: "ms"},
			PhaseDelta{Phase: "batch-p99", Old: op.BatchP99Ms, New: cp.BatchP99Ms, Unit: "ms"},
			PhaseDelta{Phase: "exec-p99", Old: op.ExecP99Ms, New: cp.ExecP99Ms, Unit: "ms"},
			PhaseDelta{Phase: "comm-p99", Old: op.CommP99Ms, New: cp.CommP99Ms, Unit: "ms"},
		)
	}
	for i := range phases {
		phases[i].Delta = phases[i].New - phases[i].Old
	}
	// Deterministic phases first, then by |delta| descending.
	sort.SliceStable(phases, func(i, j int) bool {
		if (phases[i].Unit == "s") != (phases[j].Unit == "s") {
			return phases[i].Unit == "s"
		}
		return math.Abs(phases[i].Delta) > math.Abs(phases[j].Delta)
	})
	return phases
}

// attributeLayers matches layers by name. Duplicate names (repeated conv
// shapes in a net) are matched positionally within the name.
func attributeLayers(old, cur []LayerCost) []LayerDelta {
	type slot struct{ costs []LayerCost }
	index := func(layers []LayerCost) map[string]*slot {
		m := map[string]*slot{}
		for _, l := range layers {
			s := m[l.Name]
			if s == nil {
				s = &slot{}
				m[l.Name] = s
			}
			s.costs = append(s.costs, l)
		}
		return m
	}
	om := index(old)
	var out []LayerDelta
	seen := map[string]bool{}
	matched := map[string]int{}
	for _, cl := range cur {
		d := LayerDelta{Name: cl.Name, Kind: cl.Kind,
			NewSeconds: cl.Seconds, NewStrategy: cl.Strategy}
		if s, ok := om[cl.Name]; ok && matched[cl.Name] < len(s.costs) {
			ol := s.costs[matched[cl.Name]]
			matched[cl.Name]++
			d.OldSeconds, d.OldStrategy = ol.Seconds, ol.Strategy
			d.ScheduleChanged = ol.Strategy != cl.Strategy
		} else {
			d.Added = true
		}
		d.Delta = d.NewSeconds - d.OldSeconds
		seen[cl.Name] = true
		out = append(out, d)
	}
	for name, s := range om {
		for i := matched[name]; i < len(s.costs); i++ {
			ol := s.costs[i]
			out = append(out, LayerDelta{Name: ol.Name, Kind: ol.Kind,
				OldSeconds: ol.Seconds, OldStrategy: ol.Strategy,
				Delta: -ol.Seconds, Removed: true})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return math.Abs(out[i].Delta) > math.Abs(out[j].Delta)
	})
	return out
}

// Zero reports whether nothing moved: every workload's machine seconds,
// phase split, and layer costs are identical between the snapshots. The
// obs-check gate runs bench-diff on one snapshot against itself and
// requires Zero.
func (a *Attribution) Zero() bool {
	for _, w := range a.Workloads {
		if w.Delta != 0 || w.MissingOld || w.MissingNew {
			return false
		}
		for _, p := range w.Phases {
			if p.Delta != 0 {
				return false
			}
		}
		for _, l := range w.Layers {
			if l.Delta != 0 || l.ScheduleChanged || l.Added || l.Removed {
				return false
			}
		}
	}
	return true
}

// Top returns the workload with the largest regression, or nil when the
// snapshots are identical.
func (a *Attribution) Top() *WorkloadAttribution {
	if len(a.Workloads) == 0 || a.Workloads[0].Delta <= 0 {
		return nil
	}
	return &a.Workloads[0]
}

// String renders the attribution report: one block per workload whose
// numbers moved (worst first), each naming the dominant phase and the
// top layers with their schedule changes. Identical snapshots render a
// single "no differences" line.
func (a *Attribution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench-diff: %s -> %s\n", orUnnamed(a.OldName), orUnnamed(a.NewName))
	if a.Zero() {
		b.WriteString("  no differences: snapshots attribute to zero everywhere\n")
		return b.String()
	}
	const maxLayers = 5
	for _, w := range a.Workloads {
		switch {
		case w.MissingOld:
			fmt.Fprintf(&b, "%s: new workload (%.6fs), not in old snapshot\n", w.Name, w.NewSeconds)
			continue
		case w.MissingNew:
			fmt.Fprintf(&b, "%s: missing from new snapshot (was %.6fs)\n", w.Name, w.OldSeconds)
			continue
		case w.Delta == 0 && !layersMoved(w.Layers):
			continue
		}
		fmt.Fprintf(&b, "%s: %.6fs -> %.6fs (%+.2f%%)\n",
			w.Name, w.OldSeconds, w.NewSeconds, w.DeltaPct)
		if phase := w.TopPhase(); phase != "" {
			fmt.Fprintf(&b, "  dominant phase: %s\n", phase)
		}
		for _, p := range w.Phases {
			if p.Delta == 0 {
				continue
			}
			fmt.Fprintf(&b, "  phase %-9s %12.6f -> %12.6f %s (%+.6f)\n",
				p.Phase, p.Old, p.New, p.Unit, p.Delta)
		}
		shown := 0
		for _, l := range w.Layers {
			if l.Delta == 0 && !l.ScheduleChanged {
				continue
			}
			if shown >= maxLayers {
				fmt.Fprintf(&b, "  ... more layers moved (showing top %d)\n", maxLayers)
				break
			}
			shown++
			note := ""
			switch {
			case l.Added:
				note = "  [new layer]"
			case l.Removed:
				note = "  [removed]"
			case l.ScheduleChanged:
				note = fmt.Sprintf("  [schedule: %s -> %s]", orUnnamed(l.OldStrategy), orUnnamed(l.NewStrategy))
			}
			fmt.Fprintf(&b, "  layer %-24s %10.6fs -> %10.6fs (%+.6f)%s\n",
				l.Name, l.OldSeconds, l.NewSeconds, l.Delta, note)
		}
	}
	return b.String()
}

func layersMoved(layers []LayerDelta) bool {
	for _, l := range layers {
		if l.Delta != 0 || l.ScheduleChanged {
			return true
		}
	}
	return false
}

func orUnnamed(s string) string {
	if s == "" {
		return "(unnamed)"
	}
	return s
}
