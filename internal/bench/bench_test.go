package bench

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func snapshot(workloads ...Workload) *Snapshot {
	return &Snapshot{Schema: SchemaVersion, Name: "test", GoVersion: "go0", Workloads: workloads}
}

func TestWriteLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := snapshot(Workload{Name: "gemm-2048", MachineSeconds: 0.0237,
		WallSeconds: 1.5, Candidates: 768, GFLOPS: 722.6})
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Workloads) != 1 || !reflect.DeepEqual(got.Workloads[0], want.Workloads[0]) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Lookup("gemm-2048") == nil || got.Lookup("missing") != nil {
		t.Fatal("Lookup broken")
	}
}

func TestLoadRejectsBadSnapshots(t *testing.T) {
	dir := t.TempDir()
	wrongSchema := filepath.Join(dir, "schema.json")
	s := snapshot(Workload{Name: "x", MachineSeconds: 1})
	s.Schema = SchemaVersion + 1
	if err := s.WriteFile(wrongSchema); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(wrongSchema); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
	empty := filepath.Join(dir, "empty.json")
	if err := snapshot().WriteFile(empty); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil || !strings.Contains(err.Error(), "no workloads") {
		t.Fatalf("empty snapshot accepted: %v", err)
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCompare(t *testing.T) {
	base := snapshot(
		Workload{Name: "gemm", MachineSeconds: 0.100},
		Workload{Name: "vgg", MachineSeconds: 0.200},
	)

	// Identical: passes at zero tolerance.
	if d := Compare(base, base, 0); !d.OK() {
		t.Fatalf("identical snapshots regressed: %+v", d.Deltas)
	}

	// 0.5% slower passes at 1% tolerance, fails at 0.1%.
	cur := snapshot(
		Workload{Name: "gemm", MachineSeconds: 0.1005},
		Workload{Name: "vgg", MachineSeconds: 0.200},
	)
	if d := Compare(cur, base, 1.0); !d.OK() {
		t.Fatalf("within-tolerance drift regressed: %+v", d.Deltas)
	}
	d := Compare(cur, base, 0.1)
	if d.OK() {
		t.Fatal("0.5%% drift passed a 0.1%% gate")
	}
	if got := d.Regressions(); len(got) != 1 || got[0] != "gemm" {
		t.Fatalf("Regressions = %v", got)
	}

	// Getting faster is never a regression.
	faster := snapshot(
		Workload{Name: "gemm", MachineSeconds: 0.05},
		Workload{Name: "vgg", MachineSeconds: 0.19},
	)
	if d := Compare(faster, base, 0); !d.OK() {
		t.Fatalf("speedup flagged as regression: %+v", d.Deltas)
	}

	// A baseline workload the current run lacks is a regression; an extra
	// current workload is not.
	partial := snapshot(
		Workload{Name: "gemm", MachineSeconds: 0.1},
		Workload{Name: "brand-new", MachineSeconds: 9},
	)
	d = Compare(partial, base, 5)
	if d.OK() {
		t.Fatal("missing baseline workload passed")
	}
	if got := d.Regressions(); len(got) != 1 || got[0] != "vgg" {
		t.Fatalf("Regressions = %v", got)
	}
	if !strings.Contains(d.String(), "missing") || !strings.Contains(d.String(), "REGRESSED") {
		t.Fatalf("report does not show the miss:\n%s", d.String())
	}
}
