package autotune

import (
	"context"
	"testing"

	"swatop/internal/cache"
	"swatop/internal/dsl"
	"swatop/internal/gemm"
	"swatop/internal/search"
)

// searchLedger bundles what the determinism contract pins: the chosen
// schedule and the measured-candidate accounting.
type searchLedger struct {
	strategy string
	measured float64
	machine  float64
	rounds   int
	count    int
}

func tuneWithSearcher(t *testing.T, s search.Searcher, workers int, seed uint64) (Result, searchLedger) {
	t.Helper()
	op, err := gemm.NewOp(gemm.Params{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ModelBasedCtx(context.Background(), op, model(t), Options{
		Workers:      workers,
		Searcher:     s,
		SearchSeed:   seed,
		SearchBudget: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, searchLedger{
		strategy: res.Best.Strategy.String(),
		measured: res.Best.Measured,
		machine:  res.MachineSeconds,
		rounds:   res.Rounds,
		count:    res.Measured,
	}
}

// TestEvoSearcherWorkerCountInvariance is the determinism contract: given
// (seed, budget), the chosen schedule, its measured seconds, the machine-
// seconds ledger and the round count are bit-identical at 1 and 4 workers.
func TestEvoSearcherWorkerCountInvariance(t *testing.T) {
	_, seq := tuneWithSearcher(t, &search.Evolutionary{}, 1, 7)
	for _, w := range []int{2, 4} {
		_, par := tuneWithSearcher(t, &search.Evolutionary{}, w, 7)
		if seq != par {
			t.Fatalf("workers=%d diverged:\nseq %+v\npar %+v", w, seq, par)
		}
	}
}

func TestAnnealSearcherWorkerCountInvariance(t *testing.T) {
	_, seq := tuneWithSearcher(t, &search.Annealing{}, 1, 7)
	_, par := tuneWithSearcher(t, &search.Annealing{}, 4, 7)
	if seq != par {
		t.Fatalf("diverged:\nseq %+v\npar %+v", seq, par)
	}
}

// TestSearcherRespectsBudget: the searcher must measure at most the budget
// fraction of the space (plus nothing — the floor only applies to tiny
// spaces) and still land within 5% of the exhaustive walk's machine-second
// quality on this GEMM.
func TestSearcherRespectsBudget(t *testing.T) {
	res, _ := tuneWithSearcher(t, &search.Evolutionary{}, 4, 7)
	budget := search.BudgetFor(0.10, res.SpaceSize)
	if res.Measured > budget {
		t.Fatalf("measured %d > budget %d (space %d)", res.Measured, budget, res.SpaceSize)
	}
	if res.Measured == 0 || res.Proposed < res.Measured {
		t.Fatalf("accounting wrong: proposed %d measured %d", res.Proposed, res.Measured)
	}

	op, err := gemm.NewOp(gemm.Params{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	exh, err := ModelBasedCtx(context.Background(), op, model(t), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Measured > exh.Best.Measured*1.05 {
		t.Fatalf("evo schedule %.6g s is >5%% slower than exhaustive %.6g s",
			res.Best.Measured, exh.Best.Measured)
	}
	t.Logf("evo: %.6g s with %d/%d measured; exhaustive: %.6g s",
		res.Best.Measured, res.Measured, res.SpaceSize, exh.Best.Measured)
}

// TestSearcherDefaultPathUntouched: without a Searcher the exhaustive walk
// must behave exactly as before — same schedule, same ledger.
func TestSearcherDefaultPathUntouched(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 256, N: 256, K: 256})
	a, err := ModelBasedCtx(context.Background(), op, model(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Proposed != 0 || a.Measured != 0 || a.Rounds != 0 || a.Converged {
		t.Fatalf("exhaustive result carries searcher stats: %+v", a)
	}
}

// TestTransferSeedsFromLibrary: a cached neighbor's winner seeds the
// search; a Degraded neighbor must not.
func TestTransferSeedsFromLibrary(t *testing.T) {
	lib := cache.NewLibrary()
	// A neighbor shape of the same family with a plausible strategy.
	lib.Put(cache.FromStrategy("gemm_256x256x256", dsl.Strategy{
		Factors: map[string]int{"m": 64, "n": 64, "k": 128},
		Order:   []string{"m", "n", "k"},
	}, 0.001, 100))
	op, err := gemm.NewOp(gemm.Params{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ModelBasedCtx(context.Background(), op, model(t), Options{
		Workers:    2,
		Searcher:   &search.Evolutionary{},
		SearchSeed: 7,
		Transfer:   lib,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Measured <= 0 {
		t.Fatal("no result with transfer seeding")
	}

	// Degraded entries are invisible to Nearest, so seeding them changes
	// nothing relative to an empty library.
	degraded := cache.NewLibrary()
	e := cache.FromStrategy("gemm_256x256x256", dsl.Strategy{
		Factors: map[string]int{"m": 64, "n": 64, "k": 128},
	}, 0.001, 100)
	e.Degraded = true
	degraded.Put(e)
	if n := degraded.Nearest("gemm_512x512x512", 3); len(n) != 0 {
		t.Fatalf("degraded entry offered as transfer seed: %v", n)
	}
}

// TestSearcherTinyBudget: a near-zero budget fraction clamps to the
// measurement floor and the searcher still terminates with a valid best.
func TestSearcherTinyBudget(t *testing.T) {
	op, err := gemm.NewOp(gemm.Params{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ModelBasedCtx(context.Background(), op, model(t), Options{
		Searcher:     &search.Evolutionary{},
		SearchSeed:   1,
		SearchBudget: 0.0001, // clamps to the measurement floor
	})
	if err != nil {
		t.Fatal(err)
	}
	want := search.BudgetFor(0.0001, res.SpaceSize)
	if res.Measured > want {
		t.Fatalf("floor budget violated: measured %d > %d", res.Measured, want)
	}
	if res.Best.Measured <= 0 {
		t.Fatalf("no valid best under tiny budget: %+v", res.Best)
	}
}
