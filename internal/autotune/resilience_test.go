package autotune

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"swatop/internal/conv"
	"swatop/internal/dsl"
	"swatop/internal/faults"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
	"swatop/internal/workloads"
)

// panicOp wraps an operator and detonates a real panic site inside Compile
// on one chosen call (1-based). The counter is atomic so the trigger fires
// exactly once no matter how the worker pool schedules candidates.
type panicOp struct {
	Operator
	calls   atomic.Int64
	trigger int64
	boom    func()
}

func (o *panicOp) Compile(st dsl.Strategy) (*ir.Program, error) {
	if o.calls.Add(1) == o.trigger {
		o.boom()
	}
	return o.Operator.Compile(st)
}

// TestPanicSitesBecomeCandidateErrors drives every known panic site
// reachable from a candidate evaluation through both tuners and asserts the
// panic is contained as a per-candidate failure: the search completes, the
// panic never escapes, and exactly one candidate is reported failed. Run
// with Workers: 4 so `make race` also proves containment under contention.
func TestPanicSitesBecomeCandidateErrors(t *testing.T) {
	sites := []struct {
		name string
		boom func()
	}{
		{"ir division by zero", func() {
			ir.Div(ir.Const(1), ir.Const(0)).Eval(ir.Env{})
		}},
		{"ir modulo by zero", func() {
			ir.Mod(ir.Const(1), ir.Const(0)).Eval(ir.Env{})
		}},
		{"tensor index out of range", func() {
			_ = tensor.New("t", 2, 2).At(5, 0)
		}},
		{"sw26010 negative compute time", func() {
			sw26010.NewMachine().AdvanceCompute(-1)
		}},
	}
	for _, site := range sites {
		site := site
		t.Run(site.name, func(t *testing.T) {
			op := &panicOp{
				Operator: smallOp(t, gemm.Params{M: 128, N: 128, K: 128}),
				trigger:  2,
				boom:     site.boom,
			}
			res, err := BlackBoxCtx(context.Background(), op, Options{Workers: 4})
			if err != nil {
				t.Fatalf("panic escaped as fatal error: %v", err)
			}
			if res.FailedCandidates != 1 {
				t.Fatalf("failed candidates = %d, want 1", res.FailedCandidates)
			}
			if res.Best.Program == nil {
				t.Fatal("no schedule selected despite surviving candidates")
			}
			if res.Valid+res.FailedCandidates > res.SpaceSize {
				t.Fatalf("accounting broken: valid %d + failed %d > space %d",
					res.Valid, res.FailedCandidates, res.SpaceSize)
			}
		})
		t.Run(site.name+"/model-based", func(t *testing.T) {
			op := &panicOp{
				Operator: smallOp(t, gemm.Params{M: 128, N: 128, K: 128}),
				trigger:  2,
				boom:     site.boom,
			}
			res, err := ModelBasedCtx(context.Background(), op, model(t), Options{Workers: 4})
			if err != nil {
				t.Fatalf("panic escaped as fatal error: %v", err)
			}
			if res.FailedCandidates != 1 {
				t.Fatalf("failed candidates = %d, want 1", res.FailedCandidates)
			}
			if res.Best.Program == nil {
				t.Fatal("no schedule selected despite surviving candidates")
			}
		})
	}
}

// TestMeasurementPanicIsContained injects a panic into the exec measurement
// path itself (not the operator): every 2nd exec.Run call detonates. The
// brute-force tuner must still finish on the surviving half.
func TestMeasurementPanicIsContained(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	in := faults.New(7)
	in.PanicEveryNth(faults.Measure, 2, "injected measurement panic")
	res, err := BlackBoxCtx(context.Background(), op, Options{Workers: 4, Faults: in})
	if err != nil {
		t.Fatalf("measurement panic escaped: %v", err)
	}
	if res.FailedCandidates == 0 {
		t.Fatal("injector armed but no candidate failed")
	}
	if res.Best.Program == nil {
		t.Fatal("no schedule selected")
	}
	if in.Fired(faults.Measure) == 0 {
		t.Fatal("injector never fired")
	}
}

// TestRetryDeterminismOnVGG16Layer is the paper-pipeline acceptance test:
// with the injector failing every 3rd measurement transiently and
// Retry{Attempts: 3}, the brute-force tuner must select the exact same
// schedule and machine-time ledger as a fault-free run on a VGG16 layer —
// retries cost host wall time only, never simulated results.
func TestRetryDeterminismOnVGG16Layer(t *testing.T) {
	layer := workloads.VGG16()[10] // conv5_1: 512 channels, 14x14 output
	shape := layer.Shape(1)
	tune := func(in *faults.Injector, retry Retry) Result {
		t.Helper()
		op, err := conv.NewImplicitOp(shape)
		if err != nil {
			t.Fatal(err)
		}
		// Trim every menu to two entries so brute force stays fast; the
		// trimmed space is identical for both runs.
		sp := op.Space()
		for name, menu := range sp.Factors {
			if len(menu) > 2 {
				sp.Factors[name] = menu[:2]
			}
		}
		if len(sp.Orders) > 1 {
			sp.Orders = sp.Orders[:1]
		}
		res, err := BlackBoxCtx(context.Background(), op, Options{
			Faults: in,
			Retry:  retry,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := tune(nil, Retry{})

	in := faults.New(3)
	in.FailEveryNth(faults.Measure, 3, faults.Transient(errors.New("flaky timer")))
	faulty := tune(in, Retry{Attempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond})

	sameResult(t, "retry determinism", clean, faulty)
	if faulty.FailedCandidates != 0 {
		t.Fatalf("retries should have absorbed every transient: %d failed", faulty.FailedCandidates)
	}
	if in.Fired(faults.Measure) == 0 {
		t.Fatal("injector never fired — the test proved nothing")
	}
}

// TestTransientWithoutRetryFailsCandidate is the control for the test
// above: the same injector with no retry policy turns each transient into a
// skipped candidate instead of a fatal error.
func TestTransientWithoutRetryFailsCandidate(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	in := faults.New(3)
	in.FailEveryNth(faults.Measure, 3, faults.Transient(errors.New("flaky timer")))
	res, err := BlackBoxCtx(context.Background(), op, Options{Faults: in})
	if err != nil {
		t.Fatalf("transient error escalated to fatal: %v", err)
	}
	if res.FailedCandidates == 0 {
		t.Fatal("expected skipped candidates without a retry policy")
	}
}

// TestNonTransientErrorStaysFatal pins the seed semantics: an eval error
// that is neither a panic nor transient still aborts the whole search.
func TestNonTransientErrorStaysFatal(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	in := faults.New(3)
	in.FailEveryNth(faults.Measure, 2, errors.New("corrupted simulator state"))
	_, err := BlackBoxCtx(context.Background(), op, Options{Faults: in, Retry: Retry{Attempts: 5}})
	if err == nil {
		t.Fatal("non-transient error should be fatal")
	}
	if !strings.Contains(err.Error(), "corrupted simulator state") {
		t.Fatalf("error lost its cause: %v", err)
	}
}

// TestMaxCandidateFailuresAborts proves the circuit breaker: once failures
// exceed the limit the search aborts with an error that carries the last
// CandidateError (index, strategy, panic flag) for diagnosis.
func TestMaxCandidateFailuresAborts(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	in := faults.New(9)
	in.PanicEveryNth(faults.Measure, 1, "every measurement panics")
	_, err := BlackBoxCtx(context.Background(), op, Options{
		Faults:               in,
		MaxCandidateFailures: 2,
	})
	if err == nil {
		t.Fatal("expected circuit-breaker abort")
	}
	if !strings.Contains(err.Error(), "exceed limit 2") {
		t.Fatalf("error does not mention the limit: %v", err)
	}
	var ce *CandidateError
	if !errors.As(err, &ce) {
		t.Fatalf("abort error should wrap the last CandidateError: %v", err)
	}
	if !ce.Panicked {
		t.Fatalf("candidate error should record the panic: %+v", ce)
	}
	if ce.Index < 0 || len(ce.Strategy.Factors) == 0 {
		t.Fatalf("candidate error lost its identity: %+v", ce)
	}
}

// TestAllCandidatesFailReportsCount: when every candidate fails, the tuner
// returns an error naming how many failed rather than hanging or panicking.
func TestAllCandidatesFailReportsCount(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	in := faults.New(11)
	in.PanicEveryNth(faults.Measure, 1, "every measurement panics")
	_, err := BlackBoxCtx(context.Background(), op, Options{Workers: 4, Faults: in})
	if err == nil {
		t.Fatal("expected failure when no candidate survives")
	}
	if !strings.Contains(err.Error(), "candidates failed") {
		t.Fatalf("error does not report the failed count: %v", err)
	}
}

// TestDMAFaultIsFatalWithoutRetryMark: an injected DMA failure that is not
// marked transient propagates as a hard error — fault classification is
// decided by the error's mark, not by where it was injected.
func TestDMAFaultIsFatalWithoutRetryMark(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	in := faults.New(5)
	in.FailEveryNth(faults.DMATransfer, 40, errors.New("CPE bus error"))
	_, err := BlackBoxCtx(context.Background(), op, Options{Faults: in})
	if err == nil {
		t.Fatal("unmarked DMA fault should be fatal")
	}
	if !strings.Contains(err.Error(), "CPE bus error") {
		t.Fatalf("error lost its cause: %v", err)
	}
}

// TestTransientDMAFaultIsRetried: the same DMA fault marked transient is
// absorbed by the retry policy and the result matches the fault-free run.
func TestTransientDMAFaultIsRetried(t *testing.T) {
	clean, err := BlackBoxCtx(context.Background(),
		smallOp(t, gemm.Params{M: 128, N: 128, K: 128}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(5)
	in.FailEveryNth(faults.DMATransfer, 97, faults.Transient(errors.New("CPE bus error")))
	faulty, err := BlackBoxCtx(context.Background(),
		smallOp(t, gemm.Params{M: 128, N: 128, K: 128}), Options{
			Faults: in,
			Retry:  Retry{Attempts: 3, BaseDelay: time.Microsecond, MaxDelay: time.Microsecond},
		})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "transient DMA retry", clean, faulty)
	if in.Fired(faults.DMATransfer) == 0 {
		t.Fatal("injector never fired — the test proved nothing")
	}
}

// TestComputeStallChangesLedgerOnly: an injected compute stall slows the
// simulated clock (so measured times move) but never breaks the search.
func TestComputeStallChangesLedgerOnly(t *testing.T) {
	clean, err := BlackBoxCtx(context.Background(),
		smallOp(t, gemm.Params{M: 128, N: 128, K: 128}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := faults.New(5)
	in.StallEveryNth(faults.ComputeStall, 3, 1e-3)
	stalled, err := BlackBoxCtx(context.Background(),
		smallOp(t, gemm.Params{M: 128, N: 128, K: 128}), Options{Faults: in})
	if err != nil {
		t.Fatal(err)
	}
	if stalled.MachineSeconds <= clean.MachineSeconds {
		t.Fatalf("stalls should inflate the ledger: %v <= %v",
			stalled.MachineSeconds, clean.MachineSeconds)
	}
	if stalled.Valid != clean.Valid || stalled.FailedCandidates != 0 {
		t.Fatalf("stalls must not fail candidates: valid %d vs %d, failed %d",
			stalled.Valid, clean.Valid, stalled.FailedCandidates)
	}
}
