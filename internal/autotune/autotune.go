// Package autotune implements swATOP's autotuner (§4.6) and the black-box
// baseline it is compared against (Table 3, Fig. 9).
//
// Both tuners walk the same schedule space and compile every candidate. The
// black-box tuner *runs* every candidate on the (simulated) machine and
// picks the measured best; the model-based tuner *predicts* every candidate
// with the static performance model and runs only its top pick. The ledger
// tracks both host wall time and consumed machine time — the latter charges
// the black-box tuner the per-candidate compile+launch overhead a real
// SW26010 batch system imposes, which is where "from days to minutes"
// comes from.
//
// Candidates are streamed from schedule.Stream and evaluated on a worker
// pool: compile+estimate (and compile+run) are independent per candidate,
// so host wall time scales down with Options.Workers. The selection is
// deterministic for any worker count — candidates are merged by
// (predicted, index), so the chosen schedule, Valid count and
// MachineSeconds are bit-identical to the sequential walk. MachineSeconds
// is *simulated hardware* time and never changes with host parallelism;
// only WallSeconds shrinks.
package autotune

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"swatop/internal/costmodel"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/ir"
	"swatop/internal/schedule"
)

// CompileLaunchOverheadSeconds is the per-candidate cost of compiling,
// linking and launching one schedule on the real machine (batch queue and
// sw5cc invocation; ~40 s matches Table 3's hours-per-~400-candidates).
const CompileLaunchOverheadSeconds = 40.0

// Operator is anything tunable: it exposes its schedule seed and space and
// compiles one strategy into an executable program. Single-nest operators
// use core.Compile; multi-phase operators (Winograd, explicit convolution)
// compose their own programs. Compile must be safe for concurrent calls:
// the worker pool compiles many strategies of one operator at once.
type Operator interface {
	Name() string
	Seed() *dsl.Seed
	Space() *dsl.Space
	Compile(st dsl.Strategy) (*ir.Program, error)
}

// Candidate is one compiled schedule.
type Candidate struct {
	Strategy  dsl.Strategy
	Program   *ir.Program
	Predicted float64 // model estimate (model-based tuner)
	Measured  float64 // simulated run time (when run)
}

// Result reports a tuning session.
type Result struct {
	Best Candidate
	// SpaceSize is the number of raw schedule points; Valid is how many
	// compiled successfully (the paper's "space size" column).
	SpaceSize int
	Valid     int
	// WallSeconds is host time spent tuning. It shrinks with
	// Options.Workers.
	WallSeconds float64
	// MachineSeconds is simulated SW26010 time consumed: per-candidate
	// compile+launch+run for the black-box tuner, one launch for swATOP.
	// It is independent of host parallelism.
	MachineSeconds float64
}

// TopK is how many of the model's best predictions the tuner actually runs
// before picking the winner (§4.6: "predict and pick best (or top k)
// implementations"). Running a small k erases most of the model's residual
// ranking error at negligible machine cost.
const TopK = 3

// Options tunes the tuner's host-side execution. The zero value reproduces
// the classic sequential behaviour.
type Options struct {
	// Workers is the number of concurrent compile+evaluate goroutines;
	// values below 2 run sequentially. The selected schedule and the
	// machine-time ledger are identical for every worker count.
	Workers int
	// TopK overrides the number of finalists the model-based tuner
	// actually runs (default: the package TopK constant).
	TopK int
	// Progress, when non-nil, is called after each candidate is processed
	// with the number of processed and valid candidates so far. It is
	// always invoked from a single goroutine.
	Progress func(done, valid int)
}

func (o Options) topK() int {
	if o.TopK > 0 {
		return o.TopK
	}
	return TopK
}

// ModelBased runs swATOP's performance-model autotuner sequentially:
// estimate every valid candidate, run the top-k predictions, keep the
// measured best.
func ModelBased(op Operator, model *costmodel.GemmModel) (Result, error) {
	return ModelBasedCtx(context.Background(), op, model, Options{})
}

// ModelBasedCtx is ModelBased with cancellation and a worker pool: workers
// pull (index, strategy) pairs off the streaming enumerator, compile and
// estimate independently, and a deterministic merge keeps the k best
// predictions ordered by (predicted, index) — so the tuned schedule is
// identical for any Workers value.
func ModelBasedCtx(ctx context.Context, op Operator, model *costmodel.GemmModel, opts Options) (Result, error) {
	t0 := time.Now()
	k := opts.topK()
	var top []ranked // ascending by (Predicted, idx), at most k
	done, valid := 0, 0
	sink := func(idx int, c *Candidate) {
		done++
		if c != nil {
			valid++
			top = insertRanked(top, ranked{c: c, idx: idx}, k)
		}
		if opts.Progress != nil {
			opts.Progress(done, valid)
		}
	}
	eval := func(c *Candidate) error {
		est, err := costmodel.EstimateProgram(model, c.Program)
		if err != nil {
			return fmt.Errorf("estimate %s: %w", c.Strategy, err)
		}
		c.Predicted = est.Total()
		return nil
	}
	spaceSize, err := runPool(ctx, op, opts.Workers, eval, sink)
	if err != nil {
		return Result{}, err
	}
	res := Result{SpaceSize: spaceSize, Valid: valid}
	if len(top) == 0 {
		return Result{}, fmt.Errorf("autotune %s: no valid schedule in space of %d", op.Name(), spaceSize)
	}
	// The k finalists are emitted into one binary and measured in a single
	// batch job: one compile+launch, k short runs.
	res.MachineSeconds = CompileLaunchOverheadSeconds
	var best *Candidate
	for _, r := range top {
		secs, err := runTimed(r.c.Program)
		if err != nil {
			return Result{}, fmt.Errorf("autotune %s: candidate failed to run: %w", op.Name(), err)
		}
		r.c.Measured = secs
		res.MachineSeconds += secs
		if best == nil || r.c.Measured < best.Measured {
			best = r.c
		}
	}
	res.Best = *best
	res.WallSeconds = time.Since(t0).Seconds()
	return res, nil
}

// BlackBox runs every valid candidate on the simulator and picks the
// measured best — the brute-force baseline.
func BlackBox(op Operator) (Result, error) {
	return BlackBoxCtx(context.Background(), op, Options{})
}

// BlackBoxCtx is BlackBox with cancellation and a worker pool. The winner
// is merged by (measured, index) and the machine-time ledger is summed in
// index order, so both are identical for any Workers value.
func BlackBoxCtx(ctx context.Context, op Operator, opts Options) (Result, error) {
	t0 := time.Now()
	type run struct {
		idx  int
		secs float64
	}
	var runs []run
	var best ranked
	done := 0
	sink := func(idx int, c *Candidate) {
		done++
		if c != nil {
			runs = append(runs, run{idx: idx, secs: c.Measured})
			if best.c == nil || c.Measured < best.c.Measured ||
				(c.Measured == best.c.Measured && idx < best.idx) {
				best = ranked{c: c, idx: idx}
			}
		}
		if opts.Progress != nil {
			opts.Progress(done, len(runs))
		}
	}
	eval := func(c *Candidate) error {
		secs, err := runTimed(c.Program)
		if err != nil {
			return fmt.Errorf("%s: %w", c.Strategy, err)
		}
		c.Measured = secs
		return nil
	}
	spaceSize, err := runPool(ctx, op, opts.Workers, eval, sink)
	if err != nil {
		return Result{}, fmt.Errorf("blackbox %s: %w", op.Name(), err)
	}
	if best.c == nil {
		return Result{}, fmt.Errorf("blackbox %s: no valid schedule", op.Name())
	}
	res := Result{SpaceSize: spaceSize, Valid: len(runs)}
	// Sum the ledger in enumeration order: float addition is not
	// associative, and MachineSeconds must not depend on worker timing.
	sort.Slice(runs, func(i, j int) bool { return runs[i].idx < runs[j].idx })
	for _, r := range runs {
		res.MachineSeconds += CompileLaunchOverheadSeconds + r.secs
	}
	res.Best = *best.c
	res.WallSeconds = time.Since(t0).Seconds()
	return res, nil
}

// ranked is a candidate with its stable enumeration index — the merge key
// that makes parallel selection reproduce the sequential walk exactly.
type ranked struct {
	c   *Candidate
	idx int
}

// insertRanked inserts r into the ascending (Predicted, idx) order of top,
// keeping at most k entries. Processing candidates in any arrival order
// yields the same final top-k as the sequential stable insertion.
func insertRanked(top []ranked, r ranked, k int) []ranked {
	pos := len(top)
	for pos > 0 && (top[pos-1].c.Predicted > r.c.Predicted ||
		(top[pos-1].c.Predicted == r.c.Predicted && top[pos-1].idx > r.idx)) {
		pos--
	}
	if pos >= k {
		return top
	}
	top = append(top, ranked{})
	copy(top[pos+1:], top[pos:])
	top[pos] = r
	if len(top) > k {
		top = top[:k]
	}
	return top
}

// poolResult is one candidate's outcome crossing from a worker back to the
// collector. cand is nil when the point failed to compile (invalid).
type poolResult struct {
	idx  int
	cand *Candidate
	err  error
}

// runPool streams the operator's schedule space through workers goroutines.
// Each point is compiled; valid candidates are passed to eval on the
// worker, and every processed point is delivered to sink on the collector
// goroutine (so sink needs no locking). Returns the number of enumerated
// points and the first (lowest-index) evaluation error, if any.
func runPool(ctx context.Context, op Operator, workers int,
	eval func(c *Candidate) error, sink func(idx int, c *Candidate)) (int, error) {
	if workers < 2 {
		return runSequential(ctx, op, eval, sink)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		idx int
		st  dsl.Strategy
	}
	jobs := make(chan job, workers)
	results := make(chan poolResult, workers)

	total := 0
	var streamErr error
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		defer close(jobs)
		streamErr = schedule.Stream(op.Seed(), op.Space(), func(idx int, st dsl.Strategy) bool {
			select {
			case jobs <- job{idx: idx, st: st}:
				total = idx + 1
				return true
			case <-ctx.Done():
				return false
			}
		})
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain after cancellation
				}
				r := poolResult{idx: j.idx}
				if prog, err := op.Compile(j.st); err == nil {
					c := &Candidate{Strategy: j.st, Program: prog}
					if everr := eval(c); everr != nil {
						r.err = everr
					} else {
						r.cand = c
					}
				}
				select {
				case results <- r:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var firstErr error
	firstErrIdx := -1
	for r := range results {
		if r.err != nil {
			// Keep the lowest-index error so failures are reported
			// deterministically, then stop feeding the pool.
			if firstErr == nil || r.idx < firstErrIdx {
				firstErr, firstErrIdx = r.err, r.idx
			}
			cancel()
			continue
		}
		if firstErr == nil {
			sink(r.idx, r.cand)
		}
	}
	<-prodDone
	if firstErr != nil {
		return 0, firstErr
	}
	if streamErr != nil {
		return 0, streamErr
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return total, nil
}

// runSequential is the single-goroutine pool: one pass over the stream,
// evaluating in place. The reference behaviour every worker count must
// reproduce.
func runSequential(ctx context.Context, op Operator,
	eval func(c *Candidate) error, sink func(idx int, c *Candidate)) (int, error) {
	total := 0
	var evalErr error
	err := schedule.Stream(op.Seed(), op.Space(), func(idx int, st dsl.Strategy) bool {
		if ctx.Err() != nil {
			return false
		}
		total = idx + 1
		prog, err := op.Compile(st)
		if err != nil {
			sink(idx, nil) // invalid point (capacity, layout rules, ...)
			return true
		}
		c := &Candidate{Strategy: st, Program: prog}
		if evalErr = eval(c); evalErr != nil {
			return false
		}
		sink(idx, c)
		return true
	})
	if err != nil {
		return 0, err
	}
	if evalErr != nil {
		return 0, evalErr
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return total, nil
}

func runTimed(prog *ir.Program) (float64, error) {
	binds, err := exec.BindVirtual(prog)
	if err != nil {
		return 0, err
	}
	r, err := exec.Run(prog, binds, exec.Options{Functional: false, FastLoops: true})
	if err != nil {
		return 0, err
	}
	return r.Seconds, nil
}
