// Package autotune implements swATOP's autotuner (§4.6) and the black-box
// baseline it is compared against (Table 3, Fig. 9).
//
// Both tuners walk the same schedule space and compile every candidate. The
// black-box tuner *runs* every candidate on the (simulated) machine and
// picks the measured best; the model-based tuner *predicts* every candidate
// with the static performance model and runs only its top pick. The ledger
// tracks both host wall time and consumed machine time — the latter charges
// the black-box tuner the per-candidate compile+launch overhead a real
// SW26010 batch system imposes, which is where "from days to minutes"
// comes from.
//
// Candidates are streamed from schedule.Stream and evaluated on a worker
// pool: compile+estimate (and compile+run) are independent per candidate,
// so host wall time scales down with Options.Workers. The selection is
// deterministic for any worker count — candidates are merged by
// (predicted, index), so the chosen schedule, Valid count and
// MachineSeconds are bit-identical to the sequential walk. MachineSeconds
// is *simulated hardware* time and never changes with host parallelism;
// only WallSeconds shrinks.
package autotune

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"swatop/internal/cache"
	"swatop/internal/costmodel"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/faults"
	"swatop/internal/ir"
	"swatop/internal/metrics"
	"swatop/internal/obsrv"
	"swatop/internal/schedule"
	"swatop/internal/search"
)

// CompileLaunchOverheadSeconds is the per-candidate cost of compiling,
// linking and launching one schedule on the real machine (batch queue and
// sw5cc invocation; ~40 s matches Table 3's hours-per-~400-candidates).
const CompileLaunchOverheadSeconds = 40.0

// Operator is anything tunable: it exposes its schedule seed and space and
// compiles one strategy into an executable program. Single-nest operators
// use core.Compile; multi-phase operators (Winograd, explicit convolution)
// compose their own programs. Compile must be safe for concurrent calls:
// the worker pool compiles many strategies of one operator at once.
type Operator interface {
	Name() string
	Seed() *dsl.Seed
	Space() *dsl.Space
	Compile(st dsl.Strategy) (*ir.Program, error)
}

// Candidate is one compiled schedule.
type Candidate struct {
	Strategy  dsl.Strategy
	Program   *ir.Program
	Predicted float64 // model estimate (model-based tuner)
	Measured  float64 // simulated run time (when run)
}

// Result reports a tuning session.
type Result struct {
	Best Candidate
	// SpaceSize is the number of raw schedule points; Valid is how many
	// compiled successfully (the paper's "space size" column).
	SpaceSize int
	Valid     int
	// FailedCandidates counts candidates whose evaluation was contained
	// rather than completed: a panic during compile/estimate/run, or a
	// transient measurement error that survived every retry. Failed
	// candidates are skipped, not selected, and are excluded from Valid.
	FailedCandidates int
	// WallSeconds is host time spent tuning. It shrinks with
	// Options.Workers.
	WallSeconds float64
	// MachineSeconds is simulated SW26010 time consumed: per-candidate
	// compile+launch+run for the black-box tuner, one launch for swATOP.
	// It is independent of host parallelism, and it counts only completed
	// measurements — a transient failure discards its partial run, so the
	// ledger (and the selected schedule) is identical whether or not
	// retries happened along the way.
	MachineSeconds float64
	// Searcher-mode statistics, zero for the exhaustive walks: Proposed is
	// how many candidates the searcher evaluated (compiled + predicted),
	// Measured how many it actually ran, Rounds how many measure rounds it
	// took, and Converged whether it stopped because progress stalled
	// rather than because the budget ran out.
	Proposed  int
	Measured  int
	Rounds    int
	Converged bool
}

// TopK is how many of the model's best predictions the tuner actually runs
// before picking the winner (§4.6: "predict and pick best (or top k)
// implementations"). Running a small k erases most of the model's residual
// ranking error at negligible machine cost.
const TopK = 3

// Options tunes the tuner's host-side execution. The zero value reproduces
// the classic sequential behaviour.
type Options struct {
	// Workers is the number of concurrent compile+evaluate goroutines;
	// values below 2 run sequentially. The selected schedule and the
	// machine-time ledger are identical for every worker count.
	Workers int
	// TopK overrides the number of finalists the model-based tuner
	// actually runs (default: the package TopK constant).
	TopK int
	// Progress, when non-nil, is called after each candidate is processed
	// with the number of processed and valid candidates so far and the best
	// score seen so far: the lowest predicted seconds for the model-based
	// tuner, the lowest measured seconds for the black-box tuner, 0 while no
	// valid candidate exists. It is always invoked from a single goroutine.
	Progress func(done, valid int, best float64)
	// Faults, when non-nil, is threaded into every measurement (exec.Run
	// and the simulated machine) so fault-injection tests can exercise the
	// recovery paths below. Nil in production.
	Faults *faults.Injector
	// Retry is the backoff policy for transient measurement errors
	// (errors carrying faults.ErrTransient). The zero value retries
	// nothing.
	Retry Retry
	// MaxCandidateFailures aborts the search once more than this many
	// candidates have failed (panicked or exhausted their retries) — a
	// circuit breaker against a systematically broken environment.
	// 0 means unlimited: failures are recorded and skipped forever.
	MaxCandidateFailures int
	// Metrics, when non-nil, receives tuning instrumentation: candidate
	// counts (autotune_candidates_total / _valid_total / _failed_total),
	// retry activity (autotune_retries_total, autotune_backoff_seconds),
	// the best-score trajectory (autotune_best_predicted_seconds,
	// autotune_best_measured_seconds), per-stage wall clocks and the
	// simulated-machine-time ledger. It is also threaded into every
	// measurement's exec.Options.
	Metrics *metrics.Registry
	// Observer, when non-nil, receives the structured event log of the
	// search — tune.start/finish, candidate start/finish/retry/panic/failed
	// with strategy and predicted/measured milliseconds, finalist runs —
	// and registers the search as a live job in the observer's JobTracker
	// (done/valid/failed/best-ms visible on /statusz while the search
	// runs). Purely observational: attaching an observer changes neither
	// the selected schedule nor any metric (the bit-identical-snapshots
	// invariant is asserted by TestObserverInert).
	Observer *obsrv.Observer

	// Searcher, when non-nil, switches ModelBasedCtx from the exhaustive
	// estimate-everything walk to sample-efficient search (internal/search):
	// the searcher proposes candidates, an online model predicts them, and
	// only the top predictions are measured. Nil keeps the exhaustive walk
	// bit-identical to its historical behaviour.
	Searcher search.Searcher
	// SearchBudget is the fraction of the candidate space the searcher may
	// measure (0 defaults to 0.10). Ignored without a Searcher.
	SearchBudget float64
	// SearchSeed seeds the searcher's RNG. 0 derives a stable seed from
	// the operator name, so repeated runs of the same shape reproduce.
	// Ignored without a Searcher.
	SearchSeed uint64
	// Transfer, when non-nil alongside a Searcher, donates search seeds:
	// the cached winners of the nearest already-tuned shapes of the same
	// operator family (cache.Library.Nearest) are mapped into this space
	// and start the population.
	Transfer *cache.Library

	// job is the live job the public entry points register; internal so
	// runPool's collector — the only place that knows the failed count —
	// can update it without re-deriving state.
	job *obsrv.Job
}

func (o Options) topK() int {
	if o.TopK > 0 {
		return o.TopK
	}
	return TopK
}

// Retry is a capped exponential backoff policy for transient measurement
// errors: attempt i (1-based) sleeps BaseDelay·2^(i-1), capped at MaxDelay,
// with deterministic ±25 % jitter derived from the candidate index — so
// retry timing never introduces run-to-run nondeterminism.
type Retry struct {
	// Attempts is the total number of tries per measurement; values <= 1
	// mean a single try (no retry).
	Attempts int
	// BaseDelay is the first retry's sleep (default 1ms when retrying).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 250ms).
	MaxDelay time.Duration
}

func (r Retry) attempts() int {
	if r.Attempts < 1 {
		return 1
	}
	return r.Attempts
}

// delay computes the backoff before retry number `attempt` (1-based count
// of failures so far) of candidate idx.
func (r Retry) delay(attempt, idx int) time.Duration {
	base := r.BaseDelay
	if base <= 0 {
		base = time.Millisecond
	}
	max := r.MaxDelay
	if max <= 0 {
		max = 250 * time.Millisecond
	}
	d := base << uint(attempt-1)
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	// Full determinism: jitter is a hash of (idx, attempt), not a random
	// draw. Spread over [0.75d, 1.25d].
	h := uint64(idx)*0x9e3779b97f4a7c15 + uint64(attempt)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	frac := float64(h%1024) / 1024 // [0,1)
	return time.Duration(float64(d) * (0.75 + 0.5*frac))
}

// CandidateError is one candidate's contained evaluation failure: a panic
// during compile/estimate/run, or a transient measurement error that
// survived every retry. The tuner records it, skips the candidate and
// keeps searching; it never aborts the pool.
type CandidateError struct {
	// Index is the candidate's stable enumeration index.
	Index int
	// Strategy is the schedule that failed.
	Strategy dsl.Strategy
	// Panicked distinguishes a recovered panic from an exhausted retry.
	Panicked bool
	// Err is the underlying error (for a panic, the recovered value).
	Err error
}

func (e *CandidateError) Error() string {
	kind := "failed"
	if e.Panicked {
		kind = "panicked"
	}
	return fmt.Sprintf("candidate %d (%s) %s: %v", e.Index, e.Strategy, kind, e.Err)
}

func (e *CandidateError) Unwrap() error { return e.Err }

// evalOnce compiles and evaluates one schedule point with panic isolation:
// any panic reachable from lowering, simulation or estimation (ir division
// by zero, tensor index violations, machine invariants, ...) is converted
// into an error instead of unwinding through the worker pool.
func evalOnce(op Operator, st dsl.Strategy, eval func(*Candidate) error) (c *Candidate, err error, panicked bool) {
	defer func() {
		if r := recover(); r != nil {
			c, panicked = nil, true
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	prog, cerr := op.Compile(st)
	if cerr != nil {
		return nil, nil, false // invalid point (capacity, layout rules, ...)
	}
	cand := &Candidate{Strategy: st, Program: prog}
	if everr := eval(cand); everr != nil {
		return nil, everr, false
	}
	return cand, nil, false
}

// evalCandidate is evalOnce plus the failure policy: panics become
// per-candidate errors immediately; transient errors are retried under the
// backoff policy and become per-candidate errors when exhausted; anything
// else stays fatal (the seed behaviour for e.g. cost-model failures).
func evalCandidate(op Operator, idx int, st dsl.Strategy,
	eval func(*Candidate) error, opts Options) (*Candidate, error) {
	if opts.Observer.Enabled() {
		opts.Observer.Emit(obsrv.LevelDebug, "candidate.start",
			obsrv.F("index", idx), obsrv.F("strategy", st.String()))
	}
	for attempt := 1; ; attempt++ {
		c, err, panicked := evalOnce(op, st, eval)
		switch {
		case err == nil:
			return c, nil // c may be nil: invalid point
		case panicked:
			opts.Metrics.Counter("autotune_candidates_failed_total").Inc()
			opts.Observer.Emit(obsrv.LevelError, "candidate.panic",
				obsrv.F("index", idx), obsrv.F("strategy", st.String()), obsrv.F("error", err))
			return nil, &CandidateError{Index: idx, Strategy: st, Panicked: true, Err: err}
		case faults.IsTransient(err):
			if attempt < opts.Retry.attempts() {
				d := opts.Retry.delay(attempt, idx)
				opts.Metrics.Counter("autotune_retries_total").Inc()
				opts.Metrics.Gauge("autotune_backoff_seconds").Add(d.Seconds())
				opts.Observer.Emit(obsrv.LevelWarn, "candidate.retry",
					obsrv.F("index", idx), obsrv.F("attempt", attempt),
					obsrv.Ms("backoff_ms", d.Seconds()), obsrv.F("error", err))
				time.Sleep(d)
				continue
			}
			opts.Metrics.Counter("autotune_candidates_failed_total").Inc()
			opts.Observer.Emit(obsrv.LevelWarn, "candidate.failed",
				obsrv.F("index", idx), obsrv.F("strategy", st.String()), obsrv.F("error", err))
			return nil, &CandidateError{Index: idx, Strategy: st, Err: err}
		default:
			return nil, err
		}
	}
}

// ModelBased runs swATOP's performance-model autotuner sequentially:
// estimate every valid candidate, run the top-k predictions, keep the
// measured best.
func ModelBased(op Operator, model *costmodel.GemmModel) (Result, error) {
	return ModelBasedCtx(context.Background(), op, model, Options{})
}

// ModelBasedCtx is ModelBased with cancellation and a worker pool: workers
// pull (index, strategy) pairs off the streaming enumerator, compile and
// estimate independently, and a deterministic merge keeps the k best
// predictions ordered by (predicted, index) — so the tuned schedule is
// identical for any Workers value.
func ModelBasedCtx(ctx context.Context, op Operator, model *costmodel.GemmModel, opts Options) (Result, error) {
	if opts.Searcher != nil {
		return searchBased(ctx, op, model, opts)
	}
	t0 := time.Now()
	opts.job = opts.Observer.Jobs().Start("tune", op.Name())
	opts.Observer.Emit(obsrv.LevelInfo, "tune.start", obsrv.F("op", op.Name()))
	ok := false
	defer func() {
		if !ok {
			opts.job.Finish(obsrv.JobFailed)
		}
	}()
	k := opts.topK()
	var top []ranked // ascending by (Predicted, idx), at most k
	done, valid := 0, 0
	sink := func(idx int, c *Candidate, failed int) {
		done++
		opts.Metrics.Counter("autotune_candidates_total").Inc()
		best := 0.0
		if c != nil {
			valid++
			opts.Metrics.Counter("autotune_candidates_valid_total").Inc()
			top = insertRanked(top, ranked{c: c, idx: idx}, k)
			opts.Metrics.Gauge("autotune_best_predicted_seconds").Set(top[0].c.Predicted)
		}
		if len(top) > 0 {
			best = top[0].c.Predicted
		}
		if c != nil && opts.Observer.Enabled() {
			opts.Observer.Emit(obsrv.LevelDebug, "candidate.finish",
				obsrv.F("index", idx), obsrv.F("strategy", c.Strategy.String()),
				obsrv.Ms("predicted_ms", c.Predicted))
		}
		opts.job.Progress(done, valid, failed, best*1e3)
		if opts.Progress != nil {
			opts.Progress(done, valid, best)
		}
	}
	eval := func(c *Candidate) error {
		est, err := costmodel.EstimateProgram(model, c.Program)
		if err != nil {
			return fmt.Errorf("estimate %s: %w", c.Strategy, err)
		}
		c.Predicted = est.Total()
		return nil
	}
	spaceSize, failed, err := runPool(ctx, op, opts, eval, sink)
	opts.Metrics.Counter("autotune_space_points_total").Add(int64(spaceSize))
	searchWall := time.Since(t0).Seconds()
	opts.Metrics.Gauge("autotune_search_wall_seconds").Add(searchWall)
	if err != nil {
		opts.Observer.Emit(obsrv.LevelError, "tune.fail",
			obsrv.F("op", op.Name()), obsrv.F("error", err))
		return Result{}, err
	}
	res := Result{SpaceSize: spaceSize, Valid: valid, FailedCandidates: failed}
	if len(top) == 0 {
		err := fmt.Errorf("autotune %s: no valid schedule in space of %d (%d candidates failed)",
			op.Name(), spaceSize, failed)
		opts.Observer.Emit(obsrv.LevelError, "tune.fail",
			obsrv.F("op", op.Name()), obsrv.F("error", err))
		return Result{}, err
	}
	tFinal := time.Now()
	opts.job.SetDetail("finalists")
	// The k finalists are emitted into one binary and measured in a single
	// batch job: one compile+launch, k short runs. Each run goes through
	// the same panic-isolation + retry policy as the search: a finalist
	// that cannot be measured is skipped, and only measuring *no* finalist
	// is an error.
	res.MachineSeconds = CompileLaunchOverheadSeconds
	runEval := func(c *Candidate) error {
		secs, err := runTimed(c.Program, opts.Faults, opts.Metrics, opts.Observer)
		if err != nil {
			return err
		}
		c.Measured = secs
		return nil
	}
	var best *Candidate
	for _, r := range top {
		c, err := evalCandidate(op, r.idx, r.c.Strategy, runEval, opts)
		if err != nil {
			var ce *CandidateError
			if errors.As(err, &ce) {
				res.FailedCandidates++
				continue
			}
			err = fmt.Errorf("autotune %s: candidate failed to run: %w", op.Name(), err)
			opts.Observer.Emit(obsrv.LevelError, "tune.fail",
				obsrv.F("op", op.Name()), obsrv.F("error", err))
			return Result{}, err
		}
		if c == nil {
			// Compiled during the search but not for the final run — a
			// nondeterministic operator; contain it like any failure.
			res.FailedCandidates++
			continue
		}
		c.Predicted = r.c.Predicted
		res.MachineSeconds += c.Measured
		if opts.Observer.Enabled() {
			opts.Observer.Emit(obsrv.LevelInfo, "finalist.run",
				obsrv.F("index", r.idx), obsrv.F("strategy", c.Strategy.String()),
				obsrv.Ms("predicted_ms", c.Predicted), obsrv.Ms("measured_ms", c.Measured))
		}
		if best == nil || c.Measured < best.Measured {
			best = c
		}
	}
	if best == nil {
		err := fmt.Errorf("autotune %s: all %d finalists failed to run", op.Name(), len(top))
		opts.Observer.Emit(obsrv.LevelError, "tune.fail",
			obsrv.F("op", op.Name()), obsrv.F("error", err))
		return Result{}, err
	}
	res.Best = *best
	res.WallSeconds = time.Since(t0).Seconds()
	opts.Metrics.Gauge("autotune_finalist_wall_seconds").Add(time.Since(tFinal).Seconds())
	opts.Metrics.Gauge("autotune_best_measured_seconds").Set(best.Measured)
	opts.Metrics.Gauge("autotune_machine_seconds").Add(res.MachineSeconds)
	if opts.Observer.Enabled() {
		opts.Observer.Emit(obsrv.LevelInfo, "tune.finish",
			obsrv.F("op", op.Name()), obsrv.F("valid", res.Valid),
			obsrv.F("failed", res.FailedCandidates),
			obsrv.F("strategy", best.Strategy.String()),
			obsrv.Ms("best_ms", best.Measured),
			obsrv.F("machine_seconds", res.MachineSeconds))
	}
	opts.job.Progress(done, valid, res.FailedCandidates, best.Measured*1e3)
	opts.job.Finish(obsrv.JobDone)
	ok = true
	return res, nil
}

// BlackBox runs every valid candidate on the simulator and picks the
// measured best — the brute-force baseline.
func BlackBox(op Operator) (Result, error) {
	return BlackBoxCtx(context.Background(), op, Options{})
}

// BlackBoxCtx is BlackBox with cancellation and a worker pool. The winner
// is merged by (measured, index) and the machine-time ledger is summed in
// index order, so both are identical for any Workers value.
func BlackBoxCtx(ctx context.Context, op Operator, opts Options) (Result, error) {
	t0 := time.Now()
	opts.job = opts.Observer.Jobs().Start("tune", op.Name())
	opts.job.SetDetail("blackbox")
	opts.Observer.Emit(obsrv.LevelInfo, "tune.start",
		obsrv.F("op", op.Name()), obsrv.F("mode", "blackbox"))
	okDone := false
	defer func() {
		if !okDone {
			opts.job.Finish(obsrv.JobFailed)
		}
	}()
	type run struct {
		idx  int
		secs float64
	}
	var runs []run
	var best ranked
	done := 0
	sink := func(idx int, c *Candidate, failed int) {
		done++
		opts.Metrics.Counter("autotune_candidates_total").Inc()
		if c != nil {
			runs = append(runs, run{idx: idx, secs: c.Measured})
			opts.Metrics.Counter("autotune_candidates_valid_total").Inc()
			if best.c == nil || c.Measured < best.c.Measured ||
				(c.Measured == best.c.Measured && idx < best.idx) {
				best = ranked{c: c, idx: idx}
			}
			opts.Metrics.Gauge("autotune_best_measured_seconds").Set(best.c.Measured)
		}
		b := 0.0
		if best.c != nil {
			b = best.c.Measured
		}
		if c != nil && opts.Observer.Enabled() {
			opts.Observer.Emit(obsrv.LevelDebug, "candidate.finish",
				obsrv.F("index", idx), obsrv.F("strategy", c.Strategy.String()),
				obsrv.Ms("measured_ms", c.Measured))
		}
		opts.job.Progress(done, len(runs), failed, b*1e3)
		if opts.Progress != nil {
			opts.Progress(done, len(runs), b)
		}
	}
	eval := func(c *Candidate) error {
		secs, err := runTimed(c.Program, opts.Faults, opts.Metrics, opts.Observer)
		if err != nil {
			// %w keeps the transient mark visible to the retry policy.
			return fmt.Errorf("%s: %w", c.Strategy, err)
		}
		c.Measured = secs
		return nil
	}
	spaceSize, failed, err := runPool(ctx, op, opts, eval, sink)
	opts.Metrics.Counter("autotune_space_points_total").Add(int64(spaceSize))
	if err != nil {
		err = fmt.Errorf("blackbox %s: %w", op.Name(), err)
		opts.Observer.Emit(obsrv.LevelError, "tune.fail",
			obsrv.F("op", op.Name()), obsrv.F("error", err))
		return Result{}, err
	}
	if best.c == nil {
		err := fmt.Errorf("blackbox %s: no valid schedule (%d candidates failed)", op.Name(), failed)
		opts.Observer.Emit(obsrv.LevelError, "tune.fail",
			obsrv.F("op", op.Name()), obsrv.F("error", err))
		return Result{}, err
	}
	res := Result{SpaceSize: spaceSize, Valid: len(runs), FailedCandidates: failed}
	// Sum the ledger in enumeration order: float addition is not
	// associative, and MachineSeconds must not depend on worker timing.
	sort.Slice(runs, func(i, j int) bool { return runs[i].idx < runs[j].idx })
	for _, r := range runs {
		res.MachineSeconds += CompileLaunchOverheadSeconds + r.secs
	}
	res.Best = *best.c
	res.WallSeconds = time.Since(t0).Seconds()
	opts.Metrics.Gauge("autotune_search_wall_seconds").Add(res.WallSeconds)
	opts.Metrics.Gauge("autotune_machine_seconds").Add(res.MachineSeconds)
	if opts.Observer.Enabled() {
		opts.Observer.Emit(obsrv.LevelInfo, "tune.finish",
			obsrv.F("op", op.Name()), obsrv.F("mode", "blackbox"),
			obsrv.F("valid", res.Valid), obsrv.F("failed", res.FailedCandidates),
			obsrv.F("strategy", res.Best.Strategy.String()),
			obsrv.Ms("best_ms", res.Best.Measured),
			obsrv.F("machine_seconds", res.MachineSeconds))
	}
	opts.job.Progress(done, res.Valid, res.FailedCandidates, res.Best.Measured*1e3)
	opts.job.Finish(obsrv.JobDone)
	okDone = true
	return res, nil
}

// ranked is a candidate with its stable enumeration index — the merge key
// that makes parallel selection reproduce the sequential walk exactly.
type ranked struct {
	c   *Candidate
	idx int
}

// insertRanked inserts r into the ascending (Predicted, idx) order of top,
// keeping at most k entries. Processing candidates in any arrival order
// yields the same final top-k as the sequential stable insertion.
func insertRanked(top []ranked, r ranked, k int) []ranked {
	pos := len(top)
	for pos > 0 && (top[pos-1].c.Predicted > r.c.Predicted ||
		(top[pos-1].c.Predicted == r.c.Predicted && top[pos-1].idx > r.idx)) {
		pos--
	}
	if pos >= k {
		return top
	}
	top = append(top, ranked{})
	copy(top[pos+1:], top[pos:])
	top[pos] = r
	if len(top) > k {
		top = top[:k]
	}
	return top
}

// poolResult is one candidate's outcome crossing from a worker back to the
// collector. cand is nil when the point failed to compile (invalid).
type poolResult struct {
	idx  int
	cand *Candidate
	err  error
}

// runPool streams the operator's schedule space through Options.Workers
// goroutines. Each point is compiled; valid candidates are passed to eval
// on the worker, and every processed point is delivered to sink on the
// collector goroutine (so sink needs no locking). Per-candidate failures
// (recovered panics, exhausted transient retries — see evalCandidate) are
// recorded and skipped; any other evaluation error is fatal. Returns the
// number of enumerated points, the number of failed candidates, and the
// first (lowest-index) fatal error, if any.
func runPool(ctx context.Context, op Operator, opts Options,
	eval func(c *Candidate) error, sink func(idx int, c *Candidate, failed int)) (int, int, error) {
	if opts.Workers < 2 {
		return runSequential(ctx, op, opts, eval, sink)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type job struct {
		idx int
		st  dsl.Strategy
	}
	jobs := make(chan job, opts.Workers)
	results := make(chan poolResult, opts.Workers)

	total := 0
	var streamErr error
	prodDone := make(chan struct{})
	go func() {
		defer close(prodDone)
		defer close(jobs)
		streamErr = schedule.Stream(op.Seed(), op.Space(), func(idx int, st dsl.Strategy) bool {
			select {
			case jobs <- job{idx: idx, st: st}:
				total = idx + 1
				return true
			case <-ctx.Done():
				return false
			}
		})
	}()

	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				if ctx.Err() != nil {
					continue // drain after cancellation
				}
				c, err := evalCandidate(op, j.idx, j.st, eval, opts)
				select {
				case results <- poolResult{idx: j.idx, cand: c, err: err}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var firstErr error
	firstErrIdx := -1
	failed := 0
	fatal := func(idx int, err error) {
		// Keep the lowest-index error so failures are reported
		// deterministically, then stop feeding the pool.
		if firstErr == nil || idx < firstErrIdx {
			firstErr, firstErrIdx = err, idx
		}
		cancel()
	}
	for r := range results {
		if r.err != nil {
			var ce *CandidateError
			if errors.As(r.err, &ce) {
				failed++
				if exceeded := opts.MaxCandidateFailures > 0 &&
					failed > opts.MaxCandidateFailures; exceeded {
					fatal(r.idx, fmt.Errorf("%d candidate failures exceed limit %d, last: %w",
						failed, opts.MaxCandidateFailures, r.err))
					continue
				}
				if firstErr == nil {
					sink(r.idx, nil, failed)
				}
				continue
			}
			fatal(r.idx, r.err)
			continue
		}
		if firstErr == nil {
			sink(r.idx, r.cand, failed)
		}
	}
	<-prodDone
	if firstErr != nil {
		return 0, failed, firstErr
	}
	if streamErr != nil {
		return 0, failed, streamErr
	}
	if err := ctx.Err(); err != nil {
		return 0, failed, err
	}
	return total, failed, nil
}

// runSequential is the single-goroutine pool: one pass over the stream,
// evaluating in place. The reference behaviour every worker count must
// reproduce, including the failure policy.
func runSequential(ctx context.Context, op Operator, opts Options,
	eval func(c *Candidate) error, sink func(idx int, c *Candidate, failed int)) (int, int, error) {
	total, failed := 0, 0
	var fatalErr error
	err := schedule.Stream(op.Seed(), op.Space(), func(idx int, st dsl.Strategy) bool {
		if ctx.Err() != nil {
			return false
		}
		total = idx + 1
		c, err := evalCandidate(op, idx, st, eval, opts)
		if err != nil {
			var ce *CandidateError
			if errors.As(err, &ce) {
				failed++
				if opts.MaxCandidateFailures > 0 && failed > opts.MaxCandidateFailures {
					fatalErr = fmt.Errorf("%d candidate failures exceed limit %d, last: %w",
						failed, opts.MaxCandidateFailures, err)
					return false
				}
				sink(idx, nil, failed)
				return true
			}
			fatalErr = err
			return false
		}
		sink(idx, c, failed) // c is nil for an invalid point (capacity, layout rules, ...)
		return true
	})
	if err != nil {
		return 0, failed, err
	}
	if fatalErr != nil {
		return 0, failed, fatalErr
	}
	if err := ctx.Err(); err != nil {
		return 0, failed, err
	}
	return total, failed, nil
}

func runTimed(prog *ir.Program, inj *faults.Injector, reg *metrics.Registry, obs *obsrv.Observer) (float64, error) {
	binds, err := exec.BindVirtual(prog)
	if err != nil {
		return 0, err
	}
	r, err := exec.Run(prog, binds, exec.Options{
		Functional: false, FastLoops: true,
		Faults: inj, Metrics: reg, Observer: obs,
	})
	if err != nil {
		return 0, err
	}
	return r.Seconds, nil
}
