// Package autotune implements swATOP's autotuner (§4.6) and the black-box
// baseline it is compared against (Table 3, Fig. 9).
//
// Both tuners walk the same schedule space and compile every candidate. The
// black-box tuner *runs* every candidate on the (simulated) machine and
// picks the measured best; the model-based tuner *predicts* every candidate
// with the static performance model and runs only its top pick. The ledger
// tracks both host wall time and consumed machine time — the latter charges
// the black-box tuner the per-candidate compile+launch overhead a real
// SW26010 batch system imposes, which is where "from days to minutes"
// comes from.
package autotune

import (
	"fmt"
	"time"

	"swatop/internal/costmodel"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/ir"
	"swatop/internal/schedule"
)

// CompileLaunchOverheadSeconds is the per-candidate cost of compiling,
// linking and launching one schedule on the real machine (batch queue and
// sw5cc invocation; ~40 s matches Table 3's hours-per-~400-candidates).
const CompileLaunchOverheadSeconds = 40.0

// Operator is anything tunable: it exposes its schedule seed and space and
// compiles one strategy into an executable program. Single-nest operators
// use core.Compile; multi-phase operators (Winograd, explicit convolution)
// compose their own programs.
type Operator interface {
	Name() string
	Seed() *dsl.Seed
	Space() *dsl.Space
	Compile(st dsl.Strategy) (*ir.Program, error)
}

// Candidate is one compiled schedule.
type Candidate struct {
	Strategy  dsl.Strategy
	Program   *ir.Program
	Predicted float64 // model estimate (model-based tuner)
	Measured  float64 // simulated run time (when run)
}

// Result reports a tuning session.
type Result struct {
	Best Candidate
	// SpaceSize is the number of raw schedule points; Valid is how many
	// compiled successfully (the paper's "space size" column).
	SpaceSize int
	Valid     int
	// WallSeconds is host time spent tuning.
	WallSeconds float64
	// MachineSeconds is simulated SW26010 time consumed: per-candidate
	// compile+launch+run for the black-box tuner, one launch for swATOP.
	MachineSeconds float64
}

// TopK is how many of the model's best predictions the tuner actually runs
// before picking the winner (§4.6: "predict and pick best (or top k)
// implementations"). Running a small k erases most of the model's residual
// ranking error at negligible machine cost.
const TopK = 3

// ModelBased runs swATOP's performance-model autotuner: estimate every
// valid candidate, run the top-k predictions, keep the measured best.
func ModelBased(op Operator, model *costmodel.GemmModel) (Result, error) {
	t0 := time.Now()
	strategies, err := schedule.Enumerate(op.Seed(), op.Space())
	if err != nil {
		return Result{}, err
	}
	res := Result{SpaceSize: len(strategies)}
	var top []*Candidate // ascending by prediction, at most TopK
	for _, st := range strategies {
		prog, err := op.Compile(st)
		if err != nil {
			continue // invalid point (capacity, layout rules, ...)
		}
		res.Valid++
		est, err := costmodel.EstimateProgram(model, prog)
		if err != nil {
			return Result{}, fmt.Errorf("estimate %s: %w", st, err)
		}
		c := &Candidate{Strategy: st, Program: prog, Predicted: est.Total()}
		pos := len(top)
		for pos > 0 && top[pos-1].Predicted > c.Predicted {
			pos--
		}
		if pos < TopK {
			top = append(top, nil)
			copy(top[pos+1:], top[pos:])
			top[pos] = c
			if len(top) > TopK {
				top = top[:TopK]
			}
		}
	}
	if len(top) == 0 {
		return Result{}, fmt.Errorf("autotune %s: no valid schedule in space of %d", op.Name(), len(strategies))
	}
	// The k finalists are emitted into one binary and measured in a single
	// batch job: one compile+launch, k short runs.
	res.MachineSeconds = CompileLaunchOverheadSeconds
	var best *Candidate
	for _, c := range top {
		secs, err := runTimed(c.Program)
		if err != nil {
			return Result{}, fmt.Errorf("autotune %s: candidate failed to run: %w", op.Name(), err)
		}
		c.Measured = secs
		res.MachineSeconds += secs
		if best == nil || c.Measured < best.Measured {
			best = c
		}
	}
	res.Best = *best
	res.WallSeconds = time.Since(t0).Seconds()
	return res, nil
}

// BlackBox runs every valid candidate on the simulator and picks the
// measured best — the brute-force baseline.
func BlackBox(op Operator) (Result, error) {
	t0 := time.Now()
	strategies, err := schedule.Enumerate(op.Seed(), op.Space())
	if err != nil {
		return Result{}, err
	}
	res := Result{SpaceSize: len(strategies)}
	var best *Candidate
	for _, st := range strategies {
		prog, err := op.Compile(st)
		if err != nil {
			continue
		}
		res.Valid++
		secs, err := runTimed(prog)
		if err != nil {
			return Result{}, fmt.Errorf("blackbox %s: %s: %w", op.Name(), st, err)
		}
		res.MachineSeconds += CompileLaunchOverheadSeconds + secs
		if best == nil || secs < best.Measured {
			best = &Candidate{Strategy: st, Program: prog, Measured: secs}
		}
	}
	if best == nil {
		return Result{}, fmt.Errorf("blackbox %s: no valid schedule", op.Name())
	}
	res.Best = *best
	res.WallSeconds = time.Since(t0).Seconds()
	return res, nil
}

func runTimed(prog *ir.Program) (float64, error) {
	binds, err := exec.BindVirtual(prog)
	if err != nil {
		return 0, err
	}
	r, err := exec.Run(prog, binds, exec.Options{Functional: false, FastLoops: true})
	if err != nil {
		return 0, err
	}
	return r.Seconds, nil
}
