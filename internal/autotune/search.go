// search.go is the sample-efficient tuning path: ModelBasedCtx with
// Options.Searcher set delegates here instead of walking the whole space.
// This file owns everything the searcher must not know about — schedule
// compilation, the analytic cost model, the measurement worker pool with
// its panic isolation and retry policy, transfer seeding from the cache
// library, and the metrics/obsrv instrumentation — and hands the searcher a
// pure search.Problem over the mixed-radix index space.
package autotune

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"swatop/internal/costmodel"
	"swatop/internal/obsrv"
	"swatop/internal/schedule"
	"swatop/internal/search"
)

// DefaultSearchBudget is the fraction of the candidate space a searcher may
// measure when Options.SearchBudget is unset — the ROADMAP's "≤10% of the
// candidates" target.
const DefaultSearchBudget = 0.10

// TransferSeeds is how many nearest-neighbor cached winners seed the
// searcher's population when Options.Transfer is set.
const TransferSeeds = 3

// searchBased tunes op with the configured Searcher. The determinism
// contract of the exhaustive walk carries over: given (SearchSeed, budget)
// the chosen schedule and the measured-candidate ledger are bit-identical
// for every Workers value, because measurement batches are merged in index
// order before the searcher sees them.
func searchBased(ctx context.Context, op Operator, model *costmodel.GemmModel, opts Options) (Result, error) {
	t0 := time.Now()
	opts.job = opts.Observer.Jobs().Start("tune", op.Name())
	opts.job.SetDetail("search:" + opts.Searcher.Name())
	opts.Observer.Emit(obsrv.LevelInfo, "tune.start",
		obsrv.F("op", op.Name()), obsrv.F("mode", opts.Searcher.Name()))
	ok := false
	defer func() {
		if !ok {
			opts.job.Finish(obsrv.JobFailed)
		}
	}()

	dims, err := schedule.Describe(op.Seed(), op.Space())
	if err != nil {
		return Result{}, fmt.Errorf("autotune %s: %w", op.Name(), err)
	}
	size := dims.Size()
	frac := opts.SearchBudget
	if frac <= 0 {
		frac = DefaultSearchBudget
	}
	budget := search.BudgetFor(frac, size)
	opts.Metrics.Gauge("search_budget_candidates").Set(float64(budget))
	opts.Metrics.Counter("autotune_space_points_total").Add(int64(size))

	seed := opts.SearchSeed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(op.Name()))
		seed = h.Sum64()
	}

	// Transfer: cached winners of the nearest same-family shapes land on
	// the closest legal points of this space and start the population.
	var seeds []int
	if opts.Transfer != nil {
		for _, e := range opts.Transfer.Nearest(op.Name(), TransferSeeds) {
			seeds = append(seeds, dims.NearestIndex(e.Strategy()))
		}
		opts.Metrics.Counter("search_transfer_seeds_total").Add(int64(len(seeds)))
		if len(seeds) > 0 && opts.Observer.Enabled() {
			opts.Observer.Emit(obsrv.LevelDebug, "search.transfer",
				obsrv.F("op", op.Name()), obsrv.F("seeds", len(seeds)))
		}
	}

	// Eval: compile + analytic estimate + featurize, never run. Panics and
	// estimator errors make the point infeasible — the searcher routes
	// around it, same as a failed compile.
	evalPoint := func(idx int) (search.Point, bool) {
		st := dims.At(idx)
		var feat []float64
		var total float64
		c, everr, _ := evalOnce(op, st, func(c *Candidate) error {
			est, eerr := costmodel.EstimateProgram(model, c.Program)
			if eerr != nil {
				return eerr
			}
			total = est.Total()
			feat = search.Features(op.Seed(), st, c.Program, est)
			return nil
		})
		if everr != nil || c == nil {
			return search.Point{}, false
		}
		return search.Point{Index: idx, Features: feat, Estimate: total}, true
	}

	// Measure: one batch = one compile+launch overhead charge plus the
	// measured runs, parallel across Workers, merged in index order so the
	// ledger (and every downstream model fit) is worker-count-invariant.
	var (
		machine  = 0.0
		failed   = 0
		fatalErr error
		mu       sync.Mutex
	)
	measureBatch := func(indices []int) []search.Measured {
		if fatalErr != nil || ctx.Err() != nil || len(indices) == 0 {
			return nil
		}
		machine += CompileLaunchOverheadSeconds
		out := make([]search.Measured, 0, len(indices))
		workers := opts.Workers
		if workers < 1 {
			workers = 1
		}
		if workers > len(indices) {
			workers = len(indices)
		}
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for idx := range jobs {
					c, cerr := evalCandidate(op, idx, dims.At(idx), func(c *Candidate) error {
						secs, rerr := runTimed(c.Program, opts.Faults, opts.Metrics, opts.Observer)
						if rerr != nil {
							return rerr
						}
						c.Measured = secs
						return nil
					}, opts)
					mu.Lock()
					switch {
					case cerr != nil:
						var ce *CandidateError
						if errors.As(cerr, &ce) {
							failed++
							if opts.MaxCandidateFailures > 0 && failed > opts.MaxCandidateFailures {
								fatalErr = fmt.Errorf("%d candidate failures exceed limit %d, last: %w",
									failed, opts.MaxCandidateFailures, cerr)
							}
						} else if fatalErr == nil {
							fatalErr = cerr
						}
					case c != nil:
						opts.Metrics.Counter("autotune_candidates_total").Inc()
						opts.Metrics.Counter("autotune_candidates_valid_total").Inc()
						out = append(out, search.Measured{Index: idx, Seconds: c.Measured})
					default:
						// Evaluated as feasible but no longer compiles — a
						// nondeterministic operator; contain like a failure.
						failed++
					}
					mu.Unlock()
				}
			}()
		}
		for _, idx := range indices {
			jobs <- idx
		}
		close(jobs)
		wg.Wait()
		sort.Slice(out, func(i, j int) bool { return out[i].Index < out[j].Index })
		for _, m := range out {
			machine += m.Seconds
		}
		return out
	}

	// Report: per-round metrics deltas, the live job, the Progress callback
	// and the search.round / search.converged event stream.
	var lastProposed, lastMeasured, lastPruned int64
	report := func(ri search.RoundInfo) {
		opts.Metrics.Counter("search_rounds_total").Inc()
		opts.Metrics.Counter("search_candidates_proposed_total").Add(int64(ri.Proposed) - lastProposed)
		opts.Metrics.Counter("search_candidates_measured_total").Add(int64(ri.MeasuredN) - lastMeasured)
		opts.Metrics.Counter("search_candidates_pruned_total").Add(int64(ri.Pruned) - lastPruned)
		lastProposed, lastMeasured, lastPruned = int64(ri.Proposed), int64(ri.MeasuredN), int64(ri.Pruned)
		opts.Metrics.Gauge("search_model_mae_seconds").Set(ri.ModelMAE)
		if ri.BestIndex >= 0 {
			opts.Metrics.Gauge("autotune_best_measured_seconds").Set(ri.BestSeconds)
		}
		mu.Lock()
		f := failed
		mu.Unlock()
		opts.job.Progress(ri.Proposed, ri.MeasuredN, f, ri.BestSeconds*1e3)
		if opts.Progress != nil {
			opts.Progress(ri.Proposed, ri.MeasuredN, ri.BestSeconds)
		}
		if opts.Observer.Enabled() {
			opts.Observer.Emit(obsrv.LevelDebug, "search.round",
				obsrv.F("op", op.Name()), obsrv.F("round", ri.Round),
				obsrv.F("proposed", ri.Proposed), obsrv.F("measured", ri.MeasuredN),
				obsrv.F("pruned", ri.Pruned), obsrv.F("best_index", ri.BestIndex),
				obsrv.Ms("best_ms", ri.BestSeconds), obsrv.Ms("model_mae_ms", ri.ModelMAE))
			if ri.Converged {
				opts.Observer.Emit(obsrv.LevelInfo, "search.converged",
					obsrv.F("op", op.Name()), obsrv.F("rounds", ri.Round),
					obsrv.F("measured", ri.MeasuredN), obsrv.Ms("best_ms", ri.BestSeconds))
			}
		}
	}

	sres, serr := opts.Searcher.Search(&search.Problem{
		Radices: dims.Radices(),
		Size:    size,
		Budget:  budget,
		Seed:    seed,
		Seeds:   seeds,
		Eval:    evalPoint,
		Measure: measureBatch,
		Report:  report,
	})
	if fatalErr != nil {
		serr = fatalErr
	} else if serr == nil {
		serr = ctx.Err()
	}
	if serr != nil {
		serr = fmt.Errorf("autotune %s (%s): %w", op.Name(), opts.Searcher.Name(), serr)
		opts.Observer.Emit(obsrv.LevelError, "tune.fail",
			obsrv.F("op", op.Name()), obsrv.F("error", serr))
		return Result{}, serr
	}

	// Rebuild the winning candidate (the searcher only tracks indices).
	st := dims.At(sres.BestIndex)
	pt, _ := evalPoint(sres.BestIndex)
	prog, cerr := op.Compile(st)
	if cerr != nil {
		return Result{}, fmt.Errorf("autotune %s: recompile winner %s: %w", op.Name(), st, cerr)
	}
	res := Result{
		Best:             Candidate{Strategy: st, Program: prog, Predicted: pt.Estimate, Measured: sres.BestSeconds},
		SpaceSize:        size,
		Valid:            len(sres.Ledger),
		FailedCandidates: failed,
		MachineSeconds:   machine,
		Proposed:         sres.Proposed,
		Measured:         len(sres.Ledger),
		Rounds:           sres.Rounds,
		Converged:        sres.Converged,
		WallSeconds:      time.Since(t0).Seconds(),
	}
	opts.Metrics.Gauge("autotune_search_wall_seconds").Add(res.WallSeconds)
	opts.Metrics.Gauge("autotune_best_measured_seconds").Set(res.Best.Measured)
	opts.Metrics.Gauge("autotune_machine_seconds").Add(res.MachineSeconds)
	if opts.Observer.Enabled() {
		opts.Observer.Emit(obsrv.LevelInfo, "tune.finish",
			obsrv.F("op", op.Name()), obsrv.F("mode", opts.Searcher.Name()),
			obsrv.F("valid", res.Valid), obsrv.F("failed", res.FailedCandidates),
			obsrv.F("proposed", res.Proposed), obsrv.F("rounds", res.Rounds),
			obsrv.F("space", size), obsrv.F("strategy", st.String()),
			obsrv.Ms("best_ms", res.Best.Measured),
			obsrv.F("machine_seconds", res.MachineSeconds))
	}
	opts.job.Progress(res.Proposed, res.Valid, res.FailedCandidates, res.Best.Measured*1e3)
	opts.job.Finish(obsrv.JobDone)
	ok = true
	return res, nil
}
