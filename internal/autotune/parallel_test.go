package autotune

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"swatop/internal/conv"
	"swatop/internal/gemm"
	"swatop/internal/tensor"
)

// sameResult asserts the parallel tuner reproduced the sequential reference
// bit-for-bit: schedule, measured/predicted times, the machine-time ledger
// and the candidate accounting.
func sameResult(t *testing.T, label string, seq, par Result) {
	t.Helper()
	if seq.Best.Strategy.String() != par.Best.Strategy.String() {
		t.Fatalf("%s: schedules differ:\nseq %s\npar %s",
			label, seq.Best.Strategy, par.Best.Strategy)
	}
	if seq.Best.Measured != par.Best.Measured {
		t.Fatalf("%s: measured %v vs %v", label, seq.Best.Measured, par.Best.Measured)
	}
	if seq.Best.Predicted != par.Best.Predicted {
		t.Fatalf("%s: predicted %v vs %v", label, seq.Best.Predicted, par.Best.Predicted)
	}
	if seq.MachineSeconds != par.MachineSeconds {
		t.Fatalf("%s: machine seconds %v vs %v — simulated time must not depend on host parallelism",
			label, seq.MachineSeconds, par.MachineSeconds)
	}
	if seq.Valid != par.Valid || seq.SpaceSize != par.SpaceSize {
		t.Fatalf("%s: accounting differs: valid %d/%d vs %d/%d",
			label, seq.Valid, seq.SpaceSize, par.Valid, par.SpaceSize)
	}
}

func TestModelBasedWorkerCountInvariance(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 256, N: 256, K: 256})
	seq, err := ModelBasedCtx(context.Background(), op, model(t), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		par, err := ModelBasedCtx(context.Background(), op, model(t), Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("workers=%d", w), seq, par)
	}
}

func TestModelBasedWorkerCountInvarianceConv(t *testing.T) {
	s := tensor.ConvShape{B: 4, Ni: 32, No: 32, Ro: 8, Co: 8, Kr: 3, Kc: 3}
	tune := func(workers int) Result {
		op, err := conv.NewImplicitOp(s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ModelBasedCtx(context.Background(), op, model(t), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sameResult(t, "conv workers=8", tune(1), tune(8))
}

func TestBlackBoxWorkerCountInvariance(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	seq, err := BlackBoxCtx(context.Background(), op, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := BlackBoxCtx(context.Background(), op, Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Best.Strategy.String() != par.Best.Strategy.String() {
		t.Fatalf("schedules differ:\nseq %s\npar %s", seq.Best.Strategy, par.Best.Strategy)
	}
	if seq.Best.Measured != par.Best.Measured || seq.MachineSeconds != par.MachineSeconds {
		t.Fatalf("ledger differs: measured %v/%v machine %v/%v",
			seq.Best.Measured, par.Best.Measured, seq.MachineSeconds, par.MachineSeconds)
	}
	if seq.Valid != par.Valid || seq.SpaceSize != par.SpaceSize {
		t.Fatalf("accounting differs: %d/%d vs %d/%d",
			seq.Valid, seq.SpaceSize, par.Valid, par.SpaceSize)
	}
}

func TestTuningCancellation(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ModelBasedCtx(ctx, op, model(t), Options{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel model-based: want context.Canceled, got %v", err)
	}
	if _, err := ModelBasedCtx(ctx, op, model(t), Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential model-based: want context.Canceled, got %v", err)
	}
	if _, err := BlackBoxCtx(ctx, op, Options{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel black-box: want context.Canceled, got %v", err)
	}
}

func TestProgressReportsEveryCandidate(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	var dones []int
	lastValid := 0
	lastBest := 0.0
	res, err := ModelBasedCtx(context.Background(), op, model(t), Options{
		Workers: 4,
		Progress: func(done, valid int, best float64) {
			dones = append(dones, done)
			lastValid = valid
			if best > 0 && lastBest > 0 && best > lastBest {
				t.Errorf("best score went up: %g after %g", best, lastBest)
			}
			lastBest = best
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != res.SpaceSize {
		t.Fatalf("progress fired %d times for %d points", len(dones), res.SpaceSize)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done counter not monotone at call %d: %v", i, dones)
		}
	}
	if lastValid != res.Valid {
		t.Fatalf("final valid count %d, result says %d", lastValid, res.Valid)
	}
	if lastBest != res.Best.Predicted {
		t.Fatalf("final best %g, result predicted %g", lastBest, res.Best.Predicted)
	}
}

func TestOptionsTopKOverride(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 256, N: 256, K: 256})
	one, err := ModelBasedCtx(context.Background(), op, model(t), Options{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	def, err := ModelBased(op, model(t))
	if err != nil {
		t.Fatal(err)
	}
	// k=1 pays one launch plus a single run; the default pays TopK runs.
	if one.MachineSeconds >= def.MachineSeconds {
		t.Fatalf("TopK=1 machine time %v not below default %v",
			one.MachineSeconds, def.MachineSeconds)
	}
}
