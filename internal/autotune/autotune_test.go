package autotune

import (
	"testing"

	"swatop/internal/costmodel"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/schedule"
	"swatop/internal/tensor"
)

var cachedModel *costmodel.GemmModel

func model(t *testing.T) *costmodel.GemmModel {
	t.Helper()
	if cachedModel == nil {
		m, err := costmodel.FitGemmModel()
		if err != nil {
			t.Fatal(err)
		}
		cachedModel = m
	}
	return cachedModel
}

// smallOp trims the GEMM space so brute force stays fast in tests.
func smallOp(t *testing.T, p gemm.Params) *gemm.Op {
	t.Helper()
	op, err := gemm.NewOp(p)
	if err != nil {
		t.Fatal(err)
	}
	sp := op.Space()
	sp.Factors["m"] = []int{32, 64}
	sp.Factors["n"] = []int{32, 64}
	sp.Factors["k"] = []int{64, 128}
	sp.Orders = [][]string{{"m", "n", "k"}}
	sp.Layouts = map[string][][]int{"C": {{1, 0}}, "A": {{0, 1}, {1, 0}}, "B": {{0, 1}}}
	return op
}

func TestEnumerateDeterministicAndComplete(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	s1, err := schedule.Enumerate(op.Seed(), op.Space())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := schedule.Enumerate(op.Seed(), op.Space())
	if err != nil {
		t.Fatal(err)
	}
	// 2 m-factors × 2 n × 2 k × 1 order × 2 A-layouts × 2 vecs = 32
	if len(s1) != 32 {
		t.Fatalf("space size = %d, want 32", len(s1))
	}
	for i := range s1 {
		if s1[i].String() != s2[i].String() {
			t.Fatalf("enumeration not deterministic at %d", i)
		}
	}
}

func TestEnumerateClipsInvalidFactors(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 48, N: 48, K: 48})
	// Factor 64 > extent 48 must be dropped, leaving only 32.
	sts, err := schedule.Enumerate(op.Seed(), op.Space())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if st.Factors["m"] > 48 {
			t.Fatalf("factor beyond extent leaked: %v", st)
		}
	}
}

func TestEnumerateRejectsUnknownNames(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 64, N: 64, K: 64})
	op.Space().Factors["ghost"] = []int{2}
	if _, err := schedule.Enumerate(op.Seed(), op.Space()); err == nil {
		t.Fatal("unknown axis must be rejected")
	}
	delete(op.Space().Factors, "ghost")
	op.Space().Layouts["Ghost"] = [][]int{{0, 1}}
	if _, err := schedule.Enumerate(op.Seed(), op.Space()); err == nil {
		t.Fatal("unknown tensor must be rejected")
	}
}

func TestEnumerateSpaceGuard(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 4096, N: 4096, K: 4096})
	var huge []int
	for f := 1; f <= 600; f++ {
		huge = append(huge, f)
	}
	op.Space().Factors["m"] = huge
	op.Space().Factors["n"] = huge
	if _, err := schedule.Enumerate(op.Seed(), op.Space()); err == nil {
		t.Fatal("oversized space must trip the guard")
	}
}

func TestModelBasedFindsNearOptimal(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 256, N: 256, K: 256})
	bb, err := BlackBox(op)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := ModelBased(op, model(t))
	if err != nil {
		t.Fatal(err)
	}
	if bb.Valid != mb.Valid || bb.Valid == 0 {
		t.Fatalf("tuners disagree on valid candidates: %d vs %d", bb.Valid, mb.Valid)
	}
	// The paper's Fig. 9 claim: ≤8% loss vs brute force.
	loss := mb.Best.Measured/bb.Best.Measured - 1
	if loss > 0.08 {
		t.Fatalf("model-based pick loses %.1f%% vs brute force (model %.3g, best %.3g)",
			loss*100, mb.Best.Measured, bb.Best.Measured)
	}
	// And the machine-time ledger scales with the candidate count: the
	// black-box tuner pays per candidate, swATOP pays TopK launches (the
	// Table 3 gap is candidates/TopK at real space sizes of ~350-450).
	if ratio := bb.MachineSeconds / mb.MachineSeconds; ratio < float64(bb.Valid)/(2*TopK) {
		t.Fatalf("black-box/swATOP machine time ratio %.1f too small for %d candidates",
			ratio, bb.Valid)
	}
}

func TestModelBasedBestIsRunnableAndCorrect(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 100, N: 52, K: 40}) // boundary-heavy
	mb, err := ModelBased(op, model(t))
	if err != nil {
		t.Fatal(err)
	}
	prog := mb.Best.Program
	binds, err := gemm.Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(prog, binds, exec.Options{Functional: true}); err != nil {
		t.Fatalf("best candidate fails functionally: %v", err)
	}
	want, _ := tensor.ReferenceGemm(binds["A"], binds["B"], 1, 0)
	if d, _ := tensor.MaxAbsDiff(want, binds["C"]); d > 2e-2 {
		t.Fatalf("tuned program wrong by %g", d)
	}
}

func TestTunerSkipsInvalidCandidates(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 64, N: 64, K: 64})
	// Poison the space with an over-capacity factor and a misaligned one;
	// the tuner must skip them, not fail.
	op.Space().Factors["m"] = append(op.Space().Factors["m"], 63) // 63%4 != 0 for vecM
	mb, err := ModelBased(op, model(t))
	if err != nil {
		t.Fatal(err)
	}
	if mb.Valid >= mb.SpaceSize {
		t.Fatalf("expected pruning: valid %d of %d", mb.Valid, mb.SpaceSize)
	}
}

func TestBlackBoxOnEmptySpaceFails(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 64, N: 64, K: 64})
	op.Space().Vecs = []ir.VecDim{}
	if _, err := BlackBox(op); err == nil {
		t.Fatal("empty vec candidates must error")
	}
}

func TestStrategiesAreIndependent(t *testing.T) {
	op := smallOp(t, gemm.Params{M: 128, N: 128, K: 128})
	sts, err := schedule.Enumerate(op.Seed(), op.Space())
	if err != nil {
		t.Fatal(err)
	}
	sts[0].Factors["m"] = 999
	if sts[1].Factors["m"] == 999 {
		t.Fatal("strategies share factor maps")
	}
	_ = dsl.Strategy{}
}
