package costmodel

import (
	"fmt"

	"swatop/internal/ir"
	"swatop/internal/primitives"
	"swatop/internal/tensor"
)

// Estimate is the static performance prediction of a lowered+optimized
// program: T_DMA and T_compute accumulated separately, combined as
// T_overall = max(T_DMA, T_compute) (the paper's software-prefetching
// overlap assumption). DMABytes and DMATransactions tally the predicted
// traffic behind the DMA time — the schedule-candidate features the learned
// search model (internal/search) regresses over.
type Estimate struct {
	DMA     float64
	Compute float64
	// DMABytes is the predicted payload bytes moved by DMA (untouched by
	// transaction rounding).
	DMABytes float64
	// DMATransactions is the predicted count of memory transactions,
	// including misalignment and rounding waste per block.
	DMATransactions float64
}

// Total returns max(DMA, Compute).
func (e Estimate) Total() float64 {
	if e.DMA > e.Compute {
		return e.DMA
	}
	return e.Compute
}

// Estimator predicts program run time without executing it. Loops are
// evaluated at two points — the first and the last iteration — and interior
// iterations are assumed uniform with the first; this is exact for swATOP's
// lowered nests (only boundary tiles differ) and makes prediction cost
// logarithmic in the iteration count instead of linear, which is where the
// "days to minutes" tuning speedup (Table 3) comes from.
type Estimator struct {
	Model *GemmModel

	tensors map[string]*tensor.Tensor // virtual: shapes and strides only
	env     ir.Env
}

// NewEstimator prepares an estimator for a program's operand shapes.
func NewEstimator(model *GemmModel, p *ir.Program) (*Estimator, error) {
	est := &Estimator{Model: model, tensors: map[string]*tensor.Tensor{}, env: ir.Env{}}
	for _, d := range p.Tensors {
		layout := d.Layout
		if layout == nil {
			layout = make([]int, len(d.Dims))
			for i := range layout {
				layout[i] = i
			}
		}
		t, err := tensor.NewVirtual(d.Name, d.Dims, layout)
		if err != nil {
			return nil, err
		}
		est.tensors[d.Name] = t
	}
	return est, nil
}

// EstimateProgram predicts a whole program.
func EstimateProgram(model *GemmModel, p *ir.Program) (Estimate, error) {
	est, err := NewEstimator(model, p)
	if err != nil {
		return Estimate{}, err
	}
	return est.block(p.Body)
}

func (e *Estimator) block(body []ir.Stmt) (Estimate, error) {
	var acc Estimate
	for _, s := range body {
		st, err := e.stmt(s)
		if err != nil {
			return Estimate{}, err
		}
		acc.DMA += st.DMA
		acc.Compute += st.Compute
		acc.DMABytes += st.DMABytes
		acc.DMATransactions += st.DMATransactions
	}
	return acc, nil
}

func (e *Estimator) stmt(s ir.Stmt) (Estimate, error) {
	switch x := s.(type) {
	case *ir.Comment, *ir.AllocSPM, *ir.FreeSPM, *ir.DMAWait:
		// Waits are free under the perfect-overlap assumption.
		return Estimate{}, nil
	case *ir.Assign:
		e.env[x.Var] = x.Val.Eval(e.env)
		return Estimate{}, nil
	case *ir.If:
		if x.Cond.Eval(e.env) {
			return e.block(x.Then)
		}
		return e.block(x.Else)
	case *ir.For:
		return e.loop(x)
	case *ir.RegionMove:
		return e.dma(x)
	case *ir.DMAOp:
		return e.dma(&x.Move)
	case *ir.Gemm:
		m := int(x.M.Eval(e.env))
		n := int(x.N.Eval(e.env))
		k := int(x.K.Eval(e.env))
		return Estimate{Compute: e.Model.Predict(m, n, k, x.ATrans, x.BTrans, x.Vec)}, nil
	case *ir.Transform:
		return e.transform(x)
	}
	return Estimate{}, fmt.Errorf("estimator: unknown statement %T", s)
}

func (e *Estimator) loop(f *ir.For) (Estimate, error) {
	extent := f.Extent.Eval(e.env)
	if extent <= 0 {
		return Estimate{}, nil
	}
	saved, had := e.env[f.Iter]
	defer func() {
		if had {
			e.env[f.Iter] = saved
		} else {
			delete(e.env, f.Iter)
		}
	}()

	e.env[f.Iter] = 0
	first, err := e.block(f.Body)
	if err != nil {
		return Estimate{}, err
	}
	if extent == 1 {
		return first, nil
	}
	e.env[f.Iter] = extent - 1
	last, err := e.block(f.Body)
	if err != nil {
		return Estimate{}, err
	}
	interior := float64(extent - 1)
	return Estimate{
		DMA:             first.DMA*interior + last.DMA,
		Compute:         first.Compute*interior + last.Compute,
		DMABytes:        first.DMABytes*interior + last.DMABytes,
		DMATransactions: first.DMATransactions*interior + last.DMATransactions,
	}, nil
}

func (e *Estimator) dma(mv *ir.RegionMove) (Estimate, error) {
	t, ok := e.tensors[mv.Tensor]
	if !ok {
		return Estimate{}, fmt.Errorf("estimator: unknown tensor %q", mv.Tensor)
	}
	nd := t.Rank()
	start := make([]int, nd)
	extent := make([]int, nd)
	for d := 0; d < nd; d++ {
		start[d] = int(mv.Start[d].Eval(e.env))
		extent[d] = int(mv.Extent[d].Eval(e.env))
	}
	region, err := tensor.NewRegion(t, start, extent)
	if err != nil {
		return Estimate{}, fmt.Errorf("estimator: %s: %w", mv.Tensor, err)
	}
	blocks, err := region.FlattenMulti(t)
	if err != nil {
		return Estimate{}, err
	}
	bytes, txns := DMAStats(blocks)
	return Estimate{DMA: DMATime(blocks), DMABytes: float64(bytes), DMATransactions: float64(txns)}, nil
}

func (e *Estimator) transform(x *ir.Transform) (Estimate, error) {
	switch x.Kind {
	case ir.ZeroFill:
		return Estimate{Compute: primitives.ZeroFillTime(int(x.Args[0].Eval(e.env)))}, nil
	case ir.CopySPM:
		return Estimate{Compute: primitives.CopySPMTime(int(x.Args[0].Eval(e.env)))}, nil
	case ir.WinoInputTile, ir.WinoFilterTile, ir.WinoOutputTile:
		phase := map[ir.TransformKind]string{
			ir.WinoInputTile: "input", ir.WinoFilterTile: "filter", ir.WinoOutputTile: "output",
		}[x.Kind]
		t, err := primitives.WinoTransformTime(phase, int(x.Args[0].Eval(e.env)))
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Compute: t}, nil
	case ir.WinoInputSlab, ir.WinoOutputSlab:
		nslabs := int(x.Args[0].Eval(e.env))
		tilesC := int(x.Args[1].Eval(e.env))
		phase := "input"
		bIdx := 3
		if x.Kind == ir.WinoOutputSlab {
			phase = "output"
			bIdx = 2
		}
		b := int(x.Args[bIdx].Eval(e.env))
		t, err := primitives.WinoSlabTime(phase, nslabs*tilesC*b)
		if err != nil {
			return Estimate{}, err
		}
		return Estimate{Compute: t}, nil
	}
	return Estimate{}, fmt.Errorf("estimator: unknown transform %v", x.Kind)
}
