package costmodel

import (
	"math"
	"testing"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/primitives"
	"swatop/internal/tensor"
)

var fitted *GemmModel

func model(t *testing.T) *GemmModel {
	t.Helper()
	if fitted == nil {
		m, err := FitGemmModel()
		if err != nil {
			t.Fatal(err)
		}
		fitted = m
	}
	return fitted
}

func TestLeastSquaresRecoversExact(t *testing.T) {
	// y = 3a + 2b - c + 5 exactly.
	truth := [4]float64{3, 2, -1, 5}
	var rows [][4]float64
	var ys []float64
	for i := 0; i < 20; i++ {
		r := [4]float64{float64(i % 7), float64((i * 3) % 5), float64((i * 7) % 11), 1}
		rows = append(rows, r)
		ys = append(ys, truth[0]*r[0]+truth[1]*r[1]+truth[2]*r[2]+truth[3])
	}
	got, err := leastSquares4(rows, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1e-9 {
			t.Fatalf("coef %d = %g, want %g", i, got[i], truth[i])
		}
	}
}

func TestLeastSquaresSingular(t *testing.T) {
	rows := [][4]float64{{1, 1, 0, 0}, {2, 2, 0, 0}, {3, 3, 0, 0}, {4, 4, 0, 0}}
	if _, err := leastSquares4(rows, []float64{1, 2, 3, 4}); err == nil {
		t.Fatal("collinear design must be reported singular")
	}
	if _, err := leastSquares4(rows[:2], []float64{1, 2}); err == nil {
		t.Fatal("underdetermined system must error")
	}
}

func TestGemmModelAccuracyOnAlignedShapes(t *testing.T) {
	m := model(t)
	// On mesh-aligned shapes the fit should be within a few percent.
	for _, sz := range [][3]int{{64, 64, 64}, {128, 128, 128}, {256, 128, 64}, {96, 192, 128}} {
		spec := primitives.GemmSpec{
			M: sz[0], N: sz[1], K: sz[2],
			LDA: sz[0], LDB: sz[2], LDC: sz[0],
		}
		truth, err := primitives.GemmTime(spec)
		if err != nil {
			t.Fatal(err)
		}
		pred := m.Predict(sz[0], sz[1], sz[2], false, false, ir.VecM)
		rel := math.Abs(pred-truth) / truth
		if rel > 0.10 {
			t.Errorf("shape %v: model off by %.1f%% (pred %.3g, truth %.3g)", sz, rel*100, pred, truth)
		}
	}
}

func TestGemmModelMispredictsRemainders(t *testing.T) {
	// Unaligned shapes carry remainder penalties the linear basis cannot
	// express: the model should err noticeably more there (that is the
	// designed model-vs-hardware gap of Fig. 9).
	m := model(t)
	spec := primitives.GemmSpec{M: 132, N: 124, K: 100, LDA: 132, LDB: 100, LDC: 132}
	truth, err := primitives.GemmTime(spec)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(132, 124, 100, false, false, ir.VecM)
	if pred == truth {
		t.Fatal("model should not be exact on unaligned shapes")
	}
}

func TestDMATimeTransactionModel(t *testing.T) {
	// One aligned 128-byte block: exactly one transaction.
	one := DMATime([]tensor.Blocks{{Offset: 0, Block: 32, Stride: 32, Count: 1}})
	// Misaligned 32-float block spanning two transactions.
	two := DMATime([]tensor.Blocks{{Offset: 16, Block: 32, Stride: 32, Count: 1}})
	if two <= one {
		t.Fatal("misaligned block must touch more transactions")
	}
	// Bandwidth term scales with count (the single-block time is
	// startup-dominated, so compare against a generous multiple).
	many := DMATime([]tensor.Blocks{{Offset: 0, Block: 32, Stride: 64, Count: 1000}})
	if many <= 5*one {
		t.Fatal("many blocks must cost much more than one")
	}
}

func compileGemm(t *testing.T, p gemm.Params, st dsl.Strategy) *ir.Program {
	t.Helper()
	seed, err := gemm.Seed(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(seed, st)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func gemmStrategy(fm, fn, fk int) dsl.Strategy {
	return dsl.Strategy{
		Factors:      map[string]int{"m": fm, "n": fn, "k": fk},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"C": {1, 0}},
		Vec:          ir.VecM,
		DoubleBuffer: true,
	}
}

func TestEstimateVsSimulator(t *testing.T) {
	// The estimator must land within ~35% of the simulator on healthy
	// schedules — close enough to rank candidates, imperfect by design.
	m := model(t)
	for _, cfg := range []struct {
		p  gemm.Params
		st dsl.Strategy
	}{
		{gemm.Params{M: 256, N: 256, K: 256}, gemmStrategy(64, 64, 64)},
		{gemm.Params{M: 512, N: 128, K: 256}, gemmStrategy(128, 64, 128)},
		{gemm.Params{M: 200, N: 200, K: 200}, gemmStrategy(64, 64, 64)},
	} {
		prog := compileGemm(t, cfg.p, cfg.st)
		est, err := EstimateProgram(m, prog)
		if err != nil {
			t.Fatal(err)
		}
		binds, err := gemm.Bind(prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exec.Run(prog, binds, exec.Options{Functional: false})
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(est.Total()-res.Seconds) / res.Seconds
		if rel > 0.35 {
			t.Errorf("%v %v: estimate %.3g vs simulated %.3g (%.0f%% off)",
				cfg.p, cfg.st, est.Total(), res.Seconds, rel*100)
		}
	}
}

func TestEstimatorRanksTileSizes(t *testing.T) {
	// What matters for tuning is ranking: tiny tiles must be predicted
	// slower than healthy tiles, as the simulator agrees.
	m := model(t)
	p := gemm.Params{M: 256, N: 256, K: 256}
	tiny := compileGemm(t, p, gemmStrategy(8, 8, 16))
	good := compileGemm(t, p, gemmStrategy(128, 128, 128))
	et, err := EstimateProgram(m, tiny)
	if err != nil {
		t.Fatal(err)
	}
	eg, err := EstimateProgram(m, good)
	if err != nil {
		t.Fatal(err)
	}
	if eg.Total() >= et.Total() {
		t.Fatalf("estimator ranks tiny tiles (%.3g) better than 128³ (%.3g)", et.Total(), eg.Total())
	}
}

func TestEstimatorFastOnHugeProblems(t *testing.T) {
	// The two-point loop evaluation must make estimation cheap even for
	// 8192³ problems (the Listing-2 extreme).
	m := model(t)
	prog := compileGemm(t, gemm.Params{M: 8192, N: 8192, K: 8192}, gemmStrategy(256, 256, 256))
	est, err := EstimateProgram(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	if est.Total() <= 0 {
		t.Fatal("estimate must be positive")
	}
}

func TestEstimateSeparatesChannels(t *testing.T) {
	m := model(t)
	prog := compileGemm(t, gemm.Params{M: 256, N: 256, K: 256}, gemmStrategy(64, 64, 64))
	est, err := EstimateProgram(m, prog)
	if err != nil {
		t.Fatal(err)
	}
	if est.DMA <= 0 || est.Compute <= 0 {
		t.Fatalf("both channels must be populated: %+v", est)
	}
	if est.Total() != math.Max(est.DMA, est.Compute) {
		t.Fatal("Total must be the channel max")
	}
}
