// Package costmodel implements swATOP's static performance model (§4.6):
// the DMA transaction model of Eq. (1), the per-variant linear GEMM model
// of Eq. (2) fitted by least squares against measured primitive times, and
// a whole-IR estimator that combines them under the paper's overlap
// assumption T_overall = max(T_DMA, T_compute).
//
// The model is deliberately simpler than the simulator it predicts: it uses
// theoretical peak bandwidth, ignores per-block engine overhead,
// read-modify-write surcharges, DMA serialization, loop/branch issue cost
// and micro-kernel remainder penalties. That gap is what Fig. 9 measures.
package costmodel

import (
	"fmt"

	"swatop/internal/ir"
	"swatop/internal/primitives"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
)

// DMATime is Eq. (1): start-up latency plus touched transactions over the
// peak DMA bandwidth. PEAK_BW is calibrated to the measured stream
// bandwidth of [24] (22.6 GB/s), the same source the paper cites for its
// machine characterization. blocks describes the core-group-level strided
// pattern.
func DMATime(blocks []tensor.Blocks) float64 {
	var touched int64
	for _, b := range blocks {
		misalign := (b.Offset * 4) % sw26010.TransactionBytes
		bytes := b.Block * 4
		per := int64((misalign + bytes + sw26010.TransactionBytes - 1) /
			sw26010.TransactionBytes * sw26010.TransactionBytes)
		touched += per * int64(b.Count)
	}
	return sw26010.DMAStartupSeconds + float64(touched)/sw26010.DMAEffBandwidth
}

// DMAStats predicts the payload bytes and memory-transaction count of a
// strided pattern under the same Eq. (1) rounding DMATime charges —
// per-candidate features for the learned search model.
func DMAStats(blocks []tensor.Blocks) (payloadBytes, transactions int64) {
	for _, b := range blocks {
		misalign := (b.Offset * 4) % sw26010.TransactionBytes
		bytes := b.Block * 4
		per := int64((misalign + bytes + sw26010.TransactionBytes - 1) / sw26010.TransactionBytes)
		payloadBytes += int64(bytes) * int64(b.Count)
		transactions += per * int64(b.Count)
	}
	return payloadBytes, transactions
}

// variantIndex maps a GEMM variant to its coefficient row.
func variantIndex(aTrans, bTrans bool, vec ir.VecDim) int {
	i := 0
	if aTrans {
		i |= 1
	}
	if bTrans {
		i |= 2
	}
	if vec == ir.VecN {
		i |= 4
	}
	return i
}

// GemmModel holds the fitted Eq. (2) coefficients for the eight variants:
// T = α·K + β·K·Mv/4 + γ·K·M·N/4 + δ, with Mv the vectorized-dimension
// extent.
type GemmModel struct {
	Coef [8][4]float64 // α, β, γ, δ per variant
}

// Predict estimates one spm_gemm call.
func (g *GemmModel) Predict(m, n, k int, aTrans, bTrans bool, vec ir.VecDim) float64 {
	mv := m
	if vec == ir.VecN {
		mv = n
	}
	c := g.Coef[variantIndex(aTrans, bTrans, vec)]
	kf, mf, nf, mvf := float64(k), float64(m), float64(n), float64(mv)
	t := c[0]*kf + c[1]*kf*mvf/4 + c[2]*kf*mf*nf/4 + c[3]
	if t < 0 {
		t = 0
	}
	return t
}

// FitGemmModel fits the eight variants by ordinary least squares over a
// grid of measured primitive executions — the offline calibration step the
// paper performs once per machine ("we fit a linear function ... by
// collecting the execution time of GEMM operations using different
// dimension parameters").
func FitGemmModel() (*GemmModel, error) {
	sizes := []int{8, 16, 32, 64, 96, 128, 192, 256}
	ks := []int{16, 32, 64, 128, 256}
	model := &GemmModel{}
	for _, aT := range []bool{false, true} {
		for _, bT := range []bool{false, true} {
			for _, vec := range []ir.VecDim{ir.VecM, ir.VecN} {
				var rows [][4]float64
				var ys []float64
				for _, m := range sizes {
					for _, n := range sizes {
						for _, k := range ks {
							spec := primitives.GemmSpec{
								M: m, N: n, K: k,
								LDA: ldaFor(m, k, aT), LDB: ldaFor(k, n, bT), LDC: m,
								ATrans: aT, BTrans: bT, Vec: vec,
							}
							y, err := primitives.GemmTime(spec)
							if err != nil {
								continue
							}
							mv := m
							if vec == ir.VecN {
								mv = n
							}
							rows = append(rows, [4]float64{
								float64(k),
								float64(k) * float64(mv) / 4,
								float64(k) * float64(m) * float64(n) / 4,
								1,
							})
							ys = append(ys, y)
						}
					}
				}
				coef, err := leastSquares4(rows, ys)
				if err != nil {
					return nil, fmt.Errorf("fit variant aT=%v bT=%v %v: %w", aT, bT, vec, err)
				}
				model.Coef[variantIndex(aT, bT, vec)] = coef
			}
		}
	}
	return model, nil
}

func ldaFor(rows, cols int, trans bool) int {
	if trans {
		return cols
	}
	return rows
}

// leastSquares4 solves min ‖X·b − y‖² for 4 coefficients via the normal
// equations and Gaussian elimination with partial pivoting.
func leastSquares4(x [][4]float64, y []float64) ([4]float64, error) {
	if len(x) < 4 {
		return [4]float64{}, fmt.Errorf("need ≥4 samples, have %d", len(x))
	}
	var a [4][5]float64 // augmented [XᵀX | Xᵀy]
	for i := range x {
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				a[r][c] += x[i][r] * x[i][c]
			}
			a[r][4] += x[i][r] * y[i]
		}
	}
	for col := 0; col < 4; col++ {
		pivot := col
		for r := col + 1; r < 4; r++ {
			if abs(a[r][col]) > abs(a[pivot][col]) {
				pivot = r
			}
		}
		if abs(a[pivot][col]) < 1e-30 {
			return [4]float64{}, fmt.Errorf("singular normal matrix at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < 4; r++ {
			if r == col {
				continue
			}
			f := a[r][col] / a[col][col]
			for c := col; c < 5; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	var out [4]float64
	for i := 0; i < 4; i++ {
		out[i] = a[i][4] / a[i][i]
	}
	return out, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
