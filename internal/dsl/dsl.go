// Package dsl is swATOP's embedded domain-specific language (§4.2). An
// operator is described as a *schedule seed* — axes, tensors and a
// tensorized computation over them — plus a *schedule space*: the factor
// variables, loop-order candidates, layout candidates and vectorization
// candidates the scheduler may combine. The paper embeds the DSL in C++;
// this implementation embeds it in Go with the same vocabulary
// (FactorVar ↔ Space.Factors, explicit reorder candidates ↔ Space.Orders).
package dsl

import (
	"fmt"

	"swatop/internal/ir"
)

// Role classifies an axis with respect to the central GEMM primitive.
type Role int

// Axis roles.
const (
	// RoleM contributes to the GEMM M dimension.
	RoleM Role = iota
	// RoleN contributes to the GEMM N dimension.
	RoleN
	// RoleK contributes to the GEMM K (reduction) dimension.
	RoleK
	// RoleSpatial is an outer loop axis the GEMM does not see (e.g. output
	// rows/columns in implicit convolution).
	RoleSpatial
	// RoleReduce is an outer reduction axis (e.g. kernel offsets kr/kc):
	// iterations accumulate into the same output region.
	RoleReduce
)

func (r Role) String() string {
	switch r {
	case RoleM:
		return "M"
	case RoleN:
		return "N"
	case RoleK:
		return "K"
	case RoleSpatial:
		return "spatial"
	case RoleReduce:
		return "reduce"
	}
	return "?"
}

// Axis is one iteration dimension of the operator.
type Axis struct {
	Name   string
	Extent int
	Role   Role
}

// AccessTerm is one affine term of a tensor-dimension access function:
// Coeff × axis.
type AccessTerm struct {
	Axis  string
	Coeff int
}

// OperandRole identifies which GEMM operand a tensor feeds.
type OperandRole int

// Operand roles.
const (
	// OperandA is the M×K input.
	OperandA OperandRole = iota
	// OperandB is the K×N input.
	OperandB
	// OperandC is the M×N output.
	OperandC
)

func (o OperandRole) String() string {
	return [...]string{"A", "B", "C"}[o]
}

// TensorSpec declares a main-memory tensor and how the computation indexes
// it: Access[d] is the affine sum of axis terms addressing dimension d.
type TensorSpec struct {
	Name   string
	Dims   []int
	Access [][]AccessTerm
	Role   OperandRole
}

// Seed is the schedule seed: the pure computation description (Fig. 4,
// left-top), before any schedule decisions.
type Seed struct {
	Name    string
	Axes    []*Axis
	Tensors []*TensorSpec
}

// NewSeed creates an empty seed.
func NewSeed(name string) *Seed { return &Seed{Name: name} }

// AddAxis declares an iteration axis.
func (s *Seed) AddAxis(name string, extent int, role Role) *Axis {
	a := &Axis{Name: name, Extent: extent, Role: role}
	s.Axes = append(s.Axes, a)
	return a
}

// AddTensor declares a tensor operand. access lists, per tensor dimension,
// the axis names addressing it; use Terms for multi-axis dimensions.
func (s *Seed) AddTensor(name string, dims []int, role OperandRole, access ...[]AccessTerm) *TensorSpec {
	t := &TensorSpec{Name: name, Dims: dims, Role: role, Access: access}
	s.Tensors = append(s.Tensors, t)
	return t
}

// Dim is a convenience constructor for a single-axis access term.
func Dim(axis string) []AccessTerm { return []AccessTerm{{Axis: axis, Coeff: 1}} }

// Dims builds a multi-axis access (e.g. ro+kr).
func Dims(terms ...AccessTerm) []AccessTerm { return terms }

// T builds an access term.
func T(axis string, coeff int) AccessTerm { return AccessTerm{Axis: axis, Coeff: coeff} }

// Axis returns a declared axis by name.
func (s *Seed) Axis(name string) (*Axis, error) {
	for _, a := range s.Axes {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("dsl: unknown axis %q", name)
}

// Tensor returns a declared tensor by name.
func (s *Seed) Tensor(name string) (*TensorSpec, error) {
	for _, t := range s.Tensors {
		if t.Name == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("dsl: unknown tensor %q", name)
}

// Operand returns the tensor with the given operand role.
func (s *Seed) Operand(role OperandRole) (*TensorSpec, error) {
	for _, t := range s.Tensors {
		if t.Role == role {
			return t, nil
		}
	}
	return nil, fmt.Errorf("dsl: no tensor with role %s", role)
}

// RoleAxes returns the axes of a role in declaration order — the
// significance order of composite GEMM dimensions.
func (s *Seed) RoleAxes(role Role) []string {
	var out []string
	for _, a := range s.Axes {
		if a.Role == role {
			out = append(out, a.Name)
		}
	}
	return out
}

// Validate checks internal consistency of the seed.
func (s *Seed) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("dsl: seed needs a name")
	}
	seen := map[string]bool{}
	for _, a := range s.Axes {
		if a.Extent <= 0 {
			return fmt.Errorf("dsl: axis %q has extent %d", a.Name, a.Extent)
		}
		if seen[a.Name] {
			return fmt.Errorf("dsl: duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, need := range []Role{RoleM, RoleN, RoleK} {
		if len(s.RoleAxes(need)) == 0 {
			return fmt.Errorf("dsl: no axis with role %s", need)
		}
	}
	roles := map[OperandRole]bool{}
	for _, t := range s.Tensors {
		if roles[t.Role] {
			return fmt.Errorf("dsl: duplicate operand role %s", t.Role)
		}
		roles[t.Role] = true
		if len(t.Access) != len(t.Dims) {
			return fmt.Errorf("dsl: tensor %q has %d access functions for %d dims",
				t.Name, len(t.Access), len(t.Dims))
		}
		for d, terms := range t.Access {
			reach := 0
			for _, term := range terms {
				ax, err := s.Axis(term.Axis)
				if err != nil {
					return fmt.Errorf("dsl: tensor %q dim %d: %v", t.Name, d, err)
				}
				if term.Coeff <= 0 {
					return fmt.Errorf("dsl: tensor %q dim %d: non-positive coeff", t.Name, d)
				}
				reach += term.Coeff * (ax.Extent - 1)
			}
			if reach >= t.Dims[d] {
				return fmt.Errorf("dsl: tensor %q dim %d: access reaches %d, extent %d",
					t.Name, d, reach, t.Dims[d])
			}
		}
	}
	for _, r := range []OperandRole{OperandA, OperandB, OperandC} {
		if !roles[r] {
			return fmt.Errorf("dsl: missing operand %s", r)
		}
	}
	return nil
}

// PaddingMode selects the boundary-processing scheme (§4.5.3).
type PaddingMode int

// Padding modes.
const (
	// PadLightweight zero-fills only the boundary strips of SPM tile
	// frames — swATOP's scheme.
	PadLightweight PaddingMode = iota
	// PadTraditional materializes fully padded copies of every tensor in
	// main memory before computing — the baseline of Fig. 11.
	PadTraditional
)

func (p PaddingMode) String() string {
	if p == PadTraditional {
		return "traditional"
	}
	return "lightweight"
}

// Space is the schedule space definition (Fig. 4, left-bottom).
type Space struct {
	// Factors lists candidate tile factors per axis (the FactorVars). An
	// axis absent from the map is not tiled (tile factor 1: it stays a
	// pure loop). A factor equal to the extent removes the outer loop.
	Factors map[string][]int
	// Orders lists explicit loop-order candidates (outermost first),
	// naming the outer loops of tiled/loop axes. Axes omitted from an
	// order are appended innermost in declaration order.
	Orders [][]string
	// Layouts lists candidate storage permutations per tensor.
	Layouts map[string][][]int
	// Vecs lists vectorized-dimension candidates.
	Vecs []ir.VecDim
	// DoubleBuffer lists auto-prefetching candidates (usually {true};
	// {false, true} for the Fig. 10 ablation).
	DoubleBuffer []bool
	// Padding lists boundary-processing candidates (usually
	// {PadLightweight}).
	Padding []PaddingMode
}

// NewSpace returns a space with the universal defaults: prefetching on,
// lightweight padding, both vectorization dimensions.
func NewSpace() *Space {
	return &Space{
		Factors:      map[string][]int{},
		Layouts:      map[string][][]int{},
		Vecs:         []ir.VecDim{ir.VecM, ir.VecN},
		DoubleBuffer: []bool{true},
		Padding:      []PaddingMode{PadLightweight},
	}
}

// FactorVar declares tile-factor candidates for an axis (the DSL's
// FactorVar). Invalid candidates (> extent) are the scheduler's problem to
// prune, matching "swATOP will automatically traverse all valid candidates
// of the factor".
func (sp *Space) FactorVar(axis string, candidates ...int) *Space {
	sp.Factors[axis] = append(sp.Factors[axis], candidates...)
	return sp
}

// Reorder declares an explicit loop-order candidate.
func (sp *Space) Reorder(order ...string) *Space {
	sp.Orders = append(sp.Orders, order)
	return sp
}

// Layout declares a storage-permutation candidate for a tensor.
func (sp *Space) Layout(tensor string, perm ...int) *Space {
	sp.Layouts[tensor] = append(sp.Layouts[tensor], perm)
	return sp
}

// Strategy is one fully-resolved schedule: a point of the schedule space
// (Fig. 4 middle-bottom is the lowering of one of these).
type Strategy struct {
	Factors      map[string]int
	Order        []string
	Layouts      map[string][]int
	Vec          ir.VecDim
	DoubleBuffer bool
	Padding      PaddingMode
}

// String renders a compact, deterministic description of the strategy.
func (st Strategy) String() string {
	s := "tiles{"
	first := true
	// Render in a stable order: factors sorted by axis name.
	names := make([]string, 0, len(st.Factors))
	for n := range st.Factors {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, n := range names {
		if !first {
			s += ","
		}
		s += fmt.Sprintf("%s=%d", n, st.Factors[n])
		first = false
	}
	s += "} order" + fmt.Sprint(st.Order)
	if len(st.Layouts) > 0 {
		tnames := make([]string, 0, len(st.Layouts))
		for n := range st.Layouts {
			tnames = append(tnames, n)
		}
		for i := 1; i < len(tnames); i++ {
			for j := i; j > 0 && tnames[j] < tnames[j-1]; j-- {
				tnames[j], tnames[j-1] = tnames[j-1], tnames[j]
			}
		}
		s += " lay{"
		for i, n := range tnames {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("%s=%v", n, st.Layouts[n])
		}
		s += "}"
	}
	s += fmt.Sprintf(" %s db=%v pad=%s", st.Vec, st.DoubleBuffer, st.Padding)
	return s
}
