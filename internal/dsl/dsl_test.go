package dsl

import (
	"strings"
	"testing"

	"swatop/internal/ir"
)

func validSeed() *Seed {
	s := NewSeed("op")
	s.AddAxis("m", 8, RoleM)
	s.AddAxis("n", 8, RoleN)
	s.AddAxis("k", 8, RoleK)
	s.AddTensor("A", []int{8, 8}, OperandA, Dim("m"), Dim("k"))
	s.AddTensor("B", []int{8, 8}, OperandB, Dim("k"), Dim("n"))
	s.AddTensor("C", []int{8, 8}, OperandC, Dim("m"), Dim("n"))
	return s
}

func TestSeedValidateOK(t *testing.T) {
	if err := validSeed().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSeedValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Seed
	}{
		{"no name", func() *Seed {
			s := validSeed()
			s.Name = ""
			return s
		}},
		{"duplicate axis", func() *Seed {
			s := validSeed()
			s.AddAxis("m", 4, RoleSpatial)
			return s
		}},
		{"zero extent", func() *Seed {
			s := validSeed()
			s.AddAxis("z", 0, RoleSpatial)
			return s
		}},
		{"missing role", func() *Seed {
			s := NewSeed("op")
			s.AddAxis("m", 8, RoleM)
			s.AddAxis("n", 8, RoleN)
			return s
		}},
		{"unknown axis in access", func() *Seed {
			s := validSeed()
			s.AddTensor("D", []int{8}, OperandA, Dim("ghost"))
			return s
		}},
		{"duplicate operand", func() *Seed {
			s := validSeed()
			s.AddTensor("A2", []int{8, 8}, OperandA, Dim("m"), Dim("k"))
			return s
		}},
		{"access out of bounds", func() *Seed {
			s := NewSeed("op")
			s.AddAxis("m", 8, RoleM)
			s.AddAxis("n", 8, RoleN)
			s.AddAxis("k", 8, RoleK)
			s.AddTensor("A", []int{4, 8}, OperandA, Dim("m"), Dim("k")) // m reaches 7 ≥ 4
			s.AddTensor("B", []int{8, 8}, OperandB, Dim("k"), Dim("n"))
			s.AddTensor("C", []int{8, 8}, OperandC, Dim("m"), Dim("n"))
			return s
		}},
		{"access rank mismatch", func() *Seed {
			s := NewSeed("op")
			s.AddAxis("m", 8, RoleM)
			s.AddAxis("n", 8, RoleN)
			s.AddAxis("k", 8, RoleK)
			s.AddTensor("A", []int{8, 8}, OperandA, Dim("m"))
			s.AddTensor("B", []int{8, 8}, OperandB, Dim("k"), Dim("n"))
			s.AddTensor("C", []int{8, 8}, OperandC, Dim("m"), Dim("n"))
			return s
		}},
	}
	for _, c := range cases {
		if err := c.build().Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestSeedLookups(t *testing.T) {
	s := validSeed()
	if _, err := s.Axis("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Axis("zz"); err == nil {
		t.Fatal("ghost axis lookup should fail")
	}
	if _, err := s.Tensor("A"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Tensor("Z"); err == nil {
		t.Fatal("ghost tensor lookup should fail")
	}
	op, err := s.Operand(OperandB)
	if err != nil || op.Name != "B" {
		t.Fatalf("Operand(B) = %v, %v", op, err)
	}
	if axes := s.RoleAxes(RoleK); len(axes) != 1 || axes[0] != "k" {
		t.Fatalf("RoleAxes(K) = %v", axes)
	}
}

func TestMultiTermAccess(t *testing.T) {
	s := NewSeed("conv")
	s.AddAxis("ro", 4, RoleSpatial)
	s.AddAxis("kr", 3, RoleReduce)
	s.AddAxis("m", 4, RoleM)
	s.AddAxis("n", 4, RoleN)
	s.AddAxis("k", 4, RoleK)
	s.AddTensor("A", []int{4, 4}, OperandA, Dim("m"), Dim("k"))
	s.AddTensor("B", []int{4, 6, 4}, OperandB, Dim("k"), Dims(T("ro", 1), T("kr", 1)), Dim("n"))
	s.AddTensor("C", []int{4, 4, 4}, OperandC, Dim("m"), Dim("ro"), Dim("n"))
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSpaceBuilders(t *testing.T) {
	sp := NewSpace()
	sp.FactorVar("m", 16, 32).FactorVar("m", 64)
	if len(sp.Factors["m"]) != 3 {
		t.Fatalf("FactorVar should accumulate: %v", sp.Factors["m"])
	}
	sp.Reorder("m", "n").Reorder("n", "m")
	if len(sp.Orders) != 2 {
		t.Fatal("Reorder should accumulate")
	}
	sp.Layout("A", 0, 1).Layout("A", 1, 0)
	if len(sp.Layouts["A"]) != 2 {
		t.Fatal("Layout should accumulate")
	}
	if len(sp.Vecs) != 2 || len(sp.DoubleBuffer) != 1 || len(sp.Padding) != 1 {
		t.Fatal("defaults wrong")
	}
}

func TestStrategyStringDeterministic(t *testing.T) {
	st := Strategy{
		Factors: map[string]int{"b": 2, "a": 1, "c": 3},
		Order:   []string{"a", "b"},
		Vec:     ir.VecN,
	}
	s1, s2 := st.String(), st.String()
	if s1 != s2 {
		t.Fatal("Strategy.String not deterministic")
	}
	if !strings.Contains(s1, "a=1,b=2,c=3") {
		t.Fatalf("factors not sorted: %s", s1)
	}
}

func TestPaddingModeString(t *testing.T) {
	if PadLightweight.String() != "lightweight" || PadTraditional.String() != "traditional" {
		t.Fatal("padding mode strings wrong")
	}
}

func TestRoleStrings(t *testing.T) {
	for r, want := range map[Role]string{
		RoleM: "M", RoleN: "N", RoleK: "K", RoleSpatial: "spatial", RoleReduce: "reduce",
	} {
		if r.String() != want {
			t.Errorf("Role(%d).String() = %s, want %s", r, r.String(), want)
		}
	}
	if OperandA.String() != "A" || OperandB.String() != "B" || OperandC.String() != "C" {
		t.Fatal("operand strings wrong")
	}
}
