package metrics

import "testing"

func TestPercentileEmpty(t *testing.T) {
	if got := Percentile(nil, 99); got != 0 {
		t.Fatalf("empty slice: got %v, want 0", got)
	}
	if got := Percentile([]float64{}, 50); got != 0 {
		t.Fatalf("empty slice: got %v, want 0", got)
	}
	if idx := PercentileIndex(0, 50); idx != -1 {
		t.Fatalf("PercentileIndex(0, 50) = %d, want -1", idx)
	}
}

func TestPercentileSingle(t *testing.T) {
	s := []float64{42}
	for _, p := range []float64{0, 1, 50, 90, 99, 100} {
		if got := Percentile(s, p); got != 42 {
			t.Fatalf("p%v of single sample: got %v, want 42", p, got)
		}
	}
}

func TestPercentileNearestRank(t *testing.T) {
	// Canonical nearest-rank example: p50 of an even count picks the lower
	// of the two middle samples, p100 the max, p0 the min.
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {12.5, 1}, {25, 2}, {50, 4}, {75, 6}, {90, 8}, {99, 8}, {100, 8},
	}
	for _, tc := range cases {
		if got := Percentile(s, tc.p); got != tc.want {
			t.Fatalf("p%v of %v: got %v, want %v", tc.p, s, got, tc.want)
		}
	}
}

func TestPercentileTies(t *testing.T) {
	// Repeated values are ordinary samples: rank selection is positional,
	// so a run of ties dominates the percentiles its ranks cover.
	s := []float64{1, 5, 5, 5, 5, 5, 5, 9}
	if got := Percentile(s, 50); got != 5 {
		t.Fatalf("p50 with ties: got %v, want 5", got)
	}
	if got := Percentile(s, 99); got != 9 {
		t.Fatalf("p99 with ties: got %v, want 9", got)
	}
	all := []float64{3, 3, 3}
	for _, p := range []float64{1, 50, 99} {
		if got := Percentile(all, p); got != 3 {
			t.Fatalf("p%v of all-ties: got %v, want 3", p, got)
		}
	}
}

func TestPercentileOutOfRangeP(t *testing.T) {
	s := []float64{1, 2, 3}
	if got := Percentile(s, -10); got != 1 {
		t.Fatalf("negative p clamps to min: got %v", got)
	}
	if got := Percentile(s, 250); got != 3 {
		t.Fatalf("p>100 clamps to max: got %v", got)
	}
}
