package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// TestHistogramExemplars: exemplars attach to the bucket the observation
// landed in, surface in the JSON snapshot, and never leak into the
// Prometheus 0.0.4 text exposition.
func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", 1, 10, 100)

	h.Observe(0.5)
	if ex := h.Exemplars(); ex != nil {
		t.Fatalf("exemplars before any were recorded: %v", ex)
	}

	h.ObserveExemplar(5, "trace-a")   // bucket (1,10]
	h.ObserveExemplar(50, "trace-b")  // bucket (10,100]
	h.ObserveExemplar(500, "trace-c") // overflow
	h.ObserveExemplar(60, "trace-d")  // last writer wins in (10,100]

	want := []string{"", "trace-a", "trace-d", "trace-c"}
	got := h.Exemplars()
	if len(got) != len(want) {
		t.Fatalf("Exemplars() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Exemplars()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}

	snap := r.Snapshot()
	hs, ok := snap.Histograms["lat_ms"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if len(hs.Exemplars) != len(want) || hs.Exemplars[1] != "trace-a" {
		t.Fatalf("snapshot exemplars = %v, want %v", hs.Exemplars, want)
	}

	var text bytes.Buffer
	if err := snap.WritePrometheus(&text); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text.String(), "trace-a") {
		t.Fatal("exemplar leaked into Prometheus 0.0.4 text exposition")
	}

	// Nil histogram stays inert for the new entry points too.
	var nilH *Histogram
	nilH.ObserveExemplar(1, "x")
	if nilH.Exemplars() != nil {
		t.Fatal("nil histogram returned exemplars")
	}
}
