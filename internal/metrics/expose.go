package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// HistogramSnapshot is the frozen state of one histogram. Counts has one
// more entry than Bounds: the last slot is the +Inf overflow bucket (kept
// out of Bounds so the snapshot stays JSON-serializable).
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	// Exemplars carries the per-bucket exemplar trace IDs ("" where none),
	// aligned with Counts. Omitted when the histogram never saw one. JSON
	// only — the Prometheus text writer stays plain 0.0.4 format.
	Exemplars []string `json:"exemplars,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, ready for JSON encoding
// (map keys marshal sorted, so the document is deterministic for
// deterministic values).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Help carries per-metric exposition help text (SetHelp overrides).
	// Excluded from JSON: it is descriptive, not measured data, and would
	// bloat every NetReport document.
	Help map[string]string `json:"-"`
}

// Snapshot copies the registry's current values. Nil-safe: a nil registry
// yields an empty snapshot. On a scoped view (Scope) only the metrics
// under the view's prefix are included, under their full (prefixed) names.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	if r == nil {
		return s
	}
	b := r.base()
	inScope := func(name string) bool {
		return r.prefix == "" || strings.HasPrefix(name, r.prefix)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	if len(b.help) > 0 {
		s.Help = make(map[string]string, len(b.help))
		for name, text := range b.help {
			if inScope(name) {
				s.Help[name] = text
			}
		}
	}
	if len(b.counters) > 0 {
		s.Counters = make(map[string]int64, len(b.counters))
		for name, c := range b.counters {
			if inScope(name) {
				s.Counters[name] = c.Value()
			}
		}
	}
	if len(b.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(b.gauges))
		for name, g := range b.gauges {
			if inScope(name) {
				s.Gauges[name] = g.Value()
			}
		}
	}
	if len(b.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(b.hists))
		for name, h := range b.hists {
			if !inScope(name) {
				continue
			}
			hs := HistogramSnapshot{
				Count:  h.Count(),
				Sum:    h.Sum(),
				Bounds: append([]float64(nil), h.bounds...),
				Counts: make([]int64, len(h.counts)),
			}
			for i := range h.counts {
				hs.Counts[i] = h.counts[i].Load()
			}
			hs.Exemplars = h.Exemplars()
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON writes the snapshot as an indented JSON document.
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// promName sanitizes a metric name for the Prometheus exposition format.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// defaultHelp describes the well-known metric families published across
// the repo, keyed by exact name. Dynamic names fall through to the
// prefix rules in helpFor.
var defaultHelp = map[string]string{
	"autotune_candidates_total":        "Schedule candidates enumerated by the autotuner.",
	"autotune_candidates_valid_total":  "Candidates that passed the SPM-capacity and legality checks.",
	"autotune_candidates_failed_total": "Candidates dropped after a measurement panic or exhausted retries.",
	"autotune_retries_total":           "Transient measurement errors retried with backoff.",
	"autotune_backoff_seconds":         "Cumulative wall seconds slept in measurement retry backoff.",
	"autotune_best_predicted_seconds":  "Model-predicted machine seconds of the best candidate.",
	"autotune_best_measured_seconds":   "Measured machine seconds of the selected schedule.",
	"autotune_machine_seconds":         "Simulated machine seconds spent measuring candidates.",
	"autotune_search_wall_seconds":     "Host wall seconds of the schedule search phase.",
	"autotune_finalist_wall_seconds":   "Host wall seconds of the finalist measurement phase.",
	"autotune_space_points_total":      "Raw schedule-space points of every tuned operator (coverage denominator).",
	"search_candidates_proposed_total": "Candidates proposed (compiled and predicted) by sample-efficient searchers.",
	"search_candidates_measured_total": "Proposed candidates actually measured on the simulated machine.",
	"search_candidates_pruned_total":   "Proposed candidates pruned by the learned cost model without measurement.",
	"search_rounds_total":              "Propose-predict-measure-learn rounds completed by searchers.",
	"search_model_mae_seconds":         "Prequential mean absolute error of the online cost model, seconds.",
	"search_budget_candidates":         "Measurement budget (candidate count) of the current search.",
	"search_transfer_seeds_total":      "Population seeds donated by nearest-neighbor cached schedules.",
	"cache_neighbor_lookups_total":     "Nearest-neighbor transfer lookups served by the schedule library.",
	"exec_runs_total":                  "Programs executed on the simulated core group.",
	"exec_run_failures_total":          "Program executions that returned an error.",
	"exec_run_seconds":                 "Simulated machine seconds per program execution.",
	"exec_machine_seconds":             "Cumulative simulated machine seconds executed.",
	"cache_hits_total":                 "Schedule-library lookups that found an entry.",
	"cache_misses_total":               "Schedule-library lookups that found nothing.",
	"cache_puts_total":                 "Schedules stored into the library.",
	"cache_deletes_total":              "Schedules deleted from the library.",
	"cache_commits_total":              "Successful library saves to disk.",
	"cache_commit_failures_total":      "Library saves that failed.",
	"cache_loaded_entries_total":       "Entries accepted while loading a library file.",
	"cache_quarantined_total":          "Entries rejected (quarantined) while loading a library file.",
	"tuner_cache_hits_total":           "Tuner-level library hits serving a cached schedule.",
	"tuner_cache_misses_total":         "Tuner-level library misses that forced tuning.",
	"tuner_degraded_total":             "Operators degraded to the manual baseline schedule.",
	"infer_machine_seconds":            "Simulated machine seconds of the whole network run.",
	"infer_arena_peak_bytes":           "Peak bytes of the activation buffer-reuse arena.",
	"infer_dma_hidden_ratio":           "Fraction of DMA time hidden behind compute.",
	"infer_comm_seconds":               "Modeled cross-group communication seconds of fleet runs.",
	"swbench_experiments_total":        "Paper experiments regenerated this session.",
	"serve_queue_capacity":             "Bound of the admission queue.",
	"serve_queue_depth":                "Admission-queue depth at the last sample.",
	"serve_queue_depth_max":            "High-water mark of the admission-queue depth.",
	"serve_admitted_total":             "Requests admitted into the queue.",
	"serve_shed_total":                 "Requests shed with 429 because the queue was full.",
	"serve_drain_rejected_total":       "Requests rejected because the server was draining.",
	"serve_canceled_total":             "Admitted requests whose client went away before a result.",
	"serve_deadline_expired_total":     "Requests answered 408 after their deadline passed.",
	"serve_responses_total":            "Successful responses delivered.",
	"serve_degraded_total":             "Responses served by baseline-fallback schedules.",
	"serve_batches_total":              "Coalesced batches executed.",
	"serve_batches_degraded_total":     "Batches that ran in degraded mode.",
	"serve_batch_failures_total":       "Batches that failed outright (members saw errors).",
	"serve_batch_pad_total":            "Padding inferences executed to round batches up to buckets.",
	"serve_batch_size":                 "Live requests per executed batch.",
	"serve_machine_seconds":            "Cumulative simulated machine seconds of served batches.",
	"serve_run_ms":                     "Wall milliseconds per batch engine run.",
	"serve_latency_ms":                 "End-to-end wall latency per response, milliseconds.",
	"serve_breaker_state":              "Circuit breaker state (0 closed, 0.5 half-open, 1 open).",
	"serve_breaker_trips":              "Times the circuit breaker tripped open.",
	"serve_slo_burn_rate":              "Error-budget burn rate at the last SLO check (1.0 = on target).",
	"serve_slo_breaches_total":         "SLO burn-rate breach episodes detected.",
	"serve_slo_profiles_total":         "CPU profiles captured by SLO breach auto-dump.",
}

// helpPrefixes describes dynamically named metric families.
var helpPrefixes = []struct{ prefix, text string }{
	{"infer_method_", "Layers resolved to this convolution method."},
	{"infer_", "Inference-layer resolution outcome counter."},
	{"machine_", "Simulated SW26010 machine counter."},
	{"swsim_", "Substrate characterization measurement."},
}

// helpFor picks the # HELP text for a metric: explicit SetHelp text wins,
// then the built-in tables, then a generic kind-based line — every family
// always gets a HELP line.
func (s Snapshot) helpFor(name, kind string) string {
	if text, ok := s.Help[name]; ok {
		return text
	}
	if text, ok := defaultHelp[name]; ok {
		return text
	}
	for _, p := range helpPrefixes {
		if strings.HasPrefix(name, p.prefix) {
			return p.text
		}
	}
	// Per-core-group scoped metrics ("group3_machine_gemm_ops") describe
	// the same families as their unscoped names.
	if rest, ok := stripGroupPrefix(name); ok {
		return "Per-core-group: " + s.helpFor(rest, kind)
	}
	return "swATOP " + kind + "."
}

// stripGroupPrefix removes a leading "group<N>_" scope from a metric name.
func stripGroupPrefix(name string) (string, bool) {
	if !strings.HasPrefix(name, "group") {
		return "", false
	}
	rest := name[len("group"):]
	i := 0
	for i < len(rest) && rest[i] >= '0' && rest[i] <= '9' {
		i++
	}
	if i == 0 || i >= len(rest) || rest[i] != '_' {
		return "", false
	}
	return rest[i+1:], true
}

// escapeHelp escapes help text per the exposition format: backslash and
// newline are the only characters with escape sequences in comment lines.
func escapeHelp(text string) string {
	text = strings.ReplaceAll(text, `\`, `\\`)
	return strings.ReplaceAll(text, "\n", `\n`)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE comments for every family,
// cumulative histogram buckets with an explicit +Inf bound, names sorted.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			pn, escapeHelp(s.helpFor(name, "counter")), pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %s\n",
			pn, escapeHelp(s.helpFor(name, "gauge")), pn, pn, formatFloat(s.Gauges[name])); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(s.Histograms) {
		pn := promName(name)
		h := s.Histograms[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
			pn, escapeHelp(s.helpFor(name, "histogram")), pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, formatFloat(bound), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			pn, h.Count, pn, formatFloat(h.Sum), pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// Table renders the snapshot as an aligned human-readable table — the
// CLIs' `-metrics -` mode.
func (s Snapshot) Table() string {
	var b strings.Builder
	width := 0
	for _, m := range []int{longest(s.Counters), longest(s.Gauges), longest(s.Histograms)} {
		if m > width {
			width = m
		}
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-*s %d\n", width, name, s.Counters[name])
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-*s %s\n", width, name, formatFloat(s.Gauges[name]))
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&b, "  %-*s count %d  sum %s  mean %s\n",
				width, name, h.Count, formatFloat(h.Sum), formatFloat(mean))
		}
	}
	if b.Len() == 0 {
		return "(no metrics recorded)\n"
	}
	return b.String()
}

func longest[V any](m map[string]V) int {
	n := 0
	for k := range m {
		if len(k) > n {
			n = len(k)
		}
	}
	return n
}
