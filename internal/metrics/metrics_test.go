package metrics_test

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"swatop/internal/metrics"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := metrics.NewRegistry()
	c := r.Counter("hits_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("hits_total") != c {
		t.Fatal("second lookup must return the same counter")
	}

	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(0.5)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %g, want 3", got)
	}
	g.Max(2)
	if g.Value() != 3 {
		t.Fatal("Max must not lower the gauge")
	}
	g.Max(7)
	if g.Value() != 7 {
		t.Fatal("Max must raise the gauge")
	}

	h := r.Histogram("lat_seconds", 0.1, 1, 10)
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-105.65) > 1e-9 {
		t.Fatalf("hist sum = %g, want 105.65", h.Sum())
	}
	s := r.Snapshot()
	hs := s.Histograms["lat_seconds"]
	// v <= bound lands in that bucket: 0.05 and 0.1 in le=0.1, 0.5 in le=1,
	// 5 in le=10, 100 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
}

func TestNilRegistryAndMetricsAreInert(t *testing.T) {
	var r *metrics.Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Gauge("y").Add(1)
	r.Gauge("y").Max(1)
	r.Histogram("z").Observe(1)
	if r.Counter("x").Value() != 0 || r.Gauge("y").Value() != 0 || r.Histogram("z").Count() != 0 {
		t.Fatal("nil metrics must read zero")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	if !strings.Contains(s.Table(), "no metrics") {
		t.Fatal("empty table should say so")
	}
}

func TestSnapshotJSONRoundTripAndDeterminism(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("ratio").Set(0.75)
	r.Histogram("t", 1, 10).Observe(3)

	var buf1, buf2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf1.String() != buf2.String() {
		t.Fatal("snapshot JSON must be deterministic")
	}
	var back metrics.Snapshot
	if err := json.Unmarshal(buf1.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a_total"] != 1 || back.Counters["b_total"] != 2 || back.Gauges["ratio"] != 0.75 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Histograms["t"].Count != 1 {
		t.Fatalf("round trip lost histogram: %+v", back.Histograms)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := metrics.NewRegistry()
	r.Counter("cache.hits-total").Add(3) // name needs sanitizing
	r.Gauge("ratio").Set(0.5)
	h := r.Histogram("lat", 1, 10)
	h.Observe(0.5)
	h.Observe(20)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE cache_hits_total counter",
		"cache_hits_total 3",
		"# TYPE ratio gauge",
		"ratio 0.5",
		"# TYPE lat histogram",
		`lat_bucket{le="1"} 1`,
		`lat_bucket{le="10"} 1`,
		`lat_bucket{le="+Inf"} 2`,
		"lat_sum 20.5",
		"lat_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryRaceStress hammers one registry from many goroutines — the
// dedicated -race stress test for the metrics layer. Correctness of the
// final values doubles as a lost-update check on the CAS paths.
func TestRegistryRaceStress(t *testing.T) {
	r := metrics.NewRegistry()
	const workers = 16
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Gauge("sum").Add(1)
				r.Gauge("max").Max(float64(w*iters + i))
				r.Histogram("h", 0.5).Observe(float64(i % 2))
				if i%128 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != workers*iters {
		t.Fatalf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Gauge("sum").Value(); got != workers*iters {
		t.Fatalf("gauge sum = %g, want %d (lost CAS update)", got, workers*iters)
	}
	if got := r.Gauge("max").Value(); got != workers*iters-1 {
		t.Fatalf("gauge max = %g, want %d", got, workers*iters-1)
	}
	h := r.Histogram("h")
	if h.Count() != workers*iters {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*iters)
	}
	if h.Sum() != workers*iters/2 {
		t.Fatalf("hist sum = %g, want %d", h.Sum(), workers*iters/2)
	}
}

func TestDefaultRegistryIsStable(t *testing.T) {
	if metrics.Default() == nil || metrics.Default() != metrics.Default() {
		t.Fatal("Default must return one stable registry")
	}
}

// TestScope: scoped views write prefixed names into the root's storage,
// nested scopes concatenate, snapshots of a view filter to its prefix, and
// nil/empty scoping stays inert.
func TestScope(t *testing.T) {
	root := metrics.NewRegistry()
	g0 := root.Scope("group0_")
	g1 := root.Scope("group1_")

	g0.Counter("dma_ops").Add(3)
	g1.Counter("dma_ops").Add(5)
	root.Counter("dma_ops").Inc()
	g0.Gauge("seconds").Set(1.5)
	g1.Gauge("seconds").Set(2.5)
	g0.Histogram("lat", 1, 10).Observe(0.5)

	// Same underlying metric through view and root.
	if g0.Counter("dma_ops") != root.Counter("group0_dma_ops") {
		t.Fatal("scoped counter is not the root's prefixed counter")
	}
	s := root.Snapshot()
	if s.Counters["group0_dma_ops"] != 3 || s.Counters["group1_dma_ops"] != 5 || s.Counters["dma_ops"] != 1 {
		t.Fatalf("counters = %v", s.Counters)
	}
	if s.Gauges["group0_seconds"] != 1.5 || s.Gauges["group1_seconds"] != 2.5 {
		t.Fatalf("gauges = %v", s.Gauges)
	}

	// A view's snapshot contains only its own prefix, under full names.
	vs := g0.Snapshot()
	if len(vs.Counters) != 1 || vs.Counters["group0_dma_ops"] != 3 {
		t.Fatalf("view counters = %v", vs.Counters)
	}
	if _, ok := vs.Gauges["group1_seconds"]; ok {
		t.Fatal("view snapshot leaked another scope")
	}
	if _, ok := vs.Histograms["group0_lat"]; !ok {
		t.Fatalf("view histograms = %v", vs.Histograms)
	}

	// Nested scoping concatenates prefixes.
	nested := g0.Scope("infer_")
	nested.Counter("runs").Inc()
	if root.Snapshot().Counters["group0_infer_runs"] != 1 {
		t.Fatal("nested scope did not concatenate prefixes")
	}
	if nested.Prefix() != "group0_infer_" {
		t.Fatalf("nested prefix = %q", nested.Prefix())
	}

	// SetHelp goes through the prefix too.
	g0.SetHelp("seconds", "group zero seconds")
	if root.Snapshot().Help["group0_seconds"] != "group zero seconds" {
		t.Fatal("scoped SetHelp lost the prefix")
	}

	// Inert cases.
	if root.Scope("") != root {
		t.Fatal("empty prefix must return the receiver")
	}
	var nilReg *metrics.Registry
	if nilReg.Scope("x_") != nil {
		t.Fatal("nil registry must scope to nil")
	}
	nilReg.Scope("x_").Counter("c").Inc() // must not panic
}
