package metrics

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestPrometheusConformance parses a rendered exposition page and checks
// the structural rules scrapers rely on: every sample is preceded by its
// family's HELP and TYPE comments, metric names are legal, histogram
// buckets are cumulative with ascending le bounds, and the +Inf bucket
// equals the _count series.
func TestPrometheusConformance(t *testing.T) {
	r := NewRegistry()
	r.Counter("autotune_candidates_total").Add(7)
	r.Counter("custom_thing_total").Inc()
	r.SetHelp("custom_thing_total", "line one\nline two with \\ backslash")
	r.Gauge("swsim_dma_triad_gbps").Set(22.47)
	r.Gauge("infer_dma_hidden_ratio").Set(0.5)
	h := r.Histogram("exec_run_seconds", 0.001, 0.01, 0.1)
	for _, v := range []float64{0.0005, 0.005, 0.005, 0.05, 5} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.Snapshot().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	page := b.String()
	if !strings.HasSuffix(page, "\n") {
		t.Fatalf("page must end in a newline")
	}

	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	helped := map[string]bool{}
	typed := map[string]string{}
	// histogram bookkeeping per family
	lastLe := map[string]float64{}
	lastCum := map[string]int64{}
	infBucket := map[string]int64{}
	countSeries := map[string]int64{}

	family := func(sample string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(sample, suffix)
			if base != sample && typed[base] == "histogram" {
				return base
			}
		}
		return sample
	}

	for _, line := range strings.Split(strings.TrimSuffix(page, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, text, ok := strings.Cut(rest, " ")
			if !ok || text == "" {
				t.Fatalf("HELP without text: %q", line)
			}
			if typed[name] != "" {
				t.Fatalf("HELP for %s after its TYPE", name)
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			name, typ := fields[0], fields[1]
			if !helped[name] {
				t.Fatalf("TYPE for %s without preceding HELP", name)
			}
			if typed[name] != "" {
				t.Fatalf("duplicate TYPE for %s", name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown type %q in %q", typ, line)
			}
			typed[name] = typ
		case line == "":
			t.Fatalf("blank line in exposition page")
		default:
			sample, value, ok := strings.Cut(line, " ")
			if !ok {
				t.Fatalf("malformed sample line: %q", line)
			}
			name := sample
			var le string
			if i := strings.IndexByte(sample, '{'); i >= 0 {
				name = sample[:i]
				label := sample[i:]
				m := regexp.MustCompile(`^\{le="([^"]+)"\}$`).FindStringSubmatch(label)
				if m == nil {
					t.Fatalf("unexpected label set %q in %q", label, line)
				}
				le = m[1]
			}
			if !nameRe.MatchString(name) {
				t.Fatalf("illegal metric name %q", name)
			}
			fam := family(name)
			if typed[fam] == "" {
				t.Fatalf("sample %q before its family's TYPE", line)
			}
			v, err := strconv.ParseFloat(value, 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			if le != "" {
				cum := int64(v)
				if cum < lastCum[fam] {
					t.Fatalf("%s: bucket counts not cumulative at le=%s", fam, le)
				}
				lastCum[fam] = cum
				if le == "+Inf" {
					infBucket[fam] = cum
					continue
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Fatalf("%s: unparseable le %q", fam, le)
				}
				if prev, seen := lastLe[fam]; seen && bound <= prev {
					t.Fatalf("%s: le bounds not ascending (%g after %g)", fam, bound, prev)
				}
				lastLe[fam] = bound
			} else if strings.HasSuffix(name, "_count") && typed[fam] == "histogram" {
				countSeries[fam] = int64(v)
			}
		}
	}

	for fam, typ := range typed {
		if typ != "histogram" {
			continue
		}
		if infBucket[fam] != countSeries[fam] {
			t.Fatalf("%s: +Inf bucket %d != _count %d", fam, infBucket[fam], countSeries[fam])
		}
		if countSeries[fam] != 5 {
			t.Fatalf("%s: _count = %d, want 5", fam, countSeries[fam])
		}
	}

	// Every family carries HELP, including dynamically named ones.
	for _, fam := range []string{"autotune_candidates_total", "custom_thing_total",
		"swsim_dma_triad_gbps", "infer_dma_hidden_ratio", "exec_run_seconds"} {
		if !helped[fam] {
			t.Fatalf("no HELP line for %s", fam)
		}
	}

	// SetHelp text is escaped: the raw newline and backslash must appear
	// as \n and \\ escape sequences on one comment line.
	if !strings.Contains(page, `# HELP custom_thing_total line one\nline two with \\ backslash`) {
		t.Fatalf("escaped HELP text missing:\n%s", page)
	}
	// Built-in table text is used for known families.
	if !strings.Contains(page, "# HELP autotune_candidates_total Schedule candidates enumerated") {
		t.Fatalf("default help table not applied:\n%s", page)
	}
}
