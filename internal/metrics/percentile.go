package metrics

// Nearest-rank percentiles, shared by every consumer that summarizes a
// latency or cost distribution (the serving load-test report, the
// time-series history's windowed histogram queries, bench attribution).
// One definition means "p99" is the same number everywhere it is printed.

// PercentileIndex returns the 0-based nearest-rank index of the p-th
// percentile in an ascending-sorted collection of n samples, or -1 when
// n <= 0. The rank is ceil(p/100*n) with a small epsilon absorbing float
// rounding (so p=50 over 8 samples selects rank 4, not 5), clamped into
// [0, n-1] for out-of-range p.
func PercentileIndex(n int, p float64) int {
	if n <= 0 {
		return -1
	}
	idx := int(p/100*float64(n)+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return idx
}

// Percentile is the nearest-rank percentile of an ascending-sorted slice
// (0 on an empty slice). The caller sorts; ties and repeated values behave
// like any other sample.
func Percentile(sorted []float64, p float64) float64 {
	idx := PercentileIndex(len(sorted), p)
	if idx < 0 {
		return 0
	}
	return sorted[idx]
}
