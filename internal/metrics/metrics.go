// Package metrics is the repo's observability substrate: a dependency-free,
// concurrency-safe registry of named counters, gauges and fixed-bucket
// histograms. Every layer of the system — the simulated machine, the
// executor, the autotuner, the schedule cache and the inference runtime —
// publishes into a registry, and CLIs expose the snapshot as JSON, a
// Prometheus-style text page or a human-readable table.
//
// Design rules:
//
//   - Nil receivers are inert, like the faults.Injector: instrumentation is
//     written unconditionally (reg.Counter("x").Inc()) and costs one nil
//     check when no registry is attached, so production hot paths carry no
//     branching around every metric site.
//   - Values that must stay deterministic across host parallelism (machine
//     counters, simulated seconds) are only ever recorded from deterministic
//     call sequences; wall-clock metrics (autotune_*_wall_seconds) are
//     expected to differ run to run.
//   - Snapshot is a point-in-time copy, not a linearizable cut: concurrent
//     writers may land between reads of different metrics. Within one metric
//     the read is atomic.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters never go
// backwards).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set, added to, or raised to a maximum.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Max atomically raises the gauge to v if v is larger.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the gauge (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (ascending upper
// bounds, with an implicit +Inf overflow bucket) and tracks count and sum.
// Each bucket can additionally carry an exemplar — an opaque reference
// (in practice a trace ID) to the most recent observation that landed in
// it, linking latency buckets back to concrete sampled requests.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count     atomic.Int64
	sumBits   atomic.Uint64
	exemplars []atomic.Pointer[string] // len(bounds)+1, lazily populated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.ObserveExemplar(v, "")
}

// ObserveExemplar records one value and, when exemplar is non-empty,
// attaches it to the bucket the value landed in (last writer wins).
// Nil-safe like Observe.
func (h *Histogram) ObserveExemplar(v float64, exemplar string) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bounds[idx]
	h.counts[idx].Add(1)
	h.count.Add(1)
	if exemplar != "" {
		h.exemplars[idx].Store(&exemplar)
	}
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Exemplars returns the per-bucket exemplar strings ("" where none was
// recorded), or nil when the histogram has never seen one. Index i matches
// bucket i of Counts in the snapshot (the last entry is the overflow
// bucket).
func (h *Histogram) Exemplars() []string {
	if h == nil {
		return nil
	}
	var out []string
	any := false
	for i := range h.exemplars {
		if p := h.exemplars[i].Load(); p != nil {
			if out == nil {
				out = make([]string, len(h.exemplars))
			}
			out[i] = *p
			any = true
		}
	}
	if !any {
		return nil
	}
	return out
}

// Count is the total number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// TimeBuckets are the default upper bounds (seconds) for duration
// histograms, spanning the microsecond-to-tens-of-seconds range simulated
// operators and tuning runs occupy.
var TimeBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is inert: every lookup returns a nil metric
// whose methods are no-ops.
//
// A Registry value is either a root (owning the metric maps) or a scoped
// view created by Scope: the view shares the root's storage but prepends a
// fixed prefix to every metric name it touches. Scopes are how concurrent
// producers — e.g. the simulated core groups of a fleet — write into one
// registry without colliding: disjoint prefixes mean disjoint names, so
// each producer's deterministic write sequence stays deterministic in the
// merged snapshot regardless of goroutine interleaving.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string

	// root points at the registry owning the maps when this value is a
	// scoped view (nil on a root); prefix is prepended to every name the
	// view touches.
	root   *Registry
	prefix string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// base returns the registry owning the storage: the receiver itself for a
// root, the root for a scoped view.
func (r *Registry) base() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

// Scope returns a view of the registry that prepends prefix to every
// metric name: Scope("group0_").Counter("dma_ops") is the root's
// "group0_dma_ops" counter. Views share the root's storage (scoping an
// existing view concatenates prefixes) and are as concurrency-safe as the
// root. Nil-safe: a nil registry scopes to nil, and an empty prefix
// returns the receiver unchanged.
func (r *Registry) Scope(prefix string) *Registry {
	if r == nil || prefix == "" {
		return r
	}
	return &Registry{root: r.base(), prefix: r.prefix + prefix}
}

// Prefix reports the view's accumulated name prefix ("" on a root).
func (r *Registry) Prefix() string {
	if r == nil {
		return ""
	}
	return r.prefix
}

// SetHelp attaches Prometheus exposition help text to a metric name,
// overriding the built-in description table. Nil-safe.
func (r *Registry) SetHelp(name, text string) {
	if r == nil {
		return
	}
	b := r.base()
	b.mu.Lock()
	b.help[r.prefix+name] = text
	b.mu.Unlock()
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the facade publishes into when
// no explicit registry is attached.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	b := r.base()
	name = r.prefix + name
	b.mu.RLock()
	c := b.counters[name]
	b.mu.RUnlock()
	if c != nil {
		return c
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c = b.counters[name]; c == nil {
		c = &Counter{}
		b.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	b := r.base()
	name = r.prefix + name
	b.mu.RLock()
	g := b.gauges[name]
	b.mu.RUnlock()
	if g != nil {
		return g
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if g = b.gauges[name]; g == nil {
		g = &Gauge{}
		b.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (TimeBuckets when none are given). Later calls
// return the existing histogram regardless of the bounds argument. Nil-safe.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	b := r.base()
	name = r.prefix + name
	b.mu.RLock()
	h := b.hists[name]
	b.mu.RUnlock()
	if h != nil {
		return h
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if h = b.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = TimeBuckets
		}
		bb := append([]float64(nil), bounds...)
		sort.Float64s(bb)
		h = &Histogram{
			bounds:    bb,
			counts:    make([]atomic.Int64, len(bb)+1),
			exemplars: make([]atomic.Pointer[string], len(bb)+1),
		}
		b.hists[name] = h
	}
	return h
}
