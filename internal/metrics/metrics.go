// Package metrics is the repo's observability substrate: a dependency-free,
// concurrency-safe registry of named counters, gauges and fixed-bucket
// histograms. Every layer of the system — the simulated machine, the
// executor, the autotuner, the schedule cache and the inference runtime —
// publishes into a registry, and CLIs expose the snapshot as JSON, a
// Prometheus-style text page or a human-readable table.
//
// Design rules:
//
//   - Nil receivers are inert, like the faults.Injector: instrumentation is
//     written unconditionally (reg.Counter("x").Inc()) and costs one nil
//     check when no registry is attached, so production hot paths carry no
//     branching around every metric site.
//   - Values that must stay deterministic across host parallelism (machine
//     counters, simulated seconds) are only ever recorded from deterministic
//     call sequences; wall-clock metrics (autotune_*_wall_seconds) are
//     expected to differ run to run.
//   - Snapshot is a point-in-time copy, not a linearizable cut: concurrent
//     writers may land between reads of different metrics. Within one metric
//     the read is atomic.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters never go
// backwards).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value reads the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can be set, added to, or raised to a maximum.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add atomically adds v.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Max atomically raises the gauge to v if v is larger.
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reads the gauge (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (ascending upper
// bounds, with an implicit +Inf overflow bucket) and tracks count and sum.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Int64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bounds[idx]
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count is the total number of observations (0 on a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the sum of all observed values (0 on a nil histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// TimeBuckets are the default upper bounds (seconds) for duration
// histograms, spanning the microsecond-to-tens-of-seconds range simulated
// operators and tuning runs occupy.
var TimeBuckets = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. A nil *Registry is inert: every lookup returns a nil metric
// whose methods are no-ops.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	help     map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		help:     map[string]string{},
	}
}

// SetHelp attaches Prometheus exposition help text to a metric name,
// overriding the built-in description table. Nil-safe.
func (r *Registry) SetHelp(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = text
	r.mu.Unlock()
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the facade publishes into when
// no explicit registry is attached.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use. Nil-safe.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (TimeBuckets when none are given). Later calls
// return the existing histogram regardless of the bounds argument. Nil-safe.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		if len(bounds) == 0 {
			bounds = TimeBuckets
		}
		b := append([]float64(nil), bounds...)
		sort.Float64s(b)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		r.hists[name] = h
	}
	return h
}
