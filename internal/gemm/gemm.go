// Package gemm defines the matrix-multiplication operator for swATOP:
// the DSL schedule seed ("three nested loops", §3) and the schedule space
// the paper's Listing 2 experiments tune over.
package gemm

import (
	"fmt"

	"swatop/internal/dsl"
	"swatop/internal/ir"
	"swatop/internal/tensor"
)

// Params is a GEMM problem size: C[M×N] = A[M×K] × B[K×N].
type Params struct {
	M, N, K int
}

func (p Params) String() string { return fmt.Sprintf("gemm(M=%d,N=%d,K=%d)", p.M, p.N, p.K) }

// FLOPs is the floating-point operation count.
func (p Params) FLOPs() int64 { return 2 * int64(p.M) * int64(p.N) * int64(p.K) }

// Validate rejects degenerate sizes.
func (p Params) Validate() error {
	if p.M <= 0 || p.N <= 0 || p.K <= 0 {
		return fmt.Errorf("gemm: non-positive dims %+v", p)
	}
	return nil
}

// Seed builds the schedule seed: axes (m, n, k) and the three operands.
func Seed(p Params) (*dsl.Seed, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := dsl.NewSeed(fmt.Sprintf("gemm_%dx%dx%d", p.M, p.N, p.K))
	s.AddAxis("m", p.M, dsl.RoleM)
	s.AddAxis("n", p.N, dsl.RoleN)
	s.AddAxis("k", p.K, dsl.RoleK)
	s.AddTensor("A", []int{p.M, p.K}, dsl.OperandA, dsl.Dim("m"), dsl.Dim("k"))
	s.AddTensor("B", []int{p.K, p.N}, dsl.OperandB, dsl.Dim("k"), dsl.Dim("n"))
	s.AddTensor("C", []int{p.M, p.N}, dsl.OperandC, dsl.Dim("m"), dsl.Dim("n"))
	return s, nil
}

// tileMenu returns tile-factor candidates for an extent: a fixed menu
// clipped to the extent, always including the extent itself when small
// (removing the loop entirely). Factors need not divide the extent —
// boundary processing handles remainders.
func tileMenu(extent int, menu []int) []int {
	var out []int
	for _, f := range menu {
		if f < extent {
			out = append(out, f)
		}
	}
	if extent <= menu[len(menu)-1] {
		out = append(out, extent)
	}
	if len(out) == 0 {
		out = []int{extent}
	}
	return out
}

// Space builds the schedule space of the GEMM operator.
func Space(p Params) *dsl.Space {
	sp := dsl.NewSpace()
	sp.Factors["m"] = tileMenu(p.M, []int{64, 128, 256, 512})
	sp.Factors["n"] = tileMenu(p.N, []int{64, 128, 256, 512})
	sp.Factors["k"] = tileMenu(p.K, []int{128, 256, 512})
	sp.Reorder("m", "n", "k")
	sp.Reorder("n", "m", "k")
	// Layouts: C must keep M leading (column-major). A and B may be stored
	// either way; the choice trades DMA contiguity against the micro-kernel
	// load instruction set.
	sp.Layout("C", 1, 0)
	sp.Layout("A", 0, 1)
	sp.Layout("A", 1, 0)
	sp.Layout("B", 0, 1)
	sp.Layout("B", 1, 0)
	sp.Vecs = []ir.VecDim{ir.VecM, ir.VecN}
	return sp
}

// Bind creates operand tensors with the layouts a lowered program chose,
// filled with a deterministic pattern; the returned map is ready for
// exec.Run.
func Bind(prog *ir.Program) (map[string]*tensor.Tensor, error) {
	binds := map[string]*tensor.Tensor{}
	for _, decl := range prog.Tensors {
		if decl.Scratch {
			continue
		}
		layout := decl.Layout
		if layout == nil {
			layout = make([]int, len(decl.Dims))
			for i := range layout {
				layout[i] = i
			}
		}
		t, err := tensor.NewWithLayout(decl.Name, decl.Dims, layout)
		if err != nil {
			return nil, err
		}
		if !decl.Output {
			t.FillPattern()
		}
		binds[decl.Name] = t
	}
	return binds, nil
}
