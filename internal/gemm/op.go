package gemm

import (
	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/ir"
)

// Op is the tunable GEMM operator (implements autotune.Operator).
type Op struct {
	P     Params
	seed  *dsl.Seed
	space *dsl.Space
}

// NewOp builds the operator with its default schedule space.
func NewOp(p Params) (*Op, error) {
	seed, err := Seed(p)
	if err != nil {
		return nil, err
	}
	return &Op{P: p, seed: seed, space: Space(p)}, nil
}

// Name identifies the operator instance.
func (o *Op) Name() string { return o.seed.Name }

// Seed returns the schedule seed.
func (o *Op) Seed() *dsl.Seed { return o.seed }

// Space returns the schedule space (callers may mutate it to ablate).
func (o *Op) Space() *dsl.Space { return o.space }

// Compile lowers and optimizes one strategy.
func (o *Op) Compile(st dsl.Strategy) (*ir.Program, error) {
	return core.Compile(o.seed, st)
}
