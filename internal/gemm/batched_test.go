package gemm

import (
	"math"
	"testing"

	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/ir"
)

func TestBatchedGemmFunctional(t *testing.T) {
	p := BatchedParams{Batch: 3, M: 20, N: 12, K: 16}
	op, err := NewBatchedOp(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, layC := range [][]int{{0, 1, 2}, {0, 2, 1}} {
		st := dsl.Strategy{
			Factors:      map[string]int{"m": 8, "n": 8, "k": 8},
			Order:        []string{"g", "m", "n", "k"},
			Layouts:      map[string][]int{"A": {0, 1, 2}, "B": {0, 1, 2}, "C": layC},
			Vec:          ir.VecM,
			DoubleBuffer: true,
		}
		prog, err := op.Compile(st)
		if err != nil {
			t.Fatalf("compile C=%v: %v", layC, err)
		}
		binds, err := Bind(prog)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := exec.Run(prog, binds, exec.Options{Functional: true}); err != nil {
			t.Fatalf("exec: %v", err)
		}
		// Oracle per slice.
		for g := 0; g < p.Batch; g++ {
			for i := 0; i < p.M; i++ {
				for j := 0; j < p.N; j++ {
					var want float32
					for k := 0; k < p.K; k++ {
						want += binds["A"].At(g, i, k) * binds["B"].At(g, k, j)
					}
					got := binds["C"].At(g, i, j)
					if math.Abs(float64(got-want)) > 1e-2 {
						t.Fatalf("C[%d][%d][%d] = %g, want %g (layC=%v)", g, i, j, got, want, layC)
					}
				}
			}
		}
	}
}

func TestBatchedGemmValidation(t *testing.T) {
	if _, err := NewBatchedOp(BatchedParams{Batch: 0, M: 1, N: 1, K: 1}); err == nil {
		t.Fatal("zero batch must be rejected")
	}
	p := BatchedParams{Batch: 4, M: 8, N: 8, K: 8}
	if p.FLOPs() != 2*4*8*8*8 {
		t.Fatalf("FLOPs = %d", p.FLOPs())
	}
	op, err := NewBatchedOp(p)
	if err != nil {
		t.Fatal(err)
	}
	if op.Name() == "" || op.Seed() == nil || op.Space() == nil {
		t.Fatal("incomplete operator")
	}
	if err := op.Seed().Validate(); err != nil {
		t.Fatal(err)
	}
}
