package gemm

import (
	"fmt"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/ir"
)

// BatchedParams is a batched matrix multiplication: Batch independent
// products C[g] = A[g] × B[g] — the shape of Winograd's 16 plane products
// and of attention workloads.
type BatchedParams struct {
	Batch, M, N, K int
}

func (p BatchedParams) String() string {
	return fmt.Sprintf("bgemm(G=%d,M=%d,N=%d,K=%d)", p.Batch, p.M, p.N, p.K)
}

// FLOPs is the total floating-point operation count.
func (p BatchedParams) FLOPs() int64 {
	return 2 * int64(p.Batch) * int64(p.M) * int64(p.N) * int64(p.K)
}

// Validate rejects degenerate sizes.
func (p BatchedParams) Validate() error {
	if p.Batch <= 0 || p.M <= 0 || p.N <= 0 || p.K <= 0 {
		return fmt.Errorf("batched gemm: non-positive dims %+v", p)
	}
	return nil
}

// BatchedOp is the tunable batched-GEMM operator.
type BatchedOp struct {
	P     BatchedParams
	seed  *dsl.Seed
	space *dsl.Space
}

// NewBatchedOp builds the operator and its schedule space.
func NewBatchedOp(p BatchedParams) (*BatchedOp, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	seed := dsl.NewSeed(fmt.Sprintf("bgemm_%dx%dx%dx%d", p.Batch, p.M, p.N, p.K))
	seed.AddAxis("g", p.Batch, dsl.RoleSpatial)
	seed.AddAxis("m", p.M, dsl.RoleM)
	seed.AddAxis("n", p.N, dsl.RoleN)
	seed.AddAxis("k", p.K, dsl.RoleK)
	seed.AddTensor("A", []int{p.Batch, p.M, p.K}, dsl.OperandA,
		dsl.Dim("g"), dsl.Dim("m"), dsl.Dim("k"))
	seed.AddTensor("B", []int{p.Batch, p.K, p.N}, dsl.OperandB,
		dsl.Dim("g"), dsl.Dim("k"), dsl.Dim("n"))
	seed.AddTensor("C", []int{p.Batch, p.M, p.N}, dsl.OperandC,
		dsl.Dim("g"), dsl.Dim("m"), dsl.Dim("n"))

	sp := dsl.NewSpace()
	sp.Factors["m"] = tileMenu(p.M, []int{64, 128, 256})
	sp.Factors["n"] = tileMenu(p.N, []int{64, 128, 256})
	sp.Factors["k"] = tileMenu(p.K, []int{64, 128, 256})
	sp.Reorder("g", "m", "n", "k")
	sp.Reorder("g", "n", "m", "k")
	sp.Layout("A", 0, 1, 2)
	sp.Layout("A", 0, 2, 1)
	sp.Layout("B", 0, 1, 2)
	sp.Layout("B", 0, 2, 1)
	sp.Layout("C", 0, 1, 2)
	sp.Layout("C", 0, 2, 1)
	return &BatchedOp{P: p, seed: seed, space: sp}, nil
}

// Name identifies the operator instance.
func (o *BatchedOp) Name() string { return o.seed.Name }

// Seed returns the schedule seed.
func (o *BatchedOp) Seed() *dsl.Seed { return o.seed }

// Space returns the schedule space.
func (o *BatchedOp) Space() *dsl.Space { return o.space }

// Compile lowers and optimizes one strategy.
func (o *BatchedOp) Compile(st dsl.Strategy) (*ir.Program, error) {
	return core.Compile(o.seed, st)
}
