package gemm

import (
	"testing"

	"swatop/internal/dsl"
	"swatop/internal/ir"
)

func TestSeedShape(t *testing.T) {
	s, err := Seed(Params{M: 64, N: 48, K: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Axes) != 3 || len(s.Tensors) != 3 {
		t.Fatalf("seed has %d axes, %d tensors", len(s.Axes), len(s.Tensors))
	}
	if _, err := Seed(Params{M: 0, N: 1, K: 1}); err == nil {
		t.Fatal("degenerate params must be rejected")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{M: 2, N: 3, K: 4}
	if p.FLOPs() != 48 {
		t.Fatalf("FLOPs = %d", p.FLOPs())
	}
	if p.String() == "" {
		t.Fatal("empty String()")
	}
	if (Params{M: -1, N: 1, K: 1}).Validate() == nil {
		t.Fatal("negative dim must be invalid")
	}
}

func TestSpaceMenusClip(t *testing.T) {
	sp := Space(Params{M: 100, N: 8192, K: 300})
	for _, f := range sp.Factors["m"] {
		if f > 100 {
			t.Fatalf("m factor %d beyond extent", f)
		}
	}
	// Large extents keep the full menu but never the extent itself.
	for _, f := range sp.Factors["n"] {
		if f > 512 {
			t.Fatalf("n factor %d beyond menu", f)
		}
	}
	if len(sp.Orders) == 0 || len(sp.Vecs) != 2 {
		t.Fatal("space missing orders or vecs")
	}
}

func TestTileMenuTinyExtent(t *testing.T) {
	if got := tileMenu(5, []int{64, 128}); len(got) != 1 || got[0] != 5 {
		t.Fatalf("tiny extent menu = %v", got)
	}
	if got := tileMenu(64, []int{64, 128}); got[len(got)-1] != 64 {
		t.Fatalf("exact extent should be included: %v", got)
	}
}

func TestOpInterface(t *testing.T) {
	op, err := NewOp(Params{M: 64, N: 64, K: 64})
	if err != nil {
		t.Fatal(err)
	}
	if op.Name() == "" || op.Seed() == nil || op.Space() == nil {
		t.Fatal("incomplete operator")
	}
	st := dsl.Strategy{
		Factors: map[string]int{"m": 64, "n": 64, "k": 64},
		Layouts: map[string][]int{"C": {1, 0}},
		Vec:     ir.VecM,
	}
	prog, err := op.Compile(st)
	if err != nil {
		t.Fatal(err)
	}
	binds, err := Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B", "C"} {
		if binds[name] == nil {
			t.Fatalf("binding for %s missing", name)
		}
	}
	// Inputs patterned, outputs zeroed.
	if binds["A"].At(1, 1) == 0 && binds["A"].At(0, 1) == 0 {
		t.Fatal("input not patterned")
	}
	if binds["C"].At(1, 1) != 0 {
		t.Fatal("output not zeroed")
	}
	// Bind honours the chosen layout.
	if binds["C"].Strides[0] != 1 {
		t.Fatalf("C layout ignored: %v", binds["C"].Strides)
	}
}
