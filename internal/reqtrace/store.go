package reqtrace

import (
	"hash/fnv"
	"net/http"
	"sort"
	"sync"
)

// Store retains finished traces in a bounded in-memory buffer with
// tail-based sampling: the retention decision is made after the request
// finishes, when its outcome is known. Slow, shed, expired, degraded and
// failed requests are always kept (those are the traces someone will ask
// for); ordinary fast 200s are kept with a deterministic per-trace-ID
// probability. When the buffer is full, probabilistically sampled traces
// are evicted before always-keep ones, oldest first within each class.
type Store struct {
	capacity   int
	slowMs     float64
	sampleRate float64

	mu     sync.Mutex
	traces map[string]*Trace
	// order tracks insertion order per class for eviction.
	sampled   []string
	important []string
	added     uint64
	dropped   uint64
	evicted   uint64
}

// StoreOptions shape a Store.
type StoreOptions struct {
	// Capacity bounds the retained trace count (default 256).
	Capacity int
	// SlowMs is the latency above which a 200 is always kept
	// (default 100ms).
	SlowMs float64
	// SampleRate is the keep probability for ordinary fast 200s, in
	// [0, 1] (default 0.1). The decision hashes the trace ID, so the same
	// request is sampled identically on every replica.
	SampleRate float64
}

// NewStore builds a trace store.
func NewStore(opts StoreOptions) *Store {
	if opts.Capacity < 1 {
		opts.Capacity = 256
	}
	if opts.SlowMs <= 0 {
		opts.SlowMs = 100
	}
	if opts.SampleRate < 0 {
		opts.SampleRate = 0
	}
	if opts.SampleRate == 0 {
		opts.SampleRate = 0.1
	}
	if opts.SampleRate > 1 {
		opts.SampleRate = 1
	}
	return &Store{
		capacity:   opts.Capacity,
		slowMs:     opts.SlowMs,
		sampleRate: opts.SampleRate,
		traces:     map[string]*Trace{},
	}
}

// SlowMs reports the always-keep latency threshold.
func (st *Store) SlowMs() float64 {
	if st == nil {
		return 0
	}
	return st.slowMs
}

// keepReason classifies a finished trace: a non-empty reason other than
// "sampled" means always-keep; "" means drop.
func (st *Store) keepReason(tr *Trace) string {
	switch {
	case tr.Status == http.StatusTooManyRequests:
		return "shed"
	case tr.Status == http.StatusRequestTimeout:
		return "deadline"
	case tr.Status != http.StatusOK:
		return "error"
	case tr.Degraded:
		return "degraded"
	case tr.LatencyMs >= st.slowMs:
		return "slow"
	case sampleHash(tr.ID) < st.sampleRate:
		return "sampled"
	}
	return ""
}

// sampleHash maps a trace ID to [0, 1) deterministically. FNV-1a's low
// bits avalanche much better than its high bits on short inputs, so the
// fraction comes from the low 53 bits.
func sampleHash(id string) float64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return float64(h.Sum64()&(1<<53-1)) / float64(1<<53)
}

// Add applies the tail-sampling decision and retains the trace if it
// qualifies. Returns the keep reason ("" when dropped). Nil-safe.
func (st *Store) Add(tr Trace) string {
	if st == nil || tr.ID == "" {
		return ""
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	reason := st.keepReason(&tr)
	if reason == "" {
		st.dropped++
		return ""
	}
	tr.Keep = reason
	if _, ok := st.traces[tr.ID]; ok {
		// Trace ID collision (client reused a traceparent): keep the
		// newest occurrence.
		st.traces[tr.ID] = &tr
		return reason
	}
	for len(st.traces) >= st.capacity {
		st.evictLocked()
	}
	st.traces[tr.ID] = &tr
	if reason == "sampled" {
		st.sampled = append(st.sampled, tr.ID)
	} else {
		st.important = append(st.important, tr.ID)
	}
	st.added++
	return reason
}

// evictLocked removes one trace: the oldest probabilistically sampled one
// if any exist, otherwise the oldest always-keep one.
func (st *Store) evictLocked() {
	lists := []*[]string{&st.sampled, &st.important}
	for _, l := range lists {
		for len(*l) > 0 {
			id := (*l)[0]
			*l = (*l)[1:]
			if _, ok := st.traces[id]; ok {
				delete(st.traces, id)
				st.evicted++
				return
			}
		}
	}
	// Both lists empty but the map is full: cannot happen (every map
	// entry is in exactly one list), but never loop forever.
	for id := range st.traces {
		delete(st.traces, id)
		st.evicted++
		return
	}
}

// Get returns the retained trace for an ID, or nil.
func (st *Store) Get(id string) *Trace {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.traces[id]
}

// Len is the retained trace count.
func (st *Store) Len() int {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.traces)
}

// Stats is the store's summary block for /tracez.
type Stats struct {
	Capacity int     `json:"capacity"`
	Retained int     `json:"retained"`
	Added    uint64  `json:"added_total"`
	Dropped  uint64  `json:"dropped_total"`
	Evicted  uint64  `json:"evicted_total"`
	SlowMs   float64 `json:"slow_ms"`
	Sample   float64 `json:"sample_rate"`
}

// Stats freezes the store counters.
func (st *Store) Stats() Stats {
	if st == nil {
		return Stats{}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return Stats{
		Capacity: st.capacity,
		Retained: len(st.traces),
		Added:    st.added,
		Dropped:  st.dropped,
		Evicted:  st.evicted,
		SlowMs:   st.slowMs,
		Sample:   st.sampleRate,
	}
}

// Traces returns the retained traces, newest first (by admission time,
// trace ID as tie-break so the order is total).
func (st *Store) Traces() []*Trace {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	out := make([]*Trace, 0, len(st.traces))
	for _, tr := range st.traces {
		out = append(out, tr)
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.After(out[j].Start)
		}
		return out[i].ID < out[j].ID
	})
	return out
}
