package reqtrace

import (
	"encoding/json"
	"net/http"
	"strings"

	"swatop/internal/trace"
)

// traceSummary is one row of the /tracez listing.
type traceSummary struct {
	ID        string  `json:"trace_id"`
	Status    int     `json:"status"`
	Degraded  bool    `json:"degraded,omitempty"`
	LatencyMs float64 `json:"latency_ms"`
	Keep      string  `json:"keep_reason"`
	Spans     int     `json:"spans"`
	Start     string  `json:"start"`
}

// Handler serves the trace store:
//
//	/tracez          — store stats + retained trace summaries, newest first
//	/tracez/<id>     — full span tree of one trace (JSON)
//	/tracez/<id>?format=chrome — the same trace as a Chrome/Perfetto flame
//
// Mount it at /tracez on an observability mux.
func (st *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if st == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		id := strings.Trim(strings.TrimPrefix(r.URL.Path, "/tracez"), "/")
		if id == "" {
			st.serveList(w)
			return
		}
		tr := st.Get(id)
		if tr == nil {
			http.Error(w, "trace not found (evicted or not sampled)", http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Content-Disposition", "attachment; filename=trace-"+tr.ID+".json")
			_ = tr.ChromeLog().WriteChromeTrace(w)
			return
		}
		writeTraceJSON(w, tr)
	})
}

func (st *Store) serveList(w http.ResponseWriter) {
	traces := st.Traces()
	rows := make([]traceSummary, 0, len(traces))
	for _, tr := range traces {
		rows = append(rows, traceSummary{
			ID:        tr.ID,
			Status:    tr.Status,
			Degraded:  tr.Degraded,
			LatencyMs: tr.LatencyMs,
			Keep:      tr.Keep,
			Spans:     len(tr.Spans),
			Start:     tr.Start.Format("2006-01-02T15:04:05.000Z07:00"),
		})
	}
	writeTraceJSON(w, struct {
		Stats  Stats          `json:"stats"`
		Traces []traceSummary `json:"traces"`
	}{st.Stats(), rows})
}

func writeTraceJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ChromeLog converts the trace into a machine-timeline Log whose Kinds are
// the request phases, so the existing Chrome/Perfetto exporter renders the
// request as one flame: queue/batch/respond on the serve lane (group -1
// is clamped to 0), exec/comm on their core-group lanes. Span times become
// "seconds" on the export clock (the exporter multiplies by 1e6, so
// milliseconds land as microseconds-scale units in the viewer — relative
// proportions, the thing a flame shows, are exact).
func (tr *Trace) ChromeLog() *trace.Log {
	l := &trace.Log{}
	for _, sp := range tr.Spans {
		g := sp.Group
		if g < 0 {
			g = 0
		}
		name := sp.Name
		if name == "" {
			name = sp.Phase
		}
		l.Events = append(l.Events, trace.Event{
			Kind:  trace.Kind(sp.Phase),
			Label: name,
			Start: sp.StartMs / 1e3,
			Dur:   sp.DurMs / 1e3,
			Group: g,
			Args:  copyArgs(sp.Args),
		})
	}
	l.Annotate("trace_id", tr.ID)
	return l
}

func copyArgs(args map[string]string) map[string]string {
	if len(args) == 0 {
		return nil
	}
	out := make(map[string]string, len(args))
	for k, v := range args {
		out[k] = v
	}
	return out
}
