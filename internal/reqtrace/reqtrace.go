// Package reqtrace is request-scoped distributed tracing for the serving
// path: every request admitted by the swserve daemon gets a trace ID (W3C
// traceparent, parsed from and emitted on HTTP) and a tree of spans —
// admit, queue-wait, batch-formation, schedule-resolve, per-group
// execution, inter-group comm, respond — each carrying the same
// Args-style metadata the machine timeline (internal/trace) uses, so a
// single request renders as one flame in the Chrome/Perfetto exporter.
//
// The package follows the repo's two observability rules:
//
//   - Nil receivers are inert: the Recorder and Spans collectors are safe
//     to call unconditionally, so the serving and inference hot paths
//     carry no branching around tracing.
//   - Tracing is purely observational. Spans record wall-clock intervals
//     around deterministic simulated work; they never feed back into
//     schedule selection or the simulated machine, so per-group machine
//     seconds stay bit-identical with tracing on or off.
package reqtrace

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span phases, in causal order along the serving path.
const (
	PhaseAdmit   = "admit"   // Submit: admission decision
	PhaseQueue   = "queue"   // enqueue -> batcher pickup
	PhaseBatch   = "batch"   // batcher pickup -> batch dispatch (window fill)
	PhaseResolve = "resolve" // per-operator schedule resolution (cache/tune)
	PhaseExec    = "exec"    // per-group batch execution
	PhaseComm    = "comm"    // modeled inter-group communication share
	PhaseRespond = "respond" // batch done -> outcome delivered
)

// Span is one interval of a request's life, relative to the trace start.
type Span struct {
	Phase string `json:"phase"`
	Name  string `json:"name"`
	// StartMs/DurMs are wall-clock milliseconds relative to the trace
	// start.
	StartMs float64 `json:"start_ms"`
	DurMs   float64 `json:"dur_ms"`
	// Group is the simulated core group for exec/comm spans (-1 when the
	// span is not group-bound).
	Group int `json:"group"`
	// Args carries span metadata (cached/degraded flags, strategy,
	// machine milliseconds, comm src/dst groups, ...).
	Args map[string]string `json:"args,omitempty"`
}

// Trace is one finished request: identity, outcome and the span tree.
type Trace struct {
	// ID is the 16-byte W3C trace id in lowercase hex.
	ID string `json:"trace_id"`
	// Parent is the 8-byte parent span id from an incoming traceparent
	// header ("" when the trace originated here).
	Parent string `json:"parent_span_id,omitempty"`
	// Start is the wall-clock admission time.
	Start time.Time `json:"start"`
	// Status is the request's terminal HTTP status (200, 408, 429, 503).
	Status int `json:"status"`
	// Degraded marks a response served by the baseline-fallback path.
	Degraded bool `json:"degraded,omitempty"`
	// LatencyMs is the end-to-end wall latency.
	LatencyMs float64 `json:"latency_ms"`
	// Keep records why the store retained the trace ("slow", "shed",
	// "deadline", "degraded", "error", "sampled").
	Keep string `json:"keep_reason,omitempty"`
	// Spans is the span tree in recording order.
	Spans []Span `json:"spans"`
}

// traceparent implements the W3C Trace Context header:
//
//	00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
const traceparentVersion = "00"

// ParseTraceparent extracts the trace id and parent span id from a W3C
// traceparent value. It returns ok=false (and empty ids) for anything
// malformed — a bad header starts a fresh trace instead of failing the
// request.
func ParseTraceparent(h string) (traceID, parentID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 {
		return "", "", false
	}
	tid, pid := strings.ToLower(parts[1]), strings.ToLower(parts[2])
	if !isHex(tid, 32) || !isHex(pid, 16) || !isHex(strings.ToLower(parts[3]), 2) {
		return "", "", false
	}
	if tid == strings.Repeat("0", 32) || pid == strings.Repeat("0", 16) {
		return "", "", false
	}
	return tid, pid, true
}

// FormatTraceparent renders the header value for a trace id and span id,
// with the sampled flag set (the daemon decides retention tail-based, but
// downstream services should keep collecting).
func FormatTraceparent(traceID, spanID string) string {
	return traceparentVersion + "-" + traceID + "-" + spanID + "-01"
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

// NewTraceID returns a fresh random 32-hex-char trace id.
func NewTraceID() string { return randomHex(16) }

// NewSpanID returns a fresh random 16-hex-char span id.
func NewSpanID() string { return randomHex(8) }

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		// crypto/rand never fails on supported platforms; keep the id
		// non-empty anyway so traces stay addressable.
		for i := range b {
			b[i] = byte(i + 1)
		}
	}
	return hex.EncodeToString(b)
}

// Recorder collects one request's spans. It is concurrency-safe (the
// admitting goroutine and the batcher both record) and nil-inert.
type Recorder struct {
	mu    sync.Mutex
	id    string
	paren string
	start time.Time
	spans []Span
	done  bool
}

// Start begins a trace for one request. traceparent is the incoming
// header value ("" or malformed starts a fresh trace).
func Start(traceparent string) *Recorder {
	r := &Recorder{start: time.Now()}
	if tid, pid, ok := ParseTraceparent(traceparent); ok {
		r.id, r.paren = tid, pid
	} else {
		r.id = NewTraceID()
	}
	return r
}

// ID returns the trace id ("" on a nil recorder).
func (r *Recorder) ID() string {
	if r == nil {
		return ""
	}
	return r.id
}

// StartTime returns the trace's admission time (zero on nil).
func (r *Recorder) StartTime() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// Span records one interval by absolute wall times, converted to
// trace-relative milliseconds. Nil-safe; spans recorded after Finish are
// dropped (the trace is already in the store).
func (r *Recorder) Span(phase, name string, start time.Time, dur time.Duration, args map[string]string) {
	r.span(phase, name, -1, start, dur, args)
}

// GroupSpan records a group-bound interval (exec/comm).
func (r *Recorder) GroupSpan(phase, name string, group int, start time.Time, dur time.Duration, args map[string]string) {
	r.span(phase, name, group, start, dur, args)
}

func (r *Recorder) span(phase, name string, group int, start time.Time, dur time.Duration, args map[string]string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return
	}
	r.spans = append(r.spans, Span{
		Phase:   phase,
		Name:    name,
		StartMs: start.Sub(r.start).Seconds() * 1e3,
		DurMs:   dur.Seconds() * 1e3,
		Group:   group,
		Args:    args,
	})
}

// Import copies a batch-level span set into this request's trace — every
// member of a coalesced batch shares the resolve/exec/comm spans, at the
// same absolute wall times.
func (r *Recorder) Import(s *Spans) {
	if r == nil || s == nil {
		return
	}
	for _, raw := range s.Snapshot() {
		r.span(raw.Phase, raw.Name, raw.Group, raw.Start, raw.Dur, raw.Args)
	}
}

// Finish seals the trace with its terminal status. latency is measured
// from the trace start. Returns the zero Trace on a nil recorder; calling
// Finish twice returns an empty second trace.
func (r *Recorder) Finish(status int, degraded bool, end time.Time) Trace {
	if r == nil {
		return Trace{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return Trace{}
	}
	r.done = true
	return Trace{
		ID:        r.id,
		Parent:    r.paren,
		Start:     r.start,
		Status:    status,
		Degraded:  degraded,
		LatencyMs: end.Sub(r.start).Seconds() * 1e3,
		Spans:     r.spans,
	}
}

// RawSpan is one absolute-time span in a batch-level collector, converted
// to trace-relative times when imported into a request's Recorder.
type RawSpan struct {
	Phase string
	Name  string
	Group int
	Start time.Time
	Dur   time.Duration
	Args  map[string]string
}

// Spans is a concurrency-safe batch-level span collector: the engine's
// resolve loop and the fleet's concurrent group goroutines all record
// into it, and the batcher imports the result into every member request's
// Recorder. Nil-inert like the Recorder.
type Spans struct {
	mu    sync.Mutex
	spans []RawSpan
}

// Add records one non-group span.
func (s *Spans) Add(phase, name string, start time.Time, dur time.Duration, args map[string]string) {
	s.AddGroup(phase, name, -1, start, dur, args)
}

// AddGroup records one group-bound span.
func (s *Spans) AddGroup(phase, name string, group int, start time.Time, dur time.Duration, args map[string]string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.spans = append(s.spans, RawSpan{
		Phase: phase, Name: name, Group: group,
		Start: start, Dur: dur, Args: args,
	})
	s.mu.Unlock()
}

// Snapshot copies the collected spans, ordered by start time (concurrent
// group goroutines append in scheduler order; sorting by wall start keeps
// the imported view stable and readable).
func (s *Spans) Snapshot() []RawSpan {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]RawSpan, len(s.spans))
	copy(out, s.spans)
	s.mu.Unlock()
	sortRawSpans(out)
	return out
}

// Len reports the collected span count (0 on nil).
func (s *Spans) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.spans)
}

// sortRawSpans orders by start time, then group, then phase/name — a
// total order, so snapshots of the same spans are identical regardless of
// append interleaving.
func sortRawSpans(spans []RawSpan) {
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && rawSpanLess(spans[j], spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func rawSpanLess(a, b RawSpan) bool {
	if !a.Start.Equal(b.Start) {
		return a.Start.Before(b.Start)
	}
	if a.Group != b.Group {
		return a.Group < b.Group
	}
	if a.Phase != b.Phase {
		return a.Phase < b.Phase
	}
	return a.Name < b.Name
}

// MsArg formats a millisecond value for span Args.
func MsArg(ms float64) string { return fmt.Sprintf("%.6g", ms) }
