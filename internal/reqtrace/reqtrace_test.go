package reqtrace

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseTraceparent(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	pid := "00f067aa0ba902b7"
	cases := []struct {
		in      string
		ok      bool
		id, par string
	}{
		{"00-" + tid + "-" + pid + "-01", true, tid, pid},
		{"  00-" + tid + "-" + pid + "-00  ", true, tid, pid},
		{"00-" + strings.ToUpper(tid) + "-" + pid + "-01", true, tid, pid},
		{"", false, "", ""},
		{"garbage", false, "", ""},
		{"00-" + tid + "-" + pid, false, "", ""},                             // missing flags
		{"00-" + tid[:31] + "-" + pid + "-01", false, "", ""},                // short trace id
		{"00-" + strings.Repeat("0", 32) + "-" + pid + "-01", false, "", ""}, // all-zero trace id
		{"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", false, "", ""}, // all-zero parent
		{"00-" + tid[:30] + "zz-" + pid + "-01", false, "", ""},              // non-hex
	}
	for _, c := range cases {
		id, par, ok := ParseTraceparent(c.in)
		if ok != c.ok || id != c.id || par != c.par {
			t.Errorf("ParseTraceparent(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, id, par, ok, c.id, c.par, c.ok)
		}
	}
}

func TestFormatTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	if len(tid) != 32 || len(sid) != 16 {
		t.Fatalf("id lengths: trace %d span %d", len(tid), len(sid))
	}
	h := FormatTraceparent(tid, sid)
	gotID, gotPar, ok := ParseTraceparent(h)
	if !ok || gotID != tid || gotPar != sid {
		t.Fatalf("round trip %q -> (%q, %q, %v)", h, gotID, gotPar, ok)
	}
}

func TestRecorderBasics(t *testing.T) {
	rec := Start("")
	if rec.ID() == "" {
		t.Fatal("fresh recorder has empty trace id")
	}
	t0 := rec.StartTime()
	rec.Span(PhaseQueue, "queue wait", t0, 2*time.Millisecond, nil)
	rec.GroupSpan(PhaseExec, "exec batch", 1, t0.Add(2*time.Millisecond), 3*time.Millisecond,
		map[string]string{"machine_ms": "1.5"})
	tr := rec.Finish(200, false, t0.Add(6*time.Millisecond))
	if tr.ID != rec.ID() || tr.Status != 200 {
		t.Fatalf("trace identity: %+v", tr)
	}
	if got := tr.LatencyMs; got < 5.999 || got > 6.001 {
		t.Fatalf("latency = %v, want 6ms", got)
	}
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	if tr.Spans[0].Phase != PhaseQueue || tr.Spans[0].Group != -1 {
		t.Fatalf("span 0 = %+v", tr.Spans[0])
	}
	if tr.Spans[1].Group != 1 || tr.Spans[1].Args["machine_ms"] != "1.5" {
		t.Fatalf("span 1 = %+v", tr.Spans[1])
	}
	// Post-finish recording and double finish are inert.
	rec.Span(PhaseRespond, "late", t0, time.Millisecond, nil)
	if tr2 := rec.Finish(500, false, t0); tr2.ID != "" {
		t.Fatalf("second Finish returned %+v", tr2)
	}
}

func TestRecorderInheritsTraceparent(t *testing.T) {
	tid := "4bf92f3577b34da6a3ce929d0e0e4736"
	pid := "00f067aa0ba902b7"
	rec := Start("00-" + tid + "-" + pid + "-01")
	if rec.ID() != tid {
		t.Fatalf("trace id = %q, want %q", rec.ID(), tid)
	}
	tr := rec.Finish(200, false, rec.StartTime())
	if tr.Parent != pid {
		t.Fatalf("parent = %q, want %q", tr.Parent, pid)
	}
}

func TestNilRecorderAndSpansInert(t *testing.T) {
	var rec *Recorder
	if rec.ID() != "" {
		t.Fatal("nil recorder id")
	}
	rec.Span(PhaseQueue, "x", time.Now(), 0, nil)
	rec.Import(nil)
	if tr := rec.Finish(200, false, time.Now()); tr.ID != "" {
		t.Fatal("nil Finish not zero")
	}
	var sp *Spans
	sp.Add(PhaseExec, "x", time.Now(), 0, nil)
	if sp.Len() != 0 || sp.Snapshot() != nil {
		t.Fatal("nil Spans not inert")
	}
	var st *Store
	if st.Add(Trace{ID: "x"}) != "" || st.Get("x") != nil || st.Len() != 0 {
		t.Fatal("nil Store not inert")
	}
}

func TestSpansSnapshotOrderStable(t *testing.T) {
	base := time.Now()
	build := func(order []int) []RawSpan {
		s := &Spans{}
		for _, i := range order {
			s.AddGroup(PhaseExec, fmt.Sprintf("exec g%d", i), i,
				base.Add(time.Duration(i)*time.Millisecond), time.Millisecond, nil)
		}
		return s.Snapshot()
	}
	a := build([]int{0, 1, 2, 3})
	b := build([]int{3, 1, 0, 2})
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Group != b[i].Group {
			t.Fatalf("snapshot order differs at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRecorderImportsBatchSpans(t *testing.T) {
	rec := Start("")
	t0 := rec.StartTime()
	batch := &Spans{}
	batch.AddGroup(PhaseExec, "exec", 0, t0.Add(time.Millisecond), 2*time.Millisecond, nil)
	batch.Add(PhaseResolve, "resolve conv", t0, 500*time.Microsecond, map[string]string{"cached": "true"})
	rec.Import(batch)
	tr := rec.Finish(200, false, t0.Add(4*time.Millisecond))
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	// Snapshot sorts by start: resolve (t0) before exec (t0+1ms).
	if tr.Spans[0].Phase != PhaseResolve || tr.Spans[1].Phase != PhaseExec {
		t.Fatalf("import order: %+v", tr.Spans)
	}
	if tr.Spans[1].StartMs < 0.999 || tr.Spans[1].StartMs > 1.001 {
		t.Fatalf("exec start = %v, want 1ms relative", tr.Spans[1].StartMs)
	}
}

func finished(id string, status int, degraded bool, latencyMs float64) Trace {
	return Trace{ID: id, Start: time.Now(), Status: status, Degraded: degraded, LatencyMs: latencyMs}
}

func TestStoreTailSampling(t *testing.T) {
	st := NewStore(StoreOptions{Capacity: 100, SlowMs: 50, SampleRate: 0.5})
	cases := []struct {
		tr   Trace
		want string
	}{
		{finished("a1", 429, false, 0.1), "shed"},
		{finished("a2", 408, false, 10), "deadline"},
		{finished("a3", 503, false, 0.1), "error"},
		{finished("a4", 200, true, 1), "degraded"},
		{finished("a5", 200, false, 75), "slow"},
	}
	for _, c := range cases {
		if got := st.Add(c.tr); got != c.want {
			t.Errorf("Add(%s status=%d) kept as %q, want %q", c.tr.ID, c.tr.Status, got, c.want)
		}
	}
	if st.Len() != len(cases) {
		t.Fatalf("retained %d, want %d", st.Len(), len(cases))
	}
	if tr := st.Get("a5"); tr == nil || tr.Keep != "slow" {
		t.Fatalf("Get(a5) = %+v", tr)
	}

	// Fast 200s: sampled deterministically by trace-ID hash at ~rate.
	kept := 0
	for i := 0; i < 400; i++ {
		if st.Add(finished(fmt.Sprintf("%032x", i), 200, false, 1)) == "sampled" {
			kept++
		}
	}
	if kept < 120 || kept > 280 {
		t.Fatalf("sampled %d/400 at rate 0.5", kept)
	}
	// Decision is deterministic per ID.
	stb := NewStore(StoreOptions{Capacity: 100, SlowMs: 50, SampleRate: 0.5})
	for i := 0; i < 400; i++ {
		id := fmt.Sprintf("%032x", i)
		a, b := st.Get(id) != nil, stb.Add(finished(id, 200, false, 1)) == "sampled"
		// st may have evicted sampled traces; only check positive agreement
		// on the replica's decision function.
		_ = a
		if b != (sampleHash(id) < 0.5) {
			t.Fatalf("sampling not deterministic for %s", id)
		}
	}
}

func TestStoreEvictsSampledBeforeImportant(t *testing.T) {
	st := NewStore(StoreOptions{Capacity: 4, SlowMs: 50, SampleRate: 1})
	st.Add(finished("imp1", 429, false, 0.1))
	st.Add(finished("imp2", 408, false, 1))
	st.Add(finished("s1", 200, false, 1))
	st.Add(finished("s2", 200, false, 1))
	// Store full; an important add must evict a sampled one, not imp1/imp2.
	st.Add(finished("imp3", 200, false, 99))
	if st.Get("imp1") == nil || st.Get("imp2") == nil || st.Get("imp3") == nil {
		t.Fatal("important trace evicted before sampled ones")
	}
	if st.Get("s1") != nil && st.Get("s2") != nil {
		t.Fatal("no sampled trace evicted at capacity")
	}
	stats := st.Stats()
	if stats.Retained != 4 || stats.Evicted != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestTracezHandler(t *testing.T) {
	st := NewStore(StoreOptions{Capacity: 10, SlowMs: 50, SampleRate: 1})
	rec := Start("")
	t0 := rec.StartTime()
	rec.Span(PhaseQueue, "queue wait", t0, time.Millisecond, nil)
	rec.GroupSpan(PhaseExec, "exec", 0, t0.Add(time.Millisecond), 2*time.Millisecond, nil)
	tr := rec.Finish(200, false, t0.Add(60*time.Millisecond))
	tr.LatencyMs = 60
	if st.Add(tr) != "slow" {
		t.Fatal("slow trace not kept")
	}
	h := st.Handler()

	// List.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/tracez", nil))
	if rr.Code != 200 {
		t.Fatalf("/tracez status %d", rr.Code)
	}
	var list struct {
		Stats  Stats          `json:"stats"`
		Traces []traceSummary `json:"traces"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	if len(list.Traces) != 1 || list.Traces[0].ID != tr.ID || list.Traces[0].Keep != "slow" {
		t.Fatalf("list = %+v", list)
	}

	// Detail.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/tracez/"+tr.ID, nil))
	if rr.Code != 200 {
		t.Fatalf("/tracez/<id> status %d", rr.Code)
	}
	var got Trace
	if err := json.Unmarshal(rr.Body.Bytes(), &got); err != nil {
		t.Fatalf("detail decode: %v", err)
	}
	if got.ID != tr.ID || len(got.Spans) != 2 {
		t.Fatalf("detail = %+v", got)
	}

	// Chrome export: one flame with phase-named tracks.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/tracez/"+tr.ID+"?format=chrome", nil))
	if rr.Code != 200 {
		t.Fatalf("chrome status %d", rr.Code)
	}
	body := rr.Body.String()
	for _, want := range []string{`"queue"`, `"exec"`, `"traceEvents"`, tr.ID} {
		if !strings.Contains(body, want) {
			t.Fatalf("chrome export missing %s in:\n%s", want, body)
		}
	}

	// Miss.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/tracez/deadbeef", nil))
	if rr.Code != 404 {
		t.Fatalf("missing trace status %d", rr.Code)
	}
}

func TestMsArg(t *testing.T) {
	if MsArg(1.5) != "1.5" {
		t.Fatalf("MsArg(1.5) = %q", MsArg(1.5))
	}
}
