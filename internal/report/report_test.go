package report

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1.23456)
	tb.AddRow("a-much-longer-name", 42)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Fatal("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	// Columns aligned: the header and separator have the same width.
	if len(lines[1]) > len(lines[2])+2 {
		t.Fatalf("separator misaligned:\n%s", out)
	}
	if !strings.Contains(out, "1.235") {
		t.Fatal("float formatting wrong")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("x", 1)
	csv := tb.CSV()
	if csv != "a,b\nx,1\n" {
		t.Fatalf("csv = %q", csv)
	}
}

func TestTableJSON(t *testing.T) {
	tb := NewTable("demo", "a", "b")
	tb.AddRow("x", 1.5)
	out, err := tb.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("emitted JSON does not round-trip: %v\n%s", err, out)
	}
	if doc.Title != "demo" || len(doc.Headers) != 2 || len(doc.Rows) != 1 {
		t.Fatalf("round-trip mismatch: %+v", doc)
	}
	if doc.Rows[0][1] != "1.5" {
		t.Fatalf("cell = %q, want the same rendering String uses", doc.Rows[0][1])
	}

	// An empty table must still emit a JSON array for rows, not null.
	empty, err := NewTable("e", "h").JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty, `"rows": []`) {
		t.Fatalf("empty rows should serialize as []:\n%s", empty)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "+12.3%" || Pct(-0.05) != "-5.0%" {
		t.Fatal("Pct wrong")
	}
	if Ms(0.00123) != "1.23ms" {
		t.Fatalf("Ms = %q", Ms(0.00123))
	}
	if Duration(30) != "30s" {
		t.Fatalf("Duration(30) = %q", Duration(30))
	}
	if Duration(90) != "1m 30s" {
		t.Fatalf("Duration(90) = %q", Duration(90))
	}
	if Duration(7200+120) != "2h 2m" {
		t.Fatalf("Duration(7320) = %q", Duration(7320))
	}
}
