// Package report renders experiment results as aligned text tables and CSV
// — the output surface of cmd/swbench and the benchmark harness.
package report

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the aligned table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(strings.Join(r, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the table as an indented JSON object — the machine-readable
// twin of String/CSV for dashboards and diffing tools. Cells stay strings:
// a table is a rendering, not a data model, and mixed units per column make
// numeric re-parsing the consumer's decision.
func (t *Table) JSON() (string, error) {
	rows := t.Rows
	if rows == nil {
		rows = [][]string{}
	}
	doc := struct {
		Title   string     `json:"title"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{Title: t.Title, Headers: t.Headers, Rows: rows}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("report: json: %w", err)
	}
	return string(data), nil
}

// Pct formats a ratio as a signed percentage.
func Pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", ratio*100) }

// Ms formats seconds as milliseconds.
func Ms(seconds float64) string { return fmt.Sprintf("%.3gms", seconds*1e3) }

// Duration formats seconds human-readably (h/m/s).
func Duration(seconds float64) string {
	switch {
	case seconds >= 3600:
		h := int(seconds) / 3600
		m := (int(seconds) % 3600) / 60
		return fmt.Sprintf("%dh %dm", h, m)
	case seconds >= 60:
		m := int(seconds) / 60
		s := int(seconds) % 60
		return fmt.Sprintf("%dm %ds", m, s)
	default:
		return fmt.Sprintf("%.3gs", seconds)
	}
}
