package sw26010

import (
	"fmt"
	"sort"
)

// SPMAllocator manages the per-CPE scratch pad memory as one coalesced
// region, the allocation strategy of the swATOP code generator (§4.7): all
// buffers of an operator are placed into a single region at fixed offsets.
//
// Capacity accounting is per-CPE: a core-group-level logical buffer of N
// float32 elements occupies ceil(N/64) elements of each CPE's 64 KB SPM
// (buffers are distributed uniformly across the 8×8 cluster, as the GEMM
// primitives require).
type SPMAllocator struct {
	allocs map[string]*SPMBuffer
	order  []string // allocation order for deterministic layout/reports
}

// SPMBuffer is a core-group-level logical SPM buffer.
type SPMBuffer struct {
	Name string
	// Elems is the logical float32 capacity at core-group level.
	Elems int
	// OffsetPerCPE is the buffer's byte offset within each CPE's SPM in
	// the coalesced layout.
	OffsetPerCPE int
	// Data is the functional storage (core-group level).
	Data []float32
}

// BytesPerCPE returns the per-CPE SPM footprint of the buffer.
func (b *SPMBuffer) BytesPerCPE() int {
	perCPE := (b.Elems + NumCPE - 1) / NumCPE
	// Round to vector alignment (16 B) as the real allocator does.
	bytes := perCPE * 4
	const align = 16
	return (bytes + align - 1) / align * align
}

// NewSPMAllocator creates an empty allocator.
func NewSPMAllocator() *SPMAllocator {
	return &SPMAllocator{allocs: make(map[string]*SPMBuffer)}
}

// Alloc reserves a logical buffer of elems float32 values. It fails when the
// per-CPE footprint would exceed the 64 KB SPM.
func (a *SPMAllocator) Alloc(name string, elems int) (*SPMBuffer, error) {
	if elems <= 0 {
		return nil, fmt.Errorf("spm: non-positive allocation %d for %q", elems, name)
	}
	if _, dup := a.allocs[name]; dup {
		return nil, fmt.Errorf("spm: buffer %q already allocated", name)
	}
	b := &SPMBuffer{Name: name, Elems: elems, Data: make([]float32, elems)}
	b.OffsetPerCPE = a.UsedPerCPE()
	if b.OffsetPerCPE+b.BytesPerCPE() > SPMBytes {
		return nil, fmt.Errorf("spm: allocating %q (%d B/CPE) exceeds %d B SPM (used %d B)",
			name, b.BytesPerCPE(), SPMBytes, b.OffsetPerCPE)
	}
	a.allocs[name] = b
	a.order = append(a.order, name)
	return b, nil
}

// Free releases a buffer.
func (a *SPMAllocator) Free(name string) error {
	if _, ok := a.allocs[name]; !ok {
		return fmt.Errorf("spm: freeing unknown buffer %q", name)
	}
	delete(a.allocs, name)
	for i, n := range a.order {
		if n == name {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
	// Re-pack offsets (coalesced region).
	off := 0
	for _, n := range a.order {
		b := a.allocs[n]
		b.OffsetPerCPE = off
		off += b.BytesPerCPE()
	}
	return nil
}

// Get returns a live buffer.
func (a *SPMAllocator) Get(name string) (*SPMBuffer, error) {
	b, ok := a.allocs[name]
	if !ok {
		return nil, fmt.Errorf("spm: unknown buffer %q", name)
	}
	return b, nil
}

// UsedPerCPE returns the current per-CPE footprint in bytes.
func (a *SPMAllocator) UsedPerCPE() int {
	used := 0
	for _, n := range a.order {
		used += a.allocs[n].BytesPerCPE()
	}
	return used
}

// Buffers returns live buffer names in allocation order.
func (a *SPMAllocator) Buffers() []string {
	out := append([]string(nil), a.order...)
	sort.SliceStable(out, func(i, j int) bool {
		return a.allocs[out[i]].OffsetPerCPE < a.allocs[out[j]].OffsetPerCPE
	})
	return out
}

// FitsSPM reports whether a set of buffer sizes (core-group-level float32
// counts) fits the per-CPE SPM simultaneously. The schedule validator uses
// this to prune candidates before lowering.
func FitsSPM(elemCounts ...int) bool {
	used := 0
	for _, n := range elemCounts {
		if n <= 0 {
			return false
		}
		perCPE := (n + NumCPE - 1) / NumCPE * 4
		const align = 16
		perCPE = (perCPE + align - 1) / align * align
		used += perCPE
	}
	return used <= SPMBytes
}
