package sw26010

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPeakGFlops(t *testing.T) {
	// 64 CPEs × 8 flop/cycle × 1.45 GHz ≈ 742 GFLOPS per CG; ×4 CGs within
	// a few percent of the 3.06 TFLOPS chip peak the paper quotes.
	chip := PeakGFlops * NumCG
	if chip < 2900 || chip > 3100 {
		t.Fatalf("chip peak = %.0f GFLOPS, want ≈ 3060", chip)
	}
}

func TestDMAContiguousBandwidth(t *testing.T) {
	r := StreamTriadDMA(8192) // 32 KB per CPE per array
	if math.Abs(r.GBperSecond-22.6) > 1.5 {
		t.Fatalf("triad bandwidth = %.2f GB/s, want ≈ 22.6 (as in [24])", r.GBperSecond)
	}
}

func TestGLDGSTBandwidth(t *testing.T) {
	r := StreamGLDGST(1 << 26)
	if math.Abs(r.GBperSecond-1.48) > 0.01 {
		t.Fatalf("gld/gst = %.2f GB/s, want 1.48", r.GBperSecond)
	}
}

func TestRegCommBandwidth(t *testing.T) {
	r := RegCommBroadcast(1 << 16)
	if math.Abs(r.GBperSecond-647.25) > 30 {
		t.Fatalf("reg comm = %.2f GB/s, want ≈ 647", r.GBperSecond)
	}
}

func TestStridedSlowerThanContiguous(t *testing.T) {
	big := DMAStridedEfficiency(4096, 4)
	small := DMAStridedEfficiency(64, 256) // same bytes, tiny blocks
	if small.GBperSecond >= big.GBperSecond {
		t.Fatalf("small blocks (%.2f GB/s) must be slower than large (%.2f GB/s)",
			small.GBperSecond, big.GBperSecond)
	}
	// Sub-transaction blocks waste at least half the touched bytes.
	if small.GBperSecond > 0.6*big.GBperSecond {
		t.Fatalf("64 B blocks should lose ≥40%% bandwidth, got %.2f vs %.2f",
			small.GBperSecond, big.GBperSecond)
	}
}

func TestDMAWriteRMWPenalty(t *testing.T) {
	read := DMARequest{BlockBytes: 100, BlockCount: 16, StrideBytes: 300, CPEs: NumCPE}
	write := read
	write.Write = true
	tr, _ := read.transferTime()
	tw, _ := write.transferTime()
	if tw <= tr {
		t.Fatalf("partial-transaction writes must pay RMW: read %.3g write %.3g", tr, tw)
	}
	aligned := DMARequest{BlockBytes: 128, BlockCount: 16, StrideBytes: 384, Write: true, CPEs: NumCPE}
	alignedRead := aligned
	alignedRead.Write = false
	ta, _ := aligned.transferTime()
	tar, _ := alignedRead.transferTime()
	if ta != tar {
		t.Fatalf("aligned writes must not pay RMW: %.3g vs %.3g", ta, tar)
	}
}

func TestDMAAsyncOverlap(t *testing.T) {
	m := NewMachine()
	req := DMARequest{BlockBytes: 16384, BlockCount: 1, StrideBytes: 16384, CPEs: NumCPE}
	if err := m.IssueDMA("r", req); err != nil {
		t.Fatal(err)
	}
	issued := m.Now()
	m.AdvanceCompute(1e-3) // long compute fully hides the transfer
	if err := m.WaitDMA("r", 1); err != nil {
		t.Fatal(err)
	}
	hidden := m.Now() - issued
	if hidden > 1e-3+1e-6 {
		t.Fatalf("transfer not hidden behind compute: %.3g s", hidden)
	}

	m2 := NewMachine()
	if err := m2.IssueDMA("r", req); err != nil {
		t.Fatal(err)
	}
	if err := m2.WaitDMA("r", 1); err != nil {
		t.Fatal(err)
	}
	if m2.Now() <= DMAStartupSeconds {
		t.Fatalf("un-overlapped wait should expose transfer time, got %.3g", m2.Now())
	}
}

func TestDMAEngineSerializes(t *testing.T) {
	req := DMARequest{BlockBytes: 1 << 20, BlockCount: 1, StrideBytes: 1 << 20, CPEs: NumCPE}
	one := NewMachine()
	_ = one.IssueDMA("r", req)
	_ = one.WaitDMA("r", 1)
	single := one.Elapsed()

	two := NewMachine()
	_ = two.IssueDMA("r", req)
	_ = two.IssueDMA("r", req)
	_ = two.WaitDMA("r", 2)
	double := two.Elapsed()
	if double < 1.8*single {
		t.Fatalf("two transfers on one engine must serialize: %.3g vs %.3g", double, single)
	}
}

func TestWaitWithoutIssueFails(t *testing.T) {
	m := NewMachine()
	if err := m.WaitDMA("nope", 1); err == nil {
		t.Fatal("wait with no outstanding transfer must fail")
	}
	_ = m.IssueDMA("r", DMARequest{BlockBytes: 4, BlockCount: 1, StrideBytes: 4, CPEs: 1})
	if err := m.WaitDMA("r", 2); err == nil {
		t.Fatal("waiting for more replies than issued must fail")
	}
	if err := m.WaitDMA("r", 1); err != nil {
		t.Fatal(err)
	}
	if m.OutstandingDMA() != 0 {
		t.Fatal("reply leak")
	}
}

func TestDMARequestValidate(t *testing.T) {
	bad := []DMARequest{
		{BlockBytes: 0, BlockCount: 1, StrideBytes: 1, CPEs: 1},
		{BlockBytes: 8, BlockCount: 0, StrideBytes: 8, CPEs: 1},
		{BlockBytes: 8, BlockCount: 2, StrideBytes: 4, CPEs: 1},
		{BlockBytes: 8, BlockCount: 1, StrideBytes: 8, CPEs: 0},
		{BlockBytes: 8, BlockCount: 1, StrideBytes: 8, CPEs: 65},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("case %d: %+v should be invalid", i, r)
		}
	}
	ok := DMARequest{BlockBytes: 8, BlockCount: 2, StrideBytes: 8, CPEs: 64}
	if err := ok.Validate(); err != nil {
		t.Errorf("contiguous stride==block should be valid: %v", err)
	}
}

func TestMachineReset(t *testing.T) {
	m := NewMachine()
	_, err := m.SPM().Alloc("a", 1024)
	if err != nil {
		t.Fatal(err)
	}
	_ = m.IssueDMA("r", DMARequest{BlockBytes: 4, BlockCount: 1, StrideBytes: 4, CPEs: 1})
	m.Reset()
	if m.Now() != 0 || m.OutstandingDMA() != 0 || m.SPM().UsedPerCPE() != 0 {
		t.Fatal("Reset did not clear state")
	}
	if m.Counters != (Counters{}) {
		t.Fatal("Reset did not clear counters")
	}
}

func TestSPMAllocCapacity(t *testing.T) {
	a := NewSPMAllocator()
	// 64 KB/CPE × 64 CPEs = 4 MB = 1M float32 at CG level.
	if _, err := a.Alloc("big", NumCPE*SPMFloats); err != nil {
		t.Fatalf("exactly-full allocation should fit: %v", err)
	}
	if _, err := a.Alloc("extra", 64); err == nil {
		t.Fatal("over-capacity allocation must fail")
	}
	if err := a.Free("big"); err != nil {
		t.Fatal(err)
	}
	if a.UsedPerCPE() != 0 {
		t.Fatal("free did not release capacity")
	}
}

func TestSPMCoalescedOffsets(t *testing.T) {
	a := NewSPMAllocator()
	b1, _ := a.Alloc("b1", 6400) // 100 floats/CPE = 400 B
	b2, _ := a.Alloc("b2", 6400)
	if b1.OffsetPerCPE != 0 || b2.OffsetPerCPE != b1.BytesPerCPE() {
		t.Fatalf("offsets not coalesced: %d %d", b1.OffsetPerCPE, b2.OffsetPerCPE)
	}
	if err := a.Free("b1"); err != nil {
		t.Fatal(err)
	}
	if b2.OffsetPerCPE != 0 {
		t.Fatal("free should repack the region")
	}
	if _, err := a.Get("b1"); err == nil {
		t.Fatal("Get after Free should fail")
	}
	if _, err := a.Get("b2"); err != nil {
		t.Fatal(err)
	}
}

func TestSPMDuplicateAndUnknown(t *testing.T) {
	a := NewSPMAllocator()
	if _, err := a.Alloc("x", 64); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc("x", 64); err == nil {
		t.Fatal("duplicate alloc must fail")
	}
	if err := a.Free("y"); err == nil {
		t.Fatal("freeing unknown buffer must fail")
	}
	if _, err := a.Alloc("z", 0); err == nil {
		t.Fatal("zero-size alloc must fail")
	}
}

func TestFitsSPM(t *testing.T) {
	if !FitsSPM(NumCPE * SPMFloats) {
		t.Fatal("full SPM should fit")
	}
	if FitsSPM(NumCPE*SPMFloats, 64) {
		t.Fatal("over capacity should not fit")
	}
	if FitsSPM(-1) || FitsSPM(0) {
		t.Fatal("non-positive sizes should not fit")
	}
}

// Property: DMA transfer time is monotone in block size and never below the
// pure-bandwidth bound.
func TestDMATimeMonotoneQuick(t *testing.T) {
	f := func(b0, c0 uint16) bool {
		block := int(b0%4096) + 1
		count := int(c0%64) + 1
		r1 := DMARequest{BlockBytes: block, BlockCount: count, StrideBytes: block * 2, CPEs: NumCPE}
		r2 := DMARequest{BlockBytes: block + 128, BlockCount: count, StrideBytes: (block + 128) * 2, CPEs: NumCPE}
		t1, touched := r1.transferTime()
		t2, _ := r2.transferTime()
		lower := float64(int64(block)*int64(count)*NumCPE) / DMAEffBandwidth
		return t2 >= t1 && t1 >= lower && touched >= int64(block)*int64(count)*NumCPE
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestClockSplitInvariant: every path that moves the compute clock must
// classify the time as compute or stall, so the two always sum to the clock.
func TestClockSplitInvariant(t *testing.T) {
	m := NewMachine()
	req := DMARequest{BlockBytes: 100, BlockCount: 16, StrideBytes: 300, OffsetBytes: 4, CPEs: NumCPE}
	if err := m.IssueDMA("r", req); err != nil {
		t.Fatal(err)
	}
	m.AdvanceCompute(1e-6)
	if err := m.WaitDMA("r", 1); err != nil {
		t.Fatal(err)
	}
	c := m.Counters
	if math.Abs(m.Now()-(c.ComputeSeconds+c.StallSeconds)) > 1e-15 {
		t.Fatalf("clock %.9g != compute %.9g + stall %.9g", m.Now(), c.ComputeSeconds, c.StallSeconds)
	}
	if c.StallSeconds <= 0 {
		t.Fatal("an exposed DMA wait must register stall time")
	}
	if c.DMATransactions != c.DMABytesTouched/TransactionBytes {
		t.Fatalf("transactions %d, want touched/%d = %d",
			c.DMATransactions, TransactionBytes, c.DMABytesTouched/TransactionBytes)
	}
	// 100 B blocks offset by 4 straddle two 128 B transactions: waste > 0.
	if c.AlignmentWasteBytes() <= 0 {
		t.Fatalf("misaligned blocks must report waste, got %d", c.AlignmentWasteBytes())
	}

	// FastForward must scale the new fields with everything else.
	snap := m.Snapshot()
	m.AdvanceCompute(1e-6)
	before := m.Counters
	m.FastForward(snap, 3)
	want := before.ComputeSeconds + (before.ComputeSeconds-snap.Counters.ComputeSeconds)*3
	if math.Abs(m.Counters.ComputeSeconds-want) > 1e-15 {
		t.Fatalf("FastForward compute = %.9g, want %.9g", m.Counters.ComputeSeconds, want)
	}
	if math.Abs(m.Now()-(m.Counters.ComputeSeconds+m.Counters.StallSeconds)) > 1e-12 {
		t.Fatal("clock split invariant broken after FastForward")
	}
}

func TestElapsedIncludesOutstandingDMA(t *testing.T) {
	m := NewMachine()
	_ = m.IssueDMA("r", DMARequest{BlockBytes: 1 << 20, BlockCount: 1, StrideBytes: 1 << 20, CPEs: NumCPE})
	if m.Elapsed() <= m.Now() {
		t.Fatal("Elapsed must include in-flight DMA puts")
	}
}
