package sw26010

// Substrate validation microbenchmarks. These reproduce the measurements of
// Xu et al. [24] that the paper's §2 quotes — DMA stream bandwidth
// (22.6 GB/s), global load/store bandwidth (1.48 GB/s) and register
// communication bandwidth (647.25 GB/s) — against the simulator, so that
// the substituted substrate can be checked against the published hardware
// characterization. cmd/swsim prints them; tests assert them within
// tolerance.

// StreamResult is one microbenchmark measurement.
type StreamResult struct {
	Name        string
	Bytes       int64
	Seconds     float64
	GBperSecond float64
}

// StreamTriadDMA measures effective DMA bandwidth with the classic triad
// a[i] = b[i] + s*c[i] over arrays of n float32 elements per CPE,
// transferred in large contiguous per-CPE blocks (the [24] setup).
func StreamTriadDMA(elemsPerCPE int) StreamResult {
	m := NewMachine()
	block := elemsPerCPE * 4
	// Two loads (b, c) and one store (a), all contiguous and aligned.
	for i, w := range []bool{false, false, true} {
		req := DMARequest{
			BlockBytes:  block,
			BlockCount:  1,
			StrideBytes: block,
			OffsetBytes: i * block * NumCPE, // aligned
			Write:       w,
			CPEs:        NumCPE,
		}
		if err := m.IssueDMA("triad", req); err != nil {
			panic(err)
		}
	}
	if err := m.WaitDMA("triad", 3); err != nil {
		panic(err)
	}
	bytes := int64(3) * int64(block) * NumCPE
	sec := m.Elapsed()
	return StreamResult{Name: "dma-triad", Bytes: bytes, Seconds: sec, GBperSecond: float64(bytes) / sec / 1e9}
}

// StreamGLDGST measures the global load/store fallback path bandwidth.
func StreamGLDGST(bytes int64) StreamResult {
	sec := GLCopyTime(bytes)
	return StreamResult{Name: "gld-gst", Bytes: bytes, Seconds: sec, GBperSecond: float64(bytes) / sec / 1e9}
}

// RegCommBroadcast measures aggregate register-communication bandwidth:
// every CPE broadcasts vectors along its row bus, the pattern the GEMM
// micro-kernel uses. The model: the cluster moves bytes at
// RegCommBandwidth with an RegCommLatencyCycles pipeline fill.
func RegCommBroadcast(bytesPerCPE int64) StreamResult {
	total := bytesPerCPE * NumCPE
	sec := Seconds(RegCommLatencyCycles) + float64(total)/RegCommBandwidth
	return StreamResult{Name: "reg-comm", Bytes: total, Seconds: sec, GBperSecond: float64(total) / sec / 1e9}
}

// DMAStridedEfficiency measures achieved bandwidth for a strided pattern
// with the given block size — the curve that makes layout choice matter in
// the schedule search (small blocks waste transactions and pay descriptor
// overhead).
func DMAStridedEfficiency(blockBytes, blockCount int) StreamResult {
	m := NewMachine()
	req := DMARequest{
		BlockBytes:  blockBytes,
		BlockCount:  blockCount,
		StrideBytes: blockBytes * 3, // non-adjacent blocks
		OffsetBytes: 0,
		Write:       false,
		CPEs:        NumCPE,
	}
	if err := m.IssueDMA("strided", req); err != nil {
		panic(err)
	}
	if err := m.WaitDMA("strided", 1); err != nil {
		panic(err)
	}
	bytes := int64(blockBytes) * int64(blockCount) * NumCPE
	sec := m.Elapsed()
	return StreamResult{Name: "dma-strided", Bytes: bytes, Seconds: sec, GBperSecond: float64(bytes) / sec / 1e9}
}
