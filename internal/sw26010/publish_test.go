package sw26010

import (
	"testing"

	"swatop/internal/metrics"
)

func TestCountersPublish(t *testing.T) {
	m := NewMachine()
	req := DMARequest{BlockBytes: 100, BlockCount: 4, StrideBytes: 300, CPEs: NumCPE}
	if err := m.IssueDMA("r", req); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitDMA("r", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SPM().Alloc("buf", 64*1024); err != nil {
		t.Fatal(err)
	}
	m.NoteSPMUsage()

	reg := metrics.NewRegistry()
	m.Counters.Publish(reg)
	// Republishing the same counters must be idempotent.
	m.Counters.Publish(reg)

	s := reg.Snapshot()
	if got := s.Gauges["machine_dma_bytes_touched_total"]; got != float64(m.Counters.DMABytesTouched) {
		t.Fatalf("touched = %g, want %d", got, m.Counters.DMABytesTouched)
	}
	if got := s.Gauges["machine_dma_waste_bytes_total"]; got != float64(m.Counters.AlignmentWasteBytes()) {
		t.Fatalf("waste = %g, want %d", got, m.Counters.AlignmentWasteBytes())
	}
	if s.Gauges["machine_spm_peak_bytes"] <= 0 {
		t.Fatal("SPM peak not published")
	}
	if s.Gauges["machine_compute_seconds"] <= 0 || s.Gauges["machine_stall_seconds"] <= 0 {
		t.Fatalf("clock split not published: %+v", s.Gauges)
	}

	// Nil registry is a no-op, not a panic.
	m.Counters.Publish(nil)
}
