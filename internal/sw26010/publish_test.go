package sw26010

import (
	"testing"

	"swatop/internal/metrics"
)

func TestCountersPublish(t *testing.T) {
	m := NewMachine()
	req := DMARequest{BlockBytes: 100, BlockCount: 4, StrideBytes: 300, CPEs: NumCPE}
	if err := m.IssueDMA("r", req); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitDMA("r", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.SPM().Alloc("buf", 64*1024); err != nil {
		t.Fatal(err)
	}
	m.NoteSPMUsage()

	reg := metrics.NewRegistry()
	m.Counters.Publish(reg)
	// Republishing the same counters must be idempotent.
	m.Counters.Publish(reg)

	s := reg.Snapshot()
	if got := s.Gauges["machine_dma_bytes_touched_total"]; got != float64(m.Counters.DMABytesTouched) {
		t.Fatalf("touched = %g, want %d", got, m.Counters.DMABytesTouched)
	}
	if got := s.Gauges["machine_dma_waste_bytes_total"]; got != float64(m.Counters.AlignmentWasteBytes()) {
		t.Fatalf("waste = %g, want %d", got, m.Counters.AlignmentWasteBytes())
	}
	if s.Gauges["machine_spm_peak_bytes"] <= 0 {
		t.Fatal("SPM peak not published")
	}
	if s.Gauges["machine_compute_seconds"] <= 0 || s.Gauges["machine_stall_seconds"] <= 0 {
		t.Fatalf("clock split not published: %+v", s.Gauges)
	}

	// Nil registry is a no-op, not a panic.
	m.Counters.Publish(nil)
}

// TestPublishPrefixedDisjoint: two machines publishing into one registry
// through different prefixes must land on disjoint gauges carrying each
// machine's own counter values — the fleet invariant that N core groups
// never overwrite each other's machine_* namespace.
func TestPublishPrefixedDisjoint(t *testing.T) {
	run := func(m *Machine, blocks int) {
		req := DMARequest{BlockBytes: 128, BlockCount: blocks, StrideBytes: 256, CPEs: NumCPE}
		if err := m.IssueDMA("r", req); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitDMA("r", 1); err != nil {
			t.Fatal(err)
		}
	}
	m0, m1 := NewMachine(), NewMachine()
	run(m0, 2)
	run(m1, 7) // different workload: different counters

	reg := metrics.NewRegistry()
	m0.Counters.PublishPrefixed(reg, "group0_")
	m1.Counters.PublishPrefixed(reg, "group1_")

	s := reg.Snapshot()
	if got, want := s.Gauges["group0_machine_dma_blocks_total"], float64(m0.Counters.DMABlocks); got != want {
		t.Fatalf("group0 blocks = %g, want %g", got, want)
	}
	if got, want := s.Gauges["group1_machine_dma_blocks_total"], float64(m1.Counters.DMABlocks); got != want {
		t.Fatalf("group1 blocks = %g, want %g", got, want)
	}
	if s.Gauges["group0_machine_dma_blocks_total"] == s.Gauges["group1_machine_dma_blocks_total"] {
		t.Fatal("distinct workloads published identical gauges — namespaces collided")
	}
	// The flat machine_* names must not exist: nothing published unprefixed.
	if _, ok := s.Gauges["machine_dma_blocks_total"]; ok {
		t.Fatal("prefixed publish leaked into the flat machine_* namespace")
	}
	// Republishing stays idempotent per scope.
	m0.Counters.PublishPrefixed(reg, "group0_")
	if got := reg.Snapshot().Gauges["group0_machine_dma_blocks_total"]; got != float64(m0.Counters.DMABlocks) {
		t.Fatalf("republish changed the gauge: %g", got)
	}
	// Nil registry stays a no-op.
	m0.Counters.PublishPrefixed(nil, "group0_")
}

// TestCountersAccumulate: the fleet's deterministic counter merge sums
// volumes and maxes the SPM peak.
func TestCountersAccumulate(t *testing.T) {
	a := Counters{DMAOps: 1, DMABytesTouched: 128, Flops: 10, SPMPeakBytes: 100, ComputeSeconds: 1, StallSeconds: 0.5}
	b := Counters{DMAOps: 2, DMABytesTouched: 256, Flops: 20, SPMPeakBytes: 50, ComputeSeconds: 2, StallSeconds: 0.25}
	a.Accumulate(b)
	if a.DMAOps != 3 || a.DMABytesTouched != 384 || a.Flops != 30 {
		t.Fatalf("bad volume sums: %+v", a)
	}
	if a.SPMPeakBytes != 100 {
		t.Fatalf("SPM peak must merge as max, got %d", a.SPMPeakBytes)
	}
	if a.ComputeSeconds != 3 || a.StallSeconds != 0.75 {
		t.Fatalf("bad clock sums: %+v", a)
	}
}
