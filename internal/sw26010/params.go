// Package sw26010 models one core group (CG) of the SW26010 many-core
// processor: 64 computing processing elements (CPEs) in an 8×8 mesh, each
// with a 64 KB software-managed scratch pad memory (SPM), a shared DMA
// engine to main memory, a register-communication mesh, and dual in-order
// pipelines (P0 compute / P1 memory) per CPE.
//
// The model is both functional (DMA operations move real float32 data) and
// timed (every operation advances a simulated clock using constants taken
// from published SW26010 measurements: Xu, Lin, Matsuoka, "Benchmarking
// SW26010 many-core processor", IPDPSW'17 — reference [24] of the paper).
// The timed behaviour is deliberately *more detailed* than the paper's
// Eq. (1)/(2) cost model (DMA engine serialization, per-block descriptor
// overhead, read-modify-write on partial transactions, micro-kernel
// remainder penalties), so the performance-model autotuner faces the same
// model-vs-reality gap it faces on hardware.
package sw26010

// Architectural constants of one SW26010 core group.
const (
	// ClockHz is the CPE clock frequency.
	ClockHz = 1.45e9

	// MeshDim is the side of the CPE mesh; NumCPE = MeshDim².
	MeshDim = 8
	// NumCPE is the number of computing processing elements per core group.
	NumCPE = MeshDim * MeshDim

	// SPMBytes is the scratch pad memory per CPE.
	SPMBytes = 64 * 1024
	// SPMFloats is SPM capacity in float32 elements.
	SPMFloats = SPMBytes / 4

	// VectorWidth is the single-precision SIMD width (256-bit vectors).
	VectorWidth = 4

	// FlopsPerCPEPerCycle: one 4-wide fused multiply-add per cycle on P0.
	FlopsPerCPEPerCycle = 2 * VectorWidth

	// PeakGFlops is the single-precision peak of one core group.
	PeakGFlops = ClockHz * NumCPE * FlopsPerCPEPerCycle / 1e9 // ≈ 742 GFLOPS

	// NumCG is the number of core groups on the chip; experiments simulate
	// one CG and scale throughput by NumCG (batch-parallel execution, the
	// swCaffe deployment mode).
	NumCG = 4
)

// Memory system constants.
const (
	// TransactionBytes is the DRAM transaction granularity: even a 1-byte
	// touch transfers the whole 128 B transaction (paper §4.6).
	TransactionBytes = 128

	// DMAPeakBandwidth is the per-CG theoretical DMA bandwidth in bytes/s
	// (136 GB/s chip ÷ 4 CGs).
	DMAPeakBandwidth = 34.0e9

	// DMAEffBandwidth is the achievable large-block DMA bandwidth
	// (stream triad measured 22.6 GB/s in [24]); the gap to peak is the
	// protocol efficiency the engine model applies on top of transaction
	// waste.
	DMAEffBandwidth = 22.6e9

	// DMAStartupSeconds is the fixed start-up latency of one DMA operation
	// (descriptor setup + first-response latency), the T_latency of Eq. 1.
	DMAStartupSeconds = 6.0e-7

	// DMABlockOverheadSeconds is the per-block descriptor-processing
	// overhead of strided transfers inside the DMA engine (≈7 engine
	// cycles). Eq. (1) in the paper does NOT model this term — it is one
	// of the deliberate second-order effects that make the simulator
	// richer than the autotuner's cost model.
	DMABlockOverheadSeconds = 5.0e-9

	// GLDGSTBandwidth is the global load/store bandwidth per CG
	// (1.48 GB/s in [24]); used only by fallback paths and microbenchmarks.
	GLDGSTBandwidth = 1.48e9

	// RegCommBandwidth is the aggregate register-communication bandwidth
	// of the CPE cluster (647.25 GB/s in [24]).
	RegCommBandwidth = 647.25e9

	// RegCommLatencyCycles is the P2P register communication latency.
	RegCommLatencyCycles = 11
)

// Seconds converts cycles to simulated seconds.
func Seconds(cycles float64) float64 { return cycles / ClockHz }

// Cycles converts simulated seconds to cycles.
func Cycles(seconds float64) float64 { return seconds * ClockHz }
