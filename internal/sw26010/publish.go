package sw26010

import "swatop/internal/metrics"

// Publish writes the counter values into the registry as machine_* gauges.
// Gauges (Set for totals, Max for the SPM peak) make the publish idempotent:
// callers republish the same accumulated Counters after every run without
// double-counting, and the snapshot always reflects the machine's lifetime
// totals. A nil registry is a no-op.
func (c Counters) Publish(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("machine_dma_ops_total").Set(float64(c.DMAOps))
	reg.Gauge("machine_dma_blocks_total").Set(float64(c.DMABlocks))
	reg.Gauge("machine_dma_bytes_requested_total").Set(float64(c.DMABytesRequested))
	reg.Gauge("machine_dma_bytes_touched_total").Set(float64(c.DMABytesTouched))
	reg.Gauge("machine_dma_waste_bytes_total").Set(float64(c.AlignmentWasteBytes()))
	reg.Gauge("machine_dma_transactions_total").Set(float64(c.DMATransactions))
	reg.Gauge("machine_gemm_calls_total").Set(float64(c.GemmCalls))
	reg.Gauge("machine_flops_total").Set(float64(c.Flops))
	reg.Gauge("machine_transform_ops_total").Set(float64(c.TransformOps))
	reg.Gauge("machine_spm_peak_bytes").Max(float64(c.SPMPeakBytes))
	reg.Gauge("machine_compute_seconds").Set(c.ComputeSeconds)
	reg.Gauge("machine_stall_seconds").Set(c.StallSeconds)
}
