package sw26010

import "swatop/internal/metrics"

// Publish writes the counter values into the registry as machine_* gauges.
// Gauges (Set for totals, Max for the SPM peak) make the publish idempotent:
// callers republish the same accumulated Counters after every run without
// double-counting, and the snapshot always reflects the machine's lifetime
// totals. A nil registry is a no-op.
//
// When several machines publish into one registry — the multi-core-group
// fleet — each must use its own namespace or the gauges overwrite each
// other: pass a scoped registry (reg.Scope("group0_")) or use
// PublishPrefixed.
func (c Counters) Publish(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("machine_dma_ops_total").Set(float64(c.DMAOps))
	reg.Gauge("machine_dma_blocks_total").Set(float64(c.DMABlocks))
	reg.Gauge("machine_dma_bytes_requested_total").Set(float64(c.DMABytesRequested))
	reg.Gauge("machine_dma_bytes_touched_total").Set(float64(c.DMABytesTouched))
	reg.Gauge("machine_dma_waste_bytes_total").Set(float64(c.AlignmentWasteBytes()))
	reg.Gauge("machine_dma_transactions_total").Set(float64(c.DMATransactions))
	reg.Gauge("machine_gemm_calls_total").Set(float64(c.GemmCalls))
	reg.Gauge("machine_flops_total").Set(float64(c.Flops))
	reg.Gauge("machine_transform_ops_total").Set(float64(c.TransformOps))
	reg.Gauge("machine_spm_peak_bytes").Max(float64(c.SPMPeakBytes))
	reg.Gauge("machine_compute_seconds").Set(c.ComputeSeconds)
	reg.Gauge("machine_stall_seconds").Set(c.StallSeconds)
}

// PublishPrefixed publishes into <prefix>machine_* gauges, giving each
// machine of a multi-group fleet a disjoint namespace in one shared
// registry ("group0_machine_dma_ops_total", ...).
func (c Counters) PublishPrefixed(reg *metrics.Registry, prefix string) {
	c.Publish(reg.Scope(prefix))
}

// Accumulate adds another machine's counters into c — the deterministic
// fleet merge: summing per-group counters in fixed group order yields the
// same aggregate regardless of how the groups' goroutines interleaved.
// SPMPeakBytes merges as a max (it is a peak, not a volume).
func (c *Counters) Accumulate(o Counters) {
	c.DMAOps += o.DMAOps
	c.DMABlocks += o.DMABlocks
	c.DMABytesRequested += o.DMABytesRequested
	c.DMABytesTouched += o.DMABytesTouched
	c.DMATransactions += o.DMATransactions
	c.GemmCalls += o.GemmCalls
	c.Flops += o.Flops
	c.TransformOps += o.TransformOps
	if o.SPMPeakBytes > c.SPMPeakBytes {
		c.SPMPeakBytes = o.SPMPeakBytes
	}
	c.ComputeSeconds += o.ComputeSeconds
	c.StallSeconds += o.StallSeconds
}
