package sw26010

import (
	"fmt"
	"sort"

	"swatop/internal/faults"
)

// Machine is the simulated state of one core group during the execution of
// one operator: a simulated clock with separate compute and DMA channels, an
// SPM allocator, reply-word bookkeeping for asynchronous DMA, and
// performance counters.
//
// The timing model is a two-channel timeline. Compute statements advance the
// compute clock. DMA operations are queued on the (single, shared) DMA
// engine: a transfer starts when both the engine is free and the issue point
// has been reached, and completes after its modelled transfer time.
// DMAWait synchronizes the compute clock with the transfer's completion.
// This reproduces the overlap behaviour double buffering exploits and the
// serialization a naive schedule suffers.
type Machine struct {
	// clock is the compute-channel time in seconds.
	clock float64
	// dmaFree is the earliest time the DMA engine can start a new transfer.
	dmaFree float64

	spm *SPMAllocator

	// faults, when non-nil, is consulted at the DMA-transfer and
	// compute-advance injection points (faults.DMATransfer,
	// faults.ComputeStall). Nil in every production run.
	faults *faults.Injector

	replies map[string]*replyWord

	lastDMAStart, lastDMADone float64

	Counters Counters
}

// LastDMA reports the engine interval of the most recent IssueDMA — the
// hook execution tracing uses.
func (m *Machine) LastDMA() (start, done float64) { return m.lastDMAStart, m.lastDMADone }

type replyWord struct {
	// completions holds the completion times of transfers charged to this
	// reply word that have not been consumed by a wait yet.
	completions []float64
}

// Counters accumulates activity statistics for reports and tests.
type Counters struct {
	DMAOps            int64
	DMABlocks         int64
	DMABytesRequested int64
	DMABytesTouched   int64 // includes transaction waste
	DMATransactions   int64 // 128 B memory transactions moved
	GemmCalls         int64
	Flops             int64
	TransformOps      int64
	SPMPeakBytes      int64 // peak per-CPE SPM usage

	// ComputeSeconds and StallSeconds split the compute-channel clock into
	// time spent executing (compute statements, DMA issue and reply-word
	// polling costs) and time spent blocked (DMA waits, injected stalls).
	// Their sum always equals the compute clock.
	ComputeSeconds float64
	StallSeconds   float64
}

// AlignmentWasteBytes is the transaction padding Eq. 1 charges: bytes the
// memory system moved beyond what the schedule requested.
func (c Counters) AlignmentWasteBytes() int64 {
	return c.DMABytesTouched - c.DMABytesRequested
}

// NewMachine creates a machine at time zero with an empty SPM.
func NewMachine() *Machine {
	return &Machine{
		spm:     NewSPMAllocator(),
		replies: make(map[string]*replyWord),
	}
}

// Reset returns the machine to time zero, frees all SPM and clears counters.
func (m *Machine) Reset() {
	m.clock = 0
	m.dmaFree = 0
	m.spm = NewSPMAllocator()
	m.replies = make(map[string]*replyWord)
	m.Counters = Counters{}
}

// Now returns the current compute-channel time in seconds.
func (m *Machine) Now() float64 { return m.clock }

// Elapsed returns the total simulated execution time: the compute clock
// joined with any still-outstanding DMA completions (an operator is not
// finished until its last DMA put lands in main memory).
func (m *Machine) Elapsed() float64 {
	t := m.clock
	for _, r := range m.replies {
		for _, c := range r.completions {
			if c > t {
				t = c
			}
		}
	}
	return t
}

// SetFaults attaches a fault injector (nil detaches). Reset preserves it:
// a fresh timeline on the same machine keeps the same failure environment.
func (m *Machine) SetFaults(in *faults.Injector) { m.faults = in }

// AdvanceCompute moves the compute clock forward by dt seconds. An armed
// compute-stall fault loses extra simulated time here, perturbing the
// measurement the way OS jitter perturbs a real one.
func (m *Machine) AdvanceCompute(dt float64) {
	if dt < 0 {
		panic("sw26010: negative compute time")
	}
	stall := m.faults.Stall(faults.ComputeStall)
	m.clock += dt + stall
	m.Counters.ComputeSeconds += dt
	m.Counters.StallSeconds += stall
}

// Snapshot captures the timeline and counters (for steady-state loop
// extrapolation in the executor's fast mode).
type Snapshot struct {
	Clock    float64
	DMAFree  float64
	Counters Counters
}

// Snapshot returns the current machine state.
func (m *Machine) Snapshot() Snapshot {
	return Snapshot{Clock: m.clock, DMAFree: m.dmaFree, Counters: m.Counters}
}

// FastForward advances the machine by `times` repetitions of the state
// delta since a snapshot: the executor simulates a few loop iterations,
// measures the steady-state per-iteration advance of both channels and the
// counters, and skips the interior. Reply-word bookkeeping is untouched
// (skipped iterations issue and consume equally).
func (m *Machine) FastForward(since Snapshot, times int64) {
	if times <= 0 {
		return
	}
	f := float64(times)
	m.clock += (m.clock - since.Clock) * f
	m.dmaFree += (m.dmaFree - since.DMAFree) * f
	c, p := &m.Counters, &since.Counters
	c.DMAOps += (c.DMAOps - p.DMAOps) * times
	c.DMABlocks += (c.DMABlocks - p.DMABlocks) * times
	c.DMABytesRequested += (c.DMABytesRequested - p.DMABytesRequested) * times
	c.DMABytesTouched += (c.DMABytesTouched - p.DMABytesTouched) * times
	c.DMATransactions += (c.DMATransactions - p.DMATransactions) * times
	c.GemmCalls += (c.GemmCalls - p.GemmCalls) * times
	c.Flops += (c.Flops - p.Flops) * times
	c.TransformOps += (c.TransformOps - p.TransformOps) * times
	c.ComputeSeconds += (c.ComputeSeconds - p.ComputeSeconds) * f
	c.StallSeconds += (c.StallSeconds - p.StallSeconds) * f
}

// SPM exposes the SPM allocator.
func (m *Machine) SPM() *SPMAllocator { return m.spm }

// ResetSPM replaces the SPM allocator with an empty one while leaving the
// clock, counters and reply words untouched. A network runtime calls it
// between operators: each generated kernel owns the whole scratch pad for
// its invocation (the coalesced per-operator region of §4.7), so whatever a
// kernel left allocated must not constrain its successor.
func (m *Machine) ResetSPM() { m.spm = NewSPMAllocator() }

// NoteSPMUsage records the current per-CPE SPM footprint into the peak
// counter.
func (m *Machine) NoteSPMUsage() {
	if used := int64(m.spm.UsedPerCPE()); used > m.Counters.SPMPeakBytes {
		m.Counters.SPMPeakBytes = used
	}
}

// DMARequest describes one asynchronous DMA operation at the core-group
// level: the per-CPE strided pattern (the attributes DMA inference computes)
// plus the direction. Sizes are in bytes.
type DMARequest struct {
	// BlockBytes is the contiguous block size each CPE transfers.
	BlockBytes int
	// BlockCount is the number of blocks per CPE.
	BlockCount int
	// StrideBytes is the main-memory distance between consecutive block
	// starts (>= BlockBytes for a legal pattern; == BlockBytes means a
	// fully contiguous transfer).
	StrideBytes int
	// OffsetBytes is the main-memory byte offset of the first block of CPE
	// (0,0); used for transaction alignment accounting.
	OffsetBytes int
	// Write is true for SPM→memory puts (which pay read-modify-write on
	// partial transactions), false for gets.
	Write bool
	// CPEs is the number of CPEs participating (64 in all paper scenarios,
	// smaller in degenerate schedules).
	CPEs int
}

// Validate rejects malformed requests.
func (r DMARequest) Validate() error {
	if r.BlockBytes <= 0 || r.BlockCount <= 0 {
		return fmt.Errorf("dma: non-positive block geometry %+v", r)
	}
	if r.StrideBytes < r.BlockBytes && r.BlockCount > 1 {
		return fmt.Errorf("dma: stride %d smaller than block %d", r.StrideBytes, r.BlockBytes)
	}
	if r.CPEs <= 0 || r.CPEs > NumCPE {
		return fmt.Errorf("dma: invalid CPE count %d", r.CPEs)
	}
	return nil
}

// transferTime models the engine-busy time of one DMA request, and returns
// the touched-byte count for the counters.
//
// Model: every block touches whole 128 B transactions; the left and right
// remainders are waste (Eq. 1's waste_size). Writes that partially cover a
// transaction pay a read-modify-write factor of 2 on the partial
// transactions. Bytes move at DMAEffBandwidth; each block additionally costs
// a descriptor-processing overhead.
func (r DMARequest) transferTime() (seconds float64, touched int64) {
	misalign := r.OffsetBytes % TransactionBytes
	perBlockTouched := int64((misalign + r.BlockBytes + TransactionBytes - 1) / TransactionBytes * TransactionBytes)
	blocks := int64(r.BlockCount) * int64(r.CPEs)
	touched = perBlockTouched * blocks

	bytesTime := float64(touched) / DMAEffBandwidth
	if r.Write {
		// Partial transactions at the block edges are read back, merged
		// and rewritten.
		partial := perBlockTouched - int64(r.BlockBytes)
		if partial > 0 {
			bytesTime += float64(partial*blocks) / DMAEffBandwidth
		}
	}
	overhead := float64(blocks) * DMABlockOverheadSeconds
	return bytesTime + overhead, touched
}

// IssueDMA queues a DMA request on the engine, charging the compute channel
// only the issue cost (the engine runs asynchronously). The transfer is
// recorded under the given reply word; a later WaitDMA(reply, n) blocks the
// compute channel until n completions have landed.
func (m *Machine) IssueDMA(reply string, req DMARequest) error {
	if err := req.Validate(); err != nil {
		return err
	}
	if err := m.faults.Fire(faults.DMATransfer); err != nil {
		return fmt.Errorf("dma %q: injected transfer failure: %w", reply, err)
	}
	t, touched := req.transferTime()

	// Issue cost on the compute channel (writing the descriptor).
	m.clock += Seconds(30)
	m.Counters.ComputeSeconds += Seconds(30)

	start := m.clock + DMAStartupSeconds
	if m.dmaFree > start {
		start = m.dmaFree // engine serializes transfers
	}
	done := start + t
	m.dmaFree = done
	m.lastDMAStart, m.lastDMADone = start, done

	rw := m.replies[reply]
	if rw == nil {
		rw = &replyWord{}
		m.replies[reply] = rw
	}
	rw.completions = append(rw.completions, done)

	m.Counters.DMAOps++
	m.Counters.DMABlocks += int64(req.BlockCount) * int64(req.CPEs)
	m.Counters.DMABytesRequested += int64(req.BlockBytes) * int64(req.BlockCount) * int64(req.CPEs)
	m.Counters.DMABytesTouched += touched
	m.Counters.DMATransactions += touched / TransactionBytes
	return nil
}

// WaitDMA blocks the compute channel until `times` completions recorded
// under the reply word have landed (the swDMAWait primitive). Completions
// are consumed oldest-first.
func (m *Machine) WaitDMA(reply string, times int) error {
	rw := m.replies[reply]
	if rw == nil || len(rw.completions) < times {
		have := 0
		if rw != nil {
			have = len(rw.completions)
		}
		return fmt.Errorf("dma wait on %q for %d replies, only %d outstanding", reply, times, have)
	}
	sort.Float64s(rw.completions)
	last := rw.completions[times-1]
	rw.completions = rw.completions[times:]
	if last > m.clock {
		m.Counters.StallSeconds += last - m.clock
		m.clock = last
	}
	// Polling the reply word costs a few cycles.
	m.clock += Seconds(10)
	m.Counters.ComputeSeconds += Seconds(10)
	return nil
}

// OutstandingDMA returns the number of unconsumed completions across all
// reply words — useful for leak checks in tests.
func (m *Machine) OutstandingDMA() int {
	n := 0
	for _, r := range m.replies {
		n += len(r.completions)
	}
	return n
}

// GLCopyTime models a global load/store fallback transfer of n bytes
// (1.48 GB/s, no transaction batching benefit). swATOP schedules never use
// it for bulk data; it exists for microbenchmarks and degenerate paths.
func GLCopyTime(bytes int64) float64 {
	return float64(bytes) / GLDGSTBandwidth
}
