package tshist

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"swatop/internal/metrics"
)

// testClock is a deterministic time source: each call advances by step.
type testClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.t
	c.t = c.t.Add(c.step)
	return now
}

func TestScrapeOnceIngests(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("requests").Add(7)
	reg.Gauge("depth").Set(3.5)
	reg.Histogram("lat", 1, 10).Observe(0.5)

	s := New(Options{})
	sc := NewScraper(s, reg, time.Second)
	clock := &testClock{t: time.Unix(100, 0), step: time.Second}
	sc.SetClock(clock.Now)

	sc.ScrapeOnce()
	reg.Counter("requests").Add(3)
	sc.ScrapeOnce()

	if got := sc.Scrapes(); got != 2 {
		t.Fatalf("scrapes = %d, want 2", got)
	}
	q, ok := s.Query("requests", 0, 0)
	if !ok {
		t.Fatal("requests series missing after scrape")
	}
	if q.Last != 10 {
		t.Fatalf("requests last = %v, want 10", q.Last)
	}
	if _, ok := s.Query("depth", 0, 0); !ok {
		t.Fatal("depth series missing after scrape")
	}
	if q, ok := s.Query("lat", 0, 0); !ok || q.Count != 1 {
		t.Fatalf("lat count = %d (ok=%v), want 1", q.Count, ok)
	}
}

func TestScraperStartStop(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("ticks").Inc()

	s := New(Options{})
	sc := NewScraper(s, reg, time.Millisecond)
	sc.Start()
	sc.Start() // idempotent

	deadline := time.After(2 * time.Second)
	for sc.Scrapes() < 3 {
		select {
		case <-deadline:
			t.Fatalf("scraper took too long: %d scrapes", sc.Scrapes())
		case <-time.After(time.Millisecond):
		}
	}
	sc.Stop()
	sc.Stop() // idempotent

	// Stop takes a final scrape, so the count must be settled now.
	after := sc.Scrapes()
	time.Sleep(5 * time.Millisecond)
	if got := sc.Scrapes(); got != after {
		t.Fatalf("scrapes moved after Stop: %d -> %d", after, got)
	}
	if _, ok := s.Query("ticks", 0, 0); !ok {
		t.Fatal("ticks series missing")
	}
}

func TestScraperStopBeforeStart(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("x").Inc()
	s := New(Options{})
	sc := NewScraper(s, reg, time.Millisecond)

	sc.Stop()  // must not hang waiting for a goroutine that never ran
	sc.Start() // disarmed by Stop: must not launch the loop

	if got := sc.Scrapes(); got != 1 {
		t.Fatalf("scrapes = %d, want exactly the final Stop scrape", got)
	}
}

func TestScraperNil(t *testing.T) {
	var sc *Scraper
	sc.Start()
	sc.ScrapeOnce()
	sc.Stop()
	if sc.Scrapes() != 0 {
		t.Fatal("nil scraper reported scrapes")
	}
}

// TestConcurrentScrapeWhileWrite hammers a registry with writers — on the
// root namespace and on group-prefixed scopes — while a scraper snapshots
// it and readers query the store. Run under -race this is the satellite
// gate for scrape-while-write safety.
func TestConcurrentScrapeWhileWrite(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Options{})
	sc := NewScraper(s, reg, time.Millisecond)
	sc.Start()
	defer sc.Stop()

	const iters = 500
	var wg sync.WaitGroup

	// Root-namespace writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			reg.Counter("requests_total").Inc()
			reg.Gauge("queue_depth").Set(float64(i))
			reg.Histogram("latency_seconds", 0.001, 0.01, 0.1).Observe(float64(i) / 1000)
		}
	}()

	// Group-prefixed writers, one per scope, as the fleet publishes them.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			scope := reg.Scope(fmt.Sprintf("group%d_", g))
			for i := 0; i < iters; i++ {
				scope.Gauge("machine_compute_seconds").Add(0.001)
				scope.Gauge("machine_stall_seconds").Add(0.0002)
				scope.Counter("layers_total").Inc()
			}
		}(g)
	}

	// Concurrent readers: explicit scrapes, store queries, utilization.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			sc.ScrapeOnce()
			s.Query("requests_total", time.Minute, 0)
			s.Query("latency_seconds", time.Minute, 0)
			s.FleetUtilization(time.Minute)
			s.Series()
		}
	}()

	wg.Wait()
	sc.ScrapeOnce()

	q, ok := s.Query("requests_total", 0, 0)
	if !ok || q.Last != iters {
		t.Fatalf("requests_total last = %v (ok=%v), want %d", q.Last, ok, iters)
	}
	for g := 0; g < 3; g++ {
		name := fmt.Sprintf("group%d_layers_total", g)
		if q, ok := s.Query(name, 0, 0); !ok || q.Last != iters {
			t.Fatalf("%s last = %v (ok=%v), want %d", name, q.Last, ok, iters)
		}
	}
}

// TestConcurrentRegistrySnapshot races Snapshot against writers directly
// (no store in the loop) — the registry-level half of the guarantee,
// including a group-prefixed scope view.
func TestConcurrentRegistrySnapshot(t *testing.T) {
	reg := metrics.NewRegistry()
	scope := reg.Scope("group0_")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			reg.Counter("writes").Inc()
			scope.Histogram("lat", 1, 10).Observe(float64(i % 20))
			scope.Gauge("depth").Set(float64(i))
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			snap := reg.Snapshot()
			// A snapshot must be internally consistent enough to read.
			for name, h := range snap.Histograms {
				var sum int64
				for _, c := range h.Counts {
					sum += c
				}
				if sum != h.Count {
					t.Errorf("%s: bucket sum %d != count %d", name, sum, h.Count)
					return
				}
			}
		}
	}()
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
