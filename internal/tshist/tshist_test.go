package tshist

import (
	"math"
	"testing"
	"time"

	"swatop/internal/metrics"
)

// at is a synthetic clock: seconds since an arbitrary epoch.
func at(sec float64) time.Time {
	return time.UnixMilli(int64(sec * 1000))
}

// counterSnap builds a snapshot holding one counter.
func counterSnap(name string, v int64) metrics.Snapshot {
	return metrics.Snapshot{Counters: map[string]int64{name: v}}
}

// TestCounterWindowedRate is the acceptance case: a counter growing 5/s,
// scraped once per second; /varz-style Query over a 60s window must
// report delta 300 and rate 5/s exactly.
func TestCounterWindowedRate(t *testing.T) {
	s := New(Options{})
	for sec := 0; sec <= 120; sec++ {
		s.Ingest(at(float64(sec)), counterSnap("reqs_total", int64(5*sec)))
	}
	q, ok := s.Query("reqs_total", 60*time.Second, 0)
	if !ok {
		t.Fatal("series not found")
	}
	if q.Kind != KindCounter {
		t.Fatalf("kind = %q", q.Kind)
	}
	if q.Delta != 300 {
		t.Fatalf("delta = %v, want 300", q.Delta)
	}
	if q.Rate != 5 {
		t.Fatalf("rate = %v, want 5", q.Rate)
	}
	if len(q.Points) != 61 {
		t.Fatalf("points in window = %d, want 61", len(q.Points))
	}
}

// TestCounterReset: a counter that resets inside the window reports what
// accumulated since the reset, never a negative rate.
func TestCounterReset(t *testing.T) {
	s := New(Options{})
	s.Ingest(at(0), counterSnap("c", 1000))
	s.Ingest(at(10), counterSnap("c", 0)) // process restart
	s.Ingest(at(20), counterSnap("c", 40))
	q, _ := s.Query("c", time.Minute, 0)
	if q.Delta != 40 {
		t.Fatalf("delta after reset = %v, want 40", q.Delta)
	}
	if q.Rate < 0 {
		t.Fatalf("negative rate %v after reset", q.Rate)
	}
}

// histSnap builds a snapshot holding one histogram with the given
// cumulative bucket counts.
func histSnap(name string, bounds []float64, counts []int64, sum float64) metrics.Snapshot {
	var total int64
	for _, c := range counts {
		total += c
	}
	return metrics.Snapshot{Histograms: map[string]metrics.HistogramSnapshot{
		name: {Count: total, Sum: sum, Bounds: bounds, Counts: counts},
	}}
}

// TestHistogramWindowedP99 is the acceptance case: cumulative bucket
// counts scraped over time; the windowed p50/p99 must come from the
// bucket deltas inside the window only — history before the window (1000
// old observations in the lowest bucket) must not drag the percentile
// down.
func TestHistogramWindowedP99(t *testing.T) {
	bounds := []float64{1, 10, 100}
	s := New(Options{})
	// Before the window: 1000 observations, all <= 1.
	s.Ingest(at(0), histSnap("lat", bounds, []int64{1000, 0, 0, 0}, 500))
	// Window start (t=60 queried at t=120 with window 60s).
	s.Ingest(at(60), histSnap("lat", bounds, []int64{1000, 0, 0, 0}, 500))
	// Inside the window: +98 obs <=1, +1 obs <=10, +1 obs <=100.
	s.Ingest(at(120), histSnap("lat", bounds, []int64{1098, 1, 1, 0}, 600))

	q, ok := s.Query("lat", 60*time.Second, 0)
	if !ok {
		t.Fatal("series not found")
	}
	if q.Count != 100 {
		t.Fatalf("windowed count = %d, want 100", q.Count)
	}
	if math.Abs(q.Sum-100) > 1e-12 {
		t.Fatalf("windowed sum = %v, want 100", q.Sum)
	}
	if q.P50 != 1 {
		t.Fatalf("windowed p50 = %v, want 1", q.P50)
	}
	if q.P90 != 1 {
		t.Fatalf("windowed p90 = %v, want 1", q.P90)
	}
	if q.P99 != 10 {
		t.Fatalf("windowed p99 = %v, want 10", q.P99)
	}

	// The full-history view (window = everything) is dominated by the old
	// observations: p99 collapses back into the lowest bucket.
	q, _ = s.Query("lat", 0, 0)
	if q.Count != 1100 {
		t.Fatalf("full count = %d, want 1100", q.Count)
	}
	if q.P99 != 1 {
		t.Fatalf("full-history p99 = %v, want 1", q.P99)
	}
}

// TestHistogramOverflowClamp: ranks landing in the +Inf bucket clamp to
// the largest finite bound.
func TestHistogramOverflowClamp(t *testing.T) {
	bounds := []float64{1, 10}
	s := New(Options{})
	s.Ingest(at(0), histSnap("h", bounds, []int64{0, 0, 0}, 0))
	s.Ingest(at(10), histSnap("h", bounds, []int64{0, 0, 50}, 5000))
	q, _ := s.Query("h", time.Minute, 0)
	if q.P99 != 10 {
		t.Fatalf("overflow p99 = %v, want clamp to 10", q.P99)
	}
}

// TestDownsampling: sub-second scrapes merge into one 1s bucket (last
// value wins, min/max bracket, N counts the raw samples), and the same
// ingest stream lands downsampled in the 10s ring.
func TestDownsampling(t *testing.T) {
	s := New(Options{Resolutions: []time.Duration{time.Second, 10 * time.Second}})
	for i := 0; i < 40; i++ { // 4 samples/s for 10 seconds
		v := float64(i)
		s.Ingest(at(float64(i)*0.25), metrics.Snapshot{Gauges: map[string]float64{"g": v}})
	}
	q, _ := s.Query("g", time.Minute, time.Second)
	if len(q.Points) != 10 {
		t.Fatalf("1s points = %d, want 10", len(q.Points))
	}
	p0 := q.Points[0]
	if p0.N != 4 || p0.Min != 0 || p0.Max != 3 || p0.Last != 3 {
		t.Fatalf("first 1s bucket = %+v, want N=4 min=0 max=3 last=3", p0)
	}

	q10, _ := s.Query("g", time.Minute, 10*time.Second)
	if len(q10.Points) != 1 {
		t.Fatalf("10s points = %d, want 1", len(q10.Points))
	}
	if p := q10.Points[0]; p.N != 40 || p.Min != 0 || p.Max != 39 || p.Last != 39 {
		t.Fatalf("10s bucket = %+v, want N=40 min=0 max=39 last=39", p)
	}
}

// TestRingWraparound: a capacity-4 store retains only the newest 4
// buckets, oldest evicted first, order preserved.
func TestRingWraparound(t *testing.T) {
	s := New(Options{Resolutions: []time.Duration{time.Second}, Capacity: 4})
	for sec := 0; sec < 10; sec++ {
		s.Ingest(at(float64(sec)), counterSnap("c", int64(sec)))
	}
	q, _ := s.Query("c", 0, 0)
	if len(q.Points) != 4 {
		t.Fatalf("retained %d points, want 4", len(q.Points))
	}
	for i, p := range q.Points {
		want := int64((6 + i) * 1000)
		if p.T != want {
			t.Fatalf("point %d at T=%d, want %d", i, p.T, want)
		}
	}
	if q.Points[3].Last != 9 {
		t.Fatalf("newest value = %v, want 9", q.Points[3].Last)
	}
}

// TestOutOfOrderDrop: a sample older than the newest bucket is dropped
// rather than corrupting the ring order.
func TestOutOfOrderDrop(t *testing.T) {
	s := New(Options{Resolutions: []time.Duration{time.Second}})
	s.Ingest(at(10), counterSnap("c", 10))
	s.Ingest(at(5), counterSnap("c", 99)) // stale: dropped
	s.Ingest(at(11), counterSnap("c", 11))
	q, _ := s.Query("c", 0, 0)
	if len(q.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(q.Points))
	}
	if q.Points[0].Last != 10 || q.Points[1].Last != 11 {
		t.Fatalf("points = %+v", q.Points)
	}
}

// TestResolutionPick: with no explicit resolution the query uses the
// finest ring that covers the window.
func TestResolutionPick(t *testing.T) {
	s := New(Options{
		Resolutions: []time.Duration{time.Second, 10 * time.Second, time.Minute},
		Capacity:    60, // spans: 1m, 10m, 1h
	})
	s.Ingest(at(0), counterSnap("c", 1))
	for _, tc := range []struct {
		window time.Duration
		wantMs int64
	}{
		{30 * time.Second, 1000},
		{5 * time.Minute, 10000},
		{30 * time.Minute, 60000},
		{24 * time.Hour, 60000}, // beyond every span: coarsest
	} {
		q, _ := s.Query("c", tc.window, 0)
		if q.ResolutionMs != tc.wantMs {
			t.Fatalf("window %v picked %dms resolution, want %dms",
				tc.window, q.ResolutionMs, tc.wantMs)
		}
	}
}

// TestFleetUtilization: per-group machine gauges plus the aggregate comm
// gauge yield one utilization row per group and a fleet row.
func TestFleetUtilization(t *testing.T) {
	s := New(Options{})
	snapAt := func(scale float64) metrics.Snapshot {
		return metrics.Snapshot{Gauges: map[string]float64{
			"machine_compute_seconds":        8 * scale,
			"machine_stall_seconds":          2 * scale,
			"infer_comm_seconds":             1 * scale,
			"group0_machine_compute_seconds": 5 * scale,
			"group0_machine_stall_seconds":   1 * scale,
			"group1_machine_compute_seconds": 3 * scale,
			"group1_machine_stall_seconds":   1 * scale,
		}}
	}
	s.Ingest(at(0), snapAt(1))
	s.Ingest(at(30), snapAt(2)) // every cumulative gauge doubles

	util := s.FleetUtilization(time.Minute)
	if len(util) != 3 {
		t.Fatalf("groups = %d (%+v), want 3", len(util), util)
	}
	if util[0].Group != "fleet" || util[1].Group != "group0" || util[2].Group != "group1" {
		t.Fatalf("group order = %+v", util)
	}
	fleet := util[0]
	if fleet.ComputeSeconds != 8 || fleet.StallSeconds != 2 || fleet.CommSeconds != 1 {
		t.Fatalf("fleet deltas = %+v", fleet)
	}
	if math.Abs(fleet.Utilization-8.0/11.0) > 1e-12 {
		t.Fatalf("fleet utilization = %v", fleet.Utilization)
	}
	g0 := util[1]
	if g0.ComputeSeconds != 5 || g0.StallSeconds != 1 || g0.CommSeconds != 0 {
		t.Fatalf("group0 deltas = %+v", g0)
	}
}

// TestUtilizationTimeline: bucket-to-bucket differencing of the
// cumulative gauges.
func TestUtilizationTimeline(t *testing.T) {
	s := New(Options{Resolutions: []time.Duration{time.Second}})
	for sec := 0; sec <= 3; sec++ {
		s.Ingest(at(float64(sec)), metrics.Snapshot{Gauges: map[string]float64{
			"machine_compute_seconds": float64(sec) * 2,
			"machine_stall_seconds":   float64(sec),
		}})
	}
	tl := s.UtilizationTimeline("fleet", time.Minute, time.Second)
	if len(tl) != 3 {
		t.Fatalf("timeline points = %d, want 3", len(tl))
	}
	for _, p := range tl {
		if p.ComputeSeconds != 2 || p.StallSeconds != 1 {
			t.Fatalf("timeline point = %+v, want compute 2 stall 1", p)
		}
	}
}

// TestSplitGroupPrefix covers the group-name parser's edges.
func TestSplitGroupPrefix(t *testing.T) {
	cases := []struct{ in, prefix, rest string }{
		{"group0_machine_compute_seconds", "group0_", "machine_compute_seconds"},
		{"group12_x", "group12_", "x"},
		{"machine_compute_seconds", "", "machine_compute_seconds"},
		{"group_x", "", "group_x"},     // no digits
		{"group7", "", "group7"},       // no underscore
		{"groups0_x", "", "groups0_x"}, // digit run must follow "group"
	}
	for _, tc := range cases {
		p, r := splitGroupPrefix(tc.in)
		if p != tc.prefix || r != tc.rest {
			t.Fatalf("splitGroupPrefix(%q) = (%q, %q), want (%q, %q)",
				tc.in, p, r, tc.prefix, tc.rest)
		}
	}
}

// TestNilStore: every entry point tolerates a nil store.
func TestNilStore(t *testing.T) {
	var s *Store
	s.Ingest(at(0), metrics.Snapshot{})
	if _, ok := s.Query("x", time.Minute, 0); ok {
		t.Fatal("nil store answered a query")
	}
	if s.Series() != nil || s.FleetUtilization(time.Minute) != nil {
		t.Fatal("nil store returned data")
	}
	if _, n := s.LastIngest(); n != 0 {
		t.Fatal("nil store counted ingests")
	}
}
