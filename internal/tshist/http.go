package tshist

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"strings"
	"time"
)

// DefaultWindow is the window /varz queries use when the request does not
// carry one.
const DefaultWindow = 60 * time.Second

// varzIndex is the GET /varz document.
type varzIndex struct {
	LastScrape  string       `json:"last_scrape,omitempty"`
	Ingests     int64        `json:"ingests"`
	Resolutions []string     `json:"resolutions"`
	Capacity    int          `json:"capacity"`
	Series      []SeriesInfo `json:"series"`
	Utilization []GroupUtil  `json:"utilization,omitempty"`
}

// Handler serves the time-series history as JSON:
//
//	GET /varz                           index: series list + fleet utilization
//	GET /varz/<metric>?window=60s&res=1s  windowed points + derived rate /
//	                                      percentiles for one series
//
// Read-only by construction (it only queries the store), so mounting it on
// the introspection server preserves the no-result-changes invariant.
func (s *Store) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := strings.Trim(strings.TrimPrefix(r.URL.Path, "/varz"), "/")
		if name == "" {
			s.serveIndex(w, r)
			return
		}
		s.serveSeries(w, r, name)
	})
}

func (s *Store) serveIndex(w http.ResponseWriter, r *http.Request) {
	window, err := ParseWindow(r.URL.Query().Get("window"), DefaultWindow)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	last, ingests := s.LastIngest()
	doc := varzIndex{
		Ingests:     ingests,
		Capacity:    s.Capacity(),
		Series:      s.Series(),
		Utilization: s.FleetUtilization(window),
	}
	if !last.IsZero() {
		doc.LastScrape = last.UTC().Format(time.RFC3339Nano)
	}
	for _, res := range s.Resolutions() {
		doc.Resolutions = append(doc.Resolutions, res.String())
	}
	if doc.Series == nil {
		doc.Series = []SeriesInfo{}
	}
	writeJSON(w, doc)
}

func (s *Store) serveSeries(w http.ResponseWriter, r *http.Request, name string) {
	q := r.URL.Query()
	window, err := ParseWindow(q.Get("window"), DefaultWindow)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := ParseWindow(q.Get("res"), 0)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	result, ok := s.Query(name, window, res)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown series %q", name), http.StatusNotFound)
		return
	}
	writeJSON(w, result)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// DashHandler serves /dashz: a dependency-free HTML page rendering the
// retained history — fleet utilization (compute vs stall vs comm) and a
// table of every series with an inline SVG sparkline, its windowed rate
// (counters) or percentiles (histograms). Rendered server-side on each
// request; the page itself carries no scripts beyond a meta refresh.
func (s *Store) DashHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		window, err := ParseWindow(r.URL.Query().Get("window"), DefaultWindow)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		s.renderDash(w, window)
	})
}

// renderDash writes the dashboard HTML. Visual rules follow the repo's
// observability pages: text in ink tokens, one accent hue per series
// sparkline, a colorblind-validated triple (blue/orange/aqua) for the
// compute/stall/comm utilization stack, light and dark mode from the same
// roles.
func (s *Store) renderDash(w http.ResponseWriter, window time.Duration) {
	fmt.Fprintf(w, `<!doctype html>
<html><head><meta charset="utf-8"><title>dashz</title>
<meta http-equiv="refresh" content="5">
<style>
  :root {
    color-scheme: light;
    --surface: #fcfcfb; --ink: #0b0b0b; --ink-2: #52514e;
    --grid: #e4e3df; --compute: #2a78d6; --stall: #eb6834; --comm: #1baf7a;
  }
  @media (prefers-color-scheme: dark) {
    :root { color-scheme: dark;
      --surface: #1a1a19; --ink: #ffffff; --ink-2: #c3c2b7;
      --grid: #3a3936; --compute: #3987e5; --stall: #d95926; --comm: #199e70; }
  }
  body { background: var(--surface); color: var(--ink);
         font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 1.5rem; }
  h1 { font-size: 15px; } h2 { font-size: 13px; color: var(--ink-2); }
  table { border-collapse: collapse; width: 100%%; }
  th, td { text-align: left; padding: 2px 12px 2px 0; border-bottom: 1px solid var(--grid); }
  th { color: var(--ink-2); font-weight: normal; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  .bar { display: inline-block; height: 10px; vertical-align: middle; }
  .legend span { margin-right: 1em; color: var(--ink-2); }
  .swatch { display: inline-block; width: 10px; height: 10px; margin-right: 4px;
            vertical-align: baseline; }
  svg polyline { fill: none; stroke-width: 2; }
</style></head><body>
<h1>dashz &mdash; time-series history (window %s)</h1>
`, html.EscapeString(window.String()))

	s.renderUtilization(w, window)
	s.renderSeriesTable(w, window)
	fmt.Fprint(w, "</body></html>\n")
}

// renderUtilization writes the fleet utilization section: one row per
// group with a stacked compute/stall/comm bar (2px gaps between segments)
// and the numbers beside it.
func (s *Store) renderUtilization(w http.ResponseWriter, window time.Duration) {
	util := s.FleetUtilization(window)
	if len(util) == 0 {
		return
	}
	fmt.Fprint(w, `<h2>fleet utilization (windowed machine seconds)</h2>
<p class="legend"><span><span class="swatch" style="background:var(--compute)"></span>compute</span>`+
		`<span><span class="swatch" style="background:var(--stall)"></span>stall</span>`+
		`<span><span class="swatch" style="background:var(--comm)"></span>comm</span></p>
<table><tr><th>group</th><th>share</th><th class="num">compute s</th><th class="num">stall s</th><th class="num">comm s</th><th class="num">utilization</th></tr>
`)
	for _, u := range util {
		total := u.ComputeSeconds + u.StallSeconds + u.CommSeconds
		bar := ""
		if total > 0 {
			px := func(v float64) int { return int(200 * v / total) }
			bar = fmt.Sprintf(
				`<span class="bar" style="width:%dpx;background:var(--compute)"></span>`+
					`<span class="bar" style="width:%dpx;background:var(--stall);margin-left:2px"></span>`+
					`<span class="bar" style="width:%dpx;background:var(--comm);margin-left:2px"></span>`,
				px(u.ComputeSeconds), px(u.StallSeconds), px(u.CommSeconds))
		}
		fmt.Fprintf(w,
			"<tr><td>%s</td><td>%s</td><td class=\"num\">%.6f</td><td class=\"num\">%.6f</td><td class=\"num\">%.6f</td><td class=\"num\">%.1f%%</td></tr>\n",
			html.EscapeString(u.Group), bar,
			u.ComputeSeconds, u.StallSeconds, u.CommSeconds, 100*u.Utilization)
	}
	fmt.Fprint(w, "</table>\n")
}

// renderSeriesTable writes one row per series: name, kind, sparkline of
// the windowed points, and the windowed summary (rate for counters,
// last/min/max for gauges, count + p50/p99 for histograms).
func (s *Store) renderSeriesTable(w http.ResponseWriter, window time.Duration) {
	series := s.Series()
	fmt.Fprint(w, `<h2>series</h2>
<table><tr><th>name</th><th>kind</th><th>history</th><th class="num">windowed</th></tr>
`)
	const maxRows = 250
	for i, info := range series {
		if i >= maxRows {
			fmt.Fprintf(w, "<tr><td colspan=\"4\">&hellip; %d more series (see /varz)</td></tr>\n",
				len(series)-maxRows)
			break
		}
		q, ok := s.Query(info.Name, window, 0)
		if !ok {
			continue
		}
		var spark, summary string
		switch q.Kind {
		case KindHistogram:
			vals := make([]float64, 0, len(q.HistPoints))
			prev := int64(0)
			for j, p := range q.HistPoints {
				if j > 0 {
					vals = append(vals, float64(p.Count-prev))
				}
				prev = p.Count
			}
			spark = sparkline(vals)
			summary = fmt.Sprintf("n %d &middot; p50 %.4g &middot; p99 %.4g", q.Count, q.P50, q.P99)
		case KindCounter:
			vals := make([]float64, 0, len(q.Points))
			for j, p := range q.Points {
				if j > 0 {
					d := p.Last - q.Points[j-1].Last
					if d < 0 {
						d = 0
					}
					vals = append(vals, d)
				}
			}
			spark = sparkline(vals)
			summary = fmt.Sprintf("&Delta; %.4g &middot; %.4g/s", q.Delta, q.Rate)
		default:
			vals := make([]float64, 0, len(q.Points))
			for _, p := range q.Points {
				vals = append(vals, p.Last)
			}
			spark = sparkline(vals)
			summary = fmt.Sprintf("last %.6g &middot; min %.4g &middot; max %.4g", q.Last, q.Min, q.Max)
		}
		fmt.Fprintf(w, "<tr><td><a href=\"/varz/%s?window=%s\" style=\"color:inherit\">%s</a></td><td>%s</td><td>%s</td><td class=\"num\">%s</td></tr>\n",
			html.EscapeString(info.Name), html.EscapeString(window.String()),
			html.EscapeString(info.Name), q.Kind, spark, summary)
	}
	fmt.Fprint(w, "</table>\n")
}

// sparkline renders a 120x24 inline SVG polyline over the values, scaled
// to their own min/max (a flat series draws a midline). Empty input
// renders an empty placeholder.
func sparkline(vals []float64) string {
	const w, h, pad = 120, 24, 2.0
	if len(vals) == 0 {
		return `<svg width="120" height="24" role="img" aria-label="no data"></svg>`
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span := hi - lo
	var pts []string
	for i, v := range vals {
		x := pad
		if len(vals) > 1 {
			x = pad + (w-2*pad)*float64(i)/float64(len(vals)-1)
		}
		y := h / 2.0
		if span > 0 {
			y = (h - pad) - (h-2*pad)*(v-lo)/span
		}
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
	}
	title := fmt.Sprintf("%d points, min %.4g, max %.4g", len(vals), lo, hi)
	return fmt.Sprintf(
		`<svg width="%d" height="%d" role="img" aria-label=%q><title>%s</title>`+
			`<polyline points="%s" style="stroke:var(--compute)"/></svg>`,
		w, h, title, html.EscapeString(title), strings.Join(pts, " "))
}
