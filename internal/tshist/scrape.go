package tshist

import (
	"sync"
	"sync/atomic"
	"time"

	"swatop/internal/metrics"
)

// DefaultScrapeInterval is how often a Scraper snapshots its registry
// when the caller does not say otherwise.
const DefaultScrapeInterval = time.Second

// Scraper populates a Store from a metrics.Registry on a fixed interval.
// It is strictly read-only on the registry — Snapshot is the only call it
// makes — so an attached scraper cannot change selected schedules or any
// deterministic metric (the bit-identical invariant obs-check gates).
//
// The zero value is not usable; call NewScraper. Start/Stop may be called
// at most once each; ScrapeOnce may be called at any time (tests drive
// the store deterministically through it without starting the goroutine).
type Scraper struct {
	store    *Store
	reg      *metrics.Registry
	interval time.Duration

	// now is the scraper's clock, a seam for deterministic tests.
	now func() time.Time

	startOnce sync.Once
	stopOnce  sync.Once
	started   atomic.Bool
	stop      chan struct{}
	done      chan struct{}
	scrapes   atomic.Int64
}

// NewScraper builds a scraper over store and reg. interval <= 0 uses
// DefaultScrapeInterval.
func NewScraper(store *Store, reg *metrics.Registry, interval time.Duration) *Scraper {
	if interval <= 0 {
		interval = DefaultScrapeInterval
	}
	return &Scraper{
		store:    store,
		reg:      reg,
		interval: interval,
		now:      time.Now,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SetClock replaces the scraper's time source (tests). Call before Start.
func (sc *Scraper) SetClock(now func() time.Time) { sc.now = now }

// ScrapeOnce snapshots the registry into the store immediately. Safe to
// call concurrently with a running scrape loop and with registry writers.
func (sc *Scraper) ScrapeOnce() {
	if sc == nil {
		return
	}
	sc.store.Ingest(sc.now(), sc.reg.Snapshot())
	sc.scrapes.Add(1)
}

// Scrapes reports how many snapshots have been taken.
func (sc *Scraper) Scrapes() int64 {
	if sc == nil {
		return 0
	}
	return sc.scrapes.Load()
}

// Start launches the scrape loop in a background goroutine. It takes one
// immediate scrape so /varz has data before the first interval elapses.
// Nil-safe.
func (sc *Scraper) Start() {
	if sc == nil {
		return
	}
	sc.startOnce.Do(func() {
		sc.started.Store(true)
		sc.ScrapeOnce()
		go func() {
			defer close(sc.done)
			tick := time.NewTicker(sc.interval)
			defer tick.Stop()
			for {
				select {
				case <-sc.stop:
					return
				case <-tick.C:
					sc.ScrapeOnce()
				}
			}
		}()
	})
}

// Stop halts the loop (waiting for the goroutine to exit) and takes one
// final scrape so the history includes the registry's terminal state.
// Safe to call without Start, and more than once. Nil-safe.
func (sc *Scraper) Stop() {
	if sc == nil {
		return
	}
	sc.stopOnce.Do(func() {
		// Disarm Start for callers that race Stop before Start: the Once
		// is consumed here, so a later Start launches nothing.
		sc.startOnce.Do(func() {})
		close(sc.stop)
		if sc.started.Load() {
			<-sc.done
		}
		sc.ScrapeOnce()
	})
}
