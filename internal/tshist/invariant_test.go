package tshist_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"swatop"
	"swatop/internal/tshist"
)

// runTuned tunes a fixed small GEMM with or without a history scraper
// storming the registry, and returns the selected strategy, the simulated
// seconds, and the deterministic part of the metrics snapshot as JSON —
// the same probe TestObserverChangesNoResult uses for observers.
func runTuned(t *testing.T, withHistory bool) (string, float64, []byte) {
	t.Helper()
	tn, err := swatop.NewTuner()
	if err != nil {
		t.Fatal(err)
	}
	tn.SetWorkers(4)
	reg := swatop.NewMetricsRegistry()
	tn.SetMetrics(reg)
	if withHistory {
		// A deliberately hostile scrape interval: snapshot the registry as
		// often as the scheduler allows while tuning runs.
		store := tshist.New(tshist.Options{})
		sc := tshist.NewScraper(store, reg, time.Microsecond)
		sc.Start()
		defer func() {
			sc.Stop()
			if sc.Scrapes() < 2 {
				t.Fatalf("scraper barely ran (%d scrapes); invariant not exercised", sc.Scrapes())
			}
			if _, ok := store.Query("autotune_candidates_total", 0, 0); !ok {
				t.Fatal("history store empty after tuning")
			}
		}()
	}
	tuned, err := tn.TuneGemm(swatop.GemmParams{M: 256, N: 256, K: 256})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	// Host wall clocks and retry backoff are the only legitimately
	// nondeterministic metrics; everything else must match bit for bit.
	for name := range snap.Gauges {
		if strings.Contains(name, "wall_seconds") || strings.Contains(name, "backoff_seconds") {
			delete(snap.Gauges, name)
		}
	}
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return tuned.Strategy(), tuned.Seconds(), buf.Bytes()
}

// TestHistoryMachineSecondsInvariant is the tentpole's cardinal
// invariant, gated by `make obs-check`: a scraper snapshotting the
// registry as fast as it can changes neither the selected schedule, nor
// the simulated machine seconds, nor any deterministic metric — history
// on and off are bit-identical.
func TestHistoryMachineSecondsInvariant(t *testing.T) {
	baseStrategy, baseSeconds, baseSnap := runTuned(t, false)
	strategy, seconds, snap := runTuned(t, true)
	if strategy != baseStrategy {
		t.Fatalf("history scraper changed the schedule:\n  %s\nvs\n  %s", strategy, baseStrategy)
	}
	if seconds != baseSeconds {
		t.Fatalf("history scraper changed simulated seconds: %v vs %v", seconds, baseSeconds)
	}
	if !bytes.Equal(snap, baseSnap) {
		t.Fatalf("history scraper changed the metrics snapshot:\n%s\nvs\n%s", snap, baseSnap)
	}
}
