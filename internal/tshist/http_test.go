package tshist

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"swatop/internal/metrics"
)

// fixture builds a store with a counter growing 5/s and a histogram whose
// in-window observations put p99 at the 10 bound — the /varz acceptance
// shapes.
func fixture(t *testing.T) *Store {
	t.Helper()
	s := New(Options{})
	bounds := []float64{1, 10, 100}
	for sec := 0; sec <= 120; sec += 60 {
		snap := metrics.Snapshot{
			Counters: map[string]int64{"reqs_total": int64(5 * sec)},
			Gauges:   map[string]float64{"queue_depth": float64(sec)},
		}
		s.Ingest(at(float64(sec)), snap)
	}
	s.Ingest(at(0), histSnap("lat", bounds, []int64{0, 0, 0, 0}, 0))
	s.Ingest(at(60), histSnap("lat", bounds, []int64{0, 0, 0, 0}, 0))
	s.Ingest(at(120), histSnap("lat", bounds, []int64{98, 1, 1, 0}, 100))
	return s
}

func TestVarzIndex(t *testing.T) {
	s := fixture(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/varz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Fatalf("content-type = %q", ct)
	}
	var doc struct {
		Ingests     int64        `json:"ingests"`
		Resolutions []string     `json:"resolutions"`
		Capacity    int          `json:"capacity"`
		Series      []SeriesInfo `json:"series"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if doc.Ingests != 6 {
		t.Fatalf("ingests = %d, want 6", doc.Ingests)
	}
	if doc.Capacity != DefaultCapacity {
		t.Fatalf("capacity = %d, want %d", doc.Capacity, DefaultCapacity)
	}
	if len(doc.Resolutions) != len(DefaultResolutions) {
		t.Fatalf("resolutions = %v", doc.Resolutions)
	}
	names := map[string]bool{}
	for _, info := range doc.Series {
		names[info.Name] = true
	}
	for _, want := range []string{"reqs_total", "queue_depth", "lat"} {
		if !names[want] {
			t.Fatalf("series %q missing from index: %v", want, names)
		}
	}
}

func TestVarzCounterWindow(t *testing.T) {
	s := fixture(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec,
		httptest.NewRequest("GET", "/varz/reqs_total?window=60s", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var q QueryResult
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if q.Kind != KindCounter {
		t.Fatalf("kind = %q", q.Kind)
	}
	if q.Delta != 300 || q.Rate != 5 {
		t.Fatalf("delta/rate = %v/%v, want 300/5", q.Delta, q.Rate)
	}
}

func TestVarzHistogramWindow(t *testing.T) {
	s := fixture(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec,
		httptest.NewRequest("GET", "/varz/lat?window=60s", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var q QueryResult
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if q.Count != 100 {
		t.Fatalf("count = %d, want 100", q.Count)
	}
	if q.P50 != 1 || q.P99 != 10 {
		t.Fatalf("p50/p99 = %v/%v, want 1/10", q.P50, q.P99)
	}
}

func TestVarzUnknownSeries(t *testing.T) {
	s := fixture(t)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/varz/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
}

func TestVarzBadWindow(t *testing.T) {
	s := fixture(t)
	for _, url := range []string{
		"/varz?window=banana",
		"/varz/reqs_total?window=banana",
		"/varz/reqs_total?res=banana",
	} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		if rec.Code != 400 {
			t.Fatalf("%s: status = %d, want 400", url, rec.Code)
		}
	}
}

func TestDashHandler(t *testing.T) {
	s := fixture(t)
	s.Ingest(at(121), metrics.Snapshot{Gauges: map[string]float64{
		"machine_compute_seconds":        8,
		"machine_stall_seconds":          2,
		"group0_machine_compute_seconds": 4,
		"group0_machine_stall_seconds":   1,
	}})
	rec := httptest.NewRecorder()
	s.DashHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/dashz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("content-type = %q", ct)
	}
	for _, want := range []string{
		"<!doctype html>",
		"fleet utilization",
		"reqs_total",
		"lat",
		"<svg",           // sparklines rendered
		"var(--compute)", // palette roles, not raw hex in marks
		"group0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("dashz missing %q", want)
		}
	}
	// Bad window propagates as 400 here too.
	rec = httptest.NewRecorder()
	s.DashHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/dashz?window=x", nil))
	if rec.Code != 400 {
		t.Fatalf("bad window status = %d, want 400", rec.Code)
	}
}

func TestDashHandlerEmptyStore(t *testing.T) {
	s := New(Options{})
	rec := httptest.NewRecorder()
	s.DashHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/dashz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "series") {
		t.Fatal("empty dash should still render the series section")
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline(nil); !strings.Contains(got, "no data") {
		t.Fatalf("empty sparkline = %q", got)
	}
	flat := sparkline([]float64{3, 3, 3})
	if !strings.Contains(flat, "polyline") {
		t.Fatalf("flat sparkline = %q", flat)
	}
	one := sparkline([]float64{1})
	if !strings.Contains(one, "polyline") {
		t.Fatalf("single-point sparkline = %q", one)
	}
}
