package tshist

import (
	"fmt"
	"sort"
	"time"

	"swatop/internal/metrics"
)

// QueryResult is the answer to one windowed series query — what
// /varz/<metric> serves. Points or HistPoints is populated according to
// the series kind; the derived fields summarize the window.
type QueryResult struct {
	Name         string  `json:"name"`
	Kind         string  `json:"kind"`
	WindowMs     int64   `json:"window_ms"`
	ResolutionMs int64   `json:"resolution_ms"`
	Points       []Point `json:"points,omitempty"`

	// Counter derivations: Delta is the increase over the window, Rate is
	// Delta per second. A counter reset inside the window clamps the delta
	// to the final value (everything since the reset).
	Delta float64 `json:"delta,omitempty"`
	Rate  float64 `json:"rate,omitempty"`

	// Gauge derivations over the window.
	Min  float64 `json:"min,omitempty"`
	Max  float64 `json:"max,omitempty"`
	Mean float64 `json:"mean,omitempty"`
	Last float64 `json:"last,omitempty"`

	// Histogram derivations: bounds plus windowed count/sum deltas and
	// nearest-rank percentiles estimated from bucket deltas (each
	// percentile reports the upper bound of the bucket its rank lands in;
	// ranks in the +Inf overflow bucket clamp to the largest finite
	// bound).
	Bounds     []float64   `json:"bounds,omitempty"`
	HistPoints []HistPoint `json:"hist_points,omitempty"`
	Count      int64       `json:"count,omitempty"`
	Sum        float64     `json:"sum,omitempty"`
	P50        float64     `json:"p50,omitempty"`
	P90        float64     `json:"p90,omitempty"`
	P99        float64     `json:"p99,omitempty"`
}

// pickRes chooses the query resolution: the explicit request when given,
// otherwise the finest resolution whose retained span (resolution x
// capacity) covers the window. Returns the ring index.
func (s *Store) pickRes(window, res time.Duration) int {
	if res > 0 {
		// Exact match wins; otherwise the finest resolution >= requested.
		for i, r := range s.res {
			if r >= res {
				return i
			}
		}
		return len(s.res) - 1
	}
	for i, r := range s.res {
		if time.Duration(s.cap)*r >= window {
			return i
		}
	}
	return len(s.res) - 1
}

// windowStart computes the inclusive window start in unix millis, anchored
// at the newest ingest (not the wall clock, so replayed synthetic series
// query deterministically).
func (s *Store) windowStart(window time.Duration) int64 {
	if window <= 0 {
		return 0
	}
	return s.lastMs - window.Milliseconds()
}

// Query answers a windowed read of one series. window <= 0 means "all
// retained history"; res <= 0 picks the finest resolution covering the
// window. ok is false for unknown series.
func (s *Store) Query(name string, window, res time.Duration) (QueryResult, bool) {
	if s == nil {
		return QueryResult{}, false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ri := s.pickRes(window, res)
	start := s.windowStart(window)
	q := QueryResult{
		Name:         name,
		WindowMs:     window.Milliseconds(),
		ResolutionMs: s.res[ri].Milliseconds(),
	}

	// window <= 0 asks for the series' lifetime: deltas are taken from
	// zero (cumulative series start at zero at process birth), not from
	// the first retained point.
	lifetime := window <= 0
	if ser, ok := s.scalars[name]; ok {
		q.Kind = ser.kind
		for _, p := range ser.rings[ri].snapshot() {
			if p.T >= start {
				q.Points = append(q.Points, p)
			}
		}
		summarizeScalar(&q, lifetime)
		return q, true
	}
	if ser, ok := s.hists[name]; ok {
		q.Kind = KindHistogram
		q.Bounds = append([]float64(nil), ser.bounds...)
		for _, p := range ser.rings[ri].snapshot() {
			if p.T >= start {
				q.HistPoints = append(q.HistPoints, p)
			}
		}
		summarizeHist(&q, lifetime)
		return q, true
	}
	return QueryResult{}, false
}

// summarizeScalar fills the counter/gauge derivations from q.Points.
// lifetime makes the counter delta cumulative (from zero) instead of
// windowed (from the first retained point).
func summarizeScalar(q *QueryResult, lifetime bool) {
	if len(q.Points) == 0 {
		return
	}
	first, last := q.Points[0], q.Points[len(q.Points)-1]
	q.Last = last.Last
	q.Min, q.Max = first.Min, first.Max
	var sum float64
	var n int64
	for _, p := range q.Points {
		if p.Min < q.Min {
			q.Min = p.Min
		}
		if p.Max > q.Max {
			q.Max = p.Max
		}
		sum += p.Last * float64(p.N)
		n += p.N
	}
	if n > 0 {
		q.Mean = sum / float64(n)
	}
	if q.Kind != KindCounter {
		return
	}
	// Rate over window: the increase between the first and last retained
	// point divided by the time between them. One point yields no rate —
	// a window needs two observations to witness change.
	q.Delta = last.Last - first.Last
	if lifetime || q.Delta < 0 {
		// Lifetime view, or a counter reset inside the window: the final
		// cumulative value is the honest delta.
		q.Delta = last.Last
	}
	if dtMs := last.T - first.T; dtMs > 0 {
		q.Rate = q.Delta / (float64(dtMs) / 1e3)
	}
}

// summarizeHist fills the windowed count/sum deltas and percentiles from
// q.HistPoints. Because the points are cumulative, the windowed
// distribution is lastPoint - firstPoint; a single retained point (or a
// lifetime query) is treated as a delta from zero.
func summarizeHist(q *QueryResult, lifetime bool) {
	if len(q.HistPoints) == 0 {
		return
	}
	last := q.HistPoints[len(q.HistPoints)-1]
	base := HistPoint{Buckets: make([]int64, len(last.Buckets))}
	if len(q.HistPoints) > 1 && !lifetime {
		base = q.HistPoints[0]
	}
	q.Count = last.Count - base.Count
	q.Sum = last.Sum - base.Sum
	if q.Count < 0 { // reset: fall back to the cumulative state
		q.Count, q.Sum = last.Count, last.Sum
		base = HistPoint{Buckets: make([]int64, len(last.Buckets))}
	}
	delta := make([]int64, len(last.Buckets))
	for i := range delta {
		d := last.Buckets[i]
		if i < len(base.Buckets) {
			d -= base.Buckets[i]
		}
		if d < 0 {
			d = last.Buckets[i]
		}
		delta[i] = d
	}
	q.P50 = bucketPercentile(q.Bounds, delta, q.Count, 50)
	q.P90 = bucketPercentile(q.Bounds, delta, q.Count, 90)
	q.P99 = bucketPercentile(q.Bounds, delta, q.Count, 99)
}

// bucketPercentile is the nearest-rank percentile over a windowed bucket
// distribution: the value reported is the upper bound of the bucket the
// rank lands in. Ranks landing in the +Inf overflow bucket clamp to the
// largest finite bound (the best knowable upper estimate). Zero
// observations yield 0.
func bucketPercentile(bounds []float64, delta []int64, total int64, p float64) float64 {
	if total <= 0 || len(bounds) == 0 {
		return 0
	}
	rank := int64(metrics.PercentileIndex(int(total), p)) // 0-based
	var cum int64
	for i, d := range delta {
		cum += d
		if cum > rank {
			if i < len(bounds) {
				return bounds[i]
			}
			return bounds[len(bounds)-1] // overflow bucket
		}
	}
	return bounds[len(bounds)-1]
}

// GroupUtil is one core group's utilization over a window: the increase
// in simulated compute, stall and cross-group communication seconds. The
// aggregate entry (Group "fleet") sums the unprefixed machine gauges and
// the fleet's modeled comm seconds.
type GroupUtil struct {
	Group          string  `json:"group"`
	ComputeSeconds float64 `json:"compute_seconds"`
	StallSeconds   float64 `json:"stall_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
	// Utilization is compute / (compute + stall + comm), 0 when idle.
	Utilization float64 `json:"utilization"`
}

// scalarDelta computes the windowed increase of a cumulative scalar
// series (0 when absent or single-point). Caller holds s.mu (read).
func (s *Store) scalarDelta(name string, ri int, start int64) float64 {
	ser, ok := s.scalars[name]
	if !ok {
		return 0
	}
	var first, last *Point
	pts := ser.rings[ri].snapshot()
	for i := range pts {
		if pts[i].T < start {
			continue
		}
		if first == nil {
			first = &pts[i]
		}
		last = &pts[i]
	}
	if first == nil || last == nil || first == last {
		return 0
	}
	d := last.Last - first.Last
	if d < 0 {
		d = last.Last
	}
	return d
}

// FleetUtilization reports per-group and aggregate utilization over the
// window: how the fleet split its simulated seconds between computing,
// stalling on DMA, and cross-group communication. Groups are discovered
// from group<N>_machine_* gauge prefixes; the aggregate "fleet" row uses
// the unprefixed machine gauges plus infer_comm_seconds.
func (s *Store) FleetUtilization(window time.Duration) []GroupUtil {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ri := s.pickRes(window, 0)
	start := s.windowStart(window)

	prefixes := map[string]bool{"": true}
	for name := range s.scalars {
		if p, rest := splitGroupPrefix(name); p != "" && rest == "machine_compute_seconds" {
			prefixes[p] = true
		}
	}
	names := make([]string, 0, len(prefixes))
	for p := range prefixes {
		names = append(names, p)
	}
	sort.Strings(names)

	out := make([]GroupUtil, 0, len(names))
	for _, p := range names {
		u := GroupUtil{
			Group:          "fleet",
			ComputeSeconds: s.scalarDelta(p+"machine_compute_seconds", ri, start),
			StallSeconds:   s.scalarDelta(p+"machine_stall_seconds", ri, start),
		}
		if p == "" {
			// Modeled cross-group communication is accounted at the fleet
			// level (it is time on the shared DDR3 path, not one group's).
			u.CommSeconds = s.scalarDelta("infer_comm_seconds", ri, start)
		} else {
			u.Group = p[:len(p)-1] // "group0_" -> "group0"
		}
		if busy := u.ComputeSeconds + u.StallSeconds + u.CommSeconds; busy > 0 {
			u.Utilization = u.ComputeSeconds / busy
		}
		out = append(out, u)
	}
	return out
}

// UtilPoint is one bucket of a utilization timeline: the per-bucket
// increase of compute/stall/comm seconds.
type UtilPoint struct {
	T              int64   `json:"t"`
	ComputeSeconds float64 `json:"compute_seconds"`
	StallSeconds   float64 `json:"stall_seconds"`
	CommSeconds    float64 `json:"comm_seconds"`
}

// UtilizationTimeline derives a per-bucket utilization series for one
// group ("" or "fleet" for the aggregate, "group0"... for one group) by
// differencing the cumulative machine gauges bucket to bucket.
func (s *Store) UtilizationTimeline(group string, window, res time.Duration) []UtilPoint {
	if s == nil {
		return nil
	}
	prefix := ""
	if group != "" && group != "fleet" {
		prefix = group + "_"
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ri := s.pickRes(window, res)
	start := s.windowStart(window)

	series := func(name string) map[int64]float64 {
		ser, ok := s.scalars[name]
		if !ok {
			return nil
		}
		m := map[int64]float64{}
		for _, p := range ser.rings[ri].snapshot() {
			m[p.T] = p.Last
		}
		return m
	}
	compute := series(prefix + "machine_compute_seconds")
	stall := series(prefix + "machine_stall_seconds")
	comm := map[int64]float64{}
	if prefix == "" {
		comm = series("infer_comm_seconds")
	}

	ts := map[int64]bool{}
	for t := range compute {
		ts[t] = true
	}
	for t := range stall {
		ts[t] = true
	}
	for t := range comm {
		ts[t] = true
	}
	order := make([]int64, 0, len(ts))
	for t := range ts {
		order = append(order, t)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	var out []UtilPoint
	var prevC, prevS, prevM float64
	havePrev := false
	for _, t := range order {
		c, sv, m := compute[t], stall[t], comm[t]
		if havePrev && t >= start {
			out = append(out, UtilPoint{
				T:              t,
				ComputeSeconds: nonNeg(c - prevC),
				StallSeconds:   nonNeg(sv - prevS),
				CommSeconds:    nonNeg(m - prevM),
			})
		}
		prevC, prevS, prevM = c, sv, m
		havePrev = true
	}
	return out
}

func nonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// ParseWindow parses a /varz window or resolution parameter: a Go
// duration string ("60s", "5m"); empty yields the fallback.
func ParseWindow(s string, fallback time.Duration) (time.Duration, error) {
	if s == "" {
		return fallback, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("tshist: bad duration %q: %w", s, err)
	}
	if d < 0 {
		return 0, fmt.Errorf("tshist: negative duration %q", s)
	}
	return d, nil
}
