// Package tshist is the in-process time-series history behind /varz and
// /dashz: a dependency-free, bounded store of metric samples scraped from
// a metrics.Registry, with multi-resolution downsampling and the derived
// queries point-in-time snapshots cannot answer — rate-over-window for
// counters, windowed nearest-rank percentiles for histograms, and
// per-core-group utilization (compute vs stall vs comm seconds) for the
// fleet.
//
// Design rules, inherited from the rest of the observability stack:
//
//   - Bounded by construction: every series keeps one fixed-capacity ring
//     per resolution. Memory is O(series x resolutions x capacity) forever,
//     no matter how long the daemon runs.
//   - Observers never change results: the scraper only calls
//     Registry.Snapshot (a read), so simulated machine seconds and selected
//     schedules are bit-identical with history enabled or disabled — the
//     invariant `make obs-check` gates.
//   - Multi-resolution, not multi-copy: one Ingest feeds every resolution
//     ring. Samples landing in the same aligned bucket merge (last value
//     wins for cumulative series; min/max/count are kept for gauges), so
//     the 60s ring is a true downsample of the 1s ring, not a second
//     scrape.
//
// Timestamps are supplied by the caller (the Scraper's clock, or a test's
// synthetic clock) — the store itself never reads the wall clock, which is
// what makes windowed queries unit-testable against synthetic series.
package tshist

import (
	"sort"
	"strings"
	"sync"
	"time"

	"swatop/internal/metrics"
)

// DefaultResolutions are the downsampling levels a store keeps when the
// options do not say otherwise: 1s raw-ish scrape buckets, 10s and 60s
// downsamples. With the default capacity that retains 6 minutes, 1 hour
// and 6 hours of history respectively.
var DefaultResolutions = []time.Duration{time.Second, 10 * time.Second, time.Minute}

// DefaultCapacity is the number of points each resolution ring retains.
const DefaultCapacity = 360

// Options configure a Store.
type Options struct {
	// Resolutions are the bucket widths kept per series, ascending
	// (DefaultResolutions when empty). Queries pick the finest resolution
	// whose retained span covers the requested window.
	Resolutions []time.Duration
	// Capacity is the number of points per resolution ring
	// (DefaultCapacity when 0).
	Capacity int
}

// Point is one downsampled scalar bucket. For counters and other
// cumulative series Last is the value at the end of the bucket; for gauges
// Min/Max bracket every raw sample merged into the bucket.
type Point struct {
	// T is the bucket start, unix milliseconds, aligned to the ring's
	// resolution.
	T    int64   `json:"t"`
	Last float64 `json:"last"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	// N is how many raw scrapes merged into this bucket.
	N int64 `json:"n"`
}

// HistPoint is one downsampled histogram bucket: the cumulative count,
// sum and per-bucket counts at the end of the time bucket. Cumulative
// points make windowed percentiles a two-point subtraction.
type HistPoint struct {
	T     int64   `json:"t"`
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Buckets are cumulative observation counts per histogram bucket,
	// aligned with the series' Bounds; the last entry is the +Inf
	// overflow bucket.
	Buckets []int64 `json:"buckets"`
}

// ring is a fixed-capacity circular buffer of time buckets in
// chronological order.
type ring[P any] struct {
	buf  []P
	head int // index of the oldest element
	n    int
}

func newRing[P any](capacity int) *ring[P] {
	return &ring[P]{buf: make([]P, capacity)}
}

// last returns a pointer to the newest element (nil when empty) so the
// ingest path can merge in place.
func (r *ring[P]) last() *P {
	if r.n == 0 {
		return nil
	}
	return &r.buf[(r.head+r.n-1)%len(r.buf)]
}

// push appends p, evicting the oldest element when full.
func (r *ring[P]) push(p P) {
	if r.n < len(r.buf) {
		r.buf[(r.head+r.n)%len(r.buf)] = p
		r.n++
		return
	}
	r.buf[r.head] = p
	r.head = (r.head + 1) % len(r.buf)
}

// snapshot copies the ring's contents oldest-first.
func (r *ring[P]) snapshot() []P {
	out := make([]P, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.head+i)%len(r.buf)])
	}
	return out
}

// Series kinds, mirroring the registry's metric types.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// scalarSeries holds one counter or gauge at every resolution.
type scalarSeries struct {
	kind  string
	rings []*ring[Point]
}

// histSeries holds one histogram at every resolution.
type histSeries struct {
	bounds []float64
	rings  []*ring[HistPoint]
}

// Store is the bounded time-series history. All methods are safe for
// concurrent use; Ingest is typically called by one Scraper goroutine
// while HTTP handlers query.
type Store struct {
	res []time.Duration
	cap int

	mu      sync.RWMutex
	scalars map[string]*scalarSeries
	hists   map[string]*histSeries
	lastMs  int64 // timestamp of the newest ingest, unix milliseconds
	ingests int64
}

// New creates a store. Invalid options fall back to the defaults.
func New(opts Options) *Store {
	res := append([]time.Duration(nil), opts.Resolutions...)
	if len(res) == 0 {
		res = append(res, DefaultResolutions...)
	}
	sort.Slice(res, func(i, j int) bool { return res[i] < res[j] })
	for i, r := range res {
		if r <= 0 {
			res[i] = time.Second
		}
	}
	capacity := opts.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Store{
		res:     res,
		cap:     capacity,
		scalars: map[string]*scalarSeries{},
		hists:   map[string]*histSeries{},
	}
}

// Resolutions reports the store's configured bucket widths, ascending.
func (s *Store) Resolutions() []time.Duration {
	return append([]time.Duration(nil), s.res...)
}

// Capacity reports the per-ring point capacity.
func (s *Store) Capacity() int { return s.cap }

// Ingest records one registry snapshot taken at time t. Counters and
// gauges become scalar points, histograms become cumulative histogram
// points; within each resolution, samples falling into the same aligned
// bucket merge. Out-of-order timestamps older than the newest bucket of a
// ring are dropped for that ring (the scraper's clock is monotonic in
// practice; tests that replay synthetic series use ascending timestamps).
// Nil-safe on the store.
func (s *Store) Ingest(t time.Time, snap metrics.Snapshot) {
	if s == nil {
		return
	}
	ms := t.UnixMilli()
	s.mu.Lock()
	defer s.mu.Unlock()
	if ms > s.lastMs {
		s.lastMs = ms
	}
	s.ingests++

	// Deterministic iteration order is not needed for correctness (each
	// series is independent), but sorted names keep lazily created series
	// maps allocation-stable under test.
	for name, v := range snap.Counters {
		s.observeScalar(name, KindCounter, ms, float64(v))
	}
	for name, v := range snap.Gauges {
		s.observeScalar(name, KindGauge, ms, v)
	}
	for name, h := range snap.Histograms {
		s.observeHist(name, ms, h)
	}
}

// observeScalar merges one raw sample into every resolution ring of the
// named scalar series, creating the series on first sight. Caller holds
// s.mu.
func (s *Store) observeScalar(name, kind string, ms int64, v float64) {
	ser := s.scalars[name]
	if ser == nil {
		ser = &scalarSeries{kind: kind, rings: make([]*ring[Point], len(s.res))}
		for i := range ser.rings {
			ser.rings[i] = newRing[Point](s.cap)
		}
		s.scalars[name] = ser
	}
	for i, res := range s.res {
		bucket := truncMs(ms, res)
		r := ser.rings[i]
		if last := r.last(); last != nil {
			if bucket < last.T {
				continue // out-of-order beyond the newest bucket: drop
			}
			if bucket == last.T {
				last.Last = v
				if v < last.Min {
					last.Min = v
				}
				if v > last.Max {
					last.Max = v
				}
				last.N++
				continue
			}
		}
		r.push(Point{T: bucket, Last: v, Min: v, Max: v, N: 1})
	}
}

// observeHist merges one histogram snapshot into every resolution ring.
// Caller holds s.mu.
func (s *Store) observeHist(name string, ms int64, h metrics.HistogramSnapshot) {
	ser := s.hists[name]
	if ser == nil {
		ser = &histSeries{
			bounds: append([]float64(nil), h.Bounds...),
			rings:  make([]*ring[HistPoint], len(s.res)),
		}
		for i := range ser.rings {
			ser.rings[i] = newRing[HistPoint](s.cap)
		}
		s.hists[name] = ser
	}
	for i, res := range s.res {
		bucket := truncMs(ms, res)
		r := ser.rings[i]
		if last := r.last(); last != nil {
			if bucket < last.T {
				continue
			}
			if bucket == last.T {
				// Cumulative series: the newest sample supersedes earlier
				// ones in the same time bucket.
				last.Count = h.Count
				last.Sum = h.Sum
				copy(last.Buckets, h.Counts)
				continue
			}
		}
		r.push(HistPoint{
			T:       bucket,
			Count:   h.Count,
			Sum:     h.Sum,
			Buckets: append([]int64(nil), h.Counts...),
		})
	}
}

// truncMs aligns a unix-millisecond timestamp down to a resolution bucket.
func truncMs(ms int64, res time.Duration) int64 {
	w := res.Milliseconds()
	if w <= 0 {
		return ms
	}
	return ms - mod(ms, w)
}

// mod is a non-negative modulus (unix millis are positive in practice, but
// synthetic test clocks may start at 0 or below).
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// LastIngest reports the newest ingest timestamp (zero time when empty)
// and the total number of ingests.
func (s *Store) LastIngest() (time.Time, int64) {
	if s == nil {
		return time.Time{}, 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.lastMs == 0 {
		return time.Time{}, s.ingests
	}
	return time.UnixMilli(s.lastMs), s.ingests
}

// SeriesInfo is the /varz index entry for one series.
type SeriesInfo struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Last is the newest scalar value (counters/gauges); for histograms
	// it is the cumulative observation count.
	Last float64 `json:"last"`
	// Points is the number of retained points at the finest resolution.
	Points int `json:"points"`
}

// Series lists every known series, sorted by name.
func (s *Store) Series() []SeriesInfo {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]SeriesInfo, 0, len(s.scalars)+len(s.hists))
	for name, ser := range s.scalars {
		info := SeriesInfo{Name: name, Kind: ser.kind, Points: ser.rings[0].n}
		if last := ser.rings[0].last(); last != nil {
			info.Last = last.Last
		}
		out = append(out, info)
	}
	for name, ser := range s.hists {
		info := SeriesInfo{Name: name, Kind: KindHistogram, Points: ser.rings[0].n}
		if last := ser.rings[0].last(); last != nil {
			info.Last = float64(last.Count)
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// hasGroupPrefix splits "group3_machine_compute_seconds" into its group
// prefix ("group3_") and rest; a name with no group prefix returns ("",
// name).
func splitGroupPrefix(name string) (prefix, rest string) {
	if !strings.HasPrefix(name, "group") {
		return "", name
	}
	i := len("group")
	j := i
	for j < len(name) && name[j] >= '0' && name[j] <= '9' {
		j++
	}
	if j == i || j >= len(name) || name[j] != '_' {
		return "", name
	}
	return name[:j+1], name[j+1:]
}
