package primitives

import (
	"math"
	"testing"
	"testing/quick"

	"swatop/internal/ir"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
)

// packColMajor converts a row-major rank-2 tensor into a column-major slice
// with the given leading dimension.
func packColMajor(t *tensor.Tensor, ld int) []float32 {
	rows, cols := t.Dims[0], t.Dims[1]
	out := make([]float32, ld*cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			out[j*ld+i] = t.At(i, j)
		}
	}
	return out
}

func gemmAgainstOracle(t *testing.T, spec GemmSpec) {
	t.Helper()
	am := tensor.New("a", spec.M, spec.K)
	bm := tensor.New("b", spec.K, spec.N)
	am.FillPattern()
	bm.FillPattern()
	want, err := tensor.ReferenceGemm(am, bm, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	var a, b []float32
	if spec.ATrans {
		// stored K×M column-major
		at := tensor.New("at", spec.K, spec.M)
		for i := 0; i < spec.M; i++ {
			for k := 0; k < spec.K; k++ {
				at.Set(am.At(i, k), k, i)
			}
		}
		a = packColMajor(at, spec.LDA)
	} else {
		a = packColMajor(am, spec.LDA)
	}
	if spec.BTrans {
		bt := tensor.New("bt", spec.N, spec.K)
		for k := 0; k < spec.K; k++ {
			for j := 0; j < spec.N; j++ {
				bt.Set(bm.At(k, j), j, k)
			}
		}
		b = packColMajor(bt, spec.LDB)
	} else {
		b = packColMajor(bm, spec.LDB)
	}

	c := make([]float32, spec.LDC*spec.N)
	if err := Gemm(spec, a, b, c); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < spec.N; j++ {
		for i := 0; i < spec.M; i++ {
			w := want.At(i, j)
			g := c[j*spec.LDC+i]
			if math.Abs(float64(w-g)) > 1e-3 {
				t.Fatalf("variant %+v: C(%d,%d) = %g, want %g", spec, i, j, g, w)
			}
		}
	}
}

func TestGemmAllEightVariants(t *testing.T) {
	for _, at := range []bool{false, true} {
		for _, bt := range []bool{false, true} {
			for _, vec := range []ir.VecDim{ir.VecM, ir.VecN} {
				spec := GemmSpec{
					M: 8, N: 12, K: 5,
					LDA: 16, LDB: 16, LDC: 16,
					ATrans: at, BTrans: bt, Vec: vec,
				}
				gemmAgainstOracle(t, spec)
			}
		}
	}
}

func TestGemmAccumulate(t *testing.T) {
	spec := GemmSpec{M: 4, N: 4, K: 4, LDA: 4, LDB: 4, LDC: 4, Accumulate: true}
	a := make([]float32, 16)
	b := make([]float32, 16)
	c := make([]float32, 16)
	for i := range a {
		a[i] = 1
		b[i] = 1
		c[i] = 10
	}
	if err := Gemm(spec, a, b, c); err != nil {
		t.Fatal(err)
	}
	if c[0] != 14 { // 10 + K*1
		t.Fatalf("accumulate: c[0] = %g, want 14", c[0])
	}
	spec.Accumulate = false
	if err := Gemm(spec, a, b, c); err != nil {
		t.Fatal(err)
	}
	if c[0] != 4 {
		t.Fatalf("overwrite: c[0] = %g, want 4", c[0])
	}
}

func TestGemmValidate(t *testing.T) {
	bad := []GemmSpec{
		{M: 0, N: 4, K: 4, LDA: 4, LDB: 4, LDC: 4},
		{M: 4, N: 4, K: 4, LDA: 3, LDB: 4, LDC: 4},               // LDA < M
		{M: 4, N: 4, K: 4, LDA: 4, LDB: 3, LDC: 4},               // LDB < K
		{M: 4, N: 4, K: 4, LDA: 4, LDB: 4, LDC: 3},               // LDC < M
		{M: 6, N: 4, K: 4, LDA: 6, LDB: 4, LDC: 6},               // vecM, M%4 != 0
		{M: 4, N: 6, K: 4, LDA: 4, LDB: 4, LDC: 4, Vec: ir.VecN}, // vecN, N%4 != 0
		{M: 4, N: 4, K: 8, LDA: 4, LDB: 8, LDC: 4, ATrans: true}, // LDA < K when A^T
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: %+v should fail validation", i, s)
		}
	}
	ok := GemmSpec{M: 6, N: 4, K: 4, LDA: 6, LDB: 4, LDC: 6, Vec: ir.VecN}
	if err := ok.Validate(); err != nil {
		t.Errorf("vecN with M=6 should be valid: %v", err)
	}
}

func TestGemmShortBuffers(t *testing.T) {
	spec := GemmSpec{M: 4, N: 4, K: 4, LDA: 4, LDB: 4, LDC: 4}
	buf := make([]float32, 15)
	full := make([]float32, 16)
	if err := Gemm(spec, buf, full, full); err == nil {
		t.Fatal("short A must error")
	}
	if err := Gemm(spec, full, buf, full); err == nil {
		t.Fatal("short B must error")
	}
	if err := Gemm(spec, full, full, buf); err == nil {
		t.Fatal("short C must error")
	}
}

func TestGemmTimeScaling(t *testing.T) {
	base := GemmSpec{M: 64, N: 64, K: 64, LDA: 64, LDB: 64, LDC: 64}
	t1, err := GemmTime(base)
	if err != nil {
		t.Fatal(err)
	}
	doubleK := base
	doubleK.K = 128
	doubleK.LDB = 128
	t2, err := GemmTime(doubleK)
	if err != nil {
		t.Fatal(err)
	}
	if t2 <= t1 || t2 > 2.5*t1 {
		t.Fatalf("K scaling off: %g -> %g", t1, t2)
	}
	// Near-peak efficiency on a big aligned call: ≥ 55% of 742 GFLOPS.
	big := GemmSpec{M: 512, N: 512, K: 512, LDA: 512, LDB: 512, LDC: 512}
	tb, _ := GemmTime(big)
	gflops := float64(big.FLOPs()) / tb / 1e9
	if gflops < 0.55*sw26010.PeakGFlops || gflops > sw26010.PeakGFlops {
		t.Fatalf("512³ gemm = %.0f GFLOPS (peak %.0f)", gflops, sw26010.PeakGFlops)
	}
}

func TestGemmTimeLayoutMatters(t *testing.T) {
	// vecM with column-major A (M leading) must beat vecM with transposed A.
	fast := GemmSpec{M: 256, N: 256, K: 256, LDA: 256, LDB: 256, LDC: 256, Vec: ir.VecM}
	slow := fast
	slow.ATrans = true
	tf, _ := GemmTime(fast)
	ts, _ := GemmTime(slow)
	if ts <= tf {
		t.Fatalf("layout should matter: fast %g, slow %g", tf, ts)
	}
}

func TestGemmTimeRemainderPenalty(t *testing.T) {
	aligned := GemmSpec{M: 256, N: 256, K: 128, LDA: 256, LDB: 128, LDC: 256}
	odd := GemmSpec{M: 260, N: 252, K: 128, LDA: 260, LDB: 128, LDC: 260}
	ta, _ := GemmTime(aligned)
	to, _ := GemmTime(odd)
	perFlopAligned := ta / float64(aligned.FLOPs())
	perFlopOdd := to / float64(odd.FLOPs())
	if perFlopOdd <= perFlopAligned {
		t.Fatal("mesh-unaligned shapes must pay a remainder penalty per flop")
	}
}

func TestSpecializedVariant(t *testing.T) {
	spec := GemmSpec{M: 256, N: 256, K: 256, LDA: 256, LDB: 256, LDC: 256}
	plain, _ := GemmTime(spec)
	spec.Specialized = true
	fast, _ := GemmTime(spec)
	if fast >= plain {
		t.Fatal("specialized variant must be faster on its sweet spot")
	}
	// Off the sweet spot the flag is inert.
	off := GemmSpec{M: 200, N: 256, K: 256, LDA: 200, LDB: 256, LDC: 200, Specialized: true}
	offPlain := off
	offPlain.Specialized = false
	a, _ := GemmTime(off)
	b, _ := GemmTime(offPlain)
	if a != b {
		t.Fatal("specialization must not apply off the sweet spot")
	}
	if !SpecializedApplies(512, 256, 512) || SpecializedApplies(512, 255, 512) {
		t.Fatal("SpecializedApplies predicate wrong on alignment")
	}
	// Square-like only: 4× aspect ratio is outside the tuned kernels.
	if SpecializedApplies(512, 256, 1024) {
		t.Fatal("skinny shapes must not qualify for the specialized kernel")
	}
}

func TestGemmTimeInvalidSpec(t *testing.T) {
	if _, err := GemmTime(GemmSpec{M: -1, N: 4, K: 4, LDA: 4, LDB: 4, LDC: 4}); err == nil {
		t.Fatal("invalid spec must error")
	}
}

// Property: GemmTime is positive, and monotone in M for mesh-aligned shapes
// (multiples of 32 keep every 4×4 register block full, so no remainder
// penalty interferes; unaligned shapes may legitimately be slower per flop
// than larger aligned ones).
func TestGemmTimeMonotoneQuick(t *testing.T) {
	f := func(m0, n0, k0 uint8) bool {
		m := (int(m0%16) + 1) * 32
		n := (int(n0%16) + 1) * 32
		k := (int(k0%16) + 1) * 8
		s := GemmSpec{M: m, N: n, K: k, LDA: m, LDB: k, LDC: m}
		t1, err := GemmTime(s)
		if err != nil || t1 <= 0 {
			return false
		}
		s2 := GemmSpec{M: m + 32, N: n, K: k, LDA: m + 32, LDB: k, LDC: m + 32}
		t2, err := GemmTime(s2)
		return err == nil && t2 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestElems(t *testing.T) {
	s := GemmSpec{M: 8, N: 12, K: 5, LDA: 16, LDB: 16, LDC: 16}
	a, b, c := s.Elems()
	if a != 16*5 || b != 16*12 || c != 16*12 {
		t.Fatalf("elems = %d %d %d", a, b, c)
	}
	s.ATrans, s.BTrans = true, true
	a, b, _ = s.Elems()
	if a != 16*8 || b != 16*5 {
		t.Fatalf("transposed elems = %d %d", a, b)
	}
}

func TestGenericKernelMuchSlower(t *testing.T) {
	// The §1 motivation: generic-compiler inner kernels without register
	// communication and pipeline scheduling lose several-fold to the
	// hand-written primitive.
	spec := GemmSpec{M: 256, N: 256, K: 256, LDA: 256, LDB: 256, LDC: 256}
	tuned, err := GemmTime(spec)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := GenericGemmTime(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := generic / tuned; ratio < 3 || ratio > 50 {
		t.Fatalf("generic/tuned kernel ratio %.1f outside the plausible several-fold band", ratio)
	}
	if _, err := GenericGemmTime(GemmSpec{M: -1, N: 1, K: 1, LDA: 1, LDB: 1, LDC: 1}); err == nil {
		t.Fatal("invalid spec must error")
	}
}
