package primitives

import (
	"fmt"

	"swatop/internal/sw26010"
)

// Winograd F(2×2, 3×3) tile transforms (Lavin & Gray; paper §3, Fig. 2
// middle). Tiles are 4×4, outputs 2×2, 16 element-wise products per tile —
// which swATOP batches into 16 GEMM planes.
//
// SPM data layouts used by the conv lowering:
//   - filter source: cnt consecutive 3×3 filters (9 floats each, row-major)
//   - input source:  cnt consecutive 4×4 tiles (16 floats, row-major)
//   - transformed:   16 planes of cnt floats: dst[xi*cnt + t]
//   - output:        cnt consecutive 2×2 tiles (4 floats, row-major)

// WinoTileSize is the Winograd input tile side.
const WinoTileSize = 4

// WinoOutSize is the output tile side of F(2×2,3×3).
const WinoOutSize = 2

// WinoPlanes is the number of element-wise product planes (= GEMM calls).
const WinoPlanes = WinoTileSize * WinoTileSize

// WinoFilterTransform computes U = G·g·Gᵀ for cnt 3×3 filters, scattering
// results into 16 planes.
func WinoFilterTransform(src, dst []float32, cnt int) error {
	if len(src) < cnt*9 || len(dst) < cnt*WinoPlanes {
		return fmt.Errorf("wino filter transform: short buffers (src %d/%d, dst %d/%d)",
			len(src), cnt*9, len(dst), cnt*WinoPlanes)
	}
	for t := 0; t < cnt; t++ {
		g := src[t*9 : t*9+9]
		// tmp = G·g (4×3), G = [[1,0,0],[.5,.5,.5],[.5,-.5,.5],[0,0,1]]
		var tmp [12]float32
		for c := 0; c < 3; c++ {
			g0, g1, g2 := g[0*3+c], g[1*3+c], g[2*3+c]
			tmp[0*3+c] = g0
			tmp[1*3+c] = 0.5 * (g0 + g1 + g2)
			tmp[2*3+c] = 0.5 * (g0 - g1 + g2)
			tmp[3*3+c] = g2
		}
		// u = tmp·Gᵀ (4×4)
		for r := 0; r < 4; r++ {
			t0, t1, t2 := tmp[r*3+0], tmp[r*3+1], tmp[r*3+2]
			u0 := t0
			u1 := 0.5 * (t0 + t1 + t2)
			u2 := 0.5 * (t0 - t1 + t2)
			u3 := t2
			dst[(r*4+0)*cnt+t] = u0
			dst[(r*4+1)*cnt+t] = u1
			dst[(r*4+2)*cnt+t] = u2
			dst[(r*4+3)*cnt+t] = u3
		}
	}
	return nil
}

// WinoInputTransform computes V = Bᵀ·d·B for cnt 4×4 input tiles,
// scattering results into 16 planes.
func WinoInputTransform(src, dst []float32, cnt int) error {
	if len(src) < cnt*16 || len(dst) < cnt*WinoPlanes {
		return fmt.Errorf("wino input transform: short buffers (src %d/%d, dst %d/%d)",
			len(src), cnt*16, len(dst), cnt*WinoPlanes)
	}
	for t := 0; t < cnt; t++ {
		d := src[t*16 : t*16+16]
		// tmp = Bᵀ·d, Bᵀ = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]]
		var tmp [16]float32
		for c := 0; c < 4; c++ {
			d0, d1, d2, d3 := d[0*4+c], d[1*4+c], d[2*4+c], d[3*4+c]
			tmp[0*4+c] = d0 - d2
			tmp[1*4+c] = d1 + d2
			tmp[2*4+c] = d2 - d1
			tmp[3*4+c] = d1 - d3
		}
		// v = tmp·B
		for r := 0; r < 4; r++ {
			t0, t1, t2, t3 := tmp[r*4+0], tmp[r*4+1], tmp[r*4+2], tmp[r*4+3]
			v0 := t0 - t2
			v1 := t1 + t2
			v2 := t2 - t1
			v3 := t1 - t3
			dst[(r*4+0)*cnt+t] = v0
			dst[(r*4+1)*cnt+t] = v1
			dst[(r*4+2)*cnt+t] = v2
			dst[(r*4+3)*cnt+t] = v3
		}
	}
	return nil
}

// WinoOutputTransform computes Y = Aᵀ·m·A for cnt tiles gathered from 16
// planes, producing 2×2 outputs.
func WinoOutputTransform(src, dst []float32, cnt int) error {
	if len(src) < cnt*WinoPlanes || len(dst) < cnt*4 {
		return fmt.Errorf("wino output transform: short buffers (src %d/%d, dst %d/%d)",
			len(src), cnt*WinoPlanes, len(dst), cnt*4)
	}
	for t := 0; t < cnt; t++ {
		var m [16]float32
		for xi := 0; xi < 16; xi++ {
			m[xi] = src[xi*cnt+t]
		}
		// tmp = Aᵀ·m (2×4), Aᵀ = [[1,1,1,0],[0,1,-1,-1]]
		var tmp [8]float32
		for c := 0; c < 4; c++ {
			m0, m1, m2, m3 := m[0*4+c], m[1*4+c], m[2*4+c], m[3*4+c]
			tmp[0*4+c] = m0 + m1 + m2
			tmp[1*4+c] = m1 - m2 - m3
		}
		// y = tmp·A
		for r := 0; r < 2; r++ {
			t0, t1, t2, t3 := tmp[r*4+0], tmp[r*4+1], tmp[r*4+2], tmp[r*4+3]
			dst[t*4+r*2+0] = t0 + t1 + t2
			dst[t*4+r*2+1] = t1 - t2 - t3
		}
	}
	return nil
}

// Winograd transform cycle costs. Each transform is a short sequence of
// vector adds/muls per tile; the cluster processes tiles in parallel
// across 64 CPEs, VectorWidth tiles per vector op.
const (
	winoFilterOpsPerTile = 28.0 // 4×3 + 4×4 fused adds/muls
	winoInputOpsPerTile  = 32.0
	winoOutputOpsPerTile = 24.0
	// winoScatterPenalty models the strided SPM scatter into the 16 planes
	// (P1-bound, partially overlapped).
	winoScatterPenalty          = 8.0
	transformCallOverheadCycles = 90.0
)

// WinoTransformTime returns the simulated time of transforming cnt tiles of
// the given phase ("filter", "input", "output").
func WinoTransformTime(phase string, cnt int) (float64, error) {
	var ops float64
	switch phase {
	case "filter":
		ops = winoFilterOpsPerTile
	case "input":
		ops = winoInputOpsPerTile
	case "output":
		ops = winoOutputOpsPerTile
	default:
		return 0, fmt.Errorf("wino transform: unknown phase %q", phase)
	}
	// VectorWidth tiles per vector op, tiles spread across the 64 CPEs.
	perTile := (ops + winoScatterPenalty) / float64(sw26010.VectorWidth)
	cycles := transformCallOverheadCycles + perTile*float64(ceilDiv(cnt, sw26010.NumCPE))
	return sw26010.Seconds(cycles), nil
}
