package primitives

import (
	"fmt"

	"swatop/internal/sw26010"
)

// Auxiliary SPM kernels used by boundary processing (§4.5.3): zero-fill for
// lightweight padding and strided SPM-to-SPM copies into auxiliary buffers.

// ZeroFill clears n elements of an SPM slice.
func ZeroFill(dst []float32, n int) error {
	if n < 0 || n > len(dst) {
		return fmt.Errorf("zerofill: %d elements into buffer of %d", n, len(dst))
	}
	for i := 0; i < n; i++ {
		dst[i] = 0
	}
	return nil
}

// CopySPM copies n elements between SPM slices.
func CopySPM(src, dst []float32, n int) error {
	if n < 0 || n > len(src) || n > len(dst) {
		return fmt.Errorf("copy_spm: %d elements (src %d, dst %d)", n, len(src), len(dst))
	}
	copy(dst[:n], src[:n])
	return nil
}

// ZeroFillTime models a vectorized SPM clear: one vector store per 4
// elements, spread across the cluster.
func ZeroFillTime(n int) float64 {
	vecs := float64(ceilDiv(n, sw26010.VectorWidth))
	cycles := 40.0 + vecs/float64(sw26010.NumCPE)
	return sw26010.Seconds(cycles)
}

// CopySPMTime models an SPM-to-SPM vector copy (load + store per vector).
func CopySPMTime(n int) float64 {
	vecs := float64(ceilDiv(n, sw26010.VectorWidth))
	cycles := 40.0 + 2*vecs/float64(sw26010.NumCPE)
	return sw26010.Seconds(cycles)
}
