// Package primitives implements swATOP's tensorized primitives (§4.1 and
// the appendix): the eight spm_gemm micro-kernel variants and the auxiliary
// transform kernels (Winograd tile transforms, SPM zero-fill/copy). Each
// primitive has a functional implementation operating on SPM-resident data
// and a detailed cycle model derived from the appendix's register
// communication / vectorization / register blocking / dual-pipeline design.
//
// The cycle model is intentionally richer than the linear Eq. (2) the
// autotuner fits: it contains remainder penalties (4×4 register blocking,
// vector lanes), layout-dependent load instruction selection (vlddr/vlddc
// vs vlddec/vldder), per-call ramp-up and strided-store penalties. Those
// second-order terms are what the performance-model autotuner mispredicts —
// reproducing the paper's <8% worst-case model loss (Fig. 9).
package primitives

import (
	"fmt"

	"swatop/internal/ir"
	"swatop/internal/sw26010"
)

// GemmSpec describes one spm_gemm invocation. Matrices are column-major
// float32 in SPM with explicit leading dimensions (CBLAS convention):
// C[M×N] (+)= op(A)[M×K] × op(B)[K×N], op transposing when the flag is set.
// Vec selects the vectorized loop dimension (M or N) — together with the
// two layout flags this spans the eight assembly kernel variants.
type GemmSpec struct {
	M, N, K        int
	LDA, LDB, LDC  int
	ATrans, BTrans bool
	Vec            ir.VecDim
	Accumulate     bool
	// Specialized selects the hand-tuned assembly variant that manual
	// libraries (xMath) ship for exactly-aligned large shapes. swATOP's
	// schedule space never sets it (see DESIGN.md).
	Specialized bool
}

// Validate checks primitive-usage rules: positive dims, leading dimensions
// covering the stored extent, and the vectorization alignment rule (the
// vectorized dimension must be a multiple of the vector width; boundary
// processing pads tiles to guarantee this).
func (s GemmSpec) Validate() error {
	if s.M <= 0 || s.N <= 0 || s.K <= 0 {
		return fmt.Errorf("spm_gemm: non-positive dims M=%d N=%d K=%d", s.M, s.N, s.K)
	}
	arows, acols := s.M, s.K
	if s.ATrans {
		arows, acols = s.K, s.M
	}
	brows, bcols := s.K, s.N
	if s.BTrans {
		brows, bcols = s.N, s.K
	}
	_ = acols
	_ = bcols
	if s.LDA < arows {
		return fmt.Errorf("spm_gemm: LDA=%d < stored rows %d", s.LDA, arows)
	}
	if s.LDB < brows {
		return fmt.Errorf("spm_gemm: LDB=%d < stored rows %d", s.LDB, brows)
	}
	if s.LDC < s.M {
		return fmt.Errorf("spm_gemm: LDC=%d < M=%d", s.LDC, s.M)
	}
	vecExtent := s.M
	if s.Vec == ir.VecN {
		vecExtent = s.N
	}
	if vecExtent%sw26010.VectorWidth != 0 {
		return fmt.Errorf("spm_gemm: vectorized dim extent %d not a multiple of %d (%s)",
			vecExtent, sw26010.VectorWidth, s.Vec)
	}
	return nil
}

// Elems returns the SPM element footprints of A, B and C under the spec.
func (s GemmSpec) Elems() (a, b, c int) {
	acols := s.K
	if s.ATrans {
		acols = s.M
	}
	bcols := s.N
	if s.BTrans {
		bcols = s.K
	}
	return s.LDA * acols, s.LDB * bcols, s.LDC * s.N
}

// FLOPs returns the floating point operations of the call.
func (s GemmSpec) FLOPs() int64 { return 2 * int64(s.M) * int64(s.N) * int64(s.K) }

func (s GemmSpec) at(a []float32, i, k int) float32 {
	if s.ATrans {
		return a[k+i*s.LDA]
	}
	return a[i+k*s.LDA]
}

func (s GemmSpec) bt(b []float32, k, j int) float32 {
	if s.BTrans {
		return b[j+k*s.LDB]
	}
	return b[k+j*s.LDB]
}

// Gemm executes the primitive functionally on SPM-resident slices.
func Gemm(s GemmSpec, a, b, c []float32) error {
	if err := s.Validate(); err != nil {
		return err
	}
	ae, be, ce := s.Elems()
	if len(a) < ae || len(b) < be || len(c) < ce {
		return fmt.Errorf("spm_gemm: operand storage too small: a %d<%d, b %d<%d or c %d<%d",
			len(a), ae, len(b), be, len(c), ce)
	}
	for j := 0; j < s.N; j++ {
		col := c[j*s.LDC : j*s.LDC+s.M]
		if !s.Accumulate {
			for i := range col {
				col[i] = 0
			}
		}
		for k := 0; k < s.K; k++ {
			bv := s.bt(b, k, j)
			if bv == 0 {
				continue
			}
			if !s.ATrans {
				acol := a[k*s.LDA : k*s.LDA+s.M]
				for i := 0; i < s.M; i++ {
					col[i] += acol[i] * bv
				}
			} else {
				for i := 0; i < s.M; i++ {
					col[i] += a[k+i*s.LDA] * bv
				}
			}
		}
	}
	return nil
}

// Cycle-model constants (per CPE unless stated otherwise).
const (
	// gemmCallOverheadCycles covers kernel launch, register-communication
	// pattern setup and pipeline drain (the δ of Eq. 2).
	gemmCallOverheadCycles = 260.0
	// perKOverheadCycles covers the row/column broadcast synchronization
	// per K step (the α term).
	perKOverheadCycles = 5.0
	// vectorLoadCycles is the cost of one vlddr/vlddc vector load+broadcast
	// when the vectorized dimension is the leading (contiguous) one.
	vectorLoadCycles = 1.0
	// extendLoadCycles is the cost of assembling one vector via
	// vlddec/vldder scalar load+extend+broadcast when the layout does not
	// put the vectorized dimension contiguous.
	extendLoadCycles = 2.6
	// storePenaltyPerVec is the extra P1 cost per C vector store when the
	// vectorized dimension is not C's leading dimension (strided stores).
	storePenaltyPerVec = 1.4
	// remainderStallFactor inflates vmad cost in partial 4×4 register
	// blocks (RAW hazards cannot be fully hidden there).
	remainderStallFactor = 1.6
	// rampCycles is the software-pipelining ramp per innermost-loop entry.
	rampCycles = 18.0
	// specializedFactor is the cycle advantage of the hand-tuned assembly
	// variant on its exact alignment sweet spot.
	specializedFactor = 0.93
)

// SpecializedApplies reports whether a shape qualifies for the hand-tuned
// assembly variant: all dimensions multiples of 256 and square-like
// (within 2× of each other) — the workload xMath's kernels are tuned for
// ("the xMath optimization is targeted on square-like matrix
// multiplications", §5.1.2).
func SpecializedApplies(m, n, k int) bool {
	if m%256 != 0 || n%256 != 0 || k%256 != 0 {
		return false
	}
	lo, hi := m, m
	for _, v := range []int{n, k} {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi <= 2*lo
}

// GemmTime returns the simulated execution time (seconds) of one spm_gemm
// call. The model follows the appendix design: matrices distributed over
// the 8×8 mesh, per-CPE tile Mt×Nt with 4×4 register blocking, one 4-wide
// vmad per cycle in the steady state, loads on P1 overlapped except for the
// layout-dependent surcharges.
func GemmTime(s GemmSpec) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	mesh := float64(sw26010.MeshDim)
	mt := ceilDiv(s.M, sw26010.MeshDim)
	nt := ceilDiv(s.N, sw26010.MeshDim)
	k := float64(s.K)

	// Steady-state vmad cycles: each CPE performs Mt*Nt/4 vector MACs per
	// K step; full 4×4 register blocks retire one vmad per cycle.
	fullM := mt / 4 * 4
	fullN := nt / 4 * 4
	vmadFull := float64(fullM*fullN) / 4.0
	vmadRem := (float64(mt*nt) - float64(fullM*fullN)) / 4.0 * remainderStallFactor
	computePerK := vmadFull + vmadRem

	// Load cost per K step: the vectorized operand needs Mt/4 (or Nt/4)
	// vector loads; whether they are single vector loads (vlddr/vlddc, on
	// P1, hideable behind vmads) or scalar load+extend sequences
	// (vlddec/vldder — the extend consumes P0 issue slots and cannot
	// hide) depends on the operand layout. The broadcast operand always
	// uses one extend-load per K step.
	var vecTile int
	var vecLeading bool
	if s.Vec == ir.VecM {
		vecTile = mt
		vecLeading = !s.ATrans // column-major A has M contiguous
	} else {
		vecTile = nt
		vecLeading = s.BTrans // row-major (transposed) B has N contiguous
	}
	p0Loads := extendLoadCycles // broadcast operand extend, on P0
	p1Loads := 0.0
	nvec := float64(ceilDiv(vecTile, sw26010.VectorWidth))
	if vecLeading {
		p1Loads += nvec * vectorLoadCycles
	} else {
		p0Loads += nvec * extendLoadCycles
	}
	// P1 loads overlap with P0 vmads; only the excess over the vmad
	// budget stalls.
	loadStall := p1Loads - computePerK
	if loadStall < 0 {
		loadStall = 0
	}

	perK := computePerK + p0Loads + loadStall + perKOverheadCycles

	// C stores: once per call, Mt*Nt/4 vector stores; strided when the
	// vectorized dim is not C's leading dim (C is column-major: M leading).
	storeVecs := float64(mt*nt) / 4.0
	storeCost := storeVecs * vectorLoadCycles
	if s.Vec == ir.VecN {
		storeCost += storeVecs * storePenaltyPerVec
	}

	cycles := gemmCallOverheadCycles + rampCycles*float64(nt) + k*perK + storeCost

	// Register communication volume: every CPE receives its row strip of A
	// and column strip of B each call; bandwidth-bound lower bound.
	regBytes := (float64(s.M)*k/mesh + k*float64(s.N)/mesh) * 4 * float64(sw26010.NumCPE)
	regCycles := sw26010.Cycles(regBytes / sw26010.RegCommBandwidth)
	if regCycles > cycles {
		cycles = regCycles
	}

	if s.Specialized && SpecializedApplies(s.M, s.N, s.K) {
		cycles *= specializedFactor
	}
	return sw26010.Seconds(cycles), nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// GenericGemmTime models the inner kernel a generic compiler stack (the
// paper's swTVM discussion, §1) emits for the same SPM-resident tile
// product: correct C code, but without register communication (each CPE
// re-reads shared operand strips from its own SPM copy or via remote
// loads), without the dual-pipeline software pipelining (RAW hazards
// stall), and with scalar loads feeding the vector unit. The paper's
// motivation — such code "performs much slower than existing manual
// versions" — falls out of these three omissions.
func GenericGemmTime(s GemmSpec) (float64, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	mt := ceilDiv(s.M, sw26010.MeshDim)
	nt := ceilDiv(s.N, sw26010.MeshDim)
	k := float64(s.K)

	// Without the 4×4 register blocking and pipeline scheduling, every
	// vmad waits out its RAW latency (~4 cycles), and operand loads are
	// scalar (no vlddr/vlddc broadcasts): ~4 extra cycles per vector.
	const rawStallCycles = 4.0
	const scalarLoadCycles = 4.0
	vmads := float64(mt*nt) / float64(sw26010.VectorWidth)
	perK := vmads*(1+rawStallCycles) + vmads*scalarLoadCycles + perKOverheadCycles
	// No register communication: the A row strip and B column strip reach
	// each CPE through 8× redundant SPM traffic instead of the mesh
	// broadcast, serialized with compute.
	redundant := (float64(s.M)*k + k*float64(s.N)) / float64(sw26010.MeshDim)
	cycles := gemmCallOverheadCycles + k*perK + redundant/float64(sw26010.VectorWidth)
	return sw26010.Seconds(cycles), nil
}
