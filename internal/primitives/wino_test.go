package primitives

import (
	"math"
	"testing"

	"swatop/internal/tensor"
)

// winogradOneTile runs a full F(2x2,3x3) convolution of a single 4x4 input
// tile with a single 3x3 filter through the three transforms and compares
// with direct convolution.
func TestWinogradSingleTileAgainstDirect(t *testing.T) {
	in := []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	g := []float32{
		1, 0, -1,
		2, 1, 0,
		0, -1, 1,
	}

	u := make([]float32, WinoPlanes)
	v := make([]float32, WinoPlanes)
	if err := WinoFilterTransform(g, u, 1); err != nil {
		t.Fatal(err)
	}
	if err := WinoInputTransform(in, v, 1); err != nil {
		t.Fatal(err)
	}
	m := make([]float32, WinoPlanes)
	for xi := 0; xi < WinoPlanes; xi++ {
		m[xi] = u[xi] * v[xi]
	}
	y := make([]float32, 4)
	if err := WinoOutputTransform(m, y, 1); err != nil {
		t.Fatal(err)
	}

	// Direct 2x2 output of valid conv (correlation, as Alg. 1).
	var want [4]float32
	for ro := 0; ro < 2; ro++ {
		for co := 0; co < 2; co++ {
			var acc float32
			for kr := 0; kr < 3; kr++ {
				for kc := 0; kc < 3; kc++ {
					acc += in[(ro+kr)*4+co+kc] * g[kr*3+kc]
				}
			}
			want[ro*2+co] = acc
		}
	}
	for i := range want {
		if math.Abs(float64(y[i]-want[i])) > 1e-4 {
			t.Fatalf("output[%d] = %g, want %g (y=%v)", i, y[i], want[i], want)
		}
	}
}

// TestWinogradMultiChannel checks the batched-GEMM formulation: for each
// plane xi, M[xi][no][p] = sum_ni U[xi][no][ni] * V[xi][ni][p], which is
// exactly the 16-GEMM structure swATOP lowers to.
func TestWinogradMultiChannelGemmFormulation(t *testing.T) {
	const Ni, No = 3, 2
	s := tensor.ConvShape{B: 1, Ni: Ni, No: No, Ro: 4, Co: 4, Kr: 3, Kc: 3}
	in := tensor.NewConvInput(s)
	w := tensor.NewConvFilter(s)
	in.FillPattern()
	w.FillPattern()
	ref, err := tensor.ReferenceConv(in, w, s)
	if err != nil {
		t.Fatal(err)
	}

	tilesR, tilesC := s.Ro/2, s.Co/2
	P := tilesR * tilesC // batch=1

	// U[xi][no][ni]
	u := make([]float32, WinoPlanes*No*Ni)
	for no := 0; no < No; no++ {
		for ni := 0; ni < Ni; ni++ {
			flt := make([]float32, 9)
			for kr := 0; kr < 3; kr++ {
				for kc := 0; kc < 3; kc++ {
					flt[kr*3+kc] = w.At(no, ni, kr, kc)
				}
			}
			tile := make([]float32, WinoPlanes)
			if err := WinoFilterTransform(flt, tile, 1); err != nil {
				t.Fatal(err)
			}
			for xi := 0; xi < WinoPlanes; xi++ {
				u[(xi*No+no)*Ni+ni] = tile[xi]
			}
		}
	}

	// V[xi][ni][p]
	v := make([]float32, WinoPlanes*Ni*P)
	for ni := 0; ni < Ni; ni++ {
		for tr := 0; tr < tilesR; tr++ {
			for tc := 0; tc < tilesC; tc++ {
				p := tr*tilesC + tc
				tile := make([]float32, 16)
				for r := 0; r < 4; r++ {
					for c := 0; c < 4; c++ {
						tile[r*4+c] = in.At(ni, tr*2+r, tc*2+c, 0)
					}
				}
				out := make([]float32, WinoPlanes)
				if err := WinoInputTransform(tile, out, 1); err != nil {
					t.Fatal(err)
				}
				for xi := 0; xi < WinoPlanes; xi++ {
					v[(xi*Ni+ni)*P+p] = out[xi]
				}
			}
		}
	}

	// M[xi][no][p] via 16 small GEMMs.
	m := make([]float32, WinoPlanes*No*P)
	for xi := 0; xi < WinoPlanes; xi++ {
		for no := 0; no < No; no++ {
			for p := 0; p < P; p++ {
				var acc float32
				for ni := 0; ni < Ni; ni++ {
					acc += u[(xi*No+no)*Ni+ni] * v[(xi*Ni+ni)*P+p]
				}
				m[(xi*No+no)*P+p] = acc
			}
		}
	}

	// Inverse transform per (no, p).
	for no := 0; no < No; no++ {
		for tr := 0; tr < tilesR; tr++ {
			for tc := 0; tc < tilesC; tc++ {
				p := tr*tilesC + tc
				planes := make([]float32, WinoPlanes)
				for xi := 0; xi < WinoPlanes; xi++ {
					planes[xi] = m[(xi*No+no)*P+p]
				}
				y := make([]float32, 4)
				if err := WinoOutputTransform(planes, y, 1); err != nil {
					t.Fatal(err)
				}
				for r := 0; r < 2; r++ {
					for c := 0; c < 2; c++ {
						want := ref.At(no, tr*2+r, tc*2+c, 0)
						if math.Abs(float64(y[r*2+c]-want)) > 1e-3 {
							t.Fatalf("no=%d tile(%d,%d) out(%d,%d) = %g, want %g",
								no, tr, tc, r, c, y[r*2+c], want)
						}
					}
				}
			}
		}
	}
}

func TestWinoTransformsBatched(t *testing.T) {
	// Transforming 5 tiles at once must equal 5 single-tile transforms.
	const cnt = 5
	src := make([]float32, cnt*16)
	for i := range src {
		src[i] = float32(i%13) - 6
	}
	batched := make([]float32, cnt*WinoPlanes)
	if err := WinoInputTransform(src, batched, cnt); err != nil {
		t.Fatal(err)
	}
	for tIdx := 0; tIdx < cnt; tIdx++ {
		single := make([]float32, WinoPlanes)
		if err := WinoInputTransform(src[tIdx*16:(tIdx+1)*16], single, 1); err != nil {
			t.Fatal(err)
		}
		for xi := 0; xi < WinoPlanes; xi++ {
			if batched[xi*cnt+tIdx] != single[xi] {
				t.Fatalf("batched input transform differs at tile %d plane %d", tIdx, xi)
			}
		}
	}
}

func TestWinoShortBuffers(t *testing.T) {
	small := make([]float32, 3)
	big := make([]float32, 64)
	if err := WinoFilterTransform(small, big, 1); err == nil {
		t.Fatal("short filter src must error")
	}
	if err := WinoInputTransform(big, small, 1); err == nil {
		t.Fatal("short input dst must error")
	}
	if err := WinoOutputTransform(small, big, 1); err == nil {
		t.Fatal("short output src must error")
	}
}

func TestWinoTransformTime(t *testing.T) {
	for _, phase := range []string{"filter", "input", "output"} {
		t1, err := WinoTransformTime(phase, 64)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := WinoTransformTime(phase, 64*100)
		if err != nil {
			t.Fatal(err)
		}
		if t1 <= 0 || t2 <= t1 {
			t.Fatalf("%s: times %g %g not increasing", phase, t1, t2)
		}
	}
	if _, err := WinoTransformTime("bogus", 1); err == nil {
		t.Fatal("unknown phase must error")
	}
}

func TestAuxKernels(t *testing.T) {
	buf := []float32{1, 2, 3, 4}
	if err := ZeroFill(buf, 3); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0 || buf[2] != 0 || buf[3] != 4 {
		t.Fatalf("zerofill wrong: %v", buf)
	}
	if err := ZeroFill(buf, 5); err == nil {
		t.Fatal("overlong zerofill must error")
	}
	src := []float32{7, 8}
	if err := CopySPM(src, buf, 2); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 7 || buf[1] != 8 {
		t.Fatalf("copy wrong: %v", buf)
	}
	if err := CopySPM(src, buf, 3); err == nil {
		t.Fatal("overlong copy must error")
	}
	if ZeroFillTime(1024) <= 0 || CopySPMTime(1024) <= ZeroFillTime(1024) {
		t.Fatal("aux kernel times inconsistent")
	}
}
