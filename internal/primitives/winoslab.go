package primitives

import (
	"fmt"
)

// Slab-oriented Winograd kernels. The conv lowering DMAs a 4-row input slab
// (4 × Ci × B floats, row-major) into SPM and transforms a whole row of
// tiles at once; the transformed values land in 16 planes of cnt = tilesC·B
// values, the exact operand layout of the batched-GEMM phase. The inverse
// kernel turns 16 result planes into a 2-row output slab (2 × 2·tilesC × B)
// ready for one DMA put. The strided tile gather happens inside the kernel
// (SPM access is cheap); its cost is part of the transform cycle model.

// WinoInputSlab transforms nslabs consecutive 4-row slabs (one per input
// channel of the chunk): for every slab j, tile column tc and batch element
// bb, gather the 4×4 tile d at columns [2tc, 2tc+4), compute V = Bᵀ·d·B and
// scatter to dst[(xi·nslabs + j)·cnt + tc·b + bb] — the 16-plane layout the
// batched GEMM phase consumes directly.
func WinoInputSlab(src, dst []float32, nslabs, tilesC, ci, b int) error {
	if nslabs <= 0 || tilesC <= 0 || ci < 2*tilesC+2 || b <= 0 {
		return fmt.Errorf("wino input slab: bad geometry nslabs=%d tilesC=%d ci=%d b=%d", nslabs, tilesC, ci, b)
	}
	cnt := tilesC * b
	slab := 4 * ci * b
	if len(src) < nslabs*slab || len(dst) < WinoPlanes*nslabs*cnt {
		return fmt.Errorf("wino input slab: short buffers (src %d/%d, dst %d/%d)",
			len(src), nslabs*slab, len(dst), WinoPlanes*nslabs*cnt)
	}
	var d, tmp, v [16]float32
	for j := 0; j < nslabs; j++ {
		s := src[j*slab:]
		for tc := 0; tc < tilesC; tc++ {
			for bb := 0; bb < b; bb++ {
				for r := 0; r < 4; r++ {
					base := r*ci*b + (tc*2)*b + bb
					d[r*4+0] = s[base]
					d[r*4+1] = s[base+b]
					d[r*4+2] = s[base+2*b]
					d[r*4+3] = s[base+3*b]
				}
				for c := 0; c < 4; c++ {
					d0, d1, d2, d3 := d[0*4+c], d[1*4+c], d[2*4+c], d[3*4+c]
					tmp[0*4+c] = d0 - d2
					tmp[1*4+c] = d1 + d2
					tmp[2*4+c] = d2 - d1
					tmp[3*4+c] = d1 - d3
				}
				for r := 0; r < 4; r++ {
					t0, t1, t2, t3 := tmp[r*4+0], tmp[r*4+1], tmp[r*4+2], tmp[r*4+3]
					v[r*4+0] = t0 - t2
					v[r*4+1] = t1 + t2
					v[r*4+2] = t2 - t1
					v[r*4+3] = t1 - t3
				}
				t := tc*b + bb
				for xi := 0; xi < WinoPlanes; xi++ {
					dst[(xi*nslabs+j)*cnt+t] = v[xi]
				}
			}
		}
	}
	return nil
}

// WinoOutputSlab inverse-transforms 16 planes of nslabs·cnt values
// (cnt = tilesC·B, one slab per output channel of the chunk) into nslabs
// 2-row output slabs (2 × 2·tilesC × B each): Y = Aᵀ·m·A per tile.
func WinoOutputSlab(src, dst []float32, nslabs, tilesC, b int) error {
	if nslabs <= 0 || tilesC <= 0 || b <= 0 {
		return fmt.Errorf("wino output slab: bad geometry nslabs=%d tilesC=%d b=%d", nslabs, tilesC, b)
	}
	cnt := tilesC * b
	co := 2 * tilesC
	slab := 2 * co * b
	if len(src) < WinoPlanes*nslabs*cnt || len(dst) < nslabs*slab {
		return fmt.Errorf("wino output slab: short buffers (src %d/%d, dst %d/%d)",
			len(src), WinoPlanes*nslabs*cnt, len(dst), nslabs*slab)
	}
	var m [16]float32
	var tmp [8]float32
	for j := 0; j < nslabs; j++ {
		out := dst[j*slab:]
		for tc := 0; tc < tilesC; tc++ {
			for bb := 0; bb < b; bb++ {
				t := tc*b + bb
				for xi := 0; xi < WinoPlanes; xi++ {
					m[xi] = src[(xi*nslabs+j)*cnt+t]
				}
				for c := 0; c < 4; c++ {
					m0, m1, m2, m3 := m[0*4+c], m[1*4+c], m[2*4+c], m[3*4+c]
					tmp[0*4+c] = m0 + m1 + m2
					tmp[1*4+c] = m1 - m2 - m3
				}
				for r := 0; r < 2; r++ {
					t0, t1, t2, t3 := tmp[r*4+0], tmp[r*4+1], tmp[r*4+2], tmp[r*4+3]
					y0 := t0 + t1 + t2
					y1 := t1 - t2 - t3
					out[r*co*b+(tc*2)*b+bb] = y0
					out[r*co*b+(tc*2+1)*b+bb] = y1
				}
			}
		}
	}
	return nil
}

// WinoSlabTime models the slab kernels: the per-tile transform arithmetic
// plus the strided SPM gather/scatter, vectorized over the batch dimension
// and spread across the cluster.
func WinoSlabTime(phase string, tiles int) (float64, error) {
	return WinoTransformTime(phase, tiles)
}
