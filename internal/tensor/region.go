package tensor

import "fmt"

// Region describes a hyper-rectangular sub-volume of a tensor: per-dimension
// start offsets and extents. Regions are what the lowered IR moves between
// main memory and SPM; the DMA-inference pass flattens them into
// (offset, block, stride) descriptors using the tensor's strides.
type Region struct {
	Start  []int
	Extent []int
}

// NewRegion builds a region and validates it against the tensor.
func NewRegion(t *Tensor, start, extent []int) (Region, error) {
	if len(start) != t.Rank() || len(extent) != t.Rank() {
		return Region{}, fmt.Errorf("region rank mismatch for %s: start %d extent %d rank %d",
			t.Name, len(start), len(extent), t.Rank())
	}
	for d := range start {
		if start[d] < 0 || extent[d] <= 0 || start[d]+extent[d] > t.Dims[d] {
			return Region{}, fmt.Errorf("region [%d:%d+%d) out of bounds for %s dim %d (extent %d)",
				start[d], start[d], extent[d], t.Name, d, t.Dims[d])
		}
	}
	return Region{Start: append([]int(nil), start...), Extent: append([]int(nil), extent...)}, nil
}

// Len returns the number of elements in the region.
func (r Region) Len() int {
	n := 1
	for _, e := range r.Extent {
		n *= e
	}
	return n
}

// Blocks describes a strided flat access pattern: count blocks of block
// contiguous elements, consecutive block starts separated by stride
// elements, the first block starting at offset.
type Blocks struct {
	Offset int // elements from the start of the backing slice
	Block  int // contiguous elements per block
	Stride int // elements between consecutive block starts
	Count  int // number of blocks
}

// Total returns the number of elements transferred.
func (b Blocks) Total() int { return b.Block * b.Count }

// Flatten converts a region into a strided block pattern against the
// tensor's layout. It returns an error when the region cannot be expressed
// as a single (block, stride, count) pattern — in that case callers fall
// back to FlattenMulti.
func (r Region) Flatten(t *Tensor) (Blocks, error) {
	all, err := r.FlattenMulti(t)
	if err != nil {
		return Blocks{}, err
	}
	if len(all) != 1 {
		return Blocks{}, fmt.Errorf("region of %s needs %d strided descriptors, not 1", t.Name, len(all))
	}
	return all[0], nil
}

// FlattenMulti converts a region into one or more strided block patterns.
// Dimensions are visited from fastest-varying to slowest. A maximal run of
// dimensions that are (a) fully covered and (b) memory-adjacent fuses into
// the contiguous block; the next partially-covered dimension becomes the
// stride loop; remaining outer dimensions multiply into separate
// descriptors (one per outer index combination is avoided by emitting a
// descriptor per distinct outer "slab").
func (r Region) FlattenMulti(t *Tensor) ([]Blocks, error) {
	if len(r.Start) != t.Rank() {
		return nil, fmt.Errorf("region rank %d vs tensor rank %d", len(r.Start), t.Rank())
	}
	// Order dimensions by increasing stride (fastest first).
	order := make([]int, t.Rank())
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && t.Strides[order[j]] < t.Strides[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	base := 0
	for d := range r.Start {
		base += r.Start[d] * t.Strides[d]
	}

	// Grow the contiguous block through fully-covered adjacent dims.
	block := 1
	k := 0
	for ; k < len(order); k++ {
		d := order[k]
		if t.Strides[d] != block {
			break
		}
		if r.Extent[d] == t.Dims[d] {
			block *= t.Dims[d]
			continue
		}
		// Partially covered: the covered part extends the block, then stop.
		block *= r.Extent[d]
		k++
		break
	}

	// The next dimension (if any) is the strided loop.
	if k >= len(order) {
		return []Blocks{{Offset: base, Block: block, Stride: block, Count: 1}}, nil
	}
	sd := order[k]
	blocks := Blocks{Offset: base, Block: block, Stride: t.Strides[sd], Count: r.Extent[sd]}
	k++

	// Any remaining dimensions with extent > 1 produce separate descriptors.
	out := []Blocks{blocks}
	for ; k < len(order); k++ {
		d := order[k]
		if r.Extent[d] == 1 {
			continue
		}
		next := make([]Blocks, 0, len(out)*r.Extent[d])
		for _, b := range out {
			for i := 0; i < r.Extent[d]; i++ {
				nb := b
				nb.Offset += i * t.Strides[d]
				next = append(next, nb)
			}
		}
		out = next
	}
	return out, nil
}

// CopyRegionOut gathers a region of src into dst (a flat buffer) in the
// region's logical order (row-major over the region's own dims). dst must
// have r.Len() capacity. Returns the number of elements copied.
func CopyRegionOut(src *Tensor, r Region, dst []float32) (int, error) {
	n := r.Len()
	if len(dst) < n {
		return 0, fmt.Errorf("dst too small: %d < %d", len(dst), n)
	}
	idx := make([]int, src.Rank())
	pos := 0
	var rec func(d int, off int)
	rec = func(d int, off int) {
		if d == src.Rank() {
			dst[pos] = src.Data[off]
			pos++
			return
		}
		o := off + r.Start[d]*src.Strides[d]
		for i := 0; i < r.Extent[d]; i++ {
			rec(d+1, o)
			o += src.Strides[d]
		}
	}
	_ = idx
	rec(0, 0)
	return n, nil
}

// CopyRegionIn scatters src (a flat buffer in the region's logical row-major
// order) into a region of dst.
func CopyRegionIn(dst *Tensor, r Region, src []float32) (int, error) {
	n := r.Len()
	if len(src) < n {
		return 0, fmt.Errorf("src too small: %d < %d", len(src), n)
	}
	pos := 0
	var rec func(d int, off int)
	rec = func(d int, off int) {
		if d == dst.Rank() {
			dst.Data[off] = src[pos]
			pos++
			return
		}
		o := off + r.Start[d]*dst.Strides[d]
		for i := 0; i < r.Extent[d]; i++ {
			rec(d+1, o)
			o += dst.Strides[d]
		}
	}
	rec(0, 0)
	return n, nil
}

// AccumulateRegionIn adds src into a region of dst element-wise (used for
// output tiles accumulated across reduction loops that were split across
// DMA round trips).
func AccumulateRegionIn(dst *Tensor, r Region, src []float32) (int, error) {
	n := r.Len()
	if len(src) < n {
		return 0, fmt.Errorf("src too small: %d < %d", len(src), n)
	}
	pos := 0
	var rec func(d int, off int)
	rec = func(d int, off int) {
		if d == dst.Rank() {
			dst.Data[off] += src[pos]
			pos++
			return
		}
		o := off + r.Start[d]*dst.Strides[d]
		for i := 0; i < r.Extent[d]; i++ {
			rec(d+1, o)
			o += dst.Strides[d]
		}
	}
	rec(0, 0)
	return n, nil
}
