package tensor

import (
	"testing"
	"testing/quick"
)

func TestNewContiguousRowMajor(t *testing.T) {
	x := New("x", 2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if got := x.Strides; got[0] != 12 || got[1] != 4 || got[2] != 1 {
		t.Fatalf("strides = %v, want [12 4 1]", got)
	}
	if !x.IsContiguous() {
		t.Fatal("row-major tensor should be contiguous")
	}
}

func TestNewWithLayoutPermutation(t *testing.T) {
	// Column-major 2-D: dim 1 slowest, dim 0 fastest.
	x, err := NewWithLayout("x", []int{3, 5}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if x.Strides[0] != 1 || x.Strides[1] != 3 {
		t.Fatalf("strides = %v, want [1 3]", x.Strides)
	}
	if !x.IsContiguous() {
		t.Fatal("column-major tensor should be contiguous")
	}
	x.Set(42, 2, 4)
	if x.Data[4*3+2] != 42 {
		t.Fatalf("column-major addressing wrong: %v", x.Data)
	}
}

func TestNewWithLayoutRejectsBadPerm(t *testing.T) {
	cases := [][]int{{0}, {0, 0}, {0, 2}, {-1, 0}}
	for _, perm := range cases {
		if _, err := NewWithLayout("x", []int{2, 2}, perm); err == nil {
			t.Errorf("perm %v should be rejected", perm)
		}
	}
	if _, err := NewWithLayout("x", []int{2, 0}, []int{0, 1}); err == nil {
		t.Error("zero extent should be rejected")
	}
}

func TestOffsetPanicsOutOfRange(t *testing.T) {
	x := New("x", 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestFillPatternLayoutIndependent(t *testing.T) {
	a := New("a", 4, 6)
	b, err := NewWithLayout("b", []int{4, 6}, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	a.FillPattern()
	b.FillPattern()
	if !AllClose(a, b, 0) {
		t.Fatal("FillPattern must be layout independent")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New("a", 2, 2)
	a.FillPattern()
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
}

func TestMaxAbsDiffMismatch(t *testing.T) {
	a := New("a", 2, 2)
	b := New("b", 2, 3)
	if _, err := MaxAbsDiff(a, b); err == nil {
		t.Fatal("dim mismatch should error")
	}
	c := New("c", 2)
	if _, err := MaxAbsDiff(a, c); err == nil {
		t.Fatal("rank mismatch should error")
	}
}

func TestRegionFlattenRowMajorTail(t *testing.T) {
	// Full coverage of the fastest dims fuses into one block.
	x := New("x", 4, 8, 16)
	r, err := NewRegion(x, []int{1, 0, 0}, []int{2, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := r.Flatten(x)
	if err != nil {
		t.Fatal(err)
	}
	// The partially-covered outer dim is memory adjacent, so the whole
	// region fuses into a single contiguous block.
	if bl.Offset != 128 || bl.Block != 256 || bl.Count != 1 {
		t.Fatalf("blocks = %+v", bl)
	}
}

func TestRegionFlattenStrided(t *testing.T) {
	x := New("x", 8, 16)
	r, err := NewRegion(x, []int{2, 4}, []int{3, 8})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := r.Flatten(x)
	if err != nil {
		t.Fatal(err)
	}
	if bl.Offset != 2*16+4 || bl.Block != 8 || bl.Stride != 16 || bl.Count != 3 {
		t.Fatalf("blocks = %+v", bl)
	}
	if bl.Total() != 24 {
		t.Fatalf("total = %d, want 24", bl.Total())
	}
}

func TestRegionFlattenMultiOuterDims(t *testing.T) {
	x := New("x", 3, 4, 8)
	r, err := NewRegion(x, []int{0, 1, 2}, []int{2, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Flatten(x); err == nil {
		t.Fatal("3-level pattern must not flatten to a single descriptor")
	}
	multi, err := r.FlattenMulti(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 2 {
		t.Fatalf("want 2 descriptors, got %d", len(multi))
	}
	total := 0
	for _, b := range multi {
		total += b.Total()
	}
	if total != r.Len() {
		t.Fatalf("descriptors cover %d elements, region has %d", total, r.Len())
	}
}

func TestRegionBounds(t *testing.T) {
	x := New("x", 4, 4)
	if _, err := NewRegion(x, []int{0, 2}, []int{4, 3}); err == nil {
		t.Fatal("out-of-bounds region should be rejected")
	}
	if _, err := NewRegion(x, []int{0}, []int{4}); err == nil {
		t.Fatal("rank mismatch should be rejected")
	}
}

func TestCopyRegionRoundTrip(t *testing.T) {
	x := New("x", 5, 7)
	x.FillPattern()
	r, err := NewRegion(x, []int{1, 2}, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float32, r.Len())
	if _, err := CopyRegionOut(x, r, buf); err != nil {
		t.Fatal(err)
	}
	y := New("y", 5, 7)
	if _, err := CopyRegionIn(y, r, buf); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if y.At(1+i, 2+j) != x.At(1+i, 2+j) {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
	// Outside the region stays zero.
	if y.At(0, 0) != 0 {
		t.Fatal("copy leaked outside region")
	}
}

func TestAccumulateRegionIn(t *testing.T) {
	x := New("x", 2, 2)
	x.Fill(1)
	r, _ := NewRegion(x, []int{0, 0}, []int{2, 2})
	if _, err := AccumulateRegionIn(x, r, []float32{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	want := []float32{2, 3, 4, 5}
	for i, w := range want {
		if x.Data[i] != w {
			t.Fatalf("data[%d] = %v, want %v", i, x.Data[i], w)
		}
	}
}

func TestCopyRegionBufferTooSmall(t *testing.T) {
	x := New("x", 2, 2)
	r, _ := NewRegion(x, []int{0, 0}, []int{2, 2})
	if _, err := CopyRegionOut(x, r, make([]float32, 3)); err == nil {
		t.Fatal("short dst must error")
	}
	if _, err := CopyRegionIn(x, r, make([]float32, 3)); err == nil {
		t.Fatal("short src must error")
	}
	if _, err := AccumulateRegionIn(x, r, make([]float32, 3)); err == nil {
		t.Fatal("short src must error")
	}
}

// Property: flattening a region into block descriptors and gathering via the
// descriptors equals CopyRegionOut for arbitrary small shapes.
func TestFlattenMatchesCopyQuick(t *testing.T) {
	f := func(d0, d1, s0, s1, e0, e1 uint8) bool {
		dims := []int{int(d0%5) + 1, int(d1%6) + 1}
		x := New("x", dims...)
		x.FillPattern()
		start := []int{int(s0) % dims[0], int(s1) % dims[1]}
		ext := []int{int(e0)%(dims[0]-start[0]) + 1, int(e1)%(dims[1]-start[1]) + 1}
		r, err := NewRegion(x, start, ext)
		if err != nil {
			return false
		}
		direct := make([]float32, r.Len())
		if _, err := CopyRegionOut(x, r, direct); err != nil {
			return false
		}
		descs, err := r.FlattenMulti(x)
		if err != nil {
			return false
		}
		var viaBlocks []float32
		for _, b := range descs {
			for c := 0; c < b.Count; c++ {
				off := b.Offset + c*b.Stride
				viaBlocks = append(viaBlocks, x.Data[off:off+b.Block]...)
			}
		}
		if len(viaBlocks) != len(direct) {
			return false
		}
		for i := range direct {
			if direct[i] != viaBlocks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2colAgainstDirectConv(t *testing.T) {
	s := ConvShape{B: 2, Ni: 3, No: 4, Ro: 5, Co: 5, Kr: 3, Kc: 3}
	in := NewConvInput(s)
	w := NewConvFilter(s)
	in.FillPattern()
	w.FillPattern()

	ref, err := ReferenceConv(in, w, s)
	if err != nil {
		t.Fatal(err)
	}

	col, err := Im2col(in, s)
	if err != nil {
		t.Fatal(err)
	}
	wm, err := FilterMatrix(w, s)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := ReferenceGemm(wm, col, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := OutputFromMatrix(prod, s)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := MaxAbsDiff(ref, out); d > 1e-3 {
		t.Fatalf("explicit-GEMM path differs from direct conv by %g", d)
	}
}

func TestIm2colValidation(t *testing.T) {
	s := ConvShape{B: 1, Ni: 2, No: 2, Ro: 4, Co: 4, Kr: 3, Kc: 3}
	bad := New("in", 2, 4, 4, 1) // not pre-padded
	if _, err := Im2col(bad, s); err == nil {
		t.Fatal("unpadded input should be rejected")
	}
	if _, err := FilterMatrix(New("w", 1, 1, 1, 1), s); err == nil {
		t.Fatal("bad filter dims should be rejected")
	}
	if _, err := OutputFromMatrix(New("m", 1, 1), s); err == nil {
		t.Fatal("bad matrix dims should be rejected")
	}
}

func TestConvShapeFLOPs(t *testing.T) {
	s := ConvShape{B: 2, Ni: 3, No: 4, Ro: 5, Co: 6, Kr: 3, Kc: 3}
	want := int64(2 * 2 * 3 * 4 * 5 * 6 * 9)
	if s.FLOPs() != want {
		t.Fatalf("FLOPs = %d, want %d", s.FLOPs(), want)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (ConvShape{}).Validate(); err == nil {
		t.Fatal("zero shape should be invalid")
	}
}

func TestReferenceGemmShapes(t *testing.T) {
	a := New("a", 2, 3)
	b := New("b", 4, 2)
	if _, err := ReferenceGemm(a, b, 1, 0); err == nil {
		t.Fatal("inner dim mismatch should error")
	}
	if _, err := ReferenceGemm(New("a", 2), b, 1, 0); err == nil {
		t.Fatal("rank mismatch should error")
	}
}
