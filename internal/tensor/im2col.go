package tensor

import "fmt"

// ConvShape captures the geometry of a 2-D multi-channel convolution in the
// paper's notation (§3, Alg. 1): batch B, input channels Ni, output channels
// No, output spatial extents Ro×Co, kernel extents Kr×Kc. Inputs are
// spatially pre-padded, so the input extents are Ri = Ro+Kr-1, Ci = Co+Kc-1
// (stride 1, the case the paper evaluates).
type ConvShape struct {
	B, Ni, No int
	Ro, Co    int
	Kr, Kc    int
}

// Ri returns the (pre-padded) input row extent.
func (s ConvShape) Ri() int { return s.Ro + s.Kr - 1 }

// Ci returns the (pre-padded) input column extent.
func (s ConvShape) Ci() int { return s.Co + s.Kc - 1 }

// FLOPs returns the multiply-add count of the direct convolution, counted
// as 2 flops per MAC — the denominator the paper uses for all efficiency
// numbers (so Winograd can exceed 100%).
func (s ConvShape) FLOPs() int64 {
	return 2 * int64(s.B) * int64(s.Ni) * int64(s.No) * int64(s.Ro) * int64(s.Co) * int64(s.Kr) * int64(s.Kc)
}

// Validate rejects degenerate shapes.
func (s ConvShape) Validate() error {
	if s.B <= 0 || s.Ni <= 0 || s.No <= 0 || s.Ro <= 0 || s.Co <= 0 || s.Kr <= 0 || s.Kc <= 0 {
		return fmt.Errorf("conv shape has non-positive extent: %+v", s)
	}
	return nil
}

func (s ConvShape) String() string {
	return fmt.Sprintf("conv(B=%d,Ni=%d,No=%d,Ro=%d,Co=%d,K=%dx%d)", s.B, s.Ni, s.No, s.Ro, s.Co, s.Kr, s.Kc)
}

// NewConvInput allocates the input tensor in (Ni, Ri, Ci, B) order — the
// channel-major, batch-innermost layout swDNN uses so that the batch
// dimension is unit-stride for vectorization.
func NewConvInput(s ConvShape) *Tensor {
	return New("in", s.Ni, s.Ri(), s.Ci(), s.B)
}

// NewConvFilter allocates the filter tensor in (No, Ni, Kr, Kc) order.
func NewConvFilter(s ConvShape) *Tensor {
	return New("weight", s.No, s.Ni, s.Kr, s.Kc)
}

// NewConvOutput allocates the output tensor in (No, Ro, Co, B) order.
func NewConvOutput(s ConvShape) *Tensor {
	return New("out", s.No, s.Ro, s.Co, s.B)
}

// Im2col expands the input tensor of shape (Ni, Ri, Ci, B) into the column
// matrix of the explicit-GEMM method (Fig. 2 left): a (Ni*Kr*Kc) ×
// (Ro*Co*B) matrix such that output = filterMatrix × columnMatrix, where
// filterMatrix is the (No) × (Ni*Kr*Kc) reshaped filter.
func Im2col(in *Tensor, s ConvShape) (*Tensor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	want := []int{s.Ni, s.Ri(), s.Ci(), s.B}
	if len(in.Dims) != 4 {
		return nil, fmt.Errorf("im2col: input must be rank 4, got %d", len(in.Dims))
	}
	for d, w := range want {
		if in.Dims[d] != w {
			return nil, fmt.Errorf("im2col: input dim %d is %d, want %d", d, in.Dims[d], w)
		}
	}
	col := New("im2col", s.Ni*s.Kr*s.Kc, s.Ro*s.Co*s.B)
	for ni := 0; ni < s.Ni; ni++ {
		for kr := 0; kr < s.Kr; kr++ {
			for kc := 0; kc < s.Kc; kc++ {
				row := (ni*s.Kr+kr)*s.Kc + kc
				for ro := 0; ro < s.Ro; ro++ {
					for co := 0; co < s.Co; co++ {
						for b := 0; b < s.B; b++ {
							colIdx := (ro*s.Co+co)*s.B + b
							col.Set(in.At(ni, ro+kr, co+kc, b), row, colIdx)
						}
					}
				}
			}
		}
	}
	return col, nil
}

// FilterMatrix reshapes a (No, Ni, Kr, Kc) filter into the (No) ×
// (Ni*Kr*Kc) matrix used by the explicit-GEMM method.
func FilterMatrix(w *Tensor, s ConvShape) (*Tensor, error) {
	if len(w.Dims) != 4 || w.Dims[0] != s.No || w.Dims[1] != s.Ni || w.Dims[2] != s.Kr || w.Dims[3] != s.Kc {
		return nil, fmt.Errorf("filter matrix: bad filter dims %v for %v", w.Dims, s)
	}
	m := New("wmat", s.No, s.Ni*s.Kr*s.Kc)
	for no := 0; no < s.No; no++ {
		for ni := 0; ni < s.Ni; ni++ {
			for kr := 0; kr < s.Kr; kr++ {
				for kc := 0; kc < s.Kc; kc++ {
					m.Set(w.At(no, ni, kr, kc), no, (ni*s.Kr+kr)*s.Kc+kc)
				}
			}
		}
	}
	return m, nil
}

// OutputFromMatrix scatters the (No) × (Ro*Co*B) explicit-GEMM result back
// into a (No, Ro, Co, B) output tensor.
func OutputFromMatrix(m *Tensor, s ConvShape) (*Tensor, error) {
	if len(m.Dims) != 2 || m.Dims[0] != s.No || m.Dims[1] != s.Ro*s.Co*s.B {
		return nil, fmt.Errorf("output matrix: bad dims %v for %v", m.Dims, s)
	}
	out := NewConvOutput(s)
	for no := 0; no < s.No; no++ {
		for ro := 0; ro < s.Ro; ro++ {
			for co := 0; co < s.Co; co++ {
				for b := 0; b < s.B; b++ {
					out.Set(m.At(no, (ro*s.Co+co)*s.B+b), no, ro, co, b)
				}
			}
		}
	}
	return out, nil
}

// ReferenceConv computes the direct convolution (Alg. 1) naively. It is the
// correctness oracle for all three tensorized methods.
func ReferenceConv(in, weight *Tensor, s ConvShape) (*Tensor, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	out := NewConvOutput(s)
	for no := 0; no < s.No; no++ {
		for ro := 0; ro < s.Ro; ro++ {
			for co := 0; co < s.Co; co++ {
				for b := 0; b < s.B; b++ {
					var acc float32
					for ni := 0; ni < s.Ni; ni++ {
						for kr := 0; kr < s.Kr; kr++ {
							for kc := 0; kc < s.Kc; kc++ {
								acc += in.At(ni, ro+kr, co+kc, b) * weight.At(no, ni, kr, kc)
							}
						}
					}
					out.Set(acc, no, ro, co, b)
				}
			}
		}
	}
	return out, nil
}

// ReferenceGemm computes C = alpha*A*B + beta*C for row-major rank-2
// tensors; the oracle for the GEMM operator pipeline.
func ReferenceGemm(a, b *Tensor, alpha, beta float32) (*Tensor, error) {
	if len(a.Dims) != 2 || len(b.Dims) != 2 {
		return nil, fmt.Errorf("gemm oracle: operands must be rank 2")
	}
	m, k := a.Dims[0], a.Dims[1]
	k2, n := b.Dims[0], b.Dims[1]
	if k != k2 {
		return nil, fmt.Errorf("gemm oracle: inner dims %d vs %d", k, k2)
	}
	c := New("cref", m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a.At(i, p) * b.At(p, j)
			}
			c.Set(alpha*acc+beta*c.At(i, j), i, j)
		}
	}
	return c, nil
}
