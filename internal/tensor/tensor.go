// Package tensor provides dense float32 tensors with explicit layout
// information, plus the data-rearrangement routines (region copy, im2col,
// padding) that the swATOP operator lowerings are built on.
//
// Tensors are the "main memory" objects of the simulated SW26010 machine:
// DMA descriptors inferred by the IR optimizer address flat element offsets
// into a tensor's backing slice, so layout (the order in which logical
// dimensions are linearized) is a first-class property here.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense float32 tensor. Data is linearized according to Strides:
// the element at logical index (i0, i1, ..., ik) lives at
// sum(i_d * Strides[d]) in Data. A freshly created tensor is contiguous in
// the order given by its layout permutation.
type Tensor struct {
	Name    string
	Dims    []int // logical extent per dimension
	Strides []int // elements, per logical dimension
	Data    []float32
}

// New creates a contiguous tensor whose memory order equals the logical
// dimension order (row-major: last dimension fastest).
func New(name string, dims ...int) *Tensor {
	t, err := NewWithLayout(name, dims, identityPerm(len(dims)))
	if err != nil {
		panic(err) // identity permutation is always valid
	}
	return t
}

// NewWithLayout creates a contiguous tensor with a permuted memory order.
// perm lists logical dimension indices from slowest-varying to
// fastest-varying. perm = [0 1 ... n-1] is row-major.
func NewWithLayout(name string, dims []int, perm []int) (*Tensor, error) {
	t, err := newDesc(name, dims, perm)
	if err != nil {
		return nil, err
	}
	t.Data = make([]float32, t.Len())
	return t, nil
}

func newDesc(name string, dims []int, perm []int) (*Tensor, error) {
	if len(perm) != len(dims) {
		return nil, fmt.Errorf("tensor %s: perm has %d entries for %d dims", name, len(perm), len(dims))
	}
	seen := make([]bool, len(dims))
	for _, p := range perm {
		if p < 0 || p >= len(dims) || seen[p] {
			return nil, fmt.Errorf("tensor %s: invalid layout permutation %v", name, perm)
		}
		seen[p] = true
	}
	for i, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("tensor %s: dimension %d has non-positive extent %d", name, i, d)
		}
	}
	strides := make([]int, len(dims))
	s := 1
	for i := len(perm) - 1; i >= 0; i-- {
		strides[perm[i]] = s
		s *= dims[perm[i]]
	}
	return &Tensor{
		Name:    name,
		Dims:    append([]int(nil), dims...),
		Strides: strides,
	}, nil
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// NewVirtual creates a tensor descriptor with shape and layout but no
// backing storage. The static cost estimator uses virtual tensors to reason
// about DMA access patterns of arbitrarily large operands without
// allocating them; calling At/Set on one panics.
func NewVirtual(name string, dims []int, perm []int) (*Tensor, error) {
	return newDesc(name, dims, perm)
}

// Rank returns the number of logical dimensions.
func (t *Tensor) Rank() int { return len(t.Dims) }

// Len returns the total number of elements.
func (t *Tensor) Len() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// Offset returns the flat element offset of a logical index.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.Dims) {
		panic(fmt.Sprintf("tensor %s: Offset got %d indices for rank %d", t.Name, len(idx), len(t.Dims)))
	}
	off := 0
	for d, i := range idx {
		if i < 0 || i >= t.Dims[d] {
			panic(fmt.Sprintf("tensor %s: index %d out of range [0,%d) in dim %d", t.Name, i, t.Dims[d], d))
		}
		off += i * t.Strides[d]
	}
	return off
}

// At returns the element at a logical index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.Offset(idx...)] }

// Set stores an element at a logical index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.Offset(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero clears the tensor.
func (t *Tensor) Zero() { t.Fill(0) }

// Clone deep-copies the tensor, including its layout.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{
		Name:    t.Name,
		Dims:    append([]int(nil), t.Dims...),
		Strides: append([]int(nil), t.Strides...),
		Data:    append([]float32(nil), t.Data...),
	}
	return c
}

// FillPattern writes a deterministic, index-dependent pattern, useful for
// tests that need distinguishable values without randomness.
func (t *Tensor) FillPattern() {
	// A small LCG over the flat *logical* index keeps the pattern layout
	// independent: two tensors with the same dims and different layouts
	// compare equal element-wise.
	idx := make([]int, len(t.Dims))
	n := t.Len()
	for flat := 0; flat < n; flat++ {
		rem := flat
		for d := len(t.Dims) - 1; d >= 0; d-- {
			idx[d] = rem % t.Dims[d]
			rem /= t.Dims[d]
		}
		v := lcg(uint32(flat))
		t.Set(float32(v%2048)/256.0-4.0, idx...)
	}
}

func lcg(x uint32) uint32 { return x*1664525 + 1013904223 }

// IsContiguous reports whether the tensor occupies a dense block in memory
// (some permutation of dimensions with no gaps).
func (t *Tensor) IsContiguous() bool {
	// Sort strides descending and check the telescoping product.
	type ds struct{ dim, stride int }
	order := make([]ds, 0, len(t.Dims))
	for d := range t.Dims {
		order = append(order, ds{d, t.Strides[d]})
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j].stride > order[j-1].stride; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	want := t.Len()
	for _, o := range order {
		if o.stride*t.Dims[o.dim] != want {
			return false
		}
		want = o.stride
	}
	return want == 1
}

func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s%v strides%v", t.Name, t.Dims, t.Strides)
	return b.String()
}

// MaxAbsDiff returns the maximum absolute element-wise difference between two
// tensors of identical dims (layouts may differ).
func MaxAbsDiff(a, b *Tensor) (float64, error) {
	if len(a.Dims) != len(b.Dims) {
		return 0, fmt.Errorf("rank mismatch: %d vs %d", len(a.Dims), len(b.Dims))
	}
	for d := range a.Dims {
		if a.Dims[d] != b.Dims[d] {
			return 0, fmt.Errorf("dim %d mismatch: %d vs %d", d, a.Dims[d], b.Dims[d])
		}
	}
	idx := make([]int, len(a.Dims))
	max := 0.0
	n := a.Len()
	for flat := 0; flat < n; flat++ {
		rem := flat
		for d := len(a.Dims) - 1; d >= 0; d-- {
			idx[d] = rem % a.Dims[d]
			rem /= a.Dims[d]
		}
		diff := float64(a.At(idx...)) - float64(b.At(idx...))
		if diff < 0 {
			diff = -diff
		}
		if diff > max {
			max = diff
		}
	}
	return max, nil
}

// AllClose reports whether two tensors agree element-wise within tol.
func AllClose(a, b *Tensor, tol float64) bool {
	d, err := MaxAbsDiff(a, b)
	return err == nil && d <= tol
}
