package exec

import (
	"math"
	"testing"

	"swatop/internal/ir"
	"swatop/internal/metrics"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
	"swatop/internal/trace"
)

// manualProgram builds a tiny hand-written IR program: load two 4×4 tiles,
// multiply, store — exercising the interpreter without the lowering.
func manualProgram() *ir.Program {
	return &ir.Program{
		Name: "manual",
		Tensors: []ir.TensorDecl{
			{Name: "A", Dims: []int{4, 4}},
			{Name: "B", Dims: []int{4, 4}},
			{Name: "C", Dims: []int{4, 4}, Output: true},
		},
		Body: []ir.Stmt{
			&ir.AllocSPM{Buf: "a", Elems: ir.Const(16)},
			&ir.AllocSPM{Buf: "b", Elems: ir.Const(16)},
			&ir.AllocSPM{Buf: "c", Elems: ir.Const(16)},
			// Column-major staging: A^T view via FrameStride.
			&ir.RegionMove{Tensor: "A", Dir: ir.Get,
				Start:  []ir.Expr{ir.Const(0), ir.Const(0)},
				Extent: []ir.Expr{ir.Const(4), ir.Const(4)},
				Buf:    "a", BufOff: ir.Const(0),
				FrameStride: []ir.Expr{ir.Const(1), ir.Const(4)}},
			&ir.RegionMove{Tensor: "B", Dir: ir.Get,
				Start:  []ir.Expr{ir.Const(0), ir.Const(0)},
				Extent: []ir.Expr{ir.Const(4), ir.Const(4)},
				Buf:    "b", BufOff: ir.Const(0),
				FrameStride: []ir.Expr{ir.Const(1), ir.Const(4)}},
			&ir.Transform{Kind: ir.ZeroFill, Dst: "c", DstOff: ir.Const(0), SrcOff: ir.Const(0),
				Args: []ir.Expr{ir.Const(16)}},
			&ir.Gemm{A: "a", B: "b", C: "c",
				AOff: ir.Const(0), BOff: ir.Const(0), COff: ir.Const(0),
				M: ir.Const(4), N: ir.Const(4), K: ir.Const(4),
				LDA: ir.Const(4), LDB: ir.Const(4), LDC: ir.Const(4),
				Accumulate: true},
			&ir.RegionMove{Tensor: "C", Dir: ir.Put,
				Start:  []ir.Expr{ir.Const(0), ir.Const(0)},
				Extent: []ir.Expr{ir.Const(4), ir.Const(4)},
				Buf:    "c", BufOff: ir.Const(0),
				FrameStride: []ir.Expr{ir.Const(1), ir.Const(4)}},
			&ir.FreeSPM{Buf: "a"},
			&ir.FreeSPM{Buf: "b"},
			&ir.FreeSPM{Buf: "c"},
		},
	}
}

func bind3() map[string]*tensor.Tensor {
	a := tensor.New("A", 4, 4)
	b := tensor.New("B", 4, 4)
	c := tensor.New("C", 4, 4)
	a.FillPattern()
	b.FillPattern()
	return map[string]*tensor.Tensor{"A": a, "B": b, "C": c}
}

func TestRunManualProgram(t *testing.T) {
	binds := bind3()
	res, err := Run(manualProgram(), binds, Options{Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds <= 0 || res.Counters.GemmCalls != 1 || res.Counters.DMAOps != 3 {
		t.Fatalf("counters wrong: %+v", res.Counters)
	}
	want, _ := tensor.ReferenceGemm(binds["A"], binds["B"], 1, 0)
	if d, _ := tensor.MaxAbsDiff(want, binds["C"]); d > 1e-4 {
		t.Fatalf("manual program wrong by %g", d)
	}
}

func TestRunMissingBinding(t *testing.T) {
	binds := bind3()
	delete(binds, "B")
	if _, err := Run(manualProgram(), binds, Options{}); err == nil {
		t.Fatal("missing tensor binding must fail")
	}
}

func TestRunDimsMismatch(t *testing.T) {
	binds := bind3()
	binds["A"] = tensor.New("A", 4, 5)
	if _, err := Run(manualProgram(), binds, Options{}); err == nil {
		t.Fatal("dims mismatch must fail")
	}
	binds["A"] = tensor.New("A", 4)
	if _, err := Run(manualProgram(), binds, Options{}); err == nil {
		t.Fatal("rank mismatch must fail")
	}
}

func TestRunLayoutMismatch(t *testing.T) {
	p := manualProgram()
	p.Tensors[0].Layout = []int{1, 0} // require column-major A
	binds := bind3()                  // but bind row-major
	if _, err := Run(p, binds, Options{}); err == nil {
		t.Fatal("layout mismatch must fail")
	}
	cm, _ := tensor.NewWithLayout("A", []int{4, 4}, []int{1, 0})
	cm.FillPattern()
	binds["A"] = cm
	if _, err := Run(p, binds, Options{Functional: true}); err != nil {
		t.Fatal(err)
	}
}

func TestRunOutputZeroed(t *testing.T) {
	binds := bind3()
	binds["C"].Fill(99)
	if _, err := Run(manualProgram(), binds, Options{Functional: true}); err != nil {
		t.Fatal(err)
	}
	want, _ := tensor.ReferenceGemm(binds["A"], binds["B"], 1, 0)
	if d, _ := tensor.MaxAbsDiff(want, binds["C"]); d > 1e-4 {
		t.Fatal("output tensor was not cleared before the run")
	}
}

func TestRunUnbalancedWaitFails(t *testing.T) {
	p := &ir.Program{
		Name:    "bad",
		Tensors: []ir.TensorDecl{{Name: "A", Dims: []int{4}}},
		Body: []ir.Stmt{
			&ir.AllocSPM{Buf: "a", Elems: ir.Const(4)},
			&ir.DMAWait{Reply: "r", Times: ir.Const(1)},
		},
	}
	if _, err := Run(p, map[string]*tensor.Tensor{"A": tensor.New("A", 4)}, Options{}); err == nil {
		t.Fatal("wait without issue must fail")
	}
}

func TestRunLeakedDMAFails(t *testing.T) {
	p := &ir.Program{
		Name:    "leak",
		Tensors: []ir.TensorDecl{{Name: "A", Dims: []int{4}}},
		Body: []ir.Stmt{
			&ir.AllocSPM{Buf: "a", Elems: ir.Const(4)},
			&ir.DMAOp{Move: ir.RegionMove{
				Tensor: "A", Dir: ir.Get,
				Start: []ir.Expr{ir.Const(0)}, Extent: []ir.Expr{ir.Const(4)},
				Buf: "a", BufOff: ir.Const(0),
			}, Reply: "r"},
			// no wait
		},
	}
	if _, err := Run(p, map[string]*tensor.Tensor{"A": tensor.New("A", 4)}, Options{}); err == nil {
		t.Fatal("un-waited DMA must be reported")
	}
}

func TestRunPutAccAccumulates(t *testing.T) {
	p := &ir.Program{
		Name: "acc",
		Tensors: []ir.TensorDecl{
			{Name: "X", Dims: []int{4}},
			{Name: "Y", Dims: []int{4}, Output: true},
		},
		Body: []ir.Stmt{
			&ir.AllocSPM{Buf: "b", Elems: ir.Const(4)},
			&ir.For{Iter: "i", Extent: ir.Const(3), Body: []ir.Stmt{
				&ir.RegionMove{Tensor: "X", Dir: ir.Get,
					Start: []ir.Expr{ir.Const(0)}, Extent: []ir.Expr{ir.Const(4)},
					Buf: "b", BufOff: ir.Const(0)},
				&ir.RegionMove{Tensor: "Y", Dir: ir.PutAcc,
					Start: []ir.Expr{ir.Const(0)}, Extent: []ir.Expr{ir.Const(4)},
					Buf: "b", BufOff: ir.Const(0)},
			}},
			&ir.FreeSPM{Buf: "b"},
		},
	}
	x := tensor.New("X", 4)
	x.Fill(2)
	y := tensor.New("Y", 4)
	if _, err := Run(p, map[string]*tensor.Tensor{"X": x, "Y": y}, Options{Functional: true}); err != nil {
		t.Fatal(err)
	}
	if y.At(0) != 6 {
		t.Fatalf("PutAcc over 3 iterations: got %g, want 6", y.At(0))
	}
}

func TestRunDispatchOverheadCharged(t *testing.T) {
	p := manualProgram()
	binds := bind3()
	base, err := Run(p, binds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.DispatchOverheadSeconds = 1e-3
	binds2 := bind3()
	withOv, err := Run(p, binds2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if withOv.Seconds < base.Seconds+0.9e-3 {
		t.Fatalf("dispatch overhead not charged: %g vs %g", withOv.Seconds, base.Seconds)
	}
}

func TestBindVirtualMatchesDecls(t *testing.T) {
	p := manualProgram()
	p.Tensors[0].Layout = []int{1, 0}
	binds, err := BindVirtual(p)
	if err != nil {
		t.Fatal(err)
	}
	if binds["A"].Strides[0] != 1 || binds["A"].Strides[1] != 4 {
		t.Fatalf("virtual binding ignores layout: %v", binds["A"].Strides)
	}
	if binds["A"].Data != nil {
		t.Fatal("virtual binding must not allocate data")
	}
	// Timed-only run works on virtual tensors.
	if _, err := Run(p, binds, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestFastLoopsMatchExactOnUniformLoop(t *testing.T) {
	mk := func() *ir.Program {
		return &ir.Program{
			Name:    "loop",
			Tensors: []ir.TensorDecl{{Name: "X", Dims: []int{4096}}},
			Body: []ir.Stmt{
				&ir.AllocSPM{Buf: "b", Elems: ir.Const(64)},
				&ir.For{Iter: "i", Extent: ir.Const(64), Body: []ir.Stmt{
					&ir.RegionMove{Tensor: "X", Dir: ir.Get,
						Start:  []ir.Expr{ir.Mul(ir.V("i"), ir.Const(64))},
						Extent: []ir.Expr{ir.Const(64)},
						Buf:    "b", BufOff: ir.Const(0)},
				}},
				&ir.FreeSPM{Buf: "b"},
			},
		}
	}
	x := tensor.New("X", 4096)
	exact, err := Run(mk(), map[string]*tensor.Tensor{"X": x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(mk(), map[string]*tensor.Tensor{"X": x}, Options{FastLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	rel := fast.Seconds/exact.Seconds - 1
	if rel < -0.02 || rel > 0.02 {
		t.Fatalf("fast loops off by %.2f%% on a uniform loop", rel*100)
	}
	if fast.Counters.DMAOps != exact.Counters.DMAOps {
		t.Fatalf("counter extrapolation wrong: %d vs %d", fast.Counters.DMAOps, exact.Counters.DMAOps)
	}
}

// TestRunSharedMachine: two operators executed on one machine serialize on
// one timeline — per-run Seconds are deltas, counters accumulate, and the
// shared clock equals the sum of the isolated runs.
func TestRunSharedMachine(t *testing.T) {
	solo, err := Run(manualProgram(), bind3(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sw26010.NewMachine()
	first, err := Run(manualProgram(), bind3(), Options{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	m.ResetSPM()
	second, err := Run(manualProgram(), bind3(), Options{Machine: m})
	if err != nil {
		t.Fatal(err)
	}
	// The second delta is a subtraction of two large clock values, so allow
	// float rounding at the last ulp; everything else is exact.
	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-12*math.Abs(b) }
	if first.Seconds != solo.Seconds {
		t.Fatalf("first shared run %g, isolated %g", first.Seconds, solo.Seconds)
	}
	if !close(second.Seconds, solo.Seconds) {
		t.Fatalf("second shared run %g, isolated %g — delta accounting broken", second.Seconds, solo.Seconds)
	}
	if got, want := m.Elapsed(), 2*solo.Seconds; !close(got, want) {
		t.Fatalf("shared clock %g, want %g", got, want)
	}
	if second.Counters.GemmCalls != 2 || second.Counters.DMAOps != 6 {
		t.Fatalf("counters should accumulate on a shared machine: %+v", second.Counters)
	}
}

// TestRunMetrics: the exec layer reports run counts, the latency histogram
// and accumulated machine seconds; failures land in the failure counter.
func TestRunMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	res, err := Run(manualProgram(), bind3(), Options{Functional: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("exec_runs_total").Value(); got != 1 {
		t.Fatalf("runs = %d, want 1", got)
	}
	if got := reg.Histogram("exec_run_seconds").Count(); got != 1 {
		t.Fatalf("latency observations = %d, want 1", got)
	}
	if got := reg.Gauge("exec_machine_seconds").Value(); got != res.Seconds {
		t.Fatalf("machine seconds = %g, want %g", got, res.Seconds)
	}

	// A failing run (unbound tensor) counts as a failure, not a latency.
	if _, err := Run(manualProgram(), nil, Options{Metrics: reg}); err == nil {
		t.Fatal("run with no bindings must fail")
	}
	if got := reg.Counter("exec_run_failures_total").Value(); got != 1 {
		t.Fatalf("failures = %d, want 1", got)
	}
	if got := reg.Histogram("exec_run_seconds").Count(); got != 1 {
		t.Fatal("failed runs must not observe latency")
	}
}

// TestWaitTraceEvents: an un-overlapped DMA wait shows up as a wait-kind
// stall interval on the timeline; a fully hidden one does not.
func TestWaitTraceEvents(t *testing.T) {
	var log trace.Log
	if _, err := Run(manualProgram(), bind3(), Options{Functional: true, Trace: &log}); err != nil {
		t.Fatal(err)
	}
	// The manual program issues synchronous RegionMoves: waits are exposed.
	if log.BusyTime(trace.KindWait) <= 0 {
		t.Fatalf("synchronous moves must expose wait time:\n%s", log.Summary())
	}
	for _, ev := range log.Events {
		if ev.Kind == trace.KindWait && ev.Dur <= 0 {
			t.Fatalf("wait event with non-positive duration: %+v", ev)
		}
	}
}
