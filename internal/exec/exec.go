// Package exec interprets IR programs against the simulated SW26010 core
// group. It has two modes sharing one timing path:
//
//   - functional: data movement and primitives operate on real float32
//     data, so results can be checked against oracles;
//   - timed-only: arithmetic is skipped, only the clock and counters
//     advance — fast enough for the black-box autotuner to "run" hundreds
//     of schedule candidates.
//
// Timing is identical in both modes (the simulator is deterministic), so
// the black-box tuner's choice never depends on the mode.
package exec

import (
	"fmt"

	"swatop/internal/faults"
	"swatop/internal/ir"
	"swatop/internal/metrics"
	"swatop/internal/obsrv"
	"swatop/internal/primitives"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
	"swatop/internal/trace"
)

// Options controls a run.
type Options struct {
	// Functional computes real data (slower); timed-only otherwise.
	Functional bool
	// FastLoops extrapolates long loops from a few simulated iterations
	// (steady-state fast forward). Only valid with Functional=false; used
	// by the black-box autotuner and large benchmark sweeps. swATOP's
	// lowered nests have uniform interior iterations (only the last
	// iteration differs through its min() boundary extents), so the
	// extrapolation is near-exact.
	FastLoops bool
	// Trace, when non-nil, records the execution timeline (GEMM calls,
	// transforms, DMA engine intervals) for schedule diagnosis.
	Trace *trace.Log
	// Faults, when non-nil, is consulted at the measurement and machine
	// injection points (faults.Measure before the run starts,
	// faults.DMATransfer / faults.ComputeStall inside the machine). Nil in
	// every production run.
	Faults *faults.Injector
	// Machine, when non-nil, runs the program on an existing machine
	// instead of a fresh one: the clock continues from where the previous
	// operator left it and counters accumulate, which is how a network
	// runtime executes many operators as one serialized timeline. The
	// caller owns the machine's fault injector (Faults, if also set, is
	// attached); Result.Seconds is this run's time, not the whole
	// timeline's.
	Machine *sw26010.Machine
	// Metrics, when non-nil, receives run-level instrumentation
	// (exec_runs_total, exec_run_failures_total, the exec_run_seconds
	// latency histogram and the exec_machine_seconds accumulator). All
	// values are simulated-clock quantities, so they are deterministic.
	Metrics *metrics.Registry
	// Observer, when non-nil, receives structured run events (exec.run /
	// exec.fail / exec.fault). Events are observational only: they never
	// influence timing or results.
	Observer *obsrv.Observer
	// GroupLabel, when non-empty, tags exec.run / exec.fail observer events
	// with the simulated core group executing the program ("group2"). The
	// fleet runtime sets it so interleaved per-group events stay
	// attributable; single-machine runs leave it empty and events are
	// unchanged.
	GroupLabel string
}

// fastLoopThreshold is the minimum extent for fast-forwarding: iterations
// 0..2 run, 3..E-2 are extrapolated from iteration 2, E-1 runs.
const fastLoopThreshold = 10

// Result reports a completed run.
type Result struct {
	// Seconds is the simulated execution time of the operator: the
	// machine-clock advance of this run, so on a shared machine
	// (Options.Machine) it excludes time spent by earlier operators.
	Seconds float64
	// Counters are the machine's activity counters (cumulative when the
	// run reused a machine).
	Counters sw26010.Counters
}

// Machine-level overheads of interpreted control flow.
const (
	loopIterCycles = 6.0
	branchCycles   = 2.0
	assignCycles   = 1.0
)

type state struct {
	m       *sw26010.Machine
	opt     Options
	env     ir.Env
	tensors map[string]*tensor.Tensor
	spm     map[string]*sw26010.SPMBuffer
	replies map[string]int // outstanding issue counts per reply word
}

// Run executes a program. binds maps non-scratch tensor names to concrete
// tensors; scratch tensors are allocated internally; Output tensors are
// zeroed first (operators accumulate from zero).
func Run(p *ir.Program, binds map[string]*tensor.Tensor, opt Options) (Result, error) {
	opt.Metrics.Counter("exec_runs_total").Inc()
	res, err := runProgram(p, binds, opt)
	if err != nil {
		opt.Metrics.Counter("exec_run_failures_total").Inc()
		fields := []obsrv.Field{obsrv.F("program", p.Name), obsrv.F("error", err)}
		if opt.GroupLabel != "" {
			fields = append(fields, obsrv.F("group", opt.GroupLabel))
		}
		opt.Observer.Emit(obsrv.LevelWarn, "exec.fail", fields...)
		return res, err
	}
	opt.Metrics.Histogram("exec_run_seconds", metrics.TimeBuckets...).Observe(res.Seconds)
	opt.Metrics.Gauge("exec_machine_seconds").Add(res.Seconds)
	if opt.Observer.Enabled() {
		fields := []obsrv.Field{obsrv.F("program", p.Name), obsrv.Ms("seconds_ms", res.Seconds),
			obsrv.F("functional", opt.Functional)}
		if opt.GroupLabel != "" {
			fields = append(fields, obsrv.F("group", opt.GroupLabel))
		}
		opt.Observer.Emit(obsrv.LevelDebug, "exec.run", fields...)
	}
	return res, nil
}

func runProgram(p *ir.Program, binds map[string]*tensor.Tensor, opt Options) (Result, error) {
	// The measurement-level injection point: a fired fault rejects the run
	// before the machine starts, like a batch job lost to a flaky node.
	if err := opt.Faults.Fire(faults.Measure); err != nil {
		opt.Observer.Emit(obsrv.LevelWarn, "exec.fault",
			obsrv.F("program", p.Name), obsrv.F("point", "measure"),
			obsrv.F("error", err))
		return Result{}, fmt.Errorf("exec %s: measurement failed: %w", p.Name, err)
	}
	st := &state{
		m:       newMachine(opt),
		opt:     opt,
		env:     ir.Env{},
		tensors: map[string]*tensor.Tensor{},
		spm:     map[string]*sw26010.SPMBuffer{},
		replies: map[string]int{},
	}
	base := st.m.Now()
	for _, decl := range p.Tensors {
		if decl.Scratch {
			layout := decl.Layout
			if layout == nil {
				layout = identityPerm(len(decl.Dims))
			}
			var t *tensor.Tensor
			var err error
			if opt.Functional {
				t, err = tensor.NewWithLayout(decl.Name, decl.Dims, layout)
			} else {
				// Timed-only runs never touch data; keep big workspaces
				// (im2col matrices, Winograd planes) virtual.
				t, err = tensor.NewVirtual(decl.Name, decl.Dims, layout)
			}
			if err != nil {
				return Result{}, fmt.Errorf("exec: scratch %s: %w", decl.Name, err)
			}
			st.tensors[decl.Name] = t
			continue
		}
		t, ok := binds[decl.Name]
		if !ok {
			return Result{}, fmt.Errorf("exec: tensor %q not bound", decl.Name)
		}
		if len(t.Dims) != len(decl.Dims) {
			return Result{}, fmt.Errorf("exec: tensor %q rank %d, declared %d", decl.Name, len(t.Dims), len(decl.Dims))
		}
		for d := range decl.Dims {
			if t.Dims[d] != decl.Dims[d] {
				return Result{}, fmt.Errorf("exec: tensor %q dims %v, declared %v", decl.Name, t.Dims, decl.Dims)
			}
		}
		if decl.Layout != nil {
			// The schedule chose a storage layout; the bound tensor must
			// actually have it, or the DMA timing would be fiction.
			want, err := tensor.NewVirtual(decl.Name, decl.Dims, decl.Layout)
			if err != nil {
				return Result{}, fmt.Errorf("exec: tensor %q: %w", decl.Name, err)
			}
			for d := range want.Strides {
				if want.Strides[d] != t.Strides[d] {
					return Result{}, fmt.Errorf("exec: tensor %q bound with strides %v, schedule chose layout %v (strides %v)",
						decl.Name, t.Strides, decl.Layout, want.Strides)
				}
			}
		}
		if decl.Output && opt.Functional {
			t.Zero()
		}
		st.tensors[decl.Name] = t
	}
	if p.DispatchOverheadSeconds > 0 {
		st.m.AdvanceCompute(p.DispatchOverheadSeconds)
	}
	if err := st.run(p.Body); err != nil {
		return Result{}, fmt.Errorf("exec %s: %w", p.Name, err)
	}
	if n := st.m.OutstandingDMA(); n != 0 {
		return Result{}, fmt.Errorf("exec %s: %d DMA transfers never waited for", p.Name, n)
	}
	return Result{Seconds: st.m.Elapsed() - base, Counters: st.m.Counters}, nil
}

func newMachine(opt Options) *sw26010.Machine {
	if opt.Machine != nil {
		if opt.Faults != nil {
			opt.Machine.SetFaults(opt.Faults)
		}
		return opt.Machine
	}
	m := sw26010.NewMachine()
	m.SetFaults(opt.Faults)
	return m
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// BindVirtual builds data-less operand bindings matching a program's
// declarations and chosen layouts. Timed-only runs (autotuning, large
// benchmarks) never touch tensor data, so no storage is allocated.
func BindVirtual(p *ir.Program) (map[string]*tensor.Tensor, error) {
	binds := map[string]*tensor.Tensor{}
	for _, decl := range p.Tensors {
		if decl.Scratch {
			continue
		}
		layout := decl.Layout
		if layout == nil {
			layout = identityPerm(len(decl.Dims))
		}
		t, err := tensor.NewVirtual(decl.Name, decl.Dims, layout)
		if err != nil {
			return nil, err
		}
		binds[decl.Name] = t
	}
	return binds, nil
}

func (st *state) run(body []ir.Stmt) error {
	for _, s := range body {
		if err := st.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (st *state) stmt(s ir.Stmt) error {
	switch x := s.(type) {
	case *ir.Comment:
		return nil
	case *ir.Assign:
		st.env[x.Var] = x.Val.Eval(st.env)
		st.m.AdvanceCompute(sw26010.Seconds(assignCycles))
		return nil
	case *ir.For:
		extent := x.Extent.Eval(st.env)
		if extent < 0 {
			return fmt.Errorf("loop %s: negative extent %d", x.Iter, extent)
		}
		saved, had := st.env[x.Iter]
		iter := func(i int64) error {
			st.env[x.Iter] = i
			st.m.AdvanceCompute(sw26010.Seconds(loopIterCycles))
			return st.run(x.Body)
		}
		if st.opt.FastLoops && !st.opt.Functional && extent >= fastLoopThreshold {
			for i := int64(0); i < 2; i++ {
				if err := iter(i); err != nil {
					return err
				}
			}
			snap := st.m.Snapshot()
			if err := iter(2); err != nil {
				return err
			}
			st.m.FastForward(snap, extent-4) // skip 3 .. extent-2
			if err := iter(extent - 1); err != nil {
				return err
			}
		} else {
			for i := int64(0); i < extent; i++ {
				if err := iter(i); err != nil {
					return err
				}
			}
		}
		if had {
			st.env[x.Iter] = saved
		} else {
			delete(st.env, x.Iter)
		}
		return nil
	case *ir.If:
		st.m.AdvanceCompute(sw26010.Seconds(branchCycles))
		if x.Cond.Eval(st.env) {
			return st.run(x.Then)
		}
		return st.run(x.Else)
	case *ir.AllocSPM:
		elems := x.Elems.Eval(st.env)
		buf, err := st.m.SPM().Alloc(x.Buf, int(elems))
		if err != nil {
			return err
		}
		st.spm[x.Buf] = buf
		st.m.NoteSPMUsage()
		return nil
	case *ir.FreeSPM:
		delete(st.spm, x.Buf)
		return st.m.SPM().Free(x.Buf)
	case *ir.RegionMove:
		// Un-inferred moves execute as a synchronous DMA (issue + wait).
		op := &ir.DMAOp{Move: *x, Reply: "__sync"}
		if err := st.dma(op); err != nil {
			return err
		}
		return st.wait(&ir.DMAWait{Reply: "__sync", Times: ir.Const(1)})
	case *ir.DMAOp:
		return st.dma(x)
	case *ir.DMAWait:
		return st.wait(x)
	case *ir.Gemm:
		return st.gemm(x)
	case *ir.Transform:
		return st.transform(x)
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (st *state) wait(x *ir.DMAWait) error {
	times := int(x.Times.Eval(st.env))
	if st.replies[x.Reply] < times {
		return fmt.Errorf("dma_wait %s x%d: only %d outstanding", x.Reply, times, st.replies[x.Reply])
	}
	st.replies[x.Reply] -= times
	if st.opt.Trace == nil {
		return st.m.WaitDMA(x.Reply, times)
	}
	// Record exposed (non-hidden) wait time as a stall interval: the part
	// of the timeline where the compute channel sat blocked on the engine.
	t0 := st.m.Now()
	stall0 := st.m.Counters.StallSeconds
	err := st.m.WaitDMA(x.Reply, times)
	if d := st.m.Counters.StallSeconds - stall0; err == nil && d > 0 {
		st.opt.Trace.Add(trace.KindWait, x.Reply, t0, d)
	}
	return err
}

func (st *state) buffer(name string) (*sw26010.SPMBuffer, error) {
	b, ok := st.spm[name]
	if !ok {
		return nil, fmt.Errorf("SPM buffer %q not allocated", name)
	}
	return b, nil
}

// dma executes one inferred DMA operation: the functional scatter/gather
// plus the transaction-level timing derived from the region's flattened
// main-memory access pattern.
func (st *state) dma(x *ir.DMAOp) error {
	mv := &x.Move
	t, ok := st.tensors[mv.Tensor]
	if !ok {
		return fmt.Errorf("dma: unknown tensor %q", mv.Tensor)
	}
	buf, err := st.buffer(mv.Buf)
	if err != nil {
		return fmt.Errorf("dma: %w", err)
	}
	nd := t.Rank()
	if len(mv.Start) != nd || len(mv.Extent) != nd {
		return fmt.Errorf("dma: region rank %d/%d vs tensor %s rank %d", len(mv.Start), len(mv.Extent), t.Name, nd)
	}
	start := make([]int, nd)
	extent := make([]int, nd)
	for d := 0; d < nd; d++ {
		start[d] = int(mv.Start[d].Eval(st.env))
		extent[d] = int(mv.Extent[d].Eval(st.env))
	}
	region, err := tensor.NewRegion(t, start, extent)
	if err != nil {
		return fmt.Errorf("dma %s: %w", mv.Tensor, err)
	}
	bufOff := int(mv.BufOff.Eval(st.env))
	var frame []int
	if mv.FrameStride != nil {
		frame = make([]int, nd)
		for d := 0; d < nd; d++ {
			frame[d] = int(mv.FrameStride[d].Eval(st.env))
		}
	} else {
		frame = packedStrides(extent)
	}

	if st.opt.Functional {
		if err := st.moveData(t, region, buf, bufOff, frame, mv.Dir); err != nil {
			return err
		}
	}

	// Timing: flatten the main-memory side into strided blocks and issue
	// one engine request covering them (uniform geometry).
	descs, err := region.FlattenMulti(t)
	if err != nil {
		return fmt.Errorf("dma %s: %w", mv.Tensor, err)
	}
	req := requestFromBlocks(descs, mv.Dir != ir.Get)
	if err := st.m.IssueDMA(x.Reply, req); err != nil {
		return err
	}
	if st.opt.Trace != nil {
		start, done := st.m.LastDMA()
		st.opt.Trace.Add(trace.KindDMA, fmt.Sprintf("%s %s", mv.Dir, mv.Tensor), start, done-start)
	}
	st.replies[x.Reply]++
	return nil
}

// requestFromBlocks converts the CG-level flattened pattern into a DMA
// request, modelling the 64-way distribution: when there are fewer blocks
// than CPEs, each block is subdivided so all CPEs participate (smaller
// per-CPE blocks, more transaction edges).
func requestFromBlocks(descs []tensor.Blocks, write bool) sw26010.DMARequest {
	total := 0
	for _, d := range descs {
		total += d.Count
	}
	first := descs[0]
	blockBytes := first.Block * 4
	strideBytes := first.Stride * 4
	if total < sw26010.NumCPE && blockBytes > sw26010.TransactionBytes {
		split := (sw26010.NumCPE + total - 1) / total
		sub := (first.Block + split - 1) / split
		blockBytes = sub * 4
		strideBytes = blockBytes
		total *= split
	}
	if strideBytes < blockBytes {
		strideBytes = blockBytes
	}
	return sw26010.DMARequest{
		BlockBytes:  blockBytes,
		BlockCount:  total,
		StrideBytes: strideBytes,
		OffsetBytes: first.Offset * 4,
		Write:       write,
		CPEs:        1, // BlockCount is already the CG aggregate
	}
}

// moveData performs the functional scatter/gather between a tensor region
// and an SPM frame.
func (st *state) moveData(t *tensor.Tensor, r tensor.Region, buf *sw26010.SPMBuffer, bufOff int, frame []int, dir ir.MoveDir) error {
	nd := t.Rank()
	// Bounds check the frame footprint.
	maxOff := bufOff
	for d := 0; d < nd; d++ {
		maxOff += (r.Extent[d] - 1) * frame[d]
	}
	if maxOff >= len(buf.Data) || bufOff < 0 {
		return fmt.Errorf("dma: frame [%d..%d] exceeds SPM buffer %s (%d elems)", bufOff, maxOff, buf.Name, len(buf.Data))
	}
	var rec func(d, memOff, spmOff int)
	rec = func(d, memOff, spmOff int) {
		if d == nd {
			switch dir {
			case ir.Get:
				buf.Data[spmOff] = t.Data[memOff]
			case ir.Put:
				t.Data[memOff] = buf.Data[spmOff]
			case ir.PutAcc:
				t.Data[memOff] += buf.Data[spmOff]
			}
			return
		}
		mo := memOff + r.Start[d]*t.Strides[d]
		so := spmOff
		for i := 0; i < r.Extent[d]; i++ {
			rec(d+1, mo, so)
			mo += t.Strides[d]
			so += frame[d]
		}
	}
	rec(0, 0, bufOff)
	return nil
}

func packedStrides(extent []int) []int {
	out := make([]int, len(extent))
	s := 1
	for d := len(extent) - 1; d >= 0; d-- {
		out[d] = s
		s *= extent[d]
	}
	return out
}

func (st *state) gemm(x *ir.Gemm) error {
	spec := primitives.GemmSpec{
		M:      int(x.M.Eval(st.env)),
		N:      int(x.N.Eval(st.env)),
		K:      int(x.K.Eval(st.env)),
		LDA:    int(x.LDA.Eval(st.env)),
		LDB:    int(x.LDB.Eval(st.env)),
		LDC:    int(x.LDC.Eval(st.env)),
		ATrans: x.ATrans, BTrans: x.BTrans,
		Vec: x.Vec, Accumulate: x.Accumulate, Specialized: x.Specialized,
	}
	secs, err := primitives.GemmTime(spec)
	if err != nil {
		return fmt.Errorf("gemm: %w", err)
	}
	if st.opt.Trace != nil {
		st.opt.Trace.Add(trace.KindGemm,
			fmt.Sprintf("%dx%dx%d", spec.M, spec.N, spec.K), st.m.Now(), secs)
	}
	st.m.AdvanceCompute(secs)
	st.m.Counters.GemmCalls++
	st.m.Counters.Flops += spec.FLOPs()

	if st.opt.Functional {
		a, err := st.buffer(x.A)
		if err != nil {
			return err
		}
		b, err := st.buffer(x.B)
		if err != nil {
			return err
		}
		c, err := st.buffer(x.C)
		if err != nil {
			return err
		}
		ao := int(x.AOff.Eval(st.env))
		bo := int(x.BOff.Eval(st.env))
		co := int(x.COff.Eval(st.env))
		if ao < 0 || bo < 0 || co < 0 || ao > len(a.Data) || bo > len(b.Data) || co > len(c.Data) {
			return fmt.Errorf("gemm: operand offset out of range (%d, %d, %d)", ao, bo, co)
		}
		if err := primitives.Gemm(spec, a.Data[ao:], b.Data[bo:], c.Data[co:]); err != nil {
			return fmt.Errorf("gemm: %w", err)
		}
	}
	return nil
}

func (st *state) transform(x *ir.Transform) error {
	st.m.Counters.TransformOps++
	if st.opt.Trace != nil {
		t0 := st.m.Now()
		defer func() {
			st.opt.Trace.Add(trace.KindTransform, x.Kind.String(), t0, st.m.Now()-t0)
		}()
	}
	switch x.Kind {
	case ir.ZeroFill:
		n := int(x.Args[0].Eval(st.env))
		st.m.AdvanceCompute(primitives.ZeroFillTime(n))
		if st.opt.Functional {
			buf, err := st.buffer(x.Dst)
			if err != nil {
				return err
			}
			off := int(x.DstOff.Eval(st.env))
			if off < 0 || off+n > len(buf.Data) {
				return fmt.Errorf("zerofill: [%d,%d) out of %s", off, off+n, x.Dst)
			}
			return primitives.ZeroFill(buf.Data[off:], n)
		}
		return nil
	case ir.CopySPM:
		n := int(x.Args[0].Eval(st.env))
		st.m.AdvanceCompute(primitives.CopySPMTime(n))
		if st.opt.Functional {
			src, err := st.buffer(x.Src)
			if err != nil {
				return err
			}
			dst, err := st.buffer(x.Dst)
			if err != nil {
				return err
			}
			so := int(x.SrcOff.Eval(st.env))
			do := int(x.DstOff.Eval(st.env))
			if so < 0 || do < 0 || so+n > len(src.Data) || do+n > len(dst.Data) {
				return fmt.Errorf("copy_spm: ranges out of bounds")
			}
			return primitives.CopySPM(src.Data[so:], dst.Data[do:], n)
		}
		return nil
	case ir.WinoInputSlab, ir.WinoOutputSlab:
		nslabs := int(x.Args[0].Eval(st.env))
		tilesC := int(x.Args[1].Eval(st.env))
		phase := "input"
		if x.Kind == ir.WinoOutputSlab {
			phase = "output"
		}
		var b, ci int
		if x.Kind == ir.WinoInputSlab {
			ci = int(x.Args[2].Eval(st.env))
			b = int(x.Args[3].Eval(st.env))
		} else {
			b = int(x.Args[2].Eval(st.env))
		}
		secs, err := primitives.WinoSlabTime(phase, nslabs*tilesC*b)
		if err != nil {
			return err
		}
		st.m.AdvanceCompute(secs)
		if !st.opt.Functional {
			return nil
		}
		src, err := st.buffer(x.Src)
		if err != nil {
			return err
		}
		dst, err := st.buffer(x.Dst)
		if err != nil {
			return err
		}
		so := int(x.SrcOff.Eval(st.env))
		do := int(x.DstOff.Eval(st.env))
		if x.Kind == ir.WinoInputSlab {
			return primitives.WinoInputSlab(src.Data[so:], dst.Data[do:], nslabs, tilesC, ci, b)
		}
		return primitives.WinoOutputSlab(src.Data[so:], dst.Data[do:], nslabs, tilesC, b)
	case ir.WinoInputTile, ir.WinoFilterTile, ir.WinoOutputTile:
		cnt := int(x.Args[0].Eval(st.env))
		phase := map[ir.TransformKind]string{
			ir.WinoInputTile: "input", ir.WinoFilterTile: "filter", ir.WinoOutputTile: "output",
		}[x.Kind]
		secs, err := primitives.WinoTransformTime(phase, cnt)
		if err != nil {
			return err
		}
		st.m.AdvanceCompute(secs)
		if !st.opt.Functional {
			return nil
		}
		src, err := st.buffer(x.Src)
		if err != nil {
			return err
		}
		dst, err := st.buffer(x.Dst)
		if err != nil {
			return err
		}
		so := int(x.SrcOff.Eval(st.env))
		do := int(x.DstOff.Eval(st.env))
		switch x.Kind {
		case ir.WinoInputTile:
			return primitives.WinoInputTransform(src.Data[so:], dst.Data[do:], cnt)
		case ir.WinoFilterTile:
			return primitives.WinoFilterTransform(src.Data[so:], dst.Data[do:], cnt)
		default:
			return primitives.WinoOutputTransform(src.Data[so:], dst.Data[do:], cnt)
		}
	}
	return fmt.Errorf("unknown transform %v", x.Kind)
}
