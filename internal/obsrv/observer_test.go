package obsrv

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
)

func TestNilObserverInert(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer claims enabled")
	}
	o.Emit(LevelInfo, "x", F("k", "v")) // must not panic
	o.Infof("y", "hello %d", 1)
	o.SetLogger(slog.Default())
	o.SetLevel(LevelDebug)
	o.SetFlightSink(&bytes.Buffer{})
	o.AutoDump("nil")
	if o.Jobs() != nil || o.Flight() != nil || o.Dropped() != 0 || o.Dumps() != 0 {
		t.Fatal("nil observer leaks state")
	}
	ch, cancel := o.Subscribe(4)
	cancel()
	if _, open := <-ch; open {
		t.Fatal("nil observer's subscription channel not closed")
	}
	var buf bytes.Buffer
	if err := o.WriteFlight(&buf, "nil"); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil flight dump is not JSON: %s", buf.Bytes())
	}
}

func TestObserverSequenceAndRing(t *testing.T) {
	o := NewWithCapacity(16)
	for i := 0; i < 5; i++ {
		o.Emit(LevelDebug, "tick", F("i", i))
	}
	snap := o.Flight().Snapshot()
	if len(snap) != 5 {
		t.Fatalf("ring holds %d events", len(snap))
	}
	for i, e := range snap {
		if e.Seq != uint64(i+1) {
			t.Fatalf("seq not monotone from 1: %v", e.Seq)
		}
	}
}

func TestObserverSubscribe(t *testing.T) {
	o := New()
	ch, cancel := o.Subscribe(8)
	if o.Subscribers() != 1 {
		t.Fatalf("Subscribers = %d", o.Subscribers())
	}
	o.Emit(LevelInfo, "cache.hit", F("op", "gemm"))
	e := <-ch
	if e.Kind != "cache.hit" || e.Fields[0].Value != "gemm" {
		t.Fatalf("subscriber got %+v", e)
	}
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		t.Fatal("channel not closed after cancel")
	}
	if o.Subscribers() != 0 {
		t.Fatalf("Subscribers after cancel = %d", o.Subscribers())
	}
}

func TestObserverSlowSubscriberDrops(t *testing.T) {
	o := New()
	_, cancel := o.Subscribe(1)
	defer cancel()
	for i := 0; i < 10; i++ { // buffer 1: nine emissions overflow
		o.Emit(LevelInfo, "spam")
	}
	if o.Dropped() != 9 {
		t.Fatalf("Dropped = %d, want 9", o.Dropped())
	}
}

// TestObserverLevelGatesSlogOnly: events below the level must be absent
// from the slog output yet present in the flight recorder — the recorder
// exists precisely for the debug tail.
func TestObserverLevelGatesSlogOnly(t *testing.T) {
	var logBuf bytes.Buffer
	o := New()
	o.SetLogger(slog.New(slog.NewTextHandler(&logBuf, nil)))
	o.SetLevel(LevelWarn)
	o.Emit(LevelDebug, "candidate.start", F("idx", 1))
	o.Emit(LevelWarn, "candidate.failed", F("error", "boom"))
	out := logBuf.String()
	if strings.Contains(out, "candidate.start") {
		t.Fatalf("Debug event leaked into slog: %s", out)
	}
	if !strings.Contains(out, "candidate.failed") || !strings.Contains(out, "boom") {
		t.Fatalf("Warn event missing from slog: %s", out)
	}
	if got := o.Flight().Len(); got != 2 {
		t.Fatalf("ring retained %d events, want both", got)
	}
}

func TestWriteFlightDocument(t *testing.T) {
	o := NewWithCapacity(4)
	j := o.Jobs().Start("tune", "conv\"x")
	j.Progress(3, 2, 1, 0.5)
	for i := 0; i < 6; i++ { // overflow the 4-slot ring
		o.Emit(LevelDebug, "candidate.finish", F("idx", i))
	}
	var buf bytes.Buffer
	if err := o.WriteFlight(&buf, `reason "quoted"`); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reason         string `json:"reason"`
		PID            int    `json:"pid"`
		Capacity       int    `json:"capacity"`
		EventsTotal    uint64 `json:"events_total"`
		EventsRetained int    `json:"events_retained"`
		Jobs           []struct {
			Name  string `json:"name"`
			State string `json:"state"`
			Done  int    `json:"done"`
		} `json:"jobs"`
		Events []struct {
			Kind   string            `json:"kind"`
			Fields map[string]string `json:"fields"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("flight dump is not JSON: %v\n%s", err, buf.Bytes())
	}
	if doc.Reason != `reason "quoted"` || doc.Capacity != 4 ||
		doc.EventsTotal != 6 || doc.EventsRetained != 4 {
		t.Fatalf("bad dump header: %+v", doc)
	}
	if len(doc.Jobs) != 1 || doc.Jobs[0].Name != `conv"x` || doc.Jobs[0].Done != 3 {
		t.Fatalf("bad jobs table: %+v", doc.Jobs)
	}
	if len(doc.Events) != 4 || doc.Events[0].Fields["idx"] != "2" {
		t.Fatalf("events not the newest window oldest-first: %+v", doc.Events)
	}
}

func TestAutoDump(t *testing.T) {
	o := New()
	o.AutoDump("no sink") // sinkless: a no-op
	if o.Dumps() != 0 {
		t.Fatalf("sinkless dump counted: %d", o.Dumps())
	}
	var sink bytes.Buffer
	o.SetFlightSink(&sink)
	o.AutoDump("tune failed: gemm")
	if o.Dumps() != 1 {
		t.Fatalf("Dumps = %d", o.Dumps())
	}
	if !json.Valid(sink.Bytes()) {
		t.Fatalf("auto dump wrote invalid JSON: %s", sink.Bytes())
	}
	if !strings.Contains(sink.String(), "tune failed: gemm") {
		t.Fatalf("reason missing from dump: %s", sink.String())
	}
	// The dump itself is recorded as a flight.dump event.
	events := o.Flight().Snapshot()
	if events[len(events)-1].Kind != "flight.dump" {
		t.Fatalf("no flight.dump event, tail = %+v", events[len(events)-1])
	}
}
