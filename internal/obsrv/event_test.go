package obsrv

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func testEvent() Event {
	return Event{
		Seq:   42,
		Time:  time.Date(2026, 1, 2, 3, 4, 5, 600000000, time.UTC),
		Level: LevelWarn,
		Kind:  "candidate.retry",
		Fields: []Field{
			F("op", "gemm_2048"),
			F("attempt", 2),
			Ms("predicted", 0.0123),
		},
	}
}

func TestEventJSON(t *testing.T) {
	data := testEvent().JSON()
	if !json.Valid(data) {
		t.Fatalf("invalid JSON: %s", data)
	}
	if bytes.ContainsRune(data, '\n') {
		t.Fatalf("encoding contains a raw newline: %q", data)
	}
	var doc struct {
		Seq    uint64            `json:"seq"`
		Time   string            `json:"time"`
		Level  string            `json:"level"`
		Kind   string            `json:"kind"`
		Fields map[string]string `json:"fields"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Seq != 42 || doc.Level != "WARN" || doc.Kind != "candidate.retry" {
		t.Fatalf("bad header: %+v", doc)
	}
	if doc.Fields["op"] != "gemm_2048" || doc.Fields["attempt"] != "2" {
		t.Fatalf("bad fields: %+v", doc.Fields)
	}
	if doc.Fields["predicted"] != "12.3" {
		t.Fatalf("Ms formatting: got %q", doc.Fields["predicted"])
	}
	// Field order is emission order, not map order.
	if !bytes.Contains(data, []byte(`"op":"gemm_2048","attempt":"2"`)) {
		t.Fatalf("field order lost: %s", data)
	}
}

func TestEventJSONEscaping(t *testing.T) {
	e := Event{
		Seq:  1,
		Kind: "weird\"kind\n",
		Fields: []Field{
			{Key: "newline", Value: "a\nb"},
			{Key: "quote", Value: `say "hi"`},
			{Key: "invalid_utf8", Value: string([]byte{0xff, 0xfe})},
			{Key: "control", Value: "\x00\x1f"},
		},
	}
	data := e.JSON()
	if !json.Valid(data) {
		t.Fatalf("invalid JSON after hostile input: %q", data)
	}
	if bytes.ContainsRune(data, '\n') {
		t.Fatalf("raw newline survived escaping: %q", data)
	}
}

func TestEventSSEFrame(t *testing.T) {
	frame := string(testEvent().AppendSSE(nil))
	if !strings.HasSuffix(frame, "\n\n") {
		t.Fatalf("frame must end with a blank line: %q", frame)
	}
	lines := strings.Split(strings.TrimSuffix(frame, "\n\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 frame lines, got %d: %q", len(lines), frame)
	}
	if lines[0] != "id: 42" {
		t.Fatalf("bad id line: %q", lines[0])
	}
	if lines[1] != "event: candidate.retry" {
		t.Fatalf("bad event line: %q", lines[1])
	}
	data, ok := strings.CutPrefix(lines[2], "data: ")
	if !ok {
		t.Fatalf("bad data line: %q", lines[2])
	}
	if !json.Valid([]byte(data)) {
		t.Fatalf("data payload is not JSON: %q", data)
	}
}

func TestEventSSEHostileKind(t *testing.T) {
	e := Event{Seq: 7, Kind: "evil\ndata: injected\n\nevent: fake"}
	frame := string(e.AppendSSE(nil))
	// The kind is stripped of newlines: exactly one id, one event, one
	// data line, one terminating blank line.
	if got := strings.Count(frame, "\nevent: "); got != 1 {
		t.Fatalf("frame was split open by kind content: %q", frame)
	}
	lines := strings.Split(strings.TrimSuffix(frame, "\n\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("hostile kind broke framing: %q", frame)
	}
}

func TestLevelString(t *testing.T) {
	for _, tc := range []struct {
		level Level
		want  string
	}{
		{LevelDebug, "DEBUG"}, {LevelInfo, "INFO"},
		{LevelWarn, "WARN"}, {LevelError, "ERROR"},
		{LevelInfo + 1, "INFO"}, {LevelError + 4, "ERROR"},
	} {
		if got := tc.level.String(); got != tc.want {
			t.Errorf("Level(%d).String() = %q, want %q", tc.level, got, tc.want)
		}
	}
}

// FuzzEventEncoder feeds arbitrary strings through both encoders and
// checks the invariants every consumer relies on: the JSON line is valid
// and newline-free, and the SSE frame has exactly the id/event/data
// structure with a blank-line terminator.
func FuzzEventEncoder(f *testing.F) {
	f.Add("candidate.finish", "strategy", "tile 64x64", uint64(1))
	f.Add("k\nind", "key\"", "value\nwith\nnewlines", uint64(0))
	f.Add("", "", string([]byte{0xff, 0x00, 0x7f}), uint64(1<<63))
	f.Fuzz(func(t *testing.T, kind, key, value string, seq uint64) {
		e := Event{Seq: seq, Time: time.Unix(0, 0), Level: LevelInfo, Kind: kind,
			Fields: []Field{{Key: key, Value: value}}}
		data := e.JSON()
		if !json.Valid(data) {
			t.Fatalf("invalid JSON for kind=%q key=%q value=%q: %q", kind, key, value, data)
		}
		if bytes.ContainsAny(data, "\n\r") {
			t.Fatalf("JSON contains raw line breaks: %q", data)
		}
		frame := e.AppendSSE(nil)
		if !bytes.HasSuffix(frame, []byte("\n\n")) {
			t.Fatalf("SSE frame not terminated: %q", frame)
		}
		body := bytes.TrimSuffix(frame, []byte("\n\n"))
		lines := bytes.Split(body, []byte("\n"))
		if len(lines) != 3 ||
			!bytes.HasPrefix(lines[0], []byte("id: ")) ||
			!bytes.HasPrefix(lines[1], []byte("event: ")) ||
			!bytes.HasPrefix(lines[2], []byte("data: ")) {
			t.Fatalf("SSE framing broken for kind=%q: %q", kind, frame)
		}
	})
}
