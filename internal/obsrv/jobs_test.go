package obsrv

import "testing"

func TestJobLifecycle(t *testing.T) {
	tr := NewJobTracker()
	j := tr.Start("tune", "gemm_2048")
	j.SetTotal(100)
	j.SetDetail("blackbox")
	j.Progress(40, 30, 2, 1.25)
	st := j.Status()
	if st.Kind != "tune" || st.Name != "gemm_2048" || st.State != JobRunning {
		t.Fatalf("bad status header: %+v", st)
	}
	if st.Done != 40 || st.Valid != 30 || st.Failed != 2 || st.BestMs != 1.25 ||
		st.Total != 100 || st.Detail != "blackbox" {
		t.Fatalf("bad progress: %+v", st)
	}

	j.Finish(JobDegraded)
	if j.State() != JobDegraded {
		t.Fatalf("State = %q", j.State())
	}
	// Unknown terminal states coerce to done.
	k := tr.Start("tune", "x")
	k.Finish("exploded")
	if k.State() != JobDone {
		t.Fatalf("coerced state = %q", k.State())
	}
}

func TestJobTrackerEviction(t *testing.T) {
	tr := NewJobTracker()
	running := tr.Start("infer", "vgg16") // never finished; must survive
	for i := 0; i < 50; i++ {
		tr.Start("tune", "op").Finish(JobDone)
	}
	snap := tr.Snapshot()
	if len(snap) != 33 { // 32 finished + 1 running
		t.Fatalf("retained %d jobs, want 33", len(snap))
	}
	// Oldest first; the long-running job has the smallest id.
	if snap[0].ID != running.Status().ID || snap[0].State != JobRunning {
		t.Fatalf("running job evicted or reordered: %+v", snap[0])
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].ID <= snap[i-1].ID {
			t.Fatalf("snapshot not id-ordered at %d", i)
		}
	}
	got := tr.Running()
	if len(got) != 1 || got[0].Name != "vgg16" {
		t.Fatalf("Running() = %+v", got)
	}
}

func TestJobNilSafe(t *testing.T) {
	var tr *JobTracker
	j := tr.Start("tune", "x")
	if j != nil {
		t.Fatal("nil tracker handed out a real job")
	}
	j.Progress(1, 1, 0, 0) // all no-ops, must not panic
	j.SetTotal(5)
	j.SetDetail("d")
	j.Finish(JobDone)
	if j.State() != "" || (j.Status() != JobStatus{}) {
		t.Fatal("nil job is not inert")
	}
	if tr.Snapshot() != nil || tr.Running() != nil {
		t.Fatal("nil tracker snapshots not empty")
	}
}
