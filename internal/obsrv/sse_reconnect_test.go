package obsrv

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// TestEventsSSEReconnect: a client reconnecting with Last-Event-ID must
// see every retained event after that id exactly once, in sequence order —
// the flight-ring replay and the live stream may not duplicate or reorder.
func TestEventsSSEReconnect(t *testing.T) {
	obs := New()
	srv := NewServer("test", obs, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 1; i <= 5; i++ {
		obs.Emit(LevelInfo, fmt.Sprintf("seed.%d", i))
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	var ids []uint64
	collect := func(n int) {
		t.Helper()
		for len(ids) < n && sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "id: ") {
				continue
			}
			v, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad SSE id line %q: %v", line, err)
			}
			ids = append(ids, v)
		}
		if len(ids) < n {
			t.Fatalf("stream ended after %d ids (want %d): %v", len(ids), n, sc.Err())
		}
	}

	// Replay: the retained events with Seq > 2.
	collect(3)
	// Live: emitted after the replay was fully read, so they must arrive
	// through the subscription without re-including replayed sequences.
	obs.Emit(LevelInfo, "live.1")
	obs.Emit(LevelInfo, "live.2")
	collect(5)

	seen := map[uint64]bool{}
	prev := uint64(2)
	for _, id := range ids {
		if id <= 2 {
			t.Errorf("stream re-sent id %d at or below Last-Event-ID 2", id)
		}
		if seen[id] {
			t.Errorf("duplicate id %d in stream %v", id, ids)
		}
		seen[id] = true
		if id <= prev {
			t.Errorf("out-of-order id %d after %d in %v", id, prev, ids)
		}
		prev = id
	}
	if want := fmt.Sprint([]uint64{3, 4, 5, 6, 7}); fmt.Sprint(ids) != want {
		t.Errorf("ids = %v, want %s", ids, want)
	}
}

// TestEventsSSENoHeader: without Last-Event-ID the stream is live-only —
// retained events are not replayed to first-time subscribers.
func TestEventsSSENoHeader(t *testing.T) {
	obs := New()
	srv := NewServer("test", obs, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	obs.Emit(LevelInfo, "old.1")
	obs.Emit(LevelInfo, "old.2")

	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// The subscription is live before the handler writes its banner, so
	// anything emitted after the banner line is readable is deliverable.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() || !strings.HasPrefix(sc.Text(), ":") {
		t.Fatalf("missing SSE banner, got %q", sc.Text())
	}
	obs.Emit(LevelInfo, "live.1")
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			id, _ := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if id != 3 {
				t.Errorf("first live id = %d, want 3 (no replay without Last-Event-ID)", id)
			}
			return
		}
	}
	t.Fatalf("no event arrived: %v", sc.Err())
}
