package obsrv

import (
	"sort"
	"sync"
	"time"
)

// Job states.
const (
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobDegraded = "degraded"
)

// JobTracker registers in-flight tuning and inference jobs so /statusz can
// show a live done/valid/failed/best-ms view of an unattended session. All
// methods are nil-safe: a nil tracker hands out nil jobs whose updates are
// no-ops, so reporting code never branches on "is an observer attached".
type JobTracker struct {
	mu     sync.Mutex
	nextID int
	jobs   map[int]*Job
	// keep is how many finished jobs are retained for post-mortem listing;
	// older finished jobs are evicted, running jobs never are.
	keep int
}

// NewJobTracker creates an empty tracker retaining the last 32 finished
// jobs alongside every running one.
func NewJobTracker() *JobTracker {
	return &JobTracker{jobs: map[int]*Job{}, keep: 32}
}

// Job is one tracked unit of work: a tuning search or a network inference.
// Progress setters are safe for concurrent use and nil-inert.
type Job struct {
	tracker *JobTracker
	id      int
	kind    string
	name    string
	start   time.Time

	mu     sync.Mutex
	state  string
	done   int
	valid  int
	failed int
	total  int
	bestMs float64
	detail string
	end    time.Time
}

// Start registers a new running job. Nil-safe: a nil tracker returns a nil
// job.
func (t *JobTracker) Start(kind, name string) *Job {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	j := &Job{tracker: t, id: t.nextID, kind: kind, name: name,
		start: time.Now(), state: JobRunning}
	t.jobs[j.id] = j
	t.evictLocked()
	return j
}

// evictLocked drops the oldest finished jobs beyond the retention budget.
func (t *JobTracker) evictLocked() {
	finished := make([]*Job, 0, len(t.jobs))
	for _, j := range t.jobs {
		if j.State() != JobRunning {
			finished = append(finished, j)
		}
	}
	if len(finished) <= t.keep {
		return
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].id < finished[k].id })
	for _, j := range finished[:len(finished)-t.keep] {
		delete(t.jobs, j.id)
	}
}

// Progress records candidate-level progress: processed, valid and failed
// candidate counts and the best score so far in milliseconds (0 while no
// valid candidate exists).
func (j *Job) Progress(done, valid, failed int, bestMs float64) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.done, j.valid, j.failed, j.bestMs = done, valid, failed, bestMs
	j.mu.Unlock()
}

// SetTotal sets the known amount of work (e.g. a network's operator-layer
// count); 0 means unknown.
func (j *Job) SetTotal(n int) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.total = n
	j.mu.Unlock()
}

// SetDetail records what the job is currently working on (a layer name, a
// tuning stage).
func (j *Job) SetDetail(s string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.detail = s
	j.mu.Unlock()
}

// Finish moves the job to a terminal state (JobDone, JobFailed or
// JobDegraded; anything else is coerced to JobDone).
func (j *Job) Finish(state string) {
	if j == nil {
		return
	}
	switch state {
	case JobDone, JobFailed, JobDegraded:
	default:
		state = JobDone
	}
	j.mu.Lock()
	j.state = state
	j.end = time.Now()
	j.mu.Unlock()
	if j.tracker != nil {
		j.tracker.mu.Lock()
		j.tracker.evictLocked()
		j.tracker.mu.Unlock()
	}
}

// State reads the job's current state ("" on a nil job).
func (j *Job) State() string {
	if j == nil {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// JobStatus is the frozen, JSON-ready view of one job.
type JobStatus struct {
	ID             int     `json:"id"`
	Kind           string  `json:"kind"`
	Name           string  `json:"name"`
	State          string  `json:"state"`
	Done           int     `json:"done"`
	Valid          int     `json:"valid"`
	Failed         int     `json:"failed"`
	Total          int     `json:"total,omitempty"`
	BestMs         float64 `json:"best_ms,omitempty"`
	Detail         string  `json:"detail,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// Status freezes one job ("zero" on nil).
func (j *Job) Status() JobStatus {
	if j == nil {
		return JobStatus{}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	elapsed := time.Since(j.start)
	if !j.end.IsZero() {
		elapsed = j.end.Sub(j.start)
	}
	return JobStatus{
		ID: j.id, Kind: j.kind, Name: j.name, State: j.state,
		Done: j.done, Valid: j.valid, Failed: j.failed, Total: j.total,
		BestMs: j.bestMs, Detail: j.detail,
		ElapsedSeconds: elapsed.Seconds(),
	}
}

// Snapshot lists all retained jobs, oldest first. Nil-safe.
func (t *JobTracker) Snapshot() []JobStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	jobs := make([]*Job, 0, len(t.jobs))
	for _, j := range t.jobs {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Running lists only the in-flight jobs, oldest first.
func (t *JobTracker) Running() []JobStatus {
	var out []JobStatus
	for _, s := range t.Snapshot() {
		if s.State == JobRunning {
			out = append(out, s)
		}
	}
	return out
}
