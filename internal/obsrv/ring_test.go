package obsrv

import (
	"strconv"
	"sync"
	"testing"
)

func TestRingFillThenWrap(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	for i := 0; i < 5; i++ {
		r.Append(Event{Seq: uint64(i + 1)})
	}
	if r.Len() != 5 || r.Total() != 5 {
		t.Fatalf("before wrap: Len=%d Total=%d", r.Len(), r.Total())
	}
	snap := r.Snapshot()
	for i, e := range snap {
		if e.Seq != uint64(i+1) {
			t.Fatalf("unwrapped snapshot out of order at %d: %d", i, e.Seq)
		}
	}

	// Push far past capacity: retained window is the newest 8, oldest first.
	for i := 5; i < 100; i++ {
		r.Append(Event{Seq: uint64(i + 1)})
	}
	if r.Len() != 8 || r.Total() != 100 {
		t.Fatalf("after wrap: Len=%d Total=%d", r.Len(), r.Total())
	}
	snap = r.Snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot len %d", len(snap))
	}
	for i, e := range snap {
		if want := uint64(93 + i); e.Seq != want {
			t.Fatalf("wrapped snapshot[%d].Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestRingCapacityFallback(t *testing.T) {
	if got := NewRing(0).Cap(); got != DefaultFlightCapacity {
		t.Fatalf("zero capacity fell back to %d", got)
	}
	if got := NewRing(-3).Cap(); got != DefaultFlightCapacity {
		t.Fatalf("negative capacity fell back to %d", got)
	}
}

func TestRingNilSafe(t *testing.T) {
	var r *Ring
	r.Append(Event{Seq: 1}) // must not panic
	if r.Cap() != 0 || r.Len() != 0 || r.Total() != 0 || r.Snapshot() != nil {
		t.Fatal("nil ring is not inert")
	}
}

// TestRingConcurrentAppend exercises the ring under parallel writers and
// readers; run with -race. Afterwards the total must equal the append
// count and the snapshot must hold Cap() distinct events.
func TestRingConcurrentAppend(t *testing.T) {
	const writers, perWriter = 8, 500
	r := NewRing(64)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Append(Event{Kind: "w" + strconv.Itoa(w), Seq: uint64(i)})
				if i%100 == 0 {
					_ = r.Snapshot() // concurrent reads must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	if r.Total() != writers*perWriter {
		t.Fatalf("Total = %d, want %d", r.Total(), writers*perWriter)
	}
	if r.Len() != 64 {
		t.Fatalf("Len = %d, want 64", r.Len())
	}
	if got := len(r.Snapshot()); got != 64 {
		t.Fatalf("snapshot len %d", got)
	}
}
