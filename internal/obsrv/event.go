// Package obsrv is the live half of the repo's observability story:
// internal/metrics makes a finished run inspectable, obsrv makes a
// *running* one inspectable. It provides
//
//   - a structured, leveled event logger (Observer) built on log/slog,
//     nil-receiver inert like internal/metrics, that every layer — the
//     autotuner, the executor, the schedule cache, the inference runtime —
//     emits candidate/measurement/cache/layer events into;
//   - a fixed-capacity ring buffer (Ring) that retains the most recent
//     events as a flight recorder, dumped as JSON when a tune fails, falls
//     back to baseline, or the process receives SIGQUIT;
//   - a JobTracker publishing each in-flight tuning or inference job's
//     done/valid/failed/best-ms progress;
//   - an embedded, optional HTTP server (Server) exposing /metrics
//     (Prometheus text), /metrics.json, /healthz, /statusz, /events
//     (server-sent events) and /debug/pprof — stdlib only.
//
// The cardinal rule, inherited from PR 4: attaching observability changes
// no tuning result. Observers never touch the metrics registry or any
// tuner state; event emission is bounded work (a ring append plus
// non-blocking subscriber sends), and slow subscribers lose events rather
// than stall the pipeline.
package obsrv

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Level mirrors log/slog's levels; events below an Observer's log level
// still reach the ring and subscribers — the level only gates slog output.
type Level int

// Event severity levels (slog-compatible values).
const (
	LevelDebug Level = -4
	LevelInfo  Level = 0
	LevelWarn  Level = 4
	LevelError Level = 8
)

// String renders the level the way slog does.
func (l Level) String() string {
	switch {
	case l < LevelInfo:
		return "DEBUG"
	case l < LevelWarn:
		return "INFO"
	case l < LevelError:
		return "WARN"
	default:
		return "ERROR"
	}
}

// Field is one ordered key/value pair of an event. Values are formatted at
// emission time so events are immutable snapshots, never live references
// into tuner state.
type Field struct {
	Key   string
	Value string
}

// F builds a field, formatting the value with the default fmt verb.
func F(key string, value any) Field {
	switch v := value.(type) {
	case string:
		return Field{Key: key, Value: v}
	case error:
		return Field{Key: key, Value: v.Error()}
	case float64:
		return Field{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
	case int:
		return Field{Key: key, Value: strconv.Itoa(v)}
	case int64:
		return Field{Key: key, Value: strconv.FormatInt(v, 10)}
	case bool:
		return Field{Key: key, Value: strconv.FormatBool(v)}
	default:
		return Field{Key: key, Value: fmt.Sprint(value)}
	}
}

// Ms formats a duration in seconds as a millisecond field, the unit every
// progress surface reports candidate times in.
func Ms(key string, seconds float64) Field {
	return Field{Key: key, Value: strconv.FormatFloat(seconds*1e3, 'g', 6, 64)}
}

// Event is one structured occurrence: a candidate finishing, a cache hit,
// a layer resolving. Kind is a dotted hierarchical name
// ("candidate.retry", "cache.quarantine", "layer.resolved"); Fields keep
// emission order, so encodings are deterministic for deterministic inputs.
type Event struct {
	// Seq is the observer-assigned monotone sequence number (also the SSE
	// event id, so reconnecting clients can spot gaps).
	Seq uint64
	// Time is the wall-clock emission time.
	Time time.Time
	// Level is the event's severity.
	Level Level
	// Kind names what happened.
	Kind string
	// Fields carries the structured payload in emission order.
	Fields []Field
}

// AppendJSON appends the event as a single-line JSON object. The encoding
// is deliberately hand-rolled (ordered fields, no reflection on the hot
// path) but delegates string escaping to encoding/json, so arbitrary
// bytes — including invalid UTF-8 — always yield valid, newline-free JSON.
func (e Event) AppendJSON(dst []byte) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"time":`...)
	dst = appendJSONString(dst, e.Time.Format(time.RFC3339Nano))
	dst = append(dst, `,"level":`...)
	dst = appendJSONString(dst, e.Level.String())
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, e.Kind)
	if len(e.Fields) > 0 {
		dst = append(dst, `,"fields":{`...)
		for i, f := range e.Fields {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, f.Key)
			dst = append(dst, ':')
			dst = appendJSONString(dst, f.Value)
		}
		dst = append(dst, '}')
	}
	return append(dst, '}')
}

// JSON returns the event as one JSON line (no trailing newline).
func (e Event) JSON() []byte { return e.AppendJSON(nil) }

// appendJSONString appends s as a JSON string literal via encoding/json,
// which escapes quotes, control characters and replaces invalid UTF-8.
func appendJSONString(dst []byte, s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string; keep the frame well-formed
		return append(dst, `""`...)
	}
	return append(dst, b...)
}

// AppendSSE appends the event as one server-sent-events frame:
//
//	id: <seq>
//	event: <kind>
//	data: <json>
//	<blank line>
//
// The event name is sanitized (SSE field values must be newline-free) and
// the data line is the AppendJSON encoding, which never contains raw
// newlines — so a frame can never be broken open by hostile field content.
func (e Event) AppendSSE(dst []byte) []byte {
	dst = append(dst, "id: "...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, "\nevent: "...)
	dst = append(dst, sanitizeSSEName(e.Kind)...)
	dst = append(dst, "\ndata: "...)
	dst = e.AppendJSON(dst)
	return append(dst, '\n', '\n')
}

// sanitizeSSEName strips the characters that would terminate or split an
// SSE field line.
func sanitizeSSEName(s string) string {
	if !strings.ContainsAny(s, "\r\n") {
		return s
	}
	r := strings.NewReplacer("\r", "", "\n", "")
	return r.Replace(s)
}
