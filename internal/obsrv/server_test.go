package obsrv

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"swatop/internal/metrics"
)

func newTestServer(t *testing.T) (*Server, *Observer, *metrics.Registry) {
	t.Helper()
	obs := New()
	reg := metrics.NewRegistry()
	return NewServer("swtest", obs, reg), obs, reg
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

func TestServerHealthzAndIndex(t *testing.T) {
	s, _, _ := newTestServer(t)
	h := s.Handler()
	rec := get(t, h, "/healthz")
	if rec.Code != 200 || strings.TrimSpace(rec.Body.String()) != "ok" {
		t.Fatalf("/healthz: %d %q", rec.Code, rec.Body.String())
	}
	rec = get(t, h, "/")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "swtest introspection") {
		t.Fatalf("/: %d %q", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/nope"); rec.Code != 404 {
		t.Fatalf("unknown path served %d", rec.Code)
	}
}

func TestServerMetrics(t *testing.T) {
	s, _, reg := newTestServer(t)
	reg.Counter("autotune_candidates_total").Add(3)
	reg.Histogram("exec_run_seconds", 0.01, 0.1).Observe(0.05)
	h := s.Handler()

	rec := get(t, h, "/metrics")
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP autotune_candidates_total",
		"# TYPE autotune_candidates_total counter",
		"autotune_candidates_total 3",
		`exec_run_seconds_bucket{le="+Inf"} 1`,
		"exec_run_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	rec = get(t, h, "/metrics.json")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json content type %q", ct)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["autotune_candidates_total"] != 3 {
		t.Fatalf("snapshot: %+v", snap)
	}
}

func TestServerStatusz(t *testing.T) {
	s, obs, _ := newTestServer(t)
	j := obs.Jobs().Start("tune", "gemm_1024")
	j.Progress(10, 8, 1, 2.5)
	obs.Emit(LevelInfo, "tune.start")

	rec := get(t, s.Handler(), "/statusz")
	var st Status
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Component != "swtest" || st.PID == 0 || st.GoVersion == "" {
		t.Fatalf("bad build header: %+v", st)
	}
	if st.EventsTotal != 1 || st.FlightCap != DefaultFlightCapacity || st.FlightLen != 1 {
		t.Fatalf("bad event accounting: %+v", st)
	}
	if len(st.Jobs) != 1 {
		t.Fatalf("jobs: %+v", st.Jobs)
	}
	job := st.Jobs[0]
	if job.Name != "gemm_1024" || job.State != JobRunning ||
		job.Done != 10 || job.Valid != 8 || job.Failed != 1 || job.BestMs != 2.5 {
		t.Fatalf("job status: %+v", job)
	}
}

func TestServerFlightz(t *testing.T) {
	s, obs, _ := newTestServer(t)
	obs.Emit(LevelWarn, "candidate.failed", F("error", "boom"))
	rec := get(t, s.Handler(), "/flightz")
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("/flightz not JSON: %s", rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "candidate.failed") {
		t.Fatalf("/flightz missing event: %s", rec.Body.String())
	}
}

// TestServerEventsSSE drives the live stream end to end over a real
// socket: subscribe, emit, and check the id/event/data framing.
func TestServerEventsSSE(t *testing.T) {
	s, obs, _ := newTestServer(t)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	// Wait for the subscription to be registered before emitting, then
	// emit two events and read frames off the stream.
	deadline := time.Now().Add(5 * time.Second)
	for obs.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}
	obs.Emit(LevelInfo, "tune.start", F("op", "gemm_64"))
	obs.Emit(LevelWarn, "candidate.retry", F("attempt", 2))

	r := bufio.NewReader(resp.Body)
	var frames []map[string]string
	frame := map[string]string{}
	for len(frames) < 2 {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended early: %v (frames %v)", err, frames)
		}
		line = strings.TrimSuffix(line, "\n")
		switch {
		case strings.HasPrefix(line, ":"): // comment / heartbeat
		case line == "":
			if len(frame) > 0 {
				frames = append(frames, frame)
				frame = map[string]string{}
			}
		default:
			k, v, ok := strings.Cut(line, ": ")
			if !ok {
				t.Fatalf("malformed SSE line %q", line)
			}
			frame[k] = v
		}
	}
	if frames[0]["event"] != "tune.start" || frames[0]["id"] != "1" {
		t.Fatalf("first frame: %v", frames[0])
	}
	if frames[1]["event"] != "candidate.retry" {
		t.Fatalf("second frame: %v", frames[1])
	}
	var payload struct {
		Kind   string            `json:"kind"`
		Fields map[string]string `json:"fields"`
	}
	if err := json.Unmarshal([]byte(frames[1]["data"]), &payload); err != nil {
		t.Fatalf("data line not JSON: %v", err)
	}
	if payload.Kind != "candidate.retry" || payload.Fields["attempt"] != "2" {
		t.Fatalf("payload: %+v", payload)
	}
}

func TestServerCloseUnblocksStream(t *testing.T) {
	s, _, _ := newTestServer(t)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	done := make(chan struct{})
	go func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		close(done)
	}()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end on server close")
	}
}

// TestServerEventsSSESlowConsumer wedges a real SSE client (connected but
// never reading) under sustained event load: the bounded fanout must drop
// events for that subscriber rather than block the emitters, and a healthy
// concurrent subscriber must keep receiving. This is the serving daemon's
// guarantee that a stuck dashboard cannot stall — or perturb — the
// deterministic execution path.
func TestServerEventsSSESlowConsumer(t *testing.T) {
	s, obs, _ := newTestServer(t)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// A wedged consumer: the HTTP response body is never read, so once the
	// client-side transport buffer and the TCP windows fill, the /events
	// handler goroutine blocks on the socket — and its 512-event channel
	// overflows.
	resp, err := http.Get("http://" + addr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for obs.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// A healthy subscriber drained continuously, to show isolation.
	healthy, cancel := obs.Subscribe(512)
	defer cancel()
	var received atomic.Int64
	go func() {
		for range healthy {
			received.Add(1)
		}
	}()

	// Sustained load: emit until the wedged stream has dropped events. The
	// emitting (execution-path) goroutine must never block: bound the whole
	// loop's wall clock, far above healthy emit cost and far below forever.
	const batch = 10_000
	start := time.Now()
	for i := 0; obs.Dropped() == 0; i++ {
		if time.Since(start) > 20*time.Second {
			t.Fatalf("no drops after %d events — fanout is buffering unboundedly or blocking", i*batch)
		}
		for j := 0; j < batch; j++ {
			obs.Emit(LevelInfo, "load.tick", F("i", i*batch+j))
		}
	}
	if obs.Dropped() == 0 {
		t.Fatal("wedged SSE consumer dropped nothing")
	}
	// The healthy subscriber kept receiving despite the wedged peer.
	deadline = time.Now().Add(5 * time.Second)
	for received.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("healthy subscriber starved by a wedged peer")
		}
		time.Sleep(time.Millisecond)
	}
	// And emitting stayed non-blocking: had Emit blocked on the wedged
	// subscriber even once, the loop above would have hung, not returned.
	if obs.Subscribers() != 2 {
		t.Fatalf("Subscribers = %d, want the wedged and the healthy one", obs.Subscribers())
	}
}
