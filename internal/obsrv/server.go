package obsrv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"swatop/internal/metrics"
)

// Server is the embedded introspection server: a stdlib net/http server
// exposing the live state of a tuning or inference process. Endpoints:
//
//	/           index of endpoints (text)
//	/healthz    liveness probe ("ok")
//	/metrics    Prometheus text exposition of the attached registry
//	/metrics.json  the same snapshot as JSON
//	/statusz    build info, uptime, active jobs (done/valid/failed/best-ms)
//	/events     server-sent events stream of the structured event log
//	/flightz    the flight recorder's retained events as JSON
//	/debug/pprof/  the standard Go profiling handlers
//
// All endpoints are read-only; serving them never mutates tuner state, so
// an attached server preserves the no-result-changes invariant.
type Server struct {
	obs       *Observer
	reg       *metrics.Registry
	component string
	start     time.Time

	mu     sync.Mutex
	ln     net.Listener
	http   *http.Server
	mounts []mount
}

// mount is an extra handler grafted onto the server's mux by Mount.
type mount struct {
	pattern string
	handler http.Handler
	help    string
}

// NewServer builds an introspection server over an observer and a metrics
// registry (either may be nil: endpoints degrade to empty documents).
// component names the process in /statusz ("swatop", "swinfer", ...).
func NewServer(component string, obs *Observer, reg *metrics.Registry) *Server {
	return &Server{obs: obs, reg: reg, component: component, start: time.Now()}
}

// Mount grafts an extra handler onto the introspection surface at pattern
// (e.g. "/tracez" — subtree requests like "/tracez/<id>" are routed too,
// per net/http mux semantics for the registered pattern). help, when given,
// is the one-line description shown on the index page. Must be called
// before Handler/Start; mounted handlers should stay read-only to preserve
// the no-result-changes invariant.
func (s *Server) Mount(pattern string, h http.Handler, help ...string) {
	m := mount{pattern: pattern, handler: h}
	if len(help) > 0 {
		m.help = help[0]
	}
	s.mu.Lock()
	s.mounts = append(s.mounts, m)
	s.mu.Unlock()
}

// Handler returns the server's routing handler — exported so tests can
// drive it through net/http/httptest without binding a port.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/statusz", s.handleStatusz)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/flightz", s.handleFlightz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.mu.Lock()
	mounts := append([]mount(nil), s.mounts...)
	s.mu.Unlock()
	for _, m := range mounts {
		mux.Handle(m.pattern, m.handler)
		if m.pattern != "/" && m.pattern[len(m.pattern)-1] != '/' {
			// Route the subtree too, so "/tracez" also answers "/tracez/<id>".
			mux.Handle(m.pattern+"/", m.handler)
		}
	}
	return mux
}

// Start binds addr (":8080", "127.0.0.1:0", ...) and serves in a
// background goroutine, returning the bound address — so ":0" callers
// learn their ephemeral port. Use Close to stop.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obsrv: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	s.mu.Lock()
	s.ln = ln
	s.http = srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the server and unblocks every live /events stream.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.http
	s.http = nil
	s.ln = nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%s introspection\n\n", s.component)
	for _, ep := range []string{
		"/healthz       liveness probe",
		"/metrics       Prometheus text exposition",
		"/metrics.json  metrics snapshot as JSON",
		"/statusz       build info, uptime, active jobs",
		"/events        server-sent events stream of the event log",
		"/flightz       flight-recorder contents as JSON",
		"/debug/pprof/  Go profiling",
	} {
		fmt.Fprintln(w, ep)
	}
	s.mu.Lock()
	mounts := append([]mount(nil), s.mounts...)
	s.mu.Unlock()
	for _, m := range mounts {
		help := m.help
		if help == "" {
			help = "mounted handler"
		}
		fmt.Fprintf(w, "%-14s %s\n", m.pattern, help)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.Snapshot().WritePrometheus(w)
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.reg.Snapshot().WriteJSON(w)
}

// Status is the /statusz document.
type Status struct {
	Component     string      `json:"component"`
	PID           int         `json:"pid"`
	GoVersion     string      `json:"go_version"`
	Revision      string      `json:"revision,omitempty"`
	StartTime     string      `json:"start_time"`
	UptimeSeconds float64     `json:"uptime_seconds"`
	Goroutines    int         `json:"goroutines"`
	Jobs          []JobStatus `json:"jobs"`
	EventsTotal   uint64      `json:"events_total"`
	EventsDropped uint64      `json:"events_dropped"`
	FlightCap     int         `json:"flight_capacity"`
	FlightLen     int         `json:"flight_retained"`
	FlightDumps   uint64      `json:"flight_dumps"`
	Subscribers   int         `json:"subscribers"`
}

// status freezes the current Status document.
func (s *Server) status() Status {
	st := Status{
		Component:     s.component,
		PID:           os.Getpid(),
		GoVersion:     runtime.Version(),
		Revision:      buildRevision(),
		StartTime:     s.start.Format(time.RFC3339),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Jobs:          s.obs.Jobs().Snapshot(),
		EventsTotal:   s.obs.Flight().Total(),
		EventsDropped: s.obs.Dropped(),
		FlightCap:     s.obs.Flight().Cap(),
		FlightLen:     s.obs.Flight().Len(),
		FlightDumps:   s.obs.Dumps(),
		Subscribers:   s.obs.Subscribers(),
	}
	if st.Jobs == nil {
		st.Jobs = []JobStatus{}
	}
	return st
}

func buildRevision() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	for _, kv := range info.Settings {
		if kv.Key == "vcs.revision" {
			return kv.Value
		}
	}
	return ""
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.status())
}

func (s *Server) handleFlightz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.obs.WriteFlight(w, "http")
}

// handleEvents streams the structured event log as server-sent events.
// Each event becomes one frame (id/event/data); a comment heartbeat every
// 15 s keeps idle connections alive through proxies. The stream ends when
// the client disconnects or the server closes.
//
// Reconnects resume seamlessly: the frames carry the observer sequence
// number as the SSE id, so a browser EventSource (or any spec-compliant
// client) sends Last-Event-ID on reconnect. Events still retained in the
// flight ring with a higher sequence are replayed first, and the live
// stream is filtered against the highest sequence already written — a
// reconnecting client sees each sequence number at most once, in order.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var lastID uint64
	replay := false
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			lastID, replay = n, true
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": %s event stream\n\n", s.component)
	fl.Flush()

	// Subscribe before snapshotting the ring so no event falls in the gap:
	// anything appended after the snapshot is already in the channel, and
	// maxSeq filtering drops the overlap.
	events, cancel := s.obs.Subscribe(512)
	defer cancel()

	var buf []byte
	maxSeq := lastID
	if replay {
		for _, e := range s.obs.Flight().Snapshot() {
			if e.Seq <= lastID {
				continue
			}
			buf = e.AppendSSE(buf[:0])
			if _, err := w.Write(buf); err != nil {
				return
			}
			if e.Seq > maxSeq {
				maxSeq = e.Seq
			}
		}
		fl.Flush()
	}

	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()

	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case e, open := <-events:
			if !open {
				return // nil observer (closed stub channel) or canceled
			}
			if replay && e.Seq <= maxSeq {
				continue // already replayed from the flight ring
			}
			buf = e.AppendSSE(buf[:0])
			if _, err := w.Write(buf); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
