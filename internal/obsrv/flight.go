package obsrv

import (
	"fmt"
	"io"
	"os"
	"time"
)

// WriteFlight writes the flight recorder's current contents as one JSON
// document:
//
//	{"reason":..., "time":..., "pid":..., "capacity":..,
//	 "events_total":.., "events_retained":..,
//	 "jobs":[...], "events":[...]}
//
// with the job table frozen at dump time and every retained event (oldest
// first) in the single-line event encoding. Nil-safe: a nil observer
// writes an empty document.
func (o *Observer) WriteFlight(w io.Writer, reason string) error {
	events := o.Flight().Snapshot()
	jobs := o.Jobs().Snapshot()
	var buf []byte
	buf = append(buf, `{"reason":`...)
	buf = appendJSONString(buf, reason)
	buf = append(buf, `,"time":`...)
	buf = appendJSONString(buf, time.Now().Format(time.RFC3339Nano))
	buf = append(buf, fmt.Sprintf(`,"pid":%d,"capacity":%d,"events_total":%d,"events_retained":%d`,
		os.Getpid(), o.Flight().Cap(), o.Flight().Total(), len(events))...)
	buf = append(buf, `,"jobs":[`...)
	for i, j := range jobs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = appendJobJSON(buf, j)
	}
	buf = append(buf, `],"events":[`...)
	for i, e := range events {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, "\n  "...)
		buf = e.AppendJSON(buf)
	}
	if len(events) > 0 {
		buf = append(buf, '\n')
	}
	buf = append(buf, "]}\n"...)
	_, err := w.Write(buf)
	return err
}

// appendJobJSON encodes one JobStatus with the same hand-rolled encoder
// the events use (ordered keys, escaped strings).
func appendJobJSON(dst []byte, j JobStatus) []byte {
	dst = append(dst, fmt.Sprintf(`{"id":%d,"kind":`, j.ID)...)
	dst = appendJSONString(dst, j.Kind)
	dst = append(dst, `,"name":`...)
	dst = appendJSONString(dst, j.Name)
	dst = append(dst, `,"state":`...)
	dst = appendJSONString(dst, j.State)
	dst = append(dst, fmt.Sprintf(`,"done":%d,"valid":%d,"failed":%d,"total":%d,"best_ms":%g,"elapsed_seconds":%g`,
		j.Done, j.Valid, j.Failed, j.Total, j.BestMs, j.ElapsedSeconds)...)
	if j.Detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = appendJSONString(dst, j.Detail)
	}
	return append(dst, '}')
}

// AutoDump writes a flight dump to the configured sink (SetFlightSink).
// The facade calls it when a tune fails or degrades to baseline; the CLI
// layer calls it on SIGQUIT. With no sink configured it is a no-op, so
// library users who attach an observer purely for /events never get
// surprise writes. Nil-safe.
func (o *Observer) AutoDump(reason string) {
	if o == nil {
		return
	}
	o.mu.Lock()
	w := o.flightW
	o.mu.Unlock()
	if w == nil {
		return
	}
	o.dumps.Add(1)
	o.Emit(LevelWarn, "flight.dump", F("reason", reason))
	if err := o.WriteFlight(w, reason); err != nil {
		o.Emit(LevelError, "flight.dump.error", F("error", err))
	}
}

// Dumps is the number of automatic flight dumps taken so far.
func (o *Observer) Dumps() uint64 {
	if o == nil {
		return 0
	}
	return o.dumps.Load()
}
