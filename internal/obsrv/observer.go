package obsrv

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"
)

// Observer is the structured event hub: every layer emits events into it,
// and it fans them out to the flight-recorder ring, to live subscribers
// (the /events SSE endpoint) and — above the configured level — to a
// log/slog logger. A nil *Observer is inert, mirroring internal/metrics:
// instrumented code calls obs.Emit(...) unconditionally and pays one nil
// check when observability is detached.
//
// Emission is bounded work and never blocks: the ring append is O(1) under
// a short mutex, subscriber sends are non-blocking (a slow subscriber
// loses events and its drop count grows), and slog handling is the
// caller-provided handler's cost. Observers never touch a metrics
// registry, which is how the "attaching observability changes no result"
// invariant holds by construction.
type Observer struct {
	seq    atomic.Uint64
	flight *Ring
	jobs   *JobTracker

	mu      sync.Mutex
	logger  *slog.Logger
	level   Level
	subs    map[int]*subscriber
	nextSub int
	flightW io.Writer // auto-dump destination (nil: auto dumps are skipped)
	dumps   atomic.Uint64
	dropped atomic.Uint64
}

type subscriber struct {
	ch      chan Event
	dropped atomic.Uint64
}

// New creates an observer with a DefaultFlightCapacity flight recorder, an
// Info log level and no logger attached.
func New() *Observer {
	return NewWithCapacity(DefaultFlightCapacity)
}

// NewWithCapacity creates an observer whose flight recorder retains the
// most recent capacity events.
func NewWithCapacity(capacity int) *Observer {
	return &Observer{
		flight: NewRing(capacity),
		jobs:   NewJobTracker(),
		subs:   map[int]*subscriber{},
		level:  LevelInfo,
	}
}

// Enabled reports whether events are being observed at all — the guard
// call sites use before formatting expensive fields.
func (o *Observer) Enabled() bool { return o != nil }

// SetLogger attaches a slog logger that receives every event at or above
// the observer's level (nil detaches).
func (o *Observer) SetLogger(l *slog.Logger) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.logger = l
	o.mu.Unlock()
}

// SetLevel sets the minimum level forwarded to the slog logger. The ring
// and subscribers always receive every event — the flight recorder's whole
// point is having the Debug-level candidate tail when something fails.
func (o *Observer) SetLevel(l Level) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.level = l
	o.mu.Unlock()
}

// SetFlightSink sets where automatic flight-recorder dumps go (tune
// failure, baseline fallback, SIGQUIT). Nil disables auto dumps;
// DumpFlight still works explicitly.
func (o *Observer) SetFlightSink(w io.Writer) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.flightW = w
	o.mu.Unlock()
}

// Jobs returns the observer's job tracker (nil on a nil observer; the
// tracker's own methods are nil-safe, so chained calls never branch).
func (o *Observer) Jobs() *JobTracker {
	if o == nil {
		return nil
	}
	return o.jobs
}

// Flight returns the flight-recorder ring (nil on a nil observer).
func (o *Observer) Flight() *Ring {
	if o == nil {
		return nil
	}
	return o.flight
}

// Emit records one structured event: sequence-stamped, appended to the
// flight recorder, fanned out to subscribers, and logged through slog when
// at or above the observer's level. Nil-safe and non-blocking.
func (o *Observer) Emit(level Level, kind string, fields ...Field) {
	if o == nil {
		return
	}
	e := Event{
		Seq:    o.seq.Add(1),
		Time:   time.Now(),
		Level:  level,
		Kind:   kind,
		Fields: fields,
	}
	o.flight.Append(e)

	o.mu.Lock()
	logger := o.logger
	lvl := o.level
	for _, s := range o.subs {
		select {
		case s.ch <- e:
		default:
			s.dropped.Add(1)
			o.dropped.Add(1)
		}
	}
	o.mu.Unlock()

	if logger != nil && level >= lvl {
		attrs := make([]any, 0, 2*len(fields))
		for _, f := range fields {
			attrs = append(attrs, f.Key, f.Value)
		}
		logger.Log(context.Background(), slog.Level(level), kind, attrs...)
	}
}

// Debugf/Infof/Warnf/Errorf emit a single-field printf-style event — the
// escape hatch for one-off messages that don't warrant structured fields.
func (o *Observer) Debugf(kind, format string, args ...any) {
	o.printf(LevelDebug, kind, format, args...)
}

// Infof emits a formatted Info event.
func (o *Observer) Infof(kind, format string, args ...any) {
	o.printf(LevelInfo, kind, format, args...)
}

// Warnf emits a formatted Warn event.
func (o *Observer) Warnf(kind, format string, args ...any) {
	o.printf(LevelWarn, kind, format, args...)
}

// Errorf emits a formatted Error event.
func (o *Observer) Errorf(kind, format string, args ...any) {
	o.printf(LevelError, kind, format, args...)
}

func (o *Observer) printf(level Level, kind, format string, args ...any) {
	if o == nil {
		return
	}
	o.Emit(level, kind, Field{Key: "msg", Value: fmt.Sprintf(format, args...)})
}

// Subscribe registers a live event listener with the given channel buffer
// (values < 1 get a sane default). It returns the event channel and a
// cancel function; after cancel the channel is closed. Slow subscribers
// drop events instead of blocking emitters.
func (o *Observer) Subscribe(buffer int) (<-chan Event, func()) {
	if o == nil {
		ch := make(chan Event)
		close(ch)
		return ch, func() {}
	}
	if buffer < 1 {
		buffer = 256
	}
	s := &subscriber{ch: make(chan Event, buffer)}
	o.mu.Lock()
	o.nextSub++
	id := o.nextSub
	o.subs[id] = s
	o.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			o.mu.Lock()
			delete(o.subs, id)
			o.mu.Unlock()
			close(s.ch)
		})
	}
	return s.ch, cancel
}

// Subscribers reports the number of live subscribers.
func (o *Observer) Subscribers() int {
	if o == nil {
		return 0
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.subs)
}

// Dropped is the total number of events lost to slow subscribers.
func (o *Observer) Dropped() uint64 {
	if o == nil {
		return 0
	}
	return o.dropped.Load()
}
