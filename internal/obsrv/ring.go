package obsrv

import "sync"

// DefaultFlightCapacity is the number of recent events a new Observer's
// flight recorder retains — enough to hold the tail of a tuning search
// (finalists, retries, the failure cascade) without unbounded growth on
// multi-hour sessions.
const DefaultFlightCapacity = 1024

// Ring is a fixed-capacity ring buffer of events: appends never allocate
// once full, the newest Cap() events win, older ones fall off. It is safe
// for concurrent use; a nil *Ring is inert.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	total uint64 // events ever appended; total % cap is the next write slot
}

// NewRing creates a ring retaining the most recent capacity events
// (capacity < 1 falls back to DefaultFlightCapacity).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = DefaultFlightCapacity
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append records one event, evicting the oldest when full.
func (r *Ring) Append(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = e
	}
	r.total++
}

// Cap is the retention capacity (0 on a nil ring).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return cap(r.buf)
}

// Len is the number of retained events (0 on a nil ring).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Total is the number of events ever appended, including evicted ones.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot copies the retained events, oldest first. Nil-safe.
func (r *Ring) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		return append(out, r.buf...)
	}
	start := r.total % uint64(cap(r.buf)) // oldest slot once wrapped
	out = append(out, r.buf[start:]...)
	return append(out, r.buf[:start]...)
}
