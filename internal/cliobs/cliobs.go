// Package cliobs is the shared observability plumbing of the five CLIs
// (swatop, swbench, swinfer, swsim, swserve): one place registering the
// -metrics, -trace-out, -listen, -flight-out, -history and
// -scrape-interval flags, starting the embedded introspection server
// (with /varz + /dashz when history is on), arming the signal handlers
// (SIGQUIT flight dump; SIGTERM/SIGINT graceful drain) and rendering live
// progress lines from the observer's job tracker. Adding a new
// observability surface means touching this package once, not five main
// functions.
package cliobs

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"swatop/internal/metrics"
	"swatop/internal/obsrv"
	"swatop/internal/tshist"
)

// Flags holds the parsed observability flag values.
type Flags struct {
	// Metrics selects metrics reporting: "" none, "-" a table on stdout
	// (stderr when the caller keeps stdout machine-parseable), anything
	// else a JSON file.
	Metrics string
	// TraceOut is the Chrome trace-event JSON output path ("" = none).
	TraceOut string
	// Listen is the introspection server bind address ("" = no server).
	Listen string
	// FlightOut is where automatic flight-recorder dumps go ("" = stderr).
	FlightOut string
	// History enables the in-process time-series store: a scraper snapshots
	// the registry every ScrapeInterval, and -listen additionally serves
	// /varz (windowed rates/percentiles, JSON) and /dashz (HTML dashboard).
	History bool
	// ScrapeInterval is how often -history snapshots the registry.
	ScrapeInterval time.Duration
}

// Register adds the shared observability flags to fs. traceHelp describes
// what -trace-out writes for this command (each CLI exports a different
// timeline).
func Register(fs *flag.FlagSet, traceHelp string) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Metrics, "metrics", "",
		"write run metrics: '-' prints a table, anything else is a JSON file")
	fs.StringVar(&f.TraceOut, "trace-out", "", traceHelp)
	fs.StringVar(&f.Listen, "listen", "",
		"serve live introspection on this address (/metrics, /statusz, /events, /debug/pprof/); ':0' picks a port")
	fs.StringVar(&f.FlightOut, "flight-out", "",
		"write automatic flight-recorder dumps (tune failure, fallback, SIGQUIT) to this file instead of stderr")
	fs.BoolVar(&f.History, "history", false,
		"keep a bounded in-process time-series history of the metrics registry; with -listen it serves /varz (JSON) and /dashz (HTML)")
	fs.DurationVar(&f.ScrapeInterval, "scrape-interval", tshist.DefaultScrapeInterval,
		"how often -history snapshots the metrics registry")
	return f
}

// Session is one CLI process's observability state: the observer every
// facade component reports into, the optional introspection server, and
// the flight-dump plumbing.
type Session struct {
	Observer *obsrv.Observer
	Registry *metrics.Registry
	// History is the time-series store behind -history (nil without the
	// flag). Daemons hand it to their own HTTP surface (swserve mounts
	// /varz and /dashz on the serving port too).
	History *tshist.Store

	component string
	flags     *Flags
	server    *obsrv.Server
	scraper   *tshist.Scraper
	flightF   *os.File
	sigCh     chan os.Signal

	ctx       context.Context
	cancel    context.CancelFunc
	drainMu   sync.Mutex
	drainFns  []func()
	drainOnce sync.Once
}

// Start builds the session from parsed flags: it creates the observer,
// wires the flight sink (FlightOut file, stderr otherwise), starts the
// introspection server when -listen was given (printing the bound address
// to stderr), and arms the signal handlers (SIGQUIT flight dump,
// SIGTERM/SIGINT graceful drain). reg is the registry the command records
// into; it is what /metrics serves.
func (f *Flags) Start(component string, reg *metrics.Registry) (*Session, error) {
	s := &Session{
		Observer:  obsrv.New(),
		Registry:  reg,
		component: component,
		flags:     f,
	}
	if f.FlightOut != "" {
		file, err := os.Create(f.FlightOut)
		if err != nil {
			return nil, fmt.Errorf("%s: flight sink: %w", component, err)
		}
		s.flightF = file
		s.Observer.SetFlightSink(file)
	} else {
		s.Observer.SetFlightSink(os.Stderr)
	}
	if f.History {
		// The scraper only reads registry snapshots, so history on/off
		// cannot change selected schedules or any deterministic metric
		// (the bit-identical invariant obs-check gates).
		s.History = tshist.New(tshist.Options{})
		s.scraper = tshist.NewScraper(s.History, reg, f.ScrapeInterval)
	}
	if f.Listen != "" {
		s.server = obsrv.NewServer(component, s.Observer, reg)
		if s.History != nil {
			// Mounts must precede Start: the server freezes its mux there.
			s.server.Mount("/varz", s.History.Handler(),
				"time-series history: windowed counter rates, histogram percentiles, fleet utilization (JSON)")
			s.server.Mount("/dashz", s.History.DashHandler(),
				"time-series dashboard: utilization stack and per-series sparklines (HTML)")
		}
		addr, err := s.server.Start(f.Listen)
		if err != nil {
			s.Close()
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "introspection: http://%s/\n", hostAddr(addr))
	}
	s.scraper.Start()
	s.ctx, s.cancel = context.WithCancel(context.Background())
	// Signal handling, shared by every CLI:
	//   - SIGQUIT dumps the flight recorder before exiting — the unattended-
	//     session post-mortem trigger ("what was it doing?" without a
	//     debugger).
	//   - SIGTERM/SIGINT drain gracefully: the first one cancels Context()
	//     (long runs stop at the next cancellation point) and runs the
	//     OnDrain hooks (daemons stop admission and finish in-flight work);
	//     the main function then flushes its reports and exits normally. A
	//     second one force-quits.
	// The goroutine ranges over a local so Close clearing s.sigCh races
	// with nothing.
	sigCh := make(chan os.Signal, 2)
	s.sigCh = sigCh
	signal.Notify(sigCh, syscall.SIGQUIT, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		draining := false
		for sig := range sigCh {
			if sig == syscall.SIGQUIT {
				s.Observer.AutoDump("SIGQUIT")
				os.Exit(2)
			}
			if draining {
				fmt.Fprintf(os.Stderr, "%s: %s again, force quitting\n", component, sig)
				os.Exit(1)
			}
			draining = true
			fmt.Fprintf(os.Stderr, "%s: %s received, draining (send again to force quit)\n",
				component, sig)
			s.drain()
		}
	}()
	return s, nil
}

// Context is canceled by the first SIGTERM/SIGINT (and by Close): pass it
// to long-running work so a drain stops it at the next cancellation point.
func (s *Session) Context() context.Context { return s.ctx }

// OnDrain registers a hook run (in registration order) when the first
// SIGTERM/SIGINT arrives, after Context is canceled. Daemons use it to
// stop admission and finish in-flight work; the hooks complete before the
// signal is considered handled.
func (s *Session) OnDrain(fn func()) {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	s.drainFns = append(s.drainFns, fn)
}

// drain cancels the session context and runs the OnDrain hooks exactly
// once.
func (s *Session) drain() {
	s.drainOnce.Do(func() {
		s.cancel()
		s.drainMu.Lock()
		fns := append([]func(){}, s.drainFns...)
		s.drainMu.Unlock()
		for _, fn := range fns {
			fn()
		}
	})
}

// hostAddr rewrites a wildcard listen address ("[::]:8080") to a
// dialable localhost form for the printed hint.
func hostAddr(addr string) string {
	if rest, ok := strings.CutPrefix(addr, "[::]"); ok {
		return "localhost" + rest
	}
	if rest, ok := strings.CutPrefix(addr, "0.0.0.0"); ok {
		return "localhost" + rest
	}
	return addr
}

// Close stops the introspection server, disarms the signal handler and
// closes the flight-dump file. Safe on a nil session.
func (s *Session) Close() {
	if s == nil {
		return
	}
	if s.sigCh != nil {
		signal.Stop(s.sigCh)
		close(s.sigCh)
		s.sigCh = nil
	}
	if s.cancel != nil {
		s.cancel()
	}
	if s.scraper != nil {
		s.scraper.Stop()
		s.scraper = nil
	}
	if s.server != nil {
		_ = s.server.Close()
		s.server = nil
	}
	if s.flightF != nil {
		s.Observer.SetFlightSink(nil)
		_ = s.flightF.Close()
		s.flightF = nil
	}
}

// StartProgress renders a live single-line view of the observer's running
// jobs to w (normally os.Stderr) at ~10 Hz, replacing the per-command
// Progress callback plumbing. The returned stop function halts the ticker
// and terminates the line; call it before printing the report.
func (s *Session) StartProgress(w io.Writer) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		shown := false
		for {
			select {
			case <-done:
				if shown {
					fmt.Fprintln(w)
				}
				return
			case <-tick.C:
				if line := progressLine(s.Observer.Jobs()); line != "" {
					// Pad the rewrite so a shrinking line leaves no tail.
					fmt.Fprintf(w, "\r%-79s", line)
					shown = true
				}
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// progressLine summarizes the most recent running job ("" when idle).
func progressLine(jobs *obsrv.JobTracker) string {
	running := jobs.Running()
	if len(running) == 0 {
		return ""
	}
	j := running[len(running)-1]
	switch j.Kind {
	case "infer":
		line := fmt.Sprintf("%s: %d/%d layers scheduled", j.Name, j.Done, j.Total)
		if j.Detail != "" {
			line += " (" + j.Detail + ")"
		}
		return line
	default:
		line := fmt.Sprintf("tuning %s: %d candidates (%d valid", j.Name, j.Done, j.Valid)
		if j.Failed > 0 {
			line += fmt.Sprintf(", %d failed", j.Failed)
		}
		if j.BestMs > 0 {
			line += fmt.Sprintf(", best %.4g ms", j.BestMs)
		}
		return line + ")"
	}
}

// WriteMetrics reports a metrics snapshot per the -metrics flag value:
// "" does nothing, "-" prints a table to stdout (stderr when
// machineStdout says stdout must stay parseable), anything else writes
// JSON to that file.
func (s *Session) WriteMetrics(machineStdout bool) error {
	out := s.flags.Metrics
	if out == "" {
		return nil
	}
	snap := s.Registry.Snapshot()
	if out == "-" {
		w := os.Stdout
		if machineStdout {
			w = os.Stderr
		}
		fmt.Fprintln(w, "--- metrics ---")
		fmt.Fprint(w, snap.Table())
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	err = snap.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write metrics %s: %w", out, err)
	}
	fmt.Fprintf(os.Stderr, "metrics: %s\n", out)
	return nil
}

// WriteTrace writes a Chrome trace-event JSON file through the caller's
// export function ("" path does nothing), printing the path to stderr.
// The write closure lets each CLI export its own timeline type.
func WriteTrace(path string, write func(io.Writer) error) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write trace %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "chrome trace: %s\n", path)
	return nil
}
