package cliobs

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"swatop/internal/metrics"
	"swatop/internal/obsrv"
)

func TestRegisterParsesSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs, "trace help text")
	if err := fs.Parse([]string{
		"-metrics", "-", "-trace-out", "t.json", "-listen", ":0", "-flight-out", "f.json",
	}); err != nil {
		t.Fatal(err)
	}
	if f.Metrics != "-" || f.TraceOut != "t.json" || f.Listen != ":0" || f.FlightOut != "f.json" {
		t.Fatalf("parsed flags: %+v", f)
	}
}

func TestSessionLifecycleWithServer(t *testing.T) {
	dir := t.TempDir()
	f := &Flags{Listen: "127.0.0.1:0", FlightOut: filepath.Join(dir, "flight.json")}
	reg := metrics.NewRegistry()
	reg.Counter("autotune_candidates_total").Add(5)

	// Capture the "introspection: http://..." hint printed to stderr.
	oldStderr := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	sess, startErr := f.Start("swtest", reg)
	os.Stderr = oldStderr
	w.Close()
	hint, _ := io.ReadAll(r)
	if startErr != nil {
		t.Fatal(startErr)
	}
	defer sess.Close()

	url, ok := strings.CutPrefix(strings.TrimSpace(string(hint)), "introspection: ")
	if !ok {
		t.Fatalf("no introspection hint on stderr: %q", hint)
	}
	resp, err := http.Get(url + "metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "autotune_candidates_total 5") {
		t.Fatalf("served metrics wrong:\n%s", body)
	}

	// The flight sink is the -flight-out file.
	sess.Observer.AutoDump("test dump")
	sess.Close() // flushes and closes the file; idempotent
	sess.Close()
	dump, err := os.ReadFile(f.FlightOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), `"reason":"test dump"`) {
		t.Fatalf("flight dump not written: %s", dump)
	}
}

// TestSessionDrainOnSIGTERM: the first SIGTERM cancels Context and runs
// the OnDrain hooks (in order) without killing the process — the graceful
// half of daemon shutdown, shared by all five CLIs.
func TestSessionDrainOnSIGTERM(t *testing.T) {
	sess, err := (&Flags{}).Start("swtest", metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if err := sess.Context().Err(); err != nil {
		t.Fatalf("fresh session context canceled: %v", err)
	}

	var mu sync.Mutex
	var order []string
	hook := func(name string) func() {
		return func() {
			mu.Lock()
			defer mu.Unlock()
			order = append(order, name)
		}
	}
	sess.OnDrain(hook("first"))
	sess.OnDrain(hook("second"))

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-sess.Context().Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM did not cancel the session context")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		got := strings.Join(order, ",")
		mu.Unlock()
		if got == "first,second" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain hooks ran as [%s], want [first,second]", got)
		}
		time.Sleep(time.Millisecond)
	}
	// The drain is once-only: a direct second drain() changes nothing.
	sess.drain()
	mu.Lock()
	n := len(order)
	mu.Unlock()
	if n != 2 {
		t.Fatalf("drain hooks ran %d times, want 2", n)
	}
}

// TestSessionCloseCancelsContext: Close is a programmatic drain signal for
// code paths that end without a signal.
func TestSessionCloseCancelsContext(t *testing.T) {
	sess, err := (&Flags{}).Start("swtest", metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	select {
	case <-sess.Context().Done():
	default:
		t.Fatal("Close did not cancel the session context")
	}
}

func TestHostAddr(t *testing.T) {
	for in, want := range map[string]string{
		"[::]:8080":      "localhost:8080",
		"0.0.0.0:9090":   "localhost:9090",
		"127.0.0.1:8080": "127.0.0.1:8080",
	} {
		if got := hostAddr(in); got != want {
			t.Errorf("hostAddr(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestProgressLine(t *testing.T) {
	var jobs *obsrv.JobTracker
	if got := progressLine(jobs); got != "" {
		t.Fatalf("nil tracker: %q", got)
	}
	jobs = obsrv.NewJobTracker()
	if got := progressLine(jobs); got != "" {
		t.Fatalf("idle tracker: %q", got)
	}

	tune := jobs.Start("tune", "gemm_2048")
	tune.Progress(120, 96, 2, 1.75)
	got := progressLine(jobs)
	for _, want := range []string{"tuning gemm_2048", "120 candidates", "96 valid", "2 failed", "best 1.75 ms"} {
		if !strings.Contains(got, want) {
			t.Fatalf("tune line %q missing %q", got, want)
		}
	}
	tune.Finish(obsrv.JobDone)

	infer := jobs.Start("infer", "vgg16")
	infer.SetTotal(16)
	infer.Progress(7, 7, 0, 0)
	infer.SetDetail("resolving conv3_1")
	got = progressLine(jobs)
	for _, want := range []string{"vgg16", "7/16 layers", "resolving conv3_1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("infer line %q missing %q", got, want)
		}
	}
}

func TestStartProgressRendersAndStops(t *testing.T) {
	sess := &Session{Observer: obsrv.New()}
	j := sess.Observer.Jobs().Start("tune", "conv_x")
	j.Progress(10, 8, 0, 0.5)
	var buf syncBuffer
	stop := sess.StartProgress(&buf)
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(buf.String(), "tuning conv_x") {
		if time.Now().After(deadline) {
			t.Fatalf("no progress rendered: %q", buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop()
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Fatalf("stop did not terminate the line: %q", buf.String())
	}
}

func TestWriteMetricsFile(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("x_total").Inc()
	path := filepath.Join(t.TempDir(), "m.json")
	sess := &Session{Registry: reg, flags: &Flags{Metrics: path}}
	if err := sess.WriteMetrics(false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"x_total": 1`) {
		t.Fatalf("metrics file: %s", data)
	}
	// "" is a no-op.
	sess.flags.Metrics = ""
	if err := sess.WriteMetrics(false); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	err := WriteTrace(path, func(w io.Writer) error {
		_, err := fmt.Fprint(w, `{"traceEvents":[]}`)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace("", nil); err != nil { // "" is a no-op
		t.Fatal(err)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for the progress ticker.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
