package schedule

import (
	"testing"

	"swatop/internal/dsl"
	"swatop/internal/ir"
)

func describeSpace() *dsl.Space {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 16, 32, 64)
	sp.FactorVar("n", 32, 64)
	sp.FactorVar("k", 32, 128)
	sp.Reorder("m", "n", "k")
	sp.Reorder("n", "m", "k")
	sp.Layout("A", 0, 1).Layout("A", 1, 0)
	sp.DoubleBuffer = []bool{false, true}
	sp.Padding = []dsl.PaddingMode{dsl.PadLightweight, dsl.PadTraditional}
	return sp
}

// TestDescribeMatchesStream is the contract Dims exists for: At(i) must be
// bit-identical to the i-th point Stream yields, for every i.
func TestDescribeMatchesStream(t *testing.T) {
	s, sp := seed(), describeSpace()
	d, err := Describe(s, sp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Enumerate(s, sp)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != len(want) {
		t.Fatalf("Size() = %d, want %d", d.Size(), len(want))
	}
	for i, st := range want {
		got := d.At(i)
		if got.String() != st.String() {
			t.Fatalf("At(%d) = %s, want %s", i, got, st)
		}
	}
}

func TestDigitsIndexRoundTrip(t *testing.T) {
	d, err := Describe(seed(), describeSpace())
	if err != nil {
		t.Fatal(err)
	}
	prod := 1
	for _, r := range d.Radices() {
		if r <= 0 {
			t.Fatalf("non-positive radix in %v", d.Radices())
		}
		prod *= r
	}
	if prod != d.Size() {
		t.Fatalf("radix product %d != size %d", prod, d.Size())
	}
	for i := 0; i < d.Size(); i++ {
		if back := d.Index(d.Digits(i)); back != i {
			t.Fatalf("Index(Digits(%d)) = %d", i, back)
		}
	}
	// Out-of-radix digits clamp to a legal point instead of corrupting the
	// encoding — mutated vectors always land in the space.
	big := make([]int, len(d.Radices()))
	for i := range big {
		big[i] = 1 << 20
	}
	if idx := d.Index(big); idx != d.Size()-1 {
		t.Fatalf("clamped index = %d, want %d", idx, d.Size()-1)
	}
}

// TestNearestIndexSelf: a strategy already in the space maps to itself.
func TestNearestIndexSelf(t *testing.T) {
	d, err := Describe(seed(), describeSpace())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Size(); i++ {
		if got := d.NearestIndex(d.At(i)); got != i {
			t.Fatalf("NearestIndex(At(%d)) = %d", i, got)
		}
	}
}

// TestNearestIndexForeign: a strategy from another shape's space lands on
// the nearest legal factors (log-space distance).
func TestNearestIndexForeign(t *testing.T) {
	d, err := Describe(seed(), describeSpace())
	if err != nil {
		t.Fatal(err)
	}
	foreign := dsl.Strategy{
		Factors: map[string]int{"m": 48, "n": 256, "k": 2},
		Order:   []string{"k", "m", "n"}, // not a menu entry → first order
		Vec:     ir.VecN,
	}
	st := d.At(d.NearestIndex(foreign))
	// Relative distance: 48 → 64 (64/48≈1.33 beats 48/32=1.5); 256 → 64
	// (largest entry); 2 → 32 (smallest entry).
	if st.Factors["m"] != 64 || st.Factors["n"] != 64 || st.Factors["k"] != 32 {
		t.Fatalf("nearest factors = %v", st.Factors)
	}
	if st.Vec != ir.VecN {
		t.Fatalf("vec not preserved: %v", st.Vec)
	}
}

func TestFactorMenu(t *testing.T) {
	d, err := Describe(seed(), describeSpace())
	if err != nil {
		t.Fatal(err)
	}
	m := d.FactorMenu("m")
	if len(m) != 3 {
		t.Fatalf("m menu = %v, want 3 entries", m)
	}
	if d.FactorMenu("nope") != nil {
		t.Fatal("unknown axis must return nil")
	}
}
