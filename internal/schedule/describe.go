// describe.go gives searchers random access into a schedule space. Stream
// and Enumerate walk the space front to back; the sample-efficient
// searchers (internal/search) instead need to jump to arbitrary points,
// mutate them dimension-wise and map foreign strategies into the space —
// all through the stable indices Stream established. Dims is that view: the
// space as a mixed-radix number system whose digit order matches the
// streaming enumeration exactly, so Dims.At(i) is bit-identical to the i-th
// point Stream yields.
package schedule

import (
	"sort"

	"swatop/internal/dsl"
	"swatop/internal/ir"
)

// Dims is the random-access descriptor of a schedule space: one digit per
// schedule decision, ordered from most significant (the first axis' tile
// factor) to least significant (the padding mode), matching Stream's
// nesting order. Immutable after Describe; safe for concurrent use.
type Dims struct {
	p *plan
	// radices[i] is the number of choices of digit i. Digit order:
	// factor choices per axis (sorted axis names), layout choices per
	// tensor (sorted tensor names), loop orders, vectorization, double
	// buffering, padding.
	radices []int
	size    int
}

// Describe resolves a schedule space into its random-access descriptor.
func Describe(seed *dsl.Seed, sp *dsl.Space) (*Dims, error) {
	p, err := resolve(seed, sp)
	if err != nil {
		return nil, err
	}
	d := &Dims{p: p, size: p.size()}
	for _, fc := range p.factorChoices {
		d.radices = append(d.radices, len(fc))
	}
	for _, lc := range p.layoutChoices {
		d.radices = append(d.radices, len(lc))
	}
	d.radices = append(d.radices, len(p.orders), len(p.vecs), len(p.dbs), len(p.pads))
	return d, nil
}

// Size is the number of points in the space (identical to Size()).
func (d *Dims) Size() int { return d.size }

// Radices returns the per-digit cardinalities, most significant first. The
// returned slice is a copy; mutate freely.
func (d *Dims) Radices() []int { return append([]int(nil), d.radices...) }

// Digits decodes a stable enumeration index into its digit vector.
// Panics when idx is out of [0, Size()).
func (d *Dims) Digits(idx int) []int {
	if idx < 0 || idx >= d.size {
		panic("schedule: Digits index out of range")
	}
	digits := make([]int, len(d.radices))
	for i := len(d.radices) - 1; i >= 0; i-- {
		digits[i] = idx % d.radices[i]
		idx /= d.radices[i]
	}
	return digits
}

// Index encodes a digit vector back into its stable enumeration index.
// Digits outside their radix are clamped, so mutated vectors always map to
// a real point.
func (d *Dims) Index(digits []int) int {
	idx := 0
	for i, r := range d.radices {
		dig := 0
		if i < len(digits) {
			dig = digits[i]
		}
		if dig < 0 {
			dig = 0
		}
		if dig >= r {
			dig = r - 1
		}
		idx = idx*r + dig
	}
	return idx
}

// At returns the schedule point at a stable enumeration index — the same
// strategy Stream yields at that index, with freshly copied maps.
func (d *Dims) At(idx int) dsl.Strategy {
	digits := d.Digits(idx)
	p := d.p
	st := dsl.Strategy{
		Factors: make(map[string]int, len(p.axes)),
		Layouts: make(map[string][]int, len(p.tensors)),
	}
	pos := 0
	for i, name := range p.axes {
		st.Factors[name] = p.factorChoices[i][digits[pos]]
		pos++
	}
	for i, name := range p.tensors {
		st.Layouts[name] = p.layoutChoices[i][digits[pos]]
		pos++
	}
	st.Order = p.orders[digits[pos]]
	pos++
	st.Vec = p.vecs[digits[pos]]
	pos++
	st.DoubleBuffer = p.dbs[digits[pos]]
	pos++
	st.Padding = p.pads[digits[pos]]
	return st
}

// NearestIndex maps a strategy — possibly from another shape's schedule
// space — onto the in-space point closest to it: each digit picks the
// choice nearest the strategy's value (tile factors by smallest relative
// distance, discrete choices by exact match or the first candidate). This
// is how cross-shape transfer seeds a population: a neighbor shape's cached
// winner lands on a legal point of the new space.
func (d *Dims) NearestIndex(st dsl.Strategy) int {
	p := d.p
	digits := make([]int, 0, len(d.radices))
	for i, name := range p.axes {
		digits = append(digits, nearestFactor(p.factorChoices[i], st.Factors[name]))
	}
	for i, name := range p.tensors {
		digits = append(digits, matchIntSlice(p.layoutChoices[i], st.Layouts[name]))
	}
	digits = append(digits, matchStrSlice(p.orders, st.Order))
	digits = append(digits, matchVec(p.vecs, st.Vec))
	digits = append(digits, matchBool(p.dbs, st.DoubleBuffer))
	digits = append(digits, matchPad(p.pads, st.Padding))
	return d.Index(digits)
}

// nearestFactor picks the menu entry with the smallest relative distance to
// want (log-space distance, so 64→48 beats 64→128 beats 64→1). want <= 0
// (axis absent from the foreign strategy) picks the first entry.
func nearestFactor(menu []int, want int) int {
	if want <= 0 {
		return 0
	}
	best, bestDist := 0, -1.0
	for i, f := range menu {
		ratio := float64(f) / float64(want)
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if bestDist < 0 || ratio < bestDist {
			best, bestDist = i, ratio
		}
	}
	return best
}

func matchIntSlice(menu [][]int, want []int) int {
	for i, cand := range menu {
		if intSliceEq(cand, want) {
			return i
		}
	}
	return 0
}

func matchStrSlice(menu [][]string, want []string) int {
	for i, cand := range menu {
		if strSliceEq(cand, want) {
			return i
		}
	}
	return 0
}

func matchVec(menu []ir.VecDim, want ir.VecDim) int {
	for i, v := range menu {
		if v == want {
			return i
		}
	}
	return 0
}

func matchBool(menu []bool, want bool) int {
	for i, b := range menu {
		if b == want {
			return i
		}
	}
	return 0
}

func matchPad(menu []dsl.PaddingMode, want dsl.PaddingMode) int {
	for i, pm := range menu {
		if pm == want {
			return i
		}
	}
	return 0
}

func intSliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func strSliceEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FactorMenu exposes the resolved tile-factor menu of one axis (sorted axis
// order), for feature extraction and tests. Returns nil for unknown axes.
func (d *Dims) FactorMenu(axis string) []int {
	i := sort.SearchStrings(d.p.axes, axis)
	if i >= len(d.p.axes) || d.p.axes[i] != axis {
		return nil
	}
	return append([]int(nil), d.p.factorChoices[i]...)
}
