package schedule

import (
	"testing"

	"swatop/internal/dsl"
	"swatop/internal/ir"
)

func seed() *dsl.Seed {
	s := dsl.NewSeed("op")
	s.AddAxis("m", 128, dsl.RoleM)
	s.AddAxis("n", 128, dsl.RoleN)
	s.AddAxis("k", 128, dsl.RoleK)
	s.AddTensor("A", []int{128, 128}, dsl.OperandA, dsl.Dim("m"), dsl.Dim("k"))
	s.AddTensor("B", []int{128, 128}, dsl.OperandB, dsl.Dim("k"), dsl.Dim("n"))
	s.AddTensor("C", []int{128, 128}, dsl.OperandC, dsl.Dim("m"), dsl.Dim("n"))
	return s
}

func TestEnumerateProduct(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 32, 64)
	sp.FactorVar("n", 32)
	sp.Reorder("m", "n", "k")
	sp.Reorder("n", "m", "k")
	sp.Layout("A", 0, 1).Layout("A", 1, 0)
	sts, err := Enumerate(seed(), sp)
	if err != nil {
		t.Fatal(err)
	}
	// 2 m × 1 n × 2 orders × 2 layouts × 2 vecs = 16
	if len(sts) != 16 {
		t.Fatalf("space = %d, want 16", len(sts))
	}
	seen := map[string]bool{}
	for _, st := range sts {
		key := st.String()
		if seen[key] {
			t.Fatalf("duplicate strategy %s", key)
		}
		seen[key] = true
	}
}

func TestEnumerateDedupsFactors(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 32, 32, 32)
	sts, err := Enumerate(seed(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 { // 1 factor × 2 vecs
		t.Fatalf("duplicates not removed: %d strategies", len(sts))
	}
}

func TestEnumerateDefaultsWhenSparse(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 4096) // beyond extent: falls back to 1
	sts, err := Enumerate(seed(), sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if st.Factors["m"] != 1 {
			t.Fatalf("invalid factor survived: %v", st)
		}
		if st.Padding != dsl.PadLightweight || st.DoubleBuffer != true {
			t.Fatalf("defaults wrong: %v", st)
		}
	}
}

func TestEnumerateOptionAxes(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 32)
	sp.DoubleBuffer = []bool{false, true}
	sp.Padding = []dsl.PaddingMode{dsl.PadLightweight, dsl.PadTraditional}
	sp.Vecs = []ir.VecDim{ir.VecM}
	sts, err := Enumerate(seed(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 4 {
		t.Fatalf("want 4 option combos, got %d", len(sts))
	}
}

func TestStreamMatchesEnumerate(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 32, 64)
	sp.FactorVar("n", 32, 64)
	sp.Reorder("m", "n", "k")
	sp.Reorder("n", "m", "k")
	sp.Layout("A", 0, 1).Layout("A", 1, 0)
	want, err := Enumerate(seed(), sp)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Size(seed(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("Size = %d, Enumerate = %d", n, len(want))
	}
	i := 0
	err = Stream(seed(), sp, func(idx int, st dsl.Strategy) bool {
		if idx != i {
			t.Fatalf("index %d out of order, want %d", idx, i)
		}
		if st.String() != want[idx].String() {
			t.Fatalf("point %d differs:\nstream    %s\nenumerate %s", idx, st, want[idx])
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("stream emitted %d points, want %d", i, len(want))
	}
}

func TestStreamEarlyStop(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 8, 16, 32, 64)
	sp.FactorVar("n", 8, 16, 32, 64)
	count := 0
	err := Stream(seed(), sp, func(idx int, st dsl.Strategy) bool {
		count++
		return count < 3
	})
	if err != nil {
		t.Fatalf("early stop must not error: %v", err)
	}
	if count != 3 {
		t.Fatalf("stream emitted %d points after stop at 3", count)
	}
}

func TestStreamEmitsIndependentStrategies(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 8, 16)
	var first, second dsl.Strategy
	_ = Stream(seed(), sp, func(idx int, st dsl.Strategy) bool {
		if idx == 0 {
			first = st
		} else if idx == 1 {
			second = st
			return false
		}
		return true
	})
	first.Factors["m"] = 999
	if second.Factors["m"] == 999 {
		t.Fatal("streamed strategies share factor maps")
	}
}

func TestStreamBypassesSpaceGuard(t *testing.T) {
	// A space too large for Enumerate still streams: the guard only protects
	// the materializing path.
	big := dsl.NewSeed("op")
	big.AddAxis("m", 4096, dsl.RoleM)
	big.AddAxis("n", 4096, dsl.RoleN)
	big.AddAxis("k", 4096, dsl.RoleK)
	big.AddTensor("A", []int{4096, 4096}, dsl.OperandA, dsl.Dim("m"), dsl.Dim("k"))
	big.AddTensor("B", []int{4096, 4096}, dsl.OperandB, dsl.Dim("k"), dsl.Dim("n"))
	big.AddTensor("C", []int{4096, 4096}, dsl.OperandC, dsl.Dim("m"), dsl.Dim("n"))
	sp := dsl.NewSpace()
	var huge []int
	for f := 1; f <= 600; f++ {
		huge = append(huge, f)
	}
	sp.FactorVar("m", huge...)
	sp.FactorVar("n", huge...)
	n, err := Size(big, sp)
	if err != nil {
		t.Fatal(err)
	}
	if n <= MaxSpace {
		t.Fatalf("test space of %d points does not exceed the %d guard", n, MaxSpace)
	}
	if _, err := Enumerate(big, sp); err == nil {
		t.Fatal("Enumerate must trip the guard")
	}
	count := 0
	if err := Stream(big, sp, func(idx int, st dsl.Strategy) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatalf("Stream must ignore the guard: %v", err)
	}
	if count != 5 {
		t.Fatalf("stream emitted %d points, want 5", count)
	}
}

func TestEnumerateErrors(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("ghost", 2)
	if _, err := Enumerate(seed(), sp); err == nil {
		t.Fatal("unknown axis must error")
	}
	sp2 := dsl.NewSpace()
	sp2.Layout("Ghost", 0, 1)
	if _, err := Enumerate(seed(), sp2); err == nil {
		t.Fatal("unknown tensor must error")
	}
	sp3 := dsl.NewSpace()
	sp3.Vecs = nil
	if _, err := Enumerate(seed(), sp3); err == nil {
		t.Fatal("empty vec list must error")
	}
}
