package schedule

import (
	"testing"

	"swatop/internal/dsl"
	"swatop/internal/ir"
)

func seed() *dsl.Seed {
	s := dsl.NewSeed("op")
	s.AddAxis("m", 128, dsl.RoleM)
	s.AddAxis("n", 128, dsl.RoleN)
	s.AddAxis("k", 128, dsl.RoleK)
	s.AddTensor("A", []int{128, 128}, dsl.OperandA, dsl.Dim("m"), dsl.Dim("k"))
	s.AddTensor("B", []int{128, 128}, dsl.OperandB, dsl.Dim("k"), dsl.Dim("n"))
	s.AddTensor("C", []int{128, 128}, dsl.OperandC, dsl.Dim("m"), dsl.Dim("n"))
	return s
}

func TestEnumerateProduct(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 32, 64)
	sp.FactorVar("n", 32)
	sp.Reorder("m", "n", "k")
	sp.Reorder("n", "m", "k")
	sp.Layout("A", 0, 1).Layout("A", 1, 0)
	sts, err := Enumerate(seed(), sp)
	if err != nil {
		t.Fatal(err)
	}
	// 2 m × 1 n × 2 orders × 2 layouts × 2 vecs = 16
	if len(sts) != 16 {
		t.Fatalf("space = %d, want 16", len(sts))
	}
	seen := map[string]bool{}
	for _, st := range sts {
		key := st.String()
		if seen[key] {
			t.Fatalf("duplicate strategy %s", key)
		}
		seen[key] = true
	}
}

func TestEnumerateDedupsFactors(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 32, 32, 32)
	sts, err := Enumerate(seed(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 2 { // 1 factor × 2 vecs
		t.Fatalf("duplicates not removed: %d strategies", len(sts))
	}
}

func TestEnumerateDefaultsWhenSparse(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 4096) // beyond extent: falls back to 1
	sts, err := Enumerate(seed(), sp)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range sts {
		if st.Factors["m"] != 1 {
			t.Fatalf("invalid factor survived: %v", st)
		}
		if st.Padding != dsl.PadLightweight || st.DoubleBuffer != true {
			t.Fatalf("defaults wrong: %v", st)
		}
	}
}

func TestEnumerateOptionAxes(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("m", 32)
	sp.DoubleBuffer = []bool{false, true}
	sp.Padding = []dsl.PaddingMode{dsl.PadLightweight, dsl.PadTraditional}
	sp.Vecs = []ir.VecDim{ir.VecM}
	sts, err := Enumerate(seed(), sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 4 {
		t.Fatalf("want 4 option combos, got %d", len(sts))
	}
}

func TestEnumerateErrors(t *testing.T) {
	sp := dsl.NewSpace()
	sp.FactorVar("ghost", 2)
	if _, err := Enumerate(seed(), sp); err == nil {
		t.Fatal("unknown axis must error")
	}
	sp2 := dsl.NewSpace()
	sp2.Layout("Ghost", 0, 1)
	if _, err := Enumerate(seed(), sp2); err == nil {
		t.Fatal("unknown tensor must error")
	}
	sp3 := dsl.NewSpace()
	sp3.Vecs = nil
	if _, err := Enumerate(seed(), sp3); err == nil {
		t.Fatal("empty vec list must error")
	}
}
