// Package schedule enumerates swATOP schedule spaces (§4.3): the Cartesian
// product of tile-factor candidates, loop-order candidates, layout
// candidates, vectorization choices and optimization toggles. Validity
// pruning (SPM capacity, vectorization rules, layout separability) happens
// when candidates are lowered; this package produces the raw points
// deterministically.
package schedule

import (
	"fmt"
	"sort"

	"swatop/internal/dsl"
)

// MaxSpace bounds enumeration as a guard against accidental combinatorial
// explosions in operator definitions.
const MaxSpace = 200000

// Enumerate lists every point of a schedule space in a deterministic order.
func Enumerate(seed *dsl.Seed, sp *dsl.Space) ([]dsl.Strategy, error) {
	axes := make([]string, 0, len(sp.Factors))
	for name := range sp.Factors {
		if _, err := seed.Axis(name); err != nil {
			return nil, fmt.Errorf("schedule: %w", err)
		}
		axes = append(axes, name)
	}
	sort.Strings(axes)

	factorChoices := make([][]int, len(axes))
	for i, name := range axes {
		ax, _ := seed.Axis(name)
		var valid []int
		seen := map[int]bool{}
		for _, f := range sp.Factors[name] {
			if f >= 1 && f <= ax.Extent && !seen[f] {
				valid = append(valid, f)
				seen[f] = true
			}
		}
		if len(valid) == 0 {
			valid = []int{1}
		}
		factorChoices[i] = valid
	}

	orders := sp.Orders
	if len(orders) == 0 {
		orders = [][]string{nil} // declaration order
	}
	tensors := make([]string, 0, len(sp.Layouts))
	for name := range sp.Layouts {
		if _, err := seed.Tensor(name); err != nil {
			return nil, fmt.Errorf("schedule: %w", err)
		}
		tensors = append(tensors, name)
	}
	sort.Strings(tensors)
	layoutChoices := make([][][]int, len(tensors))
	for i, name := range tensors {
		layoutChoices[i] = sp.Layouts[name]
	}
	vecs := sp.Vecs
	if len(vecs) == 0 {
		return nil, fmt.Errorf("schedule: space has no vectorization candidates")
	}
	dbs := sp.DoubleBuffer
	if len(dbs) == 0 {
		dbs = []bool{true}
	}
	pads := sp.Padding
	if len(pads) == 0 {
		pads = []dsl.PaddingMode{dsl.PadLightweight}
	}

	size := len(orders) * len(vecs) * len(dbs) * len(pads)
	for _, fc := range factorChoices {
		size *= len(fc)
	}
	for _, lc := range layoutChoices {
		size *= len(lc)
	}
	if size > MaxSpace {
		return nil, fmt.Errorf("schedule: space of %d points exceeds the %d guard", size, MaxSpace)
	}

	var out []dsl.Strategy
	factorIdx := make([]int, len(axes))
	layoutIdx := make([]int, len(tensors))

	var recLayouts func(d int, st dsl.Strategy)
	emit := func(st dsl.Strategy) {
		for _, order := range orders {
			for _, vec := range vecs {
				for _, db := range dbs {
					for _, pad := range pads {
						s := st
						s.Order = order
						s.Vec = vec
						s.DoubleBuffer = db
						s.Padding = pad
						// Deep-copy maps so strategies are independent.
						s.Factors = copyIntMap(st.Factors)
						s.Layouts = copyLayoutMap(st.Layouts)
						out = append(out, s)
					}
				}
			}
		}
	}
	recLayouts = func(d int, st dsl.Strategy) {
		if d == len(tensors) {
			emit(st)
			return
		}
		for i := range layoutChoices[d] {
			layoutIdx[d] = i
			st.Layouts[tensors[d]] = layoutChoices[d][i]
			recLayouts(d+1, st)
		}
	}
	var recFactors func(d int, st dsl.Strategy)
	recFactors = func(d int, st dsl.Strategy) {
		if d == len(axes) {
			recLayouts(0, st)
			return
		}
		for i := range factorChoices[d] {
			factorIdx[d] = i
			st.Factors[axes[d]] = factorChoices[d][i]
			recFactors(d+1, st)
		}
	}
	recFactors(0, dsl.Strategy{Factors: map[string]int{}, Layouts: map[string][]int{}})
	return out, nil
}

func copyIntMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyLayoutMap(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
