// Package schedule enumerates swATOP schedule spaces (§4.3): the Cartesian
// product of tile-factor candidates, loop-order candidates, layout
// candidates, vectorization choices and optimization toggles. Validity
// pruning (SPM capacity, vectorization rules, layout separability) happens
// when candidates are lowered; this package produces the raw points
// deterministically.
//
// Stream is the primary interface: it emits points one at a time, in a
// fixed deterministic order, with a stable index — so consumers (the
// worker-pool autotuner in particular) can process candidates concurrently
// and still merge results reproducibly. Enumerate materializes the same
// sequence into a slice.
package schedule

import (
	"fmt"
	"sort"

	"swatop/internal/dsl"
	"swatop/internal/ir"
)

// MaxSpace bounds Enumerate as a guard against accidental combinatorial
// explosions in operator definitions. It applies only to the materializing
// path; Stream has no such limit because it holds one point at a time.
const MaxSpace = 200000

// plan is a schedule space resolved against its seed: validated axis and
// tensor names, clipped factor menus, and defaulted option axes. It is the
// shared front half of Stream, Enumerate and Size.
type plan struct {
	axes          []string
	factorChoices [][]int
	orders        [][]string
	tensors       []string
	layoutChoices [][][]int
	vecs          []ir.VecDim
	dbs           []bool
	pads          []dsl.PaddingMode
}

// resolve validates a space against a seed and fixes the enumeration order.
func resolve(seed *dsl.Seed, sp *dsl.Space) (*plan, error) {
	p := &plan{}
	for name := range sp.Factors {
		if _, err := seed.Axis(name); err != nil {
			return nil, fmt.Errorf("schedule: %w", err)
		}
		p.axes = append(p.axes, name)
	}
	sort.Strings(p.axes)

	p.factorChoices = make([][]int, len(p.axes))
	for i, name := range p.axes {
		ax, _ := seed.Axis(name)
		var valid []int
		seen := map[int]bool{}
		for _, f := range sp.Factors[name] {
			if f >= 1 && f <= ax.Extent && !seen[f] {
				valid = append(valid, f)
				seen[f] = true
			}
		}
		if len(valid) == 0 {
			valid = []int{1}
		}
		p.factorChoices[i] = valid
	}

	p.orders = sp.Orders
	if len(p.orders) == 0 {
		p.orders = [][]string{nil} // declaration order
	}
	for name := range sp.Layouts {
		if _, err := seed.Tensor(name); err != nil {
			return nil, fmt.Errorf("schedule: %w", err)
		}
		p.tensors = append(p.tensors, name)
	}
	sort.Strings(p.tensors)
	p.layoutChoices = make([][][]int, len(p.tensors))
	for i, name := range p.tensors {
		p.layoutChoices[i] = sp.Layouts[name]
	}
	p.vecs = sp.Vecs
	if len(p.vecs) == 0 {
		return nil, fmt.Errorf("schedule: space has no vectorization candidates")
	}
	p.dbs = sp.DoubleBuffer
	if len(p.dbs) == 0 {
		p.dbs = []bool{true}
	}
	p.pads = sp.Padding
	if len(p.pads) == 0 {
		p.pads = []dsl.PaddingMode{dsl.PadLightweight}
	}
	return p, nil
}

// size is the exact number of points the plan will emit.
func (p *plan) size() int {
	size := len(p.orders) * len(p.vecs) * len(p.dbs) * len(p.pads)
	for _, fc := range p.factorChoices {
		size *= len(fc)
	}
	for _, lc := range p.layoutChoices {
		size *= len(lc)
	}
	return size
}

// Size reports the number of points in a schedule space without
// enumerating it.
func Size(seed *dsl.Seed, sp *dsl.Space) (int, error) {
	p, err := resolve(seed, sp)
	if err != nil {
		return 0, err
	}
	return p.size(), nil
}

// Stream emits every point of a schedule space, in the same deterministic
// order as Enumerate, with a stable zero-based index. It holds one point at
// a time (no MaxSpace guard applies). Emitted strategies carry freshly
// copied maps, so they may be retained and mutated independently — and
// handed to concurrent consumers. yield returning false stops the
// enumeration early without error.
func Stream(seed *dsl.Seed, sp *dsl.Space, yield func(idx int, st dsl.Strategy) bool) error {
	p, err := resolve(seed, sp)
	if err != nil {
		return err
	}
	p.stream(yield)
	return nil
}

// stream walks the plan's Cartesian product recursively, emitting points
// until yield declines. Reports whether the walk ran to completion.
func (p *plan) stream(yield func(idx int, st dsl.Strategy) bool) bool {
	idx := 0
	emit := func(st dsl.Strategy) bool {
		for _, order := range p.orders {
			for _, vec := range p.vecs {
				for _, db := range p.dbs {
					for _, pad := range p.pads {
						s := st
						s.Order = order
						s.Vec = vec
						s.DoubleBuffer = db
						s.Padding = pad
						// Deep-copy maps so strategies are independent.
						s.Factors = copyIntMap(st.Factors)
						s.Layouts = copyLayoutMap(st.Layouts)
						if !yield(idx, s) {
							return false
						}
						idx++
					}
				}
			}
		}
		return true
	}
	var recLayouts func(d int, st dsl.Strategy) bool
	recLayouts = func(d int, st dsl.Strategy) bool {
		if d == len(p.tensors) {
			return emit(st)
		}
		for i := range p.layoutChoices[d] {
			st.Layouts[p.tensors[d]] = p.layoutChoices[d][i]
			if !recLayouts(d+1, st) {
				return false
			}
		}
		return true
	}
	var recFactors func(d int, st dsl.Strategy) bool
	recFactors = func(d int, st dsl.Strategy) bool {
		if d == len(p.axes) {
			return recLayouts(0, st)
		}
		for i := range p.factorChoices[d] {
			st.Factors[p.axes[d]] = p.factorChoices[d][i]
			if !recFactors(d+1, st) {
				return false
			}
		}
		return true
	}
	return recFactors(0, dsl.Strategy{Factors: map[string]int{}, Layouts: map[string][]int{}})
}

// Enumerate lists every point of a schedule space in a deterministic order
// — a materializing wrapper over Stream, with the MaxSpace guard.
func Enumerate(seed *dsl.Seed, sp *dsl.Space) ([]dsl.Strategy, error) {
	p, err := resolve(seed, sp)
	if err != nil {
		return nil, err
	}
	size := p.size()
	if size > MaxSpace {
		return nil, fmt.Errorf("schedule: space of %d points exceeds the %d guard", size, MaxSpace)
	}
	out := make([]dsl.Strategy, 0, size)
	p.stream(func(idx int, st dsl.Strategy) bool {
		out = append(out, st)
		return true
	})
	return out, nil
}

func copyIntMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyLayoutMap(m map[string][]int) map[string][]int {
	out := make(map[string][]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
