package cluster

import "fmt"

// PartitionBalanced splits a sequence of per-item costs into n contiguous
// stages minimizing the maximum stage cost — the classic linear
// partitioning problem, solved exactly by dynamic programming so the stage
// boundaries are deterministic (ties break toward the earliest feasible
// boundary, which the DP's strict-improvement scan yields naturally).
// It returns the stage extents as [n][2]int{start, end} half-open index
// ranges covering 0..len(costs). Every stage gets at least one item;
// len(costs) must be >= n.
func PartitionBalanced(costs []float64, n int) ([][2]int, error) {
	k := len(costs)
	if n < 1 {
		return nil, fmt.Errorf("cluster: partition into %d stages", n)
	}
	if k < n {
		return nil, fmt.Errorf("cluster: %d items across %d stages (every stage needs at least one)", k, n)
	}
	// prefix[i] = sum of costs[0:i].
	prefix := make([]float64, k+1)
	for i, c := range costs {
		prefix[i+1] = prefix[i] + c
	}
	seg := func(a, b int) float64 { return prefix[b] - prefix[a] }

	// best[s][i]: minimal max-stage-cost splitting costs[0:i] into s+1
	// stages; cut[s][i]: the start index of the last stage in that optimum.
	best := make([][]float64, n)
	cut := make([][]int, n)
	for s := range best {
		best[s] = make([]float64, k+1)
		cut[s] = make([]int, k+1)
	}
	for i := 1; i <= k; i++ {
		best[0][i] = seg(0, i)
	}
	for s := 1; s < n; s++ {
		for i := s + 1; i <= k; i++ {
			bestCost, bestCut := -1.0, -1
			for j := s; j < i; j++ {
				c := best[s-1][j]
				if tail := seg(j, i); tail > c {
					c = tail
				}
				if bestCut < 0 || c < bestCost {
					bestCost, bestCut = c, j
				}
			}
			best[s][i], cut[s][i] = bestCost, bestCut
		}
	}

	out := make([][2]int, n)
	end := k
	for s := n - 1; s >= 1; s-- {
		start := cut[s][end]
		out[s] = [2]int{start, end}
		end = start
	}
	out[0] = [2]int{0, end}
	return out, nil
}

// PipelineSchedule is the aggregate timeline of streaming M micro-batches
// through S stages: stage s of micro-batch m starts when both its stage
// has finished micro-batch m-1 and stage s-1 has finished (and shipped)
// micro-batch m.
type PipelineSchedule struct {
	// Start[s][m] / Finish[s][m] are the fleet-clock interval of stage s
	// executing micro-batch m (transfer to the next stage excluded).
	Start, Finish [][]float64
	// TotalSeconds is when the last stage finishes the last micro-batch —
	// the fleet's aggregate machine time for the whole batch.
	TotalSeconds float64
	// BusySeconds[s] sums stage s's execution time over all micro-batches.
	BusySeconds []float64
	// CommSeconds sums every modeled stage-boundary transfer.
	CommSeconds float64
	// BubbleFraction is the idle share of the fleet during the pipeline:
	// 1 - sum(BusySeconds) / (S * TotalSeconds). Fill and drain make it
	// nonzero for any M < infinity; more micro-batches amortize it away.
	BubbleFraction float64
}

// SchedulePipeline computes the schedule from per-stage, per-micro-batch
// execution durations d[s][m] and per-boundary transfer times xfer[s]
// (stage s -> s+1; len(xfer) = len(d)-1). Purely arithmetic over
// deterministic inputs, so the schedule is deterministic too.
func SchedulePipeline(d [][]float64, xfer []float64) (*PipelineSchedule, error) {
	s := len(d)
	if s == 0 {
		return nil, fmt.Errorf("cluster: pipeline with no stages")
	}
	m := len(d[0])
	if m == 0 {
		return nil, fmt.Errorf("cluster: pipeline with no micro-batches")
	}
	for i := range d {
		if len(d[i]) != m {
			return nil, fmt.Errorf("cluster: stage %d has %d micro-batches, stage 0 has %d", i, len(d[i]), m)
		}
	}
	if len(xfer) != s-1 {
		return nil, fmt.Errorf("cluster: %d stage boundaries, got %d transfer costs", s-1, len(xfer))
	}

	sched := &PipelineSchedule{
		Start:       make([][]float64, s),
		Finish:      make([][]float64, s),
		BusySeconds: make([]float64, s),
	}
	for si := 0; si < s; si++ {
		sched.Start[si] = make([]float64, m)
		sched.Finish[si] = make([]float64, m)
	}
	for mi := 0; mi < m; mi++ {
		for si := 0; si < s; si++ {
			start := 0.0
			if mi > 0 {
				start = sched.Finish[si][mi-1]
			}
			if si > 0 {
				if ready := sched.Finish[si-1][mi] + xfer[si-1]; ready > start {
					start = ready
				}
				sched.CommSeconds += xfer[si-1]
			}
			sched.Start[si][mi] = start
			sched.Finish[si][mi] = start + d[si][mi]
			sched.BusySeconds[si] += d[si][mi]
		}
	}
	sched.TotalSeconds = sched.Finish[s-1][m-1]
	if sched.TotalSeconds > 0 {
		busy := 0.0
		for _, b := range sched.BusySeconds {
			busy += b
		}
		sched.BubbleFraction = 1 - busy/(float64(s)*sched.TotalSeconds)
	}
	return sched, nil
}
