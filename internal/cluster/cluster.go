// Package cluster models a fleet of simulated SW26010 core groups — the
// scale-out unit the chip actually ships (4 CGs per node) and the one
// swCaffe's throughput story is built on. A Fleet owns N independent
// sw26010.Machine instances, one per core group; each machine keeps its own
// clock, SPM and counters, so per-group timelines stay deterministic no
// matter how the host schedules the groups' goroutines. The package also
// carries the analytic cost models for what the single-group simulator
// cannot see: cross-group communication (gathers, all-reduces, pipeline
// stage hand-offs) through the node's shared main memory, and the pipeline
// schedule that turns per-stage micro-batch durations into an aggregate
// fleet timeline.
package cluster

import (
	"fmt"

	"swatop/internal/metrics"
	"swatop/internal/sw26010"
)

// Cross-group communication constants. The four core groups of one SW26010
// node have no direct interconnect: data moves between them through the
// shared DDR3 memory, so a transfer pays one group's DMA write and another
// group's DMA read at the per-CG effective bandwidth — half the single-hop
// bandwidth — plus a synchronization handshake.
const (
	// InterGroupBandwidth is the effective bytes/s of one cross-group
	// transfer: store + load through shared memory at DMAEffBandwidth each.
	InterGroupBandwidth = sw26010.DMAEffBandwidth / 2

	// GroupSyncSeconds is the per-group synchronization latency of a
	// collective step (flag propagation through the memory system; the
	// same order as two DMA startups).
	GroupSyncSeconds = 2 * sw26010.DMAStartupSeconds
)

// Fleet is N simulated core groups. Construct with New; group indices are
// dense 0..Size()-1 and group 0 is the lead group (the one that owns
// gathers and whole-fleet outputs).
type Fleet struct {
	machines []*sw26010.Machine
}

// New creates a fleet of n fresh machines at time zero. n must be >= 1.
func New(n int) (*Fleet, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: fleet size %d, want >= 1", n)
	}
	f := &Fleet{machines: make([]*sw26010.Machine, n)}
	for i := range f.machines {
		f.machines[i] = sw26010.NewMachine()
	}
	return f, nil
}

// Size is the number of core groups.
func (f *Fleet) Size() int { return len(f.machines) }

// Machine returns group i's machine.
func (f *Fleet) Machine(i int) *sw26010.Machine { return f.machines[i] }

// GroupPrefix is the metric-namespace prefix of group i ("group0_", ...).
// Every per-group metric in the fleet uses it, so N groups publish disjoint
// names into one shared registry.
func GroupPrefix(i int) string { return fmt.Sprintf("group%d_", i) }

// Publish writes every group's machine counters into the registry under
// its GroupPrefix namespace, plus the deterministically merged aggregate
// under the flat machine_* names (groups summed in index order).
func (f *Fleet) Publish(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	var agg sw26010.Counters
	for i, m := range f.machines {
		m.Counters.PublishPrefixed(reg, GroupPrefix(i))
		agg.Accumulate(m.Counters)
	}
	agg.Publish(reg)
	reg.Gauge("fleet_groups").Set(float64(f.Size()))
}

// ShardBatch splits a batch of b samples across n groups as evenly as
// possible: the first b%n groups take one extra sample. When b < n the
// trailing n-b shards are zero — those groups have no samples and callers
// must skip them (an empty shard is idle capacity, not work to execute).
// b must be >= 1: a batch of zero has nothing to shard, and callers that
// would pass 0 should reject it up front with their own error.
func ShardBatch(b, n int) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: shard across %d groups", n)
	}
	if b < 1 {
		return nil, fmt.Errorf("cluster: shard batch %d, want >= 1 (a zero batch has no samples to distribute)", b)
	}
	shards := make([]int, n)
	base, extra := b/n, b%n
	for i := range shards {
		shards[i] = base
		if i < extra {
			shards[i]++
		}
	}
	return shards, nil
}

// GatherSeconds models collecting `bytes` of results from n groups onto
// the lead group through shared memory: the lead group's DMA engine is the
// bottleneck, so the n-1 remote shards stream in serially at the
// cross-group bandwidth, after a per-group synchronization step. Zero for
// a single group — there is nothing to gather.
func GatherSeconds(bytes int64, n int) float64 {
	if n <= 1 || bytes <= 0 {
		return float64(n-1) * GroupSyncSeconds
	}
	return float64(bytes)/InterGroupBandwidth + float64(n-1)*GroupSyncSeconds
}

// AllGatherSeconds models an all-gather of a buffer of totalBytes whose
// shards are spread across n groups: every group writes its own shard to
// shared memory and reads the n-1 remote shards back, so each group moves
// the full buffer once at the cross-group bandwidth, plus one
// synchronization step per remote peer. This is the collective between the
// column-sharded fully-connected layers of the hybrid data-parallel mode
// (each group computes a slice of the output features but needs the full
// activation as the next layer's input).
func AllGatherSeconds(totalBytes int64, n int) float64 {
	if n <= 1 {
		return 0
	}
	if totalBytes <= 0 {
		return float64(n-1) * GroupSyncSeconds
	}
	return float64(totalBytes)/InterGroupBandwidth + float64(n-1)*GroupSyncSeconds
}

// AllReduceSeconds models a flat all-reduce of `bytes` per group across n
// groups through shared memory (the swCaffe gradient pattern): each group
// writes its contribution, reads the n-1 others and reduces locally —
// 2·(n-1)·bytes moved per group at the cross-group bandwidth, overlapping
// across groups only in the sync step. Inference only needs gathers; this
// is here for the training-style workloads a serving daemon may grow into.
func AllReduceSeconds(bytes int64, n int) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	return 2 * float64(n-1) * (float64(bytes)/InterGroupBandwidth + GroupSyncSeconds)
}

// StageTransferSeconds models handing one micro-batch's boundary
// activations from pipeline stage s to stage s+1: a single cross-group
// transfer plus one synchronization.
func StageTransferSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes)/InterGroupBandwidth + GroupSyncSeconds
}
