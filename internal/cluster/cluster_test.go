package cluster

import (
	"math"
	"testing"

	"swatop/internal/metrics"
	"swatop/internal/sw26010"
)

func TestNewFleet(t *testing.T) {
	f, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Fatalf("size = %d", f.Size())
	}
	seen := map[*sw26010.Machine]bool{}
	for i := 0; i < 4; i++ {
		m := f.Machine(i)
		if m == nil || seen[m] {
			t.Fatalf("group %d: machine nil or shared", i)
		}
		seen[m] = true
		if m.Now() != 0 {
			t.Fatalf("group %d starts at %g", i, m.Now())
		}
	}
	if _, err := New(0); err == nil {
		t.Fatal("fleet of size 0 must error")
	}
}

func TestShardBatch(t *testing.T) {
	cases := []struct {
		b, n int
		want []int
	}{
		{8, 4, []int{2, 2, 2, 2}},
		{8, 3, []int{3, 3, 2}},
		{7, 2, []int{4, 3}},
		{4, 4, []int{1, 1, 1, 1}},
		{5, 1, []int{5}},
		// batch < groups: trailing shards are zero (skipped, not executed),
		// never silently redistributed.
		{3, 4, []int{1, 1, 1, 0}},
		{1, 4, []int{1, 0, 0, 0}},
		{2, 3, []int{1, 1, 0}},
	}
	for _, c := range cases {
		got, err := ShardBatch(c.b, c.n)
		if err != nil {
			t.Fatalf("ShardBatch(%d,%d): %v", c.b, c.n, err)
		}
		sum := 0
		for i := range got {
			sum += got[i]
			if got[i] != c.want[i] {
				t.Fatalf("ShardBatch(%d,%d) = %v, want %v", c.b, c.n, got, c.want)
			}
		}
		if sum != c.b {
			t.Fatalf("shards %v do not sum to %d", got, c.b)
		}
	}
	if _, err := ShardBatch(0, 4); err == nil {
		t.Fatal("batch 0 must error: there are no samples to distribute")
	}
	if _, err := ShardBatch(4, 0); err == nil {
		t.Fatal("zero groups must error")
	}
}

func TestCommCostModels(t *testing.T) {
	if GatherSeconds(0, 1) != 0 {
		t.Fatal("single group gather must be free")
	}
	g2 := GatherSeconds(1<<20, 2)
	g4 := GatherSeconds(1<<20, 4)
	if g2 <= 0 || g4 <= g2 {
		t.Fatalf("gather not monotone in groups: %g vs %g", g2, g4)
	}
	big := GatherSeconds(1<<24, 4)
	if big <= g4 {
		t.Fatalf("gather not monotone in bytes: %g vs %g", big, g4)
	}
	if AllGatherSeconds(1<<20, 1) != 0 {
		t.Fatal("single group all-gather must be free")
	}
	ag4 := AllGatherSeconds(1<<20, 4)
	if ag4 <= 0 || ag4 <= AllGatherSeconds(1<<20, 2) {
		t.Fatalf("all-gather not monotone in groups: %g", ag4)
	}
	if AllGatherSeconds(1<<24, 4) <= ag4 {
		t.Fatal("all-gather not monotone in bytes")
	}
	// Moving the full buffer once per group vs the lead group pulling the
	// remote shards: same bytes on the bottleneck path, same sync count.
	if ag4 != GatherSeconds(1<<20, 4) {
		t.Fatalf("all-gather %g != gather %g of the same buffer", ag4, GatherSeconds(1<<20, 4))
	}
	if AllGatherSeconds(0, 4) != 3*GroupSyncSeconds {
		t.Fatal("empty all-gather must still synchronize")
	}
	if AllReduceSeconds(1<<20, 1) != 0 {
		t.Fatal("single group all-reduce must be free")
	}
	if AllReduceSeconds(1<<20, 4) <= GatherSeconds(1<<20, 4) {
		t.Fatal("all-reduce must cost more than a gather of the same bytes")
	}
	if StageTransferSeconds(0) != 0 {
		t.Fatal("empty stage transfer must be free")
	}
	if x := StageTransferSeconds(1 << 20); x <= GroupSyncSeconds {
		t.Fatalf("stage transfer %g does not include the byte cost", x)
	}
}

func TestFleetPublish(t *testing.T) {
	f, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		m := f.Machine(i)
		req := sw26010.DMARequest{BlockBytes: 128, BlockCount: i + 1, StrideBytes: 256, CPEs: sw26010.NumCPE}
		if err := m.IssueDMA("r", req); err != nil {
			t.Fatal(err)
		}
		if err := m.WaitDMA("r", 1); err != nil {
			t.Fatal(err)
		}
	}
	reg := metrics.NewRegistry()
	f.Publish(reg)
	s := reg.Snapshot()
	g0 := s.Gauges["group0_machine_dma_blocks_total"]
	g1 := s.Gauges["group1_machine_dma_blocks_total"]
	if g0 <= 0 || g1 <= 0 || g0 == g1 {
		t.Fatalf("per-group gauges wrong: %g, %g", g0, g1)
	}
	if got := s.Gauges["machine_dma_blocks_total"]; got != g0+g1 {
		t.Fatalf("aggregate %g != %g + %g", got, g0, g1)
	}
	if got := s.Gauges["fleet_groups"]; got != 2 {
		t.Fatalf("fleet_groups = %g", got)
	}
	f.Publish(nil) // no-op
}

func TestPartitionBalanced(t *testing.T) {
	costs := []float64{5, 1, 1, 1, 5, 1, 1, 1}
	stages, err := PartitionBalanced(costs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal split is down the middle: max stage cost 8.
	if stages[0] != [2]int{0, 4} || stages[1] != [2]int{4, 8} {
		t.Fatalf("stages = %v", stages)
	}

	// Extents must tile the index range for any shape.
	costs = []float64{3, 9, 2, 2, 7, 1, 4}
	for n := 1; n <= len(costs); n++ {
		stages, err := PartitionBalanced(costs, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(stages) != n || stages[0][0] != 0 || stages[n-1][1] != len(costs) {
			t.Fatalf("n=%d: stages %v do not cover", n, stages)
		}
		for s := 1; s < n; s++ {
			if stages[s][0] != stages[s-1][1] || stages[s][0] >= stages[s][1] {
				t.Fatalf("n=%d: stages %v not contiguous/nonempty", n, stages)
			}
		}
	}

	// DP optimum: 4 stages over the shape above has max-stage 11
	// ([3][9][2 2 7][1 4]); every other 4-way split is >= 12.
	stages, err = PartitionBalanced(costs, 4)
	if err != nil {
		t.Fatal(err)
	}
	maxStage := 0.0
	for _, st := range stages {
		sum := 0.0
		for i := st[0]; i < st[1]; i++ {
			sum += costs[i]
		}
		if sum > maxStage {
			maxStage = sum
		}
	}
	if maxStage != 11 {
		t.Fatalf("max stage cost %g, want 11 (stages %v)", maxStage, stages)
	}

	if _, err := PartitionBalanced([]float64{1}, 2); err == nil {
		t.Fatal("more stages than items must error")
	}
}

func TestSchedulePipeline(t *testing.T) {
	// Two perfectly balanced stages, no transfer cost: the classic
	// pipeline diagram. d = 1s each, M = 3.
	d := [][]float64{{1, 1, 1}, {1, 1, 1}}
	sched, err := SchedulePipeline(d, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalSeconds != 4 { // fill 1 + 3 on stage 1
		t.Fatalf("total = %g, want 4", sched.TotalSeconds)
	}
	// Bubble: 8s capacity (2 stages x 4s), 6s busy -> 1/4.
	if math.Abs(sched.BubbleFraction-0.25) > 1e-12 {
		t.Fatalf("bubble = %g, want 0.25", sched.BubbleFraction)
	}
	if sched.Start[1][0] != 1 || sched.Start[0][2] != 2 {
		t.Fatalf("schedule wrong: %+v", sched.Start)
	}

	// Transfer cost delays the downstream stage.
	sched, err = SchedulePipeline(d, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sched.Start[1][0] != 1.5 {
		t.Fatalf("transfer not applied: start = %g", sched.Start[1][0])
	}
	if sched.CommSeconds != 1.5 { // 3 micro-batches x 0.5
		t.Fatalf("comm = %g", sched.CommSeconds)
	}

	// An unbalanced slow stage dominates: total = fill + M * slow.
	d = [][]float64{{1, 1, 1, 1}, {2, 2, 2, 2}}
	sched, err = SchedulePipeline(d, []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if sched.TotalSeconds != 1+4*2 {
		t.Fatalf("total = %g, want 9", sched.TotalSeconds)
	}

	// Malformed inputs error.
	if _, err := SchedulePipeline(nil, nil); err == nil {
		t.Fatal("no stages must error")
	}
	if _, err := SchedulePipeline([][]float64{{1}, {1, 2}}, []float64{0}); err == nil {
		t.Fatal("ragged micro-batches must error")
	}
	if _, err := SchedulePipeline([][]float64{{1}, {1}}, nil); err == nil {
		t.Fatal("missing transfer costs must error")
	}
}
