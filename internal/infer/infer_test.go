package infer

import (
	"context"
	"errors"
	"testing"

	"swatop/internal/cache"
	"swatop/internal/faults"
	"swatop/internal/graph"
	"swatop/internal/workloads"
)

// tinyBuilder builds a small but structurally complete network: an
// explicit-GEMM first conv (Ni < MinNiImplicit, like every network's first
// layer), two implicit convs across a pooling transition, then a pooled +
// flattened fully-connected tail — every node kind the VGG16 graph uses, at
// sizes a functional run can afford. It doubles as the Options.Builder of
// the fleet tests.
func tinyBuilder(batch int) (*graph.Graph, error) {
	return graph.Chain("tiny", batch,
		[]workloads.ConvLayer{
			{Net: "tiny", Name: "c1", Ni: 3, No: 16, R: 8, K: 3},
			{Net: "tiny", Name: "c2", Ni: 16, No: 16, R: 8, K: 3},
			{Net: "tiny", Name: "c3", Ni: 16, No: 16, R: 4, K: 3},
		},
		[]workloads.FCLayer{
			{Net: "tiny", Name: "f1", In: 16 * 2 * 2, Out: 32},
			// Out must vectorize (tile % 4): the lowering has no scalar
			// epilogue for the M dimension.
			{Net: "tiny", Name: "f2", In: 32, Out: 12},
		})
}

func tinyChain(t *testing.T, batch int) *graph.Graph {
	t.Helper()
	g, err := tinyBuilder(batch)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestInferTinyFunctional executes the tiny network with real data: every
// tuned operator's output must match the single-operator reference oracle,
// feeding through the ping-pong arenas and the glue stubs in between.
func TestInferTinyFunctional(t *testing.T) {
	g := tinyChain(t, 2)
	e := newEngine(t)
	lib := cache.NewLibrary()
	res, err := e.Run(context.Background(), g, Options{
		Workers:    2,
		Library:    lib,
		Functional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Layers) != g.NumNodes() {
		t.Fatalf("%d layers, want %d", len(res.Layers), g.NumNodes())
	}
	ops := 0
	for _, l := range res.Layers {
		if l.Kind == graph.Conv || l.Kind == graph.Gemm {
			ops++
			if !l.Checked {
				t.Fatalf("layer %s not verified", l.Name)
			}
			if l.MaxAbsErr > 1e-3 {
				t.Fatalf("layer %s err %g", l.Name, l.MaxAbsErr)
			}
			if l.Strategy == "" {
				t.Fatalf("layer %s has no strategy", l.Name)
			}
		}
		if l.Seconds <= 0 {
			t.Fatalf("layer %s has non-positive seconds", l.Name)
		}
	}
	if ops != 5 {
		t.Fatalf("%d operator layers, want 5", ops)
	}
	if res.Seconds <= 0 {
		t.Fatal("non-positive network seconds")
	}
	if res.Output == nil {
		t.Fatal("functional run must return the output tensor")
	}
	if got := elemCount(res.Output.Dims); got != 12*2 {
		t.Fatalf("output has %d elements, want 24", got)
	}
	// Layer starts must march forward on the shared machine and the merged
	// timeline must stay within the network's span.
	prev := -1.0
	for _, l := range res.Layers {
		if l.Start < prev {
			t.Fatalf("layer %s starts at %g before previous start %g", l.Name, l.Start, prev)
		}
		prev = l.Start
	}
	if res.Timeline.Len() == 0 {
		t.Fatal("empty network timeline")
	}
	if end := res.Timeline.End(); end > res.Seconds*(1+1e-9) {
		t.Fatalf("timeline ends at %g, after the network's %g", end, res.Seconds)
	}
	if res.Speedup <= 0 {
		t.Fatalf("speedup %g, want positive", res.Speedup)
	}
	// Every conv caches one library entry per applicable lowering method
	// (the engine tunes them all and keeps the measured best), plus one
	// entry per distinct GEMM shape: at least the 5 operator nodes.
	if lib.Len() < 5 {
		t.Fatalf("library holds %d schedules, want >= 5", lib.Len())
	}
}

// TestInferDeterministic: the network's machine seconds are identical for
// every tuning worker count, and identical again when every schedule comes
// from the cache instead of a fresh search.
func TestInferDeterministic(t *testing.T) {
	g := tinyChain(t, 2)
	e := newEngine(t)

	lib1 := cache.NewLibrary()
	res1, err := e.Run(context.Background(), g, Options{Workers: 1, Library: lib1, SkipBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := e.Run(context.Background(), g, Options{Workers: 4, Library: cache.NewLibrary(), SkipBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Seconds != res4.Seconds {
		t.Fatalf("workers change the network time: %g vs %g", res1.Seconds, res4.Seconds)
	}
	for i := range res1.Layers {
		if res1.Layers[i].Seconds != res4.Layers[i].Seconds {
			t.Fatalf("layer %s: %g (1 worker) vs %g (4 workers)",
				res1.Layers[i].Name, res1.Layers[i].Seconds, res4.Layers[i].Seconds)
		}
	}

	// Cached re-run: every operator resolves from the library, and because
	// the engine re-executes the compiled program rather than trusting
	// cached numbers, the total is bit-identical.
	cached, err := e.Run(context.Background(), g, Options{Workers: 4, Library: lib1, SkipBaseline: true})
	if err != nil {
		t.Fatal(err)
	}
	if cached.CachedOps != 5 || cached.TunedOps != 0 {
		t.Fatalf("cached run resolved %d cached / %d tuned, want 5 / 0", cached.CachedOps, cached.TunedOps)
	}
	if cached.Seconds != res1.Seconds {
		t.Fatalf("cached run %g differs from fresh run %g", cached.Seconds, res1.Seconds)
	}
}

// TestInferFallbackUnderFaults: with every tuning measurement failing, the
// Fallback option serves the manual baseline schedules instead of failing
// the network — and never caches them.
func TestInferFallbackUnderFaults(t *testing.T) {
	g := tinyChain(t, 2)
	e := newEngine(t)
	in := faults.New(1)
	in.FailEveryNth(faults.Measure, 1, errors.New("injected measurement failure"))
	lib := cache.NewLibrary()
	res, err := e.Run(context.Background(), g, Options{
		Library:              lib,
		Faults:               in,
		Fallback:             true,
		MaxCandidateFailures: 3,
		SkipBaseline:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedOps != 5 {
		t.Fatalf("%d degraded operators, want 5", res.DegradedOps)
	}
	for _, l := range res.Layers {
		if (l.Kind == graph.Conv || l.Kind == graph.Gemm) && !l.Degraded {
			t.Fatalf("layer %s should be degraded", l.Name)
		}
	}
	if res.Seconds <= 0 {
		t.Fatal("degraded network must still report machine time")
	}
	if lib.Len() != 0 {
		t.Fatalf("degraded schedules were cached: %d entries", lib.Len())
	}

	// Without the fallback the same environment is a hard error.
	if _, err := e.Run(context.Background(), g, Options{
		Faults:               in,
		MaxCandidateFailures: 3,
		SkipBaseline:         true,
	}); err == nil {
		t.Fatal("tuning failure without fallback must error")
	}
}

// TestInferCancellation: a canceled context stops the run with the
// context's error even when fallback is enabled (the caller asked the work
// to stop, not to degrade).
func TestInferCancellation(t *testing.T) {
	g := tinyChain(t, 2)
	e := newEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(ctx, g, Options{Fallback: true, SkipBaseline: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPlanPingPong: the buffer planner alternates consecutive activations
// between the two arenas, pins nothing in a straight chain, excludes
// parameters and the graph input/output, and beats the naive footprint.
func TestPlanPingPong(t *testing.T) {
	g, err := graph.VGG16(4)
	if err != nil {
		t.Fatal(err)
	}
	p := planBuffers(g)
	nodes := g.Topo()
	for i, n := range nodes {
		if n.Out == g.Output {
			continue
		}
		slot, ok := p.Slot[n.Out]
		if !ok {
			t.Fatalf("activation %s not planned", n.Out)
		}
		if slot != i%2 {
			t.Fatalf("activation %s in slot %d, want %d", n.Out, slot, i%2)
		}
	}
	for _, tn := range g.Tensors() {
		if _, ok := p.Slot[tn.Name]; ok && (tn.Param || tn.Name == g.Input || tn.Name == g.Output) {
			t.Fatalf("%s must not enter the arenas", tn.Name)
		}
	}
	if p.DedicatedBytes != 0 {
		t.Fatalf("straight chain pinned %d bytes", p.DedicatedBytes)
	}
	if p.ArenaBytes() >= p.NaiveBytes {
		t.Fatalf("arenas (%d B) do not beat naive allocation (%d B)", p.ArenaBytes(), p.NaiveBytes)
	}
	// VGG16's two largest adjacent feature maps are conv1-sized; the naive
	// sum is over 5× larger.
	if p.NaiveBytes < 4*p.ArenaBytes() {
		t.Fatalf("expected a big reuse win, got arenas %d B vs naive %d B", p.ArenaBytes(), p.NaiveBytes)
	}
}
