// Package infer is the network inference runtime: it executes a whole
// internal/graph network on one simulated SW26010 core group, resolving
// each tuned operator's schedule from a cache.Library (tuning misses
// through the autotune pipeline), planning main-memory buffer reuse across
// layers, and merging the per-layer execution timelines into a single
// network timeline. It is the repo's equivalent of the paper's swCaffe
// integration: the tuned operators stop being isolated benchmarks and
// serve real end-to-end inference.
package infer

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"swatop/internal/autotune"
	"swatop/internal/baseline"
	"swatop/internal/cache"
	"swatop/internal/conv"
	"swatop/internal/costmodel"
	"swatop/internal/exec"
	"swatop/internal/faults"
	"swatop/internal/gemm"
	"swatop/internal/graph"
	"swatop/internal/ir"
	"swatop/internal/metrics"
	"swatop/internal/obsrv"
	"swatop/internal/reqtrace"
	"swatop/internal/search"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
	"swatop/internal/trace"
)

// Conv method names (matching baseline.FallbackConv).
const (
	methodImplicit = "implicit"
	methodExplicit = "explicit"
	methodWinograd = "winograd"
)

// Engine runs networks. Construct once (fitting the cost model is the
// per-machine offline calibration) and reuse across runs.
type Engine struct {
	model *costmodel.GemmModel
}

// NewEngine fits the autotuner's cost model.
func NewEngine() (*Engine, error) {
	m, err := costmodel.FitGemmModel()
	if err != nil {
		return nil, err
	}
	return &Engine{model: m}, nil
}

// Options configures one network run.
type Options struct {
	// Workers is the tuning concurrency (autotune.Options.Workers). The
	// resolved schedules — and therefore the network's machine seconds —
	// are identical for every worker count.
	Workers int
	// Library, when non-nil, is consulted before tuning and records fresh
	// results. Within a single run, repeated operator shapes resolve once
	// even without a library.
	Library *cache.Library
	// Fallback degrades failed tuning runs to the manual baseline
	// schedule (never cached) instead of failing the whole network.
	Fallback bool
	// NoTune disables the tuner entirely: operators resolve from the
	// library or — with Fallback set — degrade straight to the baseline
	// schedule. It is the serving daemon's circuit-breaker open state:
	// when tuning keeps failing, stop attempting it and serve degraded
	// results until a probe succeeds. Without Fallback, a library miss
	// under NoTune is an error.
	NoTune bool
	// Faults, when non-nil, is threaded into tuning measurements only;
	// the network's own execution machine stays clean — degradation is
	// the recovery path and must work while tuning is being sabotaged.
	Faults *faults.Injector
	// Retry / MaxCandidateFailures mirror the tuner's resilience knobs.
	Retry                autotune.Retry
	MaxCandidateFailures int
	// Searcher switches layer tuning to sample-efficient search
	// (autotune.Options.Searcher); SearchBudget caps the measured fraction
	// of each space and SearchSeed pins the searcher RNG. Nil Searcher
	// keeps the exhaustive walk. The attached Library doubles as the
	// transfer source: later layers seed their populations from earlier
	// layers' cached winners.
	Searcher     search.Searcher
	SearchBudget float64
	SearchSeed   uint64
	// Functional executes with real float32 data and checks every tuned
	// operator against its reference oracle (slow: use tiny networks).
	// Timed-only otherwise, fast-forwarding long loops — machine seconds
	// stay deterministic within each mode, but differ slightly between
	// them (the fast-forward extrapolation is near-exact, not exact).
	Functional bool
	// Tolerance is the per-layer max-abs-error bound in functional mode
	// (default 1e-3).
	Tolerance float64
	// SkipBaseline skips the per-layer manual-library comparison run.
	SkipBaseline bool
	// Progress, when non-nil, is called after each operator node's
	// schedule is resolved.
	Progress func(node string, done, total int)
	// Metrics, when non-nil, receives run instrumentation: per-layer
	// schedule-resolution outcomes (infer_conv_cached_total, ...), conv
	// method selections (infer_method_winograd_total, ...), the arena peak,
	// the machine's lifetime counters (machine_*) and the DMA-hidden ratio.
	// It is threaded into tuning and node execution, and also attached to
	// Options.Library. During a fully cached run every recorded value is a
	// simulated-machine quantity, so snapshots are bit-identical across
	// Workers values.
	Metrics *metrics.Registry
	// Observer, when non-nil, receives the run's structured event log
	// (net.start/finish, per-layer resolution and execution, degradations)
	// and registers the run as a live "infer" job in the observer's
	// JobTracker. It is threaded into tuning, node execution and the
	// library. Purely observational: resolved schedules and every metric
	// are identical with and without an observer attached.
	Observer *obsrv.Observer
	// Spans, when non-nil, collects request-scoped tracing spans for the
	// serving path: one resolve span per operator node (wall time around
	// schedule resolution, with cached/degraded/method args) and one exec
	// span per core group (wall time around execution, with the group's
	// simulated machine milliseconds as an arg). Like Observer it is
	// purely observational — nil-inert, recorded off the simulated clock,
	// and never an input to schedule selection, so machine seconds are
	// bit-identical with and without it.
	Spans *reqtrace.Spans

	// Groups scales the run out across a fleet of simulated core groups
	// (1..sw26010.NumCG — one SW26010 node). 0 or 1 keeps today's
	// single-machine path exactly. Fleet runs need Builder set and force
	// SkipBaseline; schedules still resolve sequentially up front, only
	// execution parallelizes, and per-group machine seconds stay
	// bit-identical across worker counts and goroutine interleavings.
	Groups int
	// Pipeline switches a fleet run (Groups >= 2) from data parallelism
	// (the batch sharded across groups, each running the full net) to layer
	// pipelining: the net is partitioned into Groups balanced stages by
	// per-layer tuned cost and micro-batches of size 1 stream through them.
	// Timed-only: functional pipeline runs are rejected.
	Pipeline bool
	// Builder rebuilds the network at a different batch size (the facade
	// passes a graph.ByName closure). Fleet modes need it: data parallelism
	// runs shard-sized graphs, pipelining runs the batch-1 micro graph.
	Builder func(batch int) (*graph.Graph, error)

	// serialFleet forces fleet groups to execute sequentially instead of on
	// goroutines — the determinism reference the race stress test compares
	// concurrent runs against.
	serialFleet bool

	// job is the live job Run registers; internal so resolveAll can update
	// progress without re-deriving state.
	job *obsrv.Job
}

// Layer is one executed node of the network.
type Layer struct {
	Name string
	Kind graph.Kind
	// Start is the node's start time on the network timeline; Seconds its
	// simulated execution time on the shared machine.
	Start   float64
	Seconds float64
	// BaselineSeconds is the manual-library time for the same node (stubs
	// cost the same in both runtimes; operators without a usable baseline
	// report their tuned time).
	BaselineSeconds float64
	FLOPs           int64
	// Cached/Degraded/Strategy/SpaceSize describe how the schedule was
	// resolved (operator nodes only).
	Cached    bool
	Degraded  bool
	Strategy  string
	SpaceSize int
	// Checked/MaxAbsErr report the functional-mode oracle comparison.
	Checked   bool
	MaxAbsErr float64
	// Trace is the node's timeline rebased to start at zero.
	Trace *trace.Log
}

// GFLOPS is the layer's simulated throughput (0 for the glue stubs).
func (l Layer) GFLOPS() float64 {
	if l.Seconds <= 0 || l.FLOPs == 0 {
		return 0
	}
	return float64(l.FLOPs) / l.Seconds / 1e9
}

// Execution modes a Result can report.
const (
	ModeSingle       = "single"
	ModeDataParallel = "data-parallel"
	ModePipeline     = "pipeline"
)

// GroupResult is one core group's share of a fleet run.
type GroupResult struct {
	// Group is the core-group index (metrics for it carry the
	// cluster.GroupPrefix namespace).
	Group int
	// Batch is the group's shard size in data-parallel mode, or the
	// micro-batch size (1) in pipeline mode.
	Batch int
	// Seconds is the group's own machine time: its full Elapsed() in
	// data-parallel mode, its summed stage-busy time in pipeline mode.
	Seconds  float64
	Counters sw26010.Counters
}

// StageReport is one pipeline stage of a pipelined fleet run.
type StageReport struct {
	// Group is the core group executing the stage.
	Group int
	// Nodes are the topo-order node names of the stage.
	Nodes []string
	// Seconds is the stage's execution time for one micro-batch;
	// TransferSeconds the modeled hand-off of its boundary activations to
	// the next stage (0 for the last stage).
	Seconds         float64
	TransferSeconds float64
}

// PipelineReport describes a pipelined fleet run's schedule.
type PipelineReport struct {
	MicroBatches int
	Stages       []StageReport
	// BubbleFraction is the fleet's idle share during the pipeline (fill
	// and drain); see cluster.PipelineSchedule.
	BubbleFraction float64
}

// Result is a completed network run.
type Result struct {
	Net    string
	Batch  int
	Layers []Layer
	// Seconds is the total machine time of the network. On a single
	// machine every node executes serially, so this is its final
	// Elapsed(); on a fleet it is the aggregate timeline — max group time
	// plus the gather in data-parallel mode, the pipeline makespan in
	// pipeline mode.
	Seconds float64
	// BaselineSeconds sums the per-layer manual-library times; Speedup is
	// their ratio (0 when the baseline was skipped).
	BaselineSeconds float64
	Speedup         float64
	FLOPs           int64
	// Timeline is the merged network timeline (per-layer logs shifted to
	// their start times).
	Timeline *trace.Log
	Counters sw26010.Counters
	Plan     Plan
	// Output holds the network output tensor after a functional run. A
	// data-parallel fleet run merges the groups' shard outputs back along
	// the batch dimension.
	Output *tensor.Tensor
	// CachedOps / DegradedOps / TunedOps count schedule resolutions by
	// kind across the operator nodes (summed over groups in a fleet run).
	TunedOps, CachedOps, DegradedOps int
	// Mode reports how the run executed: ModeSingle, ModeDataParallel or
	// ModePipeline.
	Mode string
	// CommSeconds is the modeled cross-group communication time of a fleet
	// run (the output gather, or the summed pipeline stage hand-offs).
	CommSeconds float64
	// Groups is the per-group breakdown of a fleet run (nil on the single
	// path).
	Groups []GroupResult
	// Pipeline is the stage partition and bubble report of a pipelined
	// run (nil otherwise).
	Pipeline *PipelineReport
}

// GFLOPS is the whole-network simulated throughput.
func (r *Result) GFLOPS() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.FLOPs) / r.Seconds / 1e9
}

// resolvedOp is one operator node's schedule resolution.
type resolvedOp struct {
	prog      *ir.Program
	strategy  string
	method    string // winning conv lowering method ("" for gemm/degraded)
	spaceSize int
	cached    bool
	degraded  bool
}

// Run executes a network end to end. Schedules are resolved first (cache
// hits, then tuning), buffers are planned, and every node then executes in
// topological order on one shared machine — so the network's total time is
// a single serialized timeline, deterministic across worker counts and
// across cached vs freshly-tuned runs (the engine re-executes the compiled
// program either way; it never trusts cached seconds).
func (e *Engine) Run(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if opts.Tolerance <= 0 {
		opts.Tolerance = 1e-3
	}
	if opts.Library != nil && opts.Metrics != nil {
		opts.Library.SetMetrics(opts.Metrics)
	}
	if opts.Library != nil && opts.Observer != nil {
		opts.Library.SetObserver(opts.Observer)
	}
	opts.job = opts.Observer.Jobs().Start("infer", g.Name)
	opts.Observer.Emit(obsrv.LevelInfo, "net.start",
		obsrv.F("net", g.Name), obsrv.F("batch", g.Batch),
		obsrv.F("nodes", len(g.Topo())))
	okDone := false
	defer func() {
		if !okDone {
			opts.job.Finish(obsrv.JobFailed)
		}
	}()
	if opts.Pipeline && opts.Groups <= 1 {
		return nil, fmt.Errorf("infer %s: pipeline mode needs at least 2 groups", g.Name)
	}
	if opts.Groups > 1 {
		res, err := e.runFleet(ctx, g, opts)
		if err != nil {
			opts.Observer.Emit(obsrv.LevelError, "net.fail",
				obsrv.F("net", g.Name), obsrv.F("error", err))
			return nil, err
		}
		finishRun(opts, g, res)
		okDone = true
		return res, nil
	}
	resolved, err := e.resolveAll(ctx, g, opts)
	if err != nil {
		opts.Observer.Emit(obsrv.LevelError, "net.fail",
			obsrv.F("net", g.Name), obsrv.F("error", err))
		return nil, err
	}
	opts.job.SetDetail("executing")
	plan := planBuffers(g)
	ts, err := allocTensors(g, resolved, plan, opts.Functional)
	if err != nil {
		return nil, err
	}

	m := sw26010.NewMachine()
	timeline := &trace.Log{}
	res := &Result{Net: g.Name, Batch: g.Batch, FLOPs: g.FLOPs(), Plan: plan, Mode: ModeSingle}
	env := execEnv{
		m:            m,
		reg:          opts.Metrics,
		obs:          opts.Observer,
		group:        -1,
		functional:   opts.Functional,
		tolerance:    opts.Tolerance,
		skipBaseline: opts.SkipBaseline,
		baseMemo:     map[string]float64{},
	}
	execT0 := time.Now()
	if err := e.execNodes(ctx, g, g.Topo(), resolved, ts, res, timeline, env); err != nil {
		return nil, err
	}

	res.Seconds = m.Elapsed()
	if opts.Spans != nil {
		opts.Spans.AddGroup(reqtrace.PhaseExec, "exec "+g.Name, 0, execT0, time.Since(execT0),
			map[string]string{"machine_ms": reqtrace.MsArg(res.Seconds * 1e3)})
	}
	res.Counters = m.Counters
	res.Timeline = timeline
	if !opts.SkipBaseline && res.Seconds > 0 {
		res.Speedup = res.BaselineSeconds / res.Seconds
	}
	if opts.Metrics != nil {
		res.Counters.Publish(opts.Metrics)
		opts.Metrics.Gauge("infer_arena_peak_bytes").Set(float64(plan.PeakActivationBytes()))
		opts.Metrics.Gauge("infer_machine_seconds").Add(res.Seconds)
		if dma := timeline.BusyTime(trace.KindDMA); dma > 0 {
			opts.Metrics.Gauge("infer_dma_hidden_ratio").
				Set(timeline.Overlap(trace.KindGemm, trace.KindDMA) / dma)
		}
	}
	if opts.Functional {
		res.Output = ts[g.Output]
	}
	finishRun(opts, g, res)
	okDone = true
	return res, nil
}

// finishRun emits the net.finish event and closes the run's live job.
func finishRun(opts Options, g *graph.Graph, res *Result) {
	if opts.Observer.Enabled() {
		opts.Observer.Emit(obsrv.LevelInfo, "net.finish",
			obsrv.F("net", g.Name), obsrv.Ms("seconds_ms", res.Seconds),
			obsrv.F("gflops", res.GFLOPS()), obsrv.F("speedup", res.Speedup),
			obsrv.F("tuned", res.TunedOps), obsrv.F("cached", res.CachedOps),
			obsrv.F("degraded", res.DegradedOps))
	}
	state := obsrv.JobDone
	if res.DegradedOps > 0 {
		state = obsrv.JobDegraded
	}
	opts.job.Finish(state)
}

// execEnv is one machine's execution context. The single path uses the
// root registry, no group tag and the run's baseline memo; fleet groups
// use a scoped registry (cluster.GroupPrefix) and their group index, so
// concurrent groups touch disjoint metric names and the merged snapshot
// stays deterministic.
type execEnv struct {
	m            *sw26010.Machine
	reg          *metrics.Registry
	obs          *obsrv.Observer
	group        int // >= 0 tags events with the core group; -1 on the single path
	functional   bool
	tolerance    float64
	skipBaseline bool
	baseMemo     map[string]float64
}

// label is the group tag threaded into exec observer events ("group2");
// empty on the single path.
func (env execEnv) label() string {
	if env.group < 0 {
		return ""
	}
	return fmt.Sprintf("group%d", env.group)
}

// execNodes executes nodes (a topo-order slice of g) on env's machine,
// appending per-layer results and resolution counts into res and merging
// node timelines (machine-clock times) into timeline. It is the shared
// execution core of the single-machine path, each data-parallel group and
// each pipeline stage.
func (e *Engine) execNodes(ctx context.Context, g *graph.Graph, nodes []*graph.Node,
	resolved map[string]*resolvedOp, ts map[string]*tensor.Tensor,
	res *Result, timeline *trace.Log, env execEnv) error {
	m := env.m
	for _, n := range nodes {
		if err := ctx.Err(); err != nil {
			return err
		}
		start := m.Now()
		nodeLog := &trace.Log{}
		layer := Layer{Name: n.Name, Kind: n.Kind, Start: start}

		switch n.Kind {
		case graph.Conv, graph.Gemm:
			r := resolved[n.Name]
			binds, err := opBinds(n, r.prog, ts)
			if err != nil {
				return fmt.Errorf("infer %s: node %s: %w", g.Name, n.Name, err)
			}
			runRes, err := exec.Run(r.prog, binds, exec.Options{
				Functional: env.functional,
				FastLoops:  !env.functional,
				Trace:      nodeLog,
				Machine:    m,
				Metrics:    env.reg,
				Observer:   env.obs,
				GroupLabel: env.label(),
			})
			if err != nil {
				return fmt.Errorf("infer %s: node %s: %w", g.Name, n.Name, err)
			}
			// Each generated kernel owns the whole scratch pad for its
			// invocation; release it before the successor plans its tiles.
			m.ResetSPM()
			layer.Seconds = runRes.Seconds
			layer.Strategy = r.strategy
			layer.Cached = r.cached
			layer.Degraded = r.degraded
			layer.SpaceSize = r.spaceSize
			if n.Kind == graph.Conv {
				layer.FLOPs = n.Conv.FLOPs()
			} else {
				layer.FLOPs = n.Gemm.FLOPs()
			}
			kindName := "gemm"
			if n.Kind == graph.Conv {
				kindName = "conv"
			}
			switch {
			case r.cached:
				res.CachedOps++
				env.reg.Counter("infer_" + kindName + "_cached_total").Inc()
			case r.degraded:
				res.DegradedOps++
				env.reg.Counter("infer_" + kindName + "_degraded_total").Inc()
			default:
				res.TunedOps++
				env.reg.Counter("infer_" + kindName + "_tuned_total").Inc()
			}
			if r.method != "" {
				env.reg.Counter("infer_method_" + r.method + "_total").Inc()
			}
			if env.functional {
				maxErr, err := verifyNode(n, ts)
				if err != nil {
					return fmt.Errorf("infer %s: node %s: %w", g.Name, n.Name, err)
				}
				layer.Checked = true
				layer.MaxAbsErr = maxErr
				if maxErr > env.tolerance {
					return fmt.Errorf("infer %s: node %s: max abs error %g exceeds tolerance %g",
						g.Name, n.Name, maxErr, env.tolerance)
				}
			}
		default:
			secs, err := runStub(m, g, n, ts, env.functional, nodeLog)
			if err != nil {
				return fmt.Errorf("infer %s: node %s: %w", g.Name, n.Name, err)
			}
			layer.Seconds = secs
		}

		// Stamp span metadata before merging: operator name, layer index
		// and (for operators) the selected strategy travel into the
		// Chrome-trace export.
		nodeLog.Annotate("op", n.Name)
		nodeLog.Annotate("layer", strconv.Itoa(len(res.Layers)))
		if layer.Strategy != "" {
			nodeLog.Annotate("strategy", layer.Strategy)
		}

		// The machine stamps events in its own clock already; merge them
		// straight onto the caller's timeline and keep a per-layer view
		// rebased to zero.
		timeline.Merge(0, nodeLog)
		layerLog := &trace.Log{}
		layerLog.Merge(-start, nodeLog)
		layer.Trace = layerLog

		if !env.skipBaseline {
			layer.BaselineSeconds = baselineSeconds(n, layer.Seconds, env.baseMemo)
			res.BaselineSeconds += layer.BaselineSeconds
		}
		if env.obs.Enabled() {
			fields := []obsrv.Field{obsrv.F("node", n.Name), obsrv.F("kind", string(n.Kind)),
				obsrv.Ms("seconds_ms", layer.Seconds)}
			if env.group >= 0 {
				fields = append(fields, obsrv.F("group", env.group))
			}
			env.obs.Emit(obsrv.LevelDebug, "layer.run", fields...)
		}
		res.Layers = append(res.Layers, layer)
	}
	return nil
}

// resolveAll resolves a schedule for every operator node. Repeated shapes
// (VGG16's conv3_2/conv3_3, …) share one resolution per run even without a
// library attached.
func (e *Engine) resolveAll(ctx context.Context, g *graph.Graph, opts Options) (map[string]*resolvedOp, error) {
	return e.resolveNodes(ctx, g, g.Topo(), opts)
}

// resolveNodes resolves schedules for the operator nodes in a topo-order
// subset of the graph — the hybrid data-parallel path resolves a shard
// graph's convolution head without tuning the fully-connected tail it
// never executes at the shard batch.
func (e *Engine) resolveNodes(ctx context.Context, g *graph.Graph, nodes []*graph.Node, opts Options) (map[string]*resolvedOp, error) {
	total := 0
	for _, n := range nodes {
		if n.Kind == graph.Conv || n.Kind == graph.Gemm {
			total++
		}
	}
	opts.job.SetTotal(total)
	memo := map[string]*resolvedOp{}
	out := map[string]*resolvedOp{}
	done := 0
	degraded := 0
	for _, n := range nodes {
		if n.Kind != graph.Conv && n.Kind != graph.Gemm {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var key string
		if n.Kind == graph.Conv {
			key = "conv:" + n.Conv.String()
		} else {
			key = "gemm:" + n.Gemm.String()
		}
		opts.job.SetDetail("resolving " + n.Name)
		resolveT0 := time.Now()
		r, ok := memo[key]
		if !ok {
			var err error
			if n.Kind == graph.Conv {
				r, err = e.resolveConv(ctx, n.Conv, opts)
			} else {
				r, err = e.resolveGemm(ctx, n.Gemm, opts)
			}
			if err != nil {
				return nil, fmt.Errorf("infer %s: node %s: %w", g.Name, n.Name, err)
			}
			memo[key] = r
		}
		out[n.Name] = r
		if opts.Spans != nil {
			opts.Spans.Add(reqtrace.PhaseResolve, "resolve "+n.Name, resolveT0, time.Since(resolveT0),
				map[string]string{
					"cached":   strconv.FormatBool(r.cached),
					"degraded": strconv.FormatBool(r.degraded),
					"memoized": strconv.FormatBool(ok),
					"strategy": r.strategy,
				})
		}
		done++
		if r.degraded {
			degraded++
			opts.Observer.Emit(obsrv.LevelWarn, "layer.degraded",
				obsrv.F("node", n.Name), obsrv.F("strategy", r.strategy))
		} else if opts.Observer.Enabled() {
			opts.Observer.Emit(obsrv.LevelInfo, "layer.resolved",
				obsrv.F("node", n.Name), obsrv.F("cached", r.cached),
				obsrv.F("method", r.method), obsrv.F("strategy", r.strategy))
		}
		opts.job.Progress(done, done-degraded, degraded, 0)
		if opts.Progress != nil {
			opts.Progress(n.Name, done, total)
		}
	}
	return out, nil
}

// resolveConv resolves a convolution node the way the paper's tuner does:
// every applicable lowering method (implicit GEMM when the input-channel
// count sustains it, explicit im2col, Winograd F(2x2,3x3) when the shape
// qualifies) is tuned — or fetched from the library — independently, each
// winner is re-timed on a fresh machine, and the fastest method's program
// is kept. The method sweep is a fixed order with strict improvement, so
// the choice is deterministic and identical between cached and fresh runs.
func (e *Engine) resolveConv(ctx context.Context, s conv.Shape, opts Options) (*resolvedOp, error) {
	type method struct {
		name string
		mk   func() (autotune.Operator, error)
	}
	var methods []method
	if s.Ni >= conv.MinNiImplicit {
		methods = append(methods, method{methodImplicit, func() (autotune.Operator, error) { return conv.NewImplicitOp(s) }})
	}
	methods = append(methods, method{methodExplicit, func() (autotune.Operator, error) { return conv.NewExplicitOp(s) }})
	if conv.WinogradApplies(s) {
		methods = append(methods, method{methodWinograd, func() (autotune.Operator, error) { return conv.NewWinogradOp(s) }})
	}

	var best *resolvedOp
	var bestSecs float64
	var firstErr error
	for _, m := range methods {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		op, err := m.mk()
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r, err := e.resolveOp(ctx, op, opts)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return nil, err
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		secs, err := timeProgram(r.prog)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		r.strategy = m.name + " " + r.strategy
		r.method = m.name
		if best == nil || secs < bestSecs {
			best, bestSecs = r, secs
		}
	}
	if best != nil {
		return best, nil
	}
	if firstErr == nil {
		firstErr = fmt.Errorf("no applicable conv method for %s", s.String())
	}
	if opts.Fallback {
		preferred := methodExplicit
		if s.Ni >= conv.MinNiImplicit {
			preferred = methodImplicit
		}
		return degrade(firstErr, func() (*ir.Program, error) { return baseline.FallbackConv(preferred, s) })
	}
	return nil, firstErr
}

// resolveGemm resolves a fully-connected node through the tiled-GEMM
// operator, degrading to the xMath-style baseline when allowed.
func (e *Engine) resolveGemm(ctx context.Context, p gemm.Params, opts Options) (*resolvedOp, error) {
	op, err := gemm.NewOp(p)
	if err != nil {
		return nil, err
	}
	r, err := e.resolveOp(ctx, op, opts)
	if err != nil {
		if opts.Fallback && !errors.Is(err, context.Canceled) {
			return degrade(err, func() (*ir.Program, error) { return baseline.FallbackGemm(p) })
		}
		return nil, err
	}
	return r, nil
}

// degrade builds the never-cached baseline-fallback resolution for a node
// whose tuning failed.
func degrade(tuneErr error, fallback func() (*ir.Program, error)) (*resolvedOp, error) {
	prog, ferr := fallback()
	if ferr != nil {
		return nil, fmt.Errorf("tuning failed (%v); baseline fallback also failed: %w", tuneErr, ferr)
	}
	return &resolvedOp{
		prog:     prog,
		strategy: fmt.Sprintf("baseline fallback (tuning failed: %v)", tuneErr),
		degraded: true,
	}, nil
}

// errNoTune marks a library miss while tuning is disabled (Options.NoTune):
// the caller either degrades to the baseline or surfaces the miss.
var errNoTune = errors.New("tuning disabled (schedule not in library)")

// resolveOp mirrors the facade tuner's cache-then-tune flow for one
// operator: a library hit recompiles the cached strategy (stale entries are
// dropped and retuned), a miss runs the model-based search and records the
// result.
func (e *Engine) resolveOp(ctx context.Context, op autotune.Operator, opts Options) (*resolvedOp, error) {
	if opts.Library != nil {
		if ent, ok := opts.Library.Get(op.Name()); ok {
			prog, err := op.Compile(ent.Strategy())
			if err == nil {
				return &resolvedOp{
					prog:      prog,
					strategy:  ent.Strategy().String(),
					spaceSize: ent.SpaceSize,
					cached:    true,
				}, nil
			}
			opts.Library.Delete(op.Name())
		}
	}
	if opts.NoTune {
		return nil, fmt.Errorf("%s: %w", op.Name(), errNoTune)
	}
	res, err := autotune.ModelBasedCtx(ctx, op, e.model, autotune.Options{
		Workers:              opts.Workers,
		Faults:               opts.Faults,
		Retry:                opts.Retry,
		MaxCandidateFailures: opts.MaxCandidateFailures,
		Metrics:              opts.Metrics,
		Observer:             opts.Observer,
		Searcher:             opts.Searcher,
		SearchBudget:         opts.SearchBudget,
		SearchSeed:           opts.SearchSeed,
		Transfer:             opts.Library,
	})
	if err != nil {
		return nil, err
	}
	if opts.Library != nil {
		opts.Library.Put(cache.FromStrategy(op.Name(), res.Best.Strategy, res.Best.Measured, res.Valid))
	}
	return &resolvedOp{
		prog:      res.Best.Program,
		strategy:  res.Best.Strategy.String(),
		spaceSize: res.Valid,
	}, nil
}

// graphTensorFor maps a program's operand declaration to the graph tensor
// it binds. The repo's three operator families agree on their declaration
// names: data input "in"/"B", weight "weight"/"weight2d"/"A", output
// "out"/"out2d"/"C".
func graphTensorFor(n *graph.Node, decl string) (string, error) {
	switch decl {
	case "in", "B":
		return n.In[0], nil
	case "weight", "weight2d", "A":
		return n.In[1], nil
	case "out", "out2d", "C":
		return n.Out, nil
	}
	return "", fmt.Errorf("program declares unknown operand %q", decl)
}

// opBinds builds the exec.Run binding map for one operator node from the
// engine's tensor table.
func opBinds(n *graph.Node, prog *ir.Program, ts map[string]*tensor.Tensor) (map[string]*tensor.Tensor, error) {
	binds := map[string]*tensor.Tensor{}
	for _, decl := range prog.Tensors {
		if decl.Scratch {
			continue
		}
		gname, err := graphTensorFor(n, decl.Name)
		if err != nil {
			return nil, err
		}
		t, ok := ts[gname]
		if !ok {
			return nil, fmt.Errorf("tensor %q not allocated", gname)
		}
		binds[decl.Name] = t
	}
	return binds, nil
}

// allocTensors materializes the engine's tensor table. Each graph tensor
// adjacent to an operator node takes the concrete dims and layout that
// operator's program declares (the explicit conv's 2-D out2d stands in for
// the logical 4-D feature map — a flat-order-preserving reshape), all
// others stay identity. In functional mode, arena-assigned activations
// share the two ping-pong buffers; everything else gets dedicated storage.
// Timed-only runs allocate no data at all.
func allocTensors(g *graph.Graph, resolved map[string]*resolvedOp, plan Plan, functional bool) (map[string]*tensor.Tensor, error) {
	type spec struct {
		dims   []int
		layout []int
	}
	specs := map[string]spec{}
	for _, t := range g.Tensors() {
		specs[t.Name] = spec{dims: t.Dims}
	}
	for _, n := range g.Topo() {
		r := resolved[n.Name]
		if r == nil {
			continue
		}
		for _, decl := range r.prog.Tensors {
			if decl.Scratch {
				continue
			}
			gname, err := graphTensorFor(n, decl.Name)
			if err != nil {
				return nil, fmt.Errorf("node %s: %w", n.Name, err)
			}
			gt, _ := g.Tensor(gname)
			if elemCount(decl.Dims) != elemCount(gt.Dims) {
				return nil, fmt.Errorf("node %s: operand %s has %v elements, graph tensor %s has %v",
					n.Name, decl.Name, decl.Dims, gname, gt.Dims)
			}
			specs[gname] = spec{dims: decl.Dims, layout: decl.Layout}
		}
	}

	var arenas [2][]float32
	if functional {
		arenas[0] = make([]float32, plan.ArenaElems[0])
		arenas[1] = make([]float32, plan.ArenaElems[1])
	}
	ts := map[string]*tensor.Tensor{}
	for _, gt := range g.Tensors() {
		sp := specs[gt.Name]
		layout := sp.layout
		if layout == nil {
			layout = make([]int, len(sp.dims))
			for i := range layout {
				layout[i] = i
			}
		}
		slot, inArena := plan.Slot[gt.Name]
		var t *tensor.Tensor
		var err error
		switch {
		case !functional:
			t, err = tensor.NewVirtual(gt.Name, sp.dims, layout)
		case inArena && slot >= 0:
			t, err = tensor.NewVirtual(gt.Name, sp.dims, layout)
			if err == nil {
				t.Data = arenas[slot][:t.Len()]
			}
		default:
			t, err = tensor.NewWithLayout(gt.Name, sp.dims, layout)
		}
		if err != nil {
			return nil, fmt.Errorf("tensor %s: %w", gt.Name, err)
		}
		ts[gt.Name] = t
	}

	if functional {
		fillInputs(g, ts)
	}
	return ts, nil
}

// fillInputs seeds the graph input with activations in [0,1) and every
// parameter with a deterministic pattern scaled by its fan-in, so
// activation magnitudes stay bounded through arbitrarily deep networks and
// per-layer oracle comparisons keep meaningful absolute tolerances.
func fillInputs(g *graph.Graph, ts map[string]*tensor.Tensor) {
	in := ts[g.Input]
	in.FillPattern()
	for i := range in.Data {
		in.Data[i] = (in.Data[i] + 4) / 8
	}
	for _, n := range g.Topo() {
		var fanIn int
		switch n.Kind {
		case graph.Conv:
			fanIn = n.Conv.Ni * n.Conv.Kr * n.Conv.Kc
		case graph.Gemm:
			fanIn = n.Gemm.K
		default:
			continue
		}
		w := ts[n.In[1]]
		w.FillPattern()
		scale := 1 / (4 * float32(fanIn))
		for i := range w.Data {
			w.Data[i] *= scale
		}
	}
}

// verifyNode compares an operator node's output against the reference
// oracle, reading concrete tensors through the logical flat order so
// operator-chosen layouts and reshapes fall away.
func verifyNode(n *graph.Node, ts map[string]*tensor.Tensor) (float64, error) {
	switch n.Kind {
	case graph.Conv:
		s := n.Conv
		in := ts[n.In[0]] // always the rank-4 pre-padded feature map
		w4 := tensor.New("wref", s.No, s.Ni, s.Kr, s.Kc)
		copyFlat(w4, ts[n.In[1]])
		want, err := tensor.ReferenceConv(in, w4, s)
		if err != nil {
			return 0, err
		}
		return maxAbsErrFlat(want, ts[n.Out])
	case graph.Gemm:
		want, err := tensor.ReferenceGemm(ts[n.In[1]], ts[n.In[0]], 1, 0)
		if err != nil {
			return 0, err
		}
		return maxAbsErrFlat(want, ts[n.Out])
	}
	return 0, nil
}

func copyFlat(dst, src *tensor.Tensor) {
	n := dst.Len()
	for f := 0; f < n; f++ {
		setFlat(dst, atFlat(src, f), f)
	}
}

func maxAbsErrFlat(want, got *tensor.Tensor) (float64, error) {
	if want.Len() != got.Len() {
		return 0, fmt.Errorf("oracle has %d elements, result %d", want.Len(), got.Len())
	}
	var maxErr float64
	for f := 0; f < want.Len(); f++ {
		d := float64(atFlat(want, f)) - float64(atFlat(got, f))
		if d < 0 {
			d = -d
		}
		if d > maxErr {
			maxErr = d
		}
	}
	return maxErr, nil
}

// baselineSeconds measures the manual-library implementation of a node on
// a fresh machine (swDNN implicit where its batch restriction allows,
// manual explicit-GEMM otherwise; xMath for the fully-connected layers).
// Glue stubs cost the same in both runtimes; an operator with no usable
// baseline conservatively reports the tuned time.
func baselineSeconds(n *graph.Node, tuned float64, memo map[string]float64) float64 {
	var key string
	var progs []func() (*ir.Program, error)
	switch n.Kind {
	case graph.Conv:
		s := n.Conv
		key = "conv:" + s.String()
		progs = []func() (*ir.Program, error){
			func() (*ir.Program, error) { return baseline.SwDNNImplicit(s) },
			func() (*ir.Program, error) { return baseline.ManualExplicit(s) },
		}
	case graph.Gemm:
		p := n.Gemm
		key = "gemm:" + p.String()
		progs = []func() (*ir.Program, error){
			func() (*ir.Program, error) { return baseline.XMathGemm(p) },
		}
	default:
		return tuned
	}
	if v, ok := memo[key]; ok {
		return v
	}
	v := tuned
	for _, mk := range progs {
		prog, err := mk()
		if err != nil {
			continue
		}
		if s, err := timeProgram(prog); err == nil {
			v = s
			break
		}
	}
	memo[key] = v
	return v
}

func timeProgram(prog *ir.Program) (float64, error) {
	binds, err := exec.BindVirtual(prog)
	if err != nil {
		return 0, err
	}
	res, err := exec.Run(prog, binds, exec.Options{FastLoops: true})
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}
