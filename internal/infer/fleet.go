package infer

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"swatop/internal/cluster"
	"swatop/internal/gemm"
	"swatop/internal/graph"
	"swatop/internal/reqtrace"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
	"swatop/internal/trace"
)

// This file is the core-group fleet runtime: the scale-out path of Run when
// Options.Groups > 1. Both modes keep the repo's determinism invariant by
// construction — schedules resolve sequentially up front, every group
// executes on its own machine with its own tensor table, concurrent groups
// write metrics only under disjoint cluster.GroupPrefix names, and all
// aggregation (counters, timelines, the fleet clock) happens after the
// groups join, in fixed group order.

// runFleet validates the fleet configuration and dispatches to the mode.
func (e *Engine) runFleet(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	if opts.Groups > sw26010.NumCG {
		return nil, fmt.Errorf("infer %s: %d groups, but one SW26010 node has %d core groups",
			g.Name, opts.Groups, sw26010.NumCG)
	}
	if opts.Builder == nil {
		return nil, fmt.Errorf("infer %s: fleet mode needs Options.Builder to rebuild the net at shard batch sizes", g.Name)
	}
	if opts.Pipeline {
		return e.runPipeline(ctx, g, opts)
	}
	return e.runDataParallel(ctx, g, opts)
}

// buildShard rebuilds and validates the network at a shard batch size.
func buildShard(g *graph.Graph, opts Options, batch int) (*graph.Graph, error) {
	sg, err := opts.Builder(batch)
	if err != nil {
		return nil, fmt.Errorf("infer %s: building batch-%d shard: %w", g.Name, batch, err)
	}
	if err := sg.Validate(); err != nil {
		return nil, fmt.Errorf("infer %s: batch-%d shard: %w", g.Name, batch, err)
	}
	if sg.Batch != batch {
		return nil, fmt.Errorf("infer %s: Builder(%d) built a batch-%d graph", g.Name, batch, sg.Batch)
	}
	return sg, nil
}

// batchDim returns the tensor's batch extent, checking the repo-wide
// batch-last convention the fleet's shard/merge copies rely on.
func batchDim(dims []int, batch int) (int, error) {
	if len(dims) == 0 || dims[len(dims)-1] != batch {
		return 0, fmt.Errorf("tensor dims %v do not end in the batch extent %d", dims, batch)
	}
	return dims[len(dims)-1], nil
}

// copyBatchSlice copies src's batch columns [off, off+n) into dst's batch
// columns [0, n) — or the reverse offsets when gathering (dstOff). Both
// tensors share the same logical flat order with batch as the fastest
// dimension, so the copy is layout- and reshape-agnostic.
func copyBatchSlice(dst *tensor.Tensor, dstB, dstOff int, src *tensor.Tensor, srcB, srcOff, n int) {
	outer := src.Len() / srcB
	for o := 0; o < outer; o++ {
		for b := 0; b < n; b++ {
			setFlat(dst, atFlat(src, o*srcB+srcOff+b), o*dstB+dstOff+b)
		}
	}
}

// fullInput builds the whole-batch input tensor a functional data-parallel
// run shards from, filled exactly like fillInputs fills the single-machine
// input.
func fullInput(g *graph.Graph) *tensor.Tensor {
	gt, _ := g.Tensor(g.Input)
	in := tensor.New(g.Input, gt.Dims...)
	in.FillPattern()
	for i := range in.Data {
		in.Data[i] = (in.Data[i] + 4) / 8
	}
	return in
}

// shardPlan is one distinct shard batch size's rebuilt graph, resolved
// schedules and buffer plan.
type shardPlan struct {
	g        *graph.Graph
	resolved map[string]*resolvedOp
	plan     Plan
}

// runGroups executes fn(0..G-1), concurrently unless the serial
// determinism reference is requested.
func runGroups(G int, serial bool, fn func(int)) {
	if serial {
		for i := 0; i < G; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < G; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// runDataParallel shards the batch across the groups and runs the net
// concurrently. Networks whose graph ends in a fully-connected tail take
// the hybrid path (swCaffe's split: batch-sharded convolutions, then
// column-sharded fc layers so each group loads only 1/G of the fc weights);
// everything else runs the full net on every group's shard, fleet time =
// slowest group plus the modeled gather of the shard outputs.
func (e *Engine) runDataParallel(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	G := opts.Groups
	shards, err := cluster.ShardBatch(g.Batch, G)
	if err != nil {
		return nil, fmt.Errorf("infer %s: %w", g.Name, err)
	}
	fleet, err := cluster.New(G)
	if err != nil {
		return nil, fmt.Errorf("infer %s: %w", g.Name, err)
	}
	topo := g.Topo()
	tailStart, hybrid := hybridTail(g, topo)

	// Resolve schedules once per distinct shard size, sequentially — the
	// library and tuner are never touched while groups execute. The hybrid
	// path resolves only the convolution head at shard batch; its fc tail
	// executes as full-batch column shards resolved separately below. A
	// zero shard (batch < groups) has no graph to build: that group idles.
	plans := map[int]*shardPlan{}
	for _, b := range shards {
		if b == 0 || plans[b] != nil {
			continue
		}
		sg, err := buildShard(g, opts, b)
		if err != nil {
			return nil, err
		}
		st := sg.Topo()
		if len(st) != len(topo) {
			return nil, fmt.Errorf("infer %s: batch-%d shard has %d nodes, the full graph %d",
				g.Name, b, len(st), len(topo))
		}
		nodes := st
		if hybrid {
			nodes = st[:tailStart]
		}
		resolved, err := e.resolveNodes(ctx, sg, nodes, opts)
		if err != nil {
			return nil, err
		}
		plans[b] = &shardPlan{g: sg, resolved: resolved, plan: planBuffers(sg)}
	}
	if hybrid {
		return e.runHybridDP(ctx, g, opts, fleet, shards, plans, tailStart)
	}
	opts.job.SetDetail(fmt.Sprintf("executing on %d groups", G))

	var fullIn *tensor.Tensor
	if opts.Functional {
		if _, err := batchDim(mustDims(g, g.Input), g.Batch); err != nil {
			return nil, fmt.Errorf("infer %s: input: %w", g.Name, err)
		}
		if _, err := batchDim(mustDims(g, g.Output), g.Batch); err != nil {
			return nil, fmt.Errorf("infer %s: output: %w", g.Name, err)
		}
		fullIn = fullInput(g)
	}
	offs := make([]int, G)
	for i := 1; i < G; i++ {
		offs[i] = offs[i-1] + shards[i-1]
	}

	groups := make([]*Result, G)
	errs := make([]error, G)
	run := func(i int) {
		if shards[i] == 0 {
			// Empty shard: skipped, not executed — the group contributes
			// nothing and its machine clock stays at zero.
			return
		}
		sp := plans[shards[i]]
		ts, err := allocTensors(sp.g, sp.resolved, sp.plan, opts.Functional)
		if err != nil {
			errs[i] = err
			return
		}
		if opts.Functional {
			// Every shard sees its true slice of the whole-batch input, so
			// the gathered output is the whole-batch answer.
			fillInputs(sp.g, ts)
			copyBatchSlice(ts[sp.g.Input], shards[i], 0, fullIn, g.Batch, offs[i], shards[i])
		}
		env := execEnv{
			m:            fleet.Machine(i),
			reg:          opts.Metrics.Scope(cluster.GroupPrefix(i)),
			obs:          opts.Observer,
			group:        i,
			functional:   opts.Functional,
			tolerance:    opts.Tolerance,
			skipBaseline: true,
		}
		res := &Result{Net: sp.g.Name, Batch: shards[i], FLOPs: sp.g.FLOPs(), Plan: sp.plan}
		timeline := &trace.Log{}
		execT0 := time.Now()
		if err := e.execNodes(ctx, sp.g, sp.g.Topo(), sp.resolved, ts, res, timeline, env); err != nil {
			errs[i] = err
			return
		}
		res.Seconds = env.m.Elapsed()
		if opts.Spans != nil {
			opts.Spans.AddGroup(reqtrace.PhaseExec, fmt.Sprintf("exec shard b%d", shards[i]), i,
				execT0, time.Since(execT0),
				map[string]string{"machine_ms": reqtrace.MsArg(res.Seconds * 1e3)})
		}
		res.Timeline = timeline
		if opts.Functional {
			res.Output = ts[sp.g.Output]
		}
		groups[i] = res
	}
	runGroups(G, opts.serialFleet, run)
	for i := 0; i < G; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}

	// Aggregate in fixed group order — the join point where the fleet
	// becomes deterministic regardless of goroutine interleaving.
	res := &Result{
		Net: g.Name, Batch: g.Batch, FLOPs: g.FLOPs(),
		Plan: plans[shards[0]].plan, Mode: ModeDataParallel,
		Layers: groups[0].Layers,
	}
	maxSecs := 0.0
	active := 0
	timeline := &trace.Log{}
	var agg sw26010.Counters
	for i, gr := range groups {
		if gr == nil {
			// Idle group (zero shard): it appears in the report with zero
			// batch and zero seconds, keeping the scale-out story honest.
			res.Groups = append(res.Groups, GroupResult{Group: i})
			continue
		}
		active++
		if gr.Seconds > maxSecs {
			maxSecs = gr.Seconds
		}
		timeline.MergeGroup(i, 0, gr.Timeline)
		agg.Accumulate(fleet.Machine(i).Counters)
		res.TunedOps += gr.TunedOps
		res.CachedOps += gr.CachedOps
		res.DegradedOps += gr.DegradedOps
		res.Groups = append(res.Groups, GroupResult{
			Group: i, Batch: shards[i], Seconds: gr.Seconds,
			Counters: fleet.Machine(i).Counters,
		})
	}
	outBytes := int64(elemCount(mustDims(g, g.Output))) * 4
	// Only groups that ran contribute shard outputs to the gather.
	res.CommSeconds = cluster.GatherSeconds(outBytes, active)
	gatherSrcs := make([]string, 0, active)
	for i, gr := range groups {
		if gr != nil {
			gatherSrcs = append(gatherSrcs, fmt.Sprintf("group%d", i))
		}
	}
	timeline.AddGroupArgs(0, trace.KindComm, "gather outputs", maxSecs, res.CommSeconds,
		map[string]string{"src": strings.Join(gatherSrcs, ","), "dst": "group0"})
	res.Seconds = maxSecs + res.CommSeconds
	res.Counters = agg
	res.Timeline = timeline

	if opts.Functional {
		gt, _ := g.Tensor(g.Output)
		out := tensor.New(g.Output, gt.Dims...)
		for i, gr := range groups {
			if gr == nil {
				continue
			}
			copyBatchSlice(out, g.Batch, offs[i], gr.Output, shards[i], 0, shards[i])
		}
		res.Output = out
	}
	publishFleet(opts, fleet, res)
	return res, nil
}

// hybridTail locates the fully-connected tail of a graph and reports
// whether the hybrid data-parallel split applies: a suffix of the topo
// order, starting at the first Gemm node, forming a single chain of Gemm
// and ReLU nodes whose output features vectorize. This is swCaffe's hybrid
// parallelism: convolutions are compute-bound and shard well by batch, but
// fully-connected layers are weight-DMA-bound — running them whole on
// every group would reload the full weight matrices G times and cap the
// fleet speedup, so they shard by output columns instead.
func hybridTail(g *graph.Graph, topo []*graph.Node) (int, bool) {
	start := -1
	for i, n := range topo {
		if n.Kind == graph.Gemm {
			start = i
			break
		}
	}
	if start < 0 {
		return 0, false
	}
	cur := g.Input
	if start > 0 {
		cur = topo[start-1].Out
	}
	for _, n := range topo[start:] {
		switch n.Kind {
		case graph.Gemm:
			if len(n.In) != 2 || n.In[0] != cur || n.Gemm.M%sw26010.VectorWidth != 0 {
				return 0, false
			}
		case graph.ReLU:
			if len(n.In) != 1 || n.In[0] != cur {
				return 0, false
			}
		default:
			return 0, false
		}
		cur = n.Out
	}
	return start, true
}

// shardCols splits m output features across G groups in whole vector
// blocks, extras to the leading groups — every shard stays vectorizable
// and a trailing group may legitimately receive zero columns of a tiny
// layer (it just sits that phase out).
func shardCols(m, G int) []int {
	blocks := m / sw26010.VectorWidth
	base, extra := blocks/G, blocks%G
	w := make([]int, G)
	for i := range w {
		w[i] = base * sw26010.VectorWidth
		if i < extra {
			w[i] += sw26010.VectorWidth
		}
	}
	return w
}

// miniPlan is one resolved single-node graph of the hybrid fc tail.
type miniPlan struct {
	g        *graph.Graph
	resolved map[string]*resolvedOp
	plan     Plan
}

// tailPlan is one fc-tail node's sharding: per-group column widths and the
// resolved mini graph per distinct width (key 0 for the unsharded
// elementwise ops). fullW carries the functional-mode full weight values
// the shards slice their rows from.
type tailPlan struct {
	node   *graph.Node
	widths []int
	offs   []int
	minis  map[int]*miniPlan
	fullW  *tensor.Tensor
}

// buildGemmShard builds the single-node graph of one group's column shard
// of a fully-connected layer: out[width×B] = weight[width×K] × in[K×B].
func buildGemmShard(net string, n *graph.Node, width, batch int) (*graph.Graph, error) {
	sg := graph.New(fmt.Sprintf("%s_%s_w%d", net, n.Name, width), batch)
	if _, err := sg.AddTensor("input", []int{n.Gemm.K, batch}, false); err != nil {
		return nil, err
	}
	sg.Input = "input"
	if _, err := sg.AddTensor("weight", []int{width, n.Gemm.K}, true); err != nil {
		return nil, err
	}
	if _, err := sg.AddTensor("out", []int{width, batch}, false); err != nil {
		return nil, err
	}
	if err := sg.AddNode(&graph.Node{
		Name: n.Name, Kind: graph.Gemm, In: []string{"input", "weight"}, Out: "out",
		Gemm: gemm.Params{M: width, N: batch, K: n.Gemm.K},
	}); err != nil {
		return nil, err
	}
	sg.Output = "out"
	return sg, sg.Validate()
}

// buildEltwiseShard builds the single-node graph of a tail elementwise op
// over the full activation (every group runs it redundantly after the
// all-gather, like the duplicated activations of tensor parallelism).
func buildEltwiseShard(net string, n *graph.Node, feats, batch int) (*graph.Graph, error) {
	sg := graph.New(fmt.Sprintf("%s_%s_full", net, n.Name), batch)
	if _, err := sg.AddTensor("input", []int{feats, batch}, false); err != nil {
		return nil, err
	}
	sg.Input = "input"
	if _, err := sg.AddTensor("out", []int{feats, batch}, false); err != nil {
		return nil, err
	}
	if err := sg.AddNode(&graph.Node{
		Name: n.Name, Kind: n.Kind, In: []string{"input"}, Out: "out",
	}); err != nil {
		return nil, err
	}
	sg.Output = "out"
	return sg, sg.Validate()
}

// sliceRows copies rows [off, off+w) of the full [M,K] weight into a
// shard's [w,K] weight through the logical flat order, so the shard
// computes exactly its slice of the single-machine layer.
func sliceRows(dst, src *tensor.Tensor, off, w, k int) {
	for m := 0; m < w; m++ {
		for j := 0; j < k; j++ {
			setFlat(dst, atFlat(src, (off+m)*k+j), m*k+j)
		}
	}
}

// gatherRows copies a shard's [w,B] output into rows [off, off+w) of the
// full [M,B] activation.
func gatherRows(dst, src *tensor.Tensor, off, w, b int) {
	for m := 0; m < w; m++ {
		for j := 0; j < b; j++ {
			setFlat(dst, atFlat(src, m*b+j), (off+m)*b+j)
		}
	}
}

// addCommEvents stamps one cross-group collective on every group's
// timeline row, each event labeled with its own group as the source and
// the collective's destination ("all groups" for an all-gather, a specific
// group for a gather) so overlapping collectives stay distinguishable in
// the Gantt legend.
func addCommEvents(l *trace.Log, G int, name, dst string, start, dur float64) {
	if dur <= 0 {
		return
	}
	for i := 0; i < G; i++ {
		l.AddGroupArgs(i, trace.KindComm, name, start, dur,
			map[string]string{"src": fmt.Sprintf("group%d", i), "dst": dst})
	}
}

// runHybridDP executes the hybrid data-parallel split: the convolution
// head runs batch-sharded (each group its slice of the batch), the
// activations are all-gathered, and the fully-connected tail runs
// column-sharded at the full batch — each group loads 1/G of the fc
// weights, which is what lets a weight-DMA-bound tail scale with the
// fleet. Every tail layer is a lockstep phase joined by a barrier, so the
// fleet clock and all aggregates are computed in fixed group order from
// per-machine simulated quantities: bit-identical across worker counts
// and goroutine interleavings.
func (e *Engine) runHybridDP(ctx context.Context, g *graph.Graph, opts Options,
	fleet *cluster.Fleet, shards []int, plans map[int]*shardPlan, tailStart int) (*Result, error) {
	G := opts.Groups
	topo := g.Topo()
	B := g.Batch

	// Column shards and resolved mini graphs for every tail node —
	// sequential, like all schedule resolution.
	tails := make([]*tailPlan, 0, len(topo)-tailStart)
	for _, n := range topo[tailStart:] {
		tp := &tailPlan{node: n, minis: map[int]*miniPlan{}}
		if n.Kind == graph.Gemm {
			tp.widths = shardCols(n.Gemm.M, G)
			tp.offs = make([]int, G)
			for i := 1; i < G; i++ {
				tp.offs[i] = tp.offs[i-1] + tp.widths[i-1]
			}
			for _, w := range tp.widths {
				if w == 0 || tp.minis[w] != nil {
					continue
				}
				mg, err := buildGemmShard(g.Name, n, w, B)
				if err != nil {
					return nil, fmt.Errorf("infer %s: node %s: %w", g.Name, n.Name, err)
				}
				resolved, err := e.resolveNodes(ctx, mg, mg.Topo(), opts)
				if err != nil {
					return nil, err
				}
				tp.minis[w] = &miniPlan{g: mg, resolved: resolved, plan: planBuffers(mg)}
			}
			if opts.Functional {
				fw := tensor.New(n.In[1], mustDims(g, n.In[1])...)
				fw.FillPattern()
				scale := 1 / (4 * float32(n.Gemm.K))
				for i := range fw.Data {
					fw.Data[i] *= scale
				}
				tp.fullW = fw
			}
		} else {
			feats := elemCount(mustDims(g, n.Out)) / B
			mg, err := buildEltwiseShard(g.Name, n, feats, B)
			if err != nil {
				return nil, fmt.Errorf("infer %s: node %s: %w", g.Name, n.Name, err)
			}
			tp.minis[0] = &miniPlan{g: mg, resolved: map[string]*resolvedOp{}, plan: planBuffers(mg)}
		}
		tails = append(tails, tp)
	}
	opts.job.SetDetail(fmt.Sprintf("executing on %d groups (hybrid fc tail)", G))

	var fullIn *tensor.Tensor
	if opts.Functional {
		if _, err := batchDim(mustDims(g, g.Input), B); err != nil {
			return nil, fmt.Errorf("infer %s: input: %w", g.Name, err)
		}
		fullIn = fullInput(g)
	}
	offs := make([]int, G)
	for i := 1; i < G; i++ {
		offs[i] = offs[i-1] + shards[i-1]
	}
	envs := make([]execEnv, G)
	for i := 0; i < G; i++ {
		envs[i] = execEnv{
			m:            fleet.Machine(i),
			reg:          opts.Metrics.Scope(cluster.GroupPrefix(i)),
			obs:          opts.Observer,
			group:        i,
			functional:   opts.Functional,
			tolerance:    opts.Tolerance,
			skipBaseline: true,
		}
	}

	res := &Result{
		Net: g.Name, Batch: B, FLOPs: g.FLOPs(),
		Plan: plans[shards[0]].plan, Mode: ModeDataParallel,
	}
	timeline := &trace.Log{}
	errs := make([]error, G)

	// Phase 1: the convolution head, batch-sharded exactly like the pure
	// data-parallel path.
	headOut := g.Input
	if tailStart > 0 {
		headOut = topo[tailStart-1].Out
	}
	headRes := make([]*Result, G)
	headFeat := make([]*tensor.Tensor, G)
	runGroups(G, opts.serialFleet, func(i int) {
		if shards[i] == 0 {
			// Empty shard: no head work. The group still joins the
			// column-sharded fc tail after the all-gather.
			return
		}
		sp := plans[shards[i]]
		ts, err := allocTensors(sp.g, sp.resolved, sp.plan, opts.Functional)
		if err != nil {
			errs[i] = err
			return
		}
		if opts.Functional {
			fillInputs(sp.g, ts)
			copyBatchSlice(ts[sp.g.Input], shards[i], 0, fullIn, B, offs[i], shards[i])
		}
		r := &Result{}
		log := &trace.Log{}
		execT0 := time.Now()
		if err := e.execNodes(ctx, sp.g, sp.g.Topo()[:tailStart], sp.resolved, ts, r, log, envs[i]); err != nil {
			errs[i] = err
			return
		}
		if opts.Spans != nil {
			opts.Spans.AddGroup(reqtrace.PhaseExec, fmt.Sprintf("exec conv head b%d", shards[i]), i,
				execT0, time.Since(execT0),
				map[string]string{"machine_ms": reqtrace.MsArg(envs[i].m.Elapsed() * 1e3)})
		}
		r.Timeline = log
		headRes[i] = r
		if opts.Functional {
			headFeat[i] = ts[headOut]
		}
	})
	for i := 0; i < G; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	clock := 0.0
	for i := 0; i < G; i++ {
		if headRes[i] == nil {
			continue
		}
		if now := fleet.Machine(i).Now(); now > clock {
			clock = now
		}
		timeline.MergeGroup(i, 0, headRes[i].Timeline)
		res.TunedOps += headRes[i].TunedOps
		res.CachedOps += headRes[i].CachedOps
		res.DegradedOps += headRes[i].DegradedOps
	}
	res.Layers = append(res.Layers, headRes[0].Layers...)

	var fullAct *tensor.Tensor
	if opts.Functional {
		if tailStart == 0 {
			fullAct = fullIn
		} else {
			fullAct = tensor.New(headOut, mustDims(g, headOut)...)
			for i := 0; i < G; i++ {
				if headFeat[i] == nil {
					continue
				}
				copyBatchSlice(fullAct, B, offs[i], headFeat[i], shards[i], 0, shards[i])
			}
		}
	}
	var comm float64
	if tailStart > 0 {
		step := cluster.AllGatherSeconds(int64(elemCount(mustDims(g, headOut)))*4, G)
		addCommEvents(timeline, G, "allgather "+headOut, "all groups", clock, step)
		clock += step
		comm += step
	}

	// Phase 2: the fc tail. Each layer is one lockstep phase — shard gemms
	// (or the redundant full elementwise op), barrier, then the modeled
	// collective: all-gather between layers, a plain gather onto the lead
	// group for the final output.
	for ti, tp := range tails {
		n := tp.node
		phaseStart := clock
		durs := make([]float64, G)
		t0s := make([]float64, G)
		logs := make([]*trace.Log, G)
		rs := make([]*Result, G)
		outs := make([]*tensor.Tensor, G)
		runGroups(G, opts.serialFleet, func(i int) {
			key := 0
			if n.Kind == graph.Gemm {
				if tp.widths[i] == 0 {
					return
				}
				key = tp.widths[i]
			}
			mp := tp.minis[key]
			ts, err := allocTensors(mp.g, mp.resolved, mp.plan, opts.Functional)
			if err != nil {
				errs[i] = err
				return
			}
			if opts.Functional {
				copyFlat(ts[mp.g.Input], fullAct)
				if n.Kind == graph.Gemm {
					sliceRows(ts["weight"], tp.fullW, tp.offs[i], tp.widths[i], n.Gemm.K)
				}
			}
			t0 := envs[i].m.Now()
			r := &Result{}
			log := &trace.Log{}
			execT0 := time.Now()
			if err := e.execNodes(ctx, mp.g, mp.g.Topo(), mp.resolved, ts, r, log, envs[i]); err != nil {
				errs[i] = err
				return
			}
			t0s[i] = t0
			durs[i] = envs[i].m.Now() - t0
			if opts.Spans != nil {
				opts.Spans.AddGroup(reqtrace.PhaseExec, "exec fc "+n.Name, i, execT0, time.Since(execT0),
					map[string]string{"machine_ms": reqtrace.MsArg(durs[i] * 1e3)})
			}
			logs[i] = log
			rs[i] = r
			if opts.Functional {
				outs[i] = ts[mp.g.Output]
			}
		})
		for i := 0; i < G; i++ {
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		dmax := 0.0
		for i := 0; i < G; i++ {
			if rs[i] == nil {
				continue
			}
			if durs[i] > dmax {
				dmax = durs[i]
			}
			timeline.MergeGroup(i, phaseStart-t0s[i], logs[i])
			res.TunedOps += rs[i].TunedOps
			res.CachedOps += rs[i].CachedOps
			res.DegradedOps += rs[i].DegradedOps
		}
		// One report line per net layer: the lead group's shard run,
		// restamped onto the fleet clock, carrying the whole layer's FLOPs.
		layer := rs[0].Layers[0]
		layer.Start = phaseStart
		if n.Kind == graph.Gemm {
			layer.FLOPs = n.Gemm.FLOPs()
		}
		res.Layers = append(res.Layers, layer)
		clock = phaseStart + dmax
		if n.Kind == graph.Gemm {
			bytes := int64(elemCount(mustDims(g, n.Out))) * 4
			var step float64
			var what, dst string
			if ti == len(tails)-1 {
				step = cluster.GatherSeconds(bytes, G)
				what = "gather " + n.Name
				dst = "group0"
			} else {
				step = cluster.AllGatherSeconds(bytes, G)
				what = "allgather " + n.Name
				dst = "all groups"
			}
			addCommEvents(timeline, G, what, dst, clock, step)
			clock += step
			comm += step
		}
		if opts.Functional {
			if n.Kind == graph.Gemm {
				act := tensor.New(n.Out, mustDims(g, n.Out)...)
				for i := 0; i < G; i++ {
					if outs[i] == nil {
						continue
					}
					gatherRows(act, outs[i], tp.offs[i], tp.widths[i], B)
				}
				fullAct = act
			} else {
				fullAct = outs[0]
			}
		}
	}

	res.Seconds = clock
	res.CommSeconds = comm
	var agg sw26010.Counters
	for i := 0; i < G; i++ {
		agg.Accumulate(fleet.Machine(i).Counters)
		res.Groups = append(res.Groups, GroupResult{
			Group: i, Batch: shards[i], Seconds: fleet.Machine(i).Elapsed(),
			Counters: fleet.Machine(i).Counters,
		})
	}
	res.Counters = agg
	res.Timeline = timeline
	if opts.Functional {
		res.Output = fullAct
	}
	publishFleet(opts, fleet, res)
	return res, nil
}

// runPipeline partitions the net into Groups balanced stages by per-layer
// tuned cost and streams Batch micro-batches of size 1 through them. The
// fleet time comes from the pipeline schedule over measured per-stage
// micro-batch durations and modeled stage hand-offs. Timed-only.
func (e *Engine) runPipeline(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	if opts.Functional {
		return nil, fmt.Errorf("infer %s: pipeline mode is timed-only (activations stream between groups; use data parallelism for functional runs)", g.Name)
	}
	G := opts.Groups
	M := g.Batch // micro-batch size 1: one micro-batch per sample
	mg, err := buildShard(g, opts, 1)
	if err != nil {
		return nil, err
	}
	topo := mg.Topo()
	if len(topo) < G {
		return nil, fmt.Errorf("infer %s: %d nodes cannot fill %d pipeline stages", g.Name, len(topo), G)
	}
	resolved, err := e.resolveAll(ctx, mg, opts)
	if err != nil {
		return nil, err
	}
	plan := planBuffers(mg)

	// Probe pass: one sequential micro-batch on a scratch machine yields
	// the per-layer tuned costs the partitioner balances. Purely simulated
	// quantities, so the partition is deterministic.
	opts.job.SetDetail("partitioning pipeline stages")
	probeTs, err := allocTensors(mg, resolved, plan, false)
	if err != nil {
		return nil, err
	}
	probe := &Result{}
	probeEnv := execEnv{m: sw26010.NewMachine(), group: -1, skipBaseline: true}
	if err := e.execNodes(ctx, mg, topo, resolved, probeTs, probe, &trace.Log{}, probeEnv); err != nil {
		return nil, err
	}
	costs := make([]float64, len(probe.Layers))
	for i, l := range probe.Layers {
		costs[i] = l.Seconds
	}
	stages, err := cluster.PartitionBalanced(costs, G)
	if err != nil {
		return nil, fmt.Errorf("infer %s: %w", g.Name, err)
	}
	xfer := make([]float64, G-1)
	for s := 0; s < G-1; s++ {
		xfer[s] = cluster.StageTransferSeconds(cutBytes(mg, topo, stages[s][1]))
	}

	// Execute: stage s runs its node range M times on group s's machine.
	// Stages are independent machines, so they run concurrently; the
	// schedule joins them afterwards in fixed order.
	opts.job.SetDetail(fmt.Sprintf("executing %d stages x %d micro-batches", G, M))
	fleet, err := cluster.New(G)
	if err != nil {
		return nil, fmt.Errorf("infer %s: %w", g.Name, err)
	}
	d := make([][]float64, G)
	segStart := make([][]float64, G)
	segLogs := make([][]*trace.Log, G)
	stageLayers := make([][]Layer, G)
	errs := make([]error, G)
	run := func(s int) {
		ts, err := allocTensors(mg, resolved, plan, false)
		if err != nil {
			errs[s] = err
			return
		}
		env := execEnv{
			m:            fleet.Machine(s),
			reg:          opts.Metrics.Scope(cluster.GroupPrefix(s)),
			obs:          opts.Observer,
			group:        s,
			skipBaseline: true,
		}
		nodes := topo[stages[s][0]:stages[s][1]]
		d[s] = make([]float64, M)
		segStart[s] = make([]float64, M)
		segLogs[s] = make([]*trace.Log, M)
		execT0 := time.Now()
		for mi := 0; mi < M; mi++ {
			t0 := env.m.Now()
			log := &trace.Log{}
			r := &Result{}
			if err := e.execNodes(ctx, mg, nodes, resolved, ts, r, log, env); err != nil {
				errs[s] = err
				return
			}
			d[s][mi] = env.m.Now() - t0
			segStart[s][mi] = t0
			segLogs[s][mi] = log
			if mi == 0 {
				stageLayers[s] = r.Layers
			}
		}
		if opts.Spans != nil {
			opts.Spans.AddGroup(reqtrace.PhaseExec,
				fmt.Sprintf("exec stage %d x%d", s, M), s, execT0, time.Since(execT0),
				map[string]string{"machine_ms": reqtrace.MsArg(env.m.Elapsed() * 1e3)})
		}
	}
	runGroups(G, opts.serialFleet, run)
	for s := 0; s < G; s++ {
		if errs[s] != nil {
			return nil, errs[s]
		}
	}

	sched, err := cluster.SchedulePipeline(d, xfer)
	if err != nil {
		return nil, fmt.Errorf("infer %s: %w", g.Name, err)
	}

	res := &Result{
		Net: g.Name, Batch: g.Batch, FLOPs: g.FLOPs(), Plan: plan,
		Mode:        ModePipeline,
		Seconds:     sched.TotalSeconds,
		CommSeconds: sched.CommSeconds,
		Pipeline: &PipelineReport{
			MicroBatches:   M,
			BubbleFraction: sched.BubbleFraction,
		},
	}
	timeline := &trace.Log{}
	var agg sw26010.Counters
	for s := 0; s < G; s++ {
		// Rebase each micro-run from its machine-local clock onto the
		// fleet-schedule clock; intra-run structure shifts rigidly.
		for mi := 0; mi < M; mi++ {
			timeline.MergeGroup(s, sched.Start[s][mi]-segStart[s][mi], segLogs[s][mi])
			if s < G-1 && xfer[s] > 0 {
				timeline.AddGroupArgs(s, trace.KindComm,
					fmt.Sprintf("stage %d->%d", s, s+1), sched.Finish[s][mi], xfer[s],
					map[string]string{
						"src": fmt.Sprintf("group%d", s),
						"dst": fmt.Sprintf("group%d", s+1),
					})
			}
		}
		agg.Accumulate(fleet.Machine(s).Counters)
		stage := StageReport{Group: s, Seconds: d[s][0]}
		for _, n := range topo[stages[s][0]:stages[s][1]] {
			stage.Nodes = append(stage.Nodes, n.Name)
		}
		if s < G-1 {
			stage.TransferSeconds = xfer[s]
		}
		res.Pipeline.Stages = append(res.Pipeline.Stages, stage)
		res.Groups = append(res.Groups, GroupResult{
			Group: s, Batch: 1, Seconds: sched.BusySeconds[s],
			Counters: fleet.Machine(s).Counters,
		})
		// Fleet-clock layer views for micro-batch 0.
		for _, l := range stageLayers[s] {
			l.Start += sched.Start[s][0] - segStart[s][0]
			res.Layers = append(res.Layers, l)
		}
	}
	// Resolution counts describe the net once, not once per micro-batch:
	// take them from the probe pass.
	res.TunedOps = probe.TunedOps
	res.CachedOps = probe.CachedOps
	res.DegradedOps = probe.DegradedOps
	res.Counters = agg
	res.Timeline = timeline
	publishFleet(opts, fleet, res)
	return res, nil
}

// cutBytes sums the bytes of intermediate activations crossing the stage
// boundary before topo index cut: tensors produced by a node before the cut
// and read by a node at or after it. Parameters and the graph input stay
// resident on their stage's group and do not transfer.
func cutBytes(g *graph.Graph, topo []*graph.Node, cut int) int64 {
	producer := map[string]int{}
	for i, n := range topo {
		producer[n.Out] = i
	}
	seen := map[string]bool{}
	var bytes int64
	for j := cut; j < len(topo); j++ {
		for _, in := range topo[j].In {
			p, ok := producer[in]
			if !ok || p >= cut || seen[in] {
				continue
			}
			seen[in] = true
			bytes += int64(elemCount(mustDims(g, in))) * 4
		}
	}
	return bytes
}

// mustDims returns a graph tensor's logical dims (validated graphs always
// have their tensors declared).
func mustDims(g *graph.Graph, name string) []int {
	t, _ := g.Tensor(name)
	return t.Dims
}

// publishFleet writes a fleet run's instrumentation: per-group and
// aggregate machine counters (cluster.Fleet.Publish), the aggregate run
// gauges, and the fleet's DMA-hidden ratio measured over the merged
// timeline. Called after the groups join, sequentially — metric values are
// pure simulated-machine quantities, so snapshots stay bit-identical across
// worker counts and interleavings.
func publishFleet(opts Options, fleet *cluster.Fleet, res *Result) {
	if opts.Metrics == nil {
		return
	}
	fleet.Publish(opts.Metrics)
	opts.Metrics.Gauge("infer_arena_peak_bytes").Set(float64(res.Plan.PeakActivationBytes()))
	opts.Metrics.Gauge("infer_machine_seconds").Add(res.Seconds)
	opts.Metrics.Gauge("infer_comm_seconds").Set(res.CommSeconds)
	if dma := res.Timeline.BusyTime(trace.KindDMA); dma > 0 {
		opts.Metrics.Gauge("infer_dma_hidden_ratio").
			Set(res.Timeline.Overlap(trace.KindGemm, trace.KindDMA) / dma)
	}
}
