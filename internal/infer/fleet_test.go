package infer

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"swatop/internal/cache"
	"swatop/internal/graph"
	"swatop/internal/metrics"
	"swatop/internal/sw26010"
	"swatop/internal/workloads"
)

// fleetOpts is the shared fleet configuration of these tests: batches
// shard through tinyBuilder, baselines are skipped (forced in fleet mode
// anyway) and schedules come from the shared library.
func fleetOpts(lib *cache.Library, groups int) Options {
	return Options{
		Workers: 2,
		Library: lib,
		Groups:  groups,
		Builder: tinyBuilder,
	}
}

// TestFleetDataParallelDeterministic is the scale-out acceptance test at
// tiny size: per-group and aggregate machine seconds must be bit-identical
// across repeated concurrent runs, worker counts and the serial reference,
// groups=1 must reproduce the single-machine path, and four groups must
// actually run the batch faster than one.
func TestFleetDataParallelDeterministic(t *testing.T) {
	e := newEngine(t)
	lib := cache.NewLibrary()
	ctx := context.Background()
	g := tinyChain(t, 8)

	single, err := e.Run(ctx, g, Options{Workers: 2, Library: lib, SkipBaseline: true, Groups: 1})
	if err != nil {
		t.Fatal(err)
	}
	if single.Mode != ModeSingle || single.Groups != nil {
		t.Fatalf("groups=1 must take the single path: mode %q, groups %v", single.Mode, single.Groups)
	}

	for _, G := range []int{2, 4} {
		opts := fleetOpts(lib, G)
		a, err := e.Run(ctx, tinyChain(t, 8), opts)
		if err != nil {
			t.Fatalf("groups=%d: %v", G, err)
		}
		if a.Mode != ModeDataParallel {
			t.Fatalf("mode = %q", a.Mode)
		}
		if len(a.Groups) != G {
			t.Fatalf("groups=%d: %d group results", G, len(a.Groups))
		}
		if a.CommSeconds <= 0 || a.Seconds <= a.CommSeconds {
			t.Fatalf("groups=%d: seconds %g, comm %g", G, a.Seconds, a.CommSeconds)
		}
		if a.Timeline.Groups() != G {
			t.Fatalf("groups=%d: timeline has %d group rows", G, a.Timeline.Groups())
		}
		if !strings.Contains(a.Timeline.Gantt(60), "group1") {
			t.Fatalf("groups=%d: gantt missing group rows:\n%s", G, a.Timeline.Gantt(60))
		}
		batchSum := 0
		for i, gr := range a.Groups {
			if gr.Group != i || gr.Seconds <= 0 {
				t.Fatalf("group result %d wrong: %+v", i, gr)
			}
			batchSum += gr.Batch
		}
		if batchSum != 8 {
			t.Fatalf("groups=%d: shards sum to %d", G, batchSum)
		}
		// Each group runs a quarter (half) of the batch: the fleet must
		// finish the batch faster than the single machine.
		if a.Seconds >= single.Seconds {
			t.Fatalf("groups=%d: fleet %g s not faster than single %g s", G, a.Seconds, single.Seconds)
		}

		// Repeat with a different worker count, and serially: everything
		// must be bit-identical.
		b, err := e.Run(ctx, tinyChain(t, 8), Options{Workers: 4, Library: lib, Groups: G, Builder: tinyBuilder})
		if err != nil {
			t.Fatal(err)
		}
		sOpts := fleetOpts(lib, G)
		sOpts.serialFleet = true
		c, err := e.Run(ctx, tinyChain(t, 8), sOpts)
		if err != nil {
			t.Fatal(err)
		}
		for _, other := range []*Result{b, c} {
			if other.Seconds != a.Seconds || other.CommSeconds != a.CommSeconds {
				t.Fatalf("groups=%d: aggregate drifted: %g/%g vs %g/%g",
					G, other.Seconds, other.CommSeconds, a.Seconds, a.CommSeconds)
			}
			for i := range a.Groups {
				if other.Groups[i].Seconds != a.Groups[i].Seconds {
					t.Fatalf("groups=%d: group %d seconds drifted: %g vs %g",
						G, i, other.Groups[i].Seconds, a.Groups[i].Seconds)
				}
				if other.Groups[i].Counters != a.Groups[i].Counters {
					t.Fatalf("groups=%d: group %d counters drifted", G, i)
				}
			}
		}
	}
}

// TestFleetSnapshotBitIdentical is the -race stress test: four groups
// executing concurrently must leave the shared registry in exactly the
// state the serial reference produces — per-group namespaces make every
// concurrent write land on a disjoint name, and aggregation happens after
// the join.
func TestFleetSnapshotBitIdentical(t *testing.T) {
	e := newEngine(t)
	lib := cache.NewLibrary()
	ctx := context.Background()

	// Warm the library so every compared run resolves fully cached.
	if _, err := e.Run(ctx, tinyChain(t, 8), fleetOpts(lib, 4)); err != nil {
		t.Fatal(err)
	}

	snapshotJSON := func(serial bool) []byte {
		reg := metrics.NewRegistry()
		opts := fleetOpts(lib, 4)
		opts.Metrics = reg
		opts.serialFleet = serial
		if _, err := e.Run(ctx, tinyChain(t, 8), opts); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.Snapshot().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	want := snapshotJSON(true)
	if !bytes.Contains(want, []byte("group3_machine_dma_ops_total")) ||
		!bytes.Contains(want, []byte("group2_exec_runs_total")) {
		t.Fatalf("snapshot missing per-group namespaces:\n%s", want)
	}
	for i := 0; i < 3; i++ {
		if got := snapshotJSON(false); !bytes.Equal(got, want) {
			t.Fatalf("concurrent snapshot %d differs from serial reference.\ngot:\n%s\nwant:\n%s", i, got, want)
		}
	}
}

// TestFleetFunctionalMerge runs the fleet with real data: each group
// computes its true slice of the whole batch and the gathered output must
// match the single-machine whole-batch run (both are within the oracle
// tolerance of the same reference, so they agree to twice that).
func TestFleetFunctionalMerge(t *testing.T) {
	e := newEngine(t)
	lib := cache.NewLibrary()
	ctx := context.Background()

	single, err := e.Run(ctx, tinyChain(t, 4), Options{
		Workers: 2, Library: lib, Functional: true, SkipBaseline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := fleetOpts(lib, 2)
	opts.Functional = true
	fleet, err := e.Run(ctx, tinyChain(t, 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fleet.Output == nil || fleet.Output.Len() != single.Output.Len() {
		t.Fatalf("fleet output missing or mis-sized: %v vs %v", fleet.Output, single.Output)
	}
	maxErr := 0.0
	for f := 0; f < single.Output.Len(); f++ {
		d := math.Abs(float64(atFlat(single.Output, f)) - float64(atFlat(fleet.Output, f)))
		if d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 2e-3 {
		t.Fatalf("merged fleet output drifts %g from the single-machine run", maxErr)
	}
}

// TestFleetPipeline checks the layer-pipelined mode: balanced contiguous
// stages covering every node, a deterministic schedule with a reported
// bubble fraction, and per-group rows on the merged timeline.
func TestFleetPipeline(t *testing.T) {
	e := newEngine(t)
	lib := cache.NewLibrary()
	ctx := context.Background()

	opts := fleetOpts(lib, 2)
	opts.Pipeline = true
	a, err := e.Run(ctx, tinyChain(t, 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mode != ModePipeline || a.Pipeline == nil {
		t.Fatalf("mode %q, pipeline %v", a.Mode, a.Pipeline)
	}
	if a.Pipeline.MicroBatches != 4 {
		t.Fatalf("micro-batches = %d", a.Pipeline.MicroBatches)
	}
	if len(a.Pipeline.Stages) != 2 {
		t.Fatalf("stages = %d", len(a.Pipeline.Stages))
	}
	nodeCount := 0
	for s, st := range a.Pipeline.Stages {
		if st.Group != s || len(st.Nodes) == 0 || st.Seconds <= 0 {
			t.Fatalf("stage %d wrong: %+v", s, st)
		}
		nodeCount += len(st.Nodes)
	}
	topoLen := len(tinyChain(t, 1).Topo())
	if nodeCount != topoLen {
		t.Fatalf("stages cover %d nodes, graph has %d", nodeCount, topoLen)
	}
	if a.Pipeline.Stages[0].TransferSeconds <= 0 {
		t.Fatal("stage 0 must report a hand-off cost")
	}
	if a.Pipeline.BubbleFraction <= 0 || a.Pipeline.BubbleFraction >= 1 {
		t.Fatalf("bubble fraction = %g", a.Pipeline.BubbleFraction)
	}
	if a.CommSeconds <= 0 {
		t.Fatalf("comm seconds = %g", a.CommSeconds)
	}
	// The makespan covers every stage's busy time plus fill/drain.
	for s, gr := range a.Groups {
		if a.Seconds < gr.Seconds {
			t.Fatalf("makespan %g shorter than stage %d busy %g", a.Seconds, s, gr.Seconds)
		}
	}
	if a.Timeline.Groups() != 2 {
		t.Fatalf("timeline has %d group rows", a.Timeline.Groups())
	}
	// Micro-batch-0 layer views cover the whole net on the fleet clock.
	if len(a.Layers) != topoLen {
		t.Fatalf("%d layers, want %d", len(a.Layers), topoLen)
	}

	// Deterministic: concurrent and serial stages agree bit for bit.
	sOpts := fleetOpts(lib, 2)
	sOpts.Pipeline = true
	sOpts.serialFleet = true
	b, err := e.Run(ctx, tinyChain(t, 4), sOpts)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seconds != a.Seconds || b.CommSeconds != a.CommSeconds ||
		b.Pipeline.BubbleFraction != a.Pipeline.BubbleFraction {
		t.Fatalf("pipeline schedule drifted: %g/%g/%g vs %g/%g/%g",
			b.Seconds, b.CommSeconds, b.Pipeline.BubbleFraction,
			a.Seconds, a.CommSeconds, a.Pipeline.BubbleFraction)
	}
}

// TestFleetEmptyShards is the groups > batch regression test: zero shards
// are skipped, not executed — the run succeeds, idle groups appear in the
// report with zero batch and zero seconds, the functional output still
// matches the single-machine run, and the result stays deterministic.
func TestFleetEmptyShards(t *testing.T) {
	e := newEngine(t)
	lib := cache.NewLibrary()
	ctx := context.Background()

	// Hybrid path (tiny has an fc tail): batch 2 across 4 groups leaves two
	// groups with no head work; they still take their fc column shards.
	single, err := e.Run(ctx, tinyChain(t, 2), Options{
		Workers: 2, Library: lib, SkipBaseline: true, Functional: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := fleetOpts(lib, 4)
	opts.Functional = true
	fleet, err := e.Run(ctx, tinyChain(t, 2), opts)
	if err != nil {
		t.Fatalf("batch 2 on 4 groups: %v", err)
	}
	if fleet.Mode != ModeDataParallel || len(fleet.Groups) != 4 {
		t.Fatalf("mode %q with %d group rows", fleet.Mode, len(fleet.Groups))
	}
	batchSum := 0
	for _, gr := range fleet.Groups {
		batchSum += gr.Batch
	}
	if batchSum != 2 {
		t.Fatalf("group batches sum to %d, want 2: %+v", batchSum, fleet.Groups)
	}
	if fleet.Groups[2].Batch != 0 || fleet.Groups[3].Batch != 0 {
		t.Fatalf("trailing groups should be idle: %+v", fleet.Groups)
	}
	if fleet.Seconds <= 0 {
		t.Fatalf("fleet seconds %g", fleet.Seconds)
	}
	maxErr := 0.0
	for f := 0; f < single.Output.Len(); f++ {
		d := math.Abs(float64(atFlat(single.Output, f)) - float64(atFlat(fleet.Output, f)))
		if d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 2e-3 {
		t.Fatalf("output drifts %g from the single-machine run", maxErr)
	}
	again, err := e.Run(ctx, tinyChain(t, 2), opts)
	if err != nil {
		t.Fatal(err)
	}
	if again.Seconds != fleet.Seconds {
		t.Fatalf("nondeterministic: %.17g vs %.17g", again.Seconds, fleet.Seconds)
	}

	// Pure data-parallel path (no fc tail): the idle group's machine never
	// runs, and the comm model gathers only from the groups that did.
	convOnly := func(batch int) (*graph.Graph, error) {
		return graph.Chain("convnet", batch,
			[]workloads.ConvLayer{
				{Net: "convnet", Name: "c1", Ni: 3, No: 16, R: 8, K: 3},
			}, nil)
	}
	g, err := convOnly(2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(ctx, g, Options{
		Workers: 2, Library: lib, Groups: 3, Builder: convOnly, SkipBaseline: true,
	})
	if err != nil {
		t.Fatalf("conv-only batch 2 on 3 groups: %v", err)
	}
	if len(res.Groups) != 3 || res.Groups[2].Batch != 0 || res.Groups[2].Seconds != 0 {
		t.Fatalf("idle group row wrong: %+v", res.Groups)
	}
	if res.Seconds <= 0 {
		t.Fatalf("fleet seconds %g", res.Seconds)
	}
}

// TestFleetValidation pins the fleet's error surface.
func TestFleetValidation(t *testing.T) {
	e := newEngine(t)
	lib := cache.NewLibrary()
	ctx := context.Background()

	cases := []struct {
		name  string
		batch int
		mut   func(*Options)
		want  string
	}{
		{"pipeline without groups", 4, func(o *Options) { o.Groups = 1; o.Pipeline = true }, "at least 2 groups"},
		{"functional pipeline", 4, func(o *Options) { o.Pipeline = true; o.Functional = true }, "timed-only"},
		{"too many groups", 8, func(o *Options) { o.Groups = sw26010.NumCG + 1 }, "core groups"},
		{"missing builder", 8, func(o *Options) { o.Builder = nil }, "Builder"},
	}
	for _, c := range cases {
		opts := fleetOpts(lib, 2)
		c.mut(&opts)
		_, err := e.Run(ctx, tinyChain(t, c.batch), opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}
