package infer

import "swatop/internal/graph"

// Plan is the engine's main-memory buffer-reuse plan for one network. The
// sequential graphs the runtime executes alternate between two activation
// arenas: the tensor produced by node i lives in arena i%2, is read by node
// i+1 (which writes the other arena), and its storage is recycled when node
// i+2 produces into the same slot. One layer's output therefore feeds the
// next without any copy or re-binding, and the activation footprint of the
// whole network collapses to the two largest adjacent feature maps instead
// of the sum of all of them.
//
// Parameters, the graph input and the graph output never enter the arenas:
// they must survive the whole run. An activation whose last reader runs
// later than the node after its producer would be clobbered by the
// recycling rule, so the planner pins it to dedicated storage instead —
// the safety valve that keeps the plan correct for any valid graph, not
// just straight chains.
type Plan struct {
	// Slot maps each activation tensor to its arena (0 or 1), or -1 for
	// dedicated storage. Parameters and the graph input/output do not
	// appear.
	Slot map[string]int
	// ArenaElems is the element capacity of each arena: the largest
	// tensor assigned to that slot.
	ArenaElems [2]int
	// DedicatedBytes is the storage pinned outside the arenas for
	// long-lived activations.
	DedicatedBytes int64
	// IOBytes is the graph input + output storage.
	IOBytes int64
	// ParamBytes is the model-parameter storage.
	ParamBytes int64
	// NaiveBytes is what the activations would occupy without reuse (every
	// tensor dedicated) — the denominator of the reuse win.
	NaiveBytes int64
}

// ArenaBytes is the total float32 storage of both arenas.
func (p Plan) ArenaBytes() int64 {
	return 4 * (int64(p.ArenaElems[0]) + int64(p.ArenaElems[1]))
}

// PeakActivationBytes is the planned activation footprint: both arenas plus
// any pinned tensors.
func (p Plan) PeakActivationBytes() int64 {
	return p.ArenaBytes() + p.DedicatedBytes
}

// planBuffers computes the ping-pong assignment for a validated graph.
func planBuffers(g *graph.Graph) Plan {
	nodes := g.Topo()
	produced := map[string]int{} // tensor -> producing node position
	lastUse := map[string]int{}  // tensor -> last reading node position
	for i, n := range nodes {
		produced[n.Out] = i
		for _, in := range n.In {
			lastUse[in] = i
		}
	}
	p := Plan{Slot: map[string]int{}}
	for _, t := range g.Tensors() {
		switch {
		case t.Param:
			p.ParamBytes += t.Bytes()
		case t.Name == g.Input || t.Name == g.Output:
			p.IOBytes += t.Bytes()
		default:
			p.NaiveBytes += t.Bytes()
			i := produced[t.Name]
			slot := i % 2
			// Arena i%2 is recycled when node i+2 produces into it; a
			// reader after node i+1 would see the successor's data.
			if lastUse[t.Name] > i+1 {
				slot = -1
			}
			p.Slot[t.Name] = slot
			if slot < 0 {
				p.DedicatedBytes += t.Bytes()
				continue
			}
			if elems := int(t.Bytes() / 4); elems > p.ArenaElems[slot] {
				p.ArenaElems[slot] = elems
			}
		}
	}
	return p
}
