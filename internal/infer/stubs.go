package infer

import (
	"fmt"

	"swatop/internal/graph"
	"swatop/internal/sw26010"
	"swatop/internal/tensor"
	"swatop/internal/trace"
)

// The glue layers between tuned operators (ReLU, 2×2 max-pooling, zero-pad
// re-materialization, flatten) are memory-bound streaming kernels: every
// CPE pulls a tile of the feature map into SPM, applies a trivial per-
// element function and puts the result back. Their time model is the
// longer of the two channels that overlap in such a kernel — the DMA time
// of the bytes moved at effective bandwidth, and the per-element compute
// spread over the 64 CPEs.
func stubSeconds(bytes int64, elems int64, cyclesPerElem float64) float64 {
	dma := float64(bytes)/sw26010.DMAEffBandwidth + sw26010.DMAStartupSeconds
	cpu := sw26010.Seconds(cyclesPerElem * float64(elems) / sw26010.NumCPE)
	if cpu > dma {
		return cpu
	}
	return dma
}

// atFlat reads element `flat` of the tensor's logical row-major order.
// Concrete tensors may carry an operator-chosen layout or even a reshaped
// rank (the explicit conv's 2-D out2d standing in for a 4-D feature map);
// the logical flat order is the one thing all of them share, so the glue
// layers index through it.
func atFlat(t *tensor.Tensor, flat int) float32 {
	off := 0
	for d := len(t.Dims) - 1; d >= 0; d-- {
		off += (flat % t.Dims[d]) * t.Strides[d]
		flat /= t.Dims[d]
	}
	return t.Data[off]
}

// setFlat writes element `flat` of the tensor's logical row-major order.
func setFlat(t *tensor.Tensor, v float32, flat int) {
	off := 0
	for d := len(t.Dims) - 1; d >= 0; d-- {
		off += (flat % t.Dims[d]) * t.Strides[d]
		flat /= t.Dims[d]
	}
	t.Data[off] = v
}

func elemCount(dims []int) int {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return n
}

// runStub executes one glue node on the shared machine: it advances the
// compute clock by the stub's modelled time, records a transform event on
// the timeline, and (functionally) computes the real data through the
// logical-flat-order accessors so operator-chosen layouts never matter.
func runStub(m *sw26010.Machine, g *graph.Graph, n *graph.Node, ts map[string]*tensor.Tensor,
	functional bool, log *trace.Log) (float64, error) {
	inDims := graphDims(g, n.In[0])
	outDims := graphDims(g, n.Out)
	in, out := ts[n.In[0]], ts[n.Out]
	inElems, outElems := elemCount(inDims), elemCount(outDims)

	var secs float64
	switch n.Kind {
	case graph.ReLU:
		secs = stubSeconds(int64(8*outElems), int64(outElems), 1)
		if functional {
			for f := 0; f < outElems; f++ {
				v := atFlat(in, f)
				if v < 0 {
					v = 0
				}
				setFlat(out, v, f)
			}
		}
	case graph.Flatten:
		// The (C,H,W,B) -> (C·H·W, B) reshape preserves the logical flat
		// order exactly, so the "kernel" is a straight streaming copy.
		secs = stubSeconds(int64(8*outElems), int64(outElems), 0.5)
		if functional {
			for f := 0; f < outElems; f++ {
				setFlat(out, atFlat(in, f), f)
			}
		}
	case graph.Pad:
		secs = stubSeconds(int64(4*(inElems+outElems)), int64(outElems), 1)
		if functional {
			c, h, w, b := inDims[0], inDims[1], inDims[2], inDims[3]
			oh, ow := outDims[1], outDims[2]
			for f := 0; f < outElems; f++ {
				setFlat(out, 0, f)
			}
			for ci := 0; ci < c; ci++ {
				for hi := 0; hi < h; hi++ {
					for wi := 0; wi < w; wi++ {
						for bi := 0; bi < b; bi++ {
							src := ((ci*h+hi)*w+wi)*b + bi
							dst := ((ci*oh+hi+n.KR)*ow+(wi+n.KC))*b + bi
							setFlat(out, atFlat(in, src), dst)
						}
					}
				}
			}
		}
	case graph.MaxPool:
		// Each output element reads a 2×2 window and writes once.
		secs = stubSeconds(int64(4*(inElems+outElems)), int64(outElems), 4)
		if functional {
			c, h, w, b := outDims[0], outDims[1], outDims[2], outDims[3]
			ih, iw := inDims[1], inDims[2]
			for ci := 0; ci < c; ci++ {
				for hi := 0; hi < h; hi++ {
					for wi := 0; wi < w; wi++ {
						for bi := 0; bi < b; bi++ {
							f00 := ((ci*ih+2*hi)*iw+2*wi)*b + bi
							f01 := ((ci*ih+2*hi)*iw+2*wi+1)*b + bi
							f10 := ((ci*ih+2*hi+1)*iw+2*wi)*b + bi
							f11 := ((ci*ih+2*hi+1)*iw+2*wi+1)*b + bi
							v := atFlat(in, f00)
							for _, f := range [3]int{f01, f10, f11} {
								if x := atFlat(in, f); x > v {
									v = x
								}
							}
							setFlat(out, v, ((ci*h+hi)*w+wi)*b+bi)
						}
					}
				}
			}
		}
	default:
		return 0, fmt.Errorf("node %s: kind %q is not a glue stub", n.Name, n.Kind)
	}

	start := m.Now()
	m.AdvanceCompute(secs)
	m.Counters.TransformOps++
	if log != nil {
		log.Add(trace.KindTransform, string(n.Kind)+" "+n.Name, start, secs)
	}
	return m.Now() - start, nil
}

func graphDims(g *graph.Graph, name string) []int {
	t, _ := g.Tensor(name)
	return t.Dims
}
