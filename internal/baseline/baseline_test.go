package baseline

import (
	"testing"

	"swatop/internal/conv"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/tensor"
)

func TestSwDNNRejectsBatchOne(t *testing.T) {
	s := conv.Shape{B: 1, Ni: 64, No: 64, Ro: 16, Co: 16, Kr: 3, Kc: 3}
	if _, err := SwDNNImplicit(s); err == nil {
		t.Fatal("swDNN must reject batch 1 (Fig. 5's missing manual bars)")
	}
}

func TestSwDNNImplicitCorrect(t *testing.T) {
	s := conv.Shape{B: 32, Ni: 24, No: 20, Ro: 6, Co: 6, Kr: 3, Kc: 3}
	prog, err := SwDNNImplicit(s)
	if err != nil {
		t.Fatal(err)
	}
	binds, err := conv.Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(prog, binds, exec.Options{Functional: true}); err != nil {
		t.Fatalf("exec: %v", err)
	}
	want, err := tensor.ReferenceConv(binds["in"], binds["weight"], s)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, binds["out"]); d > 5e-2 {
		t.Fatalf("swDNN baseline wrong by %g", d)
	}
}

func TestXMathGemmCorrectUnaligned(t *testing.T) {
	p := gemm.Params{M: 100, N: 52, K: 40}
	prog, err := XMathGemm(p)
	if err != nil {
		t.Fatal(err)
	}
	binds, err := gemm.Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(prog, binds, exec.Options{Functional: true}); err != nil {
		t.Fatalf("exec: %v", err)
	}
	want, _ := tensor.ReferenceGemm(binds["A"], binds["B"], 1, 0)
	if d, _ := tensor.MaxAbsDiff(want, binds["C"]); d > 2e-2 {
		t.Fatalf("xMath baseline wrong by %g", d)
	}
}

func TestXMathUsesSpecializedKernels(t *testing.T) {
	prog, err := XMathGemm(gemm.Params{M: 512, N: 512, K: 512})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	ir.Walk(prog.Body, func(s ir.Stmt) bool {
		if g, ok := s.(*ir.Gemm); ok && g.Specialized {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("xMath program should carry specialized GEMM calls")
	}
}

func TestManualWinogradCorrect(t *testing.T) {
	s := conv.Shape{B: 2, Ni: 8, No: 8, Ro: 6, Co: 6, Kr: 3, Kc: 3}
	prog, err := ManualWinograd(s)
	if err != nil {
		t.Fatal(err)
	}
	binds, err := conv.Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(prog, binds, exec.Options{Functional: true}); err != nil {
		t.Fatalf("exec: %v", err)
	}
	want, _ := tensor.ReferenceConv(binds["in"], binds["weight"], s)
	if d, _ := tensor.MaxAbsDiff(want, binds["out"]); d > 5e-2 {
		t.Fatalf("manual winograd wrong by %g", d)
	}
}

func TestManualExplicitCorrect(t *testing.T) {
	s := conv.Shape{B: 2, Ni: 4, No: 8, Ro: 6, Co: 6, Kr: 3, Kc: 3}
	prog, err := ManualExplicit(s)
	if err != nil {
		t.Fatal(err)
	}
	binds, err := conv.Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Run(prog, binds, exec.Options{Functional: true}); err != nil {
		t.Fatalf("exec: %v", err)
	}
	w4 := tensor.NewConvFilter(s)
	for no := 0; no < s.No; no++ {
		for ni := 0; ni < s.Ni; ni++ {
			for kr := 0; kr < s.Kr; kr++ {
				for kc := 0; kc < s.Kc; kc++ {
					w4.Set(binds["weight2d"].At(no, (ni*s.Kr+kr)*s.Kc+kc), no, ni, kr, kc)
				}
			}
		}
	}
	want, _ := tensor.ReferenceConv(binds["in"], w4, s)
	got, err := conv.ExplicitOutput4D(binds["out2d"], s)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, got); d > 5e-2 {
		t.Fatalf("manual explicit wrong by %g", d)
	}
}

func TestXMathBlockSnapping(t *testing.T) {
	cases := map[int]int{8192: 256, 256: 256, 200: 256, 100: 128, 64: 64}
	for in, want := range cases {
		if got := xmathBlock(in); got != want {
			t.Errorf("xmathBlock(%d) = %d, want %d", in, got, want)
		}
	}
	if manualBlock(300) != 256 || manualBlock(50) != 48 || manualBlock(3) != 3 {
		t.Fatalf("manualBlock wrong: %d %d %d", manualBlock(300), manualBlock(50), manualBlock(3))
	}
}
