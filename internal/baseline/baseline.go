// Package baseline implements the hand-optimized comparison targets of the
// paper's evaluation, expressed as fixed schedules in swATOP's own IR so
// they run on the same simulated machine:
//
//   - swDNN (Fang et al., IPDPS'17): the manual implicit convolution —
//     batch ≥ 32 only, one expertly chosen blocking tuned for large
//     training layers, traditional whole-tensor padding for odd shapes.
//   - xMath (Jiang et al., ICPP'17): the manual GEMM — large square
//     blocking, traditional padding, plus the hand-tuned assembly
//     micro-kernel variant on exactly-aligned tiles (a specialization
//     outside swATOP's schedule space, which is why xMath keeps a small
//     edge on its sweet spot — Table 2's "slower" rows).
//   - Manual Winograd / explicit convolution: the pre-swATOP approach of
//     calling xMath routines per GEMM with unfused, one-channel-at-a-time
//     transform phases.
package baseline

import (
	"fmt"
	"strings"
	"sync"

	"swatop/internal/autotune"

	"swatop/internal/conv"
	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/lower"
	"swatop/internal/primitives"
)

// LibraryDispatchSeconds is the per-routine-call overhead of the manual
// libraries: athread kernel spawn, argument marshalling and workspace
// setup (~80 µs on SW26010). swATOP compiles each operator into one fused
// kernel and pays it zero times; manual Winograd pays it per xMath call.
const LibraryDispatchSeconds = 8.0e-5

// SwDNNBatchMultiple is swDNN's batch-size requirement: its register
// blocking hardcodes batch strips of 32.
const SwDNNBatchMultiple = 32

// swDNN's frozen schedule: the expert authors tuned their single blocking
// for a large training layer (a conv4-class VGG layer at batch 128) and
// shipped it. The baseline reproduces that process once per process — an
// exhaustive model-free pick on the reference shape over the restricted
// design space a 2017-era manual implementation explored (no column
// fusion, batch-dimension vectorization only) — then applies the frozen
// schedule rigidly to every layer, with traditional padding for shapes its
// blocking does not divide.
var (
	swdnnOnce sync.Once
	swdnnRef  dsl.Strategy
	swdnnErr  error
)

func swdnnFrozenStrategy() (dsl.Strategy, error) {
	swdnnOnce.Do(func() {
		ref := conv.Shape{B: 128, Ni: 512, No: 512, Ro: 28, Co: 28, Kr: 3, Kc: 3}
		op, err := conv.NewImplicitOp(ref)
		if err != nil {
			swdnnErr = err
			return
		}
		sp := op.Space()
		sp.Vecs = []ir.VecDim{ir.VecN} // swDNN vectorizes the batch strip
		// swDNN's register blocking hardcodes 4 output pixels per weight
		// residency — a fixed fusion width, where swATOP tunes it.
		sp.Factors["co"] = []int{clampFactor(4, ref.Co)}
		res, err := autotune.BlackBox(op) // the experts measured, at length
		if err != nil {
			swdnnErr = err
			return
		}
		swdnnRef = res.Best.Strategy
	})
	return swdnnRef, swdnnErr
}

// SwDNNImplicit compiles the swDNN manual implicit convolution. It fails
// for batch sizes it does not support (notably batch 1 — Fig. 5's missing
// bars).
func SwDNNImplicit(s conv.Shape) (*ir.Program, error) {
	if s.B%SwDNNBatchMultiple != 0 {
		return nil, fmt.Errorf("swDNN: implicit conv requires batch %% %d == 0, got %d",
			SwDNNBatchMultiple, s.B)
	}
	op, err := conv.NewImplicitOp(s)
	if err != nil {
		return nil, fmt.Errorf("swDNN: %w", err)
	}
	frozen, err := swdnnFrozenStrategy()
	if err != nil {
		return nil, fmt.Errorf("swDNN: %w", err)
	}
	st := dsl.Strategy{
		Factors: map[string]int{
			"no": clampFactor(frozen.Factors["no"], s.No),
			"ni": clampFactor(frozen.Factors["ni"], s.Ni),
			"co": clampFactor(frozen.Factors["co"], s.Co),
			"b":  s.B,
		},
		Order:        frozen.Order,
		Layouts:      frozen.Layouts,
		Vec:          ir.VecN,
		DoubleBuffer: true,
		Padding:      dsl.PadTraditional,
	}
	prog, err := op.Compile(st)
	if err != nil {
		return nil, err
	}
	prog.DispatchOverheadSeconds = LibraryDispatchSeconds
	return prog, nil
}

// XMathGemm compiles the xMath manual GEMM routine: fixed large blocking,
// traditional padding, specialized assembly on aligned tiles.
func XMathGemm(p gemm.Params) (*ir.Program, error) {
	op, err := gemm.NewOp(p)
	if err != nil {
		return nil, err
	}
	st := xmathStrategy(p)
	prog, err := op.Compile(st)
	if err != nil {
		return nil, err
	}
	// The hand-tuned assembly pipeline is engineered around square-like
	// problems (§5.1.2: "the xMath optimization is targeted on square-like
	// matrix multiplications"); only those run it.
	if primitives.SpecializedApplies(p.M, p.N, p.K) {
		MarkSpecialized(prog)
	}
	prog.DispatchOverheadSeconds = LibraryDispatchSeconds
	return prog, nil
}

// xmathStrategy is the routine's single blocking, sized for large
// square-ish operands (its design target).
func xmathStrategy(p gemm.Params) dsl.Strategy {
	return dsl.Strategy{
		Factors: map[string]int{
			"m": xmathBlock(p.M),
			"n": xmathBlock(p.N),
			"k": xmathBlock(p.K),
		},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"A": {1, 0}, "B": {0, 1}, "C": {1, 0}},
		Vec:          ir.VecM,
		DoubleBuffer: true,
		Padding:      dsl.PadTraditional,
	}
}

// xmathBlock snaps the block size: 256 for large extents (the tuned
// kernel), otherwise the extent padded up to the 64-multiple the smaller
// kernels handle.
func xmathBlock(extent int) int {
	if extent >= 256 {
		return 256
	}
	b := (extent + 63) / 64 * 64
	if b > extent {
		// traditional padding will grow the problem to the block
		return b
	}
	return b
}

func clampFactor(pref, extent int) int {
	if pref > extent {
		return extent
	}
	return pref
}

// manualBlock is xmathBlock clamped to the extent and vector-aligned — the
// blocking the manual conv codes use (their boundary handling is baked
// into the fixed kernels).
func manualBlock(extent int) int {
	if extent >= 256 {
		return 256
	}
	b := extent - extent%4
	if b < 4 {
		b = extent // tiny extents: vecN schedules take over alignment
	}
	return b
}

// ManualWinograd compiles the pre-swATOP Winograd convolution: unfused
// one-channel-at-a-time transform phases, a repacking pass that copies the
// strided transformed tensors into the contiguous operands the xMath
// routine expects (and the result back), xMath blocking for the 16
// products, and one library dispatch per routine call.
func ManualWinograd(s conv.Shape) (*ir.Program, error) {
	op, err := conv.NewWinogradOp(s)
	if err != nil {
		return nil, err
	}
	op.TransformChunkCap = 1
	p := (s.Ro / 2) * (s.Co / 2) * s.B
	st := dsl.Strategy{
		Factors: map[string]int{
			"no": manualBlock(s.No),
			"ni": clampFactor(256, s.Ni),
			"p":  clampFactor(256, p),
		},
		Order:        []string{"xi", "no", "p", "ni"},
		Layouts:      map[string][]int{"U": {0, 1, 2}, "V": {0, 1, 2}, "M": {0, 1, 2}},
		Vec:          ir.VecM,
		DoubleBuffer: true,
	}
	prog, err := op.CompileRaw(st)
	if err != nil {
		return nil, err
	}
	if err := insertWinogradRepack(prog, s, p); err != nil {
		return nil, err
	}
	prog, err = core.Optimize(prog, st)
	if err != nil {
		return nil, err
	}
	// The 16 products (No × P × Ni with huge P) are far from xMath's
	// square-like specialization target; the generic kernels run.
	if primitives.SpecializedApplies(s.No, p, s.Ni) {
		MarkSpecialized(prog)
	}
	// 16 xMath calls + 3 transform kernel launches.
	prog.DispatchOverheadSeconds = 19 * LibraryDispatchSeconds
	return prog, nil
}

// insertWinogradRepack redirects the GEMM phase to packed copies V2/M2 of
// the transformed tensors, with copy passes before and after — the data
// marshalling a black-box GEMM library forces on the caller.
func insertWinogradRepack(prog *ir.Program, s conv.Shape, p int) error {
	planes := primitives.WinoPlanes
	prog.Tensors = append(prog.Tensors,
		ir.TensorDecl{Name: "V2", Dims: []int{planes, s.Ni, p}, Scratch: true},
		ir.TensorDecl{Name: "M2", Dims: []int{planes, s.No, p}, Scratch: true},
	)
	// Rename V/M inside the GEMM phase (between the phase G and phase O
	// comments).
	phase := ""
	for _, stmt := range prog.Body {
		if c, ok := stmt.(*ir.Comment); ok && strings.HasPrefix(c.Text, "phase") {
			phase = c.Text[:7]
		}
		if phase != "phase G" {
			continue
		}
		ir.Walk([]ir.Stmt{stmt}, func(x ir.Stmt) bool {
			if mv, ok := x.(*ir.RegionMove); ok {
				switch mv.Tensor {
				case "V":
					mv.Tensor = "V2"
				case "M":
					mv.Tensor = "M2"
				}
			}
			return true
		})
	}
	// Copy V→V2 before phase G, M2→M after it.
	vCopy, err := lower.EmitTensorCopy("V", "V2", []int{planes, s.Ni, p})
	if err != nil {
		return err
	}
	mCopy, err := lower.EmitTensorCopy("M2", "M", []int{planes, s.No, p})
	if err != nil {
		return err
	}
	var out []ir.Stmt
	for _, stmt := range prog.Body {
		if c, ok := stmt.(*ir.Comment); ok {
			if strings.HasPrefix(c.Text, "phase G") {
				out = append(out, &ir.Comment{Text: "repack: V -> xMath operand"})
				out = append(out, vCopy...)
			}
			if strings.HasPrefix(c.Text, "phase O") {
				out = append(out, &ir.Comment{Text: "repack: xMath result -> M"})
				out = append(out, mCopy...)
			}
		}
		out = append(out, stmt)
	}
	prog.Body = out
	return nil
}

// ManualExplicit compiles the pre-swATOP explicit convolution: im2col plus
// one xMath GEMM call.
func ManualExplicit(s conv.Shape) (*ir.Program, error) {
	op, err := conv.NewExplicitOp(s)
	if err != nil {
		return nil, err
	}
	nn := s.Ro * s.Co * s.B
	kk := s.Ni * s.Kr * s.Kc
	st := dsl.Strategy{
		Factors: map[string]int{
			"m": manualBlock(s.No),
			"n": clampFactor(256, nn),
			"k": clampFactor(256, kk),
		},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"weight2d": {1, 0}, "col": {0, 1}, "out2d": {1, 0}},
		Vec:          ir.VecM,
		DoubleBuffer: true,
	}
	prog, err := op.Compile(st)
	if err != nil {
		return nil, err
	}
	if primitives.SpecializedApplies(s.No, nn, kk) {
		MarkSpecialized(prog)
	}
	// im2col pass + one xMath call.
	prog.DispatchOverheadSeconds = 2 * LibraryDispatchSeconds
	return prog, nil
}

// FallbackGemm returns the manual-library GEMM — the degraded-mode answer
// a resilient tuner serves when autotuning cannot complete (all candidates
// failing, deadline budget exhausted). It is always compilable: xMath's
// traditional padding accepts any problem size.
func FallbackGemm(p gemm.Params) (*ir.Program, error) {
	return XMathGemm(p)
}

// FallbackConv returns the manual-library convolution for a method — the
// degraded-mode answer when autotuning cannot complete. Where the
// method-matched manual code has a hard restriction (swDNN's batch
// multiple), it degrades one step further to the manual explicit-GEMM
// path, which accepts any shape, rather than failing.
func FallbackConv(method string, s conv.Shape) (*ir.Program, error) {
	switch method {
	case "implicit":
		if s.B%SwDNNBatchMultiple == 0 {
			return SwDNNImplicit(s)
		}
		return ManualExplicit(s)
	case "explicit":
		return ManualExplicit(s)
	case "winograd":
		return ManualWinograd(s)
	}
	return nil, fmt.Errorf("baseline: unknown conv method %q", method)
}

// MarkSpecialized flags every GEMM call in a program as eligible for the
// hand-tuned assembly micro-kernel (it only actually applies on exactly
// aligned shapes — see primitives.SpecializedApplies).
func MarkSpecialized(prog *ir.Program) {
	ir.Walk(prog.Body, func(s ir.Stmt) bool {
		if g, ok := s.(*ir.Gemm); ok {
			g.Specialized = true
		}
		return true
	})
}
