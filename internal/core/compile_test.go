package core_test

import (
	"testing"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/gemm"
	"swatop/internal/ir"
)

func strategy(pad dsl.PaddingMode, db bool) dsl.Strategy {
	return dsl.Strategy{
		Factors:      map[string]int{"m": 32, "n": 32, "k": 32},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"C": {1, 0}},
		Vec:          ir.VecM,
		DoubleBuffer: db,
		Padding:      pad,
	}
}

func TestCompilePipelineOrder(t *testing.T) {
	seed, err := gemm.Seed(gemm.Params{M: 96, N: 96, K: 96})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(seed, strategy(dsl.PadLightweight, true))
	if err != nil {
		t.Fatal(err)
	}
	// After the full pipeline: no RegionMoves remain, DMA ops/waits are
	// balanced, prefetching artifacts exist.
	if n := ir.CountKind(prog.Body, func(s ir.Stmt) bool { _, ok := s.(*ir.RegionMove); return ok }); n != 0 {
		t.Fatalf("%d RegionMoves left after Compile", n)
	}
	ops := ir.CountKind(prog.Body, func(s ir.Stmt) bool { _, ok := s.(*ir.DMAOp); return ok })
	if ops == 0 {
		t.Fatal("no DMA ops emitted")
	}
	sawNext := false
	ir.Walk(prog.Body, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.Assign); ok && len(a.Var) > 3 && a.Var[:3] == "nx_" {
			sawNext = true
		}
		return true
	})
	if !sawNext {
		t.Fatal("prefetching was not applied")
	}
}

func TestCompileWithoutPrefetch(t *testing.T) {
	seed, _ := gemm.Seed(gemm.Params{M: 64, N: 64, K: 64})
	prog, err := core.Compile(seed, strategy(dsl.PadLightweight, false))
	if err != nil {
		t.Fatal(err)
	}
	ir.Walk(prog.Body, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.Assign); ok && len(a.Var) > 3 && a.Var[:3] == "nx_" {
			t.Fatal("prefetching applied despite DoubleBuffer=false")
		}
		return true
	})
}

func TestCompileTraditionalPadding(t *testing.T) {
	seed, _ := gemm.Seed(gemm.Params{M: 50, N: 44, K: 38})
	prog, err := core.Compile(seed, strategy(dsl.PadTraditional, true))
	if err != nil {
		t.Fatal(err)
	}
	scratch := 0
	for _, d := range prog.Tensors {
		if d.Scratch {
			scratch++
		}
	}
	if scratch != 3 {
		t.Fatalf("traditional padding should add 3 padded workspaces, got %d", scratch)
	}
}

func TestCompileInvalidStrategy(t *testing.T) {
	seed, _ := gemm.Seed(gemm.Params{M: 64, N: 64, K: 64})
	st := strategy(dsl.PadLightweight, true)
	st.Factors["m"] = 999
	if _, err := core.Compile(seed, st); err == nil {
		t.Fatal("invalid factor must be rejected")
	}
}
