// Package core is swATOP's compilation pipeline (Fig. 3): it takes a DSL
// schedule seed and one schedule strategy, lowers them to IR, and applies
// the IR optimizations (auto-prefetching, DMA inference) in order. The
// scheduler/autotuner packages drive it over whole schedule spaces.
package core

import (
	"fmt"

	"swatop/internal/dsl"
	"swatop/internal/ir"
	"swatop/internal/lower"
	"swatop/internal/optimizer"
)

// Compile produces the optimized IR program for one schedule strategy.
func Compile(seed *dsl.Seed, st dsl.Strategy) (*ir.Program, error) {
	var prog *ir.Program
	var err error
	switch st.Padding {
	case dsl.PadTraditional:
		prog, err = lower.LowerPadded(seed, st)
	default:
		prog, err = lower.Lower(seed, st)
	}
	if err != nil {
		return nil, err
	}
	return Optimize(prog, st)
}

// Optimize applies the IR optimizer passes to a lowered program. It is
// exposed separately so multi-phase operators (Winograd, explicit conv) can
// compose nests before optimizing.
func Optimize(prog *ir.Program, st dsl.Strategy) (*ir.Program, error) {
	if st.DoubleBuffer {
		if err := optimizer.InjectPrefetch(prog); err != nil {
			return nil, fmt.Errorf("prefetch: %w", err)
		}
	}
	optimizer.InferDMA(prog)
	return prog, nil
}
