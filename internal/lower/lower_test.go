package lower_test

import (
	"strings"
	"testing"

	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/lower"
	"swatop/internal/tensor"
)

func gemmStrategy(fm, fn, fk int, vec ir.VecDim) dsl.Strategy {
	return dsl.Strategy{
		Factors: map[string]int{"m": fm, "n": fn, "k": fk},
		Order:   []string{"m", "n", "k"},
		Layouts: map[string][]int{"C": {1, 0}},
		Vec:     vec,
	}
}

// runGemm lowers a GEMM with the given strategy, runs it functionally, and
// compares against the oracle.
func runGemm(t *testing.T, p gemm.Params, st dsl.Strategy) exec.Result {
	t.Helper()
	seed, err := gemm.Seed(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := lower.Lower(seed, st)
	if err != nil {
		t.Fatalf("lower(%v): %v", st, err)
	}
	binds, err := gemm.Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(prog, binds, exec.Options{Functional: true})
	if err != nil {
		t.Fatalf("exec(%v): %v\n%s", st, err, ir.Print(prog))
	}
	want, err := tensor.ReferenceGemm(binds["A"], binds["B"], 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, binds["C"]); d > 2e-2 {
		t.Fatalf("strategy %v: result differs from oracle by %g\n%s", st, d, ir.Print(prog))
	}
	return res
}

func TestLowerGemmExactTiles(t *testing.T) {
	runGemm(t, gemm.Params{M: 64, N: 64, K: 64}, gemmStrategy(32, 32, 32, ir.VecM))
}

func TestLowerGemmBoundaryTiles(t *testing.T) {
	// 50 % 32 != 0 on every dimension: boundary processing everywhere.
	runGemm(t, gemm.Params{M: 50, N: 44, K: 38}, gemmStrategy(32, 32, 32, ir.VecM))
}

func TestLowerGemmBoundaryVecN(t *testing.T) {
	runGemm(t, gemm.Params{M: 44, N: 50, K: 38}, gemmStrategy(32, 32, 32, ir.VecN))
}

func TestLowerGemmSingleTile(t *testing.T) {
	// Factors equal to extents: no loops at all.
	runGemm(t, gemm.Params{M: 32, N: 32, K: 32}, gemmStrategy(32, 32, 32, ir.VecM))
}

func TestLowerGemmAllOrders(t *testing.T) {
	p := gemm.Params{M: 48, N: 40, K: 56}
	for _, order := range [][]string{
		{"m", "n", "k"}, {"n", "m", "k"}, {"k", "m", "n"}, {"m", "k", "n"},
	} {
		st := gemmStrategy(16, 16, 16, ir.VecM)
		st.Order = order
		runGemm(t, p, st)
	}
}

func TestLowerGemmLayouts(t *testing.T) {
	p := gemm.Params{M: 40, N: 36, K: 28}
	for _, la := range [][]int{{0, 1}, {1, 0}} {
		for _, lb := range [][]int{{0, 1}, {1, 0}} {
			st := gemmStrategy(20, 12, 14, ir.VecM)
			st.Layouts = map[string][]int{"A": la, "B": lb, "C": {1, 0}}
			runGemm(t, p, st)
		}
	}
}

func TestLowerTransposedOutputLayout(t *testing.T) {
	// C stored row-major (N fastest) lowers through the transposed
	// formulation Cᵀ = Bᵀ·Aᵀ and stays correct — including boundaries.
	for _, vec := range []ir.VecDim{ir.VecM, ir.VecN} {
		st := gemmStrategy(16, 16, 16, vec)
		st.Layouts = map[string][]int{"C": {0, 1}}
		runGemm(t, gemm.Params{M: 40, N: 36, K: 28}, st)
		st.Layouts = map[string][]int{"A": {1, 0}, "B": {1, 0}, "C": {0, 1}}
		runGemm(t, gemm.Params{M: 40, N: 36, K: 28}, st)
	}
}

func TestLowerRejectsVecMisalignment(t *testing.T) {
	seed, _ := gemm.Seed(gemm.Params{M: 32, N: 32, K: 32})
	st := gemmStrategy(10, 16, 16, ir.VecM) // vec dim tile 10 % 4 != 0
	if _, err := lower.Lower(seed, st); err == nil {
		t.Fatal("vec-misaligned full tile must be rejected")
	}
	// ...but the same factor is fine when vectorizing the other dimension.
	st.Vec = ir.VecN
	if _, err := lower.Lower(seed, st); err != nil {
		t.Fatalf("vecN with M tile 10 should lower: %v", err)
	}
}

func TestLowerRejectsOverCapacity(t *testing.T) {
	seed, err := gemm.Seed(gemm.Params{M: 4096, N: 4096, K: 4096})
	if err != nil {
		t.Fatal(err)
	}
	st := gemmStrategy(4096, 4096, 256, ir.VecM)
	if _, err := lower.Lower(seed, st); err == nil {
		t.Fatal("SPM-overflowing tiles must be rejected")
	}
}

func TestLowerRejectsTiledSpatialAxis(t *testing.T) {
	s := dsl.NewSeed("bad")
	s.AddAxis("m", 32, dsl.RoleM)
	s.AddAxis("n", 32, dsl.RoleN)
	s.AddAxis("k", 32, dsl.RoleK)
	s.AddAxis("r", 8, dsl.RoleSpatial)
	s.AddTensor("A", []int{32, 32}, dsl.OperandA, dsl.Dim("m"), dsl.Dim("k"))
	s.AddTensor("B", []int{39, 32}, dsl.OperandB, dsl.Dims(dsl.T("k", 1), dsl.T("r", 1)), dsl.Dim("n"))
	s.AddTensor("C", []int{32, 32}, dsl.OperandC, dsl.Dim("m"), dsl.Dim("n"))
	st := dsl.Strategy{
		Factors: map[string]int{"m": 16, "n": 16, "k": 16, "r": 4},
		Layouts: map[string][]int{"C": {1, 0}},
		Vec:     ir.VecM,
	}
	if _, err := lower.Lower(s, st); err == nil {
		t.Fatal("tiling a spatial axis must be rejected")
	}
}

func TestLowerHoistsInvariantMoves(t *testing.T) {
	// Order (m, n, k): A depends on (m, k) — its Get must sit inside the k
	// loop; B depends on (k, n) — also innermost; C depends on (m, n) —
	// its residency is the n loop, outside k.
	seed, _ := gemm.Seed(gemm.Params{M: 128, N: 128, K: 128})
	st := gemmStrategy(32, 32, 32, ir.VecM)
	prog, err := lower.Lower(seed, st)
	if err != nil {
		t.Fatal(err)
	}
	nest := ir.LoopNest(prog.Body)
	if len(nest) != 3 {
		t.Fatalf("want 3 loops, got %d\n%s", len(nest), ir.Print(prog))
	}
	// C's zero-fill (no reduction outside its depth) lives in the n loop
	// body, not the k loop body.
	nLoop, kLoop := nest[1], nest[2]
	cInN := false
	for _, s := range nLoop.Body {
		if tr, ok := s.(*ir.Transform); ok && tr.Kind == ir.ZeroFill && tr.Dst == "spm_C" {
			cInN = true
		}
	}
	if !cInN {
		t.Fatalf("C zero-init not hoisted to its residency loop:\n%s", ir.Print(prog))
	}
	for _, s := range kLoop.Body {
		if mv, ok := s.(*ir.RegionMove); ok && mv.Tensor == "C" {
			t.Fatalf("C moved inside the k loop:\n%s", ir.Print(prog))
		}
	}
}

func TestLowerCRefetchUnderOuterReduction(t *testing.T) {
	// Order (k, m, n): the reduction loop is outermost, so C must be
	// re-fetched (Get) and accumulated, not zero-filled.
	seed, _ := gemm.Seed(gemm.Params{M: 64, N: 64, K: 64})
	st := gemmStrategy(32, 32, 32, ir.VecM)
	st.Order = []string{"k", "m", "n"}
	prog, err := lower.Lower(seed, st)
	if err != nil {
		t.Fatal(err)
	}
	out := ir.Print(prog)
	if !strings.Contains(out, "region_get C") {
		t.Fatalf("C must be re-fetched under an outer reduction loop:\n%s", out)
	}
	// And it still computes the right answer.
	runGemm(t, gemm.Params{M: 64, N: 64, K: 64}, st)
}

func TestLowerFrameAllocationsAndFrees(t *testing.T) {
	seed, _ := gemm.Seed(gemm.Params{M: 64, N: 64, K: 64})
	prog, err := lower.Lower(seed, gemmStrategy(32, 32, 32, ir.VecM))
	if err != nil {
		t.Fatal(err)
	}
	allocs := ir.CountKind(prog.Body, func(s ir.Stmt) bool { _, ok := s.(*ir.AllocSPM); return ok })
	frees := ir.CountKind(prog.Body, func(s ir.Stmt) bool { _, ok := s.(*ir.FreeSPM); return ok })
	if allocs != 3 || frees != 3 {
		t.Fatalf("allocs=%d frees=%d, want 3/3", allocs, frees)
	}
}

func TestPlanExposesEstimates(t *testing.T) {
	seed, _ := gemm.Seed(gemm.Params{M: 64, N: 64, K: 64})
	plan, err := lower.NewPlan(seed, gemmStrategy(32, 32, 32, ir.VecM))
	if err != nil {
		t.Fatal(err)
	}
	est := plan.SpaceEstimate()
	if est["spm_A"] != 32*32 || est["spm_B"] != 32*32 || est["spm_C"] != 32*32 {
		t.Fatalf("frame estimates wrong: %v", est)
	}
}

func TestLowerTimingSensibleToTileSize(t *testing.T) {
	// Tiny tiles must be slower than healthy tiles on the same problem.
	p := gemm.Params{M: 256, N: 256, K: 256}
	small := runGemm(t, p, gemmStrategy(8, 8, 16, ir.VecM))
	big := runGemm(t, p, gemmStrategy(128, 128, 128, ir.VecM))
	if big.Seconds >= small.Seconds {
		t.Fatalf("128³ tiles (%.3g s) should beat 8×8×16 tiles (%.3g s)", big.Seconds, small.Seconds)
	}
}
