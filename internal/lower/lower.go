// Package lower turns a DSL schedule seed plus one schedule strategy into
// IR (§4.3's transformations made concrete):
//
//   - Loop transformation: every axis is split by its tile factor into an
//     outer loop and an in-tile extent (split); the outer loops nest in the
//     strategy's order (reorder); axes with GEMM roles and factor > 1 fuse
//     their tiles into the composite GEMM dimensions (fusion — "merging
//     loops into GEMM primitives").
//   - Layout transformation: each tensor carries a storage permutation that
//     determines both the DMA access pattern and the SPM matrix
//     interpretation (transposition flags and leading dimensions).
//   - Vectorization transformation: the strategy's vectorized dimension is
//     validated against layout and alignment rules; boundary tiles that
//     break the alignment rule get guarded lightweight zero-padding.
//
// The output still contains abstract RegionMove nodes; the optimizer package
// infers DMA (§4.5.1) and injects prefetching (§4.5.2).
package lower

import (
	"fmt"

	"swatop/internal/dsl"
	"swatop/internal/ir"
	"swatop/internal/sw26010"
)

// axisPlan is the split decision for one axis.
type axisPlan struct {
	ax     *dsl.Axis
	factor int
	outer  int     // ceil(extent/factor)
	loop   bool    // outer > 1: an outer loop exists
	tile   ir.Expr // in-tile extent: min(factor, extent - v*factor)
	start  ir.Expr // v*factor
}

// operandPlan is the SPM-frame and matrix interpretation of one operand.
type operandPlan struct {
	spec        *dsl.TensorSpec
	buf         string
	perm        []int // storage permutation (slowest→fastest)
	frameExt    []int // per tensor dim: allocated tile extent
	frameStride []int // per tensor dim: SPM frame stride
	frameElems  int
	start       []ir.Expr // region start per dim
	extent      []ir.Expr // region extent per dim
	depth       int       // nest depth at which the region is invariant
	// matrix view
	trans    bool // stored transposed w.r.t. (rows × cols) column-major
	ld       int
	rowsExpr ir.Expr // actual rows (product of row-group tile extents)
	colsExpr ir.Expr
	rowAxes  []string // storage-fastest-first composite order
	colAxes  []string
}

// Plan is the resolved lowering state; conv/gemm operator builders use it to
// compose multi-phase programs.
type Plan struct {
	Seed     *dsl.Seed
	Strategy dsl.Strategy

	axes  map[string]*axisPlan
	order []string // loop nest order, outermost first (only axes with loops)
	ops   map[dsl.OperandRole]*operandPlan
}

// Lower builds a complete single-nest program from a seed and strategy.
func Lower(seed *dsl.Seed, st dsl.Strategy) (*ir.Program, error) {
	plan, err := NewPlan(seed, st)
	if err != nil {
		return nil, err
	}
	body, err := plan.BuildNest()
	if err != nil {
		return nil, err
	}
	p := &ir.Program{Name: seed.Name, Body: body}
	for _, t := range seed.Tensors {
		p.Tensors = append(p.Tensors, ir.TensorDecl{
			Name:   t.Name,
			Dims:   append([]int(nil), t.Dims...),
			Output: t.Role == dsl.OperandC,
			Layout: plan.Layout(t.Name),
		})
	}
	return p, nil
}

// NewPlan validates a strategy against a seed and resolves the lowering
// decisions without emitting IR.
func NewPlan(seed *dsl.Seed, st dsl.Strategy) (*Plan, error) {
	if err := seed.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{Seed: seed, Strategy: st, axes: map[string]*axisPlan{}, ops: map[dsl.OperandRole]*operandPlan{}}

	for _, ax := range seed.Axes {
		f := st.Factors[ax.Name]
		if f == 0 {
			f = 1
		}
		if f < 0 || f > ax.Extent {
			return nil, fmt.Errorf("lower: axis %s: factor %d out of range (extent %d)", ax.Name, f, ax.Extent)
		}
		if (ax.Role == dsl.RoleSpatial || ax.Role == dsl.RoleReduce) && f != 1 {
			return nil, fmt.Errorf("lower: %s axis %s cannot be tiled into the GEMM primitive", ax.Role, ax.Name)
		}
		ap := &axisPlan{ax: ax, factor: f, outer: ceilDiv(ax.Extent, f)}
		ap.loop = ap.outer > 1
		v := ir.V(loopVar(ax.Name))
		if ap.loop {
			ap.start = ir.Mul(v, ir.Const(int64(f)))
			if ax.Extent%f == 0 {
				ap.tile = ir.Const(int64(f))
			} else {
				ap.tile = ir.Min(ir.Const(int64(f)), ir.Sub(ir.Const(int64(ax.Extent)), ap.start))
			}
		} else {
			ap.start = ir.Const(0)
			ap.tile = ir.Const(int64(f))
		}
		p.axes[ax.Name] = ap
	}

	if err := p.resolveOrder(); err != nil {
		return nil, err
	}
	for _, role := range []dsl.OperandRole{dsl.OperandA, dsl.OperandB, dsl.OperandC} {
		if err := p.planOperand(role); err != nil {
			return nil, err
		}
	}
	if err := p.checkMatrixConsistency(); err != nil {
		return nil, err
	}
	if err := p.checkCapacity(); err != nil {
		return nil, err
	}
	return p, nil
}

func loopVar(axis string) string { return "c" + axis }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// resolveOrder expands the strategy's (possibly partial) order into the full
// loop nest order.
func (p *Plan) resolveOrder() error {
	seen := map[string]bool{}
	for _, name := range p.Strategy.Order {
		ap, ok := p.axes[name]
		if !ok {
			return fmt.Errorf("lower: order names unknown axis %q", name)
		}
		if seen[name] {
			return fmt.Errorf("lower: axis %q appears twice in order", name)
		}
		seen[name] = true
		if ap.loop {
			p.order = append(p.order, name)
		}
	}
	for _, ax := range p.Seed.Axes {
		if !seen[ax.Name] && p.axes[ax.Name].loop {
			p.order = append(p.order, ax.Name)
		}
	}
	return nil
}

// Layout returns the storage permutation chosen for a tensor (identity when
// the strategy does not override it).
func (p *Plan) Layout(tensor string) []int {
	if perm, ok := p.Strategy.Layouts[tensor]; ok {
		return perm
	}
	for _, t := range p.Seed.Tensors {
		if t.Name == tensor {
			perm := make([]int, len(t.Dims))
			for i := range perm {
				perm[i] = i
			}
			return perm
		}
	}
	return nil
}

// operandGroups returns the (rows, cols) role pair of an operand.
func operandGroups(role dsl.OperandRole) (rows, cols dsl.Role) {
	switch role {
	case dsl.OperandA:
		return dsl.RoleM, dsl.RoleK
	case dsl.OperandB:
		return dsl.RoleK, dsl.RoleN
	default:
		return dsl.RoleM, dsl.RoleN
	}
}

func (p *Plan) planOperand(role dsl.OperandRole) error {
	spec, err := p.Seed.Operand(role)
	if err != nil {
		return err
	}
	op := &operandPlan{spec: spec, buf: "spm_" + spec.Name}
	op.perm = p.Layout(spec.Name)
	if len(op.perm) != len(spec.Dims) {
		return fmt.Errorf("lower: tensor %s: layout %v does not match rank %d", spec.Name, op.perm, len(spec.Dims))
	}
	seenDim := make([]bool, len(spec.Dims))
	for _, d := range op.perm {
		if d < 0 || d >= len(spec.Dims) || seenDim[d] {
			return fmt.Errorf("lower: tensor %s: invalid layout %v", spec.Name, op.perm)
		}
		seenDim[d] = true
	}

	nd := len(spec.Dims)
	op.frameExt = make([]int, nd)
	op.start = make([]ir.Expr, nd)
	op.extent = make([]ir.Expr, nd)
	// dimRole[d]: role of the active axes of dim d (or -1 when inactive).
	dimRole := make([]dsl.Role, nd)
	dimAxis := make([]string, nd) // the active axis of the dim (one allowed)
	for d := 0; d < nd; d++ {
		frame := 1
		start := ir.Expr(ir.Const(0))
		extent := ir.Expr(ir.Const(1))
		role := dsl.Role(-1)
		axis := ""
		for _, term := range spec.Access[d] {
			ap := p.axes[term.Axis]
			c := int64(term.Coeff)
			start = ir.Add(start, ir.Mul(ir.Const(c), ap.start))
			// extent 1 + Σ coeff*(tile-1)
			extent = ir.Add(extent, ir.Mul(ir.Const(c), ir.Sub(ap.tile, ir.Const(1))))
			frame += term.Coeff * (ap.factor - 1)
			if ap.factor > 1 {
				if role >= 0 {
					return fmt.Errorf("lower: tensor %s dim %d: two tiled axes (%s, %s) share one dimension",
						spec.Name, d, axis, term.Axis)
				}
				role = ap.ax.Role
				axis = term.Axis
			}
			// track the deepest loop var feeding the region
			if ap.loop {
				if depth := p.loopDepth(term.Axis); depth+1 > op.depth {
					op.depth = depth + 1
				}
			}
		}
		if frame > spec.Dims[d] {
			frame = spec.Dims[d]
		}
		op.frameExt[d] = frame
		op.start[d] = start
		op.extent[d] = extent
		dimRole[d] = role
		dimAxis[d] = axis
	}

	// Frame strides follow the storage permutation.
	op.frameStride = make([]int, nd)
	s := 1
	for i := nd - 1; i >= 0; i-- {
		d := op.perm[i]
		op.frameStride[d] = s
		s *= op.frameExt[d]
	}
	op.frameElems = s

	// Matrix interpretation: active dims in storage-fastest-first order
	// must split into the two role groups contiguously.
	rowsRole, colsRole := operandGroups(role)
	var fastGroup []int // active dims, fastest first
	for i := nd - 1; i >= 0; i-- {
		d := op.perm[i]
		if op.frameExt[d] > 1 {
			fastGroup = append(fastGroup, d)
		}
	}
	var rowDims, colDims []int
	state := 0 // 0: reading first group, 1: reading second group
	var firstRole dsl.Role = -1
	for _, d := range fastGroup {
		r := dimRole[d]
		if r != rowsRole && r != colsRole {
			return fmt.Errorf("lower: tensor %s: dim %d tiled on %s axis %q, not a GEMM dimension of operand %s",
				spec.Name, d, r, dimAxis[d], role)
		}
		if firstRole == -1 {
			firstRole = r
		}
		if r == firstRole && state == 0 {
			// still in the fast group
		} else if r != firstRole {
			state = 1
		} else if state == 1 {
			return fmt.Errorf("lower: tensor %s: layout interleaves GEMM dimensions (%v)", spec.Name, fastGroup)
		}
		if r == rowsRole {
			rowDims = append(rowDims, d)
		} else {
			colDims = append(colDims, d)
		}
	}
	if firstRole == -1 {
		firstRole = rowsRole // degenerate 1×1 tile; treat as untransposed
	}
	// trans records whether the matrix is stored with its column group
	// fastest. For C this selects the transposed-output formulation
	// (Cᵀ = Bᵀ·Aᵀ with operands swapped) in gemmStmt.
	op.trans = firstRole == colsRole

	// Leading dimension: product of frame extents of the fast group dims
	// (and any interleaved extent-1 dims, which contribute 1).
	fastRole := firstRole
	ld := 1
	for i := nd - 1; i >= 0; i-- {
		d := op.perm[i]
		if op.frameExt[d] > 1 && dimRole[d] != fastRole {
			break
		}
		ld *= op.frameExt[d]
	}
	op.ld = ld

	// Composite extents and axis orders; partial tiles only on the slowest
	// axis of each group.
	var err2 error
	op.rowsExpr, op.rowAxes, err2 = p.groupProduct(spec, dimAxis, rowDims, op.perm)
	if err2 != nil {
		return err2
	}
	op.colsExpr, op.colAxes, err2 = p.groupProduct(spec, dimAxis, colDims, op.perm)
	if err2 != nil {
		return err2
	}

	p.ops[role] = op
	return nil
}

// groupProduct computes the actual composite extent of a dim group and its
// storage-fastest-first axis order, enforcing the partial-tile rule.
func (p *Plan) groupProduct(spec *dsl.TensorSpec, dimAxis []string, dims []int, perm []int) (ir.Expr, []string, error) {
	// dims are already fastest-first (built from reversed perm).
	prod := ir.Expr(ir.Const(1))
	var axes []string
	for i, d := range dims {
		axis := dimAxis[d]
		ap := p.axes[axis]
		partial := ap.loop && ap.ax.Extent%ap.factor != 0
		if partial && i != len(dims)-1 {
			return nil, nil, fmt.Errorf("lower: tensor %s: partially tiled axis %q must be the slowest of its GEMM dimension",
				spec.Name, axis)
		}
		prod = ir.Mul(prod, ap.tile)
		axes = append(axes, axis)
	}
	return prod, axes, nil
}

func (p *Plan) loopDepth(axis string) int {
	for i, name := range p.order {
		if name == axis {
			return i
		}
	}
	return -1
}

// checkMatrixConsistency verifies that composite GEMM dimensions enumerate
// identically in the operands sharing them, and that the vectorization rule
// holds for full tiles.
func (p *Plan) checkMatrixConsistency() error {
	a, b, c := p.ops[dsl.OperandA], p.ops[dsl.OperandB], p.ops[dsl.OperandC]
	if !sameAxes(a.rowAxes, c.rowAxes) {
		return fmt.Errorf("lower: M axis order differs between A %v and C %v", a.rowAxes, c.rowAxes)
	}
	if !sameAxes(a.colAxes, b.rowAxes) {
		return fmt.Errorf("lower: K axis order differs between A %v and B %v", a.colAxes, b.rowAxes)
	}
	if !sameAxes(b.colAxes, c.colAxes) {
		return fmt.Errorf("lower: N axis order differs between B %v and C %v", b.colAxes, c.colAxes)
	}

	// Vector alignment on full tiles: the vec dimension's full-tile product
	// must be a multiple of the vector width (boundary tiles are padded at
	// run time).
	vecProd := 1
	axes := p.mAxes()
	if p.Strategy.Vec == ir.VecN {
		axes = p.nAxes()
	}
	for _, name := range axes {
		vecProd *= p.axes[name].factor
	}
	if vecProd%sw26010.VectorWidth != 0 {
		return fmt.Errorf("lower: vectorized dimension tile %d not a multiple of %d", vecProd, sw26010.VectorWidth)
	}
	return nil
}

func (p *Plan) mAxes() []string { return p.Seed.RoleAxes(dsl.RoleM) }
func (p *Plan) nAxes() []string { return p.Seed.RoleAxes(dsl.RoleN) }
func (p *Plan) kAxes() []string { return p.Seed.RoleAxes(dsl.RoleK) }

func sameAxes(x, y []string) bool {
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// checkCapacity prunes schedules whose SPM frames do not fit. Under
// prefetching, every frame whose moves sit inside a loop is doubled (input
// gets are prefetched, output puts go asynchronous).
func (p *Plan) checkCapacity() error {
	var sizes []int
	for _, op := range p.ops {
		n := op.frameElems
		if p.Strategy.DoubleBuffer && op.depth >= 1 {
			n *= 2
		}
		sizes = append(sizes, n)
	}
	if !sw26010.FitsSPM(sizes...) {
		return fmt.Errorf("lower: SPM frames exceed capacity: %v floats", sizes)
	}
	return nil
}

// SpaceEstimate reports the frame sizes (diagnostics for reports).
func (p *Plan) SpaceEstimate() map[string]int {
	out := map[string]int{}
	for _, op := range p.ops {
		out[op.buf] = op.frameElems
	}
	return out
}

// BuildNest emits the loop nest with RegionMoves and the GEMM call.
func (p *Plan) BuildNest() ([]ir.Stmt, error) {
	a, b, c := p.ops[dsl.OperandA], p.ops[dsl.OperandB], p.ops[dsl.OperandC]

	// Can the initial C fetch be replaced by an SPM zero-fill? Only when no
	// reduction loop is *outside* C's residency level: then each C region
	// is visited exactly once and starts from zero. Reduction loops inside
	// keep C resident in SPM and accumulate there; reduction loops outside
	// force a re-fetch of partial sums from memory instead.
	cZeroInit := !p.reductionOutside(c.depth)

	gemm, err := p.gemmStmt()
	if err != nil {
		return nil, err
	}

	// Build from the innermost level outwards.
	core := []ir.Stmt{gemm}
	for depth := len(p.order); depth >= 0; depth-- {
		var pre, post []ir.Stmt
		for _, op := range []*operandPlan{a, b} {
			if op.depth == depth {
				pre = append(pre, p.inputMoves(op)...)
			}
		}
		if c.depth == depth {
			if cZeroInit {
				pre = append(pre, &ir.Transform{
					Kind: ir.ZeroFill, Dst: c.buf, DstOff: ir.Const(0), SrcOff: ir.Const(0),
					Args: []ir.Expr{ir.Const(int64(c.frameElems))},
				})
			} else {
				pre = append(pre, p.moveStmt(c, ir.Get))
			}
			post = append(post, p.moveStmt(c, ir.Put))
		}
		body := append(pre, core...)
		body = append(body, post...)
		if depth == 0 {
			core = body
			break
		}
		name := p.order[depth-1]
		core = []ir.Stmt{&ir.For{
			Iter:   loopVar(name),
			Extent: ir.Const(int64(p.axes[name].outer)),
			Body:   body,
		}}
	}

	var out []ir.Stmt
	out = append(out, &ir.Comment{Text: "strategy: " + p.Strategy.String()})
	for _, op := range []*operandPlan{a, b, c} {
		out = append(out, &ir.AllocSPM{Buf: op.buf, Elems: ir.Const(int64(op.frameElems))})
	}
	out = append(out, core...)
	for _, op := range []*operandPlan{a, b, c} {
		out = append(out, &ir.FreeSPM{Buf: op.buf})
	}
	return out, nil
}

// reductionOutside reports whether any loop strictly outside the given
// depth is a reduction (K or reduce-role) loop.
func (p *Plan) reductionOutside(depth int) bool {
	for i := 0; i < depth; i++ {
		r := p.axes[p.order[i]].ax.Role
		if r == dsl.RoleK || r == dsl.RoleReduce {
			return true
		}
	}
	return false
}

// inputMoves emits the (optionally pad-guarded) Get for an input operand.
func (p *Plan) inputMoves(op *operandPlan) []ir.Stmt {
	var out []ir.Stmt
	if pad := p.vecPadOperand(); pad == op {
		// Lightweight zero padding (§4.5.3): when the boundary tile's
		// vectorized extent is not a multiple of the vector width, clear
		// the frame so the rounded-up GEMM call multiplies zeros.
		vecExpr := op.rowsExpr
		if op.spec.Role == dsl.OperandB {
			vecExpr = op.colsExpr
		}
		if _, isConst := ir.IsConst(vecExpr); !isConst {
			out = append(out, &ir.If{
				Cond: ir.Cond{Op: ir.NE, L: ir.Mod(vecExpr, ir.Const(sw26010.VectorWidth)), R: ir.Const(0)},
				Then: []ir.Stmt{&ir.Transform{
					Kind: ir.ZeroFill, Dst: op.buf, DstOff: ir.Const(0), SrcOff: ir.Const(0),
					Args: []ir.Expr{ir.Const(int64(op.frameElems))},
				}},
			})
		}
	}
	out = append(out, p.moveStmt(op, ir.Get))
	return out
}

// vecPadOperand returns the input operand whose frame needs zero padding at
// unaligned boundaries (A for vecM, B for vecN).
func (p *Plan) vecPadOperand() *operandPlan {
	if p.Strategy.Vec == ir.VecM {
		return p.ops[dsl.OperandA]
	}
	return p.ops[dsl.OperandB]
}

func (p *Plan) moveStmt(op *operandPlan, dir ir.MoveDir) ir.Stmt {
	fs := make([]ir.Expr, len(op.frameStride))
	for i, s := range op.frameStride {
		fs[i] = ir.Const(int64(s))
	}
	return &ir.RegionMove{
		Tensor:      op.spec.Name,
		Dir:         dir,
		Start:       append([]ir.Expr(nil), op.start...),
		Extent:      append([]ir.Expr(nil), op.extent...),
		Buf:         op.buf,
		BufOff:      ir.Const(0),
		FrameStride: fs,
	}
}

func (p *Plan) gemmStmt() (ir.Stmt, error) {
	a, b, c := p.ops[dsl.OperandA], p.ops[dsl.OperandB], p.ops[dsl.OperandC]

	m := c.rowsExpr
	n := c.colsExpr
	k := a.colsExpr
	// Round the vectorized dimension up to the vector width; the padded
	// rows/columns multiply zeros from the guarded frame clear.
	round := func(e ir.Expr) ir.Expr {
		if _, ok := ir.IsConst(e); ok {
			v := e.Eval(nil)
			if v%sw26010.VectorWidth == 0 {
				return e
			}
		}
		w := ir.Const(sw26010.VectorWidth)
		return ir.Mul(ir.Div(ir.Add(e, ir.Const(sw26010.VectorWidth-1)), w), w)
	}
	if p.Strategy.Vec == ir.VecM {
		m = round(m)
	} else {
		n = round(n)
	}

	if !c.trans {
		return &ir.Gemm{
			A: a.buf, B: b.buf, C: c.buf,
			AOff: ir.Const(0), BOff: ir.Const(0), COff: ir.Const(0),
			M: m, N: n, K: k,
			LDA: ir.Const(int64(a.ld)), LDB: ir.Const(int64(b.ld)), LDC: ir.Const(int64(c.ld)),
			ATrans: a.trans, BTrans: b.trans,
			Vec:        p.Strategy.Vec,
			Accumulate: true,
		}, nil
	}

	// C is stored with its N group fastest: compute the transposed problem
	// Cᵀ[N×M] += Bᵀ[N×K] × Aᵀ[K×M]. Operand storage is untouched — only
	// the primitive's view flips: the old B becomes the left operand
	// (transposed iff it was *not* transposed before), and vice versa. The
	// user-level vectorized dimension (M or N axes) keeps its meaning, so
	// the primitive-level flag flips too.
	vec := ir.VecM
	if p.Strategy.Vec == ir.VecM {
		vec = ir.VecN
	}
	return &ir.Gemm{
		A: b.buf, B: a.buf, C: c.buf,
		AOff: ir.Const(0), BOff: ir.Const(0), COff: ir.Const(0),
		M: n, N: m, K: k,
		LDA: ir.Const(int64(b.ld)), LDB: ir.Const(int64(a.ld)), LDC: ir.Const(int64(c.ld)),
		ATrans: !b.trans, BTrans: !a.trans,
		Vec:        vec,
		Accumulate: true,
	}, nil
}
