package lower

import (
	"fmt"

	"swatop/internal/dsl"
	"swatop/internal/ir"
)

// LowerPadded implements the *traditional* zero-padding baseline of §4.5.3
// (evaluated in Fig. 11): instead of handling boundary tiles in SPM, every
// operand is first copied into a fully padded main-memory workspace (axes
// rounded up to multiples of their tile factors), the nest then runs with
// no boundaries at all, and the output is copied back. The copy phases pay
// two full DMA round trips — the overhead swATOP's lightweight scheme
// avoids.
func LowerPadded(seed *dsl.Seed, st dsl.Strategy) (*ir.Program, error) {
	if err := seed.Validate(); err != nil {
		return nil, err
	}
	// Padded axis extents.
	padExt := map[string]int{}
	anyPad := false
	for _, ax := range seed.Axes {
		f := st.Factors[ax.Name]
		if f <= 0 {
			f = 1
		}
		e := ceilDiv(ax.Extent, f) * f
		padExt[ax.Name] = e
		if e != ax.Extent {
			anyPad = true
		}
	}
	if !anyPad {
		// Nothing to pad: identical to the normal lowering.
		return Lower(seed, st)
	}

	// Build the padded seed over scratch tensors.
	ps := dsl.NewSeed(seed.Name + "_padded")
	for _, ax := range seed.Axes {
		ps.AddAxis(ax.Name, padExt[ax.Name], ax.Role)
	}
	padName := func(n string) string { return "pad_" + n }
	padDims := map[string][]int{}
	for _, t := range seed.Tensors {
		dims := make([]int, len(t.Dims))
		for d, terms := range t.Access {
			reach := 1
			for _, term := range terms {
				reach += term.Coeff * (padExt[term.Axis] - 1)
			}
			dims[d] = reach
		}
		padDims[t.Name] = dims
		ps.AddTensor(padName(t.Name), dims, t.Role, t.Access...)
	}

	// The strategy's layouts apply to the padded tensors.
	pst := st
	pst.Layouts = map[string][]int{}
	for name, perm := range st.Layouts {
		pst.Layouts[padName(name)] = perm
	}

	plan, err := NewPlan(ps, pst)
	if err != nil {
		return nil, err
	}
	nest, err := plan.BuildNest()
	if err != nil {
		return nil, err
	}

	prog := &ir.Program{Name: seed.Name + "_tradpad"}
	for _, t := range seed.Tensors {
		prog.Tensors = append(prog.Tensors, ir.TensorDecl{
			Name:   t.Name,
			Dims:   append([]int(nil), t.Dims...),
			Output: t.Role == dsl.OperandC,
		})
		prog.Tensors = append(prog.Tensors, ir.TensorDecl{
			Name:    padName(t.Name),
			Dims:    padDims[t.Name],
			Scratch: true,
			Layout:  plan.Layout(padName(t.Name)),
		})
	}

	// Copy-in phases for inputs, the nest, then copy-out for the output.
	var body []ir.Stmt
	body = append(body, &ir.Comment{Text: "traditional padding: materialize padded operands"})
	for _, t := range seed.Tensors {
		if t.Role == dsl.OperandC {
			continue
		}
		cp, err := emitTensorCopy(t.Name, padName(t.Name), t.Dims)
		if err != nil {
			return nil, err
		}
		body = append(body, cp...)
	}
	body = append(body, nest...)
	body = append(body, &ir.Comment{Text: "traditional padding: copy result back"})
	out, err := seed.Operand(dsl.OperandC)
	if err != nil {
		return nil, err
	}
	cp, err := emitTensorCopy(padName(out.Name), out.Name, out.Dims)
	if err != nil {
		return nil, err
	}
	body = append(body, cp...)
	prog.Body = body
	return prog, nil
}

// copyChunkElems bounds the SPM staging buffer of padding copies.
const copyChunkElems = 256 * 1024

// EmitTensorCopy emits a chunked main-memory src→dst copy through SPM over
// the given logical region (both tensors must cover dims; dst may be
// larger). Baseline builders use it to model the repacking passes manual
// libraries need.
func EmitTensorCopy(src, dst string, dims []int) ([]ir.Stmt, error) {
	return emitTensorCopy(src, dst, dims)
}

// emitTensorCopy emits a chunked src→dst copy over the given logical region
// (both tensors must cover dims; dst may be larger). The chunking dimension
// is the slowest one whose inner row fits the staging buffer; any dimension
// above it becomes a full loop.
func emitTensorCopy(src, dst string, dims []int) ([]ir.Stmt, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("copy %s->%s: scalar tensors unsupported", src, dst)
	}
	// innerElems[d] = product of dims[d+1:].
	inner := make([]int, len(dims))
	prod := 1
	for d := len(dims) - 1; d >= 0; d-- {
		inner[d] = prod
		prod *= dims[d]
	}
	split := len(dims) - 1
	for d := range dims {
		if inner[d] <= copyChunkElems {
			split = d
			break
		}
	}
	chunk := copyChunkElems / inner[split]
	if chunk < 1 {
		chunk = 1
	}
	if chunk > dims[split] {
		chunk = dims[split]
	}
	nchunks := ceilDiv(dims[split], chunk)

	buf := fmt.Sprintf("spm_copy_%s_%s", src, dst)
	tag := fmt.Sprintf("%s_%s", src, dst)
	chunkIter := "cp_" + tag

	start := make([]ir.Expr, len(dims))
	extent := make([]ir.Expr, len(dims))
	for d := 0; d < split; d++ {
		start[d] = ir.V(fmt.Sprintf("cpo%d_%s", d, tag))
		extent[d] = ir.Const(1)
	}
	c0 := ir.Mul(ir.V(chunkIter), ir.Const(int64(chunk)))
	start[split] = c0
	if dims[split]%chunk == 0 {
		extent[split] = ir.Const(int64(chunk))
	} else {
		extent[split] = ir.Min(ir.Const(int64(chunk)), ir.Sub(ir.Const(int64(dims[split])), c0))
	}
	for d := split + 1; d < len(dims); d++ {
		start[d] = ir.Const(0)
		extent[d] = ir.Const(int64(dims[d]))
	}

	mk := func(tensorName string, dir ir.MoveDir) *ir.RegionMove {
		return &ir.RegionMove{
			Tensor: tensorName,
			Dir:    dir,
			Start:  append([]ir.Expr(nil), start...),
			Extent: append([]ir.Expr(nil), extent...),
			Buf:    buf,
			BufOff: ir.Const(0),
		}
	}
	body := []ir.Stmt{mk(src, ir.Get), mk(dst, ir.Put)}
	loop := ir.Stmt(&ir.For{Iter: chunkIter, Extent: ir.Const(int64(nchunks)), Body: body})
	for d := split - 1; d >= 0; d-- {
		loop = &ir.For{
			Iter:   fmt.Sprintf("cpo%d_%s", d, tag),
			Extent: ir.Const(int64(dims[d])),
			Body:   []ir.Stmt{loop},
		}
	}
	return []ir.Stmt{
		&ir.AllocSPM{Buf: buf, Elems: ir.Const(int64(chunk * inner[split]))},
		loop,
		&ir.FreeSPM{Buf: buf},
	}, nil
}
