package optimizer

import (
	"fmt"

	"swatop/internal/ir"
)

// InjectPrefetch implements §4.5.2, hiding memory access latency by double
// buffering. For every loop whose body directly issues RegionMoves:
//
//   - SPM frames of the moved buffers are doubled; all references inside
//     the loop are offset by the iteration parity.
//   - Gets become: an initial DMA issue before the loop nest (all enclosing
//     iterators at 0), a wait at the top of each iteration, and a
//     prefetching issue of the *next* iteration's region into the other
//     half. The next iteration's index vector is inferred by the generated
//     nested if-then-else chain over the enclosing loop variables
//     (Φ(I⃗) of the paper).
//   - Puts become asynchronous, waited two iterations later (when their
//     half is about to be reused), with a drain after the loop nest.
//
// The pass must run before InferDMA (it consumes RegionMoves).
func InjectPrefetch(p *ir.Program) error {
	allocs := map[string]*ir.AllocSPM{}
	ir.Walk(p.Body, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.AllocSPM); ok {
			allocs[a.Buf] = a
		}
		return true
	})
	pf := &prefetcher{allocs: allocs, doubled: map[string]bool{}}
	body, err := pf.topLevel(p.Body)
	if err != nil {
		return err
	}
	p.Body = body
	return nil
}

type loopCtx struct {
	iter   string
	extent int64
}

type prefetcher struct {
	allocs  map[string]*ir.AllocSPM
	doubled map[string]bool
	nreply  int
}

// topLevel processes a statement list that is *outside* any loop: each For
// found here roots an independent prefetch region (a phase).
func (pf *prefetcher) topLevel(body []ir.Stmt) ([]ir.Stmt, error) {
	var out []ir.Stmt
	for _, s := range body {
		f, ok := s.(*ir.For)
		if !ok {
			out = append(out, s)
			continue
		}
		ext, cok := ir.IsConst(f.Extent)
		if !cok {
			out = append(out, s)
			continue
		}
		prelude, postlude, err := pf.loop(f, []loopCtx{{f.Iter, ext}})
		if err != nil {
			return nil, err
		}
		out = append(out, prelude...)
		out = append(out, f)
		out = append(out, postlude...)
	}
	return out, nil
}

// loop transforms one loop (children first) and returns the prelude and
// postlude statements to place around the phase root.
func (pf *prefetcher) loop(f *ir.For, chain []loopCtx) (prelude, postlude []ir.Stmt, err error) {
	// Children first.
	for _, s := range f.Body {
		if inner, ok := s.(*ir.For); ok {
			ext, cok := ir.IsConst(inner.Extent)
			if !cok {
				continue
			}
			pre, post, err := pf.loop(inner, append(append([]loopCtx(nil), chain...), loopCtx{inner.Iter, ext}))
			if err != nil {
				return nil, nil, err
			}
			prelude = append(prelude, pre...)
			postlude = append(postlude, post...)
		}
	}

	// Collect direct moves (gets with optional guard, puts).
	type getSite struct {
		idx   int // index in f.Body
		guard *ir.If
		mv    *ir.RegionMove
	}
	type putSite struct {
		idx int
		mv  *ir.RegionMove
	}
	var gets []getSite
	var puts []putSite
	for i, s := range f.Body {
		mv, ok := s.(*ir.RegionMove)
		if !ok {
			continue
		}
		if mv.Dir == ir.Get {
			g := getSite{idx: i, mv: mv}
			if i > 0 {
				if iff, ok := f.Body[i-1].(*ir.If); ok && len(iff.Then) == 1 && len(iff.Else) == 0 {
					if zf, ok := iff.Then[0].(*ir.Transform); ok && zf.Kind == ir.ZeroFill && zf.Dst == mv.Buf {
						g.guard = iff
					}
				}
			}
			gets = append(gets, g)
		} else {
			puts = append(puts, putSite{idx: i, mv: mv})
		}
	}
	if len(gets) == 0 && len(puts) == 0 {
		return prelude, postlude, nil
	}

	ctr := "g_" + f.Iter
	parity := func(delta int64) ir.Expr {
		return ir.Mod(ir.Add(ir.V(ctr), ir.Const(delta)), ir.Const(2))
	}
	prelude = append([]ir.Stmt{&ir.Assign{Var: ctr, Val: ir.Const(0)}}, prelude...)

	// Snapshot the moves before parity rewriting: prefetch issues must be
	// built from the un-offset originals.
	cleanMove := map[*ir.RegionMove]*ir.RegionMove{}
	cleanGuard := map[*ir.RegionMove]*ir.If{}
	for _, g := range gets {
		cleanMove[g.mv] = ir.CloneStmt(g.mv).(*ir.RegionMove)
		if g.guard != nil {
			cleanGuard[g.mv] = ir.CloneStmt(g.guard).(*ir.If)
		}
	}

	// Double the frames and rewrite buffer references by parity.
	touched := map[string]int64{}
	for _, g := range gets {
		touched[g.mv.Buf] = 0
	}
	for _, p := range puts {
		touched[p.mv.Buf] = 0
	}
	for buf := range touched {
		alloc, ok := pf.allocs[buf]
		if !ok {
			return nil, nil, fmt.Errorf("prefetch: no allocation found for buffer %q", buf)
		}
		elems, cok := ir.IsConst(alloc.Elems)
		if !cok {
			return nil, nil, fmt.Errorf("prefetch: non-constant frame size for %q", buf)
		}
		if !pf.doubled[buf] {
			alloc.Elems = ir.Const(elems * 2)
			pf.doubled[buf] = true
		} else {
			return nil, nil, fmt.Errorf("prefetch: buffer %q double-buffered twice", buf)
		}
		touched[buf] = elems
		offsetBufRefs(f.Body, buf, ir.Mul(parity(0), ir.Const(elems)))
	}

	// Next-index inference chain (Assign + nested If), shared by all gets.
	nx := func(iter string) string { return "nx_" + iter }
	var chainStmts []ir.Stmt
	for _, c := range chain {
		chainStmts = append(chainStmts, &ir.Assign{Var: nx(c.iter), Val: ir.V(c.iter)})
	}
	last := len(chain) - 1
	chainStmts = append(chainStmts, &ir.Assign{Var: nx(chain[last].iter), Val: ir.Add(ir.V(chain[last].iter), ir.Const(1))})
	// Wrap handling: if the incremented iterator overflowed, reset it and
	// carry into the next-outer one, recursively — the nested if-then-else
	// structure of §4.5.2.
	var buildWrap func(d int) []ir.Stmt
	buildWrap = func(d int) []ir.Stmt {
		body := []ir.Stmt{
			&ir.Assign{Var: nx(chain[d].iter), Val: ir.Const(0)},
			&ir.Assign{Var: nx(chain[d-1].iter), Val: ir.Add(ir.V(chain[d-1].iter), ir.Const(1))},
		}
		if d-1 >= 1 {
			body = append(body, buildWrap(d-1)...)
		}
		return []ir.Stmt{&ir.If{
			Cond: ir.Cond{Op: ir.EQ, L: ir.V(nx(chain[d].iter)), R: ir.Const(chain[d].extent)},
			Then: body,
		}}
	}
	if last >= 1 {
		chainStmts = append(chainStmts, buildWrap(last)...)
	}
	valid := ir.Cond{Op: ir.LT, L: ir.V(nx(chain[0].iter)), R: ir.Const(chain[0].extent)}

	// Substitution maps.
	nextSub := map[string]ir.Expr{}
	zeroSub := map[string]ir.Expr{}
	for _, c := range chain {
		nextSub[c.iter] = ir.V(nx(c.iter))
		zeroSub[c.iter] = ir.Const(0)
	}

	// Assemble the new body.
	var newBody []ir.Stmt
	// 1. Waits for this iteration's gets.
	getReply := map[*ir.RegionMove]string{}
	for _, g := range gets {
		r := pf.reply("pfg")
		getReply[g.mv] = r
		newBody = append(newBody, &ir.DMAWait{Reply: r, Times: ir.Const(1)})
	}
	// 2. Guarded waits for put halves about to be reused.
	putReply := map[string]string{}
	for _, p := range puts {
		r, ok := putReply[p.mv.Buf]
		if !ok {
			r = pf.reply("pfp")
			putReply[p.mv.Buf] = r
		}
		newBody = append(newBody, &ir.If{
			Cond: ir.Cond{Op: ir.GE, L: ir.V(ctr), R: ir.Const(2)},
			Then: []ir.Stmt{&ir.DMAWait{Reply: r, Times: ir.Const(1)}},
		})
	}
	// 3. Next-index inference + prefetch issues.
	newBody = append(newBody, chainStmts...)
	for _, g := range gets {
		issue := pf.issueFor(cleanMove[g.mv], cleanGuard[g.mv], nextSub, ir.Mul(parity(1), ir.Const(touched[g.mv.Buf])), getReply[g.mv])
		newBody = append(newBody, &ir.If{Cond: valid, Then: issue})
	}
	// 4. Original body with gets (and their guards) removed and puts async.
	skip := map[int]bool{}
	for _, g := range gets {
		skip[g.idx] = true
		if g.guard != nil {
			skip[g.idx-1] = true
		}
	}
	for i, s := range f.Body {
		if skip[i] {
			continue
		}
		replaced := false
		for _, p := range puts {
			if p.idx == i {
				newBody = append(newBody, &ir.DMAOp{Move: *p.mv, Reply: putReply[p.mv.Buf]})
				replaced = true
				break
			}
		}
		if !replaced {
			newBody = append(newBody, s)
		}
	}
	// 5. Iteration counter.
	newBody = append(newBody, &ir.Assign{Var: ctr, Val: ir.Add(ir.V(ctr), ir.Const(1))})
	f.Body = newBody

	// Prelude: initial issues with all chain iterators at zero.
	for _, g := range gets {
		prelude = append(prelude, pf.issueFor(cleanMove[g.mv], cleanGuard[g.mv], zeroSub, ir.Const(0), getReply[g.mv])...)
	}
	// Postlude: drain outstanding puts.
	for _, r := range putReply {
		postlude = append(postlude,
			&ir.If{Cond: ir.Cond{Op: ir.GE, L: ir.V(ctr), R: ir.Const(1)},
				Then: []ir.Stmt{&ir.DMAWait{Reply: r, Times: ir.Const(1)}}},
			&ir.If{Cond: ir.Cond{Op: ir.GE, L: ir.V(ctr), R: ir.Const(2)},
				Then: []ir.Stmt{&ir.DMAWait{Reply: r, Times: ir.Const(1)}}},
		)
	}
	return prelude, postlude, nil
}

// issueFor builds the (optionally pad-guarded) prefetch issue of a get with
// substituted iterators and a parity buffer offset.
func (pf *prefetcher) issueFor(mv *ir.RegionMove, guard *ir.If, sub map[string]ir.Expr, off ir.Expr, reply string) []ir.Stmt {
	clone := ir.CloneStmt(mv).(*ir.RegionMove)
	for d := range clone.Start {
		clone.Start[d] = ir.Subst(clone.Start[d], sub)
		clone.Extent[d] = ir.Subst(clone.Extent[d], sub)
	}
	for d := range clone.FrameStride {
		clone.FrameStride[d] = ir.Subst(clone.FrameStride[d], sub)
	}
	clone.BufOff = ir.Add(ir.Subst(clone.BufOff, sub), off)
	var out []ir.Stmt
	if guard != nil {
		zf := ir.CloneStmt(guard.Then[0]).(*ir.Transform)
		zf.DstOff = ir.Add(ir.Subst(zf.DstOff, sub), off)
		cond := guard.Cond
		cond.L = ir.Subst(cond.L, sub)
		cond.R = ir.Subst(cond.R, sub)
		out = append(out, &ir.If{Cond: cond, Then: []ir.Stmt{zf}})
	}
	out = append(out, &ir.DMAOp{Move: *clone, Reply: reply})
	return out
}

func (pf *prefetcher) reply(prefix string) string {
	pf.nreply++
	return fmt.Sprintf("%s%d", prefix, pf.nreply)
}

// offsetBufRefs adds a parity offset to every reference to an SPM buffer in
// a subtree (GEMM operands, transforms, region moves).
func offsetBufRefs(body []ir.Stmt, buf string, off ir.Expr) {
	ir.Walk(body, func(s ir.Stmt) bool {
		switch x := s.(type) {
		case *ir.Gemm:
			if x.A == buf {
				x.AOff = ir.Add(x.AOff, off)
			}
			if x.B == buf {
				x.BOff = ir.Add(x.BOff, off)
			}
			if x.C == buf {
				x.COff = ir.Add(x.COff, off)
			}
		case *ir.Transform:
			if x.Src == buf {
				x.SrcOff = ir.Add(x.SrcOff, off)
			}
			if x.Dst == buf {
				x.DstOff = ir.Add(x.DstOff, off)
			}
		case *ir.RegionMove:
			if x.Buf == buf {
				x.BufOff = ir.Add(x.BufOff, off)
			}
		case *ir.DMAOp:
			if x.Move.Buf == buf {
				x.Move.BufOff = ir.Add(x.Move.BufOff, off)
			}
		}
		return true
	})
}
