package optimizer_test

import (
	"testing"
	"testing/quick"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/tensor"
)

// TestFullPipelinePropertyQuick is the strongest single property of the
// compiler: ANY schedule strategy that compiles must compute the right
// answer, across random problem sizes, tile factors, loop orders, layouts,
// vectorization choices and padding modes.
func TestFullPipelinePropertyQuick(t *testing.T) {
	orders := [][]string{
		{"m", "n", "k"}, {"n", "m", "k"}, {"k", "m", "n"},
		{"m", "k", "n"}, {"n", "k", "m"},
	}
	layouts := [][]int{{0, 1}, {1, 0}}
	factors := []int{4, 8, 12, 16, 20, 32}

	checked := 0
	f := func(m0, n0, k0, fm0, fn0, fk0, ord0, la0, lb0, lc0, vec0, pad0 uint8) bool {
		p := gemm.Params{
			M: int(m0%48) + 4,
			N: int(n0%48) + 4,
			K: int(k0%48) + 4,
		}
		st := dsl.Strategy{
			Factors: map[string]int{
				"m": factors[int(fm0)%len(factors)],
				"n": factors[int(fn0)%len(factors)],
				"k": factors[int(fk0)%len(factors)],
			},
			Order: orders[int(ord0)%len(orders)],
			Layouts: map[string][]int{
				"A": layouts[int(la0)%2],
				"B": layouts[int(lb0)%2],
				"C": layouts[int(lc0)%2],
			},
			Vec:          ir.VecDim(int(vec0) % 2),
			DoubleBuffer: true,
			Padding:      dsl.PaddingMode(int(pad0) % 2),
		}
		// Clamp factors to extents (the scheduler normally does this).
		for ax, e := range map[string]int{"m": p.M, "n": p.N, "k": p.K} {
			if st.Factors[ax] > e {
				st.Factors[ax] = e
			}
		}
		seed, err := gemm.Seed(p)
		if err != nil {
			return false
		}
		prog, err := core.Compile(seed, st)
		if err != nil {
			return true // invalid point: pruned, not wrong
		}
		binds, err := gemm.Bind(prog)
		if err != nil {
			return false
		}
		if _, err := exec.Run(prog, binds, exec.Options{Functional: true}); err != nil {
			t.Logf("exec failed for %v %v: %v", p, st, err)
			return false
		}
		want, err := tensor.ReferenceGemm(binds["A"], binds["B"], 1, 0)
		if err != nil {
			return false
		}
		if d, _ := tensor.MaxAbsDiff(want, binds["C"]); d > 5e-2 {
			t.Logf("wrong result (%g) for %v %v", d, p, st)
			return false
		}
		checked++
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
	if checked < 20 {
		t.Fatalf("only %d random schedules actually compiled; property too weak", checked)
	}
}

// TestFastLoopPropertyQuick: fast-forwarded timing must stay within a few
// percent of exact timing for arbitrary compiled schedules.
func TestFastLoopPropertyQuick(t *testing.T) {
	f := func(m0, n0, k0, fm0 uint8) bool {
		p := gemm.Params{
			M: int(m0%4)*64 + 128,
			N: int(n0%4)*64 + 128,
			K: int(k0%4)*64 + 128,
		}
		fac := []int{16, 32, 64}[int(fm0)%3]
		st := dsl.Strategy{
			Factors:      map[string]int{"m": fac, "n": fac, "k": fac},
			Order:        []string{"m", "n", "k"},
			Layouts:      map[string][]int{"C": {1, 0}},
			Vec:          ir.VecM,
			DoubleBuffer: true,
		}
		seed, err := gemm.Seed(p)
		if err != nil {
			return false
		}
		prog, err := core.Compile(seed, st)
		if err != nil {
			return true
		}
		b1, err := exec.BindVirtual(prog)
		if err != nil {
			return false
		}
		exact, err := exec.Run(prog, b1, exec.Options{})
		if err != nil {
			return false
		}
		b2, _ := exec.BindVirtual(prog)
		fast, err := exec.Run(prog, b2, exec.Options{FastLoops: true})
		if err != nil {
			return false
		}
		rel := fast.Seconds/exact.Seconds - 1
		if rel < -0.06 || rel > 0.06 {
			t.Logf("%v tiles %d: fast %.4g exact %.4g (%.1f%%)", p, fac, fast.Seconds, exact.Seconds, rel*100)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
