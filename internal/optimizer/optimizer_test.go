package optimizer_test

import (
	"testing"

	"swatop/internal/core"
	"swatop/internal/dsl"
	"swatop/internal/exec"
	"swatop/internal/gemm"
	"swatop/internal/ir"
	"swatop/internal/lower"
	"swatop/internal/optimizer"
	"swatop/internal/tensor"
)

func strategy(fm, fn, fk int, db bool) dsl.Strategy {
	return dsl.Strategy{
		Factors:      map[string]int{"m": fm, "n": fn, "k": fk},
		Order:        []string{"m", "n", "k"},
		Layouts:      map[string][]int{"C": {1, 0}},
		Vec:          ir.VecM,
		DoubleBuffer: db,
	}
}

// compileAndRun compiles a GEMM with the full pipeline and verifies the
// result against the oracle.
func compileAndRun(t *testing.T, p gemm.Params, st dsl.Strategy) exec.Result {
	t.Helper()
	seed, err := gemm.Seed(p)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := core.Compile(seed, st)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	binds, err := gemm.Bind(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(prog, binds, exec.Options{Functional: true})
	if err != nil {
		t.Fatalf("exec: %v\n%s", err, ir.Print(prog))
	}
	want, err := tensor.ReferenceGemm(binds["A"], binds["B"], 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := tensor.MaxAbsDiff(want, binds["C"]); d > 2e-2 {
		t.Fatalf("result differs from oracle by %g\n%s", d, ir.Print(prog))
	}
	return res
}

func TestInferDMAProducesPairs(t *testing.T) {
	seed, _ := gemm.Seed(gemm.Params{M: 64, N: 64, K: 64})
	prog, err := lower.Lower(seed, strategy(32, 32, 32, false))
	if err != nil {
		t.Fatal(err)
	}
	optimizer.InferDMA(prog)
	moves := ir.CountKind(prog.Body, func(s ir.Stmt) bool { _, ok := s.(*ir.RegionMove); return ok })
	if moves != 0 {
		t.Fatalf("%d RegionMoves survived DMA inference", moves)
	}
	ops := ir.CountKind(prog.Body, func(s ir.Stmt) bool { _, ok := s.(*ir.DMAOp); return ok })
	waits := ir.CountKind(prog.Body, func(s ir.Stmt) bool { _, ok := s.(*ir.DMAWait); return ok })
	if ops == 0 || ops != waits {
		t.Fatalf("ops=%d waits=%d", ops, waits)
	}
	// Attributes are derived for codegen.
	ir.Walk(prog.Body, func(s ir.Stmt) bool {
		if op, ok := s.(*ir.DMAOp); ok {
			if op.PerCPE.Offset == "" || op.PerCPE.Size == "" {
				t.Fatalf("DMAOp without inferred attributes: %+v", op)
			}
		}
		return true
	})
}

func TestPrefetchFunctionalCorrectness(t *testing.T) {
	// Exact tiles.
	compileAndRun(t, gemm.Params{M: 128, N: 96, K: 64}, strategy(32, 32, 32, true))
	// Boundary tiles on every dimension, both vec dims.
	st := strategy(32, 32, 32, true)
	compileAndRun(t, gemm.Params{M: 100, N: 52, K: 40}, st)
	st.Vec = ir.VecN
	compileAndRun(t, gemm.Params{M: 100, N: 52, K: 40}, st)
}

func TestPrefetchOuterReductionOrder(t *testing.T) {
	// Reduction loop outermost: C is re-fetched per iteration; prefetch
	// must still balance every issue with a wait and stay correct.
	st := strategy(32, 32, 32, true)
	st.Order = []string{"k", "m", "n"}
	compileAndRun(t, gemm.Params{M: 64, N: 64, K: 96}, st)
}

func TestPrefetchImprovesTime(t *testing.T) {
	// The headline of Fig. 10: double buffering hides DMA latency. Pick a
	// bandwidth-heavy shape (small K reuse) so there is something to hide.
	p := gemm.Params{M: 512, N: 512, K: 64}
	off := compileAndRun(t, p, strategy(64, 64, 64, false))
	on := compileAndRun(t, p, strategy(64, 64, 64, true))
	if on.Seconds >= off.Seconds {
		t.Fatalf("prefetching should help: on=%.3g off=%.3g", on.Seconds, off.Seconds)
	}
	if on.Seconds > 0.8*off.Seconds {
		t.Fatalf("prefetching gain too small on bandwidth-bound shape: on=%.3g off=%.3g", on.Seconds, off.Seconds)
	}
}

func TestPrefetchStructure(t *testing.T) {
	seed, _ := gemm.Seed(gemm.Params{M: 128, N: 128, K: 128})
	prog, err := lower.Lower(seed, strategy(32, 32, 32, true))
	if err != nil {
		t.Fatal(err)
	}
	if err := optimizer.InjectPrefetch(prog); err != nil {
		t.Fatal(err)
	}
	// Input frames are doubled.
	ir.Walk(prog.Body, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.AllocSPM); ok && (a.Buf == "spm_A" || a.Buf == "spm_B") {
			if v, _ := ir.IsConst(a.Elems); v != 2*32*32 {
				t.Fatalf("%s not doubled: %v", a.Buf, a.Elems)
			}
		}
		return true
	})
	// The next-iteration inference chain exists (nested if-then-else over
	// nx_* variables).
	foundNext := false
	ir.Walk(prog.Body, func(s ir.Stmt) bool {
		if a, ok := s.(*ir.Assign); ok && len(a.Var) > 3 && a.Var[:3] == "nx_" {
			foundNext = true
		}
		return true
	})
	if !foundNext {
		t.Fatal("no next-iteration inference generated")
	}
	// Initial issues precede the outermost loop.
	sawOp := false
	for _, s := range prog.Body {
		if _, ok := s.(*ir.DMAOp); ok {
			sawOp = true
		}
		if _, ok := s.(*ir.For); ok {
			break
		}
	}
	if !sawOp {
		t.Fatal("no initial DMA issue before the loop nest")
	}
}

func TestTraditionalPaddingCorrectAndSlower(t *testing.T) {
	p := gemm.Params{M: 100, N: 52, K: 40} // unaligned everywhere
	light := strategy(32, 32, 32, true)
	trad := light
	trad.Padding = dsl.PadTraditional
	lres := compileAndRun(t, p, light)
	tres := compileAndRun(t, p, trad)
	if tres.Seconds <= lres.Seconds {
		t.Fatalf("traditional padding should cost more: trad=%.3g light=%.3g", tres.Seconds, lres.Seconds)
	}
}

func TestTraditionalPaddingNoopWhenAligned(t *testing.T) {
	seed, _ := gemm.Seed(gemm.Params{M: 64, N: 64, K: 64})
	st := strategy(32, 32, 32, false)
	st.Padding = dsl.PadTraditional
	prog, err := lower.LowerPadded(seed, st)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range prog.Tensors {
		if d.Scratch {
			t.Fatal("aligned problem should not allocate padded workspaces")
		}
	}
}

func TestPrefetchTimedEqualsFunctionalClock(t *testing.T) {
	// The black-box tuner runs timed-only; its clock must match the
	// functional run exactly.
	seed, _ := gemm.Seed(gemm.Params{M: 96, N: 96, K: 96})
	prog, err := core.Compile(seed, strategy(32, 32, 32, true))
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := gemm.Bind(prog)
	b2, _ := gemm.Bind(prog)
	r1, err := exec.Run(prog, b1, exec.Options{Functional: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := exec.Run(prog, b2, exec.Options{Functional: false})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seconds != r2.Seconds {
		t.Fatalf("functional %.9g vs timed %.9g", r1.Seconds, r2.Seconds)
	}
}
