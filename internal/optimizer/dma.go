// Package optimizer implements swATOP's IR optimizations (§4.5):
//
//   - DMA inference: abstract RegionMove nodes become concrete
//     DMAOp/DMAWait pairs with derived per-CPE descriptor attributes
//     (offset/block/stride as formulas over the CPE's rid/cid).
//   - Hiding memory access latency: automatic software prefetching (double
//     buffering) with next-iteration index inference over the enclosing
//     loop variables, generated as the nested if-then-else structure the
//     paper describes.
//   - Boundary processing support: the lightweight zero-padding guards the
//     lowering emits are carried through both passes; the traditional
//     whole-tensor padding baseline lives in the lower package.
package optimizer

import (
	"fmt"

	"swatop/internal/ir"
)

// InferDMA replaces every remaining RegionMove by an asynchronous DMAOp
// followed immediately by its DMAWait (the synchronous pattern; the
// prefetch pass produces split pairs itself). It also fills in the per-CPE
// descriptor attributes used by the code generator.
func InferDMA(p *ir.Program) {
	n := 0
	p.Body = ir.Rewrite(p.Body, func(s ir.Stmt) []ir.Stmt {
		mv, ok := s.(*ir.RegionMove)
		if !ok {
			return nil
		}
		reply := fmt.Sprintf("rw%d", n)
		n++
		op := &ir.DMAOp{Move: *mv, Reply: reply, PerCPE: InferAttrs(mv)}
		return []ir.Stmt{op, &ir.DMAWait{Reply: reply, Times: ir.Const(1)}}
	})
	// Prefetch-produced DMAOps may still lack attributes.
	ir.Walk(p.Body, func(s ir.Stmt) bool {
		if op, ok := s.(*ir.DMAOp); ok && op.PerCPE == (ir.DMAAttrs{}) {
			op.PerCPE = InferAttrs(&op.Move)
		}
		return true
	})
}

// InferAttrs derives the printed per-CPE DMA descriptor attributes of
// Fig. 4 (right): the core-group transfer is divided across the 8×8 CPE
// grid; each CPE's offset depends on its row/column id.
func InferAttrs(mv *ir.RegionMove) ir.DMAAttrs {
	total := ir.Expr(ir.Const(1))
	for _, e := range mv.Extent {
		total = ir.Mul(total, e)
	}
	// The innermost region dimension forms the contiguous block; outer
	// dimensions stride. The per-CPE share is total/64, distributed
	// block-wise over (rid, cid).
	inner := mv.Extent[len(mv.Extent)-1]
	return ir.DMAAttrs{
		Offset: fmt.Sprintf("((rid*8+cid) * (%s))/64", total),
		Block:  inner.String(),
		Stride: fmt.Sprintf("stride(%s)", mv.Tensor),
		Size:   fmt.Sprintf("(%s)/64", total),
	}
}
