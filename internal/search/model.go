package search

import "math"

// Model is an online ridge regressor over feature vectors: it accumulates
// the normal equations XᵀX and Xᵀy incrementally and re-solves them on
// demand, with online feature standardization (Welford mean/variance) so
// magnitude-spanning features do not drown the small ones. It is
// dependency-free and deterministic: the same Fit sequence always yields
// the same predictions.
//
// Targets are log seconds — schedule run times span orders of magnitude and
// the ranking (which candidate is faster) matters more than the absolute
// error. Predict returns seconds.
type Model struct {
	dim    int
	lambda float64

	n    int64
	mean []float64 // Welford running mean per feature
	m2   []float64 // Welford running sum of squared deviations
	xtx  []float64 // dim+1 × dim+1, standardized features + bias column
	xty  []float64 // dim+1
	coef []float64 // cached solution; nil when stale

	// Prequential MAE: each sample is predicted before it is fitted, so the
	// error estimate never tests on training data.
	absErrSum float64
	errCount  int64
}

// NewModel creates a regressor for dim-length feature vectors. lambda ≤ 0
// defaults to a small ridge penalty that keeps the normal matrix invertible
// on degenerate (constant-feature) training sets.
func NewModel(dim int, lambda float64) *Model {
	if lambda <= 0 {
		lambda = 1e-3
	}
	d := dim + 1 // + bias
	return &Model{
		dim:    dim,
		lambda: lambda,
		mean:   make([]float64, dim),
		m2:     make([]float64, dim),
		xtx:    make([]float64, d*d),
		xty:    make([]float64, d),
	}
}

// Count reports how many samples have been fitted.
func (m *Model) Count() int { return int(m.n) }

// Ready reports whether the model has seen enough samples to produce
// predictions better than a constant (a modest multiple of the dimension).
func (m *Model) Ready() bool { return m.n >= int64(m.dim/2+3) }

// Fit absorbs one (features, measured seconds) pair. Non-finite or
// non-positive targets are ignored — a failed measurement teaches nothing.
// The sample is first predicted (once the model is Ready) to update the
// prequential MAE, then folded into the normal equations.
func (m *Model) Fit(features []float64, seconds float64) {
	if len(features) != m.dim || math.IsNaN(seconds) || math.IsInf(seconds, 0) || seconds <= 0 {
		return
	}
	if m.Ready() {
		m.absErrSum += math.Abs(m.Predict(features) - seconds)
		m.errCount++
	}
	m.coef = nil
	m.n++
	// Welford update, then standardize with the *updated* moments. The
	// slight non-stationarity of the standardization across samples is the
	// usual online-regression compromise; it vanishes as n grows.
	for i, v := range features {
		delta := v - m.mean[i]
		m.mean[i] += delta / float64(m.n)
		m.m2[i] += delta * (v - m.mean[i])
	}
	z := m.standardize(features)
	d := m.dim + 1
	y := math.Log(seconds)
	for r := 0; r < d; r++ {
		for c := 0; c < d; c++ {
			m.xtx[r*d+c] += z[r] * z[c]
		}
		m.xty[r] += z[r] * y
	}
}

// Predict estimates the run time in seconds of a feature vector. Before the
// model is Ready it returns the geometric mean of the targets seen so far
// (or 0 with no data) — callers fall back to the analytic estimate anyway.
func (m *Model) Predict(features []float64) float64 {
	if len(features) != m.dim || m.n == 0 {
		return 0
	}
	if !m.Ready() {
		return math.Exp(m.xty[m.dim] / float64(m.n)) // bias column ⇒ Σ log y
	}
	if m.coef == nil {
		m.coef = m.solve()
	}
	z := m.standardize(features)
	var logY float64
	for i, c := range m.coef {
		logY += c * z[i]
	}
	// Clamp the exponent so one wild extrapolation cannot produce ±Inf.
	if logY > 50 {
		logY = 50
	} else if logY < -50 {
		logY = -50
	}
	return math.Exp(logY)
}

// MAE returns the prequential mean absolute error in seconds — each
// training sample scored before the model saw it. 0 until the model has
// scored at least one sample.
func (m *Model) MAE() float64 {
	if m.errCount == 0 {
		return 0
	}
	return m.absErrSum / float64(m.errCount)
}

// standardize maps a raw feature vector to (x−μ)/σ with a trailing bias 1.
func (m *Model) standardize(features []float64) []float64 {
	z := make([]float64, m.dim+1)
	for i, v := range features {
		sd := 0.0
		if m.n > 1 {
			sd = math.Sqrt(m.m2[i] / float64(m.n-1))
		}
		if sd < 1e-12 {
			z[i] = 0 // constant feature carries no signal
		} else {
			z[i] = (v - m.mean[i]) / sd
		}
	}
	z[m.dim] = 1
	return z
}

// solve returns (XᵀX + λI)⁻¹ Xᵀy by Gaussian elimination with partial
// pivoting. The bias column is not penalized.
func (m *Model) solve() []float64 {
	d := m.dim + 1
	a := make([]float64, d*(d+1))
	for r := 0; r < d; r++ {
		for c := 0; c < d; c++ {
			a[r*(d+1)+c] = m.xtx[r*d+c]
		}
		if r < m.dim {
			a[r*(d+1)+r] += m.lambda * float64(m.n)
		}
		a[r*(d+1)+d] = m.xty[r]
	}
	for col := 0; col < d; col++ {
		pivot := col
		for r := col + 1; r < d; r++ {
			if math.Abs(a[r*(d+1)+col]) > math.Abs(a[pivot*(d+1)+col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot*(d+1)+col]) < 1e-30 {
			continue // dead column (all-zero feature); leave coefficient 0
		}
		if pivot != col {
			for c := 0; c <= d; c++ {
				a[col*(d+1)+c], a[pivot*(d+1)+c] = a[pivot*(d+1)+c], a[col*(d+1)+c]
			}
		}
		for r := 0; r < d; r++ {
			if r == col {
				continue
			}
			f := a[r*(d+1)+col] / a[col*(d+1)+col]
			for c := col; c <= d; c++ {
				a[r*(d+1)+c] -= f * a[col*(d+1)+c]
			}
		}
	}
	out := make([]float64, d)
	for i := 0; i < d; i++ {
		piv := a[i*(d+1)+i]
		if math.Abs(piv) >= 1e-30 {
			out[i] = a[i*(d+1)+d] / piv
		}
	}
	return out
}
